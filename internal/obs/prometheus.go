package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, children sorted by
// label values, label values escaped, histograms expanded into
// cumulative _bucket series plus _sum and _count. The ordering is fully
// deterministic so the output is golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		return bw.Flush()
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')

		values, children := f.sortedChildren()
		for i, c := range children {
			switch m := c.(type) {
			case *Counter:
				writeSample(bw, f.name, f.labels, values[i], "", "", float64(m.Value()))
			case *Gauge:
				writeSample(bw, f.name, f.labels, values[i], "", "", m.Value())
			case *Histogram:
				count, sum, cum := m.snapshot()
				for bi, upper := range m.upper {
					writeSample(bw, f.name+"_bucket", f.labels, values[i],
						"le", formatValue(upper), float64(cum[bi]))
				}
				writeSample(bw, f.name+"_bucket", f.labels, values[i], "le", "+Inf", float64(cum[len(cum)-1]))
				writeSample(bw, f.name+"_sum", f.labels, values[i], "", "", sum)
				writeSample(bw, f.name+"_count", f.labels, values[i], "", "", float64(count))
			}
		}
	}
	return bw.Flush()
}

// writeSample renders one series line, optionally appending one extra
// label (the histogram "le" bound).
func writeSample(w *bufio.Writer, name string, labels, values []string, extraLabel, extraValue string, v float64) {
	w.WriteString(name)
	if len(labels) > 0 || extraLabel != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(l)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(values[i]))
			w.WriteByte('"')
		}
		if extraLabel != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraLabel)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(extraValue))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	w.WriteByte('\n')
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
