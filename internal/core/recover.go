package core

import (
	"fmt"

	"icc/internal/checkpoint"
	"icc/internal/types"
)

// Recover rebuilds the engine's protocol state from durable storage —
// the newest locally stored checkpoint (if any) followed by a WAL
// replay — and returns the working round it resumed at. Call it after
// NewEngine and before Init; a fresh node (empty WAL, empty store)
// recovers to round 1 instantly.
//
// Replay feeds every WAL record through the ordinary ingest path with
// all signature-creating clauses suppressed (the `replaying` flag):
// admission re-populates the pool and beacon, tryFinishRound advances
// rounds as notarizations reappear, and OnCommit re-executes the chain
// so the application state machine reaches the pre-crash frontier.
// Nothing is emitted and nothing new is signed — the crash cannot be
// parlayed into equivocation; only artifacts the pre-crash process made
// durable (and therefore possibly sent) re-enter the world.
func (e *Engine) Recover() (types.Round, error) {
	e.replaying = true
	defer func() {
		e.replaying = false
		e.out = nil
	}()
	// A locally stored checkpoint is our own past output, but disks rot
	// and operators copy files around — verify anyway before trusting it
	// as the chain root.
	if cp, err := e.cfg.Checkpoints.Latest(); err == nil && cp != nil {
		if err := checkpoint.Verify(e.cfg.Keys, cp); err == nil {
			e.installCheckpoint(cp, 0)
		}
	}
	if e.cfg.WAL != nil {
		err := e.cfg.WAL.Replay(func(m types.Message) {
			e.ingest(e.cfg.Self, m, 0)
			e.progress(0)
			// Replay must not resend: outputs queued by replayed clauses
			// (notarization re-broadcasts, finalizations) are discarded.
			e.out = e.out[:0]
		})
		if err != nil {
			return e.round, fmt.Errorf("core: wal replay: %w", err)
		}
	}
	e.rebuildRoundFlags()
	return e.round, nil
}

// rebuildRoundFlags reconstructs the current round's own-action flags
// (proposed, notarized, rankShared) from our own artifacts in the pool,
// after a replay. These flags gate signature creation, so they must
// reflect what the pre-crash process actually signed: N must contain
// exactly the blocks we notarization-shared, or the restarted process
// could issue a finalization share the pre-crash one was forbidden to
// (tryFinishRound's N ⊆ {B} test), finalizing a block alongside a
// sibling we endorsed.
func (e *Engine) rebuildRoundFlags() {
	if !e.inRound {
		return // flags are only meaningful inside a round
	}
	k := e.round
	for _, h := range e.pool.BlocksInRound(k) {
		b := e.pool.Block(h)
		if b == nil {
			continue
		}
		if b.Proposer == e.cfg.Self && e.pool.Authenticator(h) != nil {
			e.proposed = true
		}
		e.pool.ForEachNotarShareMessage(h, func(ns *types.NotarizationShare) {
			if ns.Signer != e.cfg.Self {
				return
			}
			e.notarized[h] = true
			if r, ok := e.rankOf[b.Proposer]; ok {
				e.rankShared[r] = true
			}
		})
	}
}
