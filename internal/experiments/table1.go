package experiments

import (
	"fmt"
	"time"

	"icc/internal/core"
	"icc/internal/harness"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

// Table1 reproduces paper §5 Table 1: average block rate and per-node
// sent traffic for a small (13-node) and a large (40-node) subnet under
// three scenarios — (i) no user load, (ii) 100 state-changing requests/s
// of 1 KB each, (iii) the same load with one third of the nodes refusing
// to participate.
//
// Substrate differences from the paper's measurement (documented in
// DESIGN.md §5 and EXPERIMENTS.md): the deployment's WAN is modelled by
// a link matrix drawn from the paper's measured RTT range (6–110 ms);
// the production parametrization that yields ≈1.1 blocks/s (13 nodes)
// and ≈0.41 blocks/s (40 nodes) is modelled by the ε governor of eq. (2)
// per subnet size; and the paper's reported traffic additionally
// includes non-consensus services (key resharing, logs, metrics) that
// this reproduction does not run, so absolute Mb/s is expected to sit
// below the paper's. The shapes under test: load adds ≈ payload-rate
// bytes to each node; one third failures roughly halves the block rate
// and reduces traffic.
func Table1(scale Scale) *Table {
	t := &Table{
		ID:    "E1",
		Title: "Table 1: block rate and per-node sent traffic (5-min window)",
		Columns: []string{"subnet", "scenario", "blocks/s", "paper blocks/s",
			"Mb/s per node", "paper Mb/s"},
		Notes: []string{
			"paper traffic includes non-consensus services (key resharing, logs, metrics); this reproduction measures consensus traffic only",
			"ε governor parametrized per subnet size to model the production block-rate configuration",
		},
	}
	window := time.Duration(scale.scaleInt(300)) * time.Second
	type scenario struct {
		name      string
		load      bool
		failures  bool
		paperRate map[int]string
		paperMbps map[int]string
	}
	scenarios := []scenario{
		{"without load", false, false,
			map[int]string{13: "1.09", 40: "0.41"}, map[int]string{13: "1.64", 40: "4.63"}},
		{"with load", true, false,
			map[int]string{13: "1.10", 40: "0.41"}, map[int]string{13: "4.72", 40: "7.32"}},
		{"load + 1/3 failures", true, true,
			map[int]string{13: "0.45", 40: "0.16"}, map[int]string{13: "4.39", 40: "5.06"}},
	}
	for _, n := range []int{13, 40} {
		// Production-like parametrization: pick ε so the no-load block
		// rate lands near the paper's (larger subnets run slower).
		epsilon := 800 * time.Millisecond
		if n == 40 {
			epsilon = 2300 * time.Millisecond
		}
		for _, sc := range scenarios {
			rate, mbps := runTable1Cell(n, epsilon, window, sc.load, sc.failures)
			t.AddRow(
				fmt.Sprintf("%d nodes", n), sc.name,
				fmt.Sprintf("%.2f", rate), sc.paperRate[n],
				fmt.Sprintf("%.2f", mbps), sc.paperMbps[n],
			)
		}
	}
	return t
}

func runTable1Cell(n int, epsilon time.Duration, window time.Duration, load, failures bool) (blocksPerSec, mbpsPerNode float64) {
	m := simnet.NewWANMatrix(n, 6*time.Millisecond, 110*time.Millisecond, int64(n))
	opts := harness.Options{
		N:          n,
		Seed:       int64(n)*1000 + boolInt(load)*10 + boolInt(failures),
		Delay:      m,
		DeltaBound: 300 * time.Millisecond,
		Epsilon:    epsilon,
		Mode:       harness.ICC1, // production uses the gossip sub-layer
		SimBeacon:  true,
		Verify:     pool.VerifySharesOnly,
		PruneDepth: simPruneDepth,
	}
	if load {
		// 100 req/s × 1 KB spread over the expected block rate: a block
		// every 1/r seconds carries ≈ 100/r KB.
		est := 1.1
		if n == 40 {
			est = 0.41
		}
		batch := int(100.0 / est)
		opts.Payload = core.SizedPayload{Size: batch * 1024}
	}
	if failures {
		opts.Behaviors = make(map[types.PartyID]harness.Behavior)
		for i := 0; i < n/3; i++ {
			opts.Behaviors[types.PartyID(i*3)] = harness.Crash
		}
	}
	c, err := harness.New(opts)
	if err != nil {
		panic(fmt.Sprintf("table1: %v", err))
	}
	c.Start()
	c.Net.Run(window)
	s := c.Rec.Summarize()
	secs := window.Seconds()
	blocksPerSec = float64(s.CommittedBlocks) / secs
	live := n
	if failures {
		live = n - n/3
	}
	bitsPerNode := float64(s.TotalBytes) * 8 / float64(live)
	mbpsPerNode = bitsPerNode / secs / 1e6
	return blocksPerSec, mbpsPerNode
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
