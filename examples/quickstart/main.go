// Quickstart: run a 4-party Internet Computer Consensus cluster inside
// one process, submit a few key-value commands, and watch every replica
// commit the same chain and converge to the same state.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"icc"
)

func main() {
	// Four parties tolerate t = 1 Byzantine fault (t < n/3).
	cluster, err := icc.NewLocalCluster(4, icc.WithDeltaBound(50*time.Millisecond))
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	var blocks atomic.Int64
	cluster.OnCommit(func(ev icc.CommitEvent) {
		if ev.Party == 0 && len(ev.Payload) > 0 {
			fmt.Printf("party 0 committed round %d with %d payload bytes\n", ev.Round, len(ev.Payload))
		}
		blocks.Add(1)
	})
	cluster.Start()
	defer cluster.Stop()

	// Submit commands to different parties — atomic broadcast orders
	// them identically everywhere. Each command uses its own client ID:
	// (Client, Seq) pairs are applied in per-client sequence order, so a
	// single client must funnel its commands through one replica to keep
	// them ordered; independent clients are free to use any replica.
	fmt.Println("submitting 5 commands...")
	for i := uint64(1); i <= 5; i++ {
		party := int(i) % 4
		cluster.Submit(party, icc.Command{
			Client: 42 + i,
			Seq:    1,
			Op:     icc.OpSet,
			Key:    fmt.Sprintf("greeting-%d", i),
			Value:  []byte(fmt.Sprintf("hello from command %d", i)),
		})
	}

	// Wait until every command is visible on every replica. Commands
	// submitted to a party are proposed when that party's blocks win a
	// round, so all four parties must lead at least once.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for p := 0; p < 4 && done; p++ {
			for i := 1; i <= 5; i++ {
				if _, ok := cluster.KV(p).Get(fmt.Sprintf("greeting-%d", i)); !ok {
					done = false
					break
				}
			}
		}
		if done {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("\nreplica states:")
	for p := 0; p < 4; p++ {
		v, _ := cluster.KV(p).Get("greeting-3")
		fmt.Printf("  party %d: %d keys, greeting-3=%q, state hash %s\n",
			p, cluster.KV(p).Len(), v, cluster.KV(p).StateHash().Short())
	}
	fmt.Printf("\ntotal block commits observed: %d\n", blocks.Load())
	fmt.Println("all replicas share one state hash: that is atomic broadcast at work")
}
