package gateway

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"icc/internal/statemachine"
)

// LoadOptions configures an open-loop load run: submissions arrive at
// a fixed rate regardless of how fast the cluster acknowledges them
// (closed-loop generators hide latency collapse by self-throttling —
// an open loop exposes it).
type LoadOptions struct {
	// Rate is submissions per second across all clients (required).
	Rate int
	// Duration bounds the submission window (required).
	Duration time.Duration
	// Clients is the number of distinct client identities issuing
	// commands, round-robin across the gateways (default 8).
	Clients int
	// ClientBase offsets the client IDs so consecutive runs against one
	// cluster never collide (default 1).
	ClientBase uint64
	// Keys is the key-space size (default 1024).
	Keys int
	// Skew is the Zipf s parameter shaping key popularity: 0 = uniform,
	// values > 1 concentrate traffic on few hot keys (1.2 is a typical
	// web-cache skew). Values in (0, 1] are outside rand.NewZipf's
	// domain (it requires s > 1) and are rejected with ErrInvalidSkew —
	// they used to fall back to uniform silently, reporting hot-key
	// latency numbers that were actually uniform-load numbers.
	Skew float64
	// ValueBytes sizes each written value (default 64).
	ValueBytes int
	// Seed makes the key sequence reproducible. It is used verbatim — 0
	// is a valid seed, not a request for a default (it used to be
	// silently remapped to 1, so "seed 0" runs were unknowingly "seed 1"
	// runs).
	Seed int64
}

// LoadReport summarises one load run.
type LoadReport struct {
	Submitted uint64 // commands admitted
	Acked     uint64 // commands acknowledged at finality
	Rejected  uint64 // admission rejections (backlog full)
	Timedout  uint64 // admitted but unacknowledged within the drain budget

	// P50/P90/P99 are submit-to-finalize latency percentiles over every
	// acknowledged command.
	P50, P90, P99 time.Duration
	// MaxBacklog is the deepest pending backlog observed at submit time.
	MaxBacklog int
}

// RunLoad drives an open-loop load against a set of gateways (one per
// replica): each tick submits one command from the next client to its
// replica and a collector goroutine waits for the finality receipt.
// After the submission window it drains outstanding receipts until ctx
// expires or drain (default 30 s) elapses.
func RunLoad(ctx context.Context, gws []*Gateway, o LoadOptions) (*LoadReport, error) {
	if o.Rate <= 0 || o.Duration <= 0 {
		return nil, fmt.Errorf("gateway: load needs positive Rate and Duration")
	}
	if len(gws) == 0 {
		return nil, fmt.Errorf("gateway: load needs at least one gateway")
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Keys <= 0 {
		o.Keys = 1024
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 64
	}
	if o.ClientBase == 0 {
		o.ClientBase = 1
	}
	if o.Skew != 0 && o.Skew <= 1 {
		return nil, fmt.Errorf("%w: %v (rand.NewZipf requires s > 1; use 0 for uniform)", ErrInvalidSkew, o.Skew)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	nextKey := func() int { return rng.Intn(o.Keys) }
	if o.Skew > 1 {
		z := rand.NewZipf(rng, o.Skew, 1, uint64(o.Keys-1))
		nextKey = func() int { return int(z.Uint64()) }
	}
	value := make([]byte, o.ValueBytes)
	rng.Read(value)

	var (
		report    LoadReport
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
		rejected  atomic.Uint64
		timedout  atomic.Uint64
	)
	seqs := make([]uint64, o.Clients)
	interval := time.Second / time.Duration(o.Rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	drainCtx, cancel := context.WithTimeout(ctx, o.Duration+DefaultWaitTimeout)
	defer cancel()

	// Catch-up pacing: every wakeup submits however many arrivals are
	// due by now, so scheduler jitter under consensus CPU load delays
	// individual submissions but never deflates the offered rate — the
	// defining property of an open loop.
	start := time.Now()
	total := int(float64(o.Rate) * o.Duration.Seconds())
	for i := 0; i < total; i++ {
		due := start.Add(time.Duration(i) * interval)
		if wait := time.Until(due); wait > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(wait):
			}
		}
		client := i % o.Clients
		seqs[client]++
		gw := gws[client%len(gws)]
		cmd := statemachine.Command{
			Client: o.ClientBase + uint64(client),
			Seq:    seqs[client],
			Op:     statemachine.OpSet,
			Key:    fmt.Sprintf("load/key%d", nextKey()),
			Value:  value,
		}
		if b := gw.Backlog(); b > report.MaxBacklog {
			report.MaxBacklog = b
		}
		receipt, err := gw.Submit(ctx, cmd)
		if err != nil {
			if errors.Is(err, ErrBacklogFull) {
				// Open loop: the tick is lost, not retried — backpressure
				// shows up as a rejection count, never as queueing.
				rejected.Add(1)
				continue
			}
			return nil, err
		}
		report.Submitted++
		wg.Add(1)
		go func(r *Receipt, start time.Time) {
			defer wg.Done()
			if _, err := r.Wait(drainCtx); err != nil {
				timedout.Add(1)
				return
			}
			mu.Lock()
			latencies = append(latencies, time.Since(start))
			mu.Unlock()
		}(receipt, time.Now())
	}
	wg.Wait()
	report.Rejected = rejected.Load()
	report.Timedout = timedout.Load()
	report.Acked = uint64(len(latencies))
	report.P50 = percentile(latencies, 0.50)
	report.P90 = percentile(latencies, 0.90)
	report.P99 = percentile(latencies, 0.99)
	return &report, nil
}

// percentile returns the p-quantile of the latency sample (0 for an
// empty sample).
func percentile(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
