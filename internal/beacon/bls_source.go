package beacon

import (
	"fmt"

	"icc/internal/crypto/bls"
	"icc/internal/crypto/hash"
	"icc/internal/types"
)

// BLS is a beacon Source backed by the from-scratch BLS12-381 threshold
// signatures of internal/crypto/bls — the exact construction paper §2.3
// names for S_beacon (threshold BLS via Shamir sharing, unique
// signatures, shares and combined values verified with pairings).
//
// It is interchangeable with the default DLEQ-based Source (*Beacon);
// the pairing arithmetic is big.Int-based and therefore slow (hundreds
// of milliseconds per share verification), so this backend suits
// correctness demonstrations and small clusters, not large sweeps.
type BLS struct {
	pub  *bls.ThresholdPublic
	sk   bls.ThresholdShareKey
	self types.PartyID
	n    int

	values       map[types.Round]*bls.Signature
	digests      map[types.Round]hash.Digest
	shares       map[types.Round]map[types.PartyID]*bls.SigShare
	perms        map[types.Round][]types.PartyID
	own          *shareCache
	prunedBefore types.Round
	genesis      hash.Digest
}

// NewBLS creates a BLS-backed beacon for one party.
func NewBLS(pub *bls.ThresholdPublic, sk bls.ThresholdShareKey, self types.PartyID, genesisSeed []byte) *BLS {
	b := &BLS{
		pub:     pub,
		sk:      sk,
		self:    self,
		n:       pub.N,
		values:  make(map[types.Round]*bls.Signature),
		digests: make(map[types.Round]hash.Digest),
		shares:  make(map[types.Round]map[types.PartyID]*bls.SigShare),
		perms:   make(map[types.Round][]types.PartyID),
		own:     newShareCache(0),
		genesis: hash.Sum(hash.DomainBeacon, genesisSeed),
	}
	b.digests[0] = b.genesis
	return b
}

func (b *BLS) message(k types.Round) ([]byte, bool) {
	if k == 0 {
		return nil, false
	}
	prev, ok := b.digests[k-1]
	if !ok {
		return nil, false
	}
	e := types.NewEncoder(8 + hash.Size)
	e.U64(uint64(k))
	e.Bytes32(prev)
	return e.Bytes(), true
}

// ShareForRound implements Source. Pairing arithmetic here is hundreds
// of milliseconds per call, so hits on the own-share cache matter even
// more than for the DLEQ backend.
func (b *BLS) ShareForRound(k types.Round) (*types.BeaconShare, error) {
	if k < b.prunedBefore {
		return nil, fmt.Errorf("beacon: share for round %d: %w", k, ErrPruned)
	}
	if sh, ok := b.own.get(k); ok {
		return sh, nil
	}
	msg, ok := b.message(k)
	if !ok {
		return nil, fmt.Errorf("beacon: R_%d not yet known, cannot sign R_%d", k-1, k)
	}
	share := b.sk.SignShare(msg)
	sh := &types.BeaconShare{Round: k, Signer: b.self, Share: share.Sig.Point().Encode()}
	b.own.put(k, sh)
	return sh, nil
}

// CachedShareForRound implements Source.
func (b *BLS) CachedShareForRound(k types.Round) (*types.BeaconShare, bool) {
	if k < b.prunedBefore {
		return nil, false
	}
	return b.own.get(k)
}

// AddShare implements Source; shares are structurally validated here and
// cryptographically verified at Reveal (which may happen later, once
// R_{k−1} is known).
func (b *BLS) AddShare(s *types.BeaconShare) (bool, error) {
	if s.Signer < 0 || int(s.Signer) >= b.n {
		return false, fmt.Errorf("beacon: signer %d out of range", s.Signer)
	}
	if s.Round == 0 {
		return false, fmt.Errorf("beacon: share for genesis round")
	}
	pt, err := bls.DecodeG1(s.Share)
	if err != nil {
		return false, fmt.Errorf("beacon: malformed BLS share: %w", err)
	}
	m := b.shares[s.Round]
	if m == nil {
		m = make(map[types.PartyID]*bls.SigShare)
		b.shares[s.Round] = m
	}
	if _, dup := m[s.Signer]; dup {
		return false, nil
	}
	m[s.Signer] = &bls.SigShare{Index: int(s.Signer), Sig: bls.SignatureFromPoint(pt)}
	return true, nil
}

// ShareCount implements Source.
func (b *BLS) ShareCount(k types.Round) int { return len(b.shares[k]) }

// Have implements Source.
func (b *BLS) Have(k types.Round) bool {
	_, ok := b.digests[k]
	return ok
}

// Reveal implements Source: combine (and pairing-verify) any t+1 shares.
func (b *BLS) Reveal(k types.Round) (hash.Digest, bool) {
	if d, ok := b.digests[k]; ok {
		return d, true
	}
	msg, ok := b.message(k)
	if !ok {
		return hash.Digest{}, false
	}
	m := b.shares[k]
	if len(m) < b.pub.Threshold {
		return hash.Digest{}, false
	}
	list := make([]*bls.SigShare, 0, len(m))
	for p := 0; p < b.n; p++ {
		if s, ok := m[types.PartyID(p)]; ok {
			list = append(list, s)
		}
	}
	sig, err := b.pub.Combine(msg, list)
	if err != nil {
		return hash.Digest{}, false
	}
	// Defense in depth: the combined value must verify under the global
	// key (the third-party-verifiable property BLS adds over the DLEQ
	// backend).
	if err := b.pub.VerifyCombined(msg, sig); err != nil {
		return hash.Digest{}, false
	}
	b.values[k] = sig
	d := hash.Sum(hash.DomainBeacon, sig.Point().Encode())
	b.digests[k] = d
	return d, true
}

// Digest implements Source.
func (b *BLS) Digest(k types.Round) (hash.Digest, bool) {
	d, ok := b.digests[k]
	return d, ok
}

// Permutation implements Source.
func (b *BLS) Permutation(k types.Round) ([]types.PartyID, bool) {
	if p, ok := b.perms[k]; ok {
		return p, true
	}
	d, ok := b.digests[k]
	if !ok {
		return nil, false
	}
	p := PermutationFromDigest(d, b.n)
	b.perms[k] = p
	return p, true
}

// RankOf implements Source.
func (b *BLS) RankOf(k types.Round, p types.PartyID) (types.Rank, bool) {
	perm, ok := b.Permutation(k)
	if !ok {
		return 0, false
	}
	for r, q := range perm {
		if q == p {
			return types.Rank(r), true
		}
	}
	return 0, false
}

// Leader implements Source.
func (b *BLS) Leader(k types.Round) (types.PartyID, bool) {
	perm, ok := b.Permutation(k)
	if !ok {
		return 0, false
	}
	return perm[0], true
}

// Prune implements Source.
func (b *BLS) Prune(before types.Round) {
	for k := range b.shares {
		if k < before {
			delete(b.shares, k)
		}
	}
	for k := range b.perms {
		if k < before {
			delete(b.perms, k)
		}
	}
	for k := range b.values {
		if k < before {
			delete(b.values, k)
		}
	}
	b.own.pruneBefore(before)
	if before > b.prunedBefore {
		b.prunedBefore = before
	}
}

// InstallDigest implements Source.
func (b *BLS) InstallDigest(k types.Round, d hash.Digest) {
	if _, ok := b.digests[k]; !ok {
		b.digests[k] = d
	}
}

// EncodeOutput implements OutputSource: the combined unique signature
// σ_k as an uncompressed G1 point. Every honest party recovers the
// identical point, so outputs deduplicate like any other artifact.
func (b *BLS) EncodeOutput(k types.Round) ([]byte, bool) {
	sig, ok := b.values[k]
	if !ok {
		return nil, false
	}
	return sig.Point().Encode(), true
}

// VerifyOutput implements OutputSource: one pairing check of σ_k
// against the global key — the third-party-verifiable property that
// justifies relaying outputs instead of shares for this backend.
func (b *BLS) VerifyOutput(k types.Round, out []byte) error {
	msg, ok := b.message(k)
	if !ok {
		return fmt.Errorf("beacon: R_%d not yet known, cannot verify R_%d", k-1, k)
	}
	pt, err := bls.DecodeG1(out)
	if err != nil {
		return fmt.Errorf("beacon: malformed output: %w", err)
	}
	return b.pub.VerifyCombined(msg, bls.SignatureFromPoint(pt))
}

// InstallOutput implements OutputSource.
func (b *BLS) InstallOutput(k types.Round, out []byte) error {
	if k == 0 {
		return fmt.Errorf("beacon: output for genesis round")
	}
	pt, err := bls.DecodeG1(out)
	if err != nil {
		return fmt.Errorf("beacon: malformed output: %w", err)
	}
	if k < b.prunedBefore {
		return nil
	}
	if _, ok := b.digests[k]; ok {
		return nil
	}
	sig := bls.SignatureFromPoint(pt)
	b.values[k] = sig
	b.digests[k] = hash.Sum(hash.DomainBeacon, sig.Point().Encode())
	return nil
}

var (
	_ Source       = (*BLS)(nil)
	_ OutputSource = (*BLS)(nil)
)
