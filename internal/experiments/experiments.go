// Package experiments reproduces the paper's evaluation: Table 1 (§5)
// and the quantitative analytical claims of §1/§1.1, each as a
// parameterised sweep over the simulation harness. The experiment index
// lives in DESIGN.md §3; EXPERIMENTS.md records paper-vs-measured
// values. Each experiment returns a Table that cmd/iccbench prints and
// the root benchmark suite reports as custom metrics.
package experiments

import (
	"fmt"
	"strings"

	"icc/internal/core"
)

// simPruneDepth is the retention horizon simulation experiments run
// with: a quarter of core.DefaultPruneDepth — deep enough that artifact
// resync always succeeds within a run, small enough that pruning (and
// the memory bound it enforces) actually triggers within a few hundred
// simulated rounds. Sweeps that need a different horizon scale this
// value (2× for the deep-retention runs, ½ for the smallest
// dissemination grids) instead of inventing fresh literals.
const simPruneDepth = core.DefaultPruneDepth / 4

// Table is a rendered experiment result.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics carries machine-readable headline scalars (e.g. latency
	// percentiles) that BENCH json records and dashboards can consume
	// without parsing rendered cells. Optional.
	Metrics map[string]float64 `json:",omitempty"`
}

// SetMetric records one machine-readable scalar.
func (t *Table) SetMetric(name string, v float64) {
	if t.Metrics == nil {
		t.Metrics = make(map[string]float64)
	}
	t.Metrics[name] = v
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale shrinks experiment durations for quick runs: 1.0 is the full
// configuration recorded in EXPERIMENTS.md, smaller values shorten
// simulated windows and sweep points proportionally (min 1 round kept).
type Scale float64

// scaleInt applies the scale to a count with a floor of 1.
func (s Scale) scaleInt(v int) int {
	if s <= 0 || s >= 1 {
		return v
	}
	out := int(float64(v) * float64(s))
	if out < 1 {
		out = 1
	}
	return out
}
