package types

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"icc/internal/crypto/hash"
)

func TestMaxFaults(t *testing.T) {
	cases := []struct{ n, t int }{
		{1, 0}, {2, 0}, {3, 0}, {4, 1}, {6, 1}, {7, 2},
		{13, 4}, {31, 10}, {40, 13}, {100, 33},
	}
	for _, c := range cases {
		if got := MaxFaults(c.n); got != c.t {
			t.Errorf("MaxFaults(%d) = %d, want %d", c.n, got, c.t)
		}
		// 3t < n must hold, and t must be maximal.
		if 3*c.t >= c.n {
			t.Errorf("n=%d: 3t >= n", c.n)
		}
		if c.n >= 4 && 3*(c.t+1) < c.n {
			t.Errorf("n=%d: t not maximal", c.n)
		}
	}
}

func TestQuorums(t *testing.T) {
	for n := 4; n <= 100; n++ {
		tf := MaxFaults(n)
		if NotaryQuorum(n) != n-tf {
			t.Fatalf("n=%d: notary quorum", n)
		}
		if BeaconQuorum(n) != tf+1 {
			t.Fatalf("n=%d: beacon quorum", n)
		}
		// Two notary quorums intersect in at least one honest party:
		// 2(n-t) - n = n - 2t >= t+1.
		if 2*NotaryQuorum(n)-n < tf+1 {
			t.Fatalf("n=%d: quorum intersection too small", n)
		}
	}
}

func TestStandardDelays(t *testing.T) {
	dprop, dntry := StandardDelays(100*time.Millisecond, 10*time.Millisecond)
	if dprop(0) != 0 {
		t.Fatal("Δprop(0) != 0")
	}
	if dprop(3) != 600*time.Millisecond {
		t.Fatalf("Δprop(3) = %v", dprop(3))
	}
	if dntry(0) != 10*time.Millisecond {
		t.Fatalf("Δntry(0) = %v", dntry(0))
	}
	// Liveness requirement of §4 lemma (v): 2δ + Δprop(0) <= Δntry(1)
	// must hold whenever δ <= Δbnd.
	delta := 100 * time.Millisecond
	if 2*delta+dprop(0) > dntry(1) {
		t.Fatal("standard delays violate the liveness requirement at δ = Δbnd")
	}
	// Non-decreasing.
	for r := Rank(0); r < 10; r++ {
		if dprop(r+1) < dprop(r) || dntry(r+1) < dntry(r) {
			t.Fatal("delay functions must be non-decreasing")
		}
	}
}

func TestBlockHashDistinctness(t *testing.T) {
	base := &Block{Round: 3, Proposer: 2, ParentHash: hash.SumUint64(hash.DomainBlock, 1), Payload: []byte("p")}
	variants := []*Block{
		{Round: 4, Proposer: 2, ParentHash: base.ParentHash, Payload: []byte("p")},
		{Round: 3, Proposer: 1, ParentHash: base.ParentHash, Payload: []byte("p")},
		{Round: 3, Proposer: 2, ParentHash: hash.SumUint64(hash.DomainBlock, 2), Payload: []byte("p")},
		{Round: 3, Proposer: 2, ParentHash: base.ParentHash, Payload: []byte("q")},
	}
	for i, v := range variants {
		if v.Hash() == base.Hash() {
			t.Errorf("variant %d hashes equal to base", i)
		}
	}
	if base.Hash() != base.Hash() {
		t.Error("hash not deterministic")
	}
}

func TestRootBlock(t *testing.T) {
	r := RootBlock()
	if !r.IsRoot() {
		t.Fatal("root block not root")
	}
	if (&Block{Round: 1}).IsRoot() {
		t.Fatal("round-1 block claims to be root")
	}
}

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Marshal(m)
	out, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("%s: unmarshal: %v", m.Kind(), err)
	}
	if out.Kind() != m.Kind() {
		t.Fatalf("kind changed: %s -> %s", m.Kind(), out.Kind())
	}
	return out
}

func TestMessageRoundTrips(t *testing.T) {
	h1 := hash.SumUint64(hash.DomainBlock, 1)
	h2 := hash.SumUint64(hash.DomainBlock, 2)
	msgs := []Message{
		&BlockMsg{Block: &Block{Round: 5, Proposer: 3, ParentHash: h1, Payload: []byte("cmds")}},
		&BlockMsg{Block: &Block{Round: 1, Proposer: 0, ParentHash: hash.Zero, Payload: nil}},
		&Authenticator{Round: 5, Proposer: 3, BlockHash: h1, Sig: []byte{1, 2, 3}},
		&NotarizationShare{Round: 5, Proposer: 3, BlockHash: h1, Signer: 7, Sig: []byte{4, 5}},
		&Notarization{Round: 5, Proposer: 3, BlockHash: h1, Agg: []byte{9, 9, 9}},
		&FinalizationShare{Round: 5, Proposer: 3, BlockHash: h1, Signer: 2, Sig: []byte{6}},
		&Finalization{Round: 5, Proposer: 3, BlockHash: h1, Agg: []byte{7, 7}},
		&BeaconShare{Round: 6, Signer: 1, Share: []byte{8, 8, 8, 8}},
		&Advert{Refs: []Ref{{Kind: KindBlock, ID: h1}, {Kind: KindNotarization, ID: h2}}},
		&Advert{Refs: nil},
		&Request{Refs: []Ref{{Kind: KindBlock, ID: h2}}},
		&Fragment{Round: 9, Proposer: 1, Root: h1, BlockLen: 1000, DataShards: 5,
			Index: 3, Sender: 4, Echo: true, Data: []byte("frag"), Proof: []hash.Digest{h1, h2}},
		&Fragment{Round: 9, Proposer: 1, Root: h1, BlockLen: 0, DataShards: 1,
			Index: 0, Sender: 0, Echo: false, Data: nil, Proof: nil},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%s: round-trip mismatch\n got: %#v\nwant: %#v", m.Kind(), got, m)
		}
	}
}

// normalize maps nil and empty slices to a canonical form for comparison.
func normalize(m Message) Message {
	b := Marshal(m)
	out, _ := Unmarshal(b)
	return out
}

func TestBundleRoundTrip(t *testing.T) {
	h1 := hash.SumUint64(hash.DomainBlock, 1)
	bundle := &Bundle{Messages: []Message{
		&BlockMsg{Block: &Block{Round: 2, Proposer: 1, ParentHash: h1, Payload: []byte("x")}},
		&Authenticator{Round: 2, Proposer: 1, BlockHash: h1, Sig: []byte{1}},
		&Notarization{Round: 1, Proposer: 0, BlockHash: h1, Agg: []byte{2}},
	}}
	got := roundTrip(t, bundle).(*Bundle)
	if len(got.Messages) != 3 {
		t.Fatalf("bundle length %d, want 3", len(got.Messages))
	}
	if got.Messages[0].Kind() != KindBlock || got.Messages[2].Kind() != KindNotarization {
		t.Fatal("bundle element kinds wrong")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Unmarshal([]byte{0xff, 1, 2}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Truncated block message.
	full := Marshal(&BlockMsg{Block: &Block{Round: 1, Proposer: 0, Payload: []byte("abc")}})
	if _, err := Unmarshal(full[:len(full)-2]); err == nil {
		t.Fatal("truncated message accepted")
	}
	// Trailing bytes.
	if _, err := Unmarshal(append(bytes.Clone(full), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestVarBytesLengthLimit(t *testing.T) {
	e := NewEncoder(16)
	e.U8(uint8(KindBeaconShare))
	e.U64(1)
	e.U64(1)
	e.U32(0xffffffff) // absurd length prefix
	if _, err := Unmarshal(e.Bytes()); err == nil {
		t.Fatal("absurd length prefix accepted")
	}
}

func TestRefOfStability(t *testing.T) {
	m1 := &Notarization{Round: 1, Proposer: 0, BlockHash: hash.SumUint64(hash.DomainBlock, 9), Agg: []byte{1}}
	m2 := &Notarization{Round: 1, Proposer: 0, BlockHash: hash.SumUint64(hash.DomainBlock, 9), Agg: []byte{1}}
	m3 := &Notarization{Round: 2, Proposer: 0, BlockHash: hash.SumUint64(hash.DomainBlock, 9), Agg: []byte{1}}
	if RefOf(m1) != RefOf(m2) {
		t.Fatal("identical messages have different refs")
	}
	if RefOf(m1) == RefOf(m3) {
		t.Fatal("different messages share a ref")
	}
	if RefOf(m1).Kind != KindNotarization {
		t.Fatal("ref kind wrong")
	}
	// Certificates ref their statement, not their bytes: a different
	// signer subset for the same statement is the same artifact, while
	// the notarization and finalization of one statement stay distinct.
	m4 := &Notarization{Round: 1, Proposer: 0, BlockHash: hash.SumUint64(hash.DomainBlock, 9), Agg: []byte{7, 7}}
	if RefOf(m1) != RefOf(m4) {
		t.Fatal("subset-variant certificates have different refs")
	}
	f1 := &Finalization{Round: 1, Proposer: 0, BlockHash: hash.SumUint64(hash.DomainBlock, 9), Agg: []byte{1}}
	if RefOf(m1) == RefOf(f1) {
		t.Fatal("notarization and finalization share a ref")
	}
}

func TestQuickBeaconShareRoundTrip(t *testing.T) {
	f := func(round uint64, signer uint8, share []byte) bool {
		m := &BeaconShare{Round: Round(round), Signer: PartyID(signer), Share: share}
		out, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		got := out.(*BeaconShare)
		return got.Round == m.Round && got.Signer == m.Signer && bytes.Equal(got.Share, m.Share)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBlockRoundTrip(t *testing.T) {
	f := func(round uint64, proposer uint8, parent [32]byte, payload []byte) bool {
		b := &Block{Round: Round(round), Proposer: PartyID(proposer), ParentHash: hash.Digest(parent), Payload: payload}
		out, err := Unmarshal(Marshal(&BlockMsg{Block: b}))
		if err != nil {
			return false
		}
		got := out.(*BlockMsg).Block
		return got.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigningBytesInjective(t *testing.T) {
	h := hash.SumUint64(hash.DomainBlock, 1)
	a := SigningBytes(1, 2, h)
	b := SigningBytes(2, 1, h)
	if bytes.Equal(a, b) {
		t.Fatal("signing bytes collide across (round, proposer) swap")
	}
}

func BenchmarkMarshalBlock1KB(b *testing.B) {
	blk := &BlockMsg{Block: &Block{Round: 10, Proposer: 1, Payload: make([]byte, 1024)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(blk)
	}
}

func BenchmarkUnmarshalBlock1KB(b *testing.B) {
	raw := Marshal(&BlockMsg{Block: &Block{Round: 10, Proposer: 1, Payload: make([]byte, 1024)}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}
