package clock

import (
	"sync"
	"testing"
	"time"
)

func TestManualStartsAtZero(t *testing.T) {
	var m Manual
	if m.Now() != 0 {
		t.Fatalf("zero-value Manual reads %v", m.Now())
	}
}

func TestManualAdvanceAndSet(t *testing.T) {
	var m Manual
	if got := m.Advance(50 * time.Millisecond); got != 50*time.Millisecond {
		t.Fatalf("Advance returned %v", got)
	}
	m.Set(200 * time.Millisecond)
	if m.Now() != 200*time.Millisecond {
		t.Fatalf("Set: %v", m.Now())
	}
	// Time never moves backwards.
	m.Set(100 * time.Millisecond)
	if m.Now() != 200*time.Millisecond {
		t.Fatalf("clock moved backwards to %v", m.Now())
	}
}

func TestManualConcurrent(t *testing.T) {
	var m Manual
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Advance(time.Microsecond)
				_ = m.Now()
			}
		}()
	}
	wg.Wait()
	if m.Now() != 8*1000*time.Microsecond {
		t.Fatalf("lost updates: %v", m.Now())
	}
}

func TestWallMonotone(t *testing.T) {
	w := NewWall()
	a := w.Now()
	time.Sleep(2 * time.Millisecond)
	b := w.Now()
	if b <= a {
		t.Fatalf("wall clock not advancing: %v then %v", a, b)
	}
}

func TestWallAtEpoch(t *testing.T) {
	w := NewWallAt(time.Now().Add(-time.Hour))
	if w.Now() < time.Hour {
		t.Fatalf("epoch offset lost: %v", w.Now())
	}
}
