package pool

import (
	"fmt"

	"icc/internal/crypto"
	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/keys"
	"icc/internal/crypto/sig"
	"icc/internal/types"
)

// VerifyPolicy selects which cryptographic admission checks run on
// artifacts entering a pool.
type VerifyPolicy int

const (
	// VerifyFull checks every signature: authenticators, shares, and
	// the n−t signatures inside combined aggregates. The production
	// default for a pool fed raw network input.
	VerifyFull VerifyPolicy = iota
	// VerifySharesOnly checks authenticators and shares but admits
	// combined aggregates unverified. Used by large honest-only
	// simulation sweeps where aggregates are always locally combined
	// from already-verified shares (the former SkipAggregateVerify).
	VerifySharesOnly
	// VerifyPreVerified admits everything without cryptographic checks:
	// the input was already verified upstream (the parallel verification
	// pipeline), and re-checking on the sequential engine path would
	// undo the pipelining. Structural checks (duplicate suppression,
	// round/proposer consistency against stored blocks) still apply —
	// they are pool-state-dependent and cannot move upstream.
	VerifyPreVerified
)

// String implements fmt.Stringer.
func (p VerifyPolicy) String() string {
	switch p {
	case VerifyFull:
		return "full"
	case VerifySharesOnly:
		return "shares-only"
	case VerifyPreVerified:
		return "pre-verified"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Verifier performs the cryptographic admission checks for pool
// artifacts. Implementations must be safe for concurrent use: the same
// verifier instance is shared between a pool (sequential engine path)
// and the parallel verification pipeline's workers.
//
// Each method returns nil if the artifact's cryptography is acceptable
// under the verifier's policy; a non-nil error wraps one of the
// internal/crypto sentinels so callers can classify the reject.
// Structural validity (index ranges, round ≠ 0) is included: a verifier
// must be usable on raw network input before any pool state is
// consulted.
type Verifier interface {
	Authenticator(a *types.Authenticator) error
	NotarizationShare(s *types.NotarizationShare) error
	Notarization(nz *types.Notarization) error
	FinalizationShare(s *types.FinalizationShare) error
	Finalization(f *types.Finalization) error
}

// CryptoVerifier is the standard Verifier over a cluster's public key
// material. It is stateless apart from the read-only keys, hence safe
// for concurrent use by any number of goroutines.
type CryptoVerifier struct {
	pub    *keys.Public
	policy VerifyPolicy
}

var _ Verifier = (*CryptoVerifier)(nil)

// NewVerifier builds a CryptoVerifier with the given policy.
func NewVerifier(pub *keys.Public, policy VerifyPolicy) *CryptoVerifier {
	return &CryptoVerifier{pub: pub, policy: policy}
}

// Policy reports the verifier's policy.
func (v *CryptoVerifier) Policy() VerifyPolicy { return v.policy }

// Authenticator checks the proposer's S_auth signature on the block hash.
func (v *CryptoVerifier) Authenticator(a *types.Authenticator) error {
	if a == nil || a.Proposer < 0 || int(a.Proposer) >= v.pub.N || a.Round == 0 {
		return fmt.Errorf("%w: malformed authenticator", crypto.ErrBadSignature)
	}
	if v.policy == VerifyPreVerified {
		return nil
	}
	msg := types.SigningBytes(a.Round, a.Proposer, a.BlockHash)
	return sig.Verify(v.pub.Auth[a.Proposer], types.DomainAuthenticator, msg, a.Sig)
}

// NotarizationShare checks one party's S_notary share.
func (v *CryptoVerifier) NotarizationShare(s *types.NotarizationShare) error {
	if s == nil || s.Signer < 0 || int(s.Signer) >= v.pub.N || s.Round == 0 {
		return fmt.Errorf("%w: malformed notarization share", crypto.ErrBadShare)
	}
	if v.policy == VerifyPreVerified {
		return nil
	}
	msg := types.SigningBytes(s.Round, s.Proposer, s.BlockHash)
	return v.pub.Notary.VerifyShare(types.DomainNotarization, msg, &aggsig.Share{Signer: int(s.Signer), Signature: s.Sig})
}

// Notarization checks a combined n−t notarization aggregate.
func (v *CryptoVerifier) Notarization(nz *types.Notarization) error {
	if nz == nil || nz.Round == 0 {
		return fmt.Errorf("%w: malformed notarization", crypto.ErrBadAggregate)
	}
	if v.policy != VerifyFull {
		return nil
	}
	agg, err := v.pub.Notary.Decode(nz.Agg)
	if err != nil {
		return err
	}
	msg := types.SigningBytes(nz.Round, nz.Proposer, nz.BlockHash)
	return v.pub.Notary.Verify(types.DomainNotarization, msg, agg)
}

// FinalizationShare checks one party's S_final share.
func (v *CryptoVerifier) FinalizationShare(s *types.FinalizationShare) error {
	if s == nil || s.Signer < 0 || int(s.Signer) >= v.pub.N || s.Round == 0 {
		return fmt.Errorf("%w: malformed finalization share", crypto.ErrBadShare)
	}
	if v.policy == VerifyPreVerified {
		return nil
	}
	msg := types.SigningBytes(s.Round, s.Proposer, s.BlockHash)
	return v.pub.Final.VerifyShare(types.DomainFinalization, msg, &aggsig.Share{Signer: int(s.Signer), Signature: s.Sig})
}

// Finalization checks a combined n−t finalization aggregate.
func (v *CryptoVerifier) Finalization(f *types.Finalization) error {
	if f == nil || f.Round == 0 {
		return fmt.Errorf("%w: malformed finalization", crypto.ErrBadAggregate)
	}
	if v.policy != VerifyFull {
		return nil
	}
	agg, err := v.pub.Final.Decode(f.Agg)
	if err != nil {
		return err
	}
	msg := types.SigningBytes(f.Round, f.Proposer, f.BlockHash)
	return v.pub.Final.Verify(types.DomainFinalization, msg, agg)
}
