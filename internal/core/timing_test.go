package core

import (
	"testing"
	"time"

	"icc/internal/simnet"
)

// TestSteadyStateTiming checks the headline performance claims of the
// paper (§1): with an honest leader and network delay δ ≤ Δbnd, ICC0
// finishes a round every ≈2δ (reciprocal throughput) and commits a
// proposed block after ≈3δ (latency).
func TestSteadyStateTiming(t *testing.T) {
	const delta = 10 * time.Millisecond
	h := newHarness(t, harnessOptions{
		n:          7,
		seed:       3,
		delay:      simnet.Fixed{D: delta},
		deltaBound: 50 * time.Millisecond,
		simBeacon:  true, // timing shape, not crypto, is under test
	})
	h.net.Start()
	if !h.net.RunUntil(func() bool { return len(h.committed[0]) >= 50 }, 60*time.Second) {
		t.Fatal("no progress")
	}
	s := h.rec.Summarize()

	// Reciprocal throughput: expect ≈ 2δ. Allow [1.5δ, 3δ] to absorb
	// startup effects.
	if s.MeanRoundTime < delta*3/2 || s.MeanRoundTime > delta*3 {
		t.Errorf("mean round time %v, want ≈ 2δ = %v", s.MeanRoundTime, 2*delta)
	}
	// Latency: proposal → first commit, expect ≈ 3δ.
	if s.MeanLatency < delta*2 || s.MeanLatency > delta*4 {
		t.Errorf("mean latency %v, want ≈ 3δ = %v", s.MeanLatency, 3*delta)
	}
	t.Logf("round time %v (2δ=%v), latency %v (3δ=%v), round msgs mean %.0f",
		s.MeanRoundTime, 2*delta, s.MeanLatency, 3*delta, s.MeanRoundMsgs)
}

// TestOptimisticResponsiveness: the round time must track the actual
// network delay δ, not the pessimistic bound Δbnd (paper §1: ICC is
// optimistically responsive, unlike Tendermint).
func TestOptimisticResponsiveness(t *testing.T) {
	const delta = 5 * time.Millisecond
	h := newHarness(t, harnessOptions{
		n:          4,
		seed:       4,
		delay:      simnet.Fixed{D: delta},
		deltaBound: 2 * time.Second, // Δbnd 400x larger than δ
		simBeacon:  true,
	})
	h.net.Start()
	if !h.net.RunUntil(func() bool { return len(h.committed[0]) >= 20 }, 120*time.Second) {
		t.Fatal("no progress")
	}
	s := h.rec.Summarize()
	if s.MeanRoundTime > 10*delta {
		t.Errorf("round time %v is not responsive (δ=%v, Δbnd=2s)", s.MeanRoundTime, delta)
	}
	t.Logf("responsive round time %v with Δbnd=2s, δ=%v", s.MeanRoundTime, delta)
}

// TestMessageComplexitySynchronous: in synchronous rounds with honest
// parties the message complexity should be O(n²) — concretely here,
// bounded by a small constant times n², not n³ (paper §1).
func TestMessageComplexitySynchronous(t *testing.T) {
	const n = 13
	h := newHarness(t, harnessOptions{
		n:         n,
		seed:      5,
		delay:     simnet.Fixed{D: 10 * time.Millisecond},
		simBeacon: true,
	})
	h.net.Start()
	if !h.net.RunUntil(func() bool { return len(h.committed[0]) >= 20 }, 60*time.Second) {
		t.Fatal("no progress")
	}
	s := h.rec.Summarize()
	// Each round: n beacon shares + 1 proposal bundle + n notarization
	// shares + n notarizations + n finalization shares + n finalizations
	// ≈ 5n broadcasts ⇒ ≈ 5n(n−1) messages. Anything over, say, 8n²
	// would indicate the O(n³) path is being taken.
	limit := float64(8 * n * n)
	if s.MeanRoundMsgs > limit {
		t.Errorf("mean round messages %.0f exceeds O(n²) budget %.0f", s.MeanRoundMsgs, limit)
	}
	t.Logf("n=%d: mean round msgs %.0f (n²=%d)", n, s.MeanRoundMsgs, n*n)
}
