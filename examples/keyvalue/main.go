// Keyvalue: a replicated key-value store under sustained client load,
// running Protocol ICC1 (gossip dissemination — the production Internet
// Computer configuration). Concurrent clients issue sets, appends, and
// deletes against different replicas; the example verifies that every
// replica ends in exactly the same state and prints throughput figures.
//
//	go run ./examples/keyvalue
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"icc"
)

const (
	parties  = 7
	clients  = 5
	requests = 40 // per client
)

func main() {
	cluster, err := icc.NewLocalCluster(parties,
		icc.WithMode(icc.ICC1),
		icc.WithDeltaBound(40*time.Millisecond),
	)
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for clientID := 1; clientID <= clients; clientID++ {
		clientID := clientID
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(clientID)))
			// Each client talks to its own replica through its gateway.
			gw := cluster.Client(clientID % parties)
			for seq := uint64(1); seq <= requests; seq++ {
				cmd := icc.Command{
					Client: uint64(clientID),
					Seq:    seq,
					Key:    fmt.Sprintf("client%d/item%d", clientID, rng.Intn(10)),
				}
				switch rng.Intn(3) {
				case 0:
					cmd.Op = icc.OpSet
					cmd.Value = []byte(fmt.Sprintf("v%d", seq))
				case 1:
					cmd.Op = icc.OpAppend
					cmd.Value = []byte("+")
				default:
					cmd.Op = icc.OpDelete
				}
				if _, err := gw.Submit(ctx, cmd); err != nil {
					log.Fatalf("client %d submit seq %d: %v", clientID, seq, err)
				}
				time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("submitted %d commands from %d clients\n", clients*requests, clients)

	// Wait for every replica to apply all operations.
	total := uint64(clients * requests)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for p := 0; p < parties; p++ {
			if cluster.KV(p).AppliedOps() < total {
				done = false
				break
			}
		}
		if done {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	elapsed := time.Since(start)

	ref := cluster.KV(0).StateHash()
	agree := true
	for p := 0; p < parties; p++ {
		kv := cluster.KV(p)
		match := kv.StateHash() == ref
		agree = agree && match
		fmt.Printf("party %d: %3d keys, %3d ops applied, state %s match=%v\n",
			p, kv.Len(), kv.AppliedOps(), kv.StateHash().Short(), match)
	}
	if !agree {
		log.Fatal("replica states diverged — this must never happen")
	}
	fmt.Printf("\n%d operations replicated across %d parties in %v (%.0f ops/s end-to-end)\n",
		total, parties, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
}
