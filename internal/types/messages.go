package types

import (
	"errors"
	"fmt"

	"icc/internal/crypto/hash"
)

// Kind discriminates wire messages and pool artifacts.
type Kind uint8

// Message kinds. Kinds 1–7 are the artifacts of ICC0 (paper §3.4);
// 8 is a transport-level bundle; 9–10 belong to the gossip sub-layer
// (ICC1); 11 to the erasure-coded reliable broadcast (ICC2); 14–15 to
// the durability layer (signed finalized-state checkpoints); 16 is the
// gossip relay's coalesced share batch (sharebundle.go); 17 is a
// recovered beacon output relayed in place of t+1 beacon shares.
const (
	KindBlock Kind = iota + 1
	KindAuthenticator
	KindNotarizationShare
	KindNotarization
	KindFinalizationShare
	KindFinalization
	KindBeaconShare
	KindBundle
	KindAdvert
	KindRequest
	KindFragment
	KindOpaque
	KindStatus
	KindCheckpointShare
	KindCheckpoint
	KindShareBundle
	KindBeaconOutput
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBlock:
		return "block"
	case KindAuthenticator:
		return "authenticator"
	case KindNotarizationShare:
		return "notarization-share"
	case KindNotarization:
		return "notarization"
	case KindFinalizationShare:
		return "finalization-share"
	case KindFinalization:
		return "finalization"
	case KindBeaconShare:
		return "beacon-share"
	case KindBundle:
		return "bundle"
	case KindAdvert:
		return "advert"
	case KindRequest:
		return "request"
	case KindFragment:
		return "fragment"
	case KindOpaque:
		return "opaque"
	case KindStatus:
		return "status"
	case KindCheckpointShare:
		return "checkpoint-share"
	case KindCheckpoint:
		return "checkpoint"
	case KindShareBundle:
		return "share-bundle"
	case KindBeaconOutput:
		return "beacon-output"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is any value that can travel between parties.
type Message interface {
	Kind() Kind
	encodeBody(e *Encoder)
}

// BlockMsg carries a proposed block.
type BlockMsg struct {
	Block *Block
}

// Authenticator is (authenticator, k, α, H(B), σ): the proposer's S_auth
// signature binding the block to its author (paper §3.4).
type Authenticator struct {
	Round     Round
	Proposer  PartyID
	BlockHash hash.Digest
	Sig       []byte
}

// NotarizationShare is one party's S_notary signature share on
// (notarization, k, α, H(B)).
type NotarizationShare struct {
	Round     Round
	Proposer  PartyID
	BlockHash hash.Digest
	Signer    PartyID
	Sig       []byte
}

// Notarization is a combined n−t quorum signature on
// (notarization, k, α, H(B)).
type Notarization struct {
	Round     Round
	Proposer  PartyID
	BlockHash hash.Digest
	Agg       []byte // encoded multisig.Aggregate
}

// FinalizationShare is one party's S_final signature share on
// (finalization, k, α, H(B)).
type FinalizationShare struct {
	Round     Round
	Proposer  PartyID
	BlockHash hash.Digest
	Signer    PartyID
	Sig       []byte
}

// Finalization is a combined n−t quorum signature on
// (finalization, k, α, H(B)).
type Finalization struct {
	Round     Round
	Proposer  PartyID
	BlockHash hash.Digest
	Agg       []byte
}

// BeaconShare is one party's S_beacon threshold-signature share on the
// previous beacon value, used to derive R_k (paper §2.3).
type BeaconShare struct {
	Round  Round // the round whose beacon this share contributes to
	Signer PartyID
	Share  []byte // encoded thresig.SigShare
}

// BeaconOutput is a recovered beacon value for one round: the combined
// unique threshold signature σ_k itself, not a share of it. A relay
// that has already reconstructed R_k forwards this one message instead
// of t+1 individual shares — the reconstruct-and-forward optimisation
// the ICC gossip layer's O(n) per-party communication argument assumes.
// It is only emitted and accepted by beacon sources whose combined
// output is third-party verifiable (beacon.OutputSource); receivers
// must verify the output against the beacon's global key before
// installing it.
type BeaconOutput struct {
	Round  Round
	Output []byte // encoded combined beacon signature
}

// Bundle groups several messages into one transmission, as when a party
// broadcasts "B, B's authenticator, and the notarization for B's parent"
// in one step (paper Fig. 1).
//
// Resync marks the bundle as resynchronisation traffic — a catch-up
// batch answering a laggard's Status, a stall re-broadcast, or an async
// backfill reply. The verification pipeline dequeues marked bundles
// from a dedicated priority lane (so a live firehose cannot starve a
// rejoining party's catch-up) and applies chain-aware batch
// verification to their contents. The marker is advisory: it never
// weakens verification of an artifact that is not provably hash-linked
// to a fully verified aggregate.
type Bundle struct {
	Messages []Message
	Resync   bool
}

// Ref identifies an artifact by kind and content hash; the gossip
// sub-layer adverts and requests artifacts by Ref.
type Ref struct {
	Kind Kind
	ID   hash.Digest
}

// Advert announces artifact availability to a peer (gossip push phase).
type Advert struct {
	Refs []Ref
}

// Request asks a peer for the bodies of advertised artifacts
// (gossip pull phase).
type Request struct {
	Refs []Ref
}

// Opaque carries a foreign protocol's message through the same
// transports and simulators as ICC traffic. The baseline protocols
// (HotStuff, Tendermint) define their own encodings inside Data; Tag
// discriminates message types within the foreign protocol.
type Opaque struct {
	Tag  uint8
	Data []byte
}

// Status reports a party's protocol frontier — its working round and
// highest finalized round — for the resynchronisation layer: peers that
// see a Status far behind their own round answer with a catch-up bundle
// of the missing notarized blocks. Seq distinguishes successive statuses
// from the same party (content-addressed dissemination layers would
// otherwise deduplicate identical retransmissions).
type Status struct {
	Round     Round
	Finalized Round
	Seq       uint64
}

// CheckpointShare is one party's S_final signature share over a
// checkpoint commitment (checkpoint, k, H(B), H(state), R_k) under
// DomainCheckpoint. Any t+1 matching shares combine into a
// self-authenticating certificate: at least one is from an honest
// party, which only signs the state it computed by executing the
// finalized chain.
type CheckpointShare struct {
	Round        Round
	BlockHash    hash.Digest
	StateHash    hash.Digest
	BeaconDigest hash.Digest
	Signer       PartyID
	Sig          []byte
}

// CheckpointMsg carries a complete certified checkpoint (the
// internal/checkpoint package's encoding) to a peer that fell behind
// the prune horizon. The blob is opaque at this layer to keep the wire
// vocabulary free of the checkpoint package's dependencies; receivers
// decode and verify it before acting on any field.
type CheckpointMsg struct {
	Blob []byte
}

// Fragment is one erasure-coded chunk of a disseminated block (ICC2's
// reliable-broadcast subprotocol). Root is the Merkle root over all n
// fragments; Proof is the inclusion path for Index. Echo distinguishes
// the disseminator's initial send from a receiver's echo.
type Fragment struct {
	Round      Round
	Proposer   PartyID // proposer of the block being disseminated
	Root       hash.Digest
	BlockLen   uint32 // length of the encoded block (for unpadding)
	DataShards uint16 // shards needed to reconstruct (n − 2t)
	Index      uint16 // shard index in [0, n)
	Sender     PartyID
	Echo       bool
	Data       []byte
	Proof      []hash.Digest
}

// Kind implementations.
func (*BlockMsg) Kind() Kind          { return KindBlock }
func (*Authenticator) Kind() Kind     { return KindAuthenticator }
func (*NotarizationShare) Kind() Kind { return KindNotarizationShare }
func (*Notarization) Kind() Kind      { return KindNotarization }
func (*FinalizationShare) Kind() Kind { return KindFinalizationShare }
func (*Finalization) Kind() Kind      { return KindFinalization }
func (*BeaconShare) Kind() Kind       { return KindBeaconShare }
func (*Bundle) Kind() Kind            { return KindBundle }
func (*Advert) Kind() Kind            { return KindAdvert }
func (*Request) Kind() Kind           { return KindRequest }
func (*Fragment) Kind() Kind          { return KindFragment }
func (*Opaque) Kind() Kind            { return KindOpaque }
func (*Status) Kind() Kind            { return KindStatus }
func (*CheckpointShare) Kind() Kind   { return KindCheckpointShare }
func (*CheckpointMsg) Kind() Kind     { return KindCheckpoint }
func (*BeaconOutput) Kind() Kind      { return KindBeaconOutput }

// Compile-time interface checks.
var (
	_ Message = (*BlockMsg)(nil)
	_ Message = (*Authenticator)(nil)
	_ Message = (*NotarizationShare)(nil)
	_ Message = (*Notarization)(nil)
	_ Message = (*FinalizationShare)(nil)
	_ Message = (*Finalization)(nil)
	_ Message = (*BeaconShare)(nil)
	_ Message = (*Bundle)(nil)
	_ Message = (*Advert)(nil)
	_ Message = (*Request)(nil)
	_ Message = (*Fragment)(nil)
	_ Message = (*Opaque)(nil)
	_ Message = (*Status)(nil)
	_ Message = (*CheckpointShare)(nil)
	_ Message = (*CheckpointMsg)(nil)
	_ Message = (*BeaconOutput)(nil)
)

func (m *BlockMsg) encodeBody(e *Encoder) { m.Block.encode(e) }

func (m *Authenticator) encodeBody(e *Encoder) {
	e.U64(uint64(m.Round))
	e.U64(uint64(int64(m.Proposer)))
	e.Bytes32(m.BlockHash)
	e.VarBytes(m.Sig)
}

func encodeShare(e *Encoder, round Round, proposer PartyID, blockHash hash.Digest, signer PartyID, sg []byte) {
	e.U64(uint64(round))
	e.U64(uint64(int64(proposer)))
	e.Bytes32(blockHash)
	e.U64(uint64(int64(signer)))
	e.VarBytes(sg)
}

func (m *NotarizationShare) encodeBody(e *Encoder) {
	encodeShare(e, m.Round, m.Proposer, m.BlockHash, m.Signer, m.Sig)
}

func (m *FinalizationShare) encodeBody(e *Encoder) {
	encodeShare(e, m.Round, m.Proposer, m.BlockHash, m.Signer, m.Sig)
}

func encodeQuorum(e *Encoder, round Round, proposer PartyID, blockHash hash.Digest, agg []byte) {
	e.U64(uint64(round))
	e.U64(uint64(int64(proposer)))
	e.Bytes32(blockHash)
	e.VarBytes(agg)
}

func (m *Notarization) encodeBody(e *Encoder) {
	encodeQuorum(e, m.Round, m.Proposer, m.BlockHash, m.Agg)
}

func (m *Finalization) encodeBody(e *Encoder) {
	encodeQuorum(e, m.Round, m.Proposer, m.BlockHash, m.Agg)
}

// quorumWireSize is the exact Marshal size of a certificate message:
// kind prefix, round u64, proposer u64, blockHash 32, agg var-bytes.
// The agg bytes carry their own leading aggsig scheme tag, so the frame
// size tracks the configured certificate scheme byte-exactly (the
// encode tests pin these against len(Marshal(m))).
func quorumWireSize(agg []byte) int { return 1 + 8 + 8 + 32 + 4 + len(agg) }

// WireSize returns the exact number of bytes Marshal produces.
func (m *Notarization) WireSize() int { return quorumWireSize(m.Agg) }

// WireSize returns the exact number of bytes Marshal produces.
func (m *Finalization) WireSize() int { return quorumWireSize(m.Agg) }

// WireSize returns the exact number of bytes Marshal produces: kind
// prefix, round u64, output var-bytes.
func (m *BeaconOutput) WireSize() int { return 1 + 8 + 4 + len(m.Output) }

func (m *BeaconShare) encodeBody(e *Encoder) {
	e.U64(uint64(m.Round))
	e.U64(uint64(int64(m.Signer)))
	e.VarBytes(m.Share)
}

func (m *Bundle) encodeBody(e *Encoder) {
	var flags uint8
	if m.Resync {
		flags |= 1
	}
	e.U8(flags)
	e.U16(uint16(len(m.Messages)))
	for _, sub := range m.Messages {
		e.VarBytes(Marshal(sub))
	}
}

func encodeRefs(e *Encoder, refs []Ref) {
	e.U16(uint16(len(refs)))
	for _, r := range refs {
		e.U8(uint8(r.Kind))
		e.Bytes32(r.ID)
	}
}

func decodeRefs(d *Decoder) []Ref {
	n := int(d.U16())
	if d.Err() != nil {
		return nil
	}
	refs := make([]Ref, 0, n)
	for i := 0; i < n; i++ {
		k := Kind(d.U8())
		id := d.Bytes32()
		refs = append(refs, Ref{Kind: k, ID: id})
	}
	return refs
}

func (m *Advert) encodeBody(e *Encoder)  { encodeRefs(e, m.Refs) }
func (m *Request) encodeBody(e *Encoder) { encodeRefs(e, m.Refs) }

func (m *Fragment) encodeBody(e *Encoder) {
	e.U64(uint64(m.Round))
	e.U64(uint64(int64(m.Proposer)))
	e.Bytes32(m.Root)
	e.U32(m.BlockLen)
	e.U16(m.DataShards)
	e.U16(m.Index)
	e.U64(uint64(int64(m.Sender)))
	if m.Echo {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.VarBytes(m.Data)
	e.U16(uint16(len(m.Proof)))
	for _, p := range m.Proof {
		e.Bytes32(p)
	}
}

func (m *Opaque) encodeBody(e *Encoder) {
	e.U8(m.Tag)
	e.VarBytes(m.Data)
}

func (m *Status) encodeBody(e *Encoder) {
	e.U64(uint64(m.Round))
	e.U64(uint64(m.Finalized))
	e.U64(m.Seq)
}

func (m *CheckpointShare) encodeBody(e *Encoder) {
	e.U64(uint64(m.Round))
	e.Bytes32(m.BlockHash)
	e.Bytes32(m.StateHash)
	e.Bytes32(m.BeaconDigest)
	e.U64(uint64(int64(m.Signer)))
	e.VarBytes(m.Sig)
}

func (m *CheckpointMsg) encodeBody(e *Encoder) {
	e.VarBytes(m.Blob)
}

func (m *BeaconOutput) encodeBody(e *Encoder) {
	e.U64(uint64(m.Round))
	e.VarBytes(m.Output)
}

// ErrUnknownKind is returned when decoding an unrecognised message kind.
var ErrUnknownKind = errors.New("types: unknown message kind")

// Marshal encodes a message with a one-byte kind prefix.
func Marshal(m Message) []byte {
	e := NewEncoder(128)
	e.U8(uint8(m.Kind()))
	m.encodeBody(e)
	return e.Bytes()
}

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(b []byte) (Message, error) {
	d := NewDecoder(b)
	k := Kind(d.U8())
	if d.Err() != nil {
		return nil, d.Err()
	}
	m, err := decodeBody(k, d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeBody(k Kind, d *Decoder) (Message, error) {
	var m Message
	switch k {
	case KindBlock:
		m = &BlockMsg{Block: decodeBlock(d)}
	case KindAuthenticator:
		a := &Authenticator{}
		a.Round = Round(d.U64())
		a.Proposer = PartyID(int64(d.U64()))
		a.BlockHash = d.Bytes32()
		a.Sig = d.VarBytes()
		m = a
	case KindNotarizationShare:
		s := &NotarizationShare{}
		s.Round, s.Proposer, s.BlockHash, s.Signer, s.Sig = decodeShare(d)
		m = s
	case KindFinalizationShare:
		s := &FinalizationShare{}
		s.Round, s.Proposer, s.BlockHash, s.Signer, s.Sig = decodeShare(d)
		m = s
	case KindNotarization:
		q := &Notarization{}
		q.Round, q.Proposer, q.BlockHash, q.Agg = decodeQuorum(d)
		m = q
	case KindFinalization:
		q := &Finalization{}
		q.Round, q.Proposer, q.BlockHash, q.Agg = decodeQuorum(d)
		m = q
	case KindBeaconShare:
		s := &BeaconShare{}
		s.Round = Round(d.U64())
		s.Signer = PartyID(int64(d.U64()))
		s.Share = d.VarBytes()
		m = s
	case KindBundle:
		flags := d.U8()
		count := int(d.U16())
		if d.Err() != nil {
			return nil, d.Err()
		}
		bundle := &Bundle{Messages: make([]Message, 0, count), Resync: flags&1 != 0}
		for i := 0; i < count; i++ {
			raw := d.VarBytes()
			if d.Err() != nil {
				return nil, d.Err()
			}
			sub, err := Unmarshal(raw)
			if err != nil {
				return nil, fmt.Errorf("bundle element %d: %w", i, err)
			}
			bundle.Messages = append(bundle.Messages, sub)
		}
		m = bundle
	case KindAdvert:
		m = &Advert{Refs: decodeRefs(d)}
	case KindRequest:
		m = &Request{Refs: decodeRefs(d)}
	case KindFragment:
		f := &Fragment{}
		f.Round = Round(d.U64())
		f.Proposer = PartyID(int64(d.U64()))
		f.Root = d.Bytes32()
		f.BlockLen = d.U32()
		f.DataShards = d.U16()
		f.Index = d.U16()
		f.Sender = PartyID(int64(d.U64()))
		f.Echo = d.U8() == 1
		f.Data = d.VarBytes()
		proofLen := int(d.U16())
		if d.Err() != nil {
			return nil, d.Err()
		}
		f.Proof = make([]hash.Digest, 0, proofLen)
		for i := 0; i < proofLen; i++ {
			f.Proof = append(f.Proof, d.Bytes32())
		}
		m = f
	case KindOpaque:
		o := &Opaque{}
		o.Tag = d.U8()
		o.Data = d.VarBytes()
		m = o
	case KindStatus:
		s := &Status{}
		s.Round = Round(d.U64())
		s.Finalized = Round(d.U64())
		s.Seq = d.U64()
		m = s
	case KindCheckpointShare:
		c := &CheckpointShare{}
		c.Round = Round(d.U64())
		c.BlockHash = d.Bytes32()
		c.StateHash = d.Bytes32()
		c.BeaconDigest = d.Bytes32()
		c.Signer = PartyID(int64(d.U64()))
		c.Sig = d.VarBytes()
		m = c
	case KindCheckpoint:
		c := &CheckpointMsg{}
		c.Blob = d.VarBytes()
		m = c
	case KindShareBundle:
		sb, err := decodeShareBundle(d)
		if err != nil {
			return nil, err
		}
		m = sb
	case KindBeaconOutput:
		o := &BeaconOutput{}
		o.Round = Round(d.U64())
		o.Output = d.VarBytes()
		m = o
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(k))
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return m, nil
}

func decodeShare(d *Decoder) (Round, PartyID, hash.Digest, PartyID, []byte) {
	round := Round(d.U64())
	proposer := PartyID(int64(d.U64()))
	blockHash := d.Bytes32()
	signer := PartyID(int64(d.U64()))
	sg := d.VarBytes()
	return round, proposer, blockHash, signer, sg
}

func decodeQuorum(d *Decoder) (Round, PartyID, hash.Digest, []byte) {
	round := Round(d.U64())
	proposer := PartyID(int64(d.U64()))
	blockHash := d.Bytes32()
	agg := d.VarBytes()
	return round, proposer, blockHash, agg
}

// RefOf computes the gossip Ref of a message: its kind plus the hash of
// its canonical encoding.
//
// Quorum certificates are the exception: their ID hashes the signed
// statement (round, proposer, block) rather than the encoding. Any two
// valid certificates for one statement are interchangeable — they differ
// only in which n−t signer subset happened to combine — so giving every
// subset variant its own ref would make the overlay flood up to n
// distinct copies of the same logical fact. Under the statement ref the
// first certificate to transit wins and every later variant deduplicates
// away, including a party's own locally combined copy.
func RefOf(m Message) Ref {
	switch v := m.(type) {
	case *Notarization:
		return Ref{Kind: KindNotarization, ID: hash.Sum(hash.DomainPayload, SigningBytes(v.Round, v.Proposer, v.BlockHash))}
	case *Finalization:
		return Ref{Kind: KindFinalization, ID: hash.Sum(hash.DomainPayload, SigningBytes(v.Round, v.Proposer, v.BlockHash))}
	}
	return Ref{Kind: m.Kind(), ID: hash.Sum(hash.DomainPayload, Marshal(m))}
}
