// Package dleq implements non-interactive Chaum–Pedersen proofs of
// discrete-logarithm equality: a proof that log_G(X) = log_B(Y) for known
// points G, X, B, Y without revealing the exponent.
//
// The ICC beacon's threshold signature shares are verified with these
// proofs: a share on message m is x_i·H(m), and the DLEQ proof shows it
// was computed with the same x_i that underlies the party's registered
// public key x_i·G. This gives per-share public verifiability — the
// property paper §2.3 obtains from pairings in threshold BLS — without a
// pairing (see DESIGN.md §5 for the substitution argument).
package dleq

import (
	"errors"
	"fmt"
	"io"

	"icc/internal/crypto/ec"
	"icc/internal/crypto/hash"
)

// Proof is a Fiat–Shamir transformed Chaum–Pedersen proof.
type Proof struct {
	C *ec.Scalar // challenge
	Z *ec.Scalar // response
}

// ProofLen is the encoded size of a Proof.
const ProofLen = 2 * ec.ScalarLen

// ErrInvalidProof is returned when a proof fails verification or decoding.
var ErrInvalidProof = errors.New("dleq: invalid proof")

// challenge derives the Fiat–Shamir challenge binding every public value.
func challenge(base2, pub1, pub2, a1, a2 *ec.Point, context []byte) *ec.Scalar {
	d := hash.Sum(hash.DomainDLEQ,
		ec.Generator().Encode(), base2.Encode(),
		pub1.Encode(), pub2.Encode(),
		a1.Encode(), a2.Encode(),
		context,
	)
	return ec.ScalarFromBytesWide(d[:])
}

// Prove creates a proof that pub1 = x·G and pub2 = x·base2 for the given
// secret x. The context bytes bind the proof to a particular protocol
// message, preventing replay across messages.
func Prove(rng io.Reader, x *ec.Scalar, base2, pub1, pub2 *ec.Point, context []byte) (*Proof, error) {
	k, err := ec.RandomScalar(rng)
	if err != nil {
		return nil, fmt.Errorf("dleq: sampling nonce: %w", err)
	}
	a1 := ec.BaseMul(k)
	a2 := base2.Mul(k)
	c := challenge(base2, pub1, pub2, a1, a2, context)
	// z = k - c*x
	z := k.Sub(c.Mul(x))
	return &Proof{C: c, Z: z}, nil
}

// Verify checks a proof that log_G(pub1) = log_{base2}(pub2).
func Verify(p *Proof, base2, pub1, pub2 *ec.Point, context []byte) error {
	if p == nil || p.C == nil || p.Z == nil {
		return fmt.Errorf("%w: nil fields", ErrInvalidProof)
	}
	// Recompute commitments: a1 = z·G + c·pub1, a2 = z·base2 + c·pub2.
	a1 := ec.BaseMul(p.Z).Add(pub1.Mul(p.C))
	a2 := base2.Mul(p.Z).Add(pub2.Mul(p.C))
	c := challenge(base2, pub1, pub2, a1, a2, context)
	if !c.Equal(p.C) {
		return ErrInvalidProof
	}
	return nil
}

// Encode serialises the proof as C || Z.
func (p *Proof) Encode() []byte {
	out := make([]byte, 0, ProofLen)
	out = append(out, p.C.Encode()...)
	out = append(out, p.Z.Encode()...)
	return out
}

// Decode parses a proof encoded by Encode.
func Decode(b []byte) (*Proof, error) {
	if len(b) != ProofLen {
		return nil, fmt.Errorf("%w: length %d", ErrInvalidProof, len(b))
	}
	c, err := ec.DecodeScalar(b[:ec.ScalarLen])
	if err != nil {
		return nil, fmt.Errorf("%w: challenge: %v", ErrInvalidProof, err)
	}
	z, err := ec.DecodeScalar(b[ec.ScalarLen:])
	if err != nil {
		return nil, fmt.Errorf("%w: response: %v", ErrInvalidProof, err)
	}
	return &Proof{C: c, Z: z}, nil
}
