package harness

import (
	"testing"
	"time"

	"icc/internal/core"
	"icc/internal/simnet"
	"icc/internal/types"
)

func run(t *testing.T, opts Options, minBlocks int, limit time.Duration) *Cluster {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if !c.RunUntilCommitted(minBlocks, limit) {
		honest := c.HonestParties()
		t.Fatalf("%s n=%d: only %d blocks committed within %v (want %d)",
			opts.Mode, opts.N, c.MinCommitted(honest), limit, minBlocks)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestICC0Honest(t *testing.T) {
	run(t, Options{N: 4, Seed: 1, SimBeacon: true}, 10, time.Minute)
}

func TestICC1Honest(t *testing.T) {
	run(t, Options{N: 7, Seed: 2, Mode: ICC1, SimBeacon: true}, 10, 2*time.Minute)
}

func TestICC2Honest(t *testing.T) {
	run(t, Options{N: 7, Seed: 3, Mode: ICC2, SimBeacon: true}, 10, 2*time.Minute)
}

func TestICC0RealCrypto(t *testing.T) {
	// Full threshold-cryptography beacon and aggregate verification.
	run(t, Options{N: 4, Seed: 4}, 5, time.Minute)
}

func TestCrashFaults(t *testing.T) {
	// t = 2 of 7 crashed from birth: liveness must hold.
	c := run(t, Options{
		N: 7, Seed: 5, SimBeacon: true,
		Behaviors: map[types.PartyID]Behavior{2: Crash, 5: Crash},
	}, 10, 2*time.Minute)
	// Crashed parties committed nothing.
	if len(c.Committed(2)) != 0 || len(c.Committed(5)) != 0 {
		t.Fatal("crashed parties committed blocks")
	}
}

func TestMaxCrashFaults(t *testing.T) {
	// Exactly t = 4 of 13 crashed: still live (n−t = 9 = quorum).
	run(t, Options{
		N: 13, Seed: 6, SimBeacon: true,
		Behaviors: map[types.PartyID]Behavior{1: Crash, 4: Crash, 7: Crash, 11: Crash},
	}, 8, 3*time.Minute)
}

func TestSilentLeaders(t *testing.T) {
	// Parties that never propose: rounds they lead fall back to
	// higher-rank proposers after Δntry; liveness holds, rounds are
	// slower.
	c := run(t, Options{
		N: 7, Seed: 7, SimBeacon: true,
		DeltaBound: 50 * time.Millisecond,
		Behaviors:  map[types.PartyID]Behavior{0: SilentLeader, 3: SilentLeader},
	}, 10, 3*time.Minute)
	// Every committed block was proposed by SOMEONE (possibly a silent
	// leader's engine never proposed, so its blocks never appear).
	for _, b := range c.Committed(1) {
		if b.Proposer == 0 || b.Proposer == 3 {
			t.Fatal("silent leader's block was committed")
		}
	}
}

func TestEquivocatingLeader(t *testing.T) {
	// A Byzantine proposer sends conflicting blocks to the two halves of
	// the cluster. Safety must hold; its rank gets disqualified by
	// parties that see both.
	run(t, Options{
		N: 7, Seed: 8, SimBeacon: true,
		DeltaBound: 50 * time.Millisecond,
		Behaviors:  map[types.PartyID]Behavior{1: Equivocator},
	}, 10, 3*time.Minute)
}

func TestLazyVoters(t *testing.T) {
	// t parties never contribute shares: quorums of n−t still form from
	// the honest parties alone.
	run(t, Options{
		N: 7, Seed: 9, SimBeacon: true,
		Behaviors: map[types.PartyID]Behavior{2: LazyVoter, 6: LazyVoter},
	}, 10, 3*time.Minute)
}

func TestMixedAdversaries(t *testing.T) {
	// A full t = 4 of 13 with a mix of failure modes.
	run(t, Options{
		N: 13, Seed: 10, SimBeacon: true,
		DeltaBound: 50 * time.Millisecond,
		Behaviors: map[types.PartyID]Behavior{
			0: Crash, 3: Equivocator, 6: SilentLeader, 9: LazyVoter,
		},
	}, 8, 5*time.Minute)
}

func TestAsynchronyWindow(t *testing.T) {
	// The network turns asynchronous for 2 s, then recovers: safety
	// throughout, liveness resumes after the window (paper P1/P3:
	// intermittent synchrony suffices).
	aw := &simnet.AsyncWindows{
		Inner:   simnet.Fixed{D: 10 * time.Millisecond},
		Windows: []simnet.Window{{From: 500 * time.Millisecond, To: 2500 * time.Millisecond}},
		Extra:   100 * time.Millisecond,
	}
	c := run(t, Options{N: 4, Seed: 11, SimBeacon: true, Delay: aw}, 20, 2*time.Minute)
	s := c.Rec.Summarize()
	if s.CommittedBlocks < 20 {
		t.Fatalf("committed %d blocks", s.CommittedBlocks)
	}
}

func TestWANDelays(t *testing.T) {
	// The paper's measured RTT range (6–110 ms) as a link matrix.
	m := simnet.NewWANMatrix(13, 6*time.Millisecond, 110*time.Millisecond, 99)
	run(t, Options{
		N: 13, Seed: 12, SimBeacon: true,
		Delay:      m,
		DeltaBound: m.MaxOneWay(),
	}, 10, 3*time.Minute)
}

func TestICC1WithCrashes(t *testing.T) {
	// Gossip dissemination with crashed parties: the overlay must route
	// around them (fanout ≈ 2 log n keeps the honest subgraph connected).
	run(t, Options{
		N: 10, Seed: 13, Mode: ICC1, SimBeacon: true,
		Behaviors: map[types.PartyID]Behavior{4: Crash, 8: Crash},
	}, 8, 3*time.Minute)
}

func TestICC2WithCrashes(t *testing.T) {
	// RBC dissemination with t crashed parties: reconstruction threshold
	// n−2t is still reachable from the live parties' echoes.
	run(t, Options{
		N: 7, Seed: 14, Mode: ICC2, SimBeacon: true,
		Behaviors: map[types.PartyID]Behavior{1: Crash, 5: Crash},
	}, 8, 3*time.Minute)
}

func TestICC2LargeBlocks(t *testing.T) {
	// 256 KiB payloads through the erasure-coded path.
	run(t, Options{
		N: 7, Seed: 15, Mode: ICC2, SimBeacon: true,
		Payload: core.SizedPayload{Size: 256 << 10},
	}, 5, 3*time.Minute)
}

func TestDeterministicRuns(t *testing.T) {
	// Two clusters with identical seeds produce identical commit
	// sequences (chain of block hashes).
	mk := func() []string {
		c, err := New(Options{N: 4, Seed: 77, SimBeacon: true})
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		if !c.RunUntilCommitted(10, time.Minute) {
			t.Fatal("no progress")
		}
		var out []string
		for _, b := range c.Committed(0) {
			h := b.Hash()
			out = append(out, h.String())
		}
		return out
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chains diverge at %d", i)
		}
	}
}

func TestPruningKeepsRunning(t *testing.T) {
	c := run(t, Options{N: 4, Seed: 16, SimBeacon: true, PruneDepth: 4}, 30, 2*time.Minute)
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedSeedSweep(t *testing.T) {
	// Short randomized sweep across seeds and delay models with faults;
	// safety checked in every run.
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for seed := int64(100); seed < 110; seed++ {
		opts := Options{
			N: 7, Seed: seed, SimBeacon: true,
			Delay:      simnet.Uniform{Min: time.Millisecond, Max: 60 * time.Millisecond},
			DeltaBound: 60 * time.Millisecond,
			Behaviors: map[types.PartyID]Behavior{
				types.PartyID(seed % 7):       Equivocator,
				types.PartyID((seed + 3) % 7): Crash,
			},
		}
		// Keep roles distinct.
		if seed%7 == (seed+3)%7 {
			continue
		}
		run(t, opts, 5, 5*time.Minute)
	}
}

func TestPartitionedPartyCatchesUp(t *testing.T) {
	// A party is cut off for 5 simulated seconds; the paper's model
	// queues (not drops) its messages. On heal it must fast-forward
	// through the backlog — notarizations and finalizations in the pool
	// let it skip the per-round delays — and converge on the same chain.
	c, err := New(Options{N: 4, Seed: 21, SimBeacon: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Net.Run(500 * time.Millisecond)
	c.Net.Partition(2)
	c.Net.Run(5500 * time.Millisecond)
	behind := len(c.Committed(2))
	ahead := len(c.Committed(0))
	if ahead-behind < 50 {
		t.Fatalf("partition had no effect: %d vs %d commits", behind, ahead)
	}
	c.Net.Heal(2)
	c.Net.Run(7 * time.Second)
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
	caughtUp := len(c.Committed(2))
	nowAhead := len(c.Committed(0))
	if nowAhead-caughtUp > 5 {
		t.Fatalf("party 2 did not catch up: %d vs %d commits", caughtUp, nowAhead)
	}
}

func TestPartitionOfQuorumStallsLiveness(t *testing.T) {
	// With 2 of 4 parties partitioned, no n−t = 3 quorum can form: the
	// protocol must stall (but not crash), and resume once healed —
	// exactly the intermittent-synchrony story of paper §3.3.
	c, err := New(Options{N: 4, Seed: 22, SimBeacon: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Net.Run(time.Second)
	before := len(c.Committed(0))
	c.Net.Partition(2)
	c.Net.Partition(3)
	c.Net.Run(6 * time.Second)
	during := len(c.Committed(0))
	if during-before > 3 {
		t.Fatalf("committed %d blocks without a quorum", during-before)
	}
	c.Net.Heal(2)
	c.Net.Heal(3)
	c.Net.Run(12 * time.Second)
	after := len(c.Committed(0))
	if after-during < 20 {
		t.Fatalf("liveness did not resume after heal: %d new blocks", after-during)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}
