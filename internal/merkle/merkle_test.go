package merkle

import (
	"fmt"
	"testing"
	"testing/quick"
)

func leaves(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestProofVerifyAllLeaves(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 40} {
		ls := leaves(n)
		tree, err := New(ls)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			proof, err := tree.Proof(i)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(tree.Root(), ls[i], i, n, proof); err != nil {
				t.Fatalf("n=%d leaf %d: %v", n, i, err)
			}
		}
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	ls := leaves(8)
	tree, _ := New(ls)
	proof, _ := tree.Proof(3)
	if Verify(tree.Root(), []byte("tampered"), 3, 8, proof) == nil {
		t.Fatal("tampered leaf verified")
	}
}

func TestVerifyRejectsWrongIndex(t *testing.T) {
	ls := leaves(8)
	tree, _ := New(ls)
	proof, _ := tree.Proof(3)
	// Same data, same proof, different claimed index must fail (index is
	// bound into the leaf digest).
	if Verify(tree.Root(), ls[3], 2, 8, proof) == nil {
		t.Fatal("proof verified at wrong index")
	}
	if Verify(tree.Root(), ls[3], -1, 8, proof) == nil {
		t.Fatal("negative index verified")
	}
	if Verify(tree.Root(), ls[3], 9, 8, proof) == nil {
		t.Fatal("out-of-range index verified")
	}
}

func TestVerifyRejectsWrongProofLength(t *testing.T) {
	ls := leaves(8)
	tree, _ := New(ls)
	proof, _ := tree.Proof(3)
	if Verify(tree.Root(), ls[3], 3, 8, proof[:2]) == nil {
		t.Fatal("short proof verified")
	}
	if Verify(tree.Root(), ls[3], 3, 8, append(proof, proof[0])) == nil {
		t.Fatal("long proof verified")
	}
}

func TestVerifyRejectsCrossTree(t *testing.T) {
	a, _ := New(leaves(8))
	bLeaves := leaves(8)
	bLeaves[5] = []byte("different")
	b, _ := New(bLeaves)
	proof, _ := a.Proof(5)
	if Verify(b.Root(), leaves(8)[5], 5, 8, proof) == nil {
		t.Fatal("proof verified under another tree's root")
	}
}

func TestSingleLeaf(t *testing.T) {
	tree, err := New([][]byte{[]byte("only")})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := tree.Proof(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) != 0 {
		t.Fatalf("single-leaf proof length %d", len(proof))
	}
	if err := Verify(tree.Root(), []byte("only"), 0, 1, proof); err != nil {
		t.Fatal(err)
	}
}

func TestProofIndexValidation(t *testing.T) {
	tree, _ := New(leaves(4))
	if _, err := tree.Proof(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tree.Proof(4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := New(nil); err == nil {
		t.Fatal("empty tree accepted")
	}
}

func TestQuickRandomTrees(t *testing.T) {
	f := func(data [][]byte, pick uint8) bool {
		if len(data) == 0 {
			return true
		}
		tree, err := New(data)
		if err != nil {
			return false
		}
		i := int(pick) % len(data)
		proof, err := tree.Proof(i)
		if err != nil {
			return false
		}
		return Verify(tree.Root(), data[i], i, len(data), proof) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild40Leaves64KB(b *testing.B) {
	ls := make([][]byte, 40)
	for i := range ls {
		ls[i] = make([]byte, 64<<10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(ls); err != nil {
			b.Fatal(err)
		}
	}
}
