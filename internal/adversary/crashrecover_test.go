package adversary

import (
	"testing"
	"time"

	"icc/internal/engine"
	"icc/internal/types"
)

// chatty is a stub engine that answers every event with one broadcast
// and counts how many events actually reached it.
type chatty struct {
	id     types.PartyID
	events int
}

func (c *chatty) ID() types.PartyID { return c.id }

func (c *chatty) out() []engine.Output {
	c.events++
	return []engine.Output{engine.Broadcast(&types.Advert{})}
}

func (c *chatty) Init(time.Duration) []engine.Output { return c.out() }

func (c *chatty) HandleMessage(types.PartyID, types.Message, time.Duration) []engine.Output {
	return c.out()
}

func (c *chatty) Tick(time.Duration) []engine.Output { return c.out() }

func (c *chatty) NextWake(now time.Duration) (time.Duration, bool) {
	return now + 10*time.Millisecond, true
}

func (c *chatty) CurrentRound() types.Round { return 7 }

func TestCrashRecoverSuppressesOutageWindow(t *testing.T) {
	inner := &chatty{id: 5}
	cr := NewCrashRecover(inner, 2*time.Second, 6*time.Second)
	if cr.ID() != 5 || cr.CurrentRound() != 7 {
		t.Fatal("identity not forwarded")
	}

	// Before the crash: everything passes through.
	if out := cr.Init(0); len(out) != 1 {
		t.Fatal("pre-crash Init suppressed")
	}
	if out := cr.HandleMessage(0, &types.Advert{}, time.Second); len(out) != 1 {
		t.Fatal("pre-crash message suppressed")
	}
	if at, ok := cr.NextWake(time.Second); !ok || at != time.Second+10*time.Millisecond {
		t.Fatalf("pre-crash NextWake = %v, %v", at, ok)
	}

	// During [Down, Up): messages and ticks are lost, nothing is emitted,
	// and the only wake the party asks for is its recovery time.
	before := inner.events
	if out := cr.HandleMessage(1, &types.Advert{}, 2*time.Second); out != nil {
		t.Fatal("crashed party spoke on message")
	}
	if out := cr.Tick(4 * time.Second); out != nil {
		t.Fatal("crashed party spoke on tick")
	}
	if inner.events != before {
		t.Fatal("events leaked through to the inner engine during the outage")
	}
	if at, ok := cr.NextWake(3 * time.Second); !ok || at != 6*time.Second {
		t.Fatalf("crashed NextWake = %v, %v; want recovery time", at, ok)
	}

	// From Up on: the inner engine is driven again.
	if out := cr.Tick(6 * time.Second); len(out) != 1 {
		t.Fatal("recovered party still silent")
	}
	if inner.events != before+1 {
		t.Fatal("recovery tick did not reach the inner engine")
	}
}
