package types

import (
	"icc/internal/crypto/hash"
)

// Signature domains for the three signing roles of the protocol
// (paper §3.4: authenticators, notarizations, finalizations sign the
// tuples (kind, k, α, H(B)); here the kind is the signature domain).
const (
	DomainAuthenticator hash.Domain = "icc/sig/authenticator"
	DomainNotarization  hash.Domain = "icc/sig/notarization"
	DomainFinalization  hash.Domain = "icc/sig/finalization"
	// DomainCheckpoint separates checkpoint commitments from the three
	// protocol roles. Checkpoint shares are signed with the S_final key
	// but over this distinct domain, so a checkpoint signature can never
	// be replayed as a finalization share or vice versa.
	DomainCheckpoint hash.Domain = "icc/sig/checkpoint"
)

// Block is a round-k block of the block-tree: the tuple
// (block, k, α, phash, payload) of paper §3.4 eq. (1).
type Block struct {
	Round      Round
	Proposer   PartyID
	ParentHash hash.Digest
	Payload    []byte
}

// RootBlock returns the special genesis block `root` (paper §3.4). It is
// its own authenticator, notarization, and finalization; the pool package
// special-cases it.
func RootBlock() *Block {
	return &Block{Round: 0, Proposer: -1}
}

// Hash returns H(B), the collision-resistant identity of the block used
// by child blocks and by every signature on the block.
func (b *Block) Hash() hash.Digest {
	e := NewEncoder(64 + len(b.Payload))
	b.encode(e)
	return hash.Sum(hash.DomainBlock, e.Bytes())
}

// IsRoot reports whether this is the genesis block.
func (b *Block) IsRoot() bool { return b.Round == 0 }

func (b *Block) encode(e *Encoder) {
	e.U64(uint64(b.Round))
	e.U64(uint64(int64(b.Proposer)))
	e.Bytes32(b.ParentHash)
	e.VarBytes(b.Payload)
}

func decodeBlock(d *Decoder) *Block {
	b := &Block{}
	b.Round = Round(d.U64())
	b.Proposer = PartyID(int64(d.U64()))
	b.ParentHash = d.Bytes32()
	b.Payload = d.VarBytes()
	return b
}

// SigningBytes returns the canonical byte string that authenticators,
// notarization shares, and finalization shares sign for a given block
// reference: the encoding of (k, α, H(B)). The artifact kind is conveyed
// by the signature domain, so the same bytes can never verify across
// kinds.
func SigningBytes(round Round, proposer PartyID, blockHash hash.Digest) []byte {
	e := NewEncoder(8 + 8 + hash.Size)
	e.U64(uint64(round))
	e.U64(uint64(int64(proposer)))
	e.Bytes32(blockHash)
	return e.Bytes()
}

// CheckpointSigningBytes returns the canonical byte string a checkpoint
// share signs under DomainCheckpoint: the encoding of
// (k, H(B_k), H(state after B_k), R_k). Binding the beacon digest lets
// a restored party verify and sign round k+1 beacon shares immediately.
func CheckpointSigningBytes(round Round, blockHash, stateHash, beaconDigest hash.Digest) []byte {
	e := NewEncoder(8 + 3*hash.Size)
	e.U64(uint64(round))
	e.Bytes32(blockHash)
	e.Bytes32(stateHash)
	e.Bytes32(beaconDigest)
	return e.Bytes()
}
