package keys

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"icc/internal/crypto/ec"
	"icc/internal/crypto/multisig"
	"icc/internal/crypto/sig"
	"icc/internal/crypto/thresig"
	"icc/internal/types"
)

// The JSON forms below exist so that cmd/icckeygen can write key files
// that cmd/iccnode reads back; all binary values are hex strings.

type jsonPublic struct {
	N           int      `json:"n"`
	T           int      `json:"t"`
	Auth        []string `json:"auth_keys"`
	Notary      []string `json:"notary_keys"`
	Final       []string `json:"final_keys"`
	BeaconGlob  string   `json:"beacon_global"`
	BeaconShare []string `json:"beacon_share_keys"`
	GenesisSeed string   `json:"genesis_seed"`
}

type jsonPrivate struct {
	Index  int    `json:"index"`
	Auth   string `json:"auth_sk"`
	Notary string `json:"notary_sk"`
	Final  string `json:"final_sk"`
	Beacon string `json:"beacon_sk"`
}

func hexKeys[T ~[]byte](ks []T) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = hex.EncodeToString(k)
	}
	return out
}

func unhexKeys(ss []string) ([]sig.PublicKey, error) {
	out := make([]sig.PublicKey, len(ss))
	for i, s := range ss {
		b, err := hex.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("keys: bad hex at %d: %w", i, err)
		}
		out[i] = sig.PublicKey(b)
	}
	return out, nil
}

// MarshalJSON implements json.Marshaler.
func (p *Public) MarshalJSON() ([]byte, error) {
	shares := make([]string, len(p.Beacon.Shares))
	for i, pt := range p.Beacon.Shares {
		shares[i] = hex.EncodeToString(pt.Encode())
	}
	return json.Marshal(jsonPublic{
		N:           p.N,
		T:           p.T,
		Auth:        hexKeys(p.Auth),
		Notary:      hexKeys(p.Notary.Keys),
		Final:       hexKeys(p.Final.Keys),
		BeaconGlob:  hex.EncodeToString(p.Beacon.Global.Encode()),
		BeaconShare: shares,
		GenesisSeed: hex.EncodeToString(p.GenesisSeed),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Public) UnmarshalJSON(b []byte) error {
	var j jsonPublic
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	auth, err := unhexKeys(j.Auth)
	if err != nil {
		return err
	}
	notary, err := unhexKeys(j.Notary)
	if err != nil {
		return err
	}
	final, err := unhexKeys(j.Final)
	if err != nil {
		return err
	}
	globRaw, err := hex.DecodeString(j.BeaconGlob)
	if err != nil {
		return fmt.Errorf("keys: beacon global: %w", err)
	}
	glob, err := ec.DecodePoint(globRaw)
	if err != nil {
		return fmt.Errorf("keys: beacon global: %w", err)
	}
	shares := make([]*ec.Point, len(j.BeaconShare))
	for i, s := range j.BeaconShare {
		raw, err := hex.DecodeString(s)
		if err != nil {
			return fmt.Errorf("keys: beacon share %d: %w", i, err)
		}
		if shares[i], err = ec.DecodePoint(raw); err != nil {
			return fmt.Errorf("keys: beacon share %d: %w", i, err)
		}
	}
	seed, err := hex.DecodeString(j.GenesisSeed)
	if err != nil {
		return fmt.Errorf("keys: genesis seed: %w", err)
	}
	p.N, p.T = j.N, j.T
	p.Auth = auth
	p.Notary = &multisig.PublicInfo{N: j.N, Threshold: types.NotaryQuorum(j.N), Keys: notary}
	p.Final = &multisig.PublicInfo{N: j.N, Threshold: types.NotaryQuorum(j.N), Keys: final}
	p.Beacon = &thresig.PublicInfo{N: j.N, Threshold: types.BeaconQuorum(j.N), Global: glob, Shares: shares}
	p.GenesisSeed = seed
	return nil
}

// MarshalJSON implements json.Marshaler.
func (p *Private) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonPrivate{
		Index:  int(p.Index),
		Auth:   hex.EncodeToString(p.Auth),
		Notary: hex.EncodeToString(p.Notary.Key),
		Final:  hex.EncodeToString(p.Final.Key),
		Beacon: hex.EncodeToString(p.Beacon.Key.Encode()),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Private) UnmarshalJSON(b []byte) error {
	var j jsonPrivate
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	auth, err := hex.DecodeString(j.Auth)
	if err != nil {
		return fmt.Errorf("keys: auth sk: %w", err)
	}
	notary, err := hex.DecodeString(j.Notary)
	if err != nil {
		return fmt.Errorf("keys: notary sk: %w", err)
	}
	final, err := hex.DecodeString(j.Final)
	if err != nil {
		return fmt.Errorf("keys: final sk: %w", err)
	}
	beaconRaw, err := hex.DecodeString(j.Beacon)
	if err != nil {
		return fmt.Errorf("keys: beacon sk: %w", err)
	}
	beacon, err := ec.DecodeScalar(beaconRaw)
	if err != nil {
		return fmt.Errorf("keys: beacon sk: %w", err)
	}
	p.Index = types.PartyID(j.Index)
	p.Auth = sig.PrivateKey(auth)
	p.Notary = multisig.SecretKey{Index: j.Index, Key: sig.PrivateKey(notary)}
	p.Final = multisig.SecretKey{Index: j.Index, Key: sig.PrivateKey(final)}
	p.Beacon = thresig.SecretShare{Index: j.Index, Key: beacon}
	return nil
}
