package baseline

import (
	"time"

	"icc/internal/crypto/hash"
	"icc/internal/engine"
	"icc/internal/types"
)

// Opaque tags for Tendermint messages.
const (
	tagTMProposal  uint8 = 10
	tagTMPrevote   uint8 = 11
	tagTMPrecommit uint8 = 12
)

// TendermintConfig assembles a Tendermint-like engine.
type TendermintConfig struct {
	Self       types.PartyID
	N          int
	DeltaBound time.Duration // Δbnd: drives timeoutPropose and timeoutCommit
	Payload    func(height uint64) []byte
	OnCommit   func(height uint64, payload []byte, now time.Duration)
}

// Tendermint models the propose/prevote/precommit structure of [8] with
// its characteristic clock-driven pacing: after committing a height, a
// party waits timeoutCommit = Δbnd before starting the next height (the
// real system's straggler-collection wait), and a missing proposal is
// only given up on after timeoutPropose = 2·Δbnd. This makes the height
// rate Θ(Δbnd)-bounded even when the actual network delay δ is tiny —
// the "not optimistically responsive" property §1.1 contrasts with ICC.
type Tendermint struct {
	cfg TendermintConfig

	height      uint64
	round       uint64 // round within the height (for skipped proposers)
	stepStart   time.Duration
	startAt     time.Duration // when the current height may begin in earnest
	proposal    []byte
	proposalID  hash.Digest
	hasProposal bool
	prevotes    map[hash.Digest]map[types.PartyID]struct{}
	precommits  map[hash.Digest]map[types.PartyID]struct{}
	sentPrevote bool
	sentPrecmt  bool
	committed   uint64
	proposed    bool

	out []engine.Output
}

// NewTendermint builds the engine.
func NewTendermint(cfg TendermintConfig) *Tendermint {
	if cfg.DeltaBound == 0 {
		cfg.DeltaBound = 100 * time.Millisecond
	}
	if cfg.Payload == nil {
		cfg.Payload = func(uint64) []byte { return nil }
	}
	return &Tendermint{cfg: cfg, height: 1}
}

func (tm *Tendermint) proposer() types.PartyID {
	return types.PartyID((tm.height + tm.round) % uint64(tm.cfg.N))
}

func (tm *Tendermint) quorum() int { return types.NotaryQuorum(tm.cfg.N) }

// ID implements engine.Engine.
func (tm *Tendermint) ID() types.PartyID { return tm.cfg.Self }

// CurrentRound implements engine.Engine.
func (tm *Tendermint) CurrentRound() types.Round { return types.Round(tm.height) }

// CommittedHeight returns the highest committed height.
func (tm *Tendermint) CommittedHeight() uint64 { return tm.committed }

// Init implements engine.Engine.
func (tm *Tendermint) Init(now time.Duration) []engine.Output {
	tm.enterHeight(tm.height, now, 0)
	tm.step(now)
	return tm.drain()
}

// Tick implements engine.Engine.
func (tm *Tendermint) Tick(now time.Duration) []engine.Output {
	tm.step(now)
	return tm.drain()
}

// NextWake implements engine.Engine.
func (tm *Tendermint) NextWake(now time.Duration) (time.Duration, bool) {
	if now < tm.startAt {
		return tm.startAt, true
	}
	// timeoutPropose boundary.
	if !tm.hasProposal {
		return tm.stepStart + 2*tm.cfg.DeltaBound, true
	}
	return 0, false
}

// HandleMessage implements engine.Engine.
func (tm *Tendermint) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	o, ok := m.(*types.Opaque)
	if !ok {
		return nil
	}
	switch o.Tag {
	case tagTMProposal:
		h, payload, okd := decodeTMProposal(o.Data)
		if okd && h == tm.height && !tm.hasProposal {
			tm.proposal = payload
			tm.proposalID = tmID(h, payload)
			tm.hasProposal = true
		}
	case tagTMPrevote:
		h, id, okd := decodeTMVote(o.Data)
		if okd && h == tm.height {
			addVote(tm.prevotes, id, from)
		}
	case tagTMPrecommit:
		h, id, okd := decodeTMVote(o.Data)
		if okd && h == tm.height {
			addVote(tm.precommits, id, from)
		}
	}
	tm.step(now)
	return tm.drain()
}

func addVote(m map[hash.Digest]map[types.PartyID]struct{}, id hash.Digest, from types.PartyID) {
	set := m[id]
	if set == nil {
		set = make(map[types.PartyID]struct{})
		m[id] = set
	}
	set[from] = struct{}{}
}

func (tm *Tendermint) drain() []engine.Output {
	out := tm.out
	tm.out = nil
	return out
}

func (tm *Tendermint) enterHeight(h uint64, now, defer_ time.Duration) {
	tm.height = h
	tm.round = 0
	tm.startAt = now + defer_
	tm.stepStart = tm.startAt
	tm.proposal = nil
	tm.hasProposal = false
	tm.prevotes = make(map[hash.Digest]map[types.PartyID]struct{})
	tm.precommits = make(map[hash.Digest]map[types.PartyID]struct{})
	tm.sentPrevote = false
	tm.sentPrecmt = false
	tm.proposed = false
}

// step advances the propose → prevote → precommit → commit pipeline.
func (tm *Tendermint) step(now time.Duration) {
	if now < tm.startAt {
		return // timeoutCommit pause before the height begins
	}
	// Propose.
	if !tm.proposed && tm.proposer() == tm.cfg.Self {
		tm.proposed = true
		payload := tm.cfg.Payload(tm.height)
		tm.proposal = payload
		tm.proposalID = tmID(tm.height, payload)
		tm.hasProposal = true
		tm.out = append(tm.out, engine.Broadcast(encodeTMProposal(tm.height, payload)))
	}
	// timeoutPropose: skip to the next round's proposer.
	if !tm.hasProposal && now >= tm.stepStart+2*tm.cfg.DeltaBound {
		tm.round++
		tm.stepStart = now
		tm.proposed = false
		tm.sentPrevote = false
		tm.sentPrecmt = false
		return
	}
	// Prevote on the proposal.
	if tm.hasProposal && !tm.sentPrevote {
		tm.sentPrevote = true
		addVote(tm.prevotes, tm.proposalID, tm.cfg.Self)
		tm.out = append(tm.out, engine.Broadcast(encodeTMVote(tagTMPrevote, tm.height, tm.proposalID)))
	}
	// Precommit on a prevote quorum.
	if tm.hasProposal && !tm.sentPrecmt && len(tm.prevotes[tm.proposalID]) >= tm.quorum() {
		tm.sentPrecmt = true
		addVote(tm.precommits, tm.proposalID, tm.cfg.Self)
		tm.out = append(tm.out, engine.Broadcast(encodeTMVote(tagTMPrecommit, tm.height, tm.proposalID)))
	}
	// Commit on a precommit quorum; then wait timeoutCommit = Δbnd
	// before the next height (the responsiveness killer).
	if tm.hasProposal && len(tm.precommits[tm.proposalID]) >= tm.quorum() {
		if tm.cfg.OnCommit != nil {
			tm.cfg.OnCommit(tm.height, tm.proposal, now)
		}
		tm.committed = tm.height
		tm.enterHeight(tm.height+1, now, tm.cfg.DeltaBound)
	}
}

func tmID(height uint64, payload []byte) hash.Digest {
	e := types.NewEncoder(16 + len(payload))
	e.U64(height)
	e.VarBytes(payload)
	return hash.Sum("baseline/tendermint-block", e.Bytes())
}

func encodeTMProposal(height uint64, payload []byte) *types.Opaque {
	e := types.NewEncoder(80 + len(payload))
	e.U64(height)
	e.VarBytes(payload)
	e.VarBytes(make([]byte, fakeSigLen))
	return &types.Opaque{Tag: tagTMProposal, Data: e.Bytes()}
}

func decodeTMProposal(data []byte) (uint64, []byte, bool) {
	d := types.NewDecoder(data)
	h := d.U64()
	payload := d.VarBytes()
	d.VarBytes()
	return h, payload, d.Err() == nil
}

func encodeTMVote(tag uint8, height uint64, id hash.Digest) *types.Opaque {
	e := types.NewEncoder(112)
	e.U64(height)
	e.Bytes32(id)
	e.VarBytes(make([]byte, fakeSigLen))
	return &types.Opaque{Tag: tag, Data: e.Bytes()}
}

func decodeTMVote(data []byte) (uint64, hash.Digest, bool) {
	d := types.NewDecoder(data)
	h := d.U64()
	id := d.Bytes32()
	d.VarBytes()
	return h, id, d.Err() == nil
}

var _ engine.Engine = (*Tendermint)(nil)
