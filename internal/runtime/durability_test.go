package runtime

// Kill -9 and restart under -race: a live four-party cluster where one
// node is killed without warning (its WAL loses the unsynced tail, its
// process state evaporates), then restarted over the same directories.
// The restarted node must recover its durable frontier from checkpoint
// + WAL replay, rejoin over the real transport, and converge back to
// the live frontier with a state identical to its peers' — while a
// second node runs the whole time on a WAL whose fsync fails, proving
// an I/O-degraded log never blocks consensus.

import (
	"bytes"
	"crypto/rand"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/checkpoint"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/keys"
	"icc/internal/pool"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
	"icc/internal/wal"
)

func TestKillNineRestartResumesFromDurableState(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-cluster test")
	}
	const (
		n      = 4
		victim = 3
		faulty = 1 // this party's WAL loses its disk mid-run
		bound  = 20 * time.Millisecond
	)
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	hub := transport.NewInproc(n)
	clk := clock.NewWall()
	base := t.TempDir()

	var mu sync.Mutex
	// stateAt[p][k]: concatenated block-hash state after committing k.
	stateAt := make([]map[types.Round][]byte, n)
	frontier := make([]types.Round, n)
	states := make([][]byte, n)
	for i := range stateAt {
		stateAt[i] = make(map[types.Round][]byte)
	}

	var syncCalls int
	wals := make([]*wal.Log, n)
	stores := make([]*checkpoint.Store, n)
	build := func(i int) *Runner {
		pid := types.PartyID(i)
		var fault wal.FaultHook
		if i == faulty {
			fault = func(op string) error {
				if op != "sync" {
					return nil
				}
				mu.Lock()
				syncCalls++
				c := syncCalls
				mu.Unlock()
				if c > 5 {
					return errors.New("injected: disk gone")
				}
				return nil
			}
		}
		w, err := wal.Open(filepath.Join(base, "party", string(rune('0'+i)), "wal"), wal.Options{Fault: fault})
		if err != nil {
			t.Fatal(err)
		}
		s, err := checkpoint.OpenStore(filepath.Join(base, "party", string(rune('0'+i)), "checkpoints"), checkpoint.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wals[i], stores[i] = w, s
		mu.Lock()
		states[i] = nil // restart resets in-memory state; disk decides
		mu.Unlock()
		eng := core.NewEngine(core.Config{
			Self:               pid,
			Keys:               pub,
			Priv:               privs[i],
			Beacon:             beacon.NewSimulated(n, pid, pub.GenesisSeed),
			DeltaBound:         bound,
			PruneDepth:         core.DefaultPruneDepth,
			WAL:                w,
			Checkpoints:        s,
			CheckpointInterval: 8,
			StateSnapshot: func() []byte {
				mu.Lock()
				defer mu.Unlock()
				return append([]byte(nil), states[i]...)
			},
			StateRestore: func(st []byte) error {
				mu.Lock()
				defer mu.Unlock()
				states[i] = append([]byte(nil), st...)
				return nil
			},
			// Production configuration: a verify pipeline per party with
			// the pool admitting pre-verified input — inline VerifyFull
			// under -race cannot keep the round cadence (see
			// rejoin_test.go for the same reasoning).
			Pool: pool.Options{Policy: pool.VerifyPreVerified},
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					d := b.Hash()
					mu.Lock()
					states[i] = append(states[i], d[:]...)
					stateAt[i][b.Round] = append([]byte(nil), states[i]...)
					if b.Round > frontier[i] {
						frontier[i] = b.Round
					}
					mu.Unlock()
				},
			},
		})
		if _, err := eng.Recover(); err != nil {
			t.Fatalf("party %d: recover: %v", i, err)
		}
		r := NewRunner(eng, hub.Endpoint(pid), clk, n)
		r.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{Workers: 2}))
		return r
	}

	runners := make([]*Runner, n)
	for i := 0; i < n; i++ {
		runners[i] = build(i)
	}
	t.Cleanup(func() {
		for _, r := range runners {
			r.Stop()
		}
		for _, w := range wals {
			_ = w.Close()
		}
		for _, s := range stores {
			s.Close()
		}
		hub.Close()
	})
	for _, r := range runners {
		r.Start()
	}

	// Phase 1: commit well past a checkpoint boundary.
	waitFor(t, 120*time.Second, "cluster made no progress", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < n; i++ {
			if frontier[i] < 20 {
				return false
			}
		}
		return true
	})
	if !wals[faulty].Degraded() {
		t.Fatal("fault-injected WAL never degraded — injection not exercised")
	}

	// Phase 2: kill -9 the victim. Stop delivers no courtesy flush; the
	// WAL then drops whatever the OS had not yet synced.
	runners[victim].Stop()
	wals[victim].Crash()
	stores[victim].Close()
	mu.Lock()
	killedAt := frontier[victim]
	mu.Unlock()

	// The survivors (exactly n−t) must keep committing.
	waitFor(t, 60*time.Second, "survivors stalled after the kill", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return frontier[0] >= killedAt+10
	})

	// Phase 3: restart over the same directories. The dead process's
	// inbox contents are gone.
	inbox := hub.Endpoint(types.PartyID(victim)).Inbox()
drain:
	for {
		select {
		case _, ok := <-inbox:
			if !ok {
				break drain
			}
		default:
			break drain
		}
	}
	mu.Lock()
	frontier[victim] = 0
	stateAt[victim] = make(map[types.Round][]byte)
	restartTarget := frontier[0]
	mu.Unlock()
	runners[victim] = build(victim)
	resumed := runners[victim].eng.(*core.Engine).FinalizedRound()
	if resumed == 0 {
		t.Fatal("restart recovered nothing: durable state was lost")
	}
	if resumed > killedAt {
		t.Fatalf("recovered frontier %d ahead of what the killed process committed (%d)", resumed, killedAt)
	}
	runners[victim].Start()

	// Phase 4: the restarted node converges past the frontier the
	// cluster had when it came back.
	waitFor(t, 120*time.Second, "restarted node did not converge", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return frontier[victim] >= restartTarget
	})

	// Safety: at every round both the restarted node and a survivor
	// committed, their states agree byte for byte.
	mu.Lock()
	defer mu.Unlock()
	compared := 0
	for k, st := range stateAt[victim] {
		if want, ok := stateAt[0][k]; ok {
			if !bytes.Equal(st, want) {
				t.Fatalf("state divergence at round %d after restart", k)
			}
			compared++
		}
	}
	if compared == 0 {
		t.Fatal("no common committed rounds between restarted node and survivors")
	}
}
