package keys

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"testing"

	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/thresig"
	"icc/internal/types"
)

func TestDealShapes(t *testing.T) {
	pub, privs, err := Deal(rand.Reader, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pub.N != 7 || pub.T != 2 {
		t.Fatalf("n=%d t=%d, want 7, 2", pub.N, pub.T)
	}
	if len(pub.Auth) != 7 || len(privs) != 7 {
		t.Fatal("key slices wrong length")
	}
	if pub.Notary.Quorum() != 5 || pub.Final.Quorum() != 5 {
		t.Fatalf("notary/final thresholds %d/%d, want 5", pub.Notary.Quorum(), pub.Final.Quorum())
	}
	if pub.Beacon.Threshold != 3 {
		t.Fatalf("beacon threshold %d, want 3", pub.Beacon.Threshold)
	}
	if len(pub.GenesisSeed) == 0 {
		t.Fatal("missing genesis seed")
	}
}

func TestDealRejectsBadN(t *testing.T) {
	if _, _, err := Deal(rand.Reader, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestKeysAreUsable(t *testing.T) {
	pub, privs, err := Deal(rand.Reader, 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello")
	// Auth.
	s := privs[2].Notary.Sign(types.DomainNotarization, msg)
	if err := pub.Notary.VerifyShare(types.DomainNotarization, msg, s); err != nil {
		t.Fatalf("notary share: %v", err)
	}
	// Beacon: all four shares sign, any 2 combine to same signature.
	shares := make([]*thresig.SigShare, 4)
	for i := range shares {
		shares[i], err = thresig.Sign(rand.Reader, privs[i].Beacon, msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Beacon.VerifyShare(msg, shares[i]); err != nil {
			t.Fatalf("beacon share %d: %v", i, err)
		}
	}
	s1, err := pub.Beacon.Combine(msg, shares[:2])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pub.Beacon.Combine(msg, shares[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Point.Equal(s2.Point) {
		t.Fatal("beacon signature not unique")
	}
}

func TestDealBLSScheme(t *testing.T) {
	pub, privs, err := DealScheme(rand.Reader, 4, aggsig.SchemeBLS)
	if err != nil {
		t.Fatal(err)
	}
	if pub.CertScheme() != aggsig.SchemeBLS {
		t.Fatalf("cert scheme %s, want bls", pub.CertScheme())
	}
	if pub.Notary.Quorum() != types.NotaryQuorum(4) || pub.Final.Quorum() != types.NotaryQuorum(4) {
		t.Fatal("wrong BLS quorums")
	}
	// A full sign→combine→verify cycle across the two instances: shares
	// from one instance must not combine under the other (independent
	// keys), and the checkpoint sub-quorum view must verify too.
	msg := []byte("bls deal")
	shares := make([]*aggsig.Share, 3)
	for i := 0; i < 3; i++ {
		shares[i] = privs[i].Notary.Sign(types.DomainNotarization, msg)
	}
	cert, err := pub.Notary.CombineVerified(shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Notary.Verify(types.DomainNotarization, msg, cert); err != nil {
		t.Fatalf("notary certificate rejected: %v", err)
	}
	if err := pub.Final.Verify(types.DomainNotarization, msg, cert); err == nil {
		t.Fatal("notary certificate verified under the finalization instance")
	}
}

func TestJSONRoundTripBLS(t *testing.T) {
	pub, privs, err := DealScheme(rand.Reader, 4, aggsig.SchemeBLS)
	if err != nil {
		t.Fatal(err)
	}
	pubRaw, err := json.Marshal(pub)
	if err != nil {
		t.Fatal(err)
	}
	var pub2 Public
	if err := json.Unmarshal(pubRaw, &pub2); err != nil {
		t.Fatal(err)
	}
	if pub2.CertScheme() != aggsig.SchemeBLS {
		t.Fatalf("decoded cert scheme %s, want bls", pub2.CertScheme())
	}
	privRaw, err := json.Marshal(&privs[1])
	if err != nil {
		t.Fatal(err)
	}
	var priv2 Private
	if err := json.Unmarshal(privRaw, &priv2); err != nil {
		t.Fatal(err)
	}
	// Decoded secret + original public and vice versa must interoperate:
	// certificates combined from round-tripped shares verify under the
	// round-tripped public info.
	msg := []byte("bls round trip")
	shares := []*aggsig.Share{
		privs[0].Notary.Sign(types.DomainNotarization, msg),
		priv2.Notary.Sign(types.DomainNotarization, msg),
		privs[2].Notary.Sign(types.DomainNotarization, msg),
	}
	cert, err := pub2.Notary.CombineVerified(shares)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Notary.Verify(types.DomainNotarization, msg, cert); err != nil {
		t.Fatalf("round-tripped BLS material unusable: %v", err)
	}
	enc := cert.Encode()
	dec, err := pub2.Notary.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("certificate codec not stable across JSON round trip")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	pub, privs, err := Deal(rand.Reader, 4)
	if err != nil {
		t.Fatal(err)
	}
	pubRaw, err := json.Marshal(pub)
	if err != nil {
		t.Fatal(err)
	}
	var pub2 Public
	if err := json.Unmarshal(pubRaw, &pub2); err != nil {
		t.Fatal(err)
	}
	privRaw, err := json.Marshal(&privs[1])
	if err != nil {
		t.Fatal(err)
	}
	var priv2 Private
	if err := json.Unmarshal(privRaw, &priv2); err != nil {
		t.Fatal(err)
	}
	// The round-tripped material must interoperate with the original:
	// a beacon share signed with the decoded secret must verify under the
	// original public info, and vice versa.
	msg := []byte("round trip")
	share, err := thresig.Sign(rand.Reader, priv2.Beacon, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Beacon.VerifyShare(msg, share); err != nil {
		t.Fatalf("decoded private key unusable: %v", err)
	}
	origShare, err := thresig.Sign(rand.Reader, privs[0].Beacon, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub2.Beacon.VerifyShare(msg, origShare); err != nil {
		t.Fatalf("decoded public info unusable: %v", err)
	}
	// Multisig keys interoperate too.
	ms := priv2.Notary.Sign(types.DomainNotarization, msg)
	if err := pub2.Notary.VerifyShare(types.DomainNotarization, msg, ms); err != nil {
		t.Fatalf("decoded notary material unusable: %v", err)
	}
	if pub2.N != pub.N || pub2.T != pub.T {
		t.Fatal("parameters lost in round trip")
	}
}
