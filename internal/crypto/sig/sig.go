// Package sig wraps ed25519 as the ordinary digital signature scheme
// S_auth used to authenticate block proposals (paper §2.2, §3.2). All
// signatures are domain-separated so that a signature produced for one
// artifact kind can never be replayed as another.
package sig

import (
	"crypto/ed25519"
	"fmt"
	"io"

	"icc/internal/crypto"
	"icc/internal/crypto/hash"
)

// Sizes of the scheme's objects.
const (
	PublicKeyLen = ed25519.PublicKeySize
	SignatureLen = ed25519.SignatureSize
)

// PublicKey is a verification key.
type PublicKey []byte

// PrivateKey is a signing key.
type PrivateKey []byte

// ErrInvalidSignature is returned when verification fails. It wraps the
// repository-wide crypto.ErrBadSignature sentinel, so callers may test
// with errors.Is against either name.
var ErrInvalidSignature = fmt.Errorf("sig: %w", crypto.ErrBadSignature)

// GenerateKey creates a fresh key pair.
func GenerateKey(rng io.Reader) (PublicKey, PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("sig: generating key: %w", err)
	}
	return PublicKey(pub), PrivateKey(priv), nil
}

// Sign signs the domain-tagged message.
func Sign(priv PrivateKey, domain hash.Domain, msg []byte) []byte {
	d := hash.Sum(domain, msg)
	return ed25519.Sign(ed25519.PrivateKey(priv), d[:])
}

// Verify checks a signature produced by Sign under the same domain.
func Verify(pub PublicKey, domain hash.Domain, msg, signature []byte) error {
	if len(pub) != PublicKeyLen {
		return fmt.Errorf("%w: bad public key length %d", ErrInvalidSignature, len(pub))
	}
	d := hash.Sum(domain, msg)
	if !ed25519.Verify(ed25519.PublicKey(pub), d[:], signature) {
		return ErrInvalidSignature
	}
	return nil
}
