package adversary

import (
	"crypto/rand"
	"testing"
	"time"

	"icc/internal/core"
	"icc/internal/crypto/keys"
	"icc/internal/engine"
	"icc/internal/pool"
	"icc/internal/types"
)

func TestSilentDoesNothing(t *testing.T) {
	s := NewSilent(3)
	if s.ID() != 3 {
		t.Fatal("wrong id")
	}
	if out := s.Init(0); out != nil {
		t.Fatal("silent party spoke at init")
	}
	if out := s.HandleMessage(0, &types.Advert{}, 0); out != nil {
		t.Fatal("silent party replied")
	}
	if out := s.Tick(time.Second); out != nil {
		t.Fatal("silent party ticked")
	}
	if _, ok := s.NextWake(0); ok {
		t.Fatal("silent party wants waking")
	}
}

func TestFilterTransforms(t *testing.T) {
	inner := NewSilent(1)
	calls := 0
	f := &Filter{
		Inner: inner,
		Transform: func(o engine.Output) []engine.Output {
			calls++
			return []engine.Output{o, o} // duplicate everything
		},
	}
	if f.ID() != 1 {
		t.Fatal("filter id")
	}
	// Inner emits nothing, so transform never fires.
	f.Init(0)
	f.Tick(0)
	f.HandleMessage(0, &types.Advert{}, 0)
	if calls != 0 {
		t.Fatal("transform fired without outputs")
	}
}

// buildEngine assembles a real core engine for wrapper tests.
func buildEngine(t *testing.T, n int, self types.PartyID) (*core.Engine, *keys.Public, []keys.Private) {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(core.Config{
		Self:       self,
		Keys:       pub,
		Priv:       privs[self],
		DeltaBound: 10 * time.Millisecond,
	})
	return eng, pub, privs
}

// driveToProposal feeds an engine enough beacon shares to enter round 1
// and returns all outputs produced (the proposal fires at Δprop of its
// rank via Tick).
func driveToProposal(t *testing.T, eng engine.Engine, pub *keys.Public, privs []keys.Private, n int) []engine.Output {
	t.Helper()
	var outs []engine.Output
	outs = append(outs, eng.Init(0)...)
	// Hand the engine every other party's round-1 beacon share by
	// running sibling engines' Init and forwarding their beacon shares.
	for i := 0; i < n; i++ {
		pid := types.PartyID(i)
		if pid == eng.ID() {
			continue
		}
		sib := core.NewEngine(core.Config{Self: pid, Keys: pub, Priv: privs[i], DeltaBound: 10 * time.Millisecond})
		for _, o := range sib.Init(0) {
			if bs, ok := o.Msg.(*types.BeaconShare); ok {
				outs = append(outs, eng.HandleMessage(pid, bs, 0)...)
			}
		}
	}
	// Let timers run far enough for any rank to propose.
	for now := time.Duration(0); now < time.Second; now += 10 * time.Millisecond {
		outs = append(outs, eng.Tick(now)...)
	}
	return outs
}

func findProposals(outs []engine.Output, self types.PartyID) []engine.Output {
	var props []engine.Output
	for _, o := range outs {
		if b, ok := o.Msg.(*types.Bundle); ok && len(b.Messages) > 0 {
			if bm, ok := b.Messages[0].(*types.BlockMsg); ok && bm.Block.Proposer == self {
				props = append(props, o)
			}
		}
	}
	return props
}

func TestSilentLeaderSuppressesOwnProposals(t *testing.T) {
	const n = 4
	inner, pub, privs := buildEngine(t, n, 0)
	wrapped := NewSilentLeader(inner)
	outs := driveToProposal(t, wrapped, pub, privs, n)
	if props := findProposals(outs, 0); len(props) != 0 {
		t.Fatalf("silent leader emitted %d proposals", len(props))
	}
	// It still sends beacon shares and notarization shares.
	var shares int
	for _, o := range outs {
		switch o.Msg.(type) {
		case *types.BeaconShare, *types.NotarizationShare:
			shares++
		}
	}
	if shares == 0 {
		t.Fatal("silent leader suppressed more than proposals")
	}
}

func TestLazyVoterSuppressesShares(t *testing.T) {
	const n = 4
	inner, pub, privs := buildEngine(t, n, 1)
	wrapped := NewLazyVoter(inner)
	outs := driveToProposal(t, wrapped, pub, privs, n)
	for _, o := range outs {
		switch o.Msg.(type) {
		case *types.NotarizationShare, *types.FinalizationShare:
			t.Fatal("lazy voter emitted a share")
		}
	}
	// But it still proposes (when its rank's time comes).
	if props := findProposals(outs, 1); len(props) == 0 {
		t.Fatal("lazy voter suppressed its own proposal too")
	}
}

func TestEquivocatorSendsConflictingBlocks(t *testing.T) {
	const n = 4
	inner, pub, privs := buildEngine(t, n, 2)
	wrapped := NewEquivocator(inner, n, privs[2])
	outs := driveToProposal(t, wrapped, pub, privs, n)

	// The proposal must have been replaced by per-party unicasts with
	// two distinct block hashes across the halves.
	hashes := map[[32]byte][]types.PartyID{}
	for _, o := range outs {
		b, ok := o.Msg.(*types.Bundle)
		if !ok || o.Broadcast {
			if ok && o.Broadcast {
				if bm, isBlock := b.Messages[0].(*types.BlockMsg); isBlock && bm.Block.Proposer == 2 {
					t.Fatal("equivocator broadcast a proposal instead of splitting")
				}
			}
			continue
		}
		bm, ok := b.Messages[0].(*types.BlockMsg)
		if !ok || bm.Block.Proposer != 2 {
			continue
		}
		hashes[bm.Block.Hash()] = append(hashes[bm.Block.Hash()], o.To)
	}
	if len(hashes) != 2 {
		t.Fatalf("equivocator produced %d distinct blocks, want 2", len(hashes))
	}
	// Both twins carry verifiable authenticators (checked by giving them
	// to an honest engine's pool via a sibling engine).
	for h, recipients := range hashes {
		if len(recipients) == 0 {
			t.Fatalf("block %x sent to nobody", h[:4])
		}
	}
}

func TestEquivocatorForksNotarizationShares(t *testing.T) {
	const n = 4
	inner, pub, privs := buildEngine(t, n, 2)
	wrapped := NewEquivocator(inner, n, privs[2])
	outs := driveToProposal(t, wrapped, pub, privs, n)

	// The equivocator's own notarization share for its own proposal must
	// be forked like the block was: per-party unicasts carrying two
	// distinct block hashes, each a genuinely verifiable share.
	shares := map[[32]byte][]types.PartyID{}
	var forked []*types.NotarizationShare
	for _, o := range outs {
		s, ok := o.Msg.(*types.NotarizationShare)
		if !ok || s.Signer != 2 || s.Proposer != 2 {
			continue
		}
		if o.Broadcast {
			t.Fatal("equivocator broadcast its own-proposal share instead of splitting")
		}
		if _, seen := shares[s.BlockHash]; !seen {
			forked = append(forked, s)
		}
		shares[s.BlockHash] = append(shares[s.BlockHash], o.To)
	}
	if len(shares) != 2 {
		t.Fatalf("equivocator produced shares for %d distinct blocks, want 2", len(shares))
	}
	// Both shares pass pool admission — the twin is a real S_notary
	// signature over the twin statement, not junk an honest pool drops.
	p := pool.New(pub, 0, pool.Options{})
	for _, s := range forked {
		if ok, err := p.AddNotarizationShare(s); !ok || err != nil {
			t.Fatalf("forked share for %x rejected: %v", s.BlockHash[:4], err)
		}
	}
}
