package ec

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// Known-answer values for secp256k1 small multiples of G.
var kat2Gx, _ = new(big.Int).SetString("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5", 16)
var kat2Gy, _ = new(big.Int).SetString("1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a", 16)

func TestGeneratorOnCurve(t *testing.T) {
	if !Generator().IsOnCurve() {
		t.Fatal("generator not on curve")
	}
}

func TestDoubleKnownAnswer(t *testing.T) {
	g2 := Generator().Add(Generator())
	if g2.x.Cmp(kat2Gx) != 0 || g2.y.Cmp(kat2Gy) != 0 {
		t.Fatalf("2G mismatch: got (%s, %s)", g2.x.Text(16), g2.y.Text(16))
	}
}

func TestMulMatchesRepeatedAdd(t *testing.T) {
	g := Generator()
	acc := Infinity()
	for k := uint64(0); k <= 20; k++ {
		got := g.Mul(ScalarFromUint64(k))
		if !got.Equal(acc) {
			t.Fatalf("k=%d: Mul does not match repeated addition", k)
		}
		if !got.IsOnCurve() {
			t.Fatalf("k=%d: result off curve", k)
		}
		acc = acc.Add(g)
	}
}

func TestBaseMulMatchesMul(t *testing.T) {
	for i := 0; i < 20; i++ {
		k, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if !BaseMul(k).Equal(Generator().Mul(k)) {
			t.Fatalf("BaseMul mismatch for k=%s", k)
		}
	}
}

func TestOrderAnnihilates(t *testing.T) {
	// N*G must be the identity; (N-1)*G must be -G.
	nMinus1 := NewScalar(new(big.Int).Sub(N, big.NewInt(1)))
	if !BaseMul(nMinus1).Equal(Generator().Neg()) {
		t.Fatal("(N-1)*G != -G")
	}
	if !BaseMul(nMinus1).Add(Generator()).IsInfinity() {
		t.Fatal("N*G != infinity")
	}
}

func TestAddInverse(t *testing.T) {
	_, p, err := RandomPoint(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Add(p.Neg()).IsInfinity() {
		t.Fatal("P + (-P) != infinity")
	}
	if !p.Sub(p).IsInfinity() {
		t.Fatal("P - P != infinity")
	}
	if !p.Add(Infinity()).Equal(p) {
		t.Fatal("P + 0 != P")
	}
	if !Infinity().Add(p).Equal(p) {
		t.Fatal("0 + P != P")
	}
}

func TestScalarMulHomomorphic(t *testing.T) {
	// (a+b)*G == a*G + b*G for random a, b.
	f := func(aRaw, bRaw [32]byte) bool {
		a := ScalarFromBytesWide(aRaw[:])
		b := ScalarFromBytesWide(bRaw[:])
		lhs := BaseMul(a.Add(b))
		rhs := BaseMul(a).Add(BaseMul(b))
		return lhs.Equal(rhs)
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestScalarMulAssociative(t *testing.T) {
	// (a*b)*G == a*(b*G).
	a, _ := RandomScalar(rand.Reader)
	b, _ := RandomScalar(rand.Reader)
	lhs := BaseMul(a.Mul(b))
	rhs := BaseMul(b).Mul(a)
	if !lhs.Equal(rhs) {
		t.Fatal("(a*b)*G != a*(b*G)")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i := 0; i < 20; i++ {
		_, p, err := RandomPoint(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		q, err := DecodePoint(p.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !q.Equal(p) {
			t.Fatal("round-trip mismatch")
		}
	}
	// Identity round-trips too.
	q, err := DecodePoint(Infinity().Encode())
	if err != nil || !q.IsInfinity() {
		t.Fatalf("infinity round-trip failed: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 32),
		append([]byte{0x05}, make([]byte, 32)...), // bad prefix
		func() []byte { // x = p (out of range)
			b := make([]byte, 33)
			b[0] = 0x02
			P.FillBytes(b[1:])
			return b
		}(),
	}
	for i, c := range cases {
		if _, err := DecodePoint(c); err == nil {
			t.Fatalf("case %d: expected decode error", i)
		}
	}
}

func TestHashToPointDeterministicAndOnCurve(t *testing.T) {
	p1 := HashToPoint([]byte("round 1 beacon"))
	p2 := HashToPoint([]byte("round 1 beacon"))
	if !p1.Equal(p2) {
		t.Fatal("HashToPoint not deterministic")
	}
	if !p1.IsOnCurve() || p1.IsInfinity() {
		t.Fatal("HashToPoint result invalid")
	}
	p3 := HashToPoint([]byte("round 2 beacon"))
	if p1.Equal(p3) {
		t.Fatal("distinct messages mapped to same point")
	}
}

func TestScalarFieldAlgebra(t *testing.T) {
	a, _ := RandomScalar(rand.Reader)
	b, _ := RandomScalar(rand.Reader)
	if !a.Add(b).Sub(b).Equal(a) {
		t.Fatal("a+b-b != a")
	}
	if !a.Mul(b).Mul(b.Inv()).Equal(a) {
		t.Fatal("a*b*b^-1 != a")
	}
	if !a.Add(a.Neg()).IsZero() {
		t.Fatal("a + (-a) != 0")
	}
	if !a.Mul(OneScalar()).Equal(a) {
		t.Fatal("a*1 != a")
	}
	if !a.Mul(ZeroScalar()).IsZero() {
		t.Fatal("a*0 != 0")
	}
}

func TestScalarEncodeDecode(t *testing.T) {
	a, _ := RandomScalar(rand.Reader)
	b, err := DecodeScalar(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("scalar round-trip mismatch")
	}
	// Non-canonical (>= N) must be rejected.
	raw := make([]byte, 32)
	N.FillBytes(raw)
	if _, err := DecodeScalar(raw); err == nil {
		t.Fatal("expected rejection of scalar >= N")
	}
	if _, err := DecodeScalar([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected rejection of short scalar")
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Inv of zero")
		}
	}()
	ZeroScalar().Inv()
}

func BenchmarkBaseMul(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BaseMul(k)
	}
}

func BenchmarkPointMul(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	p := HashToPoint([]byte("bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Mul(k)
	}
}

func BenchmarkHashToPoint(b *testing.B) {
	msg := []byte("beacon round payload")
	for i := 0; i < b.N; i++ {
		HashToPoint(msg)
	}
}
