package harness

import (
	"testing"
	"time"

	"icc/internal/crypto/aggsig"
	"icc/internal/pool"
)

// The BLS certificate scheme must drive the full protocol stack the same
// way the default multisig scheme does. Pre-verified admission keeps the
// runs fast: shares are still produced by real hash-to-curve signing and
// certificates by real G1 aggregation, but no per-block pairing checks
// run (those are covered by the aggsig unit tests, where one pairing is
// ~1s on the pure big.Int stack).

func TestBLSCertSchemeICC0(t *testing.T) {
	run(t, Options{
		N: 4, Seed: 41, SimBeacon: true,
		Verify:     pool.VerifyPreVerified,
		CertScheme: aggsig.SchemeBLS,
	}, 5, 2*time.Minute)
}

func TestBLSCertSchemeICC1(t *testing.T) {
	// The full ICC1 relay feature set on top of BLS: relay-side
	// aggregation (constant-size certs out of the gossip layer),
	// adaptive share batching, and single-output beacon relay.
	run(t, Options{
		N: 7, Seed: 42, Mode: ICC1, SimBeacon: true,
		Verify:              pool.VerifyPreVerified,
		CertScheme:          aggsig.SchemeBLS,
		GossipAggregate:     true,
		GossipBatchWindow:   2 * time.Millisecond,
		GossipAdaptiveBatch: true,
		BeaconOutputs:       true,
	}, 5, 2*time.Minute)
}

func TestBeaconOutputsICC1Multisig(t *testing.T) {
	// Beacon-output relaying is scheme-independent; exercise it under
	// the default multisig certificates too.
	run(t, Options{
		N: 7, Seed: 43, Mode: ICC1, SimBeacon: true,
		Verify:        pool.VerifyPreVerified,
		BeaconOutputs: true,
	}, 8, 2*time.Minute)
}

func TestAdaptiveBatchICC1(t *testing.T) {
	run(t, Options{
		N: 7, Seed: 44, Mode: ICC1, SimBeacon: true,
		Verify:              pool.VerifySharesOnly,
		GossipBatchWindow:   2 * time.Millisecond,
		GossipAdaptiveBatch: true,
	}, 8, 2*time.Minute)
}
