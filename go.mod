module icc

go 1.22
