package core

// Unit tests for the Catchup component (catchup.go): the inline/deferred
// share split, the finalized-frontier skip, and the Status frontier cap.

import (
	"crypto/rand"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/crypto/thresig"
	"icc/internal/pool"
	"icc/internal/types"
)

// fakeProvider records enqueued backfill requests.
type fakeProvider struct {
	reqs   []BackfillRequest
	accept bool
}

func (f *fakeProvider) EnqueueBackfill(req BackfillRequest) bool {
	f.reqs = append(f.reqs, req)
	return f.accept
}

// revealedSim returns a simulated beacon for party `self` with rounds
// 1..rounds revealed (so shares for those rounds are signable).
func revealedSim(t *testing.T, n int, self types.PartyID, rounds int) *beacon.Simulated {
	t.Helper()
	s := beacon.NewSimulated(n, self, []byte("catchup test genesis"))
	for k := 1; k <= rounds; k++ {
		for p := types.PartyID(0); int(p) < n; p++ {
			sh := &types.BeaconShare{Round: types.Round(k), Signer: p, Share: make([]byte, thresig.SigShareLen)}
			if _, err := s.AddShare(sh); err != nil {
				t.Fatal(err)
			}
		}
		if _, ok := s.Reveal(types.Round(k)); !ok {
			t.Fatalf("reveal round %d failed", k)
		}
	}
	return s
}

// buildCatchup assembles a Catchup over a fresh pool with the given
// beacon and provider.
func buildCatchup(t *testing.T, bcn beacon.Source, provider CatchupProvider, hook func(types.PartyID, int, int, time.Duration)) (*Catchup, *pool.Pool) {
	t.Helper()
	pub, _, err := keys.Deal(rand.Reader, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Self:           0,
		Keys:           pub,
		Beacon:         bcn,
		ResyncInterval: 100 * time.Millisecond,
		Catchup:        provider,
		Hooks:          Hooks{OnBackfill: hook},
	}.withDefaults()
	return newCatchup(cfg), pool.New(pub, 0, pool.Options{})
}

func TestCatchupDefersUncachedShares(t *testing.T) {
	sim := revealedSim(t, 4, 0, 10)
	sim.SetShareCacheSize(-1) // every share misses the cache
	prov := &fakeProvider{accept: true}
	var gotInline, gotDeferred int
	c, p := buildCatchup(t, sim, prov, func(_ types.PartyID, inline, deferred int, _ time.Duration) {
		gotInline, gotDeferred = inline, deferred
	})

	bundle := c.Respond(p, 2, &types.Status{Round: 3, Finalized: 2, Seq: 1}, 10, hash.Digest{}, 0)
	if len(prov.reqs) != 1 {
		t.Fatalf("provider saw %d requests, want 1", len(prov.reqs))
	}
	req := prov.reqs[0]
	if req.Peer != 2 {
		t.Fatalf("request targets peer %d, want 2", req.Peer)
	}
	// Rounds 3..10 (st.Round up to our round, capped by batch), all
	// uncached, none skipped (Finalized=2 < 3).
	want := []types.Round{3, 4, 5, 6, 7, 8, 9, 10}
	if len(req.Rounds) != len(want) {
		t.Fatalf("deferred rounds %v, want %v", req.Rounds, want)
	}
	for i, k := range want {
		if req.Rounds[i] != k {
			t.Fatalf("deferred rounds %v, want %v", req.Rounds, want)
		}
	}
	// No beacon shares travelled inline.
	if bundle != nil {
		for _, m := range bundle.Messages {
			if _, ok := m.(*types.BeaconShare); ok {
				t.Fatal("share sent inline despite empty cache and live provider")
			}
		}
	}
	if gotInline != 0 || gotDeferred != len(want) {
		t.Fatalf("hook saw inline=%d deferred=%d, want 0/%d", gotInline, gotDeferred, len(want))
	}
}

func TestCatchupServesCachedSharesInline(t *testing.T) {
	sim := revealedSim(t, 4, 0, 10)
	// Warm the cache for rounds 3..5 only.
	for k := types.Round(3); k <= 5; k++ {
		if _, err := sim.ShareForRound(k); err != nil {
			t.Fatal(err)
		}
	}
	prov := &fakeProvider{accept: true}
	c, p := buildCatchup(t, sim, prov, nil)

	bundle := c.Respond(p, 1, &types.Status{Round: 3, Finalized: 0, Seq: 1}, 10, hash.Digest{}, 0)
	if bundle == nil {
		t.Fatal("no inline bundle despite cache hits")
	}
	if !bundle.Resync {
		t.Fatal("catch-up bundle not Resync-marked")
	}
	var inlineRounds []types.Round
	for _, m := range bundle.Messages {
		if sh, ok := m.(*types.BeaconShare); ok {
			inlineRounds = append(inlineRounds, sh.Round)
		}
	}
	if len(inlineRounds) != 3 || inlineRounds[0] != 3 || inlineRounds[2] != 5 {
		t.Fatalf("inline shares for rounds %v, want [3 4 5]", inlineRounds)
	}
	if len(prov.reqs) != 1 || len(prov.reqs[0].Rounds) != 5 || prov.reqs[0].Rounds[0] != 6 {
		t.Fatalf("deferred %+v, want rounds 6..10", prov.reqs)
	}
}

func TestCatchupSkipsFinalizedShareRounds(t *testing.T) {
	sim := revealedSim(t, 4, 0, 10)
	sim.SetShareCacheSize(-1)
	prov := &fakeProvider{accept: true}
	c, p := buildCatchup(t, sim, prov, nil)

	// The laggard reports Finalized=6: it traversed those beacons, so
	// shares for rounds ≤ 6 are dead weight.
	c.Respond(p, 1, &types.Status{Round: 3, Finalized: 6, Seq: 1}, 10, hash.Digest{}, 0)
	if len(prov.reqs) != 1 {
		t.Fatalf("provider saw %d requests, want 1", len(prov.reqs))
	}
	req := prov.reqs[0]
	if len(req.Rounds) != 4 || req.Rounds[0] != 7 || req.Rounds[3] != 10 {
		t.Fatalf("deferred rounds %v, want [7 8 9 10]", req.Rounds)
	}
}

func TestCatchupDroppedEnqueueIsNotRetriedInline(t *testing.T) {
	sim := revealedSim(t, 4, 0, 10)
	sim.SetShareCacheSize(-1)
	prov := &fakeProvider{accept: false} // queue full / in flight
	var gotDeferred = -1
	c, p := buildCatchup(t, sim, prov, func(_ types.PartyID, _, deferred int, _ time.Duration) {
		gotDeferred = deferred
	})

	bundle := c.Respond(p, 1, &types.Status{Round: 3, Finalized: 0, Seq: 1}, 10, hash.Digest{}, 0)
	if bundle != nil {
		for _, m := range bundle.Messages {
			if _, ok := m.(*types.BeaconShare); ok {
				t.Fatal("engine signed inline after the provider refused")
			}
		}
	}
	// The hook reports zero deferred: nothing is actually in flight.
	if gotDeferred != 0 {
		t.Fatalf("hook saw deferred=%d after refused enqueue, want 0", gotDeferred)
	}
}

func TestCatchupRateLimitsPerPeer(t *testing.T) {
	sim := revealedSim(t, 4, 0, 10)
	prov := &fakeProvider{accept: true}
	c, p := buildCatchup(t, sim, prov, nil)

	if c.Respond(p, 1, &types.Status{Round: 3, Finalized: 0, Seq: 1}, 10, hash.Digest{}, 0) == nil && len(prov.reqs) == 0 {
		t.Fatal("first request not answered")
	}
	n := len(prov.reqs)
	if c.Respond(p, 1, &types.Status{Round: 3, Finalized: 0, Seq: 2}, 10, hash.Digest{}, 50*time.Millisecond) != nil || len(prov.reqs) != n {
		t.Fatal("repeat within the rate-limit window answered")
	}
	// A different peer is not limited.
	c.Respond(p, 2, &types.Status{Round: 3, Finalized: 0, Seq: 1}, 10, hash.Digest{}, 50*time.Millisecond)
	if len(prov.reqs) != n+1 {
		t.Fatal("second peer rate-limited by the first")
	}
	// After the interval the first peer is served again.
	c.Respond(p, 1, &types.Status{Round: 3, Finalized: 0, Seq: 3}, 10, hash.Digest{}, 200*time.Millisecond)
	if len(prov.reqs) != n+2 {
		t.Fatal("first peer not served after the window")
	}
}

func TestCatchupEmptyReplyDoesNotChargeLimiter(t *testing.T) {
	sim := revealedSim(t, 4, 0, 10)
	sim.SetShareCacheSize(-1)
	prov := &fakeProvider{accept: true}
	c, p := buildCatchup(t, sim, prov, nil)

	// A peer that needs no shares (its gap is finalized on its side)
	// and whose rounds we hold nothing for gets an empty answer — that
	// must not burn its one reply per interval.
	if b := c.Respond(p, 1, &types.Status{Round: 3, Finalized: 10, Seq: 1}, 10, hash.Digest{}, 0); b != nil {
		t.Fatalf("expected empty reply, got %d messages", len(b.Messages))
	}
	if len(prov.reqs) != 0 {
		t.Fatal("backfill enqueued for a fully-finalized gap")
	}
	// The very next Status with real needs — still inside the rate
	// interval — is served, because the empty reply was free.
	c.Respond(p, 1, &types.Status{Round: 3, Finalized: 0, Seq: 2}, 10, hash.Digest{}, 10*time.Millisecond)
	if len(prov.reqs) != 1 {
		t.Fatal("peer stayed rate-limited after an empty reply")
	}
	// That served reply did charge the limiter: an immediate repeat is
	// refused.
	c.Respond(p, 1, &types.Status{Round: 3, Finalized: 0, Seq: 3}, 10, hash.Digest{}, 20*time.Millisecond)
	if len(prov.reqs) != 1 {
		t.Fatal("served reply did not charge the limiter")
	}
}

func TestStatusCapsFinalizedBelowRound(t *testing.T) {
	// After a jump-commit, kmax can run ahead of the round being
	// replayed; the Status must report Finalized < Round so responders'
	// finalized-skip cannot starve the laggard's beacon replay.
	e, _, _ := buildResyncEngine(t, 4, 0, 100*time.Millisecond)
	e.Init(0)
	e.round = 3
	e.kmax = 7 // jump-commit state: finalized ahead of the working round
	sts := statusesIn(e.Tick(150 * time.Millisecond))
	if len(sts) == 0 {
		t.Fatal("no status emitted")
	}
	for _, st := range sts {
		if st.Round != 3 || st.Finalized != 2 {
			t.Fatalf("status %+v, want Round=3 Finalized=2", st)
		}
	}

	// In the ordinary state (kmax < round) the frontier is uncapped.
	e2, _, _ := buildResyncEngine(t, 4, 0, 100*time.Millisecond)
	e2.Init(0)
	e2.round = 9
	e2.kmax = 5
	sts = statusesIn(e2.Tick(150 * time.Millisecond))
	if len(sts) == 0 || sts[0].Finalized != 5 {
		t.Fatalf("uncapped status wrong: %+v", sts)
	}
}
