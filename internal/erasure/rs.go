package erasure

import (
	"errors"
	"fmt"
	"sync"
)

// Code is a systematic (n, k) Reed–Solomon code: k data shards are
// extended with n−k parity shards; any k shards reconstruct the data.
type Code struct {
	k, n int
	// matrix is the n×k generator: the top k×k block is the identity
	// (systematic), the rest an extended-Vandermonde-derived block such
	// that every k×k submatrix is invertible.
	matrix [][]byte
}

var tablesOnce sync.Once

// Errors returned by the package.
var (
	ErrBadParams       = errors.New("erasure: invalid code parameters")
	ErrNotEnoughShards = errors.New("erasure: not enough shards to reconstruct")
	ErrShardSize       = errors.New("erasure: inconsistent shard sizes")
)

// NewCode creates an (n, k) code. Requires 1 ≤ k ≤ n ≤ 255.
func NewCode(dataShards, totalShards int) (*Code, error) {
	if dataShards < 1 || totalShards < dataShards || totalShards > 255 {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadParams, dataShards, totalShards)
	}
	tablesOnce.Do(initTables)
	k, n := dataShards, totalShards
	// Build an n×k Vandermonde matrix V with distinct evaluation points,
	// then normalise the top k×k block to the identity by multiplying by
	// its inverse: A = V · (V_top)^-1. Every k×k submatrix of a
	// Vandermonde matrix over distinct points is invertible, and
	// multiplying on the right by an invertible matrix preserves that.
	v := make([][]byte, n)
	for r := 0; r < n; r++ {
		v[r] = make([]byte, k)
		x := byte(r + 1) // avoid the zero point for cleanliness
		acc := byte(1)
		for c := 0; c < k; c++ {
			v[r][c] = acc
			acc = gfMul(acc, x)
		}
	}
	top := make([][]byte, k)
	for r := 0; r < k; r++ {
		top[r] = append([]byte(nil), v[r]...)
	}
	topInv, err := invertMatrix(top)
	if err != nil {
		return nil, fmt.Errorf("erasure: degenerate Vandermonde block: %w", err)
	}
	a := matMul(v, topInv)
	return &Code{k: k, n: n, matrix: a}, nil
}

// DataShards returns k.
func (c *Code) DataShards() int { return c.k }

// TotalShards returns n.
func (c *Code) TotalShards() int { return c.n }

// ShardSize returns the per-shard byte length for a payload of origLen.
func (c *Code) ShardSize(origLen int) int {
	if origLen == 0 {
		return 1
	}
	return (origLen + c.k - 1) / c.k
}

// Encode splits data into k equally sized shards (zero-padded) and
// produces the full set of n shards; shards [0, k) are the data itself
// (systematic).
func (c *Code) Encode(data []byte) ([][]byte, error) {
	size := c.ShardSize(len(data))
	shards := make([][]byte, c.n)
	for i := 0; i < c.k; i++ {
		shard := make([]byte, size)
		start := i * size
		if start < len(data) {
			end := start + size
			if end > len(data) {
				end = len(data)
			}
			copy(shard, data[start:end])
		}
		shards[i] = shard
	}
	for r := c.k; r < c.n; r++ {
		out := make([]byte, size)
		for col := 0; col < c.k; col++ {
			mulRowInto(out, shards[col], c.matrix[r][col])
		}
		shards[r] = out
	}
	return shards, nil
}

// Reconstruct recovers the original payload of length origLen from any k
// of the n shards, given as a map from shard index to shard bytes.
func (c *Code) Reconstruct(shards map[int][]byte, origLen int) ([]byte, error) {
	size := c.ShardSize(origLen)
	// Choose k usable shards, lowest indices first (deterministic).
	rows := make([]int, 0, c.k)
	for i := 0; i < c.n && len(rows) < c.k; i++ {
		s, ok := shards[i]
		if !ok {
			continue
		}
		if len(s) != size {
			return nil, fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
		rows = append(rows, i)
	}
	if len(rows) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShards, len(rows), c.k)
	}
	// Fast path: all data shards present.
	allData := true
	for i, r := range rows {
		if r != i {
			allData = false
			break
		}
	}
	if !allData {
		// Invert the submatrix of the selected rows and recover the data
		// shards: data = M^-1 · selected.
		sub := make([][]byte, c.k)
		for i, r := range rows {
			sub[i] = append([]byte(nil), c.matrix[r]...)
		}
		inv, err := invertMatrix(sub)
		if err != nil {
			return nil, fmt.Errorf("erasure: singular decode matrix: %w", err)
		}
		data := make([][]byte, c.k)
		for i := 0; i < c.k; i++ {
			out := make([]byte, size)
			for j := 0; j < c.k; j++ {
				mulRowInto(out, shards[rows[j]], inv[i][j])
			}
			data[i] = out
		}
		return joinShards(data, origLen), nil
	}
	data := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		data[i] = shards[i]
	}
	return joinShards(data, origLen), nil
}

func joinShards(data [][]byte, origLen int) []byte {
	out := make([]byte, 0, origLen)
	for _, s := range data {
		out = append(out, s...)
	}
	return out[:origLen]
}

// invertMatrix returns the inverse of a square GF(256) matrix via
// Gauss–Jordan elimination. The input is not modified.
func invertMatrix(m [][]byte) ([][]byte, error) {
	k := len(m)
	// Augment [m | I].
	work := make([][]byte, k)
	for i := 0; i < k; i++ {
		if len(m[i]) != k {
			return nil, ErrBadParams
		}
		work[i] = make([]byte, 2*k)
		copy(work[i], m[i])
		work[i][k+i] = 1
	}
	for col := 0; col < k; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < k; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("erasure: singular matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		// Normalise pivot row.
		inv := gfInv(work[col][col])
		for c := 0; c < 2*k; c++ {
			work[col][c] = gfMul(work[col][c], inv)
		}
		// Eliminate other rows.
		for r := 0; r < k; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			coeff := work[r][col]
			for c := 0; c < 2*k; c++ {
				work[r][c] ^= gfMul(coeff, work[col][c])
			}
		}
	}
	out := make([][]byte, k)
	for i := 0; i < k; i++ {
		out[i] = work[i][k:]
	}
	return out, nil
}

// matMul multiplies an n×k matrix by a k×k matrix over GF(256).
func matMul(a, b [][]byte) [][]byte {
	n, k := len(a), len(b)
	out := make([][]byte, n)
	for r := 0; r < n; r++ {
		out[r] = make([]byte, k)
		for c := 0; c < k; c++ {
			var acc byte
			for i := 0; i < k; i++ {
				acc ^= gfMul(a[r][i], b[i][c])
			}
			out[r][c] = acc
		}
	}
	return out
}
