package verify

// Tests for the two-lane admission path: resync-lane priority, chain-
// aware batch verification, behind-frontier shedding, and the depth
// gauges' lifecycle.

import (
	"sync/atomic"
	"testing"
	"time"

	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/hash"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/transport"
	"icc/internal/types"
)

// notarization combines a full quorum of real shares on b.
func (f *fixture) notarization(t testing.TB, b *types.Block) *types.Notarization {
	t.Helper()
	msg := types.SigningBytes(b.Round, b.Proposer, b.Hash())
	shares := make([]*aggsig.Share, f.pub.N)
	for i := range shares {
		shares[i] = f.privs[i].Notary.Sign(types.DomainNotarization, msg)
	}
	agg, err := f.pub.Notary.Combine(types.DomainNotarization, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	return &types.Notarization{Round: b.Round, Proposer: b.Proposer, BlockHash: b.Hash(), Agg: agg.Encode()}
}

// gatedVerifier blocks every notarization-share check until the gate
// opens, so tests can hold the worker mid-verification.
type gatedVerifier struct {
	pool.Verifier
	gate chan struct{}
}

func (g *gatedVerifier) NotarizationShare(s *types.NotarizationShare) error {
	<-g.gate
	return g.Verifier.NotarizationShare(s)
}

// countingVerifier counts full notarization verifications, to observe
// how many the chain-aware path actually performs.
type countingVerifier struct {
	pool.Verifier
	notarizations atomic.Int64
}

func (c *countingVerifier) Notarization(nz *types.Notarization) error {
	c.notarizations.Add(1)
	return c.Verifier.Notarization(nz)
}

// waitDepthZero polls until no envelope is waiting in a lane — i.e. the
// single worker has dequeued everything submitted so far.
func waitDepthZero(t *testing.T, reg *obs.Registry) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot()["icc_verify_queue_depth"] != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue depth never drained")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPipelineResyncLaneNotStarved(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	gv := &gatedVerifier{Verifier: pool.NewVerifier(f.pub, pool.VerifyFull), gate: make(chan struct{})}
	p := New(gv, Options{Workers: 1, QueueSize: 4, Registry: reg})
	defer p.Close()

	live := func(k types.Round) transport.Envelope {
		bh := hash.SumUint64(hash.DomainBlock, uint64(k))
		return transport.Envelope{From: 1, Msg: f.nshare(k, 0, 1, bh)}
	}
	// The worker dequeues the first share and blocks inside the
	// verifier; then the live lane is filled to the brim.
	if !p.TrySubmit(live(1)) {
		t.Fatal("first submit refused")
	}
	waitDepthZero(t, reg)
	for k := types.Round(2); k <= 5; k++ {
		if !p.TrySubmit(live(k)) {
			t.Fatalf("live lane full after %d submissions, capacity 4", k-1)
		}
	}
	if p.TrySubmit(live(6)) {
		t.Fatal("live lane accepted a 5th envelope, want saturation")
	}
	// A saturated live lane must not refuse resync traffic...
	bh := hash.SumUint64(hash.DomainBlock, 99)
	resync := &types.Bundle{Messages: []types.Message{f.nshare(99, 0, 2, bh)}, Resync: true}
	if !p.TrySubmit(transport.Envelope{From: 2, Msg: resync}) {
		t.Fatal("resync bundle refused while the live lane is saturated")
	}
	snap := reg.Snapshot()
	if snap[`icc_verify_lane_depth{lane="live"}`] != 4 {
		t.Fatalf("live lane depth = %v, want 4", snap[`icc_verify_lane_depth{lane="live"}`])
	}
	if snap[`icc_verify_lane_depth{lane="resync"}`] != 1 {
		t.Fatalf("resync lane depth = %v, want 1", snap[`icc_verify_lane_depth{lane="resync"}`])
	}
	// ...and the moment the worker frees up, the resync bundle jumps
	// the entire live backlog.
	close(gv.gate)
	got := drain(t, p, 6, 5*time.Second)
	if _, ok := got[0].Msg.(*types.NotarizationShare); !ok {
		t.Fatalf("first delivery %#v, want the in-flight live share", got[0].Msg)
	}
	if _, ok := got[1].Msg.(*types.Bundle); !ok {
		t.Fatalf("second delivery %#v, want the resync bundle ahead of 4 queued live shares", got[1].Msg)
	}
}

func TestPipelineChainAdmission(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	cv := &countingVerifier{Verifier: pool.NewVerifier(f.pub, pool.VerifyFull)}
	p := New(cv, Options{Workers: 1, Registry: reg})
	defer p.Close()

	// A catch-up batch: six hash-linked rounds, each with its block and
	// a real notarization — plus a forged notarization at a higher
	// round that links to nothing.
	parent := hash.Zero
	var msgs []types.Message
	for k := types.Round(1); k <= 6; k++ {
		b := &types.Block{Round: k, Proposer: 0, ParentHash: parent, Payload: []byte("x")}
		msgs = append(msgs, &types.BlockMsg{Block: b}, f.notarization(t, b))
		parent = b.Hash()
	}
	forged := &types.Notarization{Round: 9, Proposer: 0,
		BlockHash: hash.SumUint64(hash.DomainBlock, 999), Agg: []byte{1, 2, 3}}
	msgs = append(msgs, forged)

	p.Submit(transport.Envelope{From: 1, Msg: &types.Bundle{Messages: msgs, Resync: true}})
	got := drain(t, p, 1, 5*time.Second)
	b, ok := got[0].Msg.(*types.Bundle)
	if !ok || len(b.Messages) != 12 {
		t.Fatalf("delivered %#v, want the 12 genuine messages (forged head dropped)", got[0].Msg)
	}
	// The forged head and the genuine round-6 head were verified in
	// full; rounds 1–5 were admitted by parent-digest linkage.
	if n := cv.notarizations.Load(); n != 2 {
		t.Fatalf("verifier ran %d notarization checks, want 2 (chain admission)", n)
	}
	snap := reg.Snapshot()
	if snap["icc_verify_chain_admitted_total"] != 5 {
		t.Fatalf("chain_admitted = %v, want 5", snap["icc_verify_chain_admitted_total"])
	}
	if snap[`icc_verify_rejects_total{reason="bad_aggregate"}`] != 1 {
		t.Fatalf("forged head not rejected: %v", snap)
	}
	// The frontier follows the verified head, not the forged round.
	if p.Frontier() != 6 {
		t.Fatalf("frontier = %d, want 6", p.Frontier())
	}
}

func TestPipelineShedsLiveWhileBehind(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	p := New(pool.NewVerifier(f.pub, pool.VerifyFull), Options{Workers: 1, BehindWindow: 10, Registry: reg})
	defer p.Close()

	// Engine at round 1 with a verified frontier at 100: far behind, so
	// live artifacts beyond round 1+10 are useless queue pressure.
	p.NoteEngineRound(1)
	p.noteFrontier(100)
	stale := f.nshare(50, 0, 1, hash.SumUint64(hash.DomainBlock, 50))
	if !p.Submit(transport.Envelope{From: 2, Msg: stale}) {
		t.Fatal("shed submit reported failure; the envelope was consumed")
	}
	near := f.nshare(5, 0, 1, hash.SumUint64(hash.DomainBlock, 5))
	p.Submit(transport.Envelope{From: 2, Msg: near})
	got := drain(t, p, 1, 5*time.Second)
	if s, ok := got[0].Msg.(*types.NotarizationShare); !ok || s.Round != 5 {
		t.Fatalf("delivered %#v, want the round-5 share (round-50 shed)", got[0].Msg)
	}
	select {
	case env := <-p.Out():
		t.Fatalf("shed artifact delivered: %#v", env.Msg)
	case <-time.After(200 * time.Millisecond):
	}
	if snap := reg.Snapshot(); snap[`icc_verify_rejects_total{reason="behind"}`] != 1 {
		t.Fatalf("behind rejects = %v, want 1", snap[`icc_verify_rejects_total{reason="behind"}`])
	}
	// Resync-marked traffic is never shed, whatever its rounds.
	deep := &types.Bundle{Messages: []types.Message{
		f.nshare(50, 0, 2, hash.SumUint64(hash.DomainBlock, 50)),
	}, Resync: true}
	p.Submit(transport.Envelope{From: 3, Msg: deep})
	got = drain(t, p, 1, 5*time.Second)
	if _, ok := got[0].Msg.(*types.Bundle); !ok {
		t.Fatalf("resync bundle shed: %#v", got[0].Msg)
	}
	// Once caught up (round near frontier), nothing is shed.
	p.NoteEngineRound(95)
	p.Submit(transport.Envelope{From: 2, Msg: f.nshare(100, 0, 1, hash.SumUint64(hash.DomainBlock, 100))})
	drain(t, p, 1, 5*time.Second)
}

func TestPipelineCloseZeroesDepthGauges(t *testing.T) {
	f := newFixture(t, 4)
	reg := obs.NewRegistry()
	gv := &gatedVerifier{Verifier: pool.NewVerifier(f.pub, pool.VerifyFull), gate: make(chan struct{})}
	p := New(gv, Options{Workers: 1, QueueSize: 4, Registry: reg})

	// One share in flight, four live and one resync queued, nobody
	// draining Out: some envelopes are still in the lanes when the
	// pipeline shuts down, and the depth gauges must not leak them.
	bh := hash.SumUint64(hash.DomainBlock, 1)
	p.TrySubmit(transport.Envelope{From: 1, Msg: f.nshare(1, 0, 1, bh)})
	waitDepthZero(t, reg)
	for k := types.Round(2); k <= 5; k++ {
		p.TrySubmit(transport.Envelope{From: 1, Msg: f.nshare(k, 0, 1, hash.SumUint64(hash.DomainBlock, uint64(k)))})
	}
	p.TrySubmit(transport.Envelope{From: 2, Msg: &types.Bundle{
		Messages: []types.Message{f.nshare(9, 0, 2, hash.SumUint64(hash.DomainBlock, 9))}, Resync: true}})

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	for !p.Closed() {
		time.Sleep(time.Millisecond)
	}
	close(gv.gate)
	<-closed
	snap := reg.Snapshot()
	for _, g := range []string{
		"icc_verify_queue_depth",
		`icc_verify_lane_depth{lane="live"}`,
		`icc_verify_lane_depth{lane="resync"}`,
	} {
		if snap[g] != 0 {
			t.Fatalf("%s = %v after Close, want 0", g, snap[g])
		}
	}
}
