// Package multisig implements the (t, n−t, n)-threshold signature
// instances S_notary and S_final of the ICC protocols as a multi-signature
// over ordinary signatures: a share is an ed25519 signature, and the
// combined signature is the set of shares identified by a signer bitmap.
//
// Paper §2.3 explicitly lists this as implementation approach (i)/(ii):
// "One way is simply to use an ordinary signature scheme to generate
// individual signature shares, and the combination algorithm just outputs
// a set of signature shares." The (t, h, n) security game is satisfied
// directly: a valid aggregate proves h distinct parties signed, so at
// least h−t honest parties authorized the message.
//
// PublicInfo implements aggsig.Scheme — the repository-default
// instantiation of the pluggable certificate interface (DESIGN.md §15).
// Its certificates grow ~66 B per signer; the aggsig.BLSInfo alternative
// keeps them constant-size.
package multisig

import (
	"encoding/binary"
	"errors"
	"fmt"

	"icc/internal/crypto"
	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/sig"
)

// PublicInfo is the verification material for one scheme instance.
type PublicInfo struct {
	N         int
	Threshold int // h: number of distinct signers an aggregate must carry
	Keys      []sig.PublicKey
}

// SecretKey is one party's signing key for the instance.
type SecretKey struct {
	Index int
	Key   sig.PrivateKey
}

// Share is one party's signature share on a message — the scheme-neutral
// aggsig form; the Signature bytes are an ed25519 signature here.
type Share = aggsig.Share

// Aggregate is a combined signature: a signer bitmap plus the individual
// signatures, stored in increasing signer order.
type Aggregate struct {
	Signers []int    // sorted ascending, no duplicates
	Sigs    [][]byte // Sigs[i] is Signers[i]'s signature
}

// Errors returned by the package. ErrBadShare and ErrBadAggregate wrap
// the repository-wide sentinels of internal/crypto, so admission layers
// classify failures with errors.Is across all signature schemes.
var (
	ErrBadShare        = fmt.Errorf("multisig: %w", crypto.ErrBadShare)
	ErrNotEnoughShares = errors.New("multisig: not enough valid shares")
	ErrBadAggregate    = fmt.Errorf("multisig: %w", crypto.ErrBadAggregate)
)

// Sign produces this party's share on the domain-tagged message.
func (k SecretKey) Sign(domain hash.Domain, msg []byte) *Share {
	return &Share{Signer: k.Index, Signature: sig.Sign(k.Key, domain, msg)}
}

// ID implements aggsig.Scheme.
func (p *PublicInfo) ID() aggsig.SchemeID { return aggsig.SchemeMultisig }

// Parties implements aggsig.Scheme.
func (p *PublicInfo) Parties() int { return p.N }

// Quorum implements aggsig.Scheme.
func (p *PublicInfo) Quorum() int { return p.Threshold }

// WithQuorum implements aggsig.Scheme: the same keys at a different
// quorum (the checkpoint certificate re-uses S_final keys at t+1).
func (p *PublicInfo) WithQuorum(q int) aggsig.Scheme {
	return &PublicInfo{N: p.N, Threshold: q, Keys: p.Keys}
}

// VerifyShare checks one share against the registered key of its signer.
func (p *PublicInfo) VerifyShare(domain hash.Domain, msg []byte, s *Share) error {
	if s == nil || s.Signer < 0 || s.Signer >= p.N {
		return fmt.Errorf("%w: signer out of range", ErrBadShare)
	}
	if err := sig.Verify(p.Keys[s.Signer], domain, msg, s.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadShare, err)
	}
	return nil
}

// Combine verifies the supplied shares and, if at least Threshold distinct
// valid ones are present, outputs an aggregate. Invalid and duplicate
// shares are skipped, matching the protocol's tolerance of corrupt input.
func (p *PublicInfo) Combine(domain hash.Domain, msg []byte, shares []*Share) (aggsig.Certificate, error) {
	bySigner := make(map[int][]byte, len(shares))
	for _, s := range shares {
		if s == nil {
			continue
		}
		if _, dup := bySigner[s.Signer]; dup {
			continue
		}
		if err := p.VerifyShare(domain, msg, s); err != nil {
			continue
		}
		bySigner[s.Signer] = s.Signature
		if len(bySigner) == p.Threshold {
			break
		}
	}
	return p.assemble(bySigner)
}

// CombineVerified aggregates shares whose signatures the caller has
// already verified (pool admission or an upstream verification
// pipeline), skipping the per-share signature check Combine repeats.
// Duplicates and out-of-range signers are still dropped — those are
// structural, not cryptographic, properties. The caller's attestation
// is load-bearing: feeding unverified shares here produces an aggregate
// that other parties will reject.
func (p *PublicInfo) CombineVerified(shares []*Share) (aggsig.Certificate, error) {
	bySigner := make(map[int][]byte, len(shares))
	for _, s := range shares {
		if s == nil || s.Signer < 0 || s.Signer >= p.N {
			continue
		}
		if _, dup := bySigner[s.Signer]; dup {
			continue
		}
		bySigner[s.Signer] = s.Signature
		if len(bySigner) == p.Threshold {
			break
		}
	}
	return p.assemble(bySigner)
}

// assemble orders a deduplicated signer→signature map into an Aggregate.
func (p *PublicInfo) assemble(bySigner map[int][]byte) (aggsig.Certificate, error) {
	if len(bySigner) < p.Threshold {
		return nil, fmt.Errorf("%w: %d valid of %d needed", ErrNotEnoughShares, len(bySigner), p.Threshold)
	}
	agg := &Aggregate{
		Signers: make([]int, 0, len(bySigner)),
		Sigs:    make([][]byte, 0, len(bySigner)),
	}
	for i := 0; i < p.N; i++ {
		if s, ok := bySigner[i]; ok {
			agg.Signers = append(agg.Signers, i)
			agg.Sigs = append(agg.Sigs, s)
		}
	}
	return agg, nil
}

// Verify checks a certificate: produced by this scheme, at least
// Threshold distinct in-range signers, sorted without duplicates, each
// signature valid.
func (p *PublicInfo) Verify(domain hash.Domain, msg []byte, c aggsig.Certificate) error {
	agg, ok := c.(*Aggregate)
	if !ok || agg == nil {
		var got aggsig.SchemeID
		if c != nil && !ok {
			got = c.Scheme()
		}
		return fmt.Errorf("%w: certificate scheme %s, verifier configured for %s",
			ErrBadAggregate, got, aggsig.SchemeMultisig)
	}
	if len(agg.Signers) != len(agg.Sigs) {
		return fmt.Errorf("%w: malformed", ErrBadAggregate)
	}
	if len(agg.Signers) < p.Threshold {
		return fmt.Errorf("%w: %d signers, need %d", ErrBadAggregate, len(agg.Signers), p.Threshold)
	}
	prev := -1
	for i, signer := range agg.Signers {
		if signer <= prev || signer >= p.N {
			return fmt.Errorf("%w: signer list not strictly increasing in range", ErrBadAggregate)
		}
		prev = signer
		if err := sig.Verify(p.Keys[signer], domain, msg, agg.Sigs[i]); err != nil {
			return fmt.Errorf("%w: signer %d: %v", ErrBadAggregate, signer, err)
		}
	}
	return nil
}

// Scheme implements aggsig.Certificate.
func (agg *Aggregate) Scheme() aggsig.SchemeID { return aggsig.SchemeMultisig }

// SignerIDs implements aggsig.Certificate.
func (agg *Aggregate) SignerIDs() []int { return agg.Signers }

// Encode serialises the aggregate: scheme tag, u16 count, then
// (u16 signer, sig) pairs.
func (agg *Aggregate) Encode() []byte {
	out := make([]byte, 0, 3+len(agg.Signers)*(2+sig.SignatureLen))
	out = append(out, byte(aggsig.SchemeMultisig))
	out = binary.BigEndian.AppendUint16(out, uint16(len(agg.Signers)))
	for i, signer := range agg.Signers {
		out = binary.BigEndian.AppendUint16(out, uint16(signer))
		out = append(out, agg.Sigs[i]...)
	}
	return out
}

// Decode implements aggsig.Scheme, rejecting certificates tagged for a
// different scheme.
func (p *PublicInfo) Decode(b []byte) (aggsig.Certificate, error) {
	return DecodeAggregate(b)
}

// DecodeAggregate parses an aggregate encoded by Encode.
func DecodeAggregate(b []byte) (*Aggregate, error) {
	b, err := aggsig.CheckTag(b, aggsig.SchemeMultisig)
	if err != nil {
		return nil, fmt.Errorf("multisig: %w", err)
	}
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: truncated", ErrBadAggregate)
	}
	count := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	const entry = 2 + sig.SignatureLen
	if len(b) != count*entry {
		return nil, fmt.Errorf("%w: length %d for %d entries", ErrBadAggregate, len(b), count)
	}
	agg := &Aggregate{
		Signers: make([]int, count),
		Sigs:    make([][]byte, count),
	}
	for i := 0; i < count; i++ {
		agg.Signers[i] = int(binary.BigEndian.Uint16(b))
		s := make([]byte, sig.SignatureLen)
		copy(s, b[2:entry])
		agg.Sigs[i] = s
		b = b[entry:]
	}
	return agg, nil
}

var (
	_ aggsig.Scheme      = (*PublicInfo)(nil)
	_ aggsig.Certificate = (*Aggregate)(nil)
	_ aggsig.Signer      = SecretKey{}
)
