package transport

import (
	"testing"
	"time"

	"icc/internal/types"
)

func recvOne(t *testing.T, ep Endpoint, timeout time.Duration) Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Inbox():
		if !ok {
			t.Fatal("inbox closed")
		}
		return env
	case <-time.After(timeout):
		t.Fatal("timed out waiting for a message")
	}
	panic("unreachable")
}

func TestInprocDelivery(t *testing.T) {
	hub := NewInproc(3)
	defer hub.Close()
	a := hub.Endpoint(0)
	b := hub.Endpoint(1)
	msg := &types.BeaconShare{Round: 7, Signer: 0, Share: []byte{1, 2}}
	if err := a.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, time.Second)
	if env.From != 0 {
		t.Fatalf("from %d", env.From)
	}
	got, ok := env.Msg.(*types.BeaconShare)
	if !ok || got.Round != 7 {
		t.Fatalf("wrong message: %#v", env.Msg)
	}
}

func TestInprocRejectsOutOfRange(t *testing.T) {
	hub := NewInproc(2)
	defer hub.Close()
	if err := hub.Endpoint(0).Send(5, &types.Advert{}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestInprocClosedSendFails(t *testing.T) {
	hub := NewInproc(2)
	ep := hub.Endpoint(0)
	hub.Close()
	if err := ep.Send(1, &types.Advert{}); err == nil {
		t.Fatal("send through closed hub succeeded")
	}
}

func tcpPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	// Listen on ephemeral ports, then rebuild the address map.
	bootstrap := map[types.PartyID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a, err := NewTCP(0, bootstrap)
	if err != nil {
		t.Fatal(err)
	}
	bootstrap2 := map[types.PartyID]string{0: a.Addr(), 1: "127.0.0.1:0"}
	b, err := NewTCP(1, bootstrap2)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	// Give a the real address of b.
	a.SetPeerAddr(1, b.Addr())
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := tcpPair(t)
	msg := &types.Notarization{Round: 3, Proposer: 1, Agg: []byte("agg")}
	if err := a.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, 5*time.Second)
	if env.From != 0 {
		t.Fatalf("from %d", env.From)
	}
	if got := env.Msg.(*types.Notarization); got.Round != 3 || string(got.Agg) != "agg" {
		t.Fatalf("wrong payload: %#v", env.Msg)
	}
	// And the reverse direction (b dials a).
	if err := b.Send(0, msg); err != nil {
		t.Fatal(err)
	}
	env = recvOne(t, a, 5*time.Second)
	if env.From != 1 {
		t.Fatalf("reverse from %d", env.From)
	}
}

func TestTCPManyMessages(t *testing.T) {
	a, b := tcpPair(t)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(1, &types.BeaconShare{Round: types.Round(i + 1), Signer: 0, Share: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline := time.After(10 * time.Second)
	for got < count {
		select {
		case _, ok := <-b.Inbox():
			if !ok {
				t.Fatal("inbox closed early")
			}
			got++
		case <-deadline:
			t.Fatalf("received %d of %d", got, count)
		}
	}
}

func TestTCPLargeFrame(t *testing.T) {
	a, b := tcpPair(t)
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	msg := &types.BlockMsg{Block: &types.Block{Round: 1, Proposer: 0, Payload: payload}}
	if err := a.Send(1, msg); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, 15*time.Second)
	got := env.Msg.(*types.BlockMsg).Block
	if len(got.Payload) != len(payload) || got.Payload[12345] != payload[12345] {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPSendToUnknownParty(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send(9, &types.Advert{}); err == nil {
		t.Fatal("send to unknown party succeeded")
	}
}

func TestTCPCloseIsIdempotentAndUnblocks(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send(1, &types.Advert{}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, 5*time.Second)
	done := make(chan error, 1)
	go func() { done <- a.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung (inbound connections not torn down?)")
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := a.Send(1, &types.Advert{}); err == nil {
		t.Fatal("send after close succeeded")
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	bootstrap := map[types.PartyID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a, err := NewTCP(0, bootstrap)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := NewTCP(1, map[types.PartyID]string{0: a.Addr(), 1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	bAddr := b1.Addr()
	a.SetPeerAddr(1, bAddr)
	if err := a.Send(1, &types.Advert{}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b1, 5*time.Second)
	// Kill b and restart on the same port.
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	var b2 *TCP
	for i := 0; i < 20; i++ { // the port may linger briefly
		b2, err = NewTCP(1, map[types.PartyID]string{0: a.Addr(), 1: bAddr})
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer b2.Close()
	// Send is a non-blocking enqueue that always succeeds; a frame
	// written into the stale connection's kernel buffer right as it
	// died can still be lost, so keep sending until one arrives via
	// the background redial.
	deadline := time.After(10 * time.Second)
	for {
		if err := a.Send(1, &types.Advert{Refs: []types.Ref{{Kind: types.KindBlock}}}); err != nil {
			t.Fatalf("send: %v", err)
		}
		select {
		case env, ok := <-b2.Inbox():
			if !ok {
				t.Fatal("restarted inbox closed")
			}
			if env.From != 0 {
				t.Fatalf("from %d", env.From)
			}
			return
		case <-deadline:
			t.Fatal("never reconnected to the restarted peer")
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestInprocConcurrentSenders(t *testing.T) {
	hub := NewInproc(4)
	defer hub.Close()
	dst := hub.Endpoint(3)
	const perSender = 50
	for s := 0; s < 3; s++ {
		s := s
		go func() {
			ep := hub.Endpoint(types.PartyID(s))
			for i := 0; i < perSender; i++ {
				_ = ep.Send(3, &types.BeaconShare{Round: types.Round(i + 1), Signer: types.PartyID(s), Share: []byte{byte(i)}})
			}
		}()
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 3*perSender {
		select {
		case <-dst.Inbox():
			got++
		case <-deadline:
			t.Fatalf("received %d of %d", got, 3*perSender)
		}
	}
}
