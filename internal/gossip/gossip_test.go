package gossip

import (
	"testing"
	"time"

	"icc/internal/engine"
	"icc/internal/types"
)

// sink is a minimal inner engine that records what it receives and can
// emit a prepared broadcast on Init.
type sink struct {
	id       types.PartyID
	initOut  []engine.Output
	received []types.Message
}

func (s *sink) ID() types.PartyID                  { return s.id }
func (s *sink) Init(time.Duration) []engine.Output { return s.initOut }
func (s *sink) HandleMessage(_ types.PartyID, m types.Message, _ time.Duration) []engine.Output {
	s.received = append(s.received, m)
	return nil
}
func (s *sink) Tick(time.Duration) []engine.Output           { return nil }
func (s *sink) NextWake(time.Duration) (time.Duration, bool) { return 0, false }
func (s *sink) CurrentRound() types.Round                    { return 1 }

// topo builds a validated topology or fails the test.
func topo(t *testing.T, n, fanout int, seed int64) [][]types.PartyID {
	t.Helper()
	adj, err := Config{N: n, Fanout: fanout, Seed: seed}.Topology()
	if err != nil {
		t.Fatalf("topology(n=%d fanout=%d): %v", n, fanout, err)
	}
	return adj
}

func TestTopologyConnectedAndSymmetric(t *testing.T) {
	for _, n := range []int{2, 4, 7, 13, 40} {
		fanout := 6
		if fanout > n-1 {
			fanout = n - 1
		}
		adj := topo(t, n, fanout, 42)
		if len(adj) != n {
			t.Fatalf("n=%d: %d adjacency rows", n, len(adj))
		}
		// Symmetry.
		has := func(a, b int) bool {
			for _, p := range adj[a] {
				if int(p) == b {
					return true
				}
			}
			return false
		}
		for i := 0; i < n; i++ {
			for _, p := range adj[i] {
				if !has(int(p), i) {
					t.Fatalf("n=%d: edge %d->%d not symmetric", n, i, p)
				}
				if int(p) == i {
					t.Fatalf("n=%d: self-loop at %d", n, i)
				}
			}
		}
		// Connectivity via BFS.
		seen := make([]bool, n)
		queue := []int{0}
		seen[0] = true
		count := 1
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, p := range adj[cur] {
				if !seen[p] {
					seen[p] = true
					count++
					queue = append(queue, int(p))
				}
			}
		}
		if count != n {
			t.Fatalf("n=%d: topology disconnected (%d of %d reachable)", n, count, n)
		}
	}
}

func TestTopologyDeterministic(t *testing.T) {
	a := topo(t, 13, 6, 7)
	b := topo(t, 13, 6, 7)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("topology not deterministic")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("topology not deterministic")
			}
		}
	}
}

func smallMsg() types.Message {
	return &types.BeaconShare{Round: 1, Signer: 2, Share: []byte{1, 2, 3}}
}

func bigMsg() types.Message {
	return &types.BlockMsg{Block: &types.Block{Round: 1, Proposer: 0, Payload: make([]byte, 4096)}}
}

func TestSmallArtifactsEagerPush(t *testing.T) {
	inner := &sink{id: 0}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1}, inner)
	outs := g.HandleMessage(g.Peers()[0], smallMsg(), 0)
	// Delivered to inner once.
	if len(inner.received) != 1 {
		t.Fatalf("inner received %d messages", len(inner.received))
	}
	// Relayed to every peer except the source, as the full message.
	relays := 0
	for _, o := range outs {
		if o.Broadcast {
			t.Fatal("gossip must unicast")
		}
		if o.To == g.Peers()[0] {
			t.Fatal("relayed back to source")
		}
		if _, ok := o.Msg.(*types.BeaconShare); ok {
			relays++
		}
	}
	if relays != len(g.Peers())-1 {
		t.Fatalf("%d relays, want %d", relays, len(g.Peers())-1)
	}
	// Duplicate delivery: dropped entirely.
	outs = g.HandleMessage(g.Peers()[1], smallMsg(), 0)
	if len(outs) != 0 || len(inner.received) != 1 {
		t.Fatal("duplicate artifact not suppressed")
	}
}

func TestLargeArtifactsAdvertised(t *testing.T) {
	inner := &sink{id: 0}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1}, inner)
	outs := g.HandleMessage(g.Peers()[0], bigMsg(), 0)
	if len(inner.received) != 1 {
		t.Fatalf("inner received %d", len(inner.received))
	}
	adverts := 0
	for _, o := range outs {
		if _, ok := o.Msg.(*types.Advert); ok {
			adverts++
		}
		if _, ok := o.Msg.(*types.BlockMsg); ok {
			t.Fatal("large artifact eagerly relayed")
		}
	}
	if adverts != len(g.Peers())-1 {
		t.Fatalf("%d adverts, want %d", adverts, len(g.Peers())-1)
	}
}

func TestAdvertRequestServe(t *testing.T) {
	inner := &sink{id: 0}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1}, inner)
	big := bigMsg()
	g.HandleMessage(g.Peers()[0], big, 0) // now stored

	ref := types.RefOf(big)
	// A peer requests it.
	outs := g.HandleMessage(g.Peers()[1], &types.Request{Refs: []types.Ref{ref}}, 0)
	if len(outs) != 1 || outs[0].To != g.Peers()[1] {
		t.Fatalf("request not served: %v", outs)
	}
	if types.RefOf(outs[0].Msg) != ref {
		t.Fatal("served wrong artifact")
	}
	// Requesting something we lack yields nothing.
	missing := types.Ref{Kind: types.KindBlock, ID: [32]byte{9}}
	if outs := g.HandleMessage(g.Peers()[1], &types.Request{Refs: []types.Ref{missing}}, 0); len(outs) != 0 {
		t.Fatal("served a missing artifact")
	}
}

func TestAdvertSingleFlightWithRetry(t *testing.T) {
	inner := &sink{id: 0}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1, RequestRetry: 100 * time.Millisecond}, inner)
	ref := types.RefOf(bigMsg())
	adv := &types.Advert{Refs: []types.Ref{ref}}
	outs := g.HandleMessage(g.Peers()[0], adv, 0)
	if len(outs) != 1 {
		t.Fatalf("first advert: %d outputs, want 1 request", len(outs))
	}
	if _, ok := outs[0].Msg.(*types.Request); !ok {
		t.Fatal("expected a request")
	}
	// Same advert from same peer: no duplicate request.
	if outs := g.HandleMessage(g.Peers()[0], adv, 0); len(outs) != 0 {
		t.Fatal("duplicate request to same peer")
	}
	// Another advertiser while the first request is in flight: held in
	// reserve, not asked — one download at a time per ref.
	if outs := g.HandleMessage(g.Peers()[1], adv, 0); len(outs) != 0 {
		t.Fatal("second advertiser asked while a request was in flight")
	}
	// The retry deadline must be visible to the scheduler.
	if wake, ok := g.NextWake(0); !ok || wake != 100*time.Millisecond {
		t.Fatalf("NextWake = %v, %v; want retry deadline", wake, ok)
	}
	// Past the retry deadline the reserve advertiser is asked
	// (robustness against a non-answering first advertiser).
	outs = g.Tick(100 * time.Millisecond)
	asked := 0
	for _, o := range outs {
		if _, ok := o.Msg.(*types.Request); ok {
			if o.To != g.Peers()[1] {
				t.Fatalf("retry went to %d, want reserve peer %d", o.To, g.Peers()[1])
			}
			asked++
		}
	}
	if asked != 1 {
		t.Fatalf("%d retry requests, want 1", asked)
	}
	// Once the artifact arrives, further adverts are ignored.
	g.HandleMessage(g.Peers()[2], bigMsg(), 100*time.Millisecond)
	if outs := g.HandleMessage(g.Peers()[0], adv, 200*time.Millisecond); len(outs) != 0 {
		t.Fatal("requested an artifact we already hold")
	}
}

func TestCertificateStatementDedup(t *testing.T) {
	inner := &sink{id: 0}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1}, inner)
	stmt := func(agg []byte) *types.Notarization {
		return &types.Notarization{Round: 3, Proposer: 1, BlockHash: [32]byte{7}, Agg: agg}
	}
	outs := g.HandleMessage(g.Peers()[0], stmt([]byte{1, 1}), 0)
	if len(inner.received) != 1 || len(outs) == 0 {
		t.Fatalf("first certificate not delivered/relayed (%d received, %d outs)", len(inner.received), len(outs))
	}
	// A byte-distinct certificate for the same statement (a different
	// signer subset) is the same artifact: dropped, not re-flooded.
	outs = g.HandleMessage(g.Peers()[1], stmt([]byte{2, 2, 2}), 0)
	if len(outs) != 0 || len(inner.received) != 1 {
		t.Fatalf("subset-variant certificate re-flooded (%d outs, %d received)", len(outs), len(inner.received))
	}
	// A certificate for a different statement still propagates.
	other := &types.Notarization{Round: 4, Proposer: 2, BlockHash: [32]byte{8}, Agg: []byte{1}}
	if outs := g.HandleMessage(g.Peers()[0], other, 0); len(outs) == 0 || len(inner.received) != 2 {
		t.Fatal("distinct statement suppressed")
	}
}

func TestInnerBroadcastsSplitAndGossiped(t *testing.T) {
	big := bigMsg()
	small := smallMsg()
	inner := &sink{id: 0, initOut: []engine.Output{
		engine.Broadcast(&types.Bundle{Messages: []types.Message{big, small}}),
	}}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1}, inner)
	outs := g.Init(0)
	var adverts, pushes int
	for _, o := range outs {
		switch o.Msg.(type) {
		case *types.Advert:
			adverts++
		case *types.BeaconShare:
			pushes++
		}
	}
	if adverts != len(g.Peers()) {
		t.Fatalf("%d adverts for the block, want %d", adverts, len(g.Peers()))
	}
	if pushes != len(g.Peers()) {
		t.Fatalf("%d eager pushes for the share, want %d", pushes, len(g.Peers()))
	}
}

func TestStoreEviction(t *testing.T) {
	inner := &sink{id: 0}
	g := Wrap(Config{Self: 0, N: 4, Fanout: 2, Seed: 1, MaxStore: 4}, inner)
	var refs []types.Ref
	for i := 0; i < 8; i++ {
		m := &types.BeaconShare{Round: types.Round(i + 1), Signer: 1, Share: []byte{byte(i)}}
		refs = append(refs, types.RefOf(m))
		g.HandleMessage(g.Peers()[0], m, 0)
	}
	// The oldest artifacts must be gone; the newest present.
	if outs := g.HandleMessage(g.Peers()[1], &types.Request{Refs: refs[:1]}, 0); len(outs) != 0 {
		t.Fatal("evicted artifact still served")
	}
	if outs := g.HandleMessage(g.Peers()[1], &types.Request{Refs: refs[7:]}, 0); len(outs) != 1 {
		t.Fatal("recent artifact not served")
	}
}

func TestUnicastPassThrough(t *testing.T) {
	inner := &sink{id: 0, initOut: []engine.Output{
		engine.Unicast(3, smallMsg()),
	}}
	g := Wrap(Config{Self: 0, N: 7, Fanout: 3, Seed: 1}, inner)
	outs := g.Init(0)
	if len(outs) != 1 || outs[0].To != 3 || outs[0].Broadcast {
		t.Fatalf("unicast not passed through: %v", outs)
	}
}
