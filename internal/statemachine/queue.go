package statemachine

import (
	"errors"
	"sync"

	"icc/internal/crypto/hash"
	"icc/internal/types"
)

// Typed admission errors returned by Queue.TrySubmit. The gateway maps
// them onto its client-facing sentinels; in-process callers can test
// them directly with errors.Is.
var (
	// ErrDuplicate: an identical (client, seq) command is already pending.
	ErrDuplicate = errors.New("statemachine: duplicate (client, seq) command")
	// ErrTooLarge: the command alone would not fit in a block payload.
	ErrTooLarge = errors.New("statemachine: command exceeds the payload byte bound")
	// ErrBacklogFull: the pending backlog is at MaxPending commands.
	ErrBacklogFull = errors.New("statemachine: pending backlog full")
)

// Queue is a thread-safe pending-command queue implementing the
// consensus engine's PayloadSource. GetPayload batches pending commands,
// skipping any command already present in the chain being extended
// (within DedupDepth ancestor blocks).
type Queue struct {
	mu      sync.Mutex
	pending []Command
	// inFlight tracks identities currently pending, to reject duplicate
	// submissions.
	inFlight map[ident]struct{}

	// MaxBatch bounds commands per payload (default 1024).
	MaxBatch int
	// MaxBytes bounds the encoded payload size (default MaxPayloadBytes).
	// GetPayload never builds a batch that encodes past it, and
	// TrySubmit rejects any single command that could never fit.
	MaxBytes int
	// MaxPending bounds the pending backlog; TrySubmit returns
	// ErrBacklogFull at the bound (0 = unbounded, the historical
	// behaviour).
	MaxPending int
	// DedupDepth bounds how many ancestor blocks are consulted for
	// duplicate suppression (default 64).
	DedupDepth int
}

// NewQueue creates a Queue with default limits.
func NewQueue() *Queue {
	return &Queue{
		inFlight:   make(map[ident]struct{}),
		MaxBatch:   1024,
		MaxBytes:   MaxPayloadBytes,
		DedupDepth: 64,
	}
}

// TrySubmit enqueues a command, or reports with a typed error why it
// was not admitted: ErrDuplicate for an identity already pending,
// ErrTooLarge for a command no payload could carry, ErrBacklogFull at
// the MaxPending bound. It never blocks — backpressure is the caller
// seeing ErrBacklogFull and retrying later.
func (q *Queue) TrySubmit(c Command) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if payloadHeaderSize+c.WireSize() > q.MaxBytes {
		return ErrTooLarge
	}
	if q.MaxPending > 0 && len(q.pending) >= q.MaxPending {
		return ErrBacklogFull
	}
	id := ident{c.Client, c.Seq}
	if _, dup := q.inFlight[id]; dup {
		return ErrDuplicate
	}
	q.inFlight[id] = struct{}{}
	q.pending = append(q.pending, c)
	return nil
}

// Len returns the number of pending commands.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// MarkCommitted removes the commands of a committed payload from the
// queue (they no longer need proposing).
func (q *Queue) MarkCommitted(payload []byte) {
	cmds, err := DecodePayload(payload)
	if err != nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	drop := make(map[ident]struct{}, len(cmds))
	for _, c := range cmds {
		drop[ident{c.Client, c.Seq}] = struct{}{}
	}
	kept := q.pending[:0]
	for _, c := range q.pending {
		id := ident{c.Client, c.Seq}
		if _, gone := drop[id]; gone {
			delete(q.inFlight, id)
			continue
		}
		kept = append(kept, c)
	}
	q.pending = kept
}

// GetPayload implements core.PayloadSource. The batch respects both
// MaxBatch and MaxBytes exactly: building stops before the first
// command that would push the encoded payload past the byte bound
// (stopping, not skipping, preserves per-client Seq order).
func (q *Queue) GetPayload(_ types.Round, parent *types.Block, lookup func(hash.Digest) *types.Block) []byte {
	inChain := q.chainIdents(parent, lookup)
	q.mu.Lock()
	defer q.mu.Unlock()
	var batch []Command
	bytes := payloadHeaderSize
	for _, c := range q.pending {
		if len(batch) >= q.MaxBatch {
			break
		}
		if _, dup := inChain[ident{c.Client, c.Seq}]; dup {
			continue
		}
		if bytes+c.WireSize() > q.MaxBytes {
			break
		}
		batch = append(batch, c)
		bytes += c.WireSize()
	}
	if len(batch) == 0 {
		return nil
	}
	return EncodePayload(batch)
}

// chainIdents collects the command identities of up to DedupDepth
// ancestors ending at parent.
func (q *Queue) chainIdents(parent *types.Block, lookup func(hash.Digest) *types.Block) map[ident]struct{} {
	out := make(map[ident]struct{})
	cur := parent
	for depth := 0; cur != nil && !cur.IsRoot() && depth < q.DedupDepth; depth++ {
		if cmds, err := DecodePayload(cur.Payload); err == nil {
			for _, c := range cmds {
				out[ident{c.Client, c.Seq}] = struct{}{}
			}
		}
		if lookup == nil {
			break
		}
		cur = lookup(cur.ParentHash)
	}
	return out
}
