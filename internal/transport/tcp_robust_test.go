package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"icc/internal/metrics"
	"icc/internal/types"
)

// TestSlowReaderDoesNotBlockOtherPeers is the regression test for the
// pre-queue design, where one stuck peer stalled every send: party 0
// talks to a healthy peer (1) and a black-hole peer (2) that accepts
// connections but never reads. The healthy peer must receive all its
// traffic promptly while the black-hole peer's writer is wedged.
func TestSlowReaderDoesNotBlockOtherPeers(t *testing.T) {
	stats := metrics.NewTransportStats()
	slowLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer slowLis.Close()
	go func() {
		for {
			c, err := slowLis.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accept and never read
		}
	}()

	bootstrap := map[types.PartyID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0", 2: slowLis.Addr().String()}
	a, err := NewTCPWithOptions(0, bootstrap, TCPOptions{
		SendQueue:    8,
		WriteTimeout: 300 * time.Millisecond,
		Stats:        stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCP(1, map[types.PartyID]string{0: a.Addr(), 1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeerAddr(1, b.Addr())

	// Phase 1: wedge the slow peer — big frames until kernel socket
	// buffers fill and its writer blocks on the write deadline. Every
	// Send must still return near-instantly (the non-blocking guarantee
	// the runner's event loop depends on), with the bounded queue
	// evicting stale frames instead of buffering 50 MiB.
	const count = 100
	bigPayload := make([]byte, 512<<10)
	start := time.Now()
	for i := 0; i < count; i++ {
		if err := a.Send(2, &types.BlockMsg{Block: &types.Block{Round: types.Round(i + 1), Payload: bigPayload}}); err != nil {
			t.Fatalf("send to slow peer: %v", err)
		}
	}
	if enqueueTime := time.Since(start); enqueueTime > 2*time.Second {
		t.Fatalf("enqueueing took %v; Send is blocking on the slow peer", enqueueTime)
	}
	if snap := stats.Detail(); snap.QueueDropped[2] == 0 {
		t.Fatalf("expected drop-oldest evictions for the wedged peer, stats: %v", snap)
	}

	// Phase 2: with the slow peer's writer wedged, traffic to the
	// healthy peer must flow unimpeded.
	go func() {
		for i := 0; i < count; i++ {
			_ = a.Send(1, &types.BeaconShare{Round: types.Round(i + 1), Signer: 0, Share: []byte{byte(i)}})
			time.Sleep(time.Millisecond) // pace below the writer's drain rate
		}
	}()
	got := 0
	deadline := time.After(15 * time.Second)
	for got < count {
		select {
		case _, ok := <-b.Inbox():
			if !ok {
				t.Fatal("healthy inbox closed early")
			}
			got++
		case <-deadline:
			t.Fatalf("healthy peer received %d of %d while slow peer was wedged", got, count)
		}
	}
}

// TestFrameSizeLimits exercises the framing boundary in both
// directions: exactly maxFrame round-trips, one byte more is refused on
// read before any allocation, and Send refuses messages that could
// never be accepted remotely.
func TestFrameSizeLimits(t *testing.T) {
	// A frame of exactly maxFrame is legal.
	cr, cw := net.Pipe()
	defer cr.Close()
	defer cw.Close()
	payload := make([]byte, maxFrame)
	payload[0], payload[maxFrame-1] = 0xAB, 0xCD
	errc := make(chan error, 1)
	go func() { errc <- writeFrame(cw, payload) }()
	got, err := readFrame(cr)
	if err != nil {
		t.Fatalf("read of maxFrame-sized frame: %v", err)
	}
	if werr := <-errc; werr != nil {
		t.Fatalf("write of maxFrame-sized frame: %v", werr)
	}
	if len(got) != maxFrame || got[0] != 0xAB || got[maxFrame-1] != 0xCD {
		t.Fatal("maxFrame-sized frame corrupted")
	}

	// A header claiming maxFrame+1 is rejected without reading further.
	r2, w2 := net.Pipe()
	defer r2.Close()
	defer w2.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
		_, _ = w2.Write(hdr[:])
	}()
	if _, err := readFrame(r2); err == nil {
		t.Fatal("oversized frame header accepted")
	}

	// Send refuses a message whose encoding exceeds the frame limit.
	a, _ := tcpPair(t)
	huge := &types.BlockMsg{Block: &types.Block{Round: 1, Payload: make([]byte, maxFrame)}}
	if err := a.Send(1, huge); err == nil {
		t.Fatal("oversized message accepted for send")
	}
}

// TestHandshakeRejectsUnknownParty connects raw sockets that handshake
// as a party outside the cluster (and with a malformed hello) and
// checks the transport closes them without delivering anything.
func TestHandshakeRejectsUnknownParty(t *testing.T) {
	a, b := tcpPair(t)
	_ = a

	dialRaw := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// The transport may close with unread data pending, which surfaces
	// as ECONNRESET rather than a clean EOF — both mean "rejected".
	expectClosed := func(c net.Conn) {
		t.Helper()
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, err := c.Read(make([]byte, 1))
		if err == nil || n > 0 {
			t.Fatal("rejected connection still delivered data")
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatal("transport did not close the rejected connection")
		}
	}

	// Unknown party ID 99.
	c1 := dialRaw()
	defer c1.Close()
	var hello [8]byte
	binary.BigEndian.PutUint64(hello[:], 99)
	if err := writeFrame(c1, hello[:]); err != nil {
		t.Fatal(err)
	}
	_ = writeFrame(c1, types.Marshal(&types.Advert{}))
	expectClosed(c1)

	// Garbage handshake (wrong length).
	c2 := dialRaw()
	defer c2.Close()
	if err := writeFrame(c2, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	expectClosed(c2)

	// A peer claiming to be the receiver itself is also rejected.
	c3 := dialRaw()
	defer c3.Close()
	binary.BigEndian.PutUint64(hello[:], 1) // b's own ID
	if err := writeFrame(c3, hello[:]); err != nil {
		t.Fatal(err)
	}
	expectClosed(c3)

	select {
	case env := <-b.Inbox():
		t.Fatalf("message delivered from rejected connection: %#v", env)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestConcurrentCloseAndSend hammers Send from several goroutines while
// Close runs; run with -race. Sends must either succeed or return
// ErrClosed — never panic or hang.
func TestConcurrentCloseAndSend(t *testing.T) {
	a, b := tcpPair(t)
	_ = b
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				_ = a.Send(1, &types.Advert{})
			}
		}()
	}
	close(start)
	time.Sleep(time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatalf("close during sends: %v", err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("senders hung across Close")
	}
	if err := a.Send(1, &types.Advert{}); err == nil {
		t.Fatal("send after close succeeded")
	}
}

// TestInprocInboxOverflowCounted fills an inproc inbox past capacity and
// checks the discards are counted rather than silently dropped.
func TestInprocInboxOverflowCounted(t *testing.T) {
	stats := metrics.NewTransportStats()
	hub := NewInproc(2)
	defer hub.Close()
	hub.SetStats(stats)
	ep := hub.Endpoint(0)
	const extra = 7
	for i := 0; i < inboxSize+extra; i++ {
		if err := ep.Send(1, &types.Advert{}); err != nil {
			t.Fatal(err)
		}
	}
	if snap := stats.Detail(); snap.InboxOverflow != extra {
		t.Fatalf("inbox overflow count = %d, want %d", snap.InboxOverflow, extra)
	}
}
