// Package engine defines the contract between a consensus engine (the
// per-party protocol state machine) and the runtimes that host it — the
// discrete-event simulator, the in-process runtime, and the TCP runtime.
//
// Engines are written in an event-driven style: the host delivers
// messages and timer ticks, and the engine returns the messages it wants
// transmitted. Engines insert their own broadcasts into their own pools
// internally (each party's pool holds messages "received from all
// parties (including itself)", paper §3.1), so hosts never loop a
// party's output back to itself.
package engine

import (
	"time"

	"icc/internal/types"
)

// Output is one transmission requested by an engine.
type Output struct {
	To        types.PartyID // destination when Broadcast is false
	Broadcast bool
	Msg       types.Message
}

// Broadcast wraps a message for transmission to all other parties.
func Broadcast(m types.Message) Output { return Output{Broadcast: true, Msg: m} }

// Unicast wraps a message for transmission to a single party. The core
// ICC0/ICC1 protocols only ever broadcast (paper §3.1); unicast exists
// for the gossip pull path, the ICC2 fragment distribution, and for
// Byzantine engines that equivocate by sending different messages to
// different parties.
func Unicast(to types.PartyID, m types.Message) Output {
	return Output{To: to, Msg: m}
}

// Engine is a single party's protocol state machine.
type Engine interface {
	// ID returns the party this engine speaks for.
	ID() types.PartyID

	// Init is called once before any other method, at protocol start.
	Init(now time.Duration) []Output

	// HandleMessage delivers one received message.
	HandleMessage(from types.PartyID, m types.Message, now time.Duration) []Output

	// Tick re-evaluates time-dependent conditions (the Δprop/Δntry
	// clauses of Fig. 1).
	Tick(now time.Duration) []Output

	// NextWake returns the earliest future time at which a time
	// condition could newly become true, if any. Hosts call Tick no
	// later than that time.
	NextWake(now time.Duration) (time.Duration, bool)

	// CurrentRound reports the round the engine is working on, for
	// metrics attribution.
	CurrentRound() types.Round
}
