package harness

import (
	"strings"
	"testing"
	"time"

	"icc/internal/simnet"
	"icc/internal/types"
)

// chaosOptions is the shared small-cluster campaign configuration: n = 4
// (t = 1, quorum n−t = 3) keeps runs fast enough for -race.
func chaosOptions(t *testing.T) CampaignOptions {
	t.Helper()
	return CampaignOptions{
		Seeds:      []int64{1, 2},
		SimTime:    6 * time.Second,
		MinCommits: 5,
		MaxStall:   4 * time.Second,
		TraceDir:   t.TempDir(),
	}
}

// TestChaosCampaign sweeps the adversary matrix at n = 4: every profile
// with at most t Byzantine parties must preserve safety and liveness,
// and the over-threshold control profile must stall finalization. This
// is the `make chaos` entry point.
func TestChaosCampaign(t *testing.T) {
	profiles := []Profile{
		{
			Name: "equivocator", N: 4,
			Behaviors: map[types.PartyID]Behavior{0: Equivocator},
		},
		{
			Name: "withhold-notar-t", N: 4,
			Behaviors: map[types.PartyID]Behavior{0: WithholdNotar},
		},
		{
			Name: "withhold-final-t", N: 4,
			Behaviors: map[types.PartyID]Behavior{0: WithholdFinal},
		},
		{
			Name: "clock-skew", N: 4,
			Behaviors: map[types.PartyID]Behavior{0: ClockSkewed, 1: ClockSkewed},
			Tuning: map[types.PartyID]BehaviorTuning{
				0: {Skew: 250 * time.Millisecond},
				1: {Skew: -250 * time.Millisecond},
			},
		},
		{
			Name: "rank-collusion", N: 4,
			Behaviors: map[types.PartyID]Behavior{0: RankAbuser},
		},
		{
			Name: "withhold-final-t1-stall", N: 4,
			Behaviors:   map[types.PartyID]Behavior{0: WithholdFinal, 1: WithholdFinal},
			ExpectStall: true,
		},
	}
	rep, err := RunCampaign(profiles, chaosOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if r.Failure != "" {
			t.Errorf("%s seed %d: %s (replay: go test -run TestReplay, trace %s)", r.Profile, r.Seed, r.Failure, r.TracePath)
		}
	}
}

// TestWithholdExactlyTStillFinalizes pins the finalization quorum at its
// threshold boundary from below: with n = 4 and t = 1, one withheld
// finalization share leaves the n−t = 3 quorum reachable, so liveness
// must hold untouched.
func TestWithholdExactlyTStillFinalizes(t *testing.T) {
	c, err := New(Options{
		N: 4, Seed: 71, Delay: simnet.Uniform{Min: 5 * time.Millisecond, Max: 15 * time.Millisecond},
		SimBeacon: true, KeyRand: newDetReader(71),
		Behaviors: map[types.PartyID]Behavior{0: WithholdFinal},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if !c.RunUntilCommitted(8, 10*time.Second) {
		t.Fatalf("t withholders must not break liveness: honest parties committed %d blocks", c.MinCommitted(c.HonestParties()))
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

// TestWithholdTPlusOneStallsThenRecovers crosses the boundary from
// above: two withholders (t+1) make the finalization quorum unreachable
// — no commit can happen — until one rejoins, after which finalizing any
// later round commits the whole stalled prefix in one burst (Fig. 2's
// chain commit).
func TestWithholdTPlusOneStallsThenRecovers(t *testing.T) {
	const rejoin = 3 * time.Second
	c, err := New(Options{
		N: 4, Seed: 72, Delay: simnet.Uniform{Min: 5 * time.Millisecond, Max: 15 * time.Millisecond},
		SimBeacon: true, KeyRand: newDetReader(72),
		Behaviors: map[types.PartyID]Behavior{0: WithholdFinal, 1: WithholdFinal},
		Tuning:    map[types.PartyID]BehaviorTuning{1: {Until: rejoin}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	honest := c.HonestParties()

	// Phase 1: while both withhold, finalization is impossible — only 2
	// of the required 3 shares exist anywhere.
	c.Net.Run(rejoin - 200*time.Millisecond)
	if got := c.MinCommitted(honest); got != 0 {
		t.Fatalf("with t+1 withholders, committed %d blocks before the rejoin", got)
	}

	// Phase 2: party 1 rejoins at 3s; commits must resume and recover
	// the stalled prefix.
	if !c.RunUntilCommitted(8, 12*time.Second) {
		t.Fatalf("after rejoin, honest parties only committed %d blocks", c.MinCommitted(honest))
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
	// The recovery must include rounds finalized-by-prefix: the first
	// committed block predates the rejoin burst.
	times := c.CommittedAt(honest[0])
	blocks := c.Committed(honest[0])
	if len(blocks) == 0 || times[0] < rejoin {
		t.Fatalf("unexpected commit timeline: first commit at %v", times[0])
	}
	if blocks[0].Round >= blocks[len(blocks)-1].Round && len(blocks) > 1 {
		t.Fatal("commit burst did not recover a chain prefix")
	}
}

// TestCampaignFailureReplaysByteIdentical is the replay acceptance
// criterion: an injected failure (t+1 withholders against a liveness
// expectation) records a trace that re-executes to a byte-identical
// event stream with the same verdict.
func TestCampaignFailureReplaysByteIdentical(t *testing.T) {
	failing := Profile{
		Name: "injected-liveness-failure", N: 4,
		Behaviors: map[types.PartyID]Behavior{0: WithholdFinal, 1: WithholdFinal},
		// ExpectStall deliberately left false: the stall becomes a
		// liveness failure, which is the artifact under test.
	}
	o := chaosOptions(t)
	o.Seeds = []int64{42}
	o.SimTime = 4 * time.Second

	rep, err := RunCampaign([]Profile{failing}, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 1 || rep.Runs[0].TracePath == "" {
		t.Fatalf("expected exactly one failing run with a trace, got %+v", rep.Runs)
	}
	if !strings.HasPrefix(rep.Runs[0].Failure, "liveness:") {
		t.Fatalf("unexpected failure class: %s", rep.Runs[0].Failure)
	}

	replay, err := ReplayTrace(rep.Runs[0].TracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !replay.Reproduced {
		t.Fatalf("failure did not reproduce: recorded %q, replay %q", replay.RecordedFailure, replay.ReplayFailure)
	}
	if !replay.ByteIdentical {
		t.Fatalf("replay diverged from recorded trace at line %d", replay.DivergeLine)
	}
}

// TestReplayRefusesTruncatedTrace is the ring-overflow audit: a trace
// whose ring dropped events must be refused loudly, not replayed from
// partial history.
func TestReplayRefusesTruncatedTrace(t *testing.T) {
	failing := Profile{
		Name: "truncated", N: 4,
		Behaviors: map[types.PartyID]Behavior{0: WithholdFinal, 1: WithholdFinal},
	}
	o := chaosOptions(t)
	o.Seeds = []int64{42}
	o.SimTime = 4 * time.Second
	o.TraceCap = 64 // far below the run's event count: the ring wraps

	path, err := WriteFailureTrace(failing, 42, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayTrace(path); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated trace accepted for replay: err = %v", err)
	}
}

// TestShrinkerMinimizes is the shrinker acceptance criterion: a failing
// campaign cell with extra, irrelevant Byzantine roles shrinks to the
// minimal set that still fails — the two finalization withholders that
// form t+1 at n = 4.
func TestShrinkerMinimizes(t *testing.T) {
	bloated := Profile{
		Name: "bloated", N: 4,
		Behaviors: map[types.PartyID]Behavior{
			0: WithholdFinal,
			1: WithholdFinal,
			2: ClockSkewed, // irrelevant to the failure
		},
		Tuning: map[types.PartyID]BehaviorTuning{2: {Skew: 200 * time.Millisecond}},
	}
	o := chaosOptions(t)
	o.Seeds = []int64{42}
	o.SimTime = 4 * time.Second

	res, err := Shrink(bloated, 42, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile.Behaviors) > 2 {
		t.Fatalf("shrinker kept %d behaviors, want ≤ 2: %v", len(res.Profile.Behaviors), res.Profile.Behaviors)
	}
	for pid, b := range res.Profile.Behaviors {
		if b != WithholdFinal {
			t.Fatalf("shrinker kept irrelevant behavior %v for party %d", b, pid)
		}
	}
	if res.Failure == "" {
		t.Fatal("shrunk profile no longer fails")
	}
}

// TestBehaviorRoundTrip pins the campaign metadata encoding: behaviours
// and tunings survive encode/decode, which replay correctness rests on.
func TestBehaviorRoundTrip(t *testing.T) {
	p := Profile{
		N: 7,
		Behaviors: map[types.PartyID]Behavior{
			0: Equivocator, 2: WithholdFinal, 3: ClockSkewed, 5: RankAbuser,
		},
		Tuning: map[types.PartyID]BehaviorTuning{
			2: {Until: 3 * time.Second},
			3: {Skew: -250 * time.Millisecond},
			5: {ShareDelay: 40 * time.Millisecond},
		},
	}
	enc := encodeBehaviors(p)
	behaviors, tuning, err := decodeBehaviors(enc)
	if err != nil {
		t.Fatalf("decode(%q): %v", enc, err)
	}
	if len(behaviors) != len(p.Behaviors) || len(tuning) != len(p.Tuning) {
		t.Fatalf("round trip changed cardinality: %v / %v", behaviors, tuning)
	}
	for pid, b := range p.Behaviors {
		if behaviors[pid] != b {
			t.Fatalf("party %d: %v != %v", pid, behaviors[pid], b)
		}
	}
	for pid, tu := range p.Tuning {
		if tuning[pid] != tu {
			t.Fatalf("party %d tuning: %+v != %+v", pid, tuning[pid], tu)
		}
	}
}
