// Package icc is a from-scratch Go implementation of the Internet
// Computer Consensus (ICC) family of atomic-broadcast protocols
// (Camenisch, Drijvers, Hanke, Pignolet, Shoup, Williams — PODC 2022):
// ICC0, ICC1 (gossip dissemination), and ICC2 (erasure-coded reliable
// broadcast), together with every substrate they depend on — threshold
// signatures and a random beacon, an artifact pool and block tree, a
// gossip overlay, Reed–Solomon coding with Merkle-committed fragments, a
// deterministic network simulator, and real in-process/TCP runtimes.
//
// This package is the high-level facade. Three entry points:
//
//   - NewLocalCluster: an n-party replicated state machine running in
//     one process on real time, with a key-value store on top — the
//     quickest way to see consensus commit client commands.
//   - NewSim: a deterministic discrete-event simulation of a cluster
//     (virtual time, seeded delays, optional Byzantine parties) — the
//     engine behind the benchmark suite and most tests.
//   - internal/... packages expose every layer individually for
//     advanced use; see DESIGN.md for the map.
package icc

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"icc/internal/adversary"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/keys"
	"icc/internal/engine"
	"icc/internal/gossip"
	"icc/internal/harness"
	"icc/internal/rbc"
	"icc/internal/runtime"
	"icc/internal/statemachine"
	"icc/internal/transport"
	"icc/internal/types"
)

// Mode selects the protocol variant.
type Mode int

// Protocol variants.
const (
	ICC0 Mode = iota // blocks broadcast directly (paper §3)
	ICC1             // blocks disseminated via the gossip sub-layer
	ICC2             // blocks disseminated via erasure-coded reliable broadcast
)

// Behavior configures a party's (mis)behaviour in a LocalCluster.
type Behavior int

// Behaviours for fault-injection runs.
const (
	Honest Behavior = iota
	CrashFromBirth
	SilentLeader
	EquivocatingLeader
)

// Command is a replicated-state-machine command. (Client, Seq) must be
// unique per command; replicas apply each identity exactly once, in
// per-client Seq order.
type Command = statemachine.Command

// Operation codes for Command.Op.
const (
	OpSet    = statemachine.OpSet
	OpDelete = statemachine.OpDelete
	OpAppend = statemachine.OpAppend
)

// KV is the replicated key-value state machine each party maintains.
type KV = statemachine.KV

// CommitEvent reports one block committed by one party.
type CommitEvent struct {
	Party   int
	Round   uint64
	Payload []byte
}

// Options configures a LocalCluster.
type Options struct {
	// Mode selects ICC0 (default), ICC1, or ICC2.
	Mode Mode
	// DeltaBound is Δbnd, the partial-synchrony delay bound driving the
	// Δprop/Δntry delay functions (default 100 ms — generous for
	// localhost; lower it for faster rounds).
	DeltaBound time.Duration
	// Epsilon is the ε rate governor of paper eq. (2) (default 0).
	Epsilon time.Duration
	// Behaviors assigns Byzantine roles to parties (default all honest).
	Behaviors map[int]Behavior
	// GossipFanout bounds the ICC1 overlay degree (default ≈ 2·log₂ n).
	GossipFanout int
	// MaxBatch bounds commands per block (default 1024).
	MaxBatch int
}

// Option mutates Options.
type Option func(*Options)

// WithMode selects the protocol variant.
func WithMode(m Mode) Option { return func(o *Options) { o.Mode = m } }

// WithDeltaBound sets Δbnd.
func WithDeltaBound(d time.Duration) Option { return func(o *Options) { o.DeltaBound = d } }

// WithEpsilon sets the ε governor.
func WithEpsilon(d time.Duration) Option { return func(o *Options) { o.Epsilon = d } }

// WithBehavior assigns a Byzantine role to a party.
func WithBehavior(party int, b Behavior) Option {
	return func(o *Options) {
		if o.Behaviors == nil {
			o.Behaviors = make(map[int]Behavior)
		}
		o.Behaviors[party] = b
	}
}

// WithGossipFanout bounds the ICC1 overlay degree.
func WithGossipFanout(f int) Option { return func(o *Options) { o.GossipFanout = f } }

// LocalCluster is an n-party ICC deployment inside one process, running
// on wall-clock time over an in-process transport, with a replicated
// key-value store applied on top of the committed chain.
type LocalCluster struct {
	n    int
	pub  *keys.Public
	hub  *transport.Inproc
	rnrs []*runtime.Runner

	queues []*statemachine.Queue
	kvs    []*statemachine.KV

	mu        sync.Mutex
	onCommit  func(CommitEvent)
	committed []int
	started   bool
}

// NewLocalCluster deals key material and assembles an n-party cluster.
// Call Start to run it and Stop to shut it down.
func NewLocalCluster(n int, opts ...Option) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("icc: invalid cluster size %d", n)
	}
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	if o.DeltaBound == 0 {
		o.DeltaBound = 100 * time.Millisecond
	}
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		return nil, fmt.Errorf("icc: dealing keys: %w", err)
	}
	c := &LocalCluster{
		n:         n,
		pub:       pub,
		hub:       transport.NewInproc(n),
		queues:    make([]*statemachine.Queue, n),
		kvs:       make([]*statemachine.KV, n),
		committed: make([]int, n),
	}
	clk := clock.NewWall()
	for i := 0; i < n; i++ {
		i := i
		c.queues[i] = statemachine.NewQueue()
		if o.MaxBatch > 0 {
			c.queues[i].MaxBatch = o.MaxBatch
		}
		c.kvs[i] = statemachine.NewKV()
		behavior := o.Behaviors[i]
		if behavior == CrashFromBirth {
			// A crashed party simply runs no engine.
			c.rnrs = append(c.rnrs, nil)
			continue
		}
		inner := core.NewEngine(core.Config{
			Self:       types.PartyID(i),
			Keys:       pub,
			Priv:       privs[i],
			DeltaBound: o.DeltaBound,
			Epsilon:    o.Epsilon,
			Payload:    c.queues[i],
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) { c.commit(i, b) },
			},
		})
		var eng engine.Engine = inner
		switch behavior {
		case SilentLeader:
			eng = adversary.NewSilentLeader(inner)
		case EquivocatingLeader:
			eng = adversary.NewEquivocator(inner, n, privs[i].Auth)
		}
		switch o.Mode {
		case ICC1:
			fanout := o.GossipFanout
			if fanout <= 0 {
				fanout = defaultFanout(n)
			}
			eng = gossip.Wrap(gossip.Config{Self: types.PartyID(i), N: n, Fanout: fanout, Seed: 42}, eng)
		case ICC2:
			eng = rbc.Wrap(rbc.Config{Self: types.PartyID(i), N: n}, eng)
		}
		c.rnrs = append(c.rnrs, runtime.NewRunner(eng, c.hub.Endpoint(types.PartyID(i)), clk, n))
	}
	return c, nil
}

// defaultFanout mirrors the harness default: ≈ 2·log₂(n) + 2.
func defaultFanout(n int) int {
	f := 2
	for v := n; v > 1; v >>= 1 {
		f += 2
	}
	if f > n-1 {
		f = n - 1
	}
	return f
}

// commit applies a committed block to party i's state machine and fires
// the user callback.
func (c *LocalCluster) commit(i int, b *types.Block) {
	_ = c.kvs[i].Apply(b.Payload)
	c.queues[i].MarkCommitted(b.Payload)
	c.mu.Lock()
	c.committed[i]++
	h := c.onCommit
	c.mu.Unlock()
	if h != nil {
		h(CommitEvent{Party: i, Round: uint64(b.Round), Payload: b.Payload})
	}
}

// OnCommit registers a callback fired for every block each party
// commits. Must be called before Start. The callback runs on engine
// goroutines: keep it fast and thread-safe.
func (c *LocalCluster) OnCommit(h func(CommitEvent)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onCommit = h
}

// Start launches all parties.
func (c *LocalCluster) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	for _, r := range c.rnrs {
		if r != nil {
			r.Start()
		}
	}
}

// Stop shuts the cluster down.
func (c *LocalCluster) Stop() {
	for _, r := range c.rnrs {
		if r != nil {
			r.Stop()
		}
	}
	c.hub.Close()
}

// Submit hands a command to one party's pending queue; the party will
// include it in a future block proposal. Returns false on duplicate
// (client, seq).
func (c *LocalCluster) Submit(party int, cmd Command) bool {
	return c.queues[party].Submit(cmd)
}

// KV returns party p's replicated key-value store.
func (c *LocalCluster) KV(party int) *KV { return c.kvs[party] }

// CommittedBlocks returns how many blocks party p has committed.
func (c *LocalCluster) CommittedBlocks(party int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.committed[party]
}

// WaitForCommits blocks until every live party has committed at least
// min blocks, or the timeout elapses.
func (c *LocalCluster) WaitForCommits(min int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.minCommitted() >= min {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c.minCommitted() >= min
}

func (c *LocalCluster) minCommitted() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	minC := -1
	for i, r := range c.rnrs {
		if r == nil {
			continue // crashed party
		}
		if minC < 0 || c.committed[i] < minC {
			minC = c.committed[i]
		}
	}
	return minC
}

// Sim re-exports the deterministic simulation harness: virtual time,
// seeded delay models, Byzantine behaviours, and byte-accurate metrics.
// See the harness package for the full option surface.
type Sim = harness.Cluster

// SimOptions configures a simulation.
type SimOptions = harness.Options

// NewSim builds a deterministic cluster simulation.
func NewSim(opts SimOptions) (*Sim, error) { return harness.New(opts) }
