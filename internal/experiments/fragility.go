package experiments

import (
	"fmt"
	"sync"
	"time"

	"icc/internal/baseline"
	"icc/internal/harness"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

// PBFTFragility reproduces the robust-consensus argument the paper
// builds on [15] (experiment E11): PBFT keeps one leader until a
// view-change fires, so a leader that does the bare minimum — proposing
// just inside the timeout, or stalling until replaced — controls the
// whole system's throughput. ICC's per-round probabilistic leader means
// one slow party only ever taxes its own rounds.
//
// Three conditions per protocol, same n, δ, and Δbnd:
//   - honest:      everyone behaves;
//   - crash:       one party (PBFT's initial leader) is dead;
//   - slow leader: one party proposes only after a delay just inside the
//     PBFT view-change timeout ([15]'s attack). For ICC the same party
//     simply delays its proposals — other ranks take over per Δntry.
func PBFTFragility(scale Scale) *Table {
	const n = 7
	const delta = 10 * time.Millisecond
	const bound = 50 * time.Millisecond
	window := time.Duration(scale.scaleInt(60)) * time.Second
	t := &Table{
		ID:      "E11",
		Title:   fmt.Sprintf("robustness vs PBFT ([15]): throughput under leader misbehaviour (n=%d, δ=%v, Δbnd=%v)", n, delta, bound),
		Columns: []string{"protocol", "condition", "commits/s", "vs honest"},
		Notes: []string{
			"PBFT's slow leader proposes at 3·Δbnd intervals — inside its 4·Δbnd view-change timeout, so it is never replaced",
			"the ICC slow party is modelled as a silent leader: its rounds fall through to rank 1 after Δntry(1)",
		},
	}

	pbftRun := func(slow bool, crash bool) int64 {
		nw := simnet.New(simnet.Options{Seed: 11000, Delay: simnet.Fixed{D: delta}})
		var mu sync.Mutex
		commits := make([]int64, n)
		for i := 0; i < n; i++ {
			i := i
			cfg := baseline.PBFTConfig{
				Self: types.PartyID(i), N: n, DeltaBound: bound,
				OnCommit: func(uint64, []byte, time.Duration) {
					mu.Lock()
					commits[i]++
					mu.Unlock()
				},
			}
			if slow && i == 0 {
				cfg.ProposeDelay = 3 * bound // inside the 4·Δbnd timeout
			}
			nw.AddNode(baseline.NewPBFT(cfg), true)
		}
		if crash {
			nw.Crash(0) // the initial leader
		}
		nw.Start()
		nw.Run(window)
		mu.Lock()
		defer mu.Unlock()
		// Use a non-faulty party's count.
		return commits[1]
	}

	iccRun := func(behavior harness.Behavior) int64 {
		opts := harness.Options{
			N: n, Seed: 11001, Delay: simnet.Fixed{D: delta},
			DeltaBound: bound, SimBeacon: true, Verify: pool.VerifySharesOnly, PruneDepth: simPruneDepth,
		}
		if behavior != 0 {
			opts.Behaviors = map[types.PartyID]harness.Behavior{0: behavior}
		}
		c, err := harness.New(opts)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		c.Start()
		c.Net.Run(window)
		if err := c.CheckSafety(); err != nil {
			panic(fmt.Sprintf("fragility run violated safety: %v", err))
		}
		return c.Rec.Summarize().CommittedBlocks
	}

	iccHonest := iccRun(0)
	iccCrash := iccRun(harness.Crash)
	iccSlow := iccRun(harness.SilentLeader)
	pbftHonest := pbftRun(false, false)
	pbftCrash := pbftRun(false, true)
	pbftSlow := pbftRun(true, false)

	secs := window.Seconds()
	pct := func(v, base int64) string { return fmt.Sprintf("%.0f%%", 100*float64(v)/float64(base)) }
	t.AddRow("ICC0", "honest", fmt.Sprintf("%.1f", float64(iccHonest)/secs), "100%")
	t.AddRow("ICC0", "1 crashed", fmt.Sprintf("%.1f", float64(iccCrash)/secs), pct(iccCrash, iccHonest))
	t.AddRow("ICC0", "1 slow/silent leader", fmt.Sprintf("%.1f", float64(iccSlow)/secs), pct(iccSlow, iccHonest))
	t.AddRow("PBFT", "honest", fmt.Sprintf("%.1f", float64(pbftHonest)/secs), "100%")
	t.AddRow("PBFT", "leader crashed", fmt.Sprintf("%.1f", float64(pbftCrash)/secs), pct(pbftCrash, pbftHonest))
	t.AddRow("PBFT", "slow leader ([15])", fmt.Sprintf("%.1f", float64(pbftSlow)/secs), pct(pbftSlow, pbftHonest))
	return t
}
