package experiments

import (
	"fmt"
	"time"

	"icc/internal/harness"
	"icc/internal/types"
)

// AdversaryCampaign runs the adversary-matrix campaign (experiment E15):
// a sweep of Byzantine behaviour profiles × seeds at n = 7 (t = 2),
// asserting the two properties the paper proves — safety under any
// ≤ t corruption (Theorem 1) and liveness with bounded stall (Theorem 2)
// — and, for the over-threshold control row, that t+1 finalization
// withholders really do stall finalization (the quorum-intersection
// arithmetic cuts both ways: if the protocol finalized anyway, the
// threshold model would be broken).
//
// Profiles pin the share-withholding rows at the exact quorum boundary:
// with n = 7 and t = 2, finalization needs n−t = 5 of 7 shares, so 2
// withholders are harmless and 3 are fatal until one rejoins. Failing
// cells write a replayable trace (see DESIGN.md §16) whose path lands in
// the table notes.
func AdversaryCampaign(scale Scale) *Table {
	const n = 7 // t = 2, quorum n−t = 5
	simTime := time.Duration(scale.scaleInt(12)) * time.Second
	seeds := []int64{1501, 1502, 1503}
	if scale > 0 && scale < 1 {
		seeds = seeds[:1]
	}

	const rejoin = 4 * time.Second
	profiles := []harness.Profile{
		{
			Name: "equivocating-leaders", N: n,
			Behaviors: map[types.PartyID]harness.Behavior{
				0: harness.Equivocator, 1: harness.Equivocator,
			},
		},
		{
			Name: "withhold-notar-t", N: n,
			Behaviors: map[types.PartyID]harness.Behavior{
				0: harness.WithholdNotar, 1: harness.WithholdNotar,
			},
		},
		{
			Name: "withhold-final-t", N: n,
			Behaviors: map[types.PartyID]harness.Behavior{
				0: harness.WithholdFinal, 1: harness.WithholdFinal,
			},
		},
		{
			Name: "withhold-final-t1-rejoin", N: n,
			Behaviors: map[types.PartyID]harness.Behavior{
				0: harness.WithholdFinal, 1: harness.WithholdFinal, 2: harness.WithholdFinal,
			},
			Tuning: map[types.PartyID]harness.BehaviorTuning{
				2: {Until: rejoin},
			},
			// The engineered stall lasts until the rejoin; finalizing any
			// later round commits the whole prefix (Fig. 2), so commits
			// resume in a burst shortly after.
			MinCommits: 5,
			MaxStall:   rejoin + 2*time.Second,
		},
		{
			Name: "withhold-final-t1-stall", N: n,
			Behaviors: map[types.PartyID]harness.Behavior{
				0: harness.WithholdFinal, 1: harness.WithholdFinal, 2: harness.WithholdFinal,
			},
			ExpectStall: true,
		},
		{
			Name: "clock-skew", N: n,
			Behaviors: map[types.PartyID]harness.Behavior{
				0: harness.ClockSkewed, 1: harness.ClockSkewed,
			},
			Tuning: map[types.PartyID]harness.BehaviorTuning{
				0: {Skew: 300 * time.Millisecond},
				1: {Skew: -300 * time.Millisecond},
			},
		},
		{
			Name: "rank-collusion", N: n,
			Behaviors: map[types.PartyID]harness.Behavior{
				0: harness.RankAbuser, 1: harness.RankAbuser,
			},
		},
		{
			Name: "kitchen-sink", N: n,
			Behaviors: map[types.PartyID]harness.Behavior{
				0: harness.Equivocator,
				1: harness.WithholdFinal,
				2: harness.ClockSkewed,
			},
		},
	}

	opts := harness.CampaignOptions{
		Seeds:      seeds,
		SimTime:    simTime,
		MinCommits: 10,
		MaxStall:   5 * time.Second,
	}
	t := &Table{
		ID: "E15",
		Title: fmt.Sprintf("adversary campaign: safety/liveness matrix (n=%d, t=2, quorum=5, %d profiles × %d seeds, %v each)",
			n, len(profiles), len(seeds), simTime),
		Columns: []string{"profile", "seeds", "verdict", "min commits", "expectation"},
		Notes: []string{
			"withhold-final-t withholds exactly t finalization shares: quorum n−t survives, liveness must hold",
			"withhold-final-t1-stall withholds t+1 forever: finalization MUST stall (commits = 0) while notarization keeps the chain growing",
			"failing cells write a replayable trace (make chaos / DESIGN.md §16); paths appear below",
		},
	}

	rep, err := harness.RunCampaign(profiles, opts)
	if err != nil {
		t.Notes = append(t.Notes, "campaign error: "+err.Error())
		return t
	}

	for _, p := range profiles {
		minCommits := -1
		verdict := "pass"
		for _, r := range rep.Runs {
			if r.Profile != p.Name {
				continue
			}
			if minCommits < 0 || r.Commits < minCommits {
				minCommits = r.Commits
			}
			if r.Failure != "" {
				verdict = "FAIL"
				t.Notes = append(t.Notes, fmt.Sprintf("%s seed %d: %s (trace: %s)", r.Profile, r.Seed, r.Failure, r.TracePath))
			}
		}
		expect := "liveness + safety"
		if p.ExpectStall {
			expect = "stall (0 commits) + safety"
		}
		t.AddRow(p.Name, fmt.Sprintf("%d", len(seeds)), verdict, fmt.Sprintf("%d", minCommits), expect)
	}
	t.SetMetric("profiles", float64(len(profiles)))
	t.SetMetric("cells", float64(len(rep.Runs)))
	t.SetMetric("failures", float64(rep.Failures))
	return t
}
