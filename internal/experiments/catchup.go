package experiments

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"icc/internal/backfill"
	"icc/internal/beacon"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/keys"
	"icc/internal/pool"
	rt "icc/internal/runtime"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
)

// Catchup measures laggard rejoin end to end (E10, superseding E9's
// responder-side measurement): a live cluster with the real threshold
// beacon runs ahead, then a laggard joins from round 1 with an empty
// pool. Responders must serve it the gap — blocks, notarizations, and
// one beacon share per round — while the laggard must digest it
// against the live firehose. Three configurations per gap:
//
//   - inline, no cache: the pre-refactor responder path. Every
//     catch-up share is threshold-signed synchronously inside
//     handleStatus, on the responder's engine loop (~4.5ms each; a
//     128-round batch stalls the loop for over half a second).
//   - async, flat pipeline: async backfill with warm share caches
//     (responder side fixed), but the verify pipelines run Flat — one
//     submission queue, per-artifact aggregate verification, no
//     shedding. The pre-lanes laggard: at gap 500 its ingest livelocks
//     (catch-up bundles queue behind live traffic it cannot use) and
//     convergence DNFs.
//   - async, lanes + chain (production defaults): catch-up bundles take
//     a strict-priority resync lane, one verified head admits its
//     hash-linked prefix, and live rounds beyond the behind-window are
//     shed at admission.
//
// Reported per configuration: the slow responder's commit rate in the
// measurement window before the join (steady) and after it (catch-up),
// and how long the laggard takes to converge past the frontier it saw
// at join time. Wall-clock measurement, same caveats as E8; gap 500 is
// the headline row.
func Catchup(scale Scale) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "laggard rejoin: responder commit rate and laggard convergence, by admission path",
		Columns: []string{"gap", "configuration", "steady", "catch-up", "ratio", "converge"},
		Notes: []string{
			"real threshold beacon (a catch-up share costs one BLS-free threshold sign, ~ms); 4 parties, in-process transport",
			"steady/catch-up: responder commits/s in the window before/after the laggard joins; ratio = steady/catch-up",
			"converge: laggard commits past the join-time frontier; DNF = not within 120 s",
		},
	}
	gaps := []int{50, 200, 500}
	modes := []catchupMode{
		{name: "inline, no cache", shareCache: -1, async: false, flat: true},
		{name: "async, flat pipeline", shareCache: 0, async: true, flat: true},
		{name: "async, lanes + chain", shareCache: 0, async: true, flat: false},
	}
	for _, gap := range gaps {
		g := scale.scaleInt(gap)
		for _, m := range modes {
			r := catchupRun(g, m)
			converge := "DNF"
			if !r.dnf {
				converge = fmt.Sprintf("%.2fs", r.converge.Seconds())
			}
			ratio := "—"
			if r.during > 0 {
				ratio = fmt.Sprintf("%.1fx", r.steady/r.during)
			}
			t.AddRow(fmt.Sprintf("%d", g), m.name,
				fmt.Sprintf("%.1f blk/s", r.steady),
				fmt.Sprintf("%.1f blk/s", r.during),
				ratio, converge)
		}
	}
	return t
}

type catchupMode struct {
	name       string
	shareCache int // core.Config.ShareCacheSize semantics
	async      bool
	flat       bool // verify.Options.Flat: single-queue pre-lane pipeline
}

type catchupResult struct {
	steady   float64 // responder commits/s before the join
	during   float64 // responder commits/s after the join
	converge time.Duration
	dnf      bool
}

// catchupRun boots n−1 responders, lets them run `gap` rounds ahead,
// then starts the last party cold and measures the rejoin.
func catchupRun(gap int, mode catchupMode) catchupResult {
	const (
		n       = 4
		laggard = 3
	)
	window := 3 * time.Second
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	hub := transport.NewInproc(n)
	clk := clock.NewWall()

	var mu sync.Mutex
	commitAt := make([][]time.Time, n)
	maxRound := make([]types.Round, n)

	runners := make([]*rt.Runner, n)
	for i := 0; i < n; i++ {
		i := i
		pid := types.PartyID(i)
		bcn := beacon.New(pub.Beacon, privs[i].Beacon, pid, pub.GenesisSeed)
		if mode.shareCache != 0 {
			bcn.SetShareCacheSize(mode.shareCache)
		}
		ep := hub.Endpoint(pid)
		var bfw *backfill.Worker
		var provider core.CatchupProvider
		if mode.async {
			bfw = backfill.New(bcn, ep, backfill.Options{})
			provider = bfw
		}
		eng := core.NewEngine(core.Config{
			Self:       pid,
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     bcn,
			Catchup: provider,
			// Well above the cluster's per-round crypto cost so steady
			// state has CPU headroom: the responders form an exact 3-of-3
			// finalization quorum, and if the tempo saturates the machine
			// the laggard's crypto-heavy replay starves their delay
			// windows and every mode collapses alike. With headroom the
			// measurement isolates what the refactor changes — whether the
			// serve burst blocks the engine loop — instead of raw CPU
			// contention.
			DeltaBound: 25 * time.Millisecond,
			Pool:       pool.Options{Policy: pool.VerifyPreVerified},
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					mu.Lock()
					commitAt[i] = append(commitAt[i], time.Now())
					if b.Round > maxRound[i] {
						maxRound[i] = b.Round
					}
					mu.Unlock()
				},
			},
		})
		r := rt.NewRunner(eng, ep, clk, n)
		r.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{Flat: mode.flat}))
		r.SetBackfillWorker(bfw)
		runners[i] = r
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
		hub.Close()
	}()

	// Phase 1: responders build the gap.
	for i := 0; i < n; i++ {
		if i != laggard {
			runners[i].Start()
		}
	}
	frontier := func(i int) types.Round {
		mu.Lock()
		defer mu.Unlock()
		return maxRound[i]
	}
	buildDeadline := time.Now().Add(3 * time.Minute)
	for frontier(0) < types.Round(gap) {
		if time.Now().After(buildDeadline) {
			return catchupResult{dnf: true}
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: the laggard joins cold — drop whatever its inbox buffered
	// while it was "down", as a restarted process would have.
	lagInbox := hub.Endpoint(types.PartyID(laggard)).Inbox()
drain:
	for {
		select {
		case <-lagInbox:
		default:
			break drain
		}
	}
	joinAt := time.Now()
	joinRound := frontier(0)
	runners[laggard].Start()

	// The acceptance budget: with the resync lane and chain-aware
	// admission, even gap 500 on one core converges well inside 120 s;
	// the flat configurations get the same deadline so their DNFs are
	// comparable.
	converge, dnf := time.Duration(0), true
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if frontier(laggard) >= joinRound {
			converge, dnf = time.Since(joinAt), false
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let the post-join measurement window complete.
	if rem := window - time.Since(joinAt); rem > 0 {
		time.Sleep(rem)
	}
	mu.Lock()
	defer mu.Unlock()
	var before, during int
	for _, at := range commitAt[0] {
		switch {
		case at.After(joinAt.Add(-window)) && at.Before(joinAt):
			before++
		case !at.Before(joinAt) && at.Before(joinAt.Add(window)):
			during++
		}
	}
	return catchupResult{
		steady:   float64(before) / window.Seconds(),
		during:   float64(during) / window.Seconds(),
		converge: converge,
		dnf:      dnf,
	}
}
