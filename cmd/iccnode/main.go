// Command iccnode runs one ICC consensus party over TCP. Point n
// processes (one per party) at the same key directory (produced by
// cmd/icckeygen) and peer list, and they form a Byzantine fault-tolerant
// replicated state machine: each node proposes synthetic load (or none),
// and prints every block it commits.
//
// Example 4-node cluster on localhost:
//
//	icckeygen -n 4 -dir /tmp/keys
//	for i in 0 1 2 3; do
//	  iccnode -keys /tmp/keys -self $i \
//	    -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 &
//	done
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"icc/internal/backfill"
	"icc/internal/beacon"
	"icc/internal/checkpoint"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/keys"
	"icc/internal/gateway"
	"icc/internal/metrics"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/runtime"
	"icc/internal/statemachine"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
	"icc/internal/wal"
)

func main() {
	var (
		keyDir     = flag.String("keys", "icc-keys", "key directory from icckeygen")
		certScheme = flag.String("cert-scheme", "", "expected certificate scheme of the key material (multisig or bls); empty accepts whatever the key files declare")
		self       = flag.Int("self", -1, "this node's party index")
		peers      = flag.String("peers", "", "comma-separated host:port list, one per party, in index order")
		bound      = flag.Duration("bound", 200*time.Millisecond, "partial-synchrony bound Δbnd")
		epsilon    = flag.Duration("epsilon", 500*time.Millisecond, "ε governor (block-rate limiter)")
		load       = flag.Int("load", 10, "synthetic commands submitted per second (0 = none)")
		quiet      = flag.Bool("quiet", false, "suppress per-block output")

		// Verification pipeline: inbound signatures are checked on a
		// worker pool so the sequential engine handles pre-verified input.
		verifyWorkers = flag.Int("verify-workers", 0, "verification worker pool size (0 = GOMAXPROCS, negative = verify inline on the engine loop)")
		verifyCache   = flag.Int("verify-cache", 0, "verified-digest cache capacity (0 = default 8192, negative = disabled)")
		resyncWindow  = flag.Int("resync-window", 0, "behind-shedding window in rounds: while lagging the peer frontier by more, live artifacts beyond it are shed at admission (0 = default 64, negative = never shed)")

		// Catch-up backfill: beacon shares for lagging peers that miss the
		// own-share cache are signed off the engine loop.
		backfillWorkers = flag.Int("backfill-workers", 0, "catch-up share signing worker count (0 = 1 worker, negative = sign inline on the engine loop)")
		shareCache      = flag.Int("share-cache", 0, "beacon own-share cache capacity (0 = default 1024, negative = disabled)")

		// Durability: a crash-consistent write-ahead log plus periodic
		// signed checkpoints. Restarting with the same -wal-dir resumes
		// from the persisted rounds instead of round 1.
		walDir       = flag.String("wal-dir", "", "persist consensus state under this directory (empty = in-memory only)")
		ckptInterval = flag.Uint64("checkpoint-interval", 64, "certify a signed state checkpoint every N finalized rounds (0 = disabled; requires -wal-dir)")

		// Client ingress: bounds for the gateway backlog. The HTTP API
		// (/v1/submit /v1/read /v1/wait) shares the -metrics-addr server.
		gatewayBacklog = flag.Int("gateway-backlog", 0, "admitted-but-unfinalized command bound; submits are rejected (HTTP 429) at the bound (0 = default 4096, negative = unbounded)")

		// Observability: one HTTP server exposing Prometheus metrics, a
		// commit-recency health probe, the protocol event trace, and pprof.
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /healthz, /trace, /debug/pprof and the /v1 client API on this address (empty = disabled)")
		stallAfter  = flag.Duration("stall-after", 30*time.Second, "report unhealthy when no block committed for this long")
		traceCap    = flag.Int("trace-cap", obs.DefaultTraceCap, "protocol event ring capacity (/trace)")

		// Chaos flags: wrap the transport in a fault-injection layer, for
		// exercising a live cluster's robustness from the command line.
		chaosDrop  = flag.Float64("chaos-drop", 0, "probability of dropping an outbound message")
		chaosDup   = flag.Float64("chaos-dup", 0, "probability of duplicating an outbound message")
		chaosDelay = flag.Float64("chaos-delay", 0, "probability of delaying an outbound message")
		chaosMax   = flag.Duration("chaos-max-delay", 50*time.Millisecond, "upper bound for injected delays")
		chaosUntil = flag.Duration("chaos-until", 0, "confine chaos to the first duration of the run (0 = forever)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the deterministic fault schedule")
	)
	flag.Parse()
	cfg := nodeConfig{
		keyDir:        *keyDir,
		certScheme:    *certScheme,
		self:          *self,
		peers:         *peers,
		bound:         *bound,
		epsilon:       *epsilon,
		load:          *load,
		quiet:         *quiet,
		gwBacklog:     *gatewayBacklog,
		metricsAddr:   *metricsAddr,
		stallAfter:    *stallAfter,
		traceCap:      *traceCap,
		verifyWorkers: *verifyWorkers,
		verifyCache:   *verifyCache,
		resyncWindow:  *resyncWindow,
		bfillWorkers:  *backfillWorkers,
		shareCache:    *shareCache,
		walDir:        *walDir,
		ckptInterval:  *ckptInterval,
		plan: transport.FaultPlan{
			Seed:        *chaosSeed,
			DropRate:    *chaosDrop,
			DupRate:     *chaosDup,
			DelayRate:   *chaosDelay,
			MaxDelay:    *chaosMax,
			FaultsUntil: *chaosUntil,
		},
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "iccnode: %v\n", err)
		os.Exit(1)
	}
}

// nodeConfig carries the parsed command line.
type nodeConfig struct {
	keyDir        string
	certScheme    string
	self          int
	peers         string
	bound         time.Duration
	epsilon       time.Duration
	load          int
	quiet         bool
	gwBacklog     int
	metricsAddr   string
	stallAfter    time.Duration
	traceCap      int
	verifyWorkers int
	verifyCache   int
	resyncWindow  int
	bfillWorkers  int
	shareCache    int
	walDir        string
	ckptInterval  uint64
	plan          transport.FaultPlan
}

// chaosEnabled reports whether the plan injects any fault at all.
func chaosEnabled(p transport.FaultPlan) bool {
	return p.DropRate > 0 || p.DupRate > 0 || p.DelayRate > 0 || len(p.Partitions) > 0
}

func run(cfg nodeConfig) error {
	pub := &keys.Public{}
	if err := readJSON(filepath.Join(cfg.keyDir, "public.json"), pub); err != nil {
		return err
	}
	self := cfg.self
	if self < 0 || self >= pub.N {
		return fmt.Errorf("-self %d out of range for %d-party key material", self, pub.N)
	}
	priv := &keys.Private{}
	if err := readJSON(filepath.Join(cfg.keyDir, fmt.Sprintf("party%d.json", self)), priv); err != nil {
		return err
	}
	if cfg.certScheme != "" {
		want, err := aggsig.ParseSchemeID(cfg.certScheme)
		if err != nil {
			return err
		}
		if got := pub.CertScheme(); got != want {
			return fmt.Errorf("-cert-scheme %s, but key material in %s was dealt for %s", want, cfg.keyDir, got)
		}
	}
	addrs := strings.Split(cfg.peers, ",")
	if len(addrs) != pub.N {
		return fmt.Errorf("-peers lists %d addresses, key material has %d parties", len(addrs), pub.N)
	}
	addrMap := make(map[types.PartyID]string, pub.N)
	for i, a := range addrs {
		addrMap[types.PartyID(i)] = strings.TrimSpace(a)
	}

	// One registry + tracer for the whole node: engine phases, event
	// loop, and transport all land in the same exposition.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(cfg.traceCap)
	ob := obs.NewObserver(obs.ObserverConfig{Registry: reg, Tracer: tracer, Party: self})
	stats := metrics.NewTransportStatsOn(reg, tracer)
	tcp, err := transport.NewTCPWithOptions(types.PartyID(self), addrMap, transport.TCPOptions{Stats: stats})
	if err != nil {
		return err
	}
	var ep transport.Endpoint = tcp
	var faulty *transport.Faulty
	plan := cfg.plan
	if chaosEnabled(plan) {
		faulty = transport.NewFaulty(tcp, types.PartyID(self), plan)
		ep = faulty
		fmt.Printf("chaos enabled: drop=%.2f dup=%.2f delay=%.2f (max %v, until %v, seed %d)\n",
			plan.DropRate, plan.DupRate, plan.DelayRate, plan.MaxDelay, plan.FaultsUntil, plan.Seed)
	}
	defer ep.Close()

	// Print a transport-health line on the way out, so operators can see
	// queue evictions, redials, write failures, and inbox overflows.
	defer func() {
		fmt.Printf("transport health: %s\n", stats.Detail())
		if faulty != nil {
			fs := faulty.Stats()
			fmt.Printf("chaos injected: dropped=%d duplicated=%d delayed=%d cut=%d\n",
				fs.Dropped, fs.Duplicated, fs.Delayed, fs.Cut)
		}
	}()

	queue := statemachine.NewQueue()
	kv := statemachine.NewKV()
	// The gateway is this node's client surface: typed-error admission
	// over the queue, finality receipts, token-gated local reads. The
	// /v1 HTTP API fronts it on the metrics listener.
	gw := gateway.New(queue, kv, gateway.Options{Party: self, MaxBacklog: cfg.gwBacklog, Registry: reg})
	committed := 0
	// With the pipeline active (the default) the engine's pool admits
	// pre-verified input; disabling it restores inline verification.
	policy := pool.VerifyPreVerified
	if cfg.verifyWorkers < 0 {
		policy = pool.VerifyFull
	}
	// Explicit beacon so the engine and the backfill worker share one
	// concurrency-safe instance. The worker sends through ep — the chaos
	// wrapper when enabled — so injected faults hit backfill traffic too.
	bcn := beacon.New(pub.Beacon, priv.Beacon, types.PartyID(self), pub.GenesisSeed)
	if cfg.shareCache != 0 {
		bcn.SetShareCacheSize(cfg.shareCache)
	}
	// Durability: WAL plus signed checkpoints under -wal-dir. Opened
	// before the engine so crash recovery replays into a fresh engine,
	// and closed after the runner stops so the final flush captures
	// everything the loop appended (defer ordering below).
	var (
		nodeWAL   *wal.Log
		ckptStore *checkpoint.Store
	)
	if cfg.walDir != "" {
		nodeWAL, err = wal.Open(filepath.Join(cfg.walDir, "wal"), wal.Options{Registry: reg})
		if err != nil {
			return fmt.Errorf("opening WAL: %w", err)
		}
		defer func() { _ = nodeWAL.Close() }()
		ckptStore, err = checkpoint.OpenStore(filepath.Join(cfg.walDir, "checkpoints"), checkpoint.StoreOptions{Registry: reg})
		if err != nil {
			return fmt.Errorf("opening checkpoint store: %w", err)
		}
		defer ckptStore.Close()
	} else if cfg.ckptInterval > 0 {
		// Checkpoints certify durable state; without a directory there is
		// nothing durable to certify. Run in-memory, as before this flag.
		cfg.ckptInterval = 0
	}
	var bfw *backfill.Worker
	var provider core.CatchupProvider
	if cfg.bfillWorkers >= 0 {
		bfw = backfill.New(bcn, ep, backfill.Options{Workers: cfg.bfillWorkers, Registry: reg, Checkpoints: ckptStore})
		provider = bfw
	}
	eng := core.NewEngine(core.Config{
		Self:               types.PartyID(self),
		Keys:               pub,
		Priv:               *priv,
		Beacon:             bcn,
		Catchup:            provider,
		DeltaBound:         cfg.bound,
		Epsilon:            cfg.epsilon,
		Payload:            queue,
		PruneDepth:         core.DefaultPruneDepth,
		WAL:                nodeWAL,
		Checkpoints:        ckptStore,
		CheckpointInterval: types.Round(cfg.ckptInterval),
		StateSnapshot:      kv.Snapshot,
		StateRestore:       kv.Restore,
		Pool:               pool.Options{Policy: policy},
		Hooks: core.ObservedHooks(ob, core.Hooks{
			OnCommit: func(b *types.Block, now time.Duration) {
				_ = kv.Apply(b.Payload)
				queue.MarkCommitted(b.Payload)
				gw.ObserveCommit(uint64(b.Round), b.Payload)
				committed++
				if !cfg.quiet {
					fmt.Printf("committed round %d: %d payload bytes (proposer P%d, total %d blocks, state %s)\n",
						b.Round, len(b.Payload), b.Proposer, committed, kv.StateHash().Short())
				}
			},
		}),
	})
	if nodeWAL != nil {
		resumed, err := eng.Recover()
		if err != nil {
			return fmt.Errorf("crash recovery: %w", err)
		}
		if resumed > 1 && !cfg.quiet {
			fmt.Printf("recovered durable state: resuming at round %d\n", resumed)
		}
	}
	// Runs after runner.Stop (LIFO): if this node fell behind the prune
	// horizon with no checkpoint path, say so on the way out instead of
	// leaving a silently stalled process in the logs.
	defer func() {
		if err := eng.ResyncLost(); err != nil {
			fmt.Printf("warning: %v\n", err)
		}
	}()
	runner := runtime.NewRunner(eng, ep, clock.NewWall(), pub.N)
	runner.SetTransportStats(stats)
	runner.SetObserver(ob)
	runner.SetBackfillWorker(bfw)
	if cfg.verifyWorkers >= 0 {
		runner.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{
			Workers:      cfg.verifyWorkers,
			CacheSize:    cfg.verifyCache,
			BehindWindow: cfg.resyncWindow,
			Registry:     reg,
		}))
	}
	gw.Start()
	defer gw.Stop()
	runner.Start()
	defer runner.Stop()
	fmt.Printf("party %d of %d listening on %s (t=%d tolerated faults)\n", self, pub.N, tcp.Addr(), pub.T)

	if cfg.metricsAddr != "" {
		srv, err := obs.Serve(cfg.metricsAddr, obs.HandlerOptions{
			Registry: reg,
			Tracer:   tracer,
			Health:   ob.HealthFunc(cfg.stallAfter),
			Ingress:  gateway.NewHandler([]*gateway.Gateway{gw}, 0),
		})
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		defer srv.Close()
		fmt.Printf("observability on http://%s (/metrics /healthz /trace /debug/pprof), client API under /v1\n", srv.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if cfg.load > 0 {
		// Synthetic load goes through the gateway like any client:
		// admission-controlled, acknowledged only at finality (the ack
		// latency lands in icc_gateway_commit_latency_seconds). Ticks
		// rejected under backpressure are dropped, keeping the loop open.
		ticker := time.NewTicker(time.Second / time.Duration(cfg.load))
		defer ticker.Stop()
		ctx := context.Background()
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return nil
			case <-ticker.C:
				seq++
				_, err := gw.Submit(ctx, statemachine.Command{
					Client: uint64(self),
					Seq:    seq,
					Op:     statemachine.OpSet,
					Key:    fmt.Sprintf("node%d/key%d", self, seq%100),
					Value:  []byte(time.Now().Format(time.RFC3339Nano)),
				})
				if err != nil && !cfg.quiet && !errors.Is(err, gateway.ErrBacklogFull) {
					fmt.Printf("load submit: %v\n", err)
				}
			}
		}
	}
	<-stop
	return nil
}

func readJSON(path string, v interface{}) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	return nil
}
