package runtime

// Rejoin convergence under the async catch-up service: a party starts
// hundreds of rounds behind a live cluster, on a lossy link, and must
// converge — while the responders' commit cadence stays within a
// bounded factor of steady state. Before the backfill refactor the
// responders signed one beacon share per backfilled round inline on
// their engine loops; the responder cache is deliberately tiny here so
// nearly every catch-up share takes the asynchronous worker path, and
// the whole stack (engine loop, backfill worker, transport) runs
// concurrently under -race.

import (
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"icc/internal/backfill"
	"icc/internal/beacon"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
)

func TestRejoinConvergesWithoutCollapsingResponders(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-cluster test")
	}
	const (
		n             = 4
		laggard       = 3
		gap           = 200 // rounds the cluster is ahead before the laggard starts
		bound         = 20 * time.Millisecond
		cadenceWindow = 3 * time.Second
		cadenceFactor = 5 // responders may slow at most this much during catch-up
	)
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	hub := transport.NewInproc(n)
	reg := obs.NewRegistry()
	clk := clock.NewWall()

	var mu sync.Mutex
	chains := make([][]hash.Digest, n)
	commitTimes := make([][]time.Time, n) // wall-clock commit instants
	maxRound := make([]types.Round, n)

	runners := make([]*Runner, n)
	endpoints := make([]transport.Endpoint, n)
	build := func(i int) *Runner {
		pid := types.PartyID(i)
		bcn := beacon.NewSimulated(n, pid, pub.GenesisSeed)
		if i != laggard {
			// A tiny cache forces nearly every catch-up share onto the
			// async worker instead of being answered inline.
			bcn.SetShareCacheSize(16)
		}
		ep := hub.Endpoint(pid)
		var sender backfill.Sender = ep
		var wrapped transport.Endpoint = ep
		if i == laggard {
			// The rejoining party's link is lossy: its Status messages
			// and share traffic are dropped probabilistically, so
			// convergence must survive retries.
			wrapped = transport.NewFaulty(ep, pid, transport.FaultPlan{
				Seed:     99,
				DropRate: 0.15,
			})
			sender = wrapped
		}
		worker := backfill.New(bcn, sender, backfill.Options{Registry: reg})
		eng := core.NewEngine(core.Config{
			Self:       pid,
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     bcn,
			Catchup:    worker,
			DeltaBound: bound,
			// Inline (VerifyFull) signature checking on the engine loop
			// cannot replay a 200-round batch while live traffic floods
			// in — under -race the crypto alone takes minutes. Run the
			// production configuration: a verify pipeline per party, with
			// the pool admitting pre-verified input.
			Pool: pool.Options{Policy: pool.VerifyPreVerified},
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					mu.Lock()
					chains[i] = append(chains[i], b.Hash())
					commitTimes[i] = append(commitTimes[i], time.Now())
					if b.Round > maxRound[i] {
						maxRound[i] = b.Round
					}
					mu.Unlock()
				},
			},
		})
		endpoints[i] = wrapped
		r := NewRunner(eng, wrapped, clk, n)
		r.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{
			Workers:  2,
			Registry: reg,
		}))
		r.SetBackfillWorker(worker)
		return r
	}
	for i := 0; i < n; i++ {
		runners[i] = build(i)
	}
	t.Cleanup(func() {
		for _, r := range runners {
			r.Stop()
		}
		hub.Close()
	})

	// Phase 1: three responders run alone (exactly the n−t quorum) until
	// they are `gap` rounds ahead.
	for i := 0; i < n; i++ {
		if i != laggard {
			runners[i].Start()
		}
	}
	waitFor(t, 120*time.Second, "responders did not build the gap", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return maxRound[0] >= gap
	})

	// Phase 2: the laggard starts from round 1 on its lossy link. Its
	// inbox buffered part of the phase-1 traffic; throw that away first —
	// a restarted process has lost every in-flight message, and keeping
	// the buffer would let the laggard replay history without ever
	// touching the resync layer.
	lagInbox := endpoints[laggard].Inbox()
drain:
	for {
		select {
		case _, ok := <-lagInbox:
			if !ok {
				break drain
			}
		default:
			break drain
		}
	}
	mu.Lock()
	joinAt := time.Now()
	joinRound := maxRound[0]
	mu.Unlock()
	runners[laggard].Start()

	// The laggard must converge past the frontier the cluster had when
	// it joined.
	last := time.Now()
	waitFor(t, 120*time.Second, "laggard did not converge", func() bool {
		mu.Lock()
		defer mu.Unlock()
		if time.Since(last) > 5*time.Second {
			last = time.Now()
			snap := reg.Snapshot()
			t.Logf("laggard commit %d / %d (responder %d) shares=%v req=%v drop[closed,inflight,full]=%v,%v,%v",
				maxRound[laggard], joinRound, maxRound[0],
				snap["icc_resync_backfill_shares_total"],
				snap["icc_resync_backfill_requests_total"],
				snap[`icc_resync_backfill_dropped_total{reason="closed"}`],
				snap[`icc_resync_backfill_dropped_total{reason="inflight"}`],
				snap[`icc_resync_backfill_dropped_total{reason="full"}`])
		}
		return maxRound[laggard] >= joinRound
	})

	// Responder cadence must not collapse during catch-up: commits in
	// the window after the join within cadenceFactor of the window
	// before. (On the pre-refactor seed a 200-round gap stalled every
	// responder for the whole signing burst.)
	time.Sleep(cadenceWindow) // let the post-join window complete
	mu.Lock()
	var before, during int
	for _, at := range commitTimes[0] {
		switch {
		case at.After(joinAt.Add(-cadenceWindow)) && at.Before(joinAt):
			before++
		case !at.Before(joinAt) && at.Before(joinAt.Add(cadenceWindow)):
			during++
		}
	}
	mu.Unlock()
	if before == 0 {
		t.Fatal("no steady-state commits before the join — test setup broken")
	}
	if during < before/cadenceFactor {
		t.Fatalf("responder cadence collapsed during catch-up: %d commits in %v before join, %d after (bound: ≥ 1/%d)",
			before, cadenceWindow, during, cadenceFactor)
	}

	// Safety: all chains prefix-consistent, laggard included.
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := chains[i], chains[j]
			k := len(a)
			if len(b) < k {
				k = len(b)
			}
			for x := 0; x < k; x++ {
				if a[x] != b[x] {
					t.Fatalf("SAFETY VIOLATION: parties %d and %d disagree at height %d", i, j, x)
				}
			}
		}
	}

	// The async path must actually have run: with 16-entry caches and a
	// 200-round gap, the workers — not the engine loops — signed the
	// catch-up shares.
	snap := reg.Snapshot()
	if snap["icc_resync_backfill_shares_total"] == 0 {
		t.Fatalf("backfill workers signed nothing — the async path was not exercised (snapshot: requests=%v dropped=%v)",
			snap["icc_resync_backfill_requests_total"], snap["icc_resync_backfill_dropped_total"])
	}
}

// TestRejoinLargeGapConverges is the laggard-ingest livelock
// regression: a party joining 500 rounds behind a live cluster must
// converge within the experiment budget (E10: 120 s on one core).
// Before the two-lane pipeline, catch-up batches queued behind the
// live firehose and the laggard's backlog only grew — every
// configuration DNF'd at five minutes. The test also checks the fix is
// doing what it claims: catch-up content must travel the resync lane's
// chain-aware path (icc_verify_chain_admitted_total), and live
// artifacts the laggard cannot use yet must be shed
// (icc_verify_rejects_total{reason="behind"}).
func TestRejoinLargeGapConverges(t *testing.T) {
	gap := types.Round(500)
	if testing.Short() {
		gap = 60 // bounded, not skipped: the lanes still get exercised
	}
	const (
		n       = 4
		laggard = 3
		bound   = 10 * time.Millisecond
	)
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	hub := transport.NewInproc(n)
	reg := obs.NewRegistry()
	clk := clock.NewWall()

	var mu sync.Mutex
	chains := make([][]hash.Digest, n)
	maxRound := make([]types.Round, n)

	runners := make([]*Runner, n)
	for i := 0; i < n; i++ {
		i := i
		pid := types.PartyID(i)
		bcn := beacon.NewSimulated(n, pid, pub.GenesisSeed)
		ep := hub.Endpoint(pid)
		worker := backfill.New(bcn, ep, backfill.Options{Registry: reg})
		eng := core.NewEngine(core.Config{
			Self:       pid,
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     bcn,
			Catchup:    worker,
			DeltaBound: bound,
			Pool:       pool.Options{Policy: pool.VerifyPreVerified},
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					mu.Lock()
					chains[i] = append(chains[i], b.Hash())
					if b.Round > maxRound[i] {
						maxRound[i] = b.Round
					}
					mu.Unlock()
				},
			},
		})
		r := NewRunner(eng, ep, clk, n)
		r.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{
			Workers:  2,
			Registry: reg,
		}))
		r.SetBackfillWorker(worker)
		runners[i] = r
	}
	t.Cleanup(func() {
		for _, r := range runners {
			r.Stop()
		}
		hub.Close()
	})

	// Phase 1: the responders build the gap alone.
	for i := 0; i < n; i++ {
		if i != laggard {
			runners[i].Start()
		}
	}
	waitFor(t, 240*time.Second, "responders did not build the gap", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return maxRound[0] >= gap
	})

	// Phase 2: the laggard joins cold — its inbox buffered phase-1
	// traffic a restarted process would not have.
	lagInbox := hub.Endpoint(types.PartyID(laggard)).Inbox()
drain2:
	for {
		select {
		case _, ok := <-lagInbox:
			if !ok {
				break drain2
			}
		default:
			break drain2
		}
	}
	mu.Lock()
	joinRound := maxRound[0]
	mu.Unlock()
	runners[laggard].Start()

	// The E10 budget: convergence past the join-time frontier within
	// 120 s (the seed DNF'd at 5 min on every configuration).
	waitFor(t, 120*time.Second, "laggard did not converge past the join frontier", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return maxRound[laggard] >= joinRound
	})

	// The mechanism, not just the outcome: catch-up content was
	// admitted by parent-digest linkage instead of per-round multisig
	// verification.
	snap := reg.Snapshot()
	if snap["icc_verify_chain_admitted_total"] == 0 {
		t.Fatal("no chain-admitted artifacts — catch-up bundles did not take the resync fast path")
	}

	// Safety: every pair of chains prefix-consistent.
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := chains[i], chains[j]
			k := len(a)
			if len(b) < k {
				k = len(b)
			}
			for x := 0; x < k; x++ {
				if a[x] != b[x] {
					t.Fatalf("SAFETY VIOLATION: parties %d and %d disagree at height %d", i, j, x)
				}
			}
		}
	}
}

// waitFor polls cond until it holds or the timeout elapses.
func waitFor(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(msg)
}
