package bls

import (
	"math/big"
	"sync"
)

// The pairing below is the reduced Tate pairing
//
//	e(P, Q) = f_{r,P}(ψ(Q))^((p¹²−1)/r)
//
// with P ∈ G1 (order-r points over Fp), Q ∈ G2 mapped into E(Fp12) by
// the untwist ψ(x, y) = (x/w², y/w³), and f_{r,P} computed by the
// textbook Miller loop carrying numerator and denominator separately
// (no denominator-elimination tricks, so correctness follows directly
// from the divisor bookkeeping). The Tate pairing needs no trace/
// eigenspace conditions — only ord(P) = r — which keeps the
// implementation honest and easy to audit; the cost is a 255-iteration
// loop and a generic final exponentiation.

// finalExp is (p¹² − 1)/r, computed once.
var (
	finalExpOnce sync.Once
	finalExpVal  *big.Int
)

func finalExp() *big.Int {
	finalExpOnce.Do(func() {
		p12 := new(big.Int).Exp(P, big.NewInt(12), nil)
		p12.Sub(p12, bigOne)
		finalExpVal = p12.Div(p12, R)
	})
	return finalExpVal
}

// untwist maps a G2 point into E(Fp12).
func untwist(q *G2Point) (x, y fp12) {
	xq := fp12FromFp2(q.x)
	yq := fp12FromFp2(q.y)
	w2inv := wPow(2).inv()
	w3inv := wPow(3).inv()
	return xq.mul(w2inv), yq.mul(w3inv)
}

// Pair computes the reduced Tate pairing e(P, Q) ∈ Fp12. The identity
// in either argument yields the unit.
func Pair(p *G1Point, q *G2Point) fp12 {
	if p.IsInfinity() || q.IsInfinity() {
		return fp12One()
	}
	xq, yq := untwist(q)

	// Miller loop over the bits of r with P (and the running T) in
	// plain Fp coordinates; lines evaluated at (xq, yq).
	fn := fp12One() // numerator accumulator
	fd := fp12One() // denominator accumulator
	tx, ty := cp(p.x), cp(p.y)
	tInf := false

	// evalLine computes y_Q − y_T − λ(x_Q − x_T) in Fp12.
	evalLine := func(lx, ly, lam *big.Int) fp12 {
		t := xq.sub(fp12FromFp(lx))
		t = t.mul(fp12FromFp(lam))
		return yq.sub(fp12FromFp(ly)).sub(t)
	}
	// evalVert computes x_Q − a.
	evalVert := func(a *big.Int) fp12 {
		return xq.sub(fp12FromFp(a))
	}

	for i := R.BitLen() - 2; i >= 0; i-- {
		// f ← f² · l_{T,T} / v_{2T}
		fn = fn.square()
		fd = fd.square()
		if !tInf {
			if ty.Sign() == 0 {
				// 2T = ∞: the tangent is the vertical at T.
				fn = fn.mul(evalVert(tx))
				tInf = true
			} else {
				lam := fpMul(fpMul(big.NewInt(3), fpMul(tx, tx)), fpInv(fpAdd(ty, ty)))
				l := evalLine(tx, ty, lam)
				x3 := fpSub(fpSub(fpMul(lam, lam), tx), tx)
				y3 := fpSub(fpMul(lam, fpSub(tx, x3)), ty)
				fn = fn.mul(l)
				fd = fd.mul(evalVert(x3))
				tx, ty = x3, y3
			}
		}
		if R.Bit(i) == 1 && !tInf {
			// f ← f · l_{T,P} / v_{T+P}
			if tx.Cmp(p.x) == 0 {
				if ty.Cmp(p.y) == 0 {
					// Doubling case cannot occur on an add step for
					// distinct multiples below r; defensive fallthrough.
					lam := fpMul(fpMul(big.NewInt(3), fpMul(tx, tx)), fpInv(fpAdd(ty, ty)))
					l := evalLine(tx, ty, lam)
					x3 := fpSub(fpSub(fpMul(lam, lam), tx), tx)
					y3 := fpSub(fpMul(lam, fpSub(tx, x3)), ty)
					fn = fn.mul(l)
					fd = fd.mul(evalVert(x3))
					tx, ty = x3, y3
				} else {
					// T + P = ∞: vertical line at T.
					fn = fn.mul(evalVert(tx))
					tInf = true
				}
			} else {
				lam := fpMul(fpSub(p.y, ty), fpInv(fpSub(p.x, tx)))
				l := evalLine(tx, ty, lam)
				x3 := fpSub(fpSub(fpMul(lam, lam), tx), p.x)
				y3 := fpSub(fpMul(lam, fpSub(tx, x3)), ty)
				fn = fn.mul(l)
				fd = fd.mul(evalVert(x3))
				tx, ty = x3, y3
			}
		}
	}
	f := fn.mul(fd.inv())
	return f.exp(finalExp())
}

// PairingCheck reports whether e(p1, q1) == e(p2, q2) — the core of BLS
// verification.
func PairingCheck(p1 *G1Point, q1 *G2Point, p2 *G1Point, q2 *G2Point) bool {
	return Pair(p1, q1).equal(Pair(p2, q2))
}
