package aggsig

import (
	"fmt"
	"io"

	"icc/internal/crypto"
	"icc/internal/crypto/bls"
	"icc/internal/crypto/hash"
)

// BLS instantiation of the certificate Scheme (paper §2.3 approach
// (iii)): a share is σ_i = sk_i·H(domain‖m) ∈ G1, and a certificate is
// the sum Σσ_i — one 96-byte point however many parties signed — plus
// the signer bitmap identifying which public keys participate.
//
// Verification is *lazy*: instead of pairing-checking each share, the
// verifier folds the signers' public keys into one aggregate key
// APK = Σ PK_i (pure G2 additions, ~17 µs each) and runs a single
// pairing check e(σ, G2) == e(H(m), APK). With this repository's
// from-scratch big.Int pairing a check costs ~1 s, so the live path
// leans on CombineVerified — combining pre-verified shares is pure G1
// addition (~9 µs per share) — and full pairing verification is
// reserved for admission policies that demand it (pool.VerifyFull) and
// for the verifying Combine, which falls back to per-share checks only
// when the lazy aggregate check fails.
//
// Safety is the standard aggregate-BLS argument restricted to one
// message: every share aggregated signs the *same* domain-tagged m, so
// rogue-key splitting across distinct messages does not arise, and the
// dealer (internal/crypto/keys) generates keys honestly, so rogue-key
// registration does not arise either. A certificate with h distinct
// signers therefore proves h parties signed m, which is exactly the
// (t, h, n) security game S_notary/S_final require. DESIGN.md §15.

// BLSSecretKey is one party's signing key for a BLS certificate
// instance.
type BLSSecretKey struct {
	Index int
	Key   *bls.SecretKey
}

// Sign implements Signer: the share is the encoded point sk·H(domain‖m).
func (k BLSSecretKey) Sign(domain hash.Domain, msg []byte) *Share {
	d := hash.Sum(domain, msg)
	return &Share{Signer: k.Index, Signature: k.Key.Sign(d[:]).Point().Encode()}
}

// BLSInfo is the verification material for one BLS certificate
// instance.
type BLSInfo struct {
	N int
	Q int // quorum: distinct signers a certificate must carry
	// Keys[i] is party i's share public key sk_i·G2.
	Keys []*bls.PublicKey
}

// BLSCertificate is a combined BLS quorum signature.
type BLSCertificate struct {
	Signers []int // sorted ascending, no duplicates
	Sig     *bls.G1Point
}

// DealBLS generates fresh independent BLS key pairs for an n-party
// instance with the given quorum.
func DealBLS(rng io.Reader, quorum, n int) (*BLSInfo, []BLSSecretKey, error) {
	info := &BLSInfo{N: n, Q: quorum, Keys: make([]*bls.PublicKey, n)}
	secrets := make([]BLSSecretKey, n)
	for i := 0; i < n; i++ {
		sk, pk, err := bls.GenerateKey(rng)
		if err != nil {
			return nil, nil, fmt.Errorf("aggsig: bls key %d: %w", i, err)
		}
		info.Keys[i] = pk
		secrets[i] = BLSSecretKey{Index: i, Key: sk}
	}
	return info, secrets, nil
}

// Scheme implements Certificate.
func (c *BLSCertificate) Scheme() SchemeID { return SchemeBLS }

// SignerIDs implements Certificate.
func (c *BLSCertificate) SignerIDs() []int { return c.Signers }

// Encode implements Certificate: scheme tag, u16 bitmap width (the
// instance's n at combine time), the signer bitmap, and the 96-byte
// aggregate point — constant-size modulo the ⌈n/8⌉-byte bitmap.
func (c *BLSCertificate) Encode() []byte {
	nbits := 0
	for _, s := range c.Signers {
		if s+1 > nbits {
			nbits = s + 1
		}
	}
	bitmap := make([]byte, (nbits+7)/8)
	for _, s := range c.Signers {
		bitmap[s/8] |= 1 << (s % 8)
	}
	out := make([]byte, 0, 3+len(bitmap)+bls.G1PointLen)
	out = append(out, byte(SchemeBLS), byte(nbits>>8), byte(nbits))
	out = append(out, bitmap...)
	return append(out, c.Sig.Encode()...)
}

// ID implements Scheme.
func (p *BLSInfo) ID() SchemeID { return SchemeBLS }

// Parties implements Scheme.
func (p *BLSInfo) Parties() int { return p.N }

// Quorum implements Scheme.
func (p *BLSInfo) Quorum() int { return p.Q }

// WithQuorum implements Scheme.
func (p *BLSInfo) WithQuorum(q int) Scheme { return &BLSInfo{N: p.N, Q: q, Keys: p.Keys} }

// VerifyShare implements Scheme with a full pairing check of the share
// point against the signer's registered key. This is the expensive path
// (~1 s with the big.Int pairing); trusted-share relay configurations
// and the pre-verified pool policies never take it.
func (p *BLSInfo) VerifyShare(domain hash.Domain, msg []byte, s *Share) error {
	if s == nil || s.Signer < 0 || s.Signer >= p.N {
		return fmt.Errorf("aggsig/bls: %w: signer out of range", crypto.ErrBadShare)
	}
	pt, err := bls.DecodeG1(s.Signature)
	if err != nil {
		return fmt.Errorf("aggsig/bls: %w: %v", crypto.ErrBadShare, err)
	}
	d := hash.Sum(domain, msg)
	if err := p.Keys[s.Signer].Verify(d[:], bls.SignatureFromPoint(pt)); err != nil {
		return fmt.Errorf("aggsig/bls: %w: %v", crypto.ErrBadShare, err)
	}
	return nil
}

// dedupe keeps the first in-range, non-duplicate, decodable share per
// signer, up to the quorum, returning parallel sorted signers/points.
func (p *BLSInfo) dedupe(shares []*Share) (signers []int, points []*bls.G1Point) {
	bySigner := make(map[int]*bls.G1Point, len(shares))
	for _, s := range shares {
		if s == nil || s.Signer < 0 || s.Signer >= p.N {
			continue
		}
		if _, dup := bySigner[s.Signer]; dup {
			continue
		}
		pt, err := bls.DecodeG1(s.Signature)
		if err != nil || pt.IsInfinity() {
			continue
		}
		bySigner[s.Signer] = pt
		if len(bySigner) == p.Q {
			break
		}
	}
	for i := 0; i < p.N; i++ {
		if pt, ok := bySigner[i]; ok {
			signers = append(signers, i)
			points = append(points, pt)
		}
	}
	return signers, points
}

func aggregate(signers []int, points []*bls.G1Point) *BLSCertificate {
	sum := bls.G1Infinity()
	for _, pt := range points {
		sum = sum.Add(pt)
	}
	return &BLSCertificate{Signers: signers, Sig: sum}
}

// CombineVerified implements Scheme: pure G1 addition over shares the
// caller already verified. Duplicates, out-of-range signers, and
// undecodable points are still dropped — structural, not cryptographic,
// checks.
func (p *BLSInfo) CombineVerified(shares []*Share) (Certificate, error) {
	signers, points := p.dedupe(shares)
	if len(signers) < p.Q {
		return nil, fmt.Errorf("aggsig/bls: not enough valid shares: %d of %d needed", len(signers), p.Q)
	}
	return aggregate(signers, points), nil
}

// Combine implements Scheme, verifying lazily: aggregate first, run one
// pairing check against the aggregate public key, and only on failure
// fall back to per-share pairing checks to evict the corrupt shares.
// The happy path — every share honest, the overwhelmingly common case —
// costs one pairing instead of |shares|.
func (p *BLSInfo) Combine(domain hash.Domain, msg []byte, shares []*Share) (Certificate, error) {
	signers, points := p.dedupe(shares)
	if len(signers) < p.Q {
		return nil, fmt.Errorf("aggsig/bls: not enough valid shares: %d of %d needed", len(signers), p.Q)
	}
	cert := aggregate(signers, points)
	if err := p.Verify(domain, msg, cert); err == nil {
		return cert, nil
	}
	// Some share is corrupt: isolate it the slow way. Re-scan the full
	// input — dedupe capped at the first Q structurally-valid shares, and
	// an honest replacement for the corrupt one may sit beyond that cap.
	good := make([]*Share, 0, len(shares))
	checked := make(map[int]bool, len(shares))
	for _, s := range shares {
		if s == nil || checked[s.Signer] {
			continue
		}
		checked[s.Signer] = true
		if p.VerifyShare(domain, msg, s) == nil {
			good = append(good, s)
		}
	}
	if len(good) < p.Q {
		return nil, fmt.Errorf("aggsig/bls: not enough valid shares: %d of %d needed", len(good), p.Q)
	}
	return p.CombineVerified(good)
}

// Verify implements Scheme: fold the signer bitmap's public keys into
// APK = Σ PK_i and run the single pairing check
// e(σ, G2) == e(H(domain‖m), APK).
func (p *BLSInfo) Verify(domain hash.Domain, msg []byte, c Certificate) error {
	cert, ok := c.(*BLSCertificate)
	if !ok || cert == nil {
		var got SchemeID
		if c != nil && !ok {
			got = c.Scheme()
		}
		return fmt.Errorf("aggsig/bls: %w: certificate scheme %s, verifier configured for %s",
			crypto.ErrBadAggregate, got, SchemeBLS)
	}
	if len(cert.Signers) < p.Q {
		return fmt.Errorf("aggsig/bls: %w: %d signers, need %d", crypto.ErrBadAggregate, len(cert.Signers), p.Q)
	}
	if cert.Sig == nil || cert.Sig.IsInfinity() || !cert.Sig.IsOnCurve() {
		return fmt.Errorf("aggsig/bls: %w: malformed aggregate point", crypto.ErrBadAggregate)
	}
	apk := bls.G2Infinity()
	prev := -1
	for _, signer := range cert.Signers {
		if signer <= prev || signer >= p.N {
			return fmt.Errorf("aggsig/bls: %w: signer list not strictly increasing in range", crypto.ErrBadAggregate)
		}
		prev = signer
		apk = apk.Add(p.Keys[signer].Point())
	}
	d := hash.Sum(domain, msg)
	if err := bls.PublicKeyFromPoint(apk).Verify(d[:], bls.SignatureFromPoint(cert.Sig)); err != nil {
		return fmt.Errorf("aggsig/bls: %w: aggregate pairing check failed", crypto.ErrBadAggregate)
	}
	return nil
}

// Decode implements Scheme, parsing the tagged frame Encode produces.
func (p *BLSInfo) Decode(b []byte) (Certificate, error) {
	body, err := CheckTag(b, SchemeBLS)
	if err != nil {
		return nil, fmt.Errorf("aggsig/bls: %w", err)
	}
	if len(body) < 2 {
		return nil, fmt.Errorf("aggsig/bls: %w: truncated", crypto.ErrBadAggregate)
	}
	nbits := int(body[0])<<8 | int(body[1])
	body = body[2:]
	bitmapLen := (nbits + 7) / 8
	if nbits > p.N || len(body) != bitmapLen+bls.G1PointLen {
		return nil, fmt.Errorf("aggsig/bls: %w: length %d for %d-party bitmap", crypto.ErrBadAggregate, len(body), nbits)
	}
	var signers []int
	for i := 0; i < nbits; i++ {
		if body[i/8]&(1<<(i%8)) != 0 {
			signers = append(signers, i)
		}
	}
	for i := nbits; i < bitmapLen*8; i++ {
		if body[i/8]&(1<<(i%8)) != 0 {
			return nil, fmt.Errorf("aggsig/bls: %w: bitmap padding bits set", crypto.ErrBadAggregate)
		}
	}
	pt, err := bls.DecodeG1(body[bitmapLen:])
	if err != nil {
		return nil, fmt.Errorf("aggsig/bls: %w: %v", crypto.ErrBadAggregate, err)
	}
	return &BLSCertificate{Signers: signers, Sig: pt}, nil
}

var (
	_ Scheme      = (*BLSInfo)(nil)
	_ Certificate = (*BLSCertificate)(nil)
	_ Signer      = BLSSecretKey{}
)
