package experiments

import (
	"fmt"
	"sync"
	"time"

	"icc/internal/baseline"
	"icc/internal/beacon"
	"icc/internal/engine"
	"icc/internal/harness"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

// WeakAdaptiveAdversary reproduces the §1.1 comparison of leader
// predictability (experiment E10): an adversary that needs κ rounds to
// complete a corruption silences upcoming leaders as soon as it learns
// who they are.
//
//   - ICC reveals the round-(k+1) beacon only while round k runs (the
//     pipelining of Fig. 1), so with κ = 1 the adversary compromises
//     every leader just in time — the protocol stays live through the
//     rank-1+ fallback at reduced speed — and with κ ≥ 2 ("weak"
//     adaptive, the paper's case) corruption always lands on a party
//     whose leadership round has already passed: no effect at all.
//   - HotStuff with fixed round-robin rotation publishes its entire
//     leader schedule in advance, so any κ lets the adversary mute every
//     view's leader and progress collapses to view timeouts ("O(n)
//     leader changes"; in fact with every leader muted, no QC ever
//     forms).
//
// The mute model: a corrupted party transmits nothing while its
// corruption is active (one round/view), then the mobile adversary moves
// on — always within a budget of t simultaneous corruptions (only one is
// ever needed here).
func WeakAdaptiveAdversary(scale Scale) *Table {
	const n = 7
	const delta = 10 * time.Millisecond
	const bound = 50 * time.Millisecond
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("weak adaptive adversary: throughput vs corruption lag κ (n=%d, δ=%v, Δbnd=%v)", n, delta, bound),
		Columns: []string{"protocol", "κ (rounds to corrupt)", "commits/s", "vs uncorrupted"},
		Notes: []string{
			"ICC leaders are drawn per round from the random beacon, revealed one round ahead (pipelining)",
			"HotStuff baseline uses fixed round-robin rotation: the whole leader schedule is public",
		},
	}
	window := time.Duration(scale.scaleInt(60)) * time.Second

	// Reference runs without an adversary.
	iccBase := iccAdaptiveRun(n, delta, bound, window, -1)
	hsBase := hotstuffMutedRun(n, delta, bound, window, false)
	t.AddRow("ICC0", "-", rate(iccBase, window), "100%")
	t.AddRow("HotStuff (fixed rotation)", "-", rate(hsBase, window), "100%")

	for _, kappa := range []int{1, 2, 3} {
		commits := iccAdaptiveRun(n, delta, bound, window, kappa)
		t.AddRow("ICC0", fmt.Sprintf("%d", kappa), rate(commits, window),
			fmt.Sprintf("%.0f%%", 100*float64(commits)/float64(iccBase)))
	}
	// HotStuff: the schedule is known infinitely far ahead, so the lag
	// is irrelevant — one run covers every κ.
	muted := hotstuffMutedRun(n, delta, bound, window, true)
	t.AddRow("HotStuff (fixed rotation)", "any", rate(muted, window),
		fmt.Sprintf("%.0f%%", 100*float64(muted)/float64(hsBase)))
	return t
}

func rate(commits int64, window time.Duration) string {
	return fmt.Sprintf("%.1f", float64(commits)/window.Seconds())
}

// muteFilter drops every output of the inner engine while muted()
// reports true.
type muteFilter struct {
	inner engine.Engine
	muted func(round types.Round) bool
}

func (m *muteFilter) ID() types.PartyID { return m.inner.ID() }
func (m *muteFilter) Init(now time.Duration) []engine.Output {
	round := m.inner.CurrentRound()
	return m.filter(round, m.inner.Init(now))
}
func (m *muteFilter) HandleMessage(from types.PartyID, msg types.Message, now time.Duration) []engine.Output {
	round := m.inner.CurrentRound()
	return m.filter(round, m.inner.HandleMessage(from, msg, now))
}
func (m *muteFilter) Tick(now time.Duration) []engine.Output {
	round := m.inner.CurrentRound()
	return m.filter(round, m.inner.Tick(now))
}
func (m *muteFilter) NextWake(now time.Duration) (time.Duration, bool) { return m.inner.NextWake(now) }
func (m *muteFilter) CurrentRound() types.Round                        { return m.inner.CurrentRound() }

// filter drops the outputs if the party was muted in the round/view the
// inner call STARTED in — the round during which the outputs were
// produced (the engine may advance rounds within one call).
func (m *muteFilter) filter(round types.Round, outs []engine.Output) []engine.Output {
	if m.muted(round) {
		return nil
	}
	return outs
}

// iccAdaptiveRun runs ICC0 with the lag-κ leader-muting adversary and
// returns committed blocks. kappa < 0 disables the adversary.
func iccAdaptiveRun(n int, delta, bound, window time.Duration, kappa int) int64 {
	// The simulated beacon chain is deterministic from the genesis seed,
	// which lets the experiment compute, for every round k, who its
	// leader is — exactly the knowledge the adversary gains when the
	// round-k beacon is revealed (during round k−1, due to pipelining).
	// A lag of κ means the corruption of leader(k), ordered at the
	// earliest possible moment (round k−1), is active during rounds
	// [k−1+κ, k+κ). It hits round k iff κ = 1.
	//
	// Under that model the adversary mutes party p during round r iff p
	// is the leader of round r and κ = 1 — larger lags always miss. We
	// still compute the schedule explicitly to keep the model honest.
	leaders := make(map[types.Round]types.PartyID)
	var mu sync.Mutex
	var oracle *beacon.Simulated
	var oracleRound types.Round

	opts := harness.Options{
		N:          n,
		Seed:       10100 + int64(kappa),
		Delay:      simnet.Fixed{D: delta},
		DeltaBound: bound,
		SimBeacon:  true,
		Verify:     pool.VerifySharesOnly,
		PruneDepth: simPruneDepth,
	}
	var pubSeed []byte
	opts.WrapEngine = func(p types.PartyID, e engine.Engine) engine.Engine {
		if kappa < 0 {
			return e
		}
		return &muteFilter{inner: e, muted: func(r types.Round) bool {
			mu.Lock()
			defer mu.Unlock()
			// Lazily extend the leader schedule by advancing a private
			// copy of the deterministic simulated beacon chain.
			if oracle == nil {
				oracle = beacon.NewSimulated(n, 0, pubSeed)
			}
			for oracleRound < r {
				k := oracleRound + 1
				for i := 0; i < n; i++ {
					share := &types.BeaconShare{Round: k, Signer: types.PartyID(i), Share: make([]byte, 97)}
					_, _ = oracle.AddShare(share)
				}
				if _, ok := oracle.Reveal(k); !ok {
					return false
				}
				if l, ok := oracle.Leader(k); ok {
					leaders[k] = l
				}
				oracleRound = k
			}
			// Corruption of leader(r), ordered in round r−1, is active
			// during rounds [r−1+κ, r+κ): it mutes round r iff κ == 1.
			return kappa == 1 && leaders[r] == p
		}}
	}
	c, err := harness.New(opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	pubSeed = c.Pub.GenesisSeed
	c.Start()
	c.Net.Run(window)
	if err := c.CheckSafety(); err != nil {
		panic(fmt.Sprintf("weak-adaptive run violated safety: %v", err))
	}
	return c.Rec.Summarize().CommittedBlocks
}

// hotstuffMutedRun runs the HotStuff baseline, optionally muting every
// view's (publicly known) leader during its view.
func hotstuffMutedRun(n int, delta, bound, window time.Duration, mute bool) int64 {
	nw := simnet.New(simnet.Options{Seed: 10200, Delay: simnet.Fixed{D: delta}})
	var mu sync.Mutex
	var commits int64
	for i := 0; i < n; i++ {
		h := baseline.NewHotStuff(baseline.HotStuffConfig{
			Self: types.PartyID(i), N: n, DeltaBound: bound,
			OnCommit: func(uint64, []byte, time.Duration) {
				mu.Lock()
				commits++
				mu.Unlock()
			},
		})
		var eng engine.Engine = h
		if mute {
			pid := types.PartyID(i)
			eng = &muteFilter{inner: h, muted: func(r types.Round) bool {
				// Round-robin: leader(v) = v mod n is public forever.
				return types.PartyID(uint64(r)%uint64(n)) == pid
			}}
		}
		nw.AddNode(eng, true)
	}
	nw.Start()
	nw.Run(window)
	mu.Lock()
	defer mu.Unlock()
	return commits / int64(n)
}
