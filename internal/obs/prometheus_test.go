package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full exposition of a small registry:
// families sorted by name, children sorted by label values, HELP/TYPE
// lines, and histogram expansion with cumulative le buckets.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("icc_commits_total", "Blocks committed.").Add(3)
	v := r.CounterVec("icc_drops_total", "Frames dropped per peer.", "peer")
	v.With("2").Add(5)
	v.With("10").Inc()
	r.Gauge("icc_round", "Current round.").Set(7)
	h := r.Histogram("icc_lat_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP icc_commits_total Blocks committed.
# TYPE icc_commits_total counter
icc_commits_total 3
# HELP icc_drops_total Frames dropped per peer.
# TYPE icc_drops_total counter
icc_drops_total{peer="10"} 1
icc_drops_total{peer="2"} 5
# HELP icc_lat_seconds Latency.
# TYPE icc_lat_seconds histogram
icc_lat_seconds_bucket{le="0.5"} 1
icc_lat_seconds_bucket{le="1"} 2
icc_lat_seconds_bucket{le="+Inf"} 3
icc_lat_seconds_sum 3
icc_lat_seconds_count 3
# HELP icc_round Current round.
# TYPE icc_round gauge
icc_round 7
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("g", "", "a", "b")
	v.With("x", "y").Set(1)
	v.With("p", "q").Set(2)
	r.Counter("z_total", "").Inc()
	r.Counter("a_total", "").Inc()
	var first string
	for i := 0; i < 5; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", first, b.String())
		}
	}
	if !strings.Contains(first, `g{a="p",b="q"} 2`) {
		t.Fatalf("multi-label series missing:\n%s", first)
	}
	if strings.Index(first, "a_total 1") > strings.Index(first, "z_total 1") {
		t.Fatalf("families not sorted by name:\n%s", first)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", `tricky "help" with \slash`+"\nand newline", "l").
		With("a\\b\"c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_total tricky "help" with \\slash\nand newline`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{l="a\\b\"c\nd"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if strings.Contains(out, "\nd\"}") {
		t.Fatalf("raw newline leaked into a label value:\n%s", out)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("nil registry produced output: %q", b.String())
	}
}
