package core

import (
	"sort"
	"time"

	"icc/internal/checkpoint"
	"icc/internal/crypto"
	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/sig"
	"icc/internal/engine"
	"icc/internal/pool"
	"icc/internal/types"
)

// Engine is one party's ICC0 protocol state machine: the Tree-Building
// Subprotocol (Fig. 1) and the Finalization Subprotocol (Fig. 2) run
// "concurrently" by sharing one event loop.
type Engine struct {
	cfg Config

	pool *pool.Pool

	// Tree-Building Subprotocol state for the current round.
	round      types.Round // the round being worked on (k); starts at 1
	inRound    bool        // false while waiting for the round's beacon
	t0         time.Duration
	perm       []types.PartyID
	myRank     types.Rank
	rankOf     map[types.PartyID]types.Rank
	proposed   bool
	notarized  map[hash.Digest]bool // N: blocks I notarization-shared
	rankShared map[types.Rank]bool  // ranks with a block in N
	disq       map[types.Rank]bool  // D: disqualified ranks
	echoed     map[hash.Digest]bool // blocks already echoed (idempotence)

	// Finalization Subprotocol state.
	kmax    types.Round // highest finalized round output so far
	pending map[types.Round]struct{}

	// Adaptive-delay state.
	adaptPow    int
	lastFinal   types.Round // kmax at the last adaptation check
	unfinalized int         // consecutive finished rounds without commit progress

	// waitSince marks when the party started waiting for the current
	// round's beacon (instrumentation: OnBeaconRecovered timings).
	waitSince time.Duration

	// Resynchronisation state (resync.go, catchup.go).
	resyncAt      time.Duration // next time a stalled round triggers a Status
	statusSeq     uint64        // distinguishes successive Status emissions
	finalSeen     types.Round   // highest round with a finalization in the pool
	lastFinalHash hash.Digest   // block hash at kmax (zero until first commit)
	catchup       *Catchup      // answers lagging peers' Status messages

	// Durability state (checkpointing.go, recover.go).
	replaying bool // WAL replay in progress: suppress new signatures and sends
	lost      bool // behind the prune horizon with no checkpoint path (resync.go)
	ckpts     map[types.Round]*pendingCheckpoint
	ckptPub   aggsig.Scheme // S_final keys at t+1 under DomainCheckpoint

	out []engine.Output
}

var _ engine.Engine = (*Engine)(nil)

// NewEngine builds an ICC0 engine from a config.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		pool:    pool.New(cfg.Keys, cfg.Self, cfg.Pool),
		round:   1,
		pending: make(map[types.Round]struct{}),
		catchup: newCatchup(cfg),
		ckpts:   make(map[types.Round]*pendingCheckpoint),
		ckptPub: checkpoint.PublicInfo(cfg.Keys),
	}
	e.resetRoundState()
	return e
}

// ID implements engine.Engine.
func (e *Engine) ID() types.PartyID { return e.cfg.Self }

// CurrentRound implements engine.Engine.
func (e *Engine) CurrentRound() types.Round { return e.round }

// Pool exposes the artifact pool (read-only use by wrappers and tests).
func (e *Engine) Pool() *pool.Pool { return e.pool }

// FinalizedRound returns the highest round this party has committed.
func (e *Engine) FinalizedRound() types.Round { return e.kmax }

func (e *Engine) resetRoundState() {
	e.inRound = false
	e.proposed = false
	e.notarized = make(map[hash.Digest]bool)
	e.rankShared = make(map[types.Rank]bool)
	e.disq = make(map[types.Rank]bool)
	e.echoed = make(map[hash.Digest]bool)
	e.perm = nil
	e.rankOf = nil
}

// dprop and dntry apply the adaptive multiplier, if enabled.
func (e *Engine) dprop(r types.Rank) time.Duration {
	return e.cfg.DProp(r) << uint(e.adaptPow)
}

func (e *Engine) dntry(r types.Rank) time.Duration {
	return e.cfg.DNtry(r) << uint(e.adaptPow)
}

// Init implements engine.Engine: "broadcast a share of the round-1
// random beacon" (Fig. 1, first line). After Recover the working round
// may be past 1 and possibly mid-round; the same code re-announces the
// recovered frontier's shares and restarts the round clock.
func (e *Engine) Init(now time.Duration) []engine.Output {
	e.touchResync(now)
	e.waitSince = now
	e.broadcastBeaconShare(e.round)
	if e.inRound {
		// Recovered mid-round: the pipelined next-round share was already
		// announced pre-crash, but re-announcing is cheap and heals the
		// case where the crash hit between fsync and send. The round clock
		// restarts — delays stretch, which only costs liveness slack.
		e.broadcastBeaconShare(e.round + 1)
		e.t0 = now
	}
	e.progress(now)
	return e.drain()
}

// HandleMessage implements engine.Engine.
func (e *Engine) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	e.ingest(from, m, now)
	e.progress(now)
	return e.drain()
}

// Tick implements engine.Engine. Ticks additionally flush the WAL even
// when no output is due, bounding how long an admitted-but-unsynced
// artifact can linger in the group-commit buffer.
func (e *Engine) Tick(now time.Duration) []engine.Output {
	e.maybeResync(now)
	e.progress(now)
	out := e.drain()
	e.cfg.WAL.Flush()
	return out
}

// drain returns and clears the output buffer. When anything is about to
// leave the engine, the WAL is flushed first: no signature we issued may
// reach the network before it is durable (sync-before-send), otherwise a
// crash-restart could forget having signed and equivocate.
func (e *Engine) drain() []engine.Output {
	out := e.out
	e.out = nil
	if len(out) > 0 {
		e.cfg.WAL.Flush()
	}
	return out
}

// logArtifact appends an admitted or self-created artifact to the WAL.
// No-op during replay (the record being replayed is already durable).
func (e *Engine) logArtifact(m types.Message) {
	if e.replaying {
		return
	}
	e.cfg.WAL.Append(m)
}

// Replaying reports whether a WAL replay is in progress (Recover).
func (e *Engine) Replaying() bool { return e.replaying }

// emit queues a broadcast.
func (e *Engine) emit(m types.Message) {
	e.out = append(e.out, engine.Broadcast(m))
}

// ingest routes one received message into the pool/beacon. Invalid
// artifacts are dropped (the sender may be corrupt; paper §3.1 makes no
// authenticity assumption beyond the signatures themselves) — but no
// longer silently: each admission failure fires OnRejectedMessage with
// the sender and a classified reason.
func (e *Engine) ingest(from types.PartyID, m types.Message, now time.Duration) {
	switch v := m.(type) {
	case *types.Bundle:
		for _, sub := range v.Messages {
			e.ingest(from, sub, now)
		}
	case *types.ShareBundle:
		// Relay-coalesced shares: explode back into the individual
		// artifacts, which take the ordinary admission paths.
		for _, sub := range v.Expand() {
			e.ingest(from, sub, now)
		}
	case *types.BlockMsg:
		if v.Block == nil {
			return
		}
		if e.cfg.MaxPayload > 0 && len(v.Block.Payload) > e.cfg.MaxPayload {
			e.reject(from, crypto.Mismatch)
			return
		}
		if e.pool.AddBlock(v.Block) {
			e.logArtifact(v)
		}
	case *types.Authenticator:
		if added, err := e.pool.AddAuthenticator(v); err != nil {
			e.reject(from, err)
		} else if added {
			e.logArtifact(v)
		}
	case *types.NotarizationShare:
		if added, err := e.pool.AddNotarizationShare(v); err != nil {
			e.reject(from, err)
		} else if added {
			e.logArtifact(v)
		}
	case *types.Notarization:
		if added, err := e.pool.AddNotarization(v); err != nil {
			e.reject(from, err)
		} else if added {
			e.logArtifact(v)
		}
	case *types.FinalizationShare:
		if added, err := e.pool.AddFinalizationShare(v); err != nil {
			e.reject(from, err)
		} else if added {
			e.logArtifact(v)
		}
	case *types.Finalization:
		added, err := e.pool.AddFinalization(v)
		if err != nil {
			e.reject(from, err)
		}
		if added {
			e.logArtifact(v)
			if v.Round > e.finalSeen {
				e.finalSeen = v.Round
			}
		}
	case *types.BeaconShare:
		if added, _ := e.cfg.Beacon.AddShare(v); added {
			e.logArtifact(v)
		}
	case *types.CheckpointShare:
		e.handleCheckpointShare(from, v, now)
	case *types.CheckpointMsg:
		e.handleCheckpointMsg(from, v, now)
	case *types.Status:
		e.handleStatus(from, v, now)
	default:
		// Gossip and RBC messages are handled by wrapper engines; a bare
		// ICC0 engine ignores them.
	}
}

// reject reports one admission failure to the instrumentation hook.
func (e *Engine) reject(from types.PartyID, err error) {
	if e.cfg.Hooks.OnRejectedMessage != nil {
		e.cfg.Hooks.OnRejectedMessage(from, crypto.Reason(err))
	}
}

// progress runs every protocol clause to quiescence.
func (e *Engine) progress(now time.Duration) {
	for {
		moved := false
		if !e.inRound {
			moved = e.tryEnterRound(now) || moved
		}
		if e.inRound {
			if e.tryFinishRound(now) {
				// Round advanced; loop to enter the next one.
				continue
			}
			moved = e.tryPropose(now) || moved
			moved = e.tryEchoNotarize(now) || moved
		}
		moved = e.runFinalizer(now) || moved
		if !moved {
			return
		}
	}
}

// broadcastBeaconShare signs and broadcasts this party's share of the
// round-k beacon (and records it locally).
func (e *Engine) broadcastBeaconShare(k types.Round) {
	if e.replaying {
		// Our own shares from before the crash arrive as WAL records; the
		// deterministic signature would be identical anyway, and nothing
		// may be emitted during replay.
		return
	}
	share, err := e.cfg.Beacon.ShareForRound(k)
	if err != nil {
		return // R_{k−1} unknown; caller's state machine retries later
	}
	if added, _ := e.cfg.Beacon.AddShare(share); added {
		e.logArtifact(share)
	}
	// While replaying rounds the rest of the cluster has already
	// finalized (catch-up after an outage), our shares for those rounds
	// are useless to everyone else — keep them local.
	if k > e.finalSeen {
		e.emit(share)
	}
}

// tryEnterRound implements the preliminary step of each round: wait for
// t+1 shares of the round-k beacon, compute it, broadcast a share of the
// round-(k+1) beacon (pipelining), and set up round state.
func (e *Engine) tryEnterRound(now time.Duration) bool {
	k := e.round
	if _, ok := e.cfg.Beacon.Reveal(k); !ok {
		return false
	}
	e.broadcastBeaconShare(k + 1)
	perm, _ := e.cfg.Beacon.Permutation(k)
	e.perm = perm
	e.rankOf = make(map[types.PartyID]types.Rank, len(perm))
	for r, p := range perm {
		e.rankOf[p] = types.Rank(r)
	}
	e.myRank = e.rankOf[e.cfg.Self]
	e.t0 = now
	e.inRound = true
	e.touchResync(now)
	if e.replaying {
		return true
	}
	if e.cfg.Hooks.OnBeaconRecovered != nil {
		e.cfg.Hooks.OnBeaconRecovered(k, now-e.waitSince, now)
	}
	if e.cfg.Hooks.OnEnterRound != nil {
		e.cfg.Hooks.OnEnterRound(k, now)
	}
	return true
}

// tryFinishRound implements clause (a) of Fig. 1: on a notarized round-k
// block (or a full set of notarization shares for a valid block),
// broadcast the notarization, maybe a finalization share, and move on.
func (e *Engine) tryFinishRound(now time.Duration) bool {
	k := e.round
	h, ok := e.pool.NotarizedInRound(k)
	if !ok {
		// Full share set for a valid but non-notarized block? Only blocks
		// whose share count crossed the threshold are candidates, so this
		// no longer rescans every block of the round per message.
		for _, h2 := range e.pool.NotarReadyBlocks(k) {
			if e.pool.Notarization(h2) != nil || !e.pool.IsValid(h2) {
				continue
			}
			agg, ready := e.pool.NotarAggregateIfReady(h2)
			if !ready {
				continue
			}
			b := e.pool.Block(h2)
			nz := &types.Notarization{Round: k, Proposer: b.Proposer, BlockHash: h2, Agg: agg.Encode()}
			if added, _ := e.pool.AddNotarization(nz); added {
				e.logArtifact(nz)
				h, ok = h2, true
				break
			}
		}
		if !ok {
			return false
		}
	}
	// Broadcast the notarization for B — unless a finalization at or
	// past this round is already in the pool, in which case the cluster
	// has moved on and we are merely replaying history (catch-up).
	if k > e.finalSeen {
		e.emit(e.pool.Notarization(h))
	}
	// If N ⊆ {B}, broadcast a finalization share for B. NEVER during
	// replay: the replayed round state cannot prove the pre-crash N was
	// this small, and a share the pre-crash process withheld could,
	// combined with a share it issued for a sibling block, finalize two
	// blocks in one round. Only shares recorded in the WAL re-enter the
	// pool during recovery.
	if !e.replaying && (len(e.notarized) == 0 || (len(e.notarized) == 1 && e.notarized[h])) {
		b := e.pool.Block(h)
		msg := types.SigningBytes(k, b.Proposer, h)
		fs := &types.FinalizationShare{
			Round: k, Proposer: b.Proposer, BlockHash: h, Signer: e.cfg.Self,
			Sig: e.cfg.Priv.Final.Sign(types.DomainFinalization, msg).Signature,
		}
		if added, _ := e.pool.AddFinalizationShare(fs); added {
			e.logArtifact(fs)
		}
		if k > e.finalSeen {
			e.emit(fs)
		}
		if e.cfg.Hooks.OnFinalizationShare != nil {
			e.cfg.Hooks.OnFinalizationShare(k, now)
		}
	}
	if !e.replaying && e.cfg.Hooks.OnFinishRound != nil {
		e.cfg.Hooks.OnFinishRound(k, now)
	}
	e.adaptDelays()
	e.round = k + 1
	e.resetRoundState()
	e.waitSince = now
	e.touchResync(now)
	return true
}

// adaptDelays implements the adaptive-Δbnd variant: double the working
// delay bound after every window of finished-but-unfinalized rounds,
// reset once finalization resumes (§1 "the ICC protocols can be modified
// to adaptively adjust to an unknown communication-delay bound").
func (e *Engine) adaptDelays() {
	if !e.cfg.Adaptive {
		return
	}
	if e.kmax > e.lastFinal {
		e.lastFinal = e.kmax
		e.unfinalized = 0
		e.adaptPow = 0
		return
	}
	e.unfinalized++
	if e.unfinalized >= 2 && e.adaptPow < e.cfg.AdaptiveMax {
		e.adaptPow++
		e.unfinalized = 0
	}
}

// tryPropose implements clause (b) of Fig. 1. Suppressed during replay:
// the pre-crash proposal, if any, re-enters the pool from the WAL, and
// proposing a second, different block for the same round would be
// equivocation.
func (e *Engine) tryPropose(now time.Duration) bool {
	if e.replaying || e.proposed || now < e.t0+e.dprop(e.myRank) {
		return false
	}
	k := e.round
	parentHash, ok := e.pool.NotarizedInRound(k - 1)
	if !ok {
		return false // cannot happen: round k−1 finished with one
	}
	parent := e.pool.Block(parentHash)
	payload := e.cfg.Payload.GetPayload(k, parent, e.pool.Block)
	b := &types.Block{Round: k, Proposer: e.cfg.Self, ParentHash: parentHash, Payload: payload}
	h := b.Hash()
	auth := &types.Authenticator{
		Round: k, Proposer: e.cfg.Self, BlockHash: h,
		Sig: sig.Sign(e.cfg.Priv.Auth, types.DomainAuthenticator, types.SigningBytes(k, e.cfg.Self, h)),
	}
	if e.pool.AddBlock(b) {
		e.logArtifact(&types.BlockMsg{Block: b})
	}
	if added, _ := e.pool.AddAuthenticator(auth); added {
		e.logArtifact(auth)
	}
	bundle := &types.Bundle{Messages: []types.Message{&types.BlockMsg{Block: b}, auth}}
	if nz := e.pool.Notarization(parentHash); nz != nil {
		bundle.Messages = append(bundle.Messages, nz)
	}
	e.emit(bundle)
	e.proposed = true
	if e.cfg.Hooks.OnPropose != nil {
		e.cfg.Hooks.OnPropose(k, now)
	}
	return true
}

// candidate is a valid round-k block awaiting clause (c) treatment.
type candidate struct {
	h    hash.Digest
	rank types.Rank
}

// candidates lists the valid blocks of the current round with their
// proposer ranks, sorted by rank.
func (e *Engine) candidates() []candidate {
	var cs []candidate
	for _, h := range e.pool.BlocksInRound(e.round) {
		if !e.pool.IsValid(h) {
			continue
		}
		b := e.pool.Block(h)
		r, ok := e.rankOf[b.Proposer]
		if !ok {
			continue
		}
		cs = append(cs, candidate{h: h, rank: r})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].rank != cs[j].rank {
			return cs[i].rank < cs[j].rank
		}
		// Equivocating proposers: deterministic order by hash.
		for b := 0; b < hash.Size; b++ {
			if cs[i].h[b] != cs[j].h[b] {
				return cs[i].h[b] < cs[j].h[b]
			}
		}
		return false
	})
	return cs
}

// tryEchoNotarize implements clause (c) of Fig. 1: echo qualifying
// blocks and either notarization-share them or disqualify their rank.
// Suppressed during replay: pre-crash shares re-enter from the WAL, and
// rankShared/notarized are rebuilt from them afterwards
// (rebuildRoundFlags) — signing fresh shares here could put two blocks
// of one rank into N, which the pre-crash process may not have done.
func (e *Engine) tryEchoNotarize(now time.Duration) bool {
	if e.replaying {
		return false
	}
	cs := e.candidates()
	moved := false
	for _, c := range cs {
		if e.notarized[c.h] || e.disq[c.rank] {
			continue
		}
		if now < e.t0+e.dntry(c.rank) {
			continue
		}
		// "there is no valid round-k block B* of rank r* ∈ [r] \ D"
		blocked := false
		for _, other := range cs {
			if other.rank >= c.rank {
				break
			}
			if !e.disq[other.rank] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		b := e.pool.Block(c.h)
		// Echo the block (not our own proposal — we broadcast that when
		// proposing).
		if c.rank != e.myRank && !e.echoed[c.h] {
			e.echoed[c.h] = true
			bundle := &types.Bundle{Messages: []types.Message{
				&types.BlockMsg{Block: b},
				e.pool.Authenticator(c.h),
			}}
			if nz := e.pool.Notarization(b.ParentHash); nz != nil {
				bundle.Messages = append(bundle.Messages, nz)
			}
			e.emit(bundle)
		}
		if e.rankShared[c.rank] {
			// Second distinct block of this rank: the proposer
			// equivocated — disqualify the rank.
			e.disq[c.rank] = true
			if e.cfg.Hooks.OnRankDisqualified != nil {
				e.cfg.Hooks.OnRankDisqualified(e.round, c.rank, now)
			}
		} else {
			e.notarized[c.h] = true
			e.rankShared[c.rank] = true
			msg := types.SigningBytes(e.round, b.Proposer, c.h)
			ns := &types.NotarizationShare{
				Round: e.round, Proposer: b.Proposer, BlockHash: c.h, Signer: e.cfg.Self,
				Sig: e.cfg.Priv.Notary.Sign(types.DomainNotarization, msg).Signature,
			}
			if added, _ := e.pool.AddNotarizationShare(ns); added {
				e.logArtifact(ns)
			}
			e.emit(ns)
			if e.cfg.Hooks.OnNotarizationShare != nil {
				e.cfg.Hooks.OnNotarizationShare(e.round, now)
			}
		}
		moved = true
	}
	return moved
}

// runFinalizer implements Fig. 2: whenever a round above kmax has a
// finalized block (or a full set of finalization shares for a valid
// block), broadcast the finalization and output the chain suffix.
func (e *Engine) runFinalizer(now time.Duration) bool {
	for _, k := range e.pool.DirtyFinalizableRounds() {
		if k > e.kmax {
			e.pending[k] = struct{}{}
		}
	}
	if len(e.pending) == 0 {
		return false
	}
	rounds := make([]types.Round, 0, len(e.pending))
	for k := range e.pending {
		rounds = append(rounds, k)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	moved := false
	for _, k := range rounds {
		if k <= e.kmax {
			delete(e.pending, k)
			continue
		}
		if e.tryCommitRound(k, now) {
			delete(e.pending, k)
			moved = true
		}
	}
	return moved
}

// tryCommitRound attempts Fig. 2's body for one round.
func (e *Engine) tryCommitRound(k types.Round, now time.Duration) bool {
	for _, h := range e.pool.FinalCandidateBlocks(k) {
		finalized := e.pool.IsFinalized(h)
		if !finalized {
			if !e.pool.IsValid(h) {
				continue
			}
			agg, ready := e.pool.FinalAggregateIfReady(h)
			if !ready {
				continue
			}
			b := e.pool.Block(h)
			fin := &types.Finalization{Round: k, Proposer: b.Proposer, BlockHash: h, Agg: agg.Encode()}
			if added, _ := e.pool.AddFinalization(fin); !added {
				continue
			}
			e.logArtifact(fin)
			if k > e.finalSeen {
				e.finalSeen = k
			}
		}
		// Broadcast the finalization and output the last k − kmax blocks
		// of the chain ending at B.
		chain := e.pool.Chain(h, e.kmax)
		if chain == nil {
			return false // ancestors missing; retry when they arrive
		}
		e.emit(e.pool.Finalization(h))
		for _, b := range chain {
			// OnCommit runs even during replay: it is how the application
			// state machine is rebuilt to the pre-crash frontier.
			if e.cfg.Hooks.OnCommit != nil {
				e.cfg.Hooks.OnCommit(b, now)
			}
			e.kmax = b.Round
			e.maybeCheckpoint(b, now)
		}
		e.kmax = k
		e.lastFinalHash = h
		e.maybePrune()
		return true
	}
	return false
}

// maybePrune applies PruneDepth-based garbage collection.
func (e *Engine) maybePrune() {
	if e.cfg.PruneDepth <= 0 || e.kmax <= e.cfg.PruneDepth {
		return
	}
	cut := e.kmax - e.cfg.PruneDepth
	e.pool.Prune(cut)
	e.cfg.Beacon.Prune(cut)
}

// NextWake implements engine.Engine: the earliest future Δprop/Δntry
// boundary that could newly enable clause (b) or (c).
func (e *Engine) NextWake(now time.Duration) (time.Duration, bool) {
	var earliest time.Duration
	have := false
	consider := func(t time.Duration) {
		if t <= now {
			return
		}
		if !have || t < earliest {
			earliest, have = t, true
		}
	}
	if e.cfg.ResyncInterval > 0 {
		// The resync deadline applies even outside a round: a party
		// stuck waiting for beacon shares that were lost in transit can
		// only recover by speaking up.
		if e.resyncAt <= now {
			consider(now + 1)
		} else {
			consider(e.resyncAt)
		}
	}
	if !e.inRound {
		return earliest, have // otherwise waiting on messages only
	}
	if !e.proposed {
		consider(e.t0 + e.dprop(e.myRank))
	}
	for _, c := range e.candidates() {
		if e.notarized[c.h] || e.disq[c.rank] {
			continue
		}
		consider(e.t0 + e.dntry(c.rank))
	}
	return earliest, have
}
