package hash

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	a := Sum(DomainBlock, []byte("hello"), []byte("world"))
	b := Sum(DomainBlock, []byte("hello"), []byte("world"))
	if a != b {
		t.Fatalf("same input hashed to different digests: %s vs %s", a, b)
	}
}

func TestSumDomainSeparation(t *testing.T) {
	a := Sum(DomainBlock, []byte("payload"))
	b := Sum(DomainBeacon, []byte("payload"))
	if a == b {
		t.Fatal("different domains produced the same digest")
	}
}

func TestSumChunkFraming(t *testing.T) {
	// ("ab", "c") must differ from ("a", "bc") and from ("abc").
	cases := []Digest{
		Sum(DomainBlock, []byte("ab"), []byte("c")),
		Sum(DomainBlock, []byte("a"), []byte("bc")),
		Sum(DomainBlock, []byte("abc")),
		Sum(DomainBlock, []byte("abc"), nil),
	}
	for i := 0; i < len(cases); i++ {
		for j := i + 1; j < len(cases); j++ {
			if cases[i] == cases[j] {
				t.Fatalf("framing collision between case %d and %d", i, j)
			}
		}
	}
}

func TestSumEmpty(t *testing.T) {
	a := Sum(DomainBlock)
	b := Sum(DomainBlock, []byte{})
	if a == b {
		t.Fatal("no-chunk and single-empty-chunk should differ (framing)")
	}
	if a.IsZero() || b.IsZero() {
		t.Fatal("hash of empty input must not be the zero digest")
	}
}

func TestZeroDigest(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	var d Digest
	if d != Zero {
		t.Fatal("zero-value Digest != Zero")
	}
}

func TestStringAndShort(t *testing.T) {
	d := Sum(DomainBlock, []byte("x"))
	if len(d.String()) != 2*Size {
		t.Fatalf("String length = %d, want %d", len(d.String()), 2*Size)
	}
	if len(d.Short()) != 8 {
		t.Fatalf("Short length = %d, want 8", len(d.Short()))
	}
	if d.String()[:8] != d.Short() {
		t.Fatal("Short is not a prefix of String")
	}
}

func TestSumUint64MatchesManualEncoding(t *testing.T) {
	got := SumUint64(DomainRanking, 1, 2)
	want := Sum(DomainRanking, []byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2})
	if got != want {
		t.Fatalf("SumUint64 mismatch: %s vs %s", got, want)
	}
}

func TestQuickNoAccidentalCollisions(t *testing.T) {
	// Property: distinct single-chunk inputs yield distinct digests
	// (collision resistance cannot be proven, but quick inputs must
	// never collide for a correct implementation).
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return Sum(DomainBlock, a) != Sum(DomainBlock, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSum1KB(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum(DomainBlock, buf)
	}
}
