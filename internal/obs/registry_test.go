package obs

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-10) // counters only go up: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "help")
	b := r.Counter("shared_total", "help")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("shared counter = %d, want 2", a.Value())
	}

	v1 := r.CounterVec("vec_total", "help", "peer")
	v2 := r.CounterVec("vec_total", "help", "peer")
	v1.With("1").Inc()
	v2.With("1").Inc()
	if v1.With("1").Value() != 2 {
		t.Fatalf("shared vec child = %d, want 2", v1.With("1").Value())
	}
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "help")
	g.Set(3)
	g.SetMax(1) // below current: ignored
	if g.Value() != 3 {
		t.Fatalf("gauge = %v, want 3", g.Value())
	}
	g.SetMax(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v, want 7", g.Value())
	}
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %v, want 5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	count, sum, cum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if sum != 56.05 {
		t.Fatalf("sum = %v, want 56.05", sum)
	}
	// Cumulative: ≤0.1 → 1, ≤1 → 3, ≤10 → 4, +Inf → 5.
	want := []uint64{1, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	cv := r.CounterVec("cv", "", "l")
	gv := r.GaugeVec("gv", "", "l")
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.SetMax(1)
	g.Add(1)
	h.Observe(1)
	cv.With("x").Inc()
	gv.With("x").Set(1)
	cv.Each(func([]string, int64) { t.Fatal("nil vec visited a child") })
	gv.Each(func([]string, float64) { t.Fatal("nil vec visited a child") })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments accumulated values")
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry produced a snapshot")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc_total", "help")
			h := r.Histogram("conc_seconds", "help", nil)
			v := r.CounterVec("conc_vec_total", "help", "peer")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(0.001)
				v.With("0").Inc()
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Get("conc_total"); got != goroutines*perG {
		t.Fatalf("concurrent counter = %v, want %d", got, goroutines*perG)
	}
	if got := snap.Get("conc_seconds_count"); got != goroutines*perG {
		t.Fatalf("concurrent histogram count = %v, want %d", got, goroutines*perG)
	}
	if got := snap.Get(`conc_vec_total{peer="0"}`); got != goroutines*perG {
		t.Fatalf("concurrent vec = %v, want %d", got, goroutines*perG)
	}
}

func TestSnapshotView(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.GaugeVec("depth", "", "peer").With("3").Set(9)
	snap := r.Snapshot()
	if snap.Get("a_total") != 2 || snap.Get(`depth{peer="3"}`) != 9 {
		t.Fatalf("snapshot: %s", snap)
	}
	keys := snap.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
	merged := Snapshot{}
	merged.Merge("p_", snap)
	if merged.Get("p_a_total") != 2 {
		t.Fatalf("merge lost values: %v", merged)
	}
}
