package harness

// Robustness scenarios beyond the paper's eventual-delivery model:
// partitions that QUEUE traffic (simnet.Partition), partitions that LOSE
// traffic (lossyPartition, the behaviour of a real TCP cut), and
// engine-level crash/recovery. The latter two exercise the resync layer
// (core/resync.go) — without it they deadlock permanently.

import (
	"math/rand"
	"testing"
	"time"

	"icc/internal/simnet"
	"icc/internal/types"
)

// lossyPartition DROPS cross-group messages during the window, unlike
// simnet.Partition which holds and later delivers them. This violates
// the paper's eventual-delivery assumption (§1) and is exactly what a
// TCP cut does to in-flight frames.
type lossyPartition struct {
	inner simnet.DelayModel
	win   simnet.Window
	group map[types.PartyID]int
	now   time.Duration
}

func (l *lossyPartition) SetNow(t time.Duration) { l.now = t }

func (l *lossyPartition) Sample(rng *rand.Rand, from, to types.PartyID, size int) (time.Duration, bool) {
	if l.group[from] != l.group[to] && l.now >= l.win.From && l.now < l.win.To {
		return 0, false
	}
	return l.inner.Sample(rng, from, to, size)
}

func TestPartitionModelStallsThenRecovers(t *testing.T) {
	// 2|2 split via the Partition delay model: no n−t = 3 quorum can
	// form while the window is open, so commits stall; the held messages
	// flow at heal time and liveness resumes.
	pm := &simnet.Partition{
		Inner:   simnet.Fixed{D: 10 * time.Millisecond},
		Windows: []simnet.Window{{From: time.Second, To: 4 * time.Second}},
		Group:   map[types.PartyID]int{2: 1, 3: 1},
	}
	c, err := New(Options{N: 4, Seed: 23, SimBeacon: true, Delay: pm})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Net.Run(time.Second)
	before := len(c.Committed(0))
	if before == 0 {
		t.Fatal("no commits before the partition")
	}
	c.Net.Run(4 * time.Second)
	during := len(c.Committed(0))
	if during-before > 3 {
		t.Fatalf("committed %d blocks across a quorum-less partition", during-before)
	}
	c.Net.Run(10 * time.Second)
	after := len(c.Committed(0))
	if after-during < 20 {
		t.Fatalf("liveness did not resume after heal: %d new blocks", after-during)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestLossyPartitionHealsViaResync(t *testing.T) {
	// Same 2|2 split, but cross-group messages are LOST, not queued.
	// The quiescent protocol alone deadlocks here (nothing is ever
	// retransmitted); the resync layer must detect the stall and
	// re-exchange the missing artifacts after the heal.
	lp := &lossyPartition{
		inner: simnet.Fixed{D: 10 * time.Millisecond},
		win:   simnet.Window{From: time.Second, To: 4 * time.Second},
		group: map[types.PartyID]int{2: 1, 3: 1},
	}
	c, err := New(Options{N: 4, Seed: 31, SimBeacon: true, Delay: lp})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Net.Run(4 * time.Second)
	during := len(c.Committed(0))
	c.Net.Run(14 * time.Second)
	after := len(c.Committed(0))
	if after-during < 20 {
		t.Fatalf("liveness did not resume after lossy heal: %d new blocks", after-during)
	}
	// Everyone converges, not just the observing party.
	if min := c.MinCommitted(c.HonestParties()); after-min > 10 {
		t.Fatalf("parties diverged after heal: min %d vs %d", min, after)
	}
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoverPartyRejoins(t *testing.T) {
	// Party 3 goes dark during [2s, 6s) — every message in that window
	// is lost to it — and must close a gap of dozens of rounds through
	// the Status/backfill path once it recovers.
	c, err := New(Options{N: 4, Seed: 24, SimBeacon: true,
		CrashRecoveries: map[types.PartyID]CrashWindow{3: {Down: 2 * time.Second, Up: 6 * time.Second}}})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Net.Run(6 * time.Second)
	behind := len(c.Committed(3))
	ahead := len(c.Committed(0))
	if ahead-behind < 20 {
		t.Fatalf("outage had no effect: %d vs %d commits", behind, ahead)
	}
	c.Net.Run(12 * time.Second)
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
	caughtUp := len(c.Committed(3))
	nowAhead := len(c.Committed(0))
	if nowAhead-caughtUp > 5 {
		t.Fatalf("party 3 did not catch up: %d vs %d commits", caughtUp, nowAhead)
	}
	// And it participates again: the cluster as a whole kept finalizing.
	if caughtUp <= ahead {
		t.Fatal("no progress after recovery")
	}
}

func TestCrashRecoverPartyRejoinsICC1(t *testing.T) {
	// The same outage under gossip dissemination: resync traffic is
	// unicast precisely so the gossip seen-set cannot deduplicate it.
	c, err := New(Options{N: 4, Seed: 25, SimBeacon: true, Mode: ICC1,
		CrashRecoveries: map[types.PartyID]CrashWindow{3: {Down: 2 * time.Second, Up: 6 * time.Second}}})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Net.Run(18 * time.Second)
	if err := c.CheckSafety(); err != nil {
		t.Fatal(err)
	}
	caughtUp := len(c.Committed(3))
	nowAhead := len(c.Committed(0))
	if nowAhead-caughtUp > 5 {
		t.Fatalf("party 3 did not catch up under ICC1: %d vs %d commits", caughtUp, nowAhead)
	}
}
