// Package harness assembles simulated ICC clusters — key material,
// engines (honest or Byzantine), dissemination mode, delay model,
// metrics — and provides the invariant checks every experiment and
// integration test relies on. It is the shared chassis of the benchmark
// suite (DESIGN.md §3) and of cmd/iccsim.
package harness

import (
	"crypto/rand"
	"fmt"
	"io"
	"sync"
	"time"

	"icc/internal/adversary"
	"icc/internal/beacon"
	"icc/internal/core"
	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/keys"
	"icc/internal/engine"
	"icc/internal/metrics"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

// Behavior selects how a party acts.
type Behavior int

// Supported behaviours.
const (
	Honest        Behavior = iota + 1
	Crash                  // silent from birth
	SilentLeader           // honest except never proposes
	LazyVoter              // honest except never contributes shares
	Equivocator            // forks blocks AND notarization shares to different halves
	WithholdNotar          // honest except withholds its own notarization shares
	WithholdFinal          // honest except withholds its own finalization shares
	ClockSkewed            // honest, but runs against a skewed local clock
	RankAbuser             // colluding cartel member abusing the rank permutation
)

// behaviorNames is the canonical Behavior <-> string mapping, used by the
// campaign driver to persist behaviour sets in trace headers.
var behaviorNames = map[Behavior]string{
	Honest:        "honest",
	Crash:         "crash",
	SilentLeader:  "silent_leader",
	LazyVoter:     "lazy_voter",
	Equivocator:   "equivocator",
	WithholdNotar: "withhold_notar",
	WithholdFinal: "withhold_final",
	ClockSkewed:   "clock_skewed",
	RankAbuser:    "rank_abuser",
}

// String implements fmt.Stringer.
func (b Behavior) String() string {
	if s, ok := behaviorNames[b]; ok {
		return s
	}
	return fmt.Sprintf("Behavior(%d)", int(b))
}

// ParseBehavior inverts Behavior.String.
func ParseBehavior(s string) (Behavior, error) {
	for b, name := range behaviorNames {
		if name == s {
			return b, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown behavior %q", s)
}

// BehaviorTuning carries the per-party knobs of the time-dependent
// behaviours; the zero value selects sensible defaults.
type BehaviorTuning struct {
	// Until is when a WithholdNotar/WithholdFinal party rejoins and
	// shares normally again (0 = withholds for the whole run).
	Until time.Duration
	// Skew is a ClockSkewed party's clock offset (0 defaults to
	// 2×DeltaBound ahead — enough to open its Δprop/Δntry windows early).
	Skew time.Duration
	// ShareDelay is how long a RankAbuser sits on its own notarization
	// shares for non-cartel proposals (0 defaults to DeltaBound).
	ShareDelay time.Duration
}

// Mode selects the dissemination variant.
type Mode int

// Protocol variants (paper §1).
const (
	ICC0 Mode = iota // direct broadcast of blocks
	ICC1             // gossip sub-layer dissemination
	ICC2             // erasure-coded reliable broadcast dissemination
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ICC0:
		return "ICC0"
	case ICC1:
		return "ICC1"
	case ICC2:
		return "ICC2"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a cluster.
type Options struct {
	N          int
	Seed       int64
	Delay      simnet.DelayModel
	DeltaBound time.Duration
	Epsilon    time.Duration

	// CertScheme selects the aggregate-signature scheme the cluster's
	// notarization/finalization/checkpoint certificates use. Zero value
	// is the ed25519 multisig default; aggsig.SchemeBLS deals BLS12-381
	// keys instead (constant-size certificates, see DESIGN.md §15).
	CertScheme aggsig.SchemeID

	// SimBeacon swaps the threshold-cryptography beacon for the fast
	// hash-chain simulation (same message pattern; see beacon.Simulated).
	SimBeacon bool
	// Verify selects the pool admission policy. The zero value is
	// pool.VerifyFull; large honest-only sweeps use pool.VerifySharesOnly
	// to admit locally combined aggregates without re-checking n−t
	// signatures (the former SkipAggVerify knob).
	Verify pool.VerifyPolicy

	Payload    core.PayloadSource
	MaxPayload int

	// Behaviors assigns non-honest roles; unlisted parties are honest.
	Behaviors map[types.PartyID]Behavior
	// Tuning adjusts the time-dependent behaviours per party (rejoin
	// times, clock offsets, share delays); missing entries use defaults.
	Tuning map[types.PartyID]BehaviorTuning

	// KeyRand, if non-nil, replaces crypto/rand for key dealing — the
	// campaign driver passes a seeded deterministic reader so a replayed
	// run deals byte-identical keys and the trace reproduces exactly
	// across processes.
	KeyRand io.Reader

	// Trace, if non-nil, records the deterministic execution record of
	// the run: every simulator-level delivery and tick, every commit
	// (with block hash) and every rank disqualification. The campaign
	// driver byte-compares these streams to validate failure replay.
	Trace *obs.Tracer

	Mode Mode
	// GossipFanout bounds each party's gossip neighbourhood (ICC1).
	GossipFanout int
	// GossipBatchWindow coalesces share gossip into ShareBundle frames
	// flushed after this delay (ICC1 only; 0 keeps per-share relaying).
	GossipBatchWindow time.Duration
	// GossipAggregate lets ICC1 relays forward one aggregated
	// certificate instead of n−t individual shares once they hold a
	// quorum for a statement. Under pool.VerifySharesOnly the relays
	// combine without re-checking signatures (the sweep already trusts
	// locally combined aggregates); under pool.VerifyFull they verify
	// while combining.
	GossipAggregate bool
	// GossipAdaptiveBatch makes the batch window load-adaptive: isolated
	// shares relay immediately, bursts batch (requires GossipBatchWindow).
	GossipAdaptiveBatch bool
	// BeaconOutputs lets ICC1 relays gossip one recovered, verifiable
	// beacon output per round instead of t+1 shares. Requires a beacon
	// backend with third-party-verifiable outputs (SimBeacon here).
	BeaconOutputs bool

	Adaptive   bool
	PruneDepth types.Round

	// CrashRecoveries schedules engine-level crash/recovery outages:
	// the party goes dark during [Down, Up) and must rejoin via
	// protocol-level catch-up. Applied outside the dissemination
	// wrapper, so the gossip/RBC layer goes dark with the engine.
	// Unlike the Crash behaviour, these parties count as honest and the
	// liveness helpers wait for them to commit.
	CrashRecoveries map[types.PartyID]CrashWindow

	// WrapEngine, if set, is applied to each party's outermost engine —
	// an escape hatch for custom experiment instrumentation.
	WrapEngine func(p types.PartyID, e engine.Engine) engine.Engine
}

// CrashWindow is one scheduled outage in protocol time.
type CrashWindow struct {
	Down, Up time.Duration
}

// Cluster is a ready-to-run simulated deployment.
type Cluster struct {
	Opts    Options
	Pub     *keys.Public
	Privs   []keys.Private
	Net     *simnet.Network
	Rec     *metrics.Recorder
	Engines []*core.Engine // inner ICC engines, indexed by party

	// beacons holds each party's beacon source when the harness created
	// one explicitly (SimBeacon), so the dissemination wrapper can share
	// the exact object for beacon-output relaying.
	beacons []beacon.Source

	mu          sync.Mutex
	committed   [][]*types.Block
	committedAt [][]time.Duration
}

// New builds a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.N < 1 {
		return nil, fmt.Errorf("harness: invalid cluster size %d", opts.N)
	}
	if opts.Delay == nil {
		opts.Delay = simnet.Fixed{D: 10 * time.Millisecond}
	}
	if opts.DeltaBound == 0 {
		opts.DeltaBound = 100 * time.Millisecond
	}
	scheme := opts.CertScheme
	if scheme == 0 {
		scheme = aggsig.SchemeMultisig
	}
	keyRand := opts.KeyRand
	if keyRand == nil {
		keyRand = rand.Reader
	}
	pub, privs, err := keys.DealScheme(keyRand, opts.N, scheme)
	if err != nil {
		return nil, fmt.Errorf("harness: dealing keys: %w", err)
	}
	c := &Cluster{
		Opts:        opts,
		Pub:         pub,
		Privs:       privs,
		Rec:         metrics.NewRecorder(opts.N),
		beacons:     make([]beacon.Source, opts.N),
		committed:   make([][]*types.Block, opts.N),
		committedAt: make([][]time.Duration, opts.N),
	}
	simOpts := simnet.Options{Seed: opts.Seed, Delay: opts.Delay, Recorder: c.Rec}
	if opts.Trace != nil {
		tr := opts.Trace
		simOpts.Trace = func(ev simnet.TraceEvent) {
			e := obs.Event{VT: ev.At, Party: int(ev.Party), Round: ev.Step}
			if ev.Kind == "tick" {
				e.Kind = obs.KindSimTick
			} else {
				e.Kind = obs.KindSimDeliver
				e.Detail = fmt.Sprintf("from=%d msg=%d size=%d", ev.From, ev.Msg, ev.Size)
			}
			tr.Record(e)
		}
	}
	c.Net = simnet.New(simOpts)

	// Every RankAbuser shares one cartel roster so members recognise each
	// other's proposals.
	var cartelMembers []types.PartyID
	for i := 0; i < opts.N; i++ {
		if opts.Behaviors[types.PartyID(i)] == RankAbuser {
			cartelMembers = append(cartelMembers, types.PartyID(i))
		}
	}
	cartel := adversary.NewCollusion(cartelMembers...)

	for i := 0; i < opts.N; i++ {
		pid := types.PartyID(i)
		behavior := Honest
		if b, ok := opts.Behaviors[pid]; ok {
			behavior = b
		}
		if behavior == Crash {
			c.Engines = append(c.Engines, nil)
			c.Net.AddNode(adversary.NewSilent(pid), false)
			continue
		}
		inner := core.NewEngine(c.engineConfig(pid))
		c.Engines = append(c.Engines, inner)
		var eng engine.Engine = inner
		switch behavior {
		case SilentLeader:
			eng = adversary.NewSilentLeader(inner)
		case LazyVoter:
			eng = adversary.NewLazyVoter(inner)
		case Equivocator:
			eng = adversary.NewEquivocator(inner, opts.N, privs[i])
		case WithholdNotar:
			eng = adversary.NewShareWithholder(inner, adversary.WithholdOptions{
				Notar: true, Until: opts.Tuning[pid].Until,
			})
		case WithholdFinal:
			eng = adversary.NewShareWithholder(inner, adversary.WithholdOptions{
				Final: true, Until: opts.Tuning[pid].Until,
			})
		case ClockSkewed:
			skew := opts.Tuning[pid].Skew
			if skew == 0 {
				skew = 2 * opts.DeltaBound
			}
			eng = adversary.NewClockSkew(inner, skew)
		case RankAbuser:
			delay := opts.Tuning[pid].ShareDelay
			if delay == 0 {
				delay = opts.DeltaBound
			}
			eng = adversary.NewRankAbuser(inner, cartel, delay)
		}
		eng, err = c.wrapDissemination(pid, eng)
		if err != nil {
			return nil, fmt.Errorf("harness: party %d: %w", pid, err)
		}
		if w, ok := opts.CrashRecoveries[pid]; ok {
			eng = adversary.NewCrashRecover(eng, w.Down, w.Up)
		}
		if opts.WrapEngine != nil {
			eng = opts.WrapEngine(pid, eng)
		}
		c.Net.AddNode(eng, behavior == Honest)
	}
	return c, nil
}

// engineConfig builds one party's core config with metric hooks wired.
func (c *Cluster) engineConfig(pid types.PartyID) core.Config {
	cfg := core.Config{
		Self:       pid,
		Keys:       c.Pub,
		Priv:       c.Privs[pid],
		DeltaBound: c.Opts.DeltaBound,
		Epsilon:    c.Opts.Epsilon,
		Payload:    c.Opts.Payload,
		MaxPayload: c.Opts.MaxPayload,
		Adaptive:   c.Opts.Adaptive,
		PruneDepth: c.Opts.PruneDepth,
		Pool:       pool.Options{Policy: c.Opts.Verify},
		// No CatchupProvider: under the discrete-event simnet the engine
		// signs catch-up beacon shares synchronously inside handleStatus.
		// An async backfill worker would inject wall-clock goroutine
		// scheduling into an otherwise deterministic simulation; the
		// inline path keeps every run replayable. The async service is
		// exercised by the runtime tests and the catchup experiment.
		Hooks: core.Hooks{
			OnCommit: func(b *types.Block, now time.Duration) {
				c.mu.Lock()
				c.committed[pid] = append(c.committed[pid], b)
				c.committedAt[pid] = append(c.committedAt[pid], now)
				c.mu.Unlock()
				c.Rec.Commit(b.Round, len(b.Payload), now)
				if c.Opts.Trace != nil {
					h := b.Hash()
					c.Opts.Trace.Record(obs.Event{
						VT: now, Party: int(pid), Kind: obs.KindCommitted,
						Round: uint64(b.Round), Detail: fmt.Sprintf("hash=%x", h[:8]),
					})
				}
			},
			OnRankDisqualified: func(k types.Round, rank types.Rank, now time.Duration) {
				if c.Opts.Trace != nil {
					c.Opts.Trace.Record(obs.Event{
						VT: now, Party: int(pid), Kind: obs.KindRankDisq,
						Round: uint64(k), Detail: fmt.Sprintf("rank=%d", rank),
					})
				}
			},
			OnPropose:     func(k types.Round, now time.Duration) { c.Rec.Propose(k, now) },
			OnEnterRound:  func(k types.Round, now time.Duration) { c.Rec.EnterRound(k, now) },
			OnFinishRound: func(k types.Round, now time.Duration) { c.Rec.FinishRound(k, now) },
		},
	}
	if c.Opts.SimBeacon {
		cfg.Beacon = beacon.NewSimulated(c.Opts.N, pid, c.Pub.GenesisSeed)
		c.beacons[pid] = cfg.Beacon
	}
	return cfg
}

// Start initialises all engines.
func (c *Cluster) Start() { c.Net.Start() }

// Snapshot exports the run's recorded metrics in the common map view
// shared with the obs registry and the transport counters.
func (c *Cluster) Snapshot() obs.Snapshot { return c.Rec.Snapshot() }

// Committed returns a snapshot of party p's committed block sequence.
func (c *Cluster) Committed(p types.PartyID) []*types.Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*types.Block, len(c.committed[p]))
	copy(out, c.committed[p])
	return out
}

// CommittedAt returns a snapshot of the commit times parallel to
// Committed(p): blocks sharing a timestamp were output by one
// finalization batch (Fig. 2).
func (c *Cluster) CommittedAt(p types.PartyID) []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.committedAt[p]))
	copy(out, c.committedAt[p])
	return out
}

// MinCommitted returns the shortest committed-sequence length among the
// given parties.
func (c *Cluster) MinCommitted(parties []types.PartyID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	minLen := -1
	for _, p := range parties {
		l := len(c.committed[p])
		if minLen < 0 || l < minLen {
			minLen = l
		}
	}
	return minLen
}

// HonestParties lists the parties with Honest behaviour.
func (c *Cluster) HonestParties() []types.PartyID {
	var out []types.PartyID
	for i := 0; i < c.Opts.N; i++ {
		if b, ok := c.Opts.Behaviors[types.PartyID(i)]; !ok || b == Honest {
			out = append(out, types.PartyID(i))
		}
	}
	return out
}

// RunUntilCommitted runs the simulation until every honest party has
// committed at least minBlocks blocks, or simulated time passes limit.
func (c *Cluster) RunUntilCommitted(minBlocks int, limit time.Duration) bool {
	honest := c.HonestParties()
	return c.Net.RunUntil(func() bool {
		return c.MinCommitted(honest) >= minBlocks
	}, limit)
}

// CheckSafety verifies the atomic-broadcast safety property over all
// parties' outputs: any two committed sequences are prefix-comparable,
// each forms a chain, and rounds strictly increase.
func (c *Cluster) CheckSafety() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var longest []*types.Block
	for _, seq := range c.committed {
		if len(seq) > len(longest) {
			longest = seq
		}
	}
	for p, seq := range c.committed {
		for i, b := range seq {
			if b.Hash() != longest[i].Hash() {
				return fmt.Errorf("safety violation: party %d diverges at position %d", p, i)
			}
			if i > 0 {
				if b.ParentHash != seq[i-1].Hash() {
					return fmt.Errorf("party %d: block %d does not extend block %d", p, i, i-1)
				}
				if b.Round <= seq[i-1].Round {
					return fmt.Errorf("party %d: non-increasing rounds at position %d", p, i)
				}
			}
		}
	}
	return nil
}
