package pool

import (
	"crypto/rand"
	"errors"
	"testing"

	"icc/internal/crypto"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/crypto/sig"
	"icc/internal/types"
)

// added adapts the (bool, error) admission result for tests that only
// care whether the artifact was stored.
func added(ok bool, _ error) bool { return ok }

type fixture struct {
	pub   *keys.Public
	privs []keys.Private
	pool  *Pool
}

func newFixture(t testing.TB, n int) *fixture {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{pub: pub, privs: privs, pool: New(pub, 0, Options{})}
}

// block builds a round-k block by the given proposer on the given parent.
func (f *fixture) block(round types.Round, proposer types.PartyID, parent hash.Digest, payload string) *types.Block {
	return &types.Block{Round: round, Proposer: proposer, ParentHash: parent, Payload: []byte(payload)}
}

func (f *fixture) auth(b *types.Block) *types.Authenticator {
	msg := types.SigningBytes(b.Round, b.Proposer, b.Hash())
	return &types.Authenticator{
		Round: b.Round, Proposer: b.Proposer, BlockHash: b.Hash(),
		Sig: sig.Sign(f.privs[b.Proposer].Auth, types.DomainAuthenticator, msg),
	}
}

func (f *fixture) nshare(b *types.Block, signer types.PartyID) *types.NotarizationShare {
	msg := types.SigningBytes(b.Round, b.Proposer, b.Hash())
	s := f.privs[signer].Notary.Sign(types.DomainNotarization, msg)
	return &types.NotarizationShare{Round: b.Round, Proposer: b.Proposer, BlockHash: b.Hash(),
		Signer: signer, Sig: s.Signature}
}

func (f *fixture) fshare(b *types.Block, signer types.PartyID) *types.FinalizationShare {
	msg := types.SigningBytes(b.Round, b.Proposer, b.Hash())
	s := f.privs[signer].Final.Sign(types.DomainFinalization, msg)
	return &types.FinalizationShare{Round: b.Round, Proposer: b.Proposer, BlockHash: b.Hash(),
		Signer: signer, Sig: s.Signature}
}

func (f *fixture) notarization(t testing.TB, b *types.Block) *types.Notarization {
	t.Helper()
	agg, ok := f.pool.NotarAggregateIfReady(b.Hash())
	if !ok {
		t.Fatal("notarization shares not ready to combine")
	}
	return &types.Notarization{Round: b.Round, Proposer: b.Proposer, BlockHash: b.Hash(), Agg: agg.Encode()}
}

// notarize fully notarizes a block in the pool (adds block, auth, all
// shares, combined notarization).
func (f *fixture) notarize(t testing.TB, b *types.Block) {
	t.Helper()
	f.pool.AddBlock(b)
	f.pool.AddAuthenticator(f.auth(b))
	for i := 0; i < f.pub.N; i++ {
		f.pool.AddNotarizationShare(f.nshare(b, types.PartyID(i)))
	}
	if !added(f.pool.AddNotarization(f.notarization(t, b))) {
		t.Fatal("notarization rejected")
	}
}

func TestRootIsEverything(t *testing.T) {
	f := newFixture(t, 4)
	rh := f.pool.RootHash()
	if !f.pool.IsAuthentic(rh) || !f.pool.IsValid(rh) || !f.pool.IsNotarized(rh) || !f.pool.IsFinalized(rh) {
		t.Fatal("root must be authentic, valid, notarized, finalized")
	}
}

func TestValidityLadder(t *testing.T) {
	f := newFixture(t, 4)
	b := f.block(1, 2, f.pool.RootHash(), "payload")
	h := b.Hash()

	if f.pool.IsAuthentic(h) {
		t.Fatal("unknown block authentic")
	}
	f.pool.AddBlock(b)
	if f.pool.IsAuthentic(h) {
		t.Fatal("block without authenticator is authentic")
	}
	f.pool.AddAuthenticator(f.auth(b))
	if !f.pool.IsAuthentic(h) {
		t.Fatal("authenticated block not authentic")
	}
	if !f.pool.IsValid(h) {
		t.Fatal("round-1 block on root should be valid")
	}
	if f.pool.IsNotarized(h) {
		t.Fatal("block without notarization notarized")
	}
	// n−t = 3 shares needed.
	f.pool.AddNotarizationShare(f.nshare(b, 0))
	f.pool.AddNotarizationShare(f.nshare(b, 1))
	if f.pool.NotarShareCount(h) != 2 {
		t.Fatalf("share count %d, want 2", f.pool.NotarShareCount(h))
	}
	f.pool.AddNotarizationShare(f.nshare(b, 3))
	nz := f.notarization(t, b)
	if !added(f.pool.AddNotarization(nz)) {
		t.Fatal("valid notarization rejected")
	}
	if !f.pool.IsNotarized(h) {
		t.Fatal("notarized block not notarized")
	}
	got, ok := f.pool.NotarizedInRound(1)
	if !ok || got != h {
		t.Fatal("NotarizedInRound missed the block")
	}
}

func TestValidityRequiresNotarizedParent(t *testing.T) {
	f := newFixture(t, 4)
	b1 := f.block(1, 0, f.pool.RootHash(), "a")
	b2 := f.block(2, 1, b1.Hash(), "b")
	f.pool.AddBlock(b2)
	f.pool.AddAuthenticator(f.auth(b2))
	if f.pool.IsValid(b2.Hash()) {
		t.Fatal("block with unknown parent valid")
	}
	f.pool.AddBlock(b1)
	f.pool.AddAuthenticator(f.auth(b1))
	if f.pool.IsValid(b2.Hash()) {
		t.Fatal("block with non-notarized parent valid")
	}
	f.notarize(t, b1)
	if !f.pool.IsValid(b2.Hash()) {
		t.Fatal("block with notarized parent not valid")
	}
}

func TestValidityRejectsWrongParentRound(t *testing.T) {
	f := newFixture(t, 4)
	b1 := f.block(1, 0, f.pool.RootHash(), "a")
	f.notarize(t, b1)
	// A round-3 block pointing at a round-1 parent must not be valid.
	b3 := f.block(3, 1, b1.Hash(), "skip")
	f.pool.AddBlock(b3)
	f.pool.AddAuthenticator(f.auth(b3))
	if f.pool.IsValid(b3.Hash()) {
		t.Fatal("block skipping a round considered valid")
	}
}

func TestRejectsBadSignatures(t *testing.T) {
	f := newFixture(t, 4)
	b := f.block(1, 2, f.pool.RootHash(), "x")
	f.pool.AddBlock(b)
	// Authenticator signed by the wrong party.
	bad := f.auth(b)
	msg := types.SigningBytes(b.Round, b.Proposer, b.Hash())
	bad.Sig = sig.Sign(f.privs[1].Auth, types.DomainAuthenticator, msg)
	if _, err := f.pool.AddAuthenticator(bad); !errors.Is(err, crypto.ErrBadSignature) {
		t.Fatalf("wrong-signer authenticator: err = %v", err)
	}
	// Share with mismatched signer field.
	s := f.nshare(b, 0)
	s.Signer = 1
	if _, err := f.pool.AddNotarizationShare(s); !errors.Is(err, crypto.ErrBadShare) {
		t.Fatalf("share with stolen identity: err = %v", err)
	}
	// Out-of-range values.
	if _, err := f.pool.AddAuthenticator(&types.Authenticator{Round: 1, Proposer: 9}); err == nil {
		t.Fatal("out-of-range proposer accepted")
	}
	if _, err := f.pool.AddNotarizationShare(&types.NotarizationShare{Round: 1, Signer: -1}); err == nil {
		t.Fatal("negative signer accepted")
	}
	// Garbage aggregate.
	garbage := &types.Notarization{Round: 1, Proposer: 2, BlockHash: b.Hash(), Agg: []byte{1, 2}}
	if _, err := f.pool.AddNotarization(garbage); !errors.Is(err, crypto.ErrBadAggregate) {
		t.Fatalf("garbage notarization: err = %v", err)
	}
}

func TestAuthenticatorMustMatchBlockFields(t *testing.T) {
	f := newFixture(t, 4)
	b := f.block(1, 2, f.pool.RootHash(), "x")
	f.pool.AddBlock(b)
	// Party 2 signs an authenticator for the right hash but the wrong
	// round claim; IsAuthentic must stay false because the block's own
	// fields disagree. (The signature itself is over the claimed tuple.)
	msg := types.SigningBytes(5, 2, b.Hash())
	a := &types.Authenticator{Round: 5, Proposer: 2, BlockHash: b.Hash(),
		Sig: sig.Sign(f.privs[2].Auth, types.DomainAuthenticator, msg)}
	f.pool.AddAuthenticator(a)
	if f.pool.IsAuthentic(b.Hash()) {
		t.Fatal("mismatched authenticator made block authentic")
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	f := newFixture(t, 4)
	b := f.block(1, 0, f.pool.RootHash(), "x")
	if !f.pool.AddBlock(b) || f.pool.AddBlock(b) {
		t.Fatal("duplicate block handling wrong")
	}
	a := f.auth(b)
	if !added(f.pool.AddAuthenticator(a)) || added(f.pool.AddAuthenticator(a)) {
		t.Fatal("duplicate authenticator handling wrong")
	}
	// A duplicate is a no-op, not a reject: no error either time.
	if _, err := f.pool.AddAuthenticator(a); err != nil {
		t.Fatalf("duplicate authenticator errored: %v", err)
	}
	s := f.nshare(b, 1)
	if !added(f.pool.AddNotarizationShare(s)) || added(f.pool.AddNotarizationShare(s)) {
		t.Fatal("duplicate share handling wrong")
	}
}

func TestFinalizationFlow(t *testing.T) {
	f := newFixture(t, 4)
	b := f.block(1, 0, f.pool.RootHash(), "x")
	f.notarize(t, b)
	for i := 0; i < 3; i++ {
		if !added(f.pool.AddFinalizationShare(f.fshare(b, types.PartyID(i)))) {
			t.Fatal("finalization share rejected")
		}
	}
	if f.pool.FinalShareCount(b.Hash()) != 3 {
		t.Fatal("final share count wrong")
	}
	agg, ok := f.pool.FinalAggregateIfReady(b.Hash())
	if !ok {
		t.Fatal("finalization shares not ready to combine")
	}
	fin := &types.Finalization{Round: 1, Proposer: 0, BlockHash: b.Hash(), Agg: agg.Encode()}
	if !added(f.pool.AddFinalization(fin)) {
		t.Fatal("finalization rejected")
	}
	if !f.pool.IsFinalized(b.Hash()) {
		t.Fatal("finalized block not finalized")
	}
	dirty := f.pool.DirtyFinalizableRounds()
	if len(dirty) != 1 || dirty[0] != 1 {
		t.Fatalf("dirty rounds = %v, want [1]", dirty)
	}
	if f.pool.DirtyFinalizableRounds() != nil {
		t.Fatal("dirty rounds not cleared")
	}
}

func TestChain(t *testing.T) {
	f := newFixture(t, 4)
	b1 := f.block(1, 0, f.pool.RootHash(), "a")
	f.notarize(t, b1)
	b2 := f.block(2, 1, b1.Hash(), "b")
	f.notarize(t, b2)
	b3 := f.block(3, 2, b2.Hash(), "c")
	f.notarize(t, b3)

	chain := f.pool.Chain(b3.Hash(), 0)
	if len(chain) != 3 || chain[0].Hash() != b1.Hash() || chain[2].Hash() != b3.Hash() {
		t.Fatalf("full chain wrong: %d blocks", len(chain))
	}
	chain = f.pool.Chain(b3.Hash(), 1)
	if len(chain) != 2 || chain[0].Hash() != b2.Hash() {
		t.Fatal("partial chain wrong")
	}
	if f.pool.Chain(b3.Hash(), 3) != nil && len(f.pool.Chain(b3.Hash(), 3)) != 0 {
		t.Fatal("empty chain wrong")
	}
	// Missing ancestor → nil.
	orphan := f.block(5, 0, hash.SumUint64(hash.DomainBlock, 77), "o")
	f.pool.AddBlock(orphan)
	if f.pool.Chain(orphan.Hash(), 0) != nil {
		t.Fatal("chain with missing ancestor should be nil")
	}
}

func TestPrune(t *testing.T) {
	f := newFixture(t, 4)
	b1 := f.block(1, 0, f.pool.RootHash(), "a")
	f.notarize(t, b1)
	b2 := f.block(2, 1, b1.Hash(), "b")
	f.notarize(t, b2)
	b3 := f.block(3, 2, b2.Hash(), "c")
	f.notarize(t, b3)

	f.pool.Prune(3)
	if f.pool.Block(b1.Hash()) != nil || f.pool.Block(b2.Hash()) != nil {
		t.Fatal("pruned blocks still present")
	}
	if f.pool.Block(b3.Hash()) == nil {
		t.Fatal("unpruned block missing")
	}
	// b3's validity was cached before the prune, so it survives.
	if !f.pool.IsNotarized(b3.Hash()) {
		t.Fatal("cached validity lost on prune")
	}
	// Root always survives.
	if !f.pool.IsFinalized(f.pool.RootHash()) {
		t.Fatal("root pruned")
	}
}

func TestVerifyPolicies(t *testing.T) {
	pub, _, err := keys.Deal(rand.Reader, 4)
	if err != nil {
		t.Fatal(err)
	}
	junkNz := func() *types.Notarization {
		return &types.Notarization{Round: 1, Proposer: 0, BlockHash: hash.SumUint64(hash.DomainBlock, 1), Agg: []byte{0}}
	}
	// SharesOnly admits a cryptographically garbage aggregate (the former
	// SkipAggregateVerify behaviour for honest-only simulations).
	p := New(pub, 0, Options{Policy: VerifySharesOnly})
	if !added(p.AddNotarization(junkNz())) {
		t.Fatal("shares-only pool rejected aggregate")
	}
	// Full rejects the same aggregate.
	p = New(pub, 0, Options{Policy: VerifyFull})
	if _, err := p.AddNotarization(junkNz()); !errors.Is(err, crypto.ErrBadAggregate) {
		t.Fatalf("full-verify pool admitted garbage aggregate: err = %v", err)
	}
	// PreVerified admits unsigned shares too, but still rejects
	// structurally malformed input.
	p = New(pub, 0, Options{Policy: VerifyPreVerified})
	if !added(p.AddNotarizationShare(&types.NotarizationShare{Round: 1, Signer: 2})) {
		t.Fatal("pre-verified pool rejected unsigned share")
	}
	if _, err := p.AddNotarizationShare(&types.NotarizationShare{Round: 1, Signer: 9}); err == nil {
		t.Fatal("pre-verified pool admitted out-of-range signer")
	}
}

// stubVerifier counts calls and rejects everything, proving the pool
// consults an injected Verifier rather than its default.
type stubVerifier struct {
	calls int
	err   error
}

func (s *stubVerifier) Authenticator(*types.Authenticator) error         { s.calls++; return s.err }
func (s *stubVerifier) NotarizationShare(*types.NotarizationShare) error { s.calls++; return s.err }
func (s *stubVerifier) Notarization(*types.Notarization) error           { s.calls++; return s.err }
func (s *stubVerifier) FinalizationShare(*types.FinalizationShare) error { s.calls++; return s.err }
func (s *stubVerifier) Finalization(*types.Finalization) error           { s.calls++; return s.err }

func TestInjectedVerifier(t *testing.T) {
	f := newFixture(t, 4)
	sv := &stubVerifier{err: crypto.ErrBadSignature}
	p := New(f.pub, 0, Options{Verifier: sv})
	b := f.block(1, 2, f.pool.RootHash(), "x")
	p.AddBlock(b)
	if _, err := p.AddAuthenticator(f.auth(b)); !errors.Is(err, crypto.ErrBadSignature) {
		t.Fatalf("injected verifier not consulted: err = %v", err)
	}
	if sv.calls != 1 {
		t.Fatalf("verifier calls = %d, want 1", sv.calls)
	}
	// Duplicate suppression runs before the verifier: a second copy of an
	// admitted artifact must not hit the verifier again.
	sv.err = nil
	if !added(p.AddAuthenticator(f.auth(b))) {
		t.Fatal("authenticator rejected by permissive verifier")
	}
	calls := sv.calls
	if added(p.AddAuthenticator(f.auth(b))) {
		t.Fatal("duplicate authenticator admitted twice")
	}
	if sv.calls != calls {
		t.Fatal("duplicate authenticator re-verified")
	}
}

func TestShareRoundMismatchRejected(t *testing.T) {
	f := newFixture(t, 4)
	b := f.block(1, 0, f.pool.RootHash(), "x")
	f.pool.AddBlock(b)
	// A share signing (round 2) for this round-1 block: valid signature
	// over its own claim, but contradicting the block — rejected.
	s := f.nshare(b, 1)
	s.Round = 2
	msg := types.SigningBytes(2, b.Proposer, b.Hash())
	s.Sig = f.privs[1].Notary.Sign(types.DomainNotarization, msg).Signature
	if _, err := f.pool.AddNotarizationShare(s); !errors.Is(err, crypto.Mismatch) {
		t.Fatalf("round-mismatched notarization share: err = %v", err)
	}
	fs := f.fshare(b, 1)
	fs.Round = 2
	fs.Sig = f.privs[1].Final.Sign(types.DomainFinalization, msg).Signature
	if _, err := f.pool.AddFinalizationShare(fs); !errors.Is(err, crypto.Mismatch) {
		t.Fatalf("round-mismatched finalization share: err = %v", err)
	}
}

func TestEquivocatingSharesStayContainedPerBlock(t *testing.T) {
	// A Byzantine party that signs notarization shares for two distinct
	// blocks of the same (round, proposer) — the share-layer face of an
	// equivocating proposer. The pool must keep the conflict contained:
	// each share counts only toward the block hash it names, so neither
	// fork can borrow the other's signers to reach quorum.
	f := newFixture(t, 4)
	a := f.block(1, 0, f.pool.RootHash(), "original")
	b := f.block(1, 0, f.pool.RootHash(), "twin")
	f.pool.AddBlock(a)
	f.pool.AddBlock(b)

	// Party 0 (the equivocator) signs both forks; both are internally
	// valid shares and both are admitted — under their own hashes.
	if !added(f.pool.AddNotarizationShare(f.nshare(a, 0))) {
		t.Fatal("share on fork A rejected")
	}
	if !added(f.pool.AddNotarizationShare(f.nshare(b, 0))) {
		t.Fatal("share on fork B rejected")
	}
	if got := f.pool.NotarShareCount(a.Hash()); got != 1 {
		t.Fatalf("fork A share count = %d, want 1", got)
	}
	if got := f.pool.NotarShareCount(b.Hash()); got != 1 {
		t.Fatalf("fork B share count = %d, want 1", got)
	}

	// Honest signers 1 and 2 only vote for fork A. Fork A reaches the
	// n−t = 3 quorum; fork B stays at the equivocator's lone share.
	f.pool.AddNotarizationShare(f.nshare(a, 1))
	f.pool.AddNotarizationShare(f.nshare(a, 2))
	if _, ok := f.pool.NotarAggregateIfReady(a.Hash()); !ok {
		t.Fatal("fork A should combine with 3 shares")
	}
	if _, ok := f.pool.NotarAggregateIfReady(b.Hash()); ok {
		t.Fatal("fork B combined from 1 share: conflicting shares leaked across hashes")
	}
	// And a cross-fork replay — fork A's share bytes relabelled with fork
	// B's hash — fails signature verification.
	forged := f.nshare(a, 1)
	forged.BlockHash = b.Hash()
	if ok, err := f.pool.AddNotarizationShare(forged); ok || err == nil {
		t.Fatalf("relabelled share admitted (ok=%v err=%v)", ok, err)
	}
}

func TestReadyIndices(t *testing.T) {
	f := newFixture(t, 4) // threshold n−t = 3
	b := f.block(1, 0, f.pool.RootHash(), "x")
	f.pool.AddBlock(b)
	f.pool.AddAuthenticator(f.auth(b))
	h := b.Hash()

	// Below threshold: no candidates, no aggregate.
	for i := 0; i < 2; i++ {
		f.pool.AddNotarizationShare(f.nshare(b, types.PartyID(i)))
	}
	if got := f.pool.NotarReadyBlocks(1); len(got) != 0 {
		t.Fatalf("notar-ready below threshold: %v", got)
	}
	if _, ok := f.pool.NotarAggregateIfReady(h); ok {
		t.Fatal("aggregate produced below threshold")
	}

	// Crossing the threshold registers the block exactly once.
	f.pool.AddNotarizationShare(f.nshare(b, 2))
	f.pool.AddNotarizationShare(f.nshare(b, 3))
	if got := f.pool.NotarReadyBlocks(1); len(got) != 1 || got[0] != h {
		t.Fatalf("notar-ready = %v, want [%x]", got, h[:4])
	}
	agg, ok := f.pool.NotarAggregateIfReady(h)
	if !ok {
		t.Fatal("aggregate not ready at threshold")
	}
	msg := types.SigningBytes(1, 0, h)
	if err := f.pub.Notary.Verify(types.DomainNotarization, msg, agg); err != nil {
		t.Fatalf("pool-combined aggregate does not verify: %v", err)
	}

	// Finalization candidates appear both via the share threshold and via
	// a combined certificate — still deduplicated.
	for i := 0; i < 3; i++ {
		f.pool.AddFinalizationShare(f.fshare(b, types.PartyID(i)))
	}
	fagg, ok := f.pool.FinalAggregateIfReady(h)
	if !ok {
		t.Fatal("final aggregate not ready at threshold")
	}
	fin := &types.Finalization{Round: 1, Proposer: 0, BlockHash: h, Agg: fagg.Encode()}
	if !added(f.pool.AddFinalization(fin)) {
		t.Fatal("finalization rejected")
	}
	if got := f.pool.FinalCandidateBlocks(1); len(got) != 1 || got[0] != h {
		t.Fatalf("final candidates = %v, want exactly [%x]", got, h[:4])
	}
}

func TestForEachShareMessageOrder(t *testing.T) {
	f := newFixture(t, 4)
	b := f.block(1, 0, f.pool.RootHash(), "x")
	f.pool.AddBlock(b)
	h := b.Hash()
	// Insert out of signer order; iteration must be signer-ascending
	// (resync bundles depend on deterministic bytes).
	for _, signer := range []types.PartyID{3, 1, 2} {
		f.pool.AddNotarizationShare(f.nshare(b, signer))
		f.pool.AddFinalizationShare(f.fshare(b, signer))
	}
	var norder, forder []types.PartyID
	f.pool.ForEachNotarShareMessage(h, func(s *types.NotarizationShare) {
		norder = append(norder, s.Signer)
	})
	f.pool.ForEachFinalShareMessage(h, func(s *types.FinalizationShare) {
		forder = append(forder, s.Signer)
	})
	want := []types.PartyID{1, 2, 3}
	for i := range want {
		if norder[i] != want[i] || forder[i] != want[i] {
			t.Fatalf("iteration order notar=%v final=%v, want %v", norder, forder, want)
		}
	}
}

func TestPruneClearsIndices(t *testing.T) {
	f := newFixture(t, 4)
	b1 := f.block(1, 0, f.pool.RootHash(), "a")
	f.notarize(t, b1)
	if _, ok := f.pool.NotarizedInRound(1); !ok {
		t.Fatal("round 1 not notarized")
	}
	b2 := f.block(2, 1, b1.Hash(), "b")
	f.notarize(t, b2)
	f.pool.Prune(2)
	if got := f.pool.NotarReadyBlocks(1); got != nil {
		t.Fatalf("pruned round still notar-ready: %v", got)
	}
	if _, ok := f.pool.NotarizedInRound(1); ok {
		t.Fatal("pruned round still memoized as notarized")
	}
	// Retained round keeps its index; round 0 (root) survives any cut.
	if got := f.pool.NotarReadyBlocks(2); len(got) != 1 {
		t.Fatalf("retained round lost its candidate list: %v", got)
	}
	if _, ok := f.pool.NotarizedInRound(0); !ok {
		t.Fatal("root round lost notarization")
	}
}
