package beacon

import (
	"icc/internal/types"
)

// DefaultShareCacheSize bounds the own-share cache when the owner does
// not choose a size. Sized to cover a deep catch-up window (several
// ResyncBatch batches) with room to spare; one cached share is a round
// number plus ~100 bytes of encoded share material.
const DefaultShareCacheSize = 1024

// shareCache is a bounded LRU of this party's own beacon shares, keyed
// by round. Threshold share signing is a from-scratch EC scalar
// multiplication (milliseconds), yet a party is asked for the same
// shares over and over: once when it enters a round, and then once per
// lagging peer per catch-up batch that covers the round. The cache makes
// every request after the first a map lookup.
//
// It is NOT safe for concurrent use; the owning beacon serialises
// access under its own lock.
type shareCache struct {
	cap     int
	entries map[types.Round]*shareEntry
	// Intrusive doubly-linked LRU list; head = most recent.
	head, tail *shareEntry
}

type shareEntry struct {
	round      types.Round
	share      *types.BeaconShare
	prev, next *shareEntry
}

// newShareCache builds a cache with the given capacity: 0 selects
// DefaultShareCacheSize, negative disables caching entirely (every get
// misses, every put is dropped).
func newShareCache(capacity int) *shareCache {
	if capacity == 0 {
		capacity = DefaultShareCacheSize
	}
	if capacity < 0 {
		capacity = 0
	}
	return &shareCache{cap: capacity, entries: make(map[types.Round]*shareEntry)}
}

// get returns the cached share for round k, refreshing its recency. The
// returned value is a shallow copy: callers own and may mutate the
// struct (the share bytes stay shared and are treated as immutable).
func (c *shareCache) get(k types.Round) (*types.BeaconShare, bool) {
	e, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.moveToFront(e)
	cp := *e.share
	return &cp, true
}

// put inserts (or refreshes) the share for round k, evicting the least
// recently used entry when full. A shallow copy is stored so later
// mutation of the caller's struct cannot corrupt the cache.
func (c *shareCache) put(k types.Round, sh *types.BeaconShare) {
	if c.cap == 0 {
		return
	}
	cp := *sh
	if e, ok := c.entries[k]; ok {
		e.share = &cp
		c.moveToFront(e)
		return
	}
	if len(c.entries) >= c.cap {
		c.evict(c.tail)
	}
	e := &shareEntry{round: k, share: &cp}
	c.entries[k] = e
	c.pushFront(e)
}

// pruneBefore drops every entry for a round below the watermark.
func (c *shareCache) pruneBefore(before types.Round) {
	for e := c.tail; e != nil; {
		prev := e.prev
		if e.round < before {
			c.evict(e)
		}
		e = prev
	}
}

// len reports the number of cached shares.
func (c *shareCache) len() int { return len(c.entries) }

func (c *shareCache) pushFront(e *shareEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *shareCache) unlink(e *shareEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *shareCache) moveToFront(e *shareEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *shareCache) evict(e *shareEntry) {
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.entries, e.round)
}
