// Command icckeygen acts as the trusted dealer of paper §3.1: it
// generates the full key material for an n-party cluster and writes it
// to a directory — public.json (shared by everyone) plus one
// party<i>.json secret file per party — for consumption by cmd/iccnode.
package main

import (
	"crypto/rand"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/keys"
)

func main() {
	n := flag.Int("n", 4, "number of parties")
	dir := flag.String("dir", "icc-keys", "output directory")
	scheme := flag.String("cert-scheme", "multisig", "certificate aggregate-signature scheme: multisig or bls")
	flag.Parse()

	if err := run(*n, *dir, *scheme); err != nil {
		fmt.Fprintf(os.Stderr, "icckeygen: %v\n", err)
		os.Exit(1)
	}
}

func run(n int, dir, scheme string) error {
	id, err := aggsig.ParseSchemeID(scheme)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	pub, privs, err := keys.DealScheme(rand.Reader, n, id)
	if err != nil {
		return fmt.Errorf("dealing keys: %w", err)
	}
	if err := writeJSON(filepath.Join(dir, "public.json"), pub, 0o644); err != nil {
		return err
	}
	for i := range privs {
		name := filepath.Join(dir, fmt.Sprintf("party%d.json", i))
		if err := writeJSON(name, &privs[i], 0o600); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s key material for %d parties (t=%d tolerated faults) to %s/\n", pub.CertScheme(), n, pub.T, dir)
	return nil
}

func writeJSON(path string, v interface{}, perm os.FileMode) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, raw, perm); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
