package keys

import (
	"crypto/rand"
	"encoding/json"
	"testing"

	"icc/internal/crypto/thresig"
	"icc/internal/types"
)

func TestDealShapes(t *testing.T) {
	pub, privs, err := Deal(rand.Reader, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pub.N != 7 || pub.T != 2 {
		t.Fatalf("n=%d t=%d, want 7, 2", pub.N, pub.T)
	}
	if len(pub.Auth) != 7 || len(privs) != 7 {
		t.Fatal("key slices wrong length")
	}
	if pub.Notary.Threshold != 5 || pub.Final.Threshold != 5 {
		t.Fatalf("notary/final thresholds %d/%d, want 5", pub.Notary.Threshold, pub.Final.Threshold)
	}
	if pub.Beacon.Threshold != 3 {
		t.Fatalf("beacon threshold %d, want 3", pub.Beacon.Threshold)
	}
	if len(pub.GenesisSeed) == 0 {
		t.Fatal("missing genesis seed")
	}
}

func TestDealRejectsBadN(t *testing.T) {
	if _, _, err := Deal(rand.Reader, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestKeysAreUsable(t *testing.T) {
	pub, privs, err := Deal(rand.Reader, 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello")
	// Auth.
	s := privs[2].Notary.Sign(types.DomainNotarization, msg)
	if err := pub.Notary.VerifyShare(types.DomainNotarization, msg, s); err != nil {
		t.Fatalf("notary share: %v", err)
	}
	// Beacon: all four shares sign, any 2 combine to same signature.
	shares := make([]*thresig.SigShare, 4)
	for i := range shares {
		shares[i], err = thresig.Sign(rand.Reader, privs[i].Beacon, msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Beacon.VerifyShare(msg, shares[i]); err != nil {
			t.Fatalf("beacon share %d: %v", i, err)
		}
	}
	s1, err := pub.Beacon.Combine(msg, shares[:2])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pub.Beacon.Combine(msg, shares[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Point.Equal(s2.Point) {
		t.Fatal("beacon signature not unique")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	pub, privs, err := Deal(rand.Reader, 4)
	if err != nil {
		t.Fatal(err)
	}
	pubRaw, err := json.Marshal(pub)
	if err != nil {
		t.Fatal(err)
	}
	var pub2 Public
	if err := json.Unmarshal(pubRaw, &pub2); err != nil {
		t.Fatal(err)
	}
	privRaw, err := json.Marshal(&privs[1])
	if err != nil {
		t.Fatal(err)
	}
	var priv2 Private
	if err := json.Unmarshal(privRaw, &priv2); err != nil {
		t.Fatal(err)
	}
	// The round-tripped material must interoperate with the original:
	// a beacon share signed with the decoded secret must verify under the
	// original public info, and vice versa.
	msg := []byte("round trip")
	share, err := thresig.Sign(rand.Reader, priv2.Beacon, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Beacon.VerifyShare(msg, share); err != nil {
		t.Fatalf("decoded private key unusable: %v", err)
	}
	origShare, err := thresig.Sign(rand.Reader, privs[0].Beacon, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub2.Beacon.VerifyShare(msg, origShare); err != nil {
		t.Fatalf("decoded public info unusable: %v", err)
	}
	// Multisig keys interoperate too.
	ms := priv2.Notary.Sign(types.DomainNotarization, msg)
	if err := pub2.Notary.VerifyShare(types.DomainNotarization, msg, ms); err != nil {
		t.Fatalf("decoded notary material unusable: %v", err)
	}
	if pub2.N != pub.N || pub2.T != pub.T {
		t.Fatal("parameters lost in round trip")
	}
}
