package experiments

import (
	"fmt"
	"sort"
	"time"

	"icc/internal/harness"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

// MessageComplexity reproduces the §1 message-complexity claims
// (experiment E3): in synchronous rounds the expected message complexity
// is O(n²); the protocol's worst case is O(n³). The sweep measures mean
// per-round messages sent by honest parties for growing n, in an
// all-honest synchronous network and under a t-corrupt adversary that
// triggers the multi-proposal path (silent leaders force rank-1+
// proposals and extra echoes).
func MessageComplexity(scale Scale) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "per-round message complexity vs n (paper: O(n²) expected in synchronous rounds, O(n³) worst case)",
		Columns: []string{"n", "honest msgs/round", "msgs/n²", "t-corrupt msgs/round", "msgs/n²"},
		Notes: []string{
			"a flat msgs/n² column is the O(n²) signature; the corrupt column grows by a bounded factor (extra echoes), far below n³",
		},
	}
	blocks := scale.scaleInt(60)
	for _, n := range []int{4, 7, 13, 19, 31} {
		honest := meanRoundMsgs(n, nil, blocks)
		tf := types.MaxFaults(n)
		behaviors := make(map[types.PartyID]harness.Behavior, tf)
		for i := 0; i < tf; i++ {
			behaviors[types.PartyID(i)] = harness.SilentLeader
		}
		corrupt := meanRoundMsgs(n, behaviors, blocks)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", honest),
			fmt.Sprintf("%.2f", honest/float64(n*n)),
			fmt.Sprintf("%.0f", corrupt),
			fmt.Sprintf("%.2f", corrupt/float64(n*n)),
		)
	}
	return t
}

func meanRoundMsgs(n int, behaviors map[types.PartyID]harness.Behavior, blocks int) float64 {
	c, err := harness.New(harness.Options{
		N:          n,
		Seed:       int64(3000 + n),
		Delay:      simnet.Fixed{D: 10 * time.Millisecond},
		DeltaBound: 50 * time.Millisecond,
		Behaviors:  behaviors,
		SimBeacon:  true,
		Verify:     pool.VerifySharesOnly,
		PruneDepth: simPruneDepth,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	c.Start()
	c.RunUntilCommitted(blocks, time.Hour)
	return c.Rec.Summarize().MeanRoundMsgs
}

// RoundComplexity reproduces the §1 round-complexity claim (experiment
// E4): the number of rounds until a block is committed is O(1) in
// expectation for a static adversary — the gap between consecutive
// finalized rounds is roughly geometric with success probability ≥ 2/3
// (a round finalizes when its leader behaves and the network cooperates).
func RoundComplexity(scale Scale) *Table {
	const n = 13
	tf := types.MaxFaults(n)
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("finalization gap distribution, n=%d with t=%d corrupt (silent + equivocating), jittered delays", n, tf),
		Columns: []string{"gap (rounds)", "count", "fraction", "geometric(2/3) reference"},
		Notes: []string{
			"gap g means a round's decision arrived g rounds later (Fig. 2 outputs the backlog at once)",
			"paper: O(1) expected rounds to commit; eventually one block commits for every round",
			"delays are jittered: with deterministic delays the rank-1 fallback finalizes every round and all gaps are 0",
		},
	}
	behaviors := make(map[types.PartyID]harness.Behavior, tf)
	for i := 0; i < tf; i++ {
		if i%2 == 0 {
			behaviors[types.PartyID(i)] = harness.SilentLeader
		} else {
			behaviors[types.PartyID(i)] = harness.Equivocator
		}
	}
	c, err := harness.New(harness.Options{
		N:          n,
		Seed:       4001,
		Delay:      simnet.Uniform{Min: 5 * time.Millisecond, Max: 35 * time.Millisecond},
		DeltaBound: 40 * time.Millisecond,
		Behaviors:  behaviors,
		SimBeacon:  true,
		Verify:     pool.VerifySharesOnly,
		PruneDepth: 2 * simPruneDepth,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	rounds := scale.scaleInt(2000)
	c.Start()
	c.RunUntilCommitted(rounds, 10*time.Hour)
	// Derive gaps from one honest party's commit log: blocks sharing a
	// commit timestamp were output by one finalization (Fig. 2), and the
	// highest round in the batch is the finalizing round. The gap of
	// round k is (finalizing round − k).
	honest := c.HonestParties()
	seq := c.Committed(honest[0])
	at := c.CommittedAt(honest[0])
	gapCount := map[int]int{}
	total := 0
	for i := 0; i < len(seq); {
		j := i
		for j+1 < len(seq) && at[j+1] == at[i] {
			j++
		}
		finalRound := seq[j].Round
		for k := i; k <= j; k++ {
			gapCount[int(finalRound-seq[k].Round)]++
			total++
		}
		i = j + 1
	}
	gaps := make([]int, 0, len(gapCount))
	for g := range gapCount {
		gaps = append(gaps, g)
	}
	sort.Ints(gaps)
	p := 2.0 / 3.0
	for _, g := range gaps {
		ref := p
		for i := 0; i < g; i++ {
			ref *= 1 - p
		}
		t.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%d", gapCount[g]),
			fmt.Sprintf("%.3f", float64(gapCount[g])/float64(total)),
			fmt.Sprintf("%.3f", ref))
	}
	return t
}

// Robustness reproduces the robust-consensus argument of §1 ([15];
// experiment E5, generalising Table 1 scenario (iii)): as the fraction
// of corrupt parties grows to t/n, throughput degrades gracefully —
// rounds led by corrupt parties finish in O(Δbnd) instead of O(δ), and
// every round still commits eventually.
func Robustness(scale Scale) *Table {
	const n = 13
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("graceful degradation, n=%d, δ=10ms, Δbnd=50ms", n),
		Columns: []string{"corrupt parties", "behavior", "blocks/s", "mean round time", "relative throughput"},
		Notes:   []string{"paper: performance degrades to O(Δbnd) rounds under corrupt leaders, never to zero ([15]'s robustness)"},
	}
	blocks := scale.scaleInt(300)
	var baselineRate float64
	for _, bad := range []int{0, 1, 2, 4} {
		for _, kind := range []harness.Behavior{harness.SilentLeader, harness.Equivocator} {
			if bad == 0 && kind == harness.Equivocator {
				continue
			}
			behaviors := make(map[types.PartyID]harness.Behavior, bad)
			for i := 0; i < bad; i++ {
				behaviors[types.PartyID(i)] = kind
			}
			c, err := harness.New(harness.Options{
				N:          n,
				Seed:       5000 + int64(bad)*10 + int64(kind),
				Delay:      simnet.Fixed{D: 10 * time.Millisecond},
				DeltaBound: 50 * time.Millisecond,
				Behaviors:  behaviors,
				SimBeacon:  true,
				Verify:     pool.VerifySharesOnly,
				PruneDepth: simPruneDepth,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			c.Start()
			c.RunUntilCommitted(blocks, time.Hour)
			if err := c.CheckSafety(); err != nil {
				panic(fmt.Sprintf("robustness run violated safety: %v", err))
			}
			s := c.Rec.Summarize()
			elapsed := c.Net.Now().Seconds()
			rate := float64(s.CommittedBlocks) / elapsed
			if bad == 0 {
				baselineRate = rate
			}
			name := "silent leader"
			if kind == harness.Equivocator {
				name = "equivocator"
			}
			if bad == 0 {
				name = "-"
			}
			t.AddRow(fmt.Sprintf("%d/%d", bad, n), name,
				fmt.Sprintf("%.1f", rate),
				s.MeanRoundTime.Round(time.Millisecond/10).String(),
				fmt.Sprintf("%.0f%%", 100*rate/baselineRate))
			if bad == 0 {
				break
			}
		}
	}
	return t
}
