package metrics

import (
	"sync"
	"testing"
	"time"

	"icc/internal/types"
)

func TestSendAccounting(t *testing.T) {
	r := NewRecorder(3)
	r.Send(0, 1, 2, 100) // party 0, round 1, 2 recipients of 100 bytes
	r.Send(1, 1, 1, 50)
	r.Send(0, 2, 2, 10)
	if r.PartyBytes(0) != 220 || r.PartyBytes(1) != 50 {
		t.Fatalf("bytes: %d, %d", r.PartyBytes(0), r.PartyBytes(1))
	}
	if r.PartyMsgs(0) != 4 || r.PartyMsgs(1) != 1 {
		t.Fatalf("msgs: %d, %d", r.PartyMsgs(0), r.PartyMsgs(1))
	}
	if r.RoundMsgs(1) != 3 || r.RoundMsgs(2) != 2 {
		t.Fatalf("round msgs: %d, %d", r.RoundMsgs(1), r.RoundMsgs(2))
	}
	s := r.Summarize()
	if s.TotalBytes != 270 || s.TotalMsgs != 5 {
		t.Fatalf("summary totals: %d bytes, %d msgs", s.TotalBytes, s.TotalMsgs)
	}
	if s.MaxPartyBytes != 220 || s.MaxPartyMsgs != 4 {
		t.Fatalf("summary maxima: %d, %d", s.MaxPartyBytes, s.MaxPartyMsgs)
	}
	if s.MaxRoundMsgs != 3 || s.MeanRoundMsgs != 2.5 {
		t.Fatalf("round stats: %d, %f", s.MaxRoundMsgs, s.MeanRoundMsgs)
	}
}

func TestLatencyTracking(t *testing.T) {
	r := NewRecorder(2)
	r.Propose(1, 100*time.Millisecond)
	r.Propose(1, 90*time.Millisecond) // earlier propose wins
	r.Commit(1, 512, 150*time.Millisecond)
	r.Commit(1, 512, 200*time.Millisecond) // later commit ignored
	lat, ok := r.CommitLatency(1)
	if !ok || lat != 60*time.Millisecond {
		t.Fatalf("latency %v ok=%v", lat, ok)
	}
	if _, ok := r.CommitLatency(9); ok {
		t.Fatal("latency for unknown round")
	}
	s := r.Summarize()
	if s.CommittedBlocks != 1 || s.CommittedBytes != 512 {
		t.Fatalf("commit counters: %d, %d", s.CommittedBlocks, s.CommittedBytes)
	}
	if s.MeanLatency != 60*time.Millisecond || s.P50Latency != 60*time.Millisecond {
		t.Fatalf("latency summary: %v / %v", s.MeanLatency, s.P50Latency)
	}
}

func TestRoundTimeFromFinishes(t *testing.T) {
	r := NewRecorder(1)
	r.FinishRound(1, 100*time.Millisecond)
	r.FinishRound(2, 120*time.Millisecond)
	r.FinishRound(3, 140*time.Millisecond)
	s := r.Summarize()
	if s.MeanRoundTime != 20*time.Millisecond {
		t.Fatalf("mean round time %v", s.MeanRoundTime)
	}
}

func TestEnterRoundKeepsEarliest(t *testing.T) {
	r := NewRecorder(1)
	r.EnterRound(5, 50*time.Millisecond)
	r.EnterRound(5, 40*time.Millisecond)
	r.EnterRound(5, 60*time.Millisecond)
	// No direct getter; verified indirectly through no panic and the
	// summary still computing.
	_ = r.Summarize()
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder(4)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Send(types.PartyID(p), types.Round(i%10), 3, 64)
				r.FinishRound(types.Round(i%10), time.Duration(i)*time.Millisecond)
			}
		}()
	}
	wg.Wait()
	s := r.Summarize()
	if s.TotalMsgs != 4*500*3 {
		t.Fatalf("lost sends: %d", s.TotalMsgs)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewRecorder(2).Summarize()
	if s.TotalBytes != 0 || s.MeanLatency != 0 || s.MeanRoundTime != 0 {
		t.Fatal("empty recorder produced non-zero summary")
	}
}
