// Command iccbench regenerates the paper's evaluation artifacts
// (Table 1 and the analytical-claim figures; DESIGN.md §3) at full
// scale and prints them as text tables. EXPERIMENTS.md records the
// output of a complete run.
//
// Usage:
//
//	iccbench                 # run every experiment
//	iccbench -exp table1     # one experiment
//	iccbench -scale 0.1      # shrink simulated windows 10x
//	iccbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"icc/internal/experiments"
)

var registry = map[string]func(experiments.Scale) *experiments.Table{
	"table1":         experiments.Table1,
	"latency":        experiments.LatencyThroughput,
	"msgcomplexity":  experiments.MessageComplexity,
	"rounds":         experiments.RoundComplexity,
	"robustness":     experiments.Robustness,
	"responsiveness": experiments.Responsiveness,
	"dissemination":  experiments.Dissemination,
	"baselines":      experiments.Baselines,
	"ablation":       experiments.AblationDelays,
	"weakadaptive":   experiments.WeakAdaptiveAdversary,
	"fragility":      experiments.PBFTFragility,
}

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all)")
	scale := flag.Float64("scale", 1.0, "scale factor for simulated windows (0 < s <= 1)")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)

	if *list {
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	run := names
	if *exp != "" {
		if _, ok := registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", *exp, strings.Join(names, ", "))
			os.Exit(1)
		}
		run = []string{*exp}
	}
	for _, name := range run {
		start := time.Now()
		table := registry[name](experiments.Scale(*scale))
		fmt.Println(table.String())
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
