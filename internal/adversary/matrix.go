package adversary

import (
	"time"

	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/engine"
	"icc/internal/types"
)

// TimedFilter is a now-aware Filter: Transform additionally sees the
// current protocol time and may postpone outputs via Delay instead of
// dropping or passing them. Held outputs are released the next time the
// engine is driven at or after their due time, and NextWake accounts for
// them so a host that honours the engine contract always drives the
// wrapper in time. It is the chassis for the time-dependent behaviours
// of the adversary matrix (threshold withholding with a rejoin time,
// colluding share delays).
type TimedFilter struct {
	Inner     engine.Engine
	Transform func(o engine.Output, now time.Duration) []engine.Output

	held []timedOutput
}

type timedOutput struct {
	at  time.Duration
	out engine.Output
}

// Delay schedules o for release at time at (a Transform callback helper).
func (f *TimedFilter) Delay(at time.Duration, o engine.Output) {
	f.held = append(f.held, timedOutput{at: at, out: o})
}

// release returns the held outputs due by now, keeping the rest.
func (f *TimedFilter) release(now time.Duration) []engine.Output {
	var ready []engine.Output
	rest := f.held[:0]
	for _, h := range f.held {
		if h.at <= now {
			ready = append(ready, h.out)
		} else {
			rest = append(rest, h)
		}
	}
	f.held = rest
	return ready
}

func (f *TimedFilter) apply(outs []engine.Output, now time.Duration) []engine.Output {
	res := f.release(now)
	for _, o := range outs {
		res = append(res, f.Transform(o, now)...)
	}
	return res
}

// ID implements engine.Engine.
func (f *TimedFilter) ID() types.PartyID { return f.Inner.ID() }

// Init implements engine.Engine.
func (f *TimedFilter) Init(now time.Duration) []engine.Output {
	return f.apply(f.Inner.Init(now), now)
}

// HandleMessage implements engine.Engine.
func (f *TimedFilter) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	return f.apply(f.Inner.HandleMessage(from, m, now), now)
}

// Tick implements engine.Engine.
func (f *TimedFilter) Tick(now time.Duration) []engine.Output {
	return f.apply(f.Inner.Tick(now), now)
}

// NextWake implements engine.Engine: the earlier of the inner engine's
// wake and the earliest held output's due time.
func (f *TimedFilter) NextWake(now time.Duration) (time.Duration, bool) {
	at, ok := f.Inner.NextWake(now)
	for _, h := range f.held {
		if !ok || h.at < at {
			at, ok = h.at, true
		}
	}
	return at, ok
}

// CurrentRound implements engine.Engine.
func (f *TimedFilter) CurrentRound() types.Round { return f.Inner.CurrentRound() }

var _ engine.Engine = (*TimedFilter)(nil)

// WithholdOptions selects which of the party's own signature shares a
// ShareWithholder suppresses, and for how long.
type WithholdOptions struct {
	// Notar withholds the party's own notarization shares — starving the
	// n−t notarization quorum when enough parties do it together.
	Notar bool
	// Final withholds the party's own finalization shares — the quorum
	// pinned exactly at the n−t threshold boundary: t withholders leave
	// the quorum intact, t+1 stall finalization while notarization (and
	// hence chain growth) continues.
	Final bool
	// Until, if positive, is when the party rejoins and shares normally
	// again. Zero withholds for the whole run.
	Until time.Duration
}

// NewShareWithholder wraps an honest engine so its own signature shares
// never leave the process while withholding is active. Everything else —
// proposals, relayed artifacts, other parties' shares — flows untouched,
// so the party looks alive and merely "unlucky". Two side channels are
// closed along with the direct one, because either would silently defeat
// the threshold-boundary experiments:
//
//   - shares the inner engine packs into resync Bundles or gossip
//     ShareBundles (the stall detector re-broadcasts pool contents);
//   - combined certificates of the withheld kind. The engine inserts its
//     own broadcasts into its own pool regardless of what leaves the
//     process, so a withholder whose pool holds n−t−1 honest shares plus
//     its own still assembles a certificate locally — and broadcasting
//     that certificate publishes the withheld share's contribution in
//     aggregate form. (Honest parties can re-derive any certificate that
//     is legitimately reachable without this party's share.)
//
// Note the rejoin semantics: shares produced while withholding are
// dropped, not queued, so after Until the quorum recovers through new
// rounds (finalizing any later round commits the whole stalled prefix,
// Fig. 2), not through delivery of the old shares.
func NewShareWithholder(inner engine.Engine, o WithholdOptions) engine.Engine {
	self := inner.ID()
	active := func(now time.Duration) bool { return o.Until <= 0 || now < o.Until }
	dropMsg := func(m types.Message) bool {
		switch s := m.(type) {
		case *types.NotarizationShare:
			return o.Notar && s.Signer == self
		case *types.FinalizationShare:
			return o.Final && s.Signer == self
		case *types.Notarization:
			return o.Notar
		case *types.Finalization:
			return o.Final
		}
		return false
	}
	return &TimedFilter{
		Inner: inner,
		Transform: func(out engine.Output, now time.Duration) []engine.Output {
			if !active(now) {
				return []engine.Output{out}
			}
			switch m := out.Msg.(type) {
			case *types.Bundle:
				kept := make([]types.Message, 0, len(m.Messages))
				for _, sub := range m.Messages {
					if !dropMsg(sub) {
						kept = append(kept, sub)
					}
				}
				if len(kept) != len(m.Messages) {
					if len(kept) == 0 {
						return nil
					}
					out.Msg = &types.Bundle{Messages: kept, Resync: m.Resync}
				}
			case *types.ShareBundle:
				out.Msg = stripShareBundle(m, self, o)
			default:
				if dropMsg(out.Msg) {
					return nil
				}
			}
			return []engine.Output{out}
		},
	}
}

// stripShareBundle removes self's own shares from the withheld sections
// of a gossip share bundle, leaving relayed shares intact.
func stripShareBundle(b *types.ShareBundle, self types.PartyID, o WithholdOptions) *types.ShareBundle {
	strip := func(groups []types.ShareGroup, enabled bool) []types.ShareGroup {
		if !enabled {
			return groups
		}
		res := make([]types.ShareGroup, 0, len(groups))
		for i := range groups {
			g := groups[i]
			signers := make([]types.PartyID, 0, len(g.Signers))
			sigs := make([][]byte, 0, len(g.Sigs))
			for j, s := range g.Signers {
				if s == self {
					continue
				}
				signers = append(signers, s)
				sigs = append(sigs, g.Sigs[j])
			}
			if len(signers) == 0 {
				continue
			}
			g.Signers, g.Sigs = signers, sigs
			res = append(res, g)
		}
		return res
	}
	return &types.ShareBundle{
		Notar:  strip(b.Notar, o.Notar),
		Final:  strip(b.Final, o.Final),
		Beacon: b.Beacon,
	}
}

// ClockSkew wraps an engine whose local clock runs Skew ahead of (or,
// negative, behind) protocol time: every timestamp the host passes in is
// shifted through clock.Skewed before the inner engine sees it, and wake
// requests are converted back to host time. The party is not Byzantine —
// it follows the protocol faithfully against a wrong clock — but its
// Δprop/Δntry windows open early or late, the failure mode the paper's
// loosely-synchronised-clocks assumption (§1) admits in practice.
type ClockSkew struct {
	Inner engine.Engine
	Skew  time.Duration
}

// NewClockSkew wraps inner with a constant clock offset.
func NewClockSkew(inner engine.Engine, skew time.Duration) *ClockSkew {
	return &ClockSkew{Inner: inner, Skew: skew}
}

// local converts host time to the party's skewed local time.
func (c *ClockSkew) local(now time.Duration) time.Duration {
	return clock.Skewed{Inner: clock.At(now), Offset: c.Skew}.Now()
}

// ID implements engine.Engine.
func (c *ClockSkew) ID() types.PartyID { return c.Inner.ID() }

// Init implements engine.Engine.
func (c *ClockSkew) Init(now time.Duration) []engine.Output {
	return c.Inner.Init(c.local(now))
}

// HandleMessage implements engine.Engine.
func (c *ClockSkew) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	return c.Inner.HandleMessage(from, m, c.local(now))
}

// Tick implements engine.Engine.
func (c *ClockSkew) Tick(now time.Duration) []engine.Output {
	return c.Inner.Tick(c.local(now))
}

// NextWake implements engine.Engine: the inner engine answers in its own
// timebase, so the wake is shifted back into host time (clamped to now —
// a behind-clock party whose window already opened wakes immediately).
func (c *ClockSkew) NextWake(now time.Duration) (time.Duration, bool) {
	at, ok := c.Inner.NextWake(c.local(now))
	if !ok {
		return 0, false
	}
	at -= c.Skew
	if at < now {
		at = now
	}
	return at, true
}

// CurrentRound implements engine.Engine.
func (c *ClockSkew) CurrentRound() types.Round { return c.Inner.CurrentRound() }

var _ engine.Engine = (*ClockSkew)(nil)

// Collusion is the shared membership roster of a colluding cartel; every
// RankAbuser holds the same instance so each member can recognise the
// others' artifacts. Membership is fixed at construction (the static
// adversary of the paper's model), so reads are safe from any party.
type Collusion struct {
	members map[types.PartyID]bool
}

// NewCollusion returns a cartel with the given members.
func NewCollusion(members ...types.PartyID) *Collusion {
	m := make(map[types.PartyID]bool, len(members))
	for _, p := range members {
		m[p] = true
	}
	return &Collusion{members: m}
}

// Member reports whether p belongs to the cartel.
func (c *Collusion) Member(p types.PartyID) bool { return c != nil && c.members[p] }

// NewRankAbuser wraps an honest engine in a cartel's rank-permutation
// abuse: the member proposes nothing when the beacon ranks it leader
// (forcing honest parties down the Δntry fallback ladder every round a
// member leads), votes promptly for cartel proposals, and sits on its
// own notarization shares for honest proposals for shareDelay before
// releasing them. The combination maximises the rounds where a cartel
// rank wins the fallback race without ever producing a conspicuously
// invalid artifact — the "consistent failure" end of §3.1's taxonomy
// applied to the rank permutation.
func NewRankAbuser(inner *core.Engine, coll *Collusion, shareDelay time.Duration) engine.Engine {
	self := inner.ID()
	tf := &TimedFilter{Inner: inner}
	tf.Transform = func(o engine.Output, now time.Duration) []engine.Output {
		if _, _, own := isOwnProposal(self, o); own {
			return nil
		}
		if s, ok := o.Msg.(*types.NotarizationShare); ok &&
			s.Signer == self && !coll.Member(s.Proposer) && shareDelay > 0 {
			tf.Delay(now+shareDelay, o)
			return nil
		}
		return []engine.Output{o}
	}
	return tf
}
