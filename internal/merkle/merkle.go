// Package merkle implements Merkle trees with inclusion proofs over a
// fixed leaf set. ICC2's reliable-broadcast subprotocol commits to the n
// erasure-coded fragments of a block with a Merkle root, and each
// fragment travels with its inclusion proof, so receivers verify
// fragments individually before echoing them.
package merkle

import (
	"encoding/binary"
	"errors"
	"fmt"

	"icc/internal/crypto/hash"
)

// Tree is a Merkle tree over a fixed number of leaves, padded to a power
// of two with a domain-separated empty-leaf digest.
type Tree struct {
	leafCount int
	// levels[0] is the padded leaf level; levels[len-1] is [root].
	levels [][]hash.Digest
}

// ErrBadProof is returned when proof verification fails structurally.
var ErrBadProof = errors.New("merkle: invalid proof")

// leafDigest binds the leaf data to its index, preventing a proof for
// leaf i from verifying at position j.
func leafDigest(index int, data []byte) hash.Digest {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(index))
	return hash.Sum(hash.DomainMerkleLeaf, idx[:], data)
}

// emptyLeaf is the padding digest for positions past the leaf count.
func emptyLeaf() hash.Digest {
	return hash.Sum(hash.DomainMerkleLeaf, []byte("merkle-padding"))
}

func inner(l, r hash.Digest) hash.Digest {
	return hash.Sum(hash.DomainMerkleInner, l[:], r[:])
}

// New builds a tree over the given leaves.
func New(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, errors.New("merkle: no leaves")
	}
	size := 1
	for size < len(leaves) {
		size <<= 1
	}
	level := make([]hash.Digest, size)
	for i, leaf := range leaves {
		level[i] = leafDigest(i, leaf)
	}
	pad := emptyLeaf()
	for i := len(leaves); i < size; i++ {
		level[i] = pad
	}
	t := &Tree{leafCount: len(leaves), levels: [][]hash.Digest{level}}
	for len(level) > 1 {
		next := make([]hash.Digest, len(level)/2)
		for i := range next {
			next[i] = inner(level[2*i], level[2*i+1])
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() hash.Digest { return t.levels[len(t.levels)-1][0] }

// LeafCount returns the number of real (unpadded) leaves.
func (t *Tree) LeafCount() int { return t.leafCount }

// Proof returns the sibling path for leaf index i, bottom-up.
func (t *Tree) Proof(i int) ([]hash.Digest, error) {
	if i < 0 || i >= t.leafCount {
		return nil, fmt.Errorf("merkle: leaf index %d out of range", i)
	}
	proof := make([]hash.Digest, 0, len(t.levels)-1)
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		proof = append(proof, t.levels[lvl][idx^1])
		idx >>= 1
	}
	return proof, nil
}

// Verify checks that data is the leaf at position index of a tree with
// the given root and total leaf count, using the sibling path proof.
func Verify(root hash.Digest, data []byte, index, leafCount int, proof []hash.Digest) error {
	if index < 0 || index >= leafCount || leafCount < 1 {
		return fmt.Errorf("%w: index out of range", ErrBadProof)
	}
	size := 1
	depth := 0
	for size < leafCount {
		size <<= 1
		depth++
	}
	if len(proof) != depth {
		return fmt.Errorf("%w: proof length %d, want %d", ErrBadProof, len(proof), depth)
	}
	acc := leafDigest(index, data)
	idx := index
	for _, sib := range proof {
		if idx&1 == 0 {
			acc = inner(acc, sib)
		} else {
			acc = inner(sib, acc)
		}
		idx >>= 1
	}
	if acc != root {
		return fmt.Errorf("%w: root mismatch", ErrBadProof)
	}
	return nil
}
