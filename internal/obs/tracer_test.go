package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Party: i, Kind: KindRoundEntered, Round: uint64(i)})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	// Oldest-first: rounds 6..9 survive.
	for i, e := range events {
		if e.Round != uint64(6+i) {
			t.Fatalf("events[%d].Round = %d, want %d (all: %+v)", i, e.Round, 6+i, events)
		}
	}
}

func TestTracerStampsWallClock(t *testing.T) {
	tr := NewTracer(2)
	before := time.Now()
	tr.Record(Event{Kind: KindCommitted})
	e := tr.Events()[0]
	if e.Wall.Before(before) || e.Wall.After(time.Now()) {
		t.Fatalf("wall %v not stamped at record time", e.Wall)
	}
	explicit := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	tr.Record(Event{Kind: KindCommitted, Wall: explicit})
	if got := tr.Events()[1].Wall; !got.Equal(explicit) {
		t.Fatalf("explicit wall clobbered: %v", got)
	}
}

func TestTracerWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Party: 1, Kind: KindCommitted, Round: 5, Detail: "64 payload bytes"})
	tr.Record(Event{Party: -1, Kind: KindTransportFault, Detail: "send_error"})
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want header + 2 events: %q", len(lines), b.String())
	}
	var h Header
	if err := json.Unmarshal([]byte(lines[0]), &h); err != nil || !h.TraceHeader {
		t.Fatalf("line 0 is not a trace header: %v (%s)", err, lines[0])
	}
	if h.Total != 2 || h.Retained != 2 || h.Dropped != 0 || h.Cap != 8 {
		t.Fatalf("header accounting wrong: %+v", h)
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("line 1 not valid JSON: %v", err)
	}
	if e.Party != 1 || e.Kind != KindCommitted || e.Round != 5 || e.Detail != "64 payload bytes" {
		t.Fatalf("round-tripped event wrong: %+v", e)
	}
	// Round omitted when zero.
	if strings.Contains(lines[2], `"round"`) {
		t.Fatalf("zero round serialised: %s", lines[2])
	}
}

func TestTracerHeaderCountsDrops(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{Party: i, Kind: KindRoundEntered})
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	var b strings.Builder
	if err := tr.WriteJSONLMeta(&b, map[string]string{"seed": "42"}); err != nil {
		t.Fatal(err)
	}
	h, events, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 10 || h.Retained != 4 || h.Dropped != 6 || h.Cap != 4 {
		t.Fatalf("header accounting wrong after wrap: %+v", h)
	}
	if h.Meta["seed"] != "42" {
		t.Fatalf("meta lost: %+v", h.Meta)
	}
	if len(events) != 4 || events[0].Party != 6 {
		t.Fatalf("retained window wrong: %+v", events)
	}
}

func TestReadJSONLRejectsHeaderlessDump(t *testing.T) {
	raw := `{"wall":"0001-01-01T00:00:00Z","party":1,"kind":"committed"}` + "\n"
	if _, _, err := ReadJSONL(strings.NewReader(raw)); err == nil {
		t.Fatal("headerless trace accepted")
	}
	if _, _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestTracerDisableWallStampIsDeterministic(t *testing.T) {
	dump := func() string {
		tr := NewTracer(8)
		tr.DisableWallStamp()
		tr.Record(Event{VT: time.Second, Party: 0, Kind: KindSimTick})
		tr.Record(Event{VT: 2 * time.Second, Party: 1, Kind: KindSimDeliver, Detail: "from=0"})
		var b strings.Builder
		if err := tr.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if dump() != dump() {
		t.Fatal("deterministic-mode dumps differ between identical runs")
	}
	if strings.Contains(dump(), time.Now().UTC().Format("2006")) {
		t.Fatal("wall clock leaked into a deterministic trace")
	}
}

func TestTracerNilIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Record(Event{Kind: KindResync})
	if tr.Events() != nil || tr.Total() != 0 {
		t.Fatal("nil tracer retained events")
	}
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("nil tracer wrote output: %q", b.String())
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if cap(tr.buf) != DefaultTraceCap {
		t.Fatalf("capacity = %d, want %d", cap(tr.buf), DefaultTraceCap)
	}
}
