// Package hash provides the collision-resistant hash function H used
// throughout the ICC protocols (paper §2.1), with mandatory domain
// separation so that hashes of different artifact kinds can never collide
// structurally.
package hash

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Size is the byte length of a Digest.
const Size = sha256.Size

// Digest is the output of the hash function H.
type Digest [Size]byte

// Zero is the all-zero digest. It is used as the parent hash of round-1
// blocks (the root block serves as its own hash target).
var Zero Digest

// String returns the hex encoding of the digest (for logs and tests).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns the first 4 bytes of the hex encoding, a compact handle
// for human-readable traces.
func (d Digest) Short() string { return hex.EncodeToString(d[:4]) }

// IsZero reports whether the digest is the zero digest.
func (d Digest) IsZero() bool { return d == Zero }

// Domain labels a hashing context. Distinct domains guarantee that the
// encodings fed to the underlying hash can never collide across uses.
type Domain string

// Domains used by the protocol suite.
const (
	DomainBlock       Domain = "icc/block"
	DomainPayload     Domain = "icc/payload"
	DomainBeacon      Domain = "icc/beacon"
	DomainRanking     Domain = "icc/ranking"
	DomainMerkleLeaf  Domain = "icc/merkle-leaf"
	DomainMerkleInner Domain = "icc/merkle-inner"
	DomainHashToCurve Domain = "icc/hash-to-curve"
	DomainDLEQ        Domain = "icc/dleq"
	DomainCommand     Domain = "icc/command"
	DomainState       Domain = "icc/state"
)

// Sum hashes the concatenation of the given byte slices under the given
// domain. Each chunk is length-prefixed, so the boundary between chunks
// is unambiguous: Sum(d, a, b) != Sum(d, a||b) unless a, b collide as
// framed encodings.
func Sum(domain Domain, chunks ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(domain)))
	h.Write(lenBuf[:])
	h.Write([]byte(domain))
	for _, c := range chunks {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(c)))
		h.Write(lenBuf[:])
		h.Write(c)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// SumUint64 hashes a domain together with a sequence of integers. It is a
// convenience for deriving deterministic values from counters (rounds,
// indices) without allocating intermediate encodings.
func SumUint64(domain Domain, vs ...uint64) Digest {
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint64(buf[i*8:], v)
	}
	return Sum(domain, buf)
}
