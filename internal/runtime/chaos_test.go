package runtime

// Chaos suite: the full production stack — core engine, runner event
// loop, TCP transport with real sockets — under peer death, partitions,
// and probabilistic message faults. Safety (committed chains stay
// prefix-consistent) must hold throughout; finalization must resume once
// the faults end. The post-fault recovery leans on the engine's resync
// layer (core/resync.go): TCP loses in-flight frames at a cut, and the
// quiescent paper protocol alone never retransmits them.

import (
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/metrics"
	"icc/internal/transport"
	"icc/internal/types"
)

// chaosCluster is an n-node TCP cluster on loopback with per-node commit
// logs and transport stats.
type chaosCluster struct {
	n       int
	runners []*Runner
	tcps    []*transport.TCP
	eps     []transport.Endpoint
	stats   []*metrics.TransportStats

	mu     sync.Mutex
	chains [][]hash.Digest
}

// startChaosCluster boots an n-node cluster. Every endpoint listens on
// an ephemeral port; wrap, if non-nil, interposes a fault layer between
// the runner and the TCP socket (the runner sees the wrapped endpoint).
func startChaosCluster(t *testing.T, n int, wrap func(p types.PartyID, ep transport.Endpoint) transport.Endpoint) *chaosCluster {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	c := &chaosCluster{
		n:       n,
		runners: make([]*Runner, n),
		tcps:    make([]*transport.TCP, n),
		eps:     make([]transport.Endpoint, n),
		stats:   make([]*metrics.TransportStats, n),
		chains:  make([][]hash.Digest, n),
	}
	addrs := make(map[types.PartyID]string, n)
	for i := 0; i < n; i++ {
		addrs[types.PartyID(i)] = "127.0.0.1:0"
	}
	for i := 0; i < n; i++ {
		c.stats[i] = metrics.NewTransportStats()
		ep, err := transport.NewTCPWithOptions(types.PartyID(i), addrs,
			transport.TCPOptions{Stats: c.stats[i], RedialMax: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		c.tcps[i] = ep
	}
	// Ephemeral ports are only known now; tell every node where its peers
	// actually landed.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				c.tcps[i].SetPeerAddr(types.PartyID(j), c.tcps[j].Addr())
			}
		}
	}
	clk := clock.NewWall()
	for i := 0; i < n; i++ {
		i := i
		pid := types.PartyID(i)
		eng := core.NewEngine(core.Config{
			Self:       pid,
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     beacon.NewSimulated(n, pid, pub.GenesisSeed),
			DeltaBound: 50 * time.Millisecond,
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					c.mu.Lock()
					c.chains[i] = append(c.chains[i], b.Hash())
					c.mu.Unlock()
				},
			},
		})
		var rep transport.Endpoint = c.tcps[i]
		if wrap != nil {
			rep = wrap(pid, rep)
		}
		c.eps[i] = rep
		c.runners[i] = NewRunner(eng, rep, clk, n)
		c.runners[i].SetTransportStats(c.stats[i])
	}
	for _, r := range c.runners {
		r.Start()
	}
	t.Cleanup(func() {
		for i := range c.runners {
			c.runners[i].Stop()
			_ = c.eps[i].Close()
		}
	})
	return c
}

// committed returns node i's commit count.
func (c *chaosCluster) committed(i int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.chains[i])
}

// waitCommits polls until predicate nodes have at least want commits.
func (c *chaosCluster) waitCommits(t *testing.T, nodes []int, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, i := range nodes {
			if c.committed(i) < want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, i := range nodes {
		t.Logf("node %d: %d commits (want %d)", i, c.committed(i), want)
	}
	t.Fatalf("nodes did not reach %d commits within %v", want, timeout)
}

// checkSafety verifies every pair of commit logs is prefix-consistent:
// no two nodes ever commit different blocks at the same chain position.
func (c *chaosCluster) checkSafety(t *testing.T) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < c.n; i++ {
		for j := i + 1; j < c.n; j++ {
			a, b := c.chains[i], c.chains[j]
			k := len(a)
			if len(b) < k {
				k = len(b)
			}
			for x := 0; x < k; x++ {
				if a[x] != b[x] {
					t.Fatalf("SAFETY VIOLATION: nodes %d and %d disagree at height %d (%s vs %s)",
						i, j, x, a[x].Short(), b[x].Short())
				}
			}
		}
	}
}

func TestTCPClusterSurvivesStoppedPeer(t *testing.T) {
	const n = 4
	c := startChaosCluster(t, n, nil)
	all := []int{0, 1, 2, 3}
	c.waitCommits(t, all, 3, 20*time.Second)

	// Kill node 3 outright: runner stopped, socket closed. The three
	// survivors are exactly the n−t quorum and must keep finalizing.
	c.runners[3].Stop()
	_ = c.eps[3].Close()
	base := c.committed(0)
	c.waitCommits(t, []int{0, 1, 2}, base+3, 20*time.Second)
	c.checkSafety(t)

	// The survivors' queues to the dead peer saw redials and drops, not
	// stalls: they kept committing, which the wait above already proved.
	snap := c.stats[0].Detail()
	if snap.SendErrors > 0 {
		// Sends to a dead TCP peer enqueue fine (the writer redials
		// forever); errors would mean the endpoint rejected messages.
		t.Fatalf("unexpected send errors on a surviving node: %+v", snap)
	}
}

func TestChaosPartitionHealsAndFinalizes(t *testing.T) {
	const n = 4
	window := transport.PartitionWindow{
		From: 1500 * time.Millisecond,
		To:   4 * time.Second,
		A:    []types.PartyID{0, 1},
		B:    []types.PartyID{2, 3},
	}
	faulties := make(map[types.PartyID]*transport.Faulty)
	var fmu sync.Mutex
	c := startChaosCluster(t, n, func(p types.PartyID, ep transport.Endpoint) transport.Endpoint {
		f := transport.NewFaulty(ep, p, transport.FaultPlan{
			Seed:       int64(100 + p),
			Partitions: []transport.PartitionWindow{window},
		})
		fmu.Lock()
		faulties[p] = f
		fmu.Unlock()
		return f
	})
	all := []int{0, 1, 2, 3}
	c.waitCommits(t, all, 2, 20*time.Second)

	// Ride out the partition. A 2|2 split has no n−t = 3 quorum on
	// either side, so finalization halts; messages crossing the cut are
	// black-holed (TCP frames genuinely lost), so recovery requires the
	// resync layer, not just reconnection.
	time.Sleep(window.To + 500*time.Millisecond)
	during := c.committed(0)

	// Renewed finalization after healing, on every node.
	c.waitCommits(t, all, during+5, 30*time.Second)
	c.checkSafety(t)

	fmu.Lock()
	cut := faulties[0].Stats().Cut
	fmu.Unlock()
	if cut == 0 {
		t.Fatal("partition window injected no faults — test exercised nothing")
	}
}

func TestChaosDropDupDelayCluster(t *testing.T) {
	const n = 4
	faulties := make(map[types.PartyID]*transport.Faulty)
	var fmu sync.Mutex
	c := startChaosCluster(t, n, func(p types.PartyID, ep transport.Endpoint) transport.Endpoint {
		f := transport.NewFaulty(ep, p, transport.FaultPlan{
			Seed:        int64(7 + p),
			DropRate:    0.05,
			DupRate:     0.10,
			DelayRate:   0.20,
			MaxDelay:    40 * time.Millisecond,
			FaultsUntil: 3 * time.Second,
		})
		fmu.Lock()
		faulties[p] = f
		fmu.Unlock()
		return f
	})
	all := []int{0, 1, 2, 3}
	// Progress during the fault window is allowed but not required;
	// after FaultsUntil the network is clean and everyone must finalize.
	time.Sleep(3 * time.Second)
	base := c.committed(0)
	c.waitCommits(t, all, base+5, 30*time.Second)
	c.checkSafety(t)

	fmu.Lock()
	defer fmu.Unlock()
	var dropped, duplicated, delayed int64
	for _, f := range faulties {
		s := f.Stats()
		dropped += s.Dropped
		duplicated += s.Duplicated
		delayed += s.Delayed
	}
	if dropped == 0 || duplicated == 0 || delayed == 0 {
		t.Fatalf("fault plan injected too little: dropped=%d duplicated=%d delayed=%d",
			dropped, duplicated, delayed)
	}
}
