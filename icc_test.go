package icc

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLocalClusterCommitsCommands(t *testing.T) {
	// Wall-clock test: generous Δbnd and deadlines, because `go test
	// ./...` runs this alongside CPU-heavy crypto packages.
	c, err := NewLocalCluster(4, WithDeltaBound(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	events := 0
	c.OnCommit(func(CommitEvent) { mu.Lock(); events++; mu.Unlock() })
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for i := uint64(1); i <= 10; i++ {
		if _, err := c.Client(0).Submit(ctx, Command{Client: 1, Seq: i, Op: OpSet, Key: fmt.Sprintf("k%d", i), Value: []byte("v")}); err != nil {
			t.Fatalf("submit %d rejected: %v", i, err)
		}
	}
	// Wait until every replica holds k10 AND all state hashes agree,
	// under one overall deadline.
	deadline := time.Now().Add(120 * time.Second)
	converged := false
	for time.Now().Before(deadline) && !converged {
		converged = true
		want := c.KV(0).StateHash()
		for p := 0; p < 4; p++ {
			if _, ok := c.KV(p).Get("k10"); !ok || c.KV(p).StateHash() != want {
				converged = false
				break
			}
		}
		if !converged {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !converged {
		for p := 0; p < 4; p++ {
			_, ok := c.KV(p).Get("k10")
			t.Logf("party %d: %d keys, k10=%v, state %s", p, c.KV(p).Len(), ok, c.KV(p).StateHash().Short())
		}
		t.Fatal("replicas did not converge on the submitted commands")
	}
	mu.Lock()
	defer mu.Unlock()
	if events == 0 {
		t.Fatal("OnCommit never fired")
	}
}

func TestLocalClusterModes(t *testing.T) {
	for _, mode := range []Mode{ICC0, ICC1, ICC2} {
		mode := mode
		t.Run(fmt.Sprintf("mode%d", mode), func(t *testing.T) {
			c, err := NewLocalCluster(4, WithMode(mode), WithDeltaBound(20*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			c.Start()
			defer c.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := c.Client(0).Submit(ctx, Command{Client: 1, Seq: 1, Op: OpSet, Key: "x", Value: []byte("y")}); err != nil {
				t.Fatalf("submit rejected: %v", err)
			}
			if !c.WaitForCommits(3, 30*time.Second) {
				t.Fatalf("mode %d made no progress", mode)
			}
		})
	}
}

func TestLocalClusterWithCrash(t *testing.T) {
	c, err := NewLocalCluster(4, WithDeltaBound(20*time.Millisecond), WithBehavior(2, CrashFromBirth))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if !c.WaitForCommits(3, 30*time.Second) {
		t.Fatal("no progress with one crashed party")
	}
	if c.CommittedBlocks(2) != 0 {
		t.Fatal("crashed party committed")
	}
}

func TestNewLocalClusterValidation(t *testing.T) {
	if _, err := NewLocalCluster(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	// Gossip topology is validated, not clamped: a fanout the cluster
	// size cannot satisfy fails construction.
	if _, err := NewLocalCluster(4, WithMode(ICC1), WithGossipTopology(99, 7)); err == nil {
		t.Fatal("out-of-range gossip fanout accepted")
	}
}

func TestSimFacade(t *testing.T) {
	s, err := NewSim(SimOptions{N: 4, Seed: 1, SimBeacon: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if !s.RunUntilCommitted(5, time.Minute) {
		t.Fatal("sim made no progress")
	}
	if err := s.CheckSafety(); err != nil {
		t.Fatal(err)
	}
}
