package shamir

import (
	crand "crypto/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"icc/internal/crypto/ec"
)

func mustSecret(t testing.TB) *ec.Scalar {
	t.Helper()
	s, err := ec.RandomScalar(cryptoRand{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// cryptoRand adapts crypto/rand for brevity in tests.
type cryptoRand struct{}

func (cryptoRand) Read(p []byte) (int, error) { return crand.Read(p) }

func TestDealRecoverExactThreshold(t *testing.T) {
	secret := mustSecret(t)
	shares, err := Deal(cryptoRand{}, secret, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Recover(3, shares[:3])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(secret) {
		t.Fatal("recovered secret mismatch with first 3 shares")
	}
}

func TestRecoverAnySubset(t *testing.T) {
	secret := mustSecret(t)
	const n, th = 10, 4
	shares, err := Deal(cryptoRand{}, secret, th, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 25; trial++ {
		perm := rng.Perm(n)
		subset := make([]Share, th)
		for i := 0; i < th; i++ {
			subset[i] = shares[perm[i]]
		}
		got, err := Recover(th, subset)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(secret) {
			t.Fatalf("trial %d: wrong secret from subset %v", trial, perm[:th])
		}
	}
}

func TestRecoverRejectsTooFew(t *testing.T) {
	secret := mustSecret(t)
	shares, _ := Deal(cryptoRand{}, secret, 3, 5)
	if _, err := Recover(3, shares[:2]); err == nil {
		t.Fatal("expected ErrNotEnoughShares")
	}
}

func TestRecoverRejectsDuplicates(t *testing.T) {
	secret := mustSecret(t)
	shares, _ := Deal(cryptoRand{}, secret, 2, 5)
	if _, err := Recover(2, []Share{shares[1], shares[1]}); err == nil {
		t.Fatal("expected ErrDuplicateShare")
	}
}

func TestDealValidatesThreshold(t *testing.T) {
	secret := mustSecret(t)
	if _, err := Deal(cryptoRand{}, secret, 0, 5); err == nil {
		t.Fatal("threshold 0 accepted")
	}
	if _, err := Deal(cryptoRand{}, secret, 6, 5); err == nil {
		t.Fatal("threshold > n accepted")
	}
}

func TestThresholdOneIsConstant(t *testing.T) {
	secret := mustSecret(t)
	shares, err := Deal(cryptoRand{}, secret, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if !s.Value.Equal(secret) {
			t.Fatal("threshold-1 sharing should replicate the secret")
		}
	}
}

func TestRecoverPointMatchesScalarRecovery(t *testing.T) {
	secret := mustSecret(t)
	const n, th = 7, 3
	shares, err := Deal(cryptoRand{}, secret, th, n)
	if err != nil {
		t.Fatal(err)
	}
	base := ec.HashToPoint([]byte("message"))
	ptShares := make([]PointShare, 0, th)
	// Use a non-prefix subset to exercise arbitrary indices.
	for _, i := range []int{6, 2, 4} {
		ptShares = append(ptShares, PointShare{Index: i, Value: base.Mul(shares[i].Value)})
	}
	got, err := RecoverPoint(th, ptShares)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Mul(secret)
	if !got.Equal(want) {
		t.Fatal("exponent interpolation mismatch")
	}
}

func TestPublicShares(t *testing.T) {
	secret := mustSecret(t)
	shares, _ := Deal(cryptoRand{}, secret, 2, 3)
	pub := PublicShares(shares)
	for i, p := range pub {
		if !p.Equal(ec.BaseMul(shares[i].Value)) {
			t.Fatalf("public share %d mismatch", i)
		}
	}
}

func TestQuickShareRecombine(t *testing.T) {
	// Property: for random secrets and thresholds, recovery from any
	// threshold-sized prefix of a random permutation returns the secret.
	f := func(raw [32]byte, thRaw, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		th := int(thRaw)%n + 1
		secret := ec.ScalarFromBytesWide(raw[:])
		shares, err := Deal(cryptoRand{}, secret, th, n)
		if err != nil {
			return false
		}
		got, err := Recover(th, shares)
		if err != nil {
			return false
		}
		return got.Equal(secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecoverPoint(b *testing.B) {
	secret, _ := ec.RandomScalar(cryptoRand{})
	const n, th = 31, 11
	shares, _ := Deal(cryptoRand{}, secret, th, n)
	base := ec.HashToPoint([]byte("bench"))
	ptShares := make([]PointShare, th)
	for i := 0; i < th; i++ {
		ptShares[i] = PointShare{Index: i, Value: base.Mul(shares[i].Value)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverPoint(th, ptShares); err != nil {
			b.Fatal(err)
		}
	}
}
