package icc

// Benchmark harness: one testing.B benchmark per evaluation artifact
// (DESIGN.md §3, EXPERIMENTS.md). Each benchmark executes the
// corresponding experiment at a reduced Scale so `go test -bench=.`
// finishes in minutes, and reports the experiment's headline quantities
// as custom metrics. Full-scale tables are produced by `cmd/iccbench`.

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"icc/internal/experiments"
)

// benchScale reads ICC_BENCH_SCALE (0 < s ≤ 1, default 0.1).
func benchScale() experiments.Scale {
	if v := os.Getenv("ICC_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 && f <= 1 {
			return experiments.Scale(f)
		}
	}
	return 0.1
}

// cell parses a numeric table cell (with optional unit suffix handled by
// time.ParseDuration) into a float64 metric value.
func cell(b *testing.B, s string) float64 {
	b.Helper()
	s = strings.TrimSuffix(s, "%")
	if d, err := time.ParseDuration(s); err == nil && strings.IndexFunc(s, func(r rune) bool {
		return r == 's' || r == 'm' || r == 'µ' || r == 'n'
	}) >= 0 {
		return float64(d) / float64(time.Millisecond)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return f
}

// BenchmarkTable1 regenerates paper §5 Table 1 (experiment E1): block
// rate and per-node traffic for 13- and 40-node subnets under no load,
// load, and load + 1/3 failures.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			// Row 0: 13 nodes, without load.
			b.ReportMetric(cell(b, t.Rows[0][2]), "blocks/s-13n")
			b.ReportMetric(cell(b, t.Rows[0][4]), "Mbps/node-13n")
			b.ReportMetric(cell(b, t.Rows[3][2]), "blocks/s-40n")
		}
	}
}

// BenchmarkFigThroughputLatency verifies the §1 claims (experiment E2):
// ICC0/ICC1 at 2δ reciprocal throughput and 3δ latency; ICC2 at 3δ/4δ.
func BenchmarkFigThroughputLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.LatencyThroughput(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			// Second sweep point (δ=10ms): rows 3,4,5 = ICC0,1,2.
			b.ReportMetric(cell(b, t.Rows[3][3]), "ICC0-round-x-delta")
			b.ReportMetric(cell(b, t.Rows[3][5]), "ICC0-latency-x-delta")
			b.ReportMetric(cell(b, t.Rows[5][3]), "ICC2-round-x-delta")
			b.ReportMetric(cell(b, t.Rows[5][5]), "ICC2-latency-x-delta")
		}
	}
}

// BenchmarkFigMessageComplexity verifies O(n²) expected message
// complexity in synchronous rounds (experiment E3).
func BenchmarkFigMessageComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.MessageComplexity(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			first := cell(b, t.Rows[0][2])
			last := cell(b, t.Rows[len(t.Rows)-1][2])
			b.ReportMetric(first, "msgs/n2-smallest")
			b.ReportMetric(last, "msgs/n2-largest")
		}
	}
}

// BenchmarkFigRoundComplexity verifies the O(1) expected rounds-to-commit
// claim (experiment E4): the finalization-gap distribution is dominated
// by gap 0 and decays geometrically.
func BenchmarkFigRoundComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RoundComplexity(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(cell(b, t.Rows[0][2]), "gap0-fraction")
		}
	}
}

// BenchmarkFigRobustness verifies graceful degradation under corrupt
// leaders (experiment E5).
func BenchmarkFigRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Robustness(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(cell(b, t.Rows[len(t.Rows)-1][4]), "throughput-at-max-corruption-%")
		}
	}
}

// BenchmarkFigResponsiveness verifies optimistic responsiveness vs the
// Tendermint baseline (experiment E6).
func BenchmarkFigResponsiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Responsiveness(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(cell(b, t.Rows[len(t.Rows)-1][1]), "ICC-round-ms-at-1s-bound")
			b.ReportMetric(cell(b, t.Rows[len(t.Rows)-1][2]), "TM-round-ms-at-1s-bound")
		}
	}
}

// BenchmarkFigDissemination verifies ICC2's O(S) per-party dissemination
// and the leader-bottleneck relief of ICC1/ICC2 (experiment E7).
func BenchmarkFigDissemination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Dissemination(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			last := len(t.Rows) - 1
			b.ReportMetric(cell(b, t.Rows[last-2][4]), "ICC0-max-bytes-per-S")
			b.ReportMetric(cell(b, t.Rows[last][5]), "ICC2-mean-bytes-per-S")
		}
	}
}

// BenchmarkFigBaselines verifies the §1.1 cross-protocol comparison
// (experiment E8).
func BenchmarkFigBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Baselines(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(cell(b, t.Rows[0][2]), "ICC0-latency-ms")
			b.ReportMetric(cell(b, t.Rows[3][2]), "HotStuff-latency-ms")
		}
	}
}

// BenchmarkAblationDelays verifies the ε-governor and adaptive-Δbnd
// design choices (experiment E9).
func BenchmarkAblationDelays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.AblationDelays(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(cell(b, t.Rows[3][4]), "static-p99-ms")
			b.ReportMetric(cell(b, t.Rows[4][4]), "adaptive-p99-ms")
		}
	}
}

// BenchmarkFigWeakAdaptive verifies the §1.1 weak-adaptive-adversary
// comparison (experiment E10): a corruption lag of κ ≥ 2 rounds leaves
// ICC untouched (leaders are beacon-drawn, revealed one round ahead),
// while a public leader schedule lets the adversary collapse the
// HotStuff baseline at any lag.
func BenchmarkFigWeakAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.WeakAdaptiveAdversary(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(cell(b, t.Rows[2][3]), "ICC-throughput-k1-%")
			b.ReportMetric(cell(b, t.Rows[3][3]), "ICC-throughput-k2-%")
			b.ReportMetric(cell(b, t.Rows[5][3]), "HotStuff-throughput-%")
		}
	}
}

// BenchmarkFigPBFTFragility verifies the robust-consensus comparison
// ([15], experiment E11): a slow leader collapses PBFT's throughput but
// only taxes its own rounds under ICC.
func BenchmarkFigPBFTFragility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.PBFTFragility(benchScale())
		if i == 0 {
			b.Log("\n" + t.String())
			b.ReportMetric(cell(b, t.Rows[2][3]), "ICC-slow-leader-%")
			b.ReportMetric(cell(b, t.Rows[5][3]), "PBFT-slow-leader-%")
		}
	}
}

// BenchmarkLocalClusterCommitRate measures the end-to-end facade: a
// real-time 4-party in-process cluster with full threshold cryptography,
// committing as fast as the wall clock allows.
func BenchmarkLocalClusterCommitRate(b *testing.B) {
	c, err := NewLocalCluster(4, WithDeltaBound(20*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if !c.WaitForCommits(1, 30*time.Second) {
		b.Fatal("cluster did not start committing")
	}
	start := c.CommittedBlocks(0)
	b.ResetTimer()
	target := start + b.N
	deadline := time.Now().Add(time.Duration(b.N) * 2 * time.Second)
	for c.CommittedBlocks(0) < target && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	got := c.CommittedBlocks(0) - start
	if got < b.N {
		b.Fatalf("committed %d of %d blocks", got, b.N)
	}
}
