// Package runtime hosts a consensus engine on real time: a goroutine
// event loop that feeds the engine received messages and timer ticks and
// pushes its outputs into a transport. The same engine code that runs
// under the discrete-event simulator runs here unchanged.
package runtime

import (
	"sync"
	"time"

	"icc/internal/backfill"
	"icc/internal/clock"
	"icc/internal/engine"
	"icc/internal/metrics"
	"icc/internal/obs"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
)

// Runner drives one engine.
type Runner struct {
	eng   engine.Engine
	ep    transport.Endpoint
	clk   clock.Clock
	n     int
	stats *metrics.TransportStats
	obs   *obs.Observer
	pipe  *verify.Pipeline
	bfill *backfill.Worker

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRunner assembles a runner for an n-party cluster.
func NewRunner(eng engine.Engine, ep transport.Endpoint, clk clock.Clock, n int) *Runner {
	return &Runner{
		eng:  eng,
		ep:   ep,
		clk:  clk,
		n:    n,
		stop: make(chan struct{}),
	}
}

// SetTransportStats attaches transport-health counters: send failures
// observed by the event loop are recorded there instead of vanishing.
// Call before Start.
func (r *Runner) SetTransportStats(s *metrics.TransportStats) { r.stats = s }

// SetObserver attaches an event-loop observer: messages and ticks
// delivered to the engine are counted on its registry. Call before
// Start. A nil observer is a no-op.
func (r *Runner) SetObserver(ob *obs.Observer) { r.obs = ob }

// SetVerifyPipeline interposes a parallel verification pipeline between
// the transport inbox and the engine: inbound envelopes are handed to
// the pipeline's workers, and only verified envelopes reach
// HandleMessage. The engine's pool should then run pool.VerifyPreVerified
// so signatures are not checked twice. Call before Start; the runner
// closes the pipeline on Stop. A nil pipeline keeps the synchronous
// path (the engine verifies inline).
func (r *Runner) SetVerifyPipeline(p *verify.Pipeline) { r.pipe = p }

// SetBackfillWorker ties a catch-up backfill worker's lifecycle to the
// runner: the worker (already wired into the engine as its
// core.CatchupProvider) is closed on Stop, after the event loop exits.
// Call before Start. A nil worker is a no-op.
func (r *Runner) SetBackfillWorker(w *backfill.Worker) { r.bfill = w }

// Start launches the event loop.
func (r *Runner) Start() {
	r.wg.Add(1)
	go r.loop()
}

// Stop terminates the loop, waits for it to exit, and closes the
// verification pipeline and backfill worker if attached.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	if r.pipe != nil {
		r.pipe.Close()
	}
	if r.bfill != nil {
		r.bfill.Close()
	}
}

func (r *Runner) loop() {
	defer r.wg.Done()
	r.send(r.eng.Init(r.clk.Now()))
	r.noteRound()

	// With a pipeline, raw envelopes detour through the worker pool and
	// come back on verified; without one they are handled inline.
	var verified <-chan transport.Envelope
	if r.pipe != nil {
		verified = r.pipe.Out()
	}

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		r.armTimer(timer)
		select {
		case <-r.stop:
			return
		case env, ok := <-r.ep.Inbox():
			if !ok {
				return
			}
			if r.pipe != nil {
				// Never block on a full submission queue: this loop is
				// also the sole drain of the verified channel, so it
				// must keep consuming while it waits for queue space.
				// The timer stays armed here too — under sustained
				// inbound pressure this inner loop can run for a long
				// time, and the engine's timeouts (resync Status, delay
				// bounds) must keep firing or a saturated party silently
				// loses its stall recovery.
				for !r.pipe.TrySubmit(env) {
					if r.pipe.Closed() {
						return
					}
					select {
					case <-r.stop:
						return
					case v := <-verified:
						r.obs.MessageReceived()
						r.send(r.eng.HandleMessage(v.From, v.Msg, r.clk.Now()))
						r.noteRound()
						// HandleMessage can pull NextWake earlier (a
						// notarization starts a delay-bound window); with
						// the stale deadline the tick would fire late for
						// as long as inbound pressure keeps us in this
						// loop.
						r.armTimer(timer)
					case <-timer.C:
						r.obs.TickFired()
						r.send(r.eng.Tick(r.clk.Now()))
						r.noteRound()
						r.armTimer(timer)
					}
				}
				continue
			}
			r.obs.MessageReceived()
			r.send(r.eng.HandleMessage(env.From, env.Msg, r.clk.Now()))
			r.noteRound()
		case env := <-verified:
			r.obs.MessageReceived()
			r.send(r.eng.HandleMessage(env.From, env.Msg, r.clk.Now()))
			r.noteRound()
		case <-timer.C:
			r.obs.TickFired()
			r.send(r.eng.Tick(r.clk.Now()))
			r.noteRound()
		}
	}
}

// noteRound feeds the engine's working round to the verification
// pipeline after every engine interaction, so its behind-frontier
// shedding predicate tracks actual progress. Called only from the event
// loop goroutine (CurrentRound is not synchronized).
func (r *Runner) noteRound() {
	if r.pipe != nil {
		r.pipe.NoteEngineRound(r.eng.CurrentRound())
	}
}

// armTimer resets the timer to the engine's next wake point.
func (r *Runner) armTimer(timer *time.Timer) {
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	now := r.clk.Now()
	if at, ok := r.eng.NextWake(now); ok {
		d := at - now
		if d < 0 {
			d = 0
		}
		timer.Reset(d)
		return
	}
	timer.Reset(time.Hour) // no pending wake: idle heartbeat
}

// send pushes engine outputs into the transport. Failures are counted,
// never fatal: recovery is protocol-level (echo, catch-up), and a
// broadcast keeps attempting the remaining peers so one sick peer never
// costs the healthy ones their copy.
func (r *Runner) send(outs []engine.Output) {
	for _, o := range outs {
		if o.Broadcast {
			for p := 0; p < r.n; p++ {
				pid := types.PartyID(p)
				if pid == r.eng.ID() {
					continue
				}
				if err := r.ep.Send(pid, o.Msg); err != nil {
					r.stats.SendError()
				}
			}
			continue
		}
		if err := r.ep.Send(o.To, o.Msg); err != nil {
			r.stats.SendError()
		}
	}
}
