// Package ec implements the secp256k1 elliptic-curve group from scratch on
// top of math/big. It is the prime-order group underlying the threshold
// signature scheme S_beacon used by the ICC random beacon (paper §2.3,
// approach (iii)): the protocol needs a group in which discrete logs are
// hard, points can be hashed to, and Lagrange interpolation "in the
// exponent" works.
//
// The implementation favours clarity over speed: field elements are
// *big.Int values reduced mod p, and point arithmetic uses Jacobian
// projective coordinates to avoid a modular inversion per addition.
// It is nonetheless fast enough to run thousands of simulated consensus
// rounds per second.
package ec

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"icc/internal/crypto/hash"
)

// Curve parameters for secp256k1: y^2 = x^3 + 7 over F_p.
var (
	// P is the field prime 2^256 - 2^32 - 977.
	P, _ = new(big.Int).SetString("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f", 16)
	// N is the (prime) group order.
	N, _ = new(big.Int).SetString("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141", 16)
	// b is the curve constant (a = 0, b = 7).
	curveB = big.NewInt(7)
	// Generator coordinates.
	gX, _ = new(big.Int).SetString("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798", 16)
	gY, _ = new(big.Int).SetString("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8", 16)
)

// PointLen is the length of a compressed point encoding.
const PointLen = 33

// ScalarLen is the length of a scalar encoding.
const ScalarLen = 32

// ErrInvalidPoint is returned when decoding bytes that are not a valid
// compressed curve point.
var ErrInvalidPoint = errors.New("ec: invalid point encoding")

// ErrInvalidScalar is returned when decoding bytes that are not a valid
// scalar in [0, N).
var ErrInvalidScalar = errors.New("ec: invalid scalar encoding")

// Point is an element of the secp256k1 group, stored in affine
// coordinates. The zero value is NOT valid; use Infinity() or the
// constructors. Points are immutable once created.
type Point struct {
	x, y *big.Int // nil, nil encodes the point at infinity
}

// Infinity returns the group identity.
func Infinity() *Point { return &Point{} }

// Generator returns the standard base point G.
func Generator() *Point {
	return &Point{x: new(big.Int).Set(gX), y: new(big.Int).Set(gY)}
}

// IsInfinity reports whether p is the identity.
func (p *Point) IsInfinity() bool { return p.x == nil }

// Equal reports whether two points are the same group element.
func (p *Point) Equal(q *Point) bool {
	if p.IsInfinity() || q.IsInfinity() {
		return p.IsInfinity() && q.IsInfinity()
	}
	return p.x.Cmp(q.x) == 0 && p.y.Cmp(q.y) == 0
}

// IsOnCurve reports whether p satisfies the curve equation (the identity
// is considered on-curve).
func (p *Point) IsOnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	// y^2 == x^3 + 7 (mod p)
	y2 := new(big.Int).Mul(p.y, p.y)
	y2.Mod(y2, P)
	x3 := new(big.Int).Mul(p.x, p.x)
	x3.Mul(x3, p.x)
	x3.Add(x3, curveB)
	x3.Mod(x3, P)
	return y2.Cmp(x3) == 0
}

// jacobian is an internal projective representation (X/Z^2, Y/Z^3).
type jacobian struct {
	x, y, z *big.Int // z == 0 encodes infinity
}

func toJacobian(p *Point) *jacobian {
	if p.IsInfinity() {
		return &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	}
	return &jacobian{x: new(big.Int).Set(p.x), y: new(big.Int).Set(p.y), z: big.NewInt(1)}
}

func (j *jacobian) isInfinity() bool { return j.z.Sign() == 0 }

func (j *jacobian) toAffine() *Point {
	if j.isInfinity() {
		return Infinity()
	}
	zInv := new(big.Int).ModInverse(j.z, P)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, P)
	x := new(big.Int).Mul(j.x, zInv2)
	x.Mod(x, P)
	zInv3 := zInv2.Mul(zInv2, zInv)
	zInv3.Mod(zInv3, P)
	y := new(big.Int).Mul(j.y, zInv3)
	y.Mod(y, P)
	return &Point{x: x, y: y}
}

// double returns 2*j using the standard Jacobian doubling formulas for
// a = 0 curves (dbl-2009-l).
func (j *jacobian) double() *jacobian {
	if j.isInfinity() || j.y.Sign() == 0 {
		return &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	}
	a := new(big.Int).Mul(j.x, j.x) // A = X^2
	a.Mod(a, P)
	b := new(big.Int).Mul(j.y, j.y) // B = Y^2
	b.Mod(b, P)
	c := new(big.Int).Mul(b, b) // C = B^2
	c.Mod(c, P)
	// D = 2*((X+B)^2 - A - C)
	d := new(big.Int).Add(j.x, b)
	d.Mul(d, d)
	d.Sub(d, a)
	d.Sub(d, c)
	d.Lsh(d, 1)
	d.Mod(d, P)
	// E = 3*A
	e := new(big.Int).Lsh(a, 1)
	e.Add(e, a)
	e.Mod(e, P)
	// F = E^2
	f := new(big.Int).Mul(e, e)
	f.Mod(f, P)
	// X3 = F - 2*D
	x3 := new(big.Int).Lsh(d, 1)
	x3.Sub(f, x3)
	x3.Mod(x3, P)
	// Y3 = E*(D - X3) - 8*C
	y3 := new(big.Int).Sub(d, x3)
	y3.Mul(y3, e)
	c8 := new(big.Int).Lsh(c, 3)
	y3.Sub(y3, c8)
	y3.Mod(y3, P)
	// Z3 = 2*Y*Z
	z3 := new(big.Int).Mul(j.y, j.z)
	z3.Lsh(z3, 1)
	z3.Mod(z3, P)
	return &jacobian{x: x3, y: y3, z: z3}
}

// add returns j + q (add-2007-bl general addition).
func (j *jacobian) add(q *jacobian) *jacobian {
	if j.isInfinity() {
		return &jacobian{x: new(big.Int).Set(q.x), y: new(big.Int).Set(q.y), z: new(big.Int).Set(q.z)}
	}
	if q.isInfinity() {
		return &jacobian{x: new(big.Int).Set(j.x), y: new(big.Int).Set(j.y), z: new(big.Int).Set(j.z)}
	}
	z1z1 := new(big.Int).Mul(j.z, j.z)
	z1z1.Mod(z1z1, P)
	z2z2 := new(big.Int).Mul(q.z, q.z)
	z2z2.Mod(z2z2, P)
	u1 := new(big.Int).Mul(j.x, z2z2)
	u1.Mod(u1, P)
	u2 := new(big.Int).Mul(q.x, z1z1)
	u2.Mod(u2, P)
	s1 := new(big.Int).Mul(j.y, q.z)
	s1.Mul(s1, z2z2)
	s1.Mod(s1, P)
	s2 := new(big.Int).Mul(q.y, j.z)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, P)
	if u1.Cmp(u2) == 0 {
		if s1.Cmp(s2) != 0 {
			// P + (-P) = infinity
			return &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
		}
		return j.double()
	}
	h := new(big.Int).Sub(u2, u1)
	h.Mod(h, P)
	i := new(big.Int).Lsh(h, 1)
	i.Mul(i, i)
	i.Mod(i, P)
	jj := new(big.Int).Mul(h, i)
	jj.Mod(jj, P)
	r := new(big.Int).Sub(s2, s1)
	r.Lsh(r, 1)
	r.Mod(r, P)
	v := new(big.Int).Mul(u1, i)
	v.Mod(v, P)
	// X3 = r^2 - J - 2*V
	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, jj)
	x3.Sub(x3, v)
	x3.Sub(x3, v)
	x3.Mod(x3, P)
	// Y3 = r*(V - X3) - 2*S1*J
	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	s1j := new(big.Int).Mul(s1, jj)
	s1j.Lsh(s1j, 1)
	y3.Sub(y3, s1j)
	y3.Mod(y3, P)
	// Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H
	z3 := new(big.Int).Add(j.z, q.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)
	z3.Mod(z3, P)
	return &jacobian{x: x3, y: y3, z: z3}
}

// Add returns p + q.
func (p *Point) Add(q *Point) *Point {
	return toJacobian(p).add(toJacobian(q)).toAffine()
}

// Neg returns -p.
func (p *Point) Neg() *Point {
	if p.IsInfinity() {
		return Infinity()
	}
	y := new(big.Int).Sub(P, p.y)
	y.Mod(y, P)
	return &Point{x: new(big.Int).Set(p.x), y: y}
}

// Sub returns p - q.
func (p *Point) Sub(q *Point) *Point { return p.Add(q.Neg()) }

// Mul returns k*p using a simple left-to-right double-and-add.
// The scalar is reduced mod N first.
func (p *Point) Mul(k *Scalar) *Point {
	if p.IsInfinity() || k.v.Sign() == 0 {
		return Infinity()
	}
	acc := &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	base := toJacobian(p)
	for i := k.v.BitLen() - 1; i >= 0; i-- {
		acc = acc.double()
		if k.v.Bit(i) == 1 {
			acc = acc.add(base)
		}
	}
	return acc.toAffine()
}

// baseTable caches multiples of G for faster base-point multiplication
// (windowed, 4-bit). Built lazily on first use.
var (
	baseTableOnce sync.Once
	baseTable     [64][16]*jacobian // baseTable[w][d] = d * 16^w * G
)

func buildBaseTable() {
	g := toJacobian(Generator())
	for w := 0; w < 64; w++ {
		inf := &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
		baseTable[w][0] = inf
		baseTable[w][1] = g
		for d := 2; d < 16; d++ {
			baseTable[w][d] = baseTable[w][d-1].add(g)
		}
		// advance g by 16x
		for i := 0; i < 4; i++ {
			g = g.double()
		}
	}
}

// BaseMul returns k*G using a precomputed window table.
func BaseMul(k *Scalar) *Point {
	baseTableOnce.Do(buildBaseTable)
	if k.v.Sign() == 0 {
		return Infinity()
	}
	acc := &jacobian{x: big.NewInt(1), y: big.NewInt(1), z: new(big.Int)}
	// Process the scalar in 4-bit windows, little-endian window order.
	var kb [32]byte
	k.v.FillBytes(kb[:])
	for w := 0; w < 64; w++ {
		// window w covers bits [4w, 4w+4); byte index from the right
		byteIdx := 31 - w/2
		var nib byte
		if w%2 == 0 {
			nib = kb[byteIdx] & 0x0f
		} else {
			nib = kb[byteIdx] >> 4
		}
		if nib != 0 {
			acc = acc.add(baseTable[w][nib])
		}
	}
	return acc.toAffine()
}

// Encode returns the 33-byte compressed SEC1 encoding of the point.
// The identity encodes as 33 zero bytes.
func (p *Point) Encode() []byte {
	out := make([]byte, PointLen)
	if p.IsInfinity() {
		return out
	}
	if p.y.Bit(0) == 0 {
		out[0] = 0x02
	} else {
		out[0] = 0x03
	}
	p.x.FillBytes(out[1:])
	return out
}

// DecodePoint parses a 33-byte compressed encoding.
func DecodePoint(b []byte) (*Point, error) {
	if len(b) != PointLen {
		return nil, fmt.Errorf("%w: length %d", ErrInvalidPoint, len(b))
	}
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return Infinity(), nil
	}
	if b[0] != 0x02 && b[0] != 0x03 {
		return nil, fmt.Errorf("%w: prefix 0x%02x", ErrInvalidPoint, b[0])
	}
	x := new(big.Int).SetBytes(b[1:])
	if x.Cmp(P) >= 0 {
		return nil, fmt.Errorf("%w: x out of range", ErrInvalidPoint)
	}
	y, ok := liftX(x)
	if !ok {
		return nil, fmt.Errorf("%w: x not on curve", ErrInvalidPoint)
	}
	if y.Bit(0) != uint(b[0]&1) {
		y.Sub(P, y)
	}
	return &Point{x: x, y: y}, nil
}

// liftX computes a square root of x^3 + 7 mod p, if one exists.
// Since p ≡ 3 (mod 4), sqrt(a) = a^((p+1)/4).
var sqrtExp = new(big.Int).Rsh(new(big.Int).Add(P, big.NewInt(1)), 2)

func liftX(x *big.Int) (*big.Int, bool) {
	rhs := new(big.Int).Mul(x, x)
	rhs.Mul(rhs, x)
	rhs.Add(rhs, curveB)
	rhs.Mod(rhs, P)
	y := new(big.Int).Exp(rhs, sqrtExp, P)
	chk := new(big.Int).Mul(y, y)
	chk.Mod(chk, P)
	if chk.Cmp(rhs) != 0 {
		return nil, false
	}
	return y, true
}

// HashToPoint maps arbitrary bytes to a curve point using deterministic
// try-and-increment: candidates x = H(domain, msg, ctr) are tried until
// one lies on the curve (expected two attempts). The discrete log of the
// result with respect to G is unknown, which is what the threshold VRF
// construction requires.
func HashToPoint(msg []byte) *Point {
	for ctr := uint64(0); ; ctr++ {
		var ctrBuf [8]byte
		for i := 0; i < 8; i++ {
			ctrBuf[7-i] = byte(ctr >> (8 * i))
		}
		d := hash.Sum(hash.DomainHashToCurve, msg, ctrBuf[:])
		x := new(big.Int).SetBytes(d[:])
		if x.Cmp(P) >= 0 {
			continue
		}
		if y, ok := liftX(x); ok {
			// Pick the even-y representative for determinism.
			if y.Bit(0) == 1 {
				y.Sub(P, y)
			}
			return &Point{x: x, y: y}
		}
	}
}

// RandomPoint returns r*G for a uniformly random scalar r, together with r.
// Used only by tests and key generation.
func RandomPoint(rng io.Reader) (*Scalar, *Point, error) {
	s, err := RandomScalar(rng)
	if err != nil {
		return nil, nil, err
	}
	return s, BaseMul(s), nil
}

// randReader defaults to crypto/rand.
var randReader io.Reader = rand.Reader
