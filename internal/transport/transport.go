// Package transport moves protocol messages between parties in real
// deployments (as opposed to the discrete-event simulator): an
// in-process channel transport for single-binary clusters, and a TCP
// transport with length-prefixed frames for multi-process clusters.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"icc/internal/metrics"
	"icc/internal/types"
)

// Envelope is one received message with its claimed sender.
type Envelope struct {
	From types.PartyID
	Msg  types.Message
}

// Endpoint is one party's attachment to a transport.
type Endpoint interface {
	// Send transmits a message to one party. Implementations serialise
	// with types.Marshal, so what arrives is always a decoded copy.
	Send(to types.PartyID, m types.Message) error
	// Inbox delivers received messages. Closed when the endpoint closes.
	Inbox() <-chan Envelope
	// Close releases resources.
	Close() error
}

// ErrClosed is returned when sending through a closed endpoint.
var ErrClosed = errors.New("transport: closed")

// inboxSize bounds per-endpoint buffering.
const inboxSize = 4096

// Inproc is an in-process transport hub connecting n endpoints through
// buffered channels. Messages are marshalled and unmarshalled so the
// wire format is exercised exactly as on TCP.
type Inproc struct {
	mu     sync.Mutex
	boxes  []chan Envelope
	closed bool
	stats  *metrics.TransportStats
}

// NewInproc creates a hub for n parties.
func NewInproc(n int) *Inproc {
	h := &Inproc{boxes: make([]chan Envelope, n)}
	for i := range h.boxes {
		h.boxes[i] = make(chan Envelope, inboxSize)
	}
	return h
}

// Endpoint returns party p's endpoint.
func (h *Inproc) Endpoint(p types.PartyID) Endpoint {
	return &inprocEndpoint{hub: h, self: p}
}

// SetStats attaches transport-health counters to the hub; inbox-overflow
// discards are recorded there. Call before traffic starts.
func (h *Inproc) SetStats(s *metrics.TransportStats) {
	h.mu.Lock()
	h.stats = s
	h.mu.Unlock()
}

// Close shuts the hub down.
func (h *Inproc) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for _, b := range h.boxes {
		close(b)
	}
}

type inprocEndpoint struct {
	hub  *Inproc
	self types.PartyID
}

func (e *inprocEndpoint) Send(to types.PartyID, m types.Message) error {
	if int(to) < 0 || int(to) >= len(e.hub.boxes) {
		return fmt.Errorf("transport: party %d out of range", to)
	}
	raw := types.Marshal(m)
	decoded, err := types.Unmarshal(raw)
	if err != nil {
		return fmt.Errorf("transport: message does not round-trip: %w", err)
	}
	e.hub.mu.Lock()
	defer e.hub.mu.Unlock()
	if e.hub.closed {
		return ErrClosed
	}
	select {
	case e.hub.boxes[to] <- Envelope{From: e.self, Msg: decoded}:
		return nil
	default:
		// Inbox full: drop. The protocol tolerates message loss from the
		// liveness side (retransmission comes from protocol-level echo
		// and catch-up), and blocking here could deadlock two endpoints
		// sending to each other. The discard is counted, not silent.
		e.hub.stats.InboxOverflow()
		return nil
	}
}

func (e *inprocEndpoint) Inbox() <-chan Envelope { return e.hub.boxes[e.self] }

func (e *inprocEndpoint) Close() error { return nil }

var _ Endpoint = (*inprocEndpoint)(nil)
