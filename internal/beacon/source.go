package beacon

import (
	"fmt"
	"sync"

	"icc/internal/crypto/hash"
	"icc/internal/crypto/thresig"
	"icc/internal/types"
)

// Source is the interface the consensus engines use to interact with the
// random beacon. The production implementation is *Beacon (threshold
// cryptography); *Simulated replaces the cryptography with a hash chain
// while preserving the quorum-waiting semantics and wire sizes, so that
// large simulation sweeps keep the exact message pattern at a fraction
// of the CPU cost (see DESIGN.md §5).
type Source interface {
	// ShareForRound produces this party's round-k beacon share. Fails if
	// R_{k−1} is unknown, and with ErrPruned below the prune watermark.
	ShareForRound(k types.Round) (*types.BeaconShare, error)
	// CachedShareForRound returns the round-k share only if it is already
	// cached; it never signs. The catch-up path uses it to decide which
	// share rounds can be answered inline and which must be deferred to
	// the async backfill worker.
	CachedShareForRound(k types.Round) (*types.BeaconShare, bool)
	// AddShare records a received share (self-shares included). The bool
	// reports whether the share was newly admitted (false for duplicates),
	// which the engine's write-ahead log uses to persist each distinct
	// share exactly once.
	AddShare(s *types.BeaconShare) (bool, error)
	// ShareCount reports the number of shares held for round k.
	ShareCount(k types.Round) int
	// Reveal attempts to compute R_k from the held shares.
	Reveal(k types.Round) (hash.Digest, bool)
	// Have reports whether R_k is known.
	Have(k types.Round) bool
	// Digest returns H(R_k) if known.
	Digest(k types.Round) (hash.Digest, bool)
	// Permutation returns the round-k ranking (perm[rank] = party).
	Permutation(k types.Round) ([]types.PartyID, bool)
	// RankOf returns party p's rank in round k.
	RankOf(k types.Round, p types.PartyID) (types.Rank, bool)
	// Leader returns the rank-0 party of round k.
	Leader(k types.Round) (types.PartyID, bool)
	// Prune discards state for rounds before the given round.
	Prune(before types.Round)
	// InstallDigest seeds the digest chain with an externally verified
	// H(R_k) — from a certified checkpoint — so a restored party can
	// verify and sign round k+1 immediately without the pruned history.
	InstallDigest(k types.Round, d hash.Digest)
}

var _ Source = (*Beacon)(nil)

// OutputSource is an optional capability of a beacon Source: a backend
// whose recovered round value is third-party verifiable can export it
// as one compact wire blob, verify a blob received from the network
// against the beacon's global key, and install a verified blob directly
// — making R_k known without holding a single share. The gossip layer
// uses it to relay one BeaconOutput per round instead of t+1 shares,
// which is what keeps per-party beacon traffic constant as n grows
// (paper §1.1's sublinear-communication argument).
//
// The default DLEQ backend (*Beacon) deliberately does NOT implement
// this interface: its combined signature is checked share-by-share
// against per-party DLEQ proofs, so a third party holding only the
// combined value has nothing to verify it against. *Simulated (hash
// chain, recomputable by anyone) and *BLS (unique signature verified
// with one pairing against the global key) do.
type OutputSource interface {
	Source
	// EncodeOutput returns the round-k output in wire form, once known.
	EncodeOutput(k types.Round) ([]byte, bool)
	// VerifyOutput checks an encoded round-k output against the global
	// key. It fails when R_{k−1} is not yet known, since the signed
	// message chains to it; callers should retry after catching up.
	VerifyOutput(k types.Round, out []byte) error
	// InstallOutput records a round-k output, making R_k known. It
	// performs structural validation only — callers verify first (or
	// consciously skip verification under a trusted-input policy).
	InstallOutput(k types.Round, out []byte) error
}

// Simulated is a Source that derives R_k = H(k, R_{k−1}) directly and
// carries placeholder share bytes sized like real threshold shares. It
// keeps the protocol's observable behaviour — parties still wait for t+1
// distinct shares before revealing a round's beacon, and beacon messages
// have production sizes — but skips the elliptic-curve work. Like
// *Beacon it is safe for concurrent use, so runtime tests can drive the
// async backfill worker against it.
//
// It is NOT cryptographically secure (any party can predict every
// future beacon value); it exists purely to scale honest-majority
// simulation experiments.
type Simulated struct {
	n, threshold int
	self         types.PartyID

	mu         sync.Mutex
	digests    map[types.Round]hash.Digest
	sharesSeen map[types.Round]map[types.PartyID]struct{}
	perms      map[types.Round][]types.PartyID
	own        *shareCache
	minRound   types.Round
}

// NewSimulated creates a simulated beacon for an n-party cluster.
func NewSimulated(n int, self types.PartyID, genesisSeed []byte) *Simulated {
	s := &Simulated{
		n:          n,
		threshold:  types.BeaconQuorum(n),
		self:       self,
		digests:    make(map[types.Round]hash.Digest),
		sharesSeen: make(map[types.Round]map[types.PartyID]struct{}),
		perms:      make(map[types.Round][]types.PartyID),
		own:        newShareCache(0),
	}
	s.digests[0] = hash.Sum(hash.DomainBeacon, genesisSeed)
	return s
}

// SetShareCacheSize resizes the own-share cache (0 = default, negative =
// disabled), discarding existing entries. Tests use tiny sizes to force
// cache misses onto the async backfill path.
func (s *Simulated) SetShareCacheSize(n int) {
	s.mu.Lock()
	s.own = newShareCache(n)
	s.mu.Unlock()
}

// ShareForRound implements Source. The share bytes are a deterministic
// filler of the same length as a real threshold share.
func (s *Simulated) ShareForRound(k types.Round) (*types.BeaconShare, error) {
	if k == 0 {
		return nil, fmt.Errorf("beacon: share for genesis round")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if k < s.minRound {
		return nil, fmt.Errorf("beacon: share for round %d: %w", k, ErrPruned)
	}
	if sh, ok := s.own.get(k); ok {
		return sh, nil
	}
	if _, ok := s.digests[k-1]; !ok {
		return nil, fmt.Errorf("beacon: R_%d not yet known, cannot sign R_%d", k-1, k)
	}
	sh := &types.BeaconShare{Round: k, Signer: s.self, Share: make([]byte, thresig.SigShareLen)}
	s.own.put(k, sh)
	return sh, nil
}

// CachedShareForRound implements Source.
func (s *Simulated) CachedShareForRound(k types.Round) (*types.BeaconShare, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k < s.minRound {
		return nil, false
	}
	return s.own.get(k)
}

// AddShare implements Source.
func (s *Simulated) AddShare(sh *types.BeaconShare) (bool, error) {
	if sh.Signer < 0 || int(sh.Signer) >= s.n {
		return false, fmt.Errorf("beacon: signer %d out of range", sh.Signer)
	}
	if sh.Round == 0 {
		return false, fmt.Errorf("beacon: share for genesis round")
	}
	if len(sh.Share) != thresig.SigShareLen {
		return false, fmt.Errorf("beacon: malformed share")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.sharesSeen[sh.Round]
	if m == nil {
		m = make(map[types.PartyID]struct{})
		s.sharesSeen[sh.Round] = m
	}
	if _, dup := m[sh.Signer]; dup {
		return false, nil
	}
	m[sh.Signer] = struct{}{}
	return true, nil
}

// ShareCount implements Source.
func (s *Simulated) ShareCount(k types.Round) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sharesSeen[k])
}

// Reveal implements Source: it succeeds once t+1 distinct shares were
// seen and R_{k−1} is known, exactly like the real beacon.
func (s *Simulated) Reveal(k types.Round) (hash.Digest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.digests[k]; ok {
		return d, true
	}
	prev, ok := s.digests[k-1]
	if !ok {
		return hash.Digest{}, false
	}
	if len(s.sharesSeen[k]) < s.threshold {
		return hash.Digest{}, false
	}
	d := hash.SumUint64(hash.DomainBeacon, uint64(k))
	d = hash.Sum(hash.DomainBeacon, d[:], prev[:])
	s.digests[k] = d
	return d, true
}

// Have implements Source.
func (s *Simulated) Have(k types.Round) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.digests[k]
	return ok
}

// Digest implements Source.
func (s *Simulated) Digest(k types.Round) (hash.Digest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.digests[k]
	return d, ok
}

// Permutation implements Source.
func (s *Simulated) Permutation(k types.Round) ([]types.PartyID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.permutationLocked(k)
}

func (s *Simulated) permutationLocked(k types.Round) ([]types.PartyID, bool) {
	if p, ok := s.perms[k]; ok {
		return p, true
	}
	d, ok := s.digests[k]
	if !ok {
		return nil, false
	}
	p := PermutationFromDigest(d, s.n)
	s.perms[k] = p
	return p, true
}

// RankOf implements Source.
func (s *Simulated) RankOf(k types.Round, p types.PartyID) (types.Rank, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	perm, ok := s.permutationLocked(k)
	if !ok {
		return 0, false
	}
	for r, q := range perm {
		if q == p {
			return types.Rank(r), true
		}
	}
	return 0, false
}

// Leader implements Source.
func (s *Simulated) Leader(k types.Round) (types.PartyID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	perm, ok := s.permutationLocked(k)
	if !ok {
		return 0, false
	}
	return perm[0], true
}

// Prune implements Source.
func (s *Simulated) Prune(before types.Round) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.sharesSeen {
		if k < before {
			delete(s.sharesSeen, k)
		}
	}
	for k := range s.perms {
		if k < before {
			delete(s.perms, k)
		}
	}
	s.own.pruneBefore(before)
	if before > s.minRound {
		s.minRound = before
	}
}

// InstallDigest implements Source.
func (s *Simulated) InstallDigest(k types.Round, d hash.Digest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.digests[k]; !ok {
		s.digests[k] = d
	}
}

// simOutput computes the round-k value from its predecessor — the same
// derivation Reveal uses.
func simOutput(k types.Round, prev hash.Digest) hash.Digest {
	d := hash.SumUint64(hash.DomainBeacon, uint64(k))
	return hash.Sum(hash.DomainBeacon, d[:], prev[:])
}

// EncodeOutput implements OutputSource: the simulated round value is its
// digest (anyone can recompute it — the backend is not secure, it only
// preserves message patterns).
func (s *Simulated) EncodeOutput(k types.Round) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.digests[k]
	if !ok || k == 0 {
		return nil, false
	}
	return d[:], true
}

// VerifyOutput implements OutputSource by recomputing the hash-chain
// link from R_{k−1}.
func (s *Simulated) VerifyOutput(k types.Round, out []byte) error {
	if k == 0 {
		return fmt.Errorf("beacon: output for genesis round")
	}
	if len(out) != hash.Size {
		return fmt.Errorf("beacon: malformed output (%d bytes)", len(out))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.digests[k-1]
	if !ok {
		return fmt.Errorf("beacon: R_%d not yet known, cannot verify R_%d", k-1, k)
	}
	if want := simOutput(k, prev); string(out) != string(want[:]) {
		return fmt.Errorf("beacon: round %d output mismatch", k)
	}
	return nil
}

// InstallOutput implements OutputSource.
func (s *Simulated) InstallOutput(k types.Round, out []byte) error {
	if k == 0 {
		return fmt.Errorf("beacon: output for genesis round")
	}
	if len(out) != hash.Size {
		return fmt.Errorf("beacon: malformed output (%d bytes)", len(out))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if k < s.minRound {
		return nil
	}
	if _, ok := s.digests[k]; !ok {
		s.digests[k] = hash.Digest(out)
	}
	return nil
}

var (
	_ Source       = (*Simulated)(nil)
	_ OutputSource = (*Simulated)(nil)
)
