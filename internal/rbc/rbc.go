// Package rbc implements ICC2's erasure-coded reliable-broadcast
// subprotocol for block dissemination (paper §1). Instead of
// broadcasting a block of size S to all n parties (cost n·S at the
// proposer), the proposer Reed–Solomon-encodes the block into n
// fragments with reconstruction threshold k = n−2t, commits to them with
// a Merkle root, and sends each party its own fragment plus an inclusion
// proof. Each party echoes its fragment to everyone; once a party holds
// k consistent fragments it reconstructs the block, re-encodes it, and
// accepts only if the recomputed Merkle root matches (catching corrupt
// proposers that encode inconsistently — the verifiable-dispersal idea
// of [11]).
//
// Properties delivered (and exploited by ICC2):
//   - per-party communication O(S·n/(n−2t)) = O(S) for t < n/3;
//   - two network hops from proposer to every party holding the block
//     (send + echo) — one hop more than direct broadcast, which is why
//     ICC2's reciprocal throughput is 3δ and latency 4δ instead of
//     ICC0/ICC1's 2δ and 3δ;
//   - totality: echoes are broadcasts, so if any honest party
//     reconstructs, the k echoes it used reach every honest party,
//     and all of them reconstruct too.
//
// Everything other than blocks (signature shares, notarizations,
// finalizations, beacon shares) is still broadcast directly — those are
// small (paper §1: "Signatures and signature shares are typically very
// small... while blocks may be very large").
package rbc

import (
	"bytes"
	"fmt"
	"time"

	"icc/internal/crypto/hash"
	"icc/internal/erasure"
	"icc/internal/merkle"
	"icc/internal/types"

	"icc/internal/engine"
)

// Config tunes one party's RBC wrapper.
type Config struct {
	Self types.PartyID
	N    int
	// MaxSessions caps concurrently tracked dissemination sessions to
	// bound memory under spam. Default 1024.
	MaxSessions int
}

// sessionKey identifies one dissemination instance.
type sessionKey struct {
	round    types.Round
	proposer types.PartyID
	root     hash.Digest
}

// session tracks fragments for one (round, proposer, root).
type session struct {
	blockLen   int
	dataShards int
	fragments  map[int][]byte
	proofs     map[int][]hash.Digest
	echoedOwn  bool
	delivered  bool
	rejected   bool // re-encode check failed: proposer encoded inconsistently
}

// Engine is the ICC2 dissemination wrapper.
type Engine struct {
	cfg      Config
	inner    engine.Engine
	code     *erasure.Code
	sessions map[sessionKey]*session
	order    []sessionKey

	out []engine.Output
}

// Wrap builds the ICC2 dissemination wrapper around an engine.
func Wrap(cfg Config, inner engine.Engine) *Engine {
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 1024
	}
	k := cfg.N - 2*types.MaxFaults(cfg.N)
	code, err := erasure.NewCode(k, cfg.N)
	if err != nil {
		panic(fmt.Sprintf("rbc: building code for n=%d: %v", cfg.N, err))
	}
	return &Engine{
		cfg:      cfg,
		inner:    inner,
		code:     code,
		sessions: make(map[sessionKey]*session),
	}
}

// ID implements engine.Engine.
func (r *Engine) ID() types.PartyID { return r.inner.ID() }

// CurrentRound implements engine.Engine.
func (r *Engine) CurrentRound() types.Round { return r.inner.CurrentRound() }

// NextWake implements engine.Engine.
func (r *Engine) NextWake(now time.Duration) (time.Duration, bool) { return r.inner.NextWake(now) }

// Init implements engine.Engine.
func (r *Engine) Init(now time.Duration) []engine.Output {
	r.transform(r.inner.Init(now))
	return r.drain()
}

// Tick implements engine.Engine.
func (r *Engine) Tick(now time.Duration) []engine.Output {
	r.transform(r.inner.Tick(now))
	return r.drain()
}

// HandleMessage implements engine.Engine.
func (r *Engine) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	if f, ok := m.(*types.Fragment); ok {
		r.handleFragment(f, now)
		return r.drain()
	}
	r.transform(r.inner.HandleMessage(from, m, now))
	return r.drain()
}

func (r *Engine) drain() []engine.Output {
	out := r.out
	r.out = nil
	return out
}

// transform rewrites the inner engine's outputs: block bodies are
// replaced by fragment dissemination; everything else passes through.
func (r *Engine) transform(outs []engine.Output) {
	for _, o := range outs {
		bundle, ok := o.Msg.(*types.Bundle)
		if !ok || !o.Broadcast {
			r.out = append(r.out, o)
			continue
		}
		var rest []types.Message
		for _, m := range bundle.Messages {
			bm, isBlock := m.(*types.BlockMsg)
			if !isBlock {
				rest = append(rest, m)
				continue
			}
			if bm.Block.Proposer == r.cfg.Self {
				// Our own proposal: disperse it.
				r.disperse(bm.Block)
			}
			// Echoed foreign blocks are dropped: RBC's fragment echoes
			// already provide totality, so re-broadcasting the full
			// block would reintroduce the n·S cost ICC2 removes.
		}
		if len(rest) > 0 {
			r.out = append(r.out, engine.Broadcast(&types.Bundle{Messages: rest}))
		}
	}
}

// disperse encodes and sends one block's fragments.
func (r *Engine) disperse(b *types.Block) {
	enc := types.Marshal(&types.BlockMsg{Block: b})
	shards, err := r.code.Encode(enc)
	if err != nil {
		return
	}
	leaves := make([][]byte, len(shards))
	for i, s := range shards {
		leaves[i] = s
	}
	tree, err := merkle.New(leaves)
	if err != nil {
		return
	}
	root := tree.Root()
	for p := 0; p < r.cfg.N; p++ {
		if types.PartyID(p) == r.cfg.Self {
			continue
		}
		proof, err := tree.Proof(p)
		if err != nil {
			continue
		}
		r.out = append(r.out, engine.Unicast(types.PartyID(p), &types.Fragment{
			Round:      b.Round,
			Proposer:   b.Proposer,
			Root:       root,
			BlockLen:   uint32(len(enc)),
			DataShards: uint16(r.code.DataShards()),
			Index:      uint16(p),
			Sender:     r.cfg.Self,
			Echo:       false,
			Data:       shards[p],
			Proof:      proof,
		}))
	}
	// Mark our own session delivered (we have the block already).
	key := sessionKey{round: b.Round, proposer: b.Proposer, root: root}
	s := r.getSession(key, len(enc), r.code.DataShards())
	if s != nil {
		s.delivered = true
		s.echoedOwn = true
	}
}

// getSession fetches or creates a session, enforcing the cap.
func (r *Engine) getSession(key sessionKey, blockLen, dataShards int) *session {
	if s, ok := r.sessions[key]; ok {
		return s
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		old := r.order[0]
		r.order = r.order[1:]
		delete(r.sessions, old)
	}
	s := &session{
		blockLen:   blockLen,
		dataShards: dataShards,
		fragments:  make(map[int][]byte),
		proofs:     make(map[int][]hash.Digest),
	}
	r.sessions[key] = s
	r.order = append(r.order, key)
	return s
}

// handleFragment processes a received fragment: verify its proof, store
// it, echo our own fragment, and reconstruct once k fragments are held.
func (r *Engine) handleFragment(f *types.Fragment, now time.Duration) {
	if int(f.Index) >= r.cfg.N || int(f.DataShards) != r.code.DataShards() {
		return
	}
	if merkle.Verify(f.Root, f.Data, int(f.Index), r.cfg.N, f.Proof) != nil {
		return
	}
	key := sessionKey{round: f.Round, proposer: f.Proposer, root: f.Root}
	s := r.getSession(key, int(f.BlockLen), int(f.DataShards))
	if s.delivered || s.rejected {
		return
	}
	if int(f.BlockLen) != s.blockLen {
		return // inconsistent metadata for the same root
	}
	if _, dup := s.fragments[int(f.Index)]; !dup {
		s.fragments[int(f.Index)] = f.Data
		s.proofs[int(f.Index)] = f.Proof
	}
	// Echo our own fragment the first time we can.
	if !s.echoedOwn {
		if data, ok := s.fragments[int(r.cfg.Self)]; ok {
			s.echoedOwn = true
			r.out = append(r.out, engine.Broadcast(&types.Fragment{
				Round:      f.Round,
				Proposer:   f.Proposer,
				Root:       f.Root,
				BlockLen:   f.BlockLen,
				DataShards: f.DataShards,
				Index:      uint16(r.cfg.Self),
				Sender:     r.cfg.Self,
				Echo:       true,
				Data:       data,
				Proof:      s.proofs[int(r.cfg.Self)],
			}))
		}
	}
	if len(s.fragments) < r.code.DataShards() {
		return
	}
	r.tryReconstruct(key, s, now)
}

// tryReconstruct decodes the block, re-encodes it, verifies the root,
// and on success delivers the block to the inner engine.
func (r *Engine) tryReconstruct(key sessionKey, s *session, now time.Duration) {
	enc, err := r.code.Reconstruct(s.fragments, s.blockLen)
	if err != nil {
		return
	}
	// Re-encode and check every shard against the committed root: a
	// corrupt proposer that handed out fragments of different blocks
	// under one root is detected here.
	shards, err := r.code.Encode(enc)
	if err != nil {
		s.rejected = true
		return
	}
	leaves := make([][]byte, len(shards))
	for i, sh := range shards {
		leaves[i] = sh
	}
	tree, err := merkle.New(leaves)
	if err != nil || tree.Root() != key.root {
		s.rejected = true
		return
	}
	// Cross-check the fragments we actually used.
	for idx, frag := range s.fragments {
		if !bytes.Equal(shards[idx], frag) {
			s.rejected = true
			return
		}
	}
	m, err := types.Unmarshal(enc)
	if err != nil {
		s.rejected = true
		return
	}
	bm, ok := m.(*types.BlockMsg)
	if !ok || bm.Block == nil || bm.Block.Round != key.round || bm.Block.Proposer != key.proposer {
		s.rejected = true
		return
	}
	s.delivered = true
	// Now that we can compute every shard, make sure our own fragment is
	// echoed even if the proposer never sent it to us.
	if !s.echoedOwn {
		s.echoedOwn = true
		proof, err := tree.Proof(int(r.cfg.Self))
		if err == nil {
			r.out = append(r.out, engine.Broadcast(&types.Fragment{
				Round:      key.round,
				Proposer:   key.proposer,
				Root:       key.root,
				BlockLen:   uint32(s.blockLen),
				DataShards: uint16(s.dataShards),
				Index:      uint16(r.cfg.Self),
				Sender:     r.cfg.Self,
				Echo:       true,
				Data:       shards[r.cfg.Self],
				Proof:      proof,
			}))
		}
	}
	r.transform(r.inner.HandleMessage(key.proposer, bm, now))
}

var _ engine.Engine = (*Engine)(nil)
