package statemachine

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"icc/internal/crypto/hash"
	"icc/internal/types"
)

func TestPayloadRoundTrip(t *testing.T) {
	cmds := []Command{
		{Client: 1, Seq: 1, Op: OpSet, Key: "a", Value: []byte("1")},
		{Client: 2, Seq: 9, Op: OpDelete, Key: "b"},
		{Client: 1, Seq: 2, Op: OpAppend, Key: "a", Value: []byte("23")},
	}
	got, err := DecodePayload(EncodePayload(cmds))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cmds) {
		t.Fatalf("got %d commands", len(got))
	}
	for i := range cmds {
		if got[i].Client != cmds[i].Client || got[i].Seq != cmds[i].Seq ||
			got[i].Op != cmds[i].Op || got[i].Key != cmds[i].Key ||
			!bytes.Equal(got[i].Value, cmds[i].Value) {
			t.Fatalf("command %d mismatch", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodePayload([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	enc := EncodePayload([]Command{{Client: 1, Seq: 1, Op: OpSet, Key: "k"}})
	if _, err := DecodePayload(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, err := DecodePayload(append(enc, 0)); err == nil {
		t.Fatal("trailing accepted")
	}
	if cmds, err := DecodePayload(nil); err != nil || cmds != nil {
		t.Fatal("empty payload should decode to no commands")
	}
}

func TestQuickPayloadRoundTrip(t *testing.T) {
	f := func(client, seq uint64, key string, value []byte) bool {
		in := []Command{{Client: client, Seq: seq, Op: OpSet, Key: key, Value: value}}
		out, err := DecodePayload(EncodePayload(in))
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0].Client == client && out[0].Seq == seq && out[0].Key == key && bytes.Equal(out[0].Value, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKVApplyAndState(t *testing.T) {
	kv := NewKV()
	if err := kv.Apply(EncodePayload([]Command{
		{Client: 1, Seq: 1, Op: OpSet, Key: "x", Value: []byte("1")},
		{Client: 1, Seq: 2, Op: OpAppend, Key: "x", Value: []byte("2")},
		{Client: 2, Seq: 1, Op: OpSet, Key: "y", Value: []byte("z")},
	})); err != nil {
		t.Fatal(err)
	}
	if v, _ := kv.Get("x"); !bytes.Equal(v, []byte("12")) {
		t.Fatalf("x = %q", v)
	}
	if err := kv.Apply(EncodePayload([]Command{{Client: 2, Seq: 2, Op: OpDelete, Key: "y"}})); err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.Get("y"); ok {
		t.Fatal("y not deleted")
	}
	if kv.Len() != 1 || kv.AppliedOps() != 4 {
		t.Fatalf("len=%d ops=%d", kv.Len(), kv.AppliedOps())
	}
}

func TestKVExactlyOnce(t *testing.T) {
	kv := NewKV()
	p := EncodePayload([]Command{{Client: 1, Seq: 1, Op: OpAppend, Key: "k", Value: []byte("x")}})
	if err := kv.Apply(p); err != nil {
		t.Fatal(err)
	}
	if err := kv.Apply(p); err != nil {
		t.Fatal(err) // duplicate payload: commands skipped
	}
	if v, _ := kv.Get("k"); !bytes.Equal(v, []byte("x")) {
		t.Fatalf("duplicate applied: k = %q", v)
	}
}

func TestKVStateHashDeterministic(t *testing.T) {
	a, b := NewKV(), NewKV()
	// Same commands in different payload groupings.
	c1 := Command{Client: 1, Seq: 1, Op: OpSet, Key: "a", Value: []byte("1")}
	c2 := Command{Client: 1, Seq: 2, Op: OpSet, Key: "b", Value: []byte("2")}
	if err := a.Apply(EncodePayload([]Command{c1, c2})); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(EncodePayload([]Command{c1})); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(EncodePayload([]Command{c2})); err != nil {
		t.Fatal(err)
	}
	if a.StateHash() != b.StateHash() {
		t.Fatal("same command sequence, different state hashes")
	}
	if err := b.Apply(EncodePayload([]Command{{Client: 9, Seq: 1, Op: OpSet, Key: "c", Value: []byte("3")}})); err != nil {
		t.Fatal(err)
	}
	if a.StateHash() == b.StateHash() {
		t.Fatal("different states, same hash")
	}
}

func TestQueueSubmitDedup(t *testing.T) {
	q := NewQueue()
	if err := q.TrySubmit(Command{Client: 1, Seq: 1, Op: OpSet, Key: "k"}); err != nil {
		t.Fatalf("first submit rejected: %v", err)
	}
	if err := q.TrySubmit(Command{Client: 1, Seq: 1, Op: OpSet, Key: "k"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate submit: err = %v, want ErrDuplicate", err)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestQueueGetPayloadBatchesAndSkipsChain(t *testing.T) {
	q := NewQueue()
	for i := uint64(1); i <= 5; i++ {
		if err := q.TrySubmit(Command{Client: 7, Seq: i, Op: OpSet, Key: "k", Value: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Build a parent block whose payload already contains seq 1 and 2.
	parentPayload := EncodePayload([]Command{
		{Client: 7, Seq: 1, Op: OpSet, Key: "k", Value: []byte{1}},
		{Client: 7, Seq: 2, Op: OpSet, Key: "k", Value: []byte{2}},
	})
	parent := &types.Block{Round: 3, Proposer: 0, Payload: parentPayload}
	payload := q.GetPayload(4, parent, func(hash.Digest) *types.Block { return nil })
	cmds, err := DecodePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("batched %d commands, want 3 (chain dedup)", len(cmds))
	}
	for _, c := range cmds {
		if c.Seq <= 2 {
			t.Fatalf("seq %d re-proposed despite being in chain", c.Seq)
		}
	}
}

func TestQueueGetPayloadWalksAncestors(t *testing.T) {
	q := NewQueue()
	if err := q.TrySubmit(Command{Client: 1, Seq: 1, Op: OpSet, Key: "a"}); err != nil {
		t.Fatal(err)
	}
	grand := &types.Block{Round: 1, Proposer: 0,
		Payload: EncodePayload([]Command{{Client: 1, Seq: 1, Op: OpSet, Key: "a"}})}
	parent := &types.Block{Round: 2, Proposer: 1, ParentHash: grand.Hash()}
	lookup := func(h hash.Digest) *types.Block {
		if h == grand.Hash() {
			return grand
		}
		return nil
	}
	if p := q.GetPayload(3, parent, lookup); p != nil {
		t.Fatal("command in grandparent was re-proposed")
	}
}

func TestQueueMarkCommitted(t *testing.T) {
	q := NewQueue()
	if err := q.TrySubmit(Command{Client: 1, Seq: 1, Op: OpSet, Key: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := q.TrySubmit(Command{Client: 1, Seq: 2, Op: OpSet, Key: "b"}); err != nil {
		t.Fatal(err)
	}
	q.MarkCommitted(EncodePayload([]Command{{Client: 1, Seq: 1, Op: OpSet, Key: "a"}}))
	if q.Len() != 1 {
		t.Fatalf("len = %d after commit", q.Len())
	}
	// The identity is freed: resubmitting the committed command works
	// (the KV layer's watermark still dedups it).
	if err := q.TrySubmit(Command{Client: 1, Seq: 1, Op: OpSet, Key: "a"}); err != nil {
		t.Fatalf("resubmit after commit rejected: %v", err)
	}
}

func TestQueueEmptyPayloadIsNil(t *testing.T) {
	q := NewQueue()
	if p := q.GetPayload(1, types.RootBlock(), nil); p != nil {
		t.Fatal("empty queue produced a payload")
	}
}

func TestQueueMaxBatch(t *testing.T) {
	q := NewQueue()
	q.MaxBatch = 3
	for i := uint64(1); i <= 10; i++ {
		if err := q.TrySubmit(Command{Client: 1, Seq: i, Op: OpSet, Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	cmds, err := DecodePayload(q.GetPayload(1, types.RootBlock(), nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("batch size %d, want 3", len(cmds))
	}
}

func TestQueueConcurrentSubmit(t *testing.T) {
	q := NewQueue()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := uint64(1); i <= 100; i++ {
				_ = q.TrySubmit(Command{Client: uint64(g), Seq: i, Op: OpSet, Key: "k"})
			}
		}()
	}
	timeout := time.After(5 * time.Second)
	for g := 0; g < 4; g++ {
		select {
		case <-done:
		case <-timeout:
			t.Fatal("deadlock")
		}
	}
	if q.Len() != 400 {
		t.Fatalf("len = %d, want 400", q.Len())
	}
}

func TestKVSnapshotRestore(t *testing.T) {
	kv := NewKV()
	if err := kv.Apply(EncodePayload([]Command{
		{Client: 1, Seq: 1, Op: OpSet, Key: "a", Value: []byte("1")},
		{Client: 2, Seq: 5, Op: OpSet, Key: "b", Value: []byte("2")},
		{Client: 1, Seq: 2, Op: OpAppend, Key: "a", Value: []byte("x")},
	})); err != nil {
		t.Fatal(err)
	}
	snap := kv.Snapshot()
	restored, err := RestoreKV(snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.StateHash() != kv.StateHash() {
		t.Fatal("restored state hash differs")
	}
	if restored.AppliedOps() != kv.AppliedOps() {
		t.Fatal("ops counter lost")
	}
	// Watermarks survive: a replayed old command is still deduplicated.
	if err := restored.Apply(EncodePayload([]Command{
		{Client: 2, Seq: 4, Op: OpSet, Key: "b", Value: []byte("stale")},
	})); err != nil {
		t.Fatal(err)
	}
	if v, _ := restored.Get("b"); string(v) != "2" {
		t.Fatal("stale command applied after restore — watermark lost")
	}
	// New commands continue to apply.
	if err := restored.Apply(EncodePayload([]Command{
		{Client: 2, Seq: 6, Op: OpSet, Key: "c", Value: []byte("3")},
	})); err != nil {
		t.Fatal(err)
	}
	if _, ok := restored.Get("c"); !ok {
		t.Fatal("new command rejected after restore")
	}
}

func TestKVSnapshotDeterministic(t *testing.T) {
	a, b := NewKV(), NewKV()
	cmds := []Command{
		{Client: 1, Seq: 1, Op: OpSet, Key: "x", Value: []byte("1")},
		{Client: 3, Seq: 1, Op: OpSet, Key: "y", Value: []byte("2")},
	}
	// Same commands, different payload groupings.
	if err := a.Apply(EncodePayload(cmds)); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(EncodePayload(cmds[:1])); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(EncodePayload(cmds[1:])); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("equivalent states produced different snapshots")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreKV([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	kv := NewKV()
	_ = kv.Apply(EncodePayload([]Command{{Client: 1, Seq: 1, Op: OpSet, Key: "k", Value: []byte("v")}}))
	snap := kv.Snapshot()
	if _, err := RestoreKV(snap[:len(snap)-1]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := RestoreKV(append(snap, 0)); err == nil {
		t.Fatal("oversized snapshot accepted")
	}
}
