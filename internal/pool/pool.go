// Package pool implements each party's message pool and block-tree
// (paper §3.1, §3.4): the set of all artifacts received from all parties
// (including itself), with the validity ladder a block climbs —
// authentic → valid → notarized → finalized — computed relative to the
// pool's contents.
//
// Cryptographic checks happen at admission: artifacts that fail
// signature verification are rejected and never influence protocol
// state. Validity (which is recursive through parent notarizations) is
// evaluated on demand and memoized — the properties are monotone, so a
// block that once classified as valid stays valid.
package pool

import (
	"fmt"

	"icc/internal/crypto"
	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/types"
)

// Pool is one party's artifact store. Not safe for concurrent use; the
// engine serialises access.
type Pool struct {
	pub  *keys.Public
	self types.PartyID

	rootHash hash.Digest

	blocks  map[hash.Digest]*types.Block
	byRound map[types.Round][]hash.Digest

	auths        map[hash.Digest]*types.Authenticator
	notarShares  map[hash.Digest]map[types.PartyID]*types.NotarizationShare
	notarization map[hash.Digest]*types.Notarization
	finalShares  map[hash.Digest]map[types.PartyID]*types.FinalizationShare
	finalization map[hash.Digest]*types.Finalization

	// Memoized ladder results (only `true` is cached — the properties
	// are monotone in pool contents).
	validCache map[hash.Digest]bool

	// finalizedRounds tracks rounds for which a finalization artifact or
	// a full share set might exist, so the finalizer doesn't scan
	// everything.
	finalizableDirty map[types.Round]struct{}

	// Count-threshold indices: blocks whose share sets crossed the
	// combination threshold (or that received a combined certificate),
	// per round. The engine's hot loops iterate these short candidate
	// lists instead of scanning every block of the round — at n=100 a
	// round can hold several equivocating proposals with O(n) shares
	// each, and the per-message rescan was the pool's dominant cost.
	notarReady map[types.Round][]hash.Digest
	finalReady map[types.Round][]hash.Digest

	// nzInRound memoizes NotarizedInRound hits. Notarization is monotone,
	// so a hit stays correct; misses re-scan (the answer can change).
	nzInRound map[types.Round]hash.Digest

	// verifier performs the cryptographic admission checks. Structural
	// checks that depend on pool state (duplicates, block contradiction)
	// remain in the Add methods themselves.
	verifier Verifier
}

// Options tunes a Pool.
type Options struct {
	// Verifier performs the cryptographic admission checks. Nil selects
	// a CryptoVerifier over the pool's key material with Policy.
	Verifier Verifier
	// Policy tunes the default verifier when Verifier is nil: VerifyFull
	// for raw network input, VerifySharesOnly for honest-only simulation
	// sweeps, VerifyPreVerified when a verification pipeline upstream
	// has already checked every inbound artifact.
	Policy VerifyPolicy
}

// New creates an empty pool initialised with the root block, which is
// "always considered authentic, valid, notarized, and finalized"
// (paper §3.4).
func New(pub *keys.Public, self types.PartyID, opts Options) *Pool {
	root := types.RootBlock()
	rh := root.Hash()
	p := &Pool{
		pub:              pub,
		self:             self,
		rootHash:         rh,
		blocks:           map[hash.Digest]*types.Block{rh: root},
		byRound:          map[types.Round][]hash.Digest{0: {rh}},
		auths:            make(map[hash.Digest]*types.Authenticator),
		notarShares:      make(map[hash.Digest]map[types.PartyID]*types.NotarizationShare),
		notarization:     make(map[hash.Digest]*types.Notarization),
		finalShares:      make(map[hash.Digest]map[types.PartyID]*types.FinalizationShare),
		finalization:     make(map[hash.Digest]*types.Finalization),
		validCache:       make(map[hash.Digest]bool),
		finalizableDirty: make(map[types.Round]struct{}),
		notarReady:       make(map[types.Round][]hash.Digest),
		finalReady:       make(map[types.Round][]hash.Digest),
		nzInRound:        make(map[types.Round]hash.Digest),
		verifier:         opts.Verifier,
	}
	if p.verifier == nil {
		p.verifier = NewVerifier(pub, opts.Policy)
	}
	return p
}

// RootHash returns the hash of the genesis block.
func (p *Pool) RootHash() hash.Digest { return p.rootHash }

// AddBlock stores a block. It returns true if the block is new.
// No signature check happens here — a block only matters once its
// authenticator arrives (AddAuthenticator).
func (p *Pool) AddBlock(b *types.Block) bool {
	if b == nil || b.IsRoot() {
		return false
	}
	h := b.Hash()
	if _, ok := p.blocks[h]; ok {
		return false
	}
	p.blocks[h] = b
	p.byRound[b.Round] = append(p.byRound[b.Round], h)
	return true
}

// AddAuthenticator verifies and stores an authenticator.
//
// All verified-artifact adders share one contract: (true, nil) means
// newly stored, (false, nil) means a benign no-op (duplicate or already
// present), and (false, err) means the artifact was rejected — err wraps
// an internal/crypto sentinel so callers can attribute the reject.
func (p *Pool) AddAuthenticator(a *types.Authenticator) (bool, error) {
	if a == nil {
		return false, fmt.Errorf("%w: nil authenticator", crypto.ErrBadSignature)
	}
	if _, ok := p.auths[a.BlockHash]; ok {
		return false, nil
	}
	if err := p.verifier.Authenticator(a); err != nil {
		return false, err
	}
	p.auths[a.BlockHash] = a
	return true, nil
}

// AddNotarizationShare verifies and stores a share. Returns true if
// newly stored. A share whose claimed (round, proposer) contradicts a
// block already in the pool is rejected: it could never combine into a
// verifiable notarization for that block, and counting it would let an
// adversary inflate the share count.
func (p *Pool) AddNotarizationShare(s *types.NotarizationShare) (bool, error) {
	if s == nil {
		return false, fmt.Errorf("%w: nil notarization share", crypto.ErrBadShare)
	}
	if b, ok := p.blocks[s.BlockHash]; ok && (b.Round != s.Round || b.Proposer != s.Proposer) {
		return false, fmt.Errorf("%w: notarization share for round %d/proposer %d", crypto.Mismatch, s.Round, s.Proposer)
	}
	m := p.notarShares[s.BlockHash]
	if _, dup := m[s.Signer]; dup {
		return false, nil
	}
	if err := p.verifier.NotarizationShare(s); err != nil {
		return false, err
	}
	if m == nil {
		m = make(map[types.PartyID]*types.NotarizationShare)
		p.notarShares[s.BlockHash] = m
	}
	m[s.Signer] = s
	if len(m) == p.pub.Notary.Quorum() {
		p.markReady(p.notarReady, s.Round, s.BlockHash)
	}
	return true, nil
}

// markReady appends h to a per-round candidate list, once.
func (p *Pool) markReady(idx map[types.Round][]hash.Digest, k types.Round, h hash.Digest) {
	for _, have := range idx[k] {
		if have == h {
			return
		}
	}
	idx[k] = append(idx[k], h)
}

// AddNotarization verifies and stores a combined notarization (same
// result contract as AddAuthenticator).
func (p *Pool) AddNotarization(nz *types.Notarization) (bool, error) {
	if nz == nil {
		return false, fmt.Errorf("%w: nil notarization", crypto.ErrBadAggregate)
	}
	if _, ok := p.notarization[nz.BlockHash]; ok {
		return false, nil
	}
	if err := p.verifier.Notarization(nz); err != nil {
		return false, err
	}
	p.notarization[nz.BlockHash] = nz
	return true, nil
}

// AddFinalizationShare verifies and stores a share (same mismatch rule
// as AddNotarizationShare, same result contract as AddAuthenticator).
func (p *Pool) AddFinalizationShare(s *types.FinalizationShare) (bool, error) {
	if s == nil {
		return false, fmt.Errorf("%w: nil finalization share", crypto.ErrBadShare)
	}
	if b, ok := p.blocks[s.BlockHash]; ok && (b.Round != s.Round || b.Proposer != s.Proposer) {
		return false, fmt.Errorf("%w: finalization share for round %d/proposer %d", crypto.Mismatch, s.Round, s.Proposer)
	}
	m := p.finalShares[s.BlockHash]
	if _, dup := m[s.Signer]; dup {
		return false, nil
	}
	if err := p.verifier.FinalizationShare(s); err != nil {
		return false, err
	}
	if m == nil {
		m = make(map[types.PartyID]*types.FinalizationShare)
		p.finalShares[s.BlockHash] = m
	}
	m[s.Signer] = s
	p.finalizableDirty[s.Round] = struct{}{}
	if len(m) == p.pub.Final.Quorum() {
		p.markReady(p.finalReady, s.Round, s.BlockHash)
	}
	return true, nil
}

// AddFinalization verifies and stores a combined finalization (same
// result contract as AddAuthenticator).
func (p *Pool) AddFinalization(f *types.Finalization) (bool, error) {
	if f == nil {
		return false, fmt.Errorf("%w: nil finalization", crypto.ErrBadAggregate)
	}
	if _, ok := p.finalization[f.BlockHash]; ok {
		return false, nil
	}
	if err := p.verifier.Finalization(f); err != nil {
		return false, err
	}
	p.finalization[f.BlockHash] = f
	p.finalizableDirty[f.Round] = struct{}{}
	p.markReady(p.finalReady, f.Round, f.BlockHash)
	return true, nil
}

// Block returns the block with the given hash, if present.
func (p *Pool) Block(h hash.Digest) *types.Block { return p.blocks[h] }

// IsAuthentic reports whether the block is present with a verified
// authenticator whose (round, proposer) matches the block's own claim
// (paper §3.4).
func (p *Pool) IsAuthentic(h hash.Digest) bool {
	if h == p.rootHash {
		return true
	}
	b, ok := p.blocks[h]
	if !ok {
		return false
	}
	a, ok := p.auths[h]
	return ok && a.Round == b.Round && a.Proposer == b.Proposer
}

// IsValid reports whether the block is valid: authentic, and its parent
// is a notarized block of the previous round (paper §3.4).
func (p *Pool) IsValid(h hash.Digest) bool {
	if h == p.rootHash {
		return true
	}
	if p.validCache[h] {
		return true
	}
	b, ok := p.blocks[h]
	if !ok || !p.IsAuthentic(h) {
		return false
	}
	parent, ok := p.blocks[b.ParentHash]
	if !ok || parent.Round != b.Round-1 {
		return false
	}
	if !p.IsNotarized(b.ParentHash) {
		return false
	}
	p.validCache[h] = true
	return true
}

// IsNotarized reports whether the block is valid and carries a
// notarization (paper §3.4). The root is always notarized.
func (p *Pool) IsNotarized(h hash.Digest) bool {
	if h == p.rootHash {
		return true
	}
	if _, ok := p.notarization[h]; !ok {
		return false
	}
	return p.IsValid(h)
}

// IsFinalized reports whether the block is valid and carries a
// finalization.
func (p *Pool) IsFinalized(h hash.Digest) bool {
	if h == p.rootHash {
		return true
	}
	if _, ok := p.finalization[h]; !ok {
		return false
	}
	return p.IsValid(h)
}

// BlocksInRound returns the hashes of all blocks stored for a round.
func (p *Pool) BlocksInRound(k types.Round) []hash.Digest {
	return p.byRound[k]
}

// NotarizedInRound returns the first notarized block of the round found,
// if any. Hits are memoized (notarization is monotone), so the hot
// callers — tryPropose consulting round k−1, resync consulting the
// current round — pay the linear scan at most once per round.
func (p *Pool) NotarizedInRound(k types.Round) (hash.Digest, bool) {
	if h, ok := p.nzInRound[k]; ok {
		return h, true
	}
	for _, h := range p.byRound[k] {
		if p.IsNotarized(h) {
			p.nzInRound[k] = h
			return h, true
		}
	}
	return hash.Digest{}, false
}

// NotarShareCount returns how many distinct verified notarization shares
// are held for the block.
func (p *Pool) NotarShareCount(h hash.Digest) int { return len(p.notarShares[h]) }

// NotarShares returns the verified notarization shares for the block as
// aggregate-scheme shares ready for combination.
//
// Deprecated: NotarShares materialises an O(n) slice per call, and its
// callers invariably re-verified every share inside Combine.
// Use NotarShareCount to poll and NotarAggregateIfReady to combine.
func (p *Pool) NotarShares(h hash.Digest) []*aggsig.Share {
	m := p.notarShares[h]
	out := make([]*aggsig.Share, 0, len(m))
	for pid := 0; pid < p.pub.N; pid++ {
		if s, ok := m[types.PartyID(pid)]; ok {
			out = append(out, &aggsig.Share{Signer: int(s.Signer), Signature: s.Sig})
		}
	}
	return out
}

// NotarAggregateIfReady combines the held notarization shares for the
// block into an aggregate, reporting false while fewer than threshold
// distinct shares are held. Every share in the pool passed admission
// verification (the verifier, or — under VerifyPreVerified — the
// upstream pipeline that policy attests to), so combination skips the
// per-share signature re-check the old NotarShares+Combine path paid on
// every poll.
func (p *Pool) NotarAggregateIfReady(h hash.Digest) (aggsig.Certificate, bool) {
	return aggregateIfReady(p.pub.Notary, sharesOf(p.notarShares[h], func(s *types.NotarizationShare) (types.PartyID, []byte) {
		return s.Signer, s.Sig
	}))
}

// ForEachNotarShareMessage visits the held notarization shares for the
// block in signer order (deterministic, for byte-stable resync bundles)
// without materialising a slice.
func (p *Pool) ForEachNotarShareMessage(h hash.Digest, fn func(*types.NotarizationShare)) {
	m := p.notarShares[h]
	for pid := 0; len(m) > 0 && pid < p.pub.N; pid++ {
		if s, ok := m[types.PartyID(pid)]; ok {
			fn(s)
		}
	}
}

// Notarization returns the stored notarization for the block, if any.
func (p *Pool) Notarization(h hash.Digest) *types.Notarization { return p.notarization[h] }

// FinalShareCount returns how many distinct verified finalization shares
// are held for the block.
func (p *Pool) FinalShareCount(h hash.Digest) int { return len(p.finalShares[h]) }

// FinalShares returns the verified finalization shares for the block.
//
// Deprecated: FinalShares materialises an O(n) slice per call. Use
// FinalShareCount to poll and FinalAggregateIfReady to combine.
func (p *Pool) FinalShares(h hash.Digest) []*aggsig.Share {
	m := p.finalShares[h]
	out := make([]*aggsig.Share, 0, len(m))
	for pid := 0; pid < p.pub.N; pid++ {
		if s, ok := m[types.PartyID(pid)]; ok {
			out = append(out, &aggsig.Share{Signer: int(s.Signer), Signature: s.Sig})
		}
	}
	return out
}

// FinalAggregateIfReady combines the held finalization shares for the
// block into an aggregate, reporting false while fewer than threshold
// distinct shares are held (same verification contract as
// NotarAggregateIfReady).
func (p *Pool) FinalAggregateIfReady(h hash.Digest) (aggsig.Certificate, bool) {
	return aggregateIfReady(p.pub.Final, sharesOf(p.finalShares[h], func(s *types.FinalizationShare) (types.PartyID, []byte) {
		return s.Signer, s.Sig
	}))
}

// ForEachFinalShareMessage visits the held finalization shares for the
// block in signer order without materialising a slice.
func (p *Pool) ForEachFinalShareMessage(h hash.Digest, fn func(*types.FinalizationShare)) {
	m := p.finalShares[h]
	for pid := 0; len(m) > 0 && pid < p.pub.N; pid++ {
		if s, ok := m[types.PartyID(pid)]; ok {
			fn(s)
		}
	}
}

// sharesOf converts a signer-keyed share map into aggregate-scheme shares.
func sharesOf[S any](m map[types.PartyID]S, fields func(S) (types.PartyID, []byte)) []*aggsig.Share {
	if len(m) == 0 {
		return nil
	}
	out := make([]*aggsig.Share, 0, len(m))
	for _, s := range m {
		signer, sg := fields(s)
		out = append(out, &aggsig.Share{Signer: int(signer), Signature: sg})
	}
	return out
}

func aggregateIfReady(info aggsig.Scheme, shares []*aggsig.Share) (aggsig.Certificate, bool) {
	if len(shares) < info.Quorum() {
		return nil, false
	}
	agg, err := info.CombineVerified(shares)
	if err != nil {
		return nil, false
	}
	return agg, true
}

// NotarReadyBlocks returns the round's blocks whose notarization share
// sets reached the combination threshold — the candidate list
// tryFinishRound iterates instead of every block of the round.
func (p *Pool) NotarReadyBlocks(k types.Round) []hash.Digest { return p.notarReady[k] }

// FinalCandidateBlocks returns the round's blocks holding either a
// finalization certificate or a threshold set of finalization shares —
// the candidate list the finalizer iterates.
func (p *Pool) FinalCandidateBlocks(k types.Round) []hash.Digest { return p.finalReady[k] }

// Finalization returns the stored finalization for the block, if any.
func (p *Pool) Finalization(h hash.Digest) *types.Finalization { return p.finalization[h] }

// Authenticator returns the stored authenticator for the block, if any.
func (p *Pool) Authenticator(h hash.Digest) *types.Authenticator { return p.auths[h] }

// DirtyFinalizableRounds returns (and clears) the set of rounds whose
// finalization state changed since the last call — the finalizer's work
// list.
func (p *Pool) DirtyFinalizableRounds() []types.Round {
	if len(p.finalizableDirty) == 0 {
		return nil
	}
	out := make([]types.Round, 0, len(p.finalizableDirty))
	for k := range p.finalizableDirty {
		out = append(out, k)
	}
	p.finalizableDirty = make(map[types.Round]struct{})
	return out
}

// Chain returns the blocks strictly above `aboveRound` on the path from
// the root to the block h, ordered by increasing round. It returns nil
// if any ancestor is missing from the pool.
func (p *Pool) Chain(h hash.Digest, aboveRound types.Round) []*types.Block {
	var rev []*types.Block
	cur := h
	for {
		if cur == p.rootHash {
			break
		}
		b, ok := p.blocks[cur]
		if !ok {
			return nil
		}
		if b.Round <= aboveRound {
			break
		}
		rev = append(rev, b)
		cur = b.ParentHash
	}
	out := make([]*types.Block, len(rev))
	for i, b := range rev {
		out[len(rev)-1-i] = b
	}
	return out
}

// InstallCheckpoint seeds the pool with a verified checkpoint's boundary
// block and certificates, marking the block valid by fiat. The caller
// (the engine's checkpoint-install path) has already run
// checkpoint.Verify, which subsumes the admission checks performed here
// for ordinary traffic: the notarization aggregate vouches for the
// block, so it becomes the new chain root and resync traffic above the
// checkpoint validates against it through the ordinary IsValid recursion
// — even though its own ancestors are absent.
func (p *Pool) InstallCheckpoint(b *types.Block, nz *types.Notarization, fz *types.Finalization) {
	if b == nil || nz == nil {
		return
	}
	h := b.Hash()
	if _, ok := p.blocks[h]; !ok {
		p.blocks[h] = b
		p.byRound[b.Round] = append(p.byRound[b.Round], h)
	}
	p.notarization[h] = nz
	p.markReady(p.notarReady, b.Round, h)
	if fz != nil {
		p.finalization[h] = fz
		p.finalizableDirty[b.Round] = struct{}{}
		p.markReady(p.finalReady, b.Round, h)
	}
	p.validCache[h] = true
}

// Prune discards artifacts for rounds strictly below `before`, except
// the root. The paper keeps pools unbounded (§3.1) but notes a practical
// implementation would garbage-collect; long-running simulations need
// this.
func (p *Pool) Prune(before types.Round) {
	// Memoize the validity of every retained block while its ancestors
	// are still present; validity is monotone, so the cached result
	// remains correct after the ancestors are dropped.
	for k, hs := range p.byRound {
		if k < before {
			continue
		}
		for _, h := range hs {
			p.IsValid(h)
		}
	}
	for k, hs := range p.byRound {
		if k == 0 || k >= before {
			continue
		}
		for _, h := range hs {
			delete(p.blocks, h)
			delete(p.auths, h)
			delete(p.notarShares, h)
			delete(p.notarization, h)
			delete(p.finalShares, h)
			delete(p.finalization, h)
			delete(p.validCache, h)
		}
		delete(p.byRound, k)
	}
	for k := range p.finalizableDirty {
		if k < before {
			delete(p.finalizableDirty, k)
		}
	}
	for k := range p.notarReady {
		if k != 0 && k < before {
			delete(p.notarReady, k)
		}
	}
	for k := range p.finalReady {
		if k != 0 && k < before {
			delete(p.finalReady, k)
		}
	}
	for k := range p.nzInRound {
		if k != 0 && k < before {
			delete(p.nzInRound, k)
		}
	}
}
