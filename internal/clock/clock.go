// Package clock abstracts time for the consensus engines so the same
// engine code runs against real wall-clock time (TCP deployments) and
// simulated virtual time (the discrete-event simulator used by the
// benchmarks). All protocol time is expressed as a time.Duration offset
// from a common epoch.
package clock

import (
	"sync"
	"time"
)

// Clock reports the current protocol time.
type Clock interface {
	Now() time.Duration
}

// Wall is a Clock backed by the real monotonic clock, measuring elapsed
// time since Start.
type Wall struct {
	start time.Time
}

// NewWall returns a wall clock whose epoch is now.
func NewWall() *Wall { return &Wall{start: time.Now()} }

// NewWallAt returns a wall clock with the given epoch.
func NewWallAt(start time.Time) *Wall { return &Wall{start: start} }

// Now implements Clock.
func (w *Wall) Now() time.Duration { return time.Since(w.start) }

// Manual is a Clock whose time advances only when told to. Safe for
// concurrent use. The zero value starts at time 0.
type Manual struct {
	mu  sync.Mutex
	now time.Duration
}

// Now implements Clock.
func (m *Manual) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Set moves the clock to t. Time never moves backwards; earlier values
// are ignored.
func (m *Manual) Set(t time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t > m.now {
		m.now = t
	}
}

// Advance moves the clock forward by d and returns the new time.
func (m *Manual) Advance(d time.Duration) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now += d
	return m.now
}

// Skewed offsets another clock by a constant: the model of a party
// whose local clock runs ahead (positive Offset) or behind (negative)
// of protocol time — the paper's delay functions assume loosely
// synchronised clocks, and the adversary campaign uses Skewed parties
// to probe how much drift the Δprop/Δntry machinery tolerates. Time
// never goes negative: a behind-clock party pins at the epoch until
// real time catches up.
type Skewed struct {
	Inner  Clock
	Offset time.Duration
}

// Now implements Clock.
func (s Skewed) Now() time.Duration {
	t := s.Inner.Now() + s.Offset
	if t < 0 {
		return 0
	}
	return t
}

// fixedClock is frozen at a single instant.
type fixedClock time.Duration

// Now implements Clock.
func (f fixedClock) Now() time.Duration { return time.Duration(f) }

// At returns a Clock frozen at t — the adapter that lets clock
// combinators (Skewed) transform the event-driven engines' explicit
// `now` parameters, which arrive as values rather than as a ticking
// source.
func At(t time.Duration) Clock { return fixedClock(t) }

var (
	_ Clock = (*Wall)(nil)
	_ Clock = (*Manual)(nil)
	_ Clock = Skewed{}
	_ Clock = fixedClock(0)
)
