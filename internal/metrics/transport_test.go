package metrics

import (
	"strings"
	"testing"
)

func TestTransportStatsCounts(t *testing.T) {
	s := NewTransportStats()
	s.QueueDrop(1)
	s.QueueDrop(1)
	s.QueueDrop(2)
	s.Redial(1)
	s.WriteError(2)
	s.ObserveQueueDepth(1, 5)
	s.ObserveQueueDepth(1, 3) // lower than high-water: ignored
	s.InboxOverflow()
	s.SendError()
	s.SendError()

	snap := s.Snapshot()
	if snap.TotalQueueDropped != 3 || snap.QueueDropped[1] != 2 || snap.QueueDropped[2] != 1 {
		t.Fatalf("queue drops: %+v", snap.QueueDropped)
	}
	if snap.TotalRedials != 1 || snap.TotalWriteErrors != 1 {
		t.Fatalf("redials=%d write-errors=%d", snap.TotalRedials, snap.TotalWriteErrors)
	}
	if snap.MaxQueueDepth[1] != 5 {
		t.Fatalf("max queue depth %d, want 5", snap.MaxQueueDepth[1])
	}
	if snap.InboxOverflow != 1 || snap.SendErrors != 2 {
		t.Fatalf("overflow=%d send-errors=%d", snap.InboxOverflow, snap.SendErrors)
	}
	line := snap.String()
	for _, want := range []string{"queue-dropped=3", "redials=1", "write-errors=1", "max-queue=5", "inbox-overflow=1", "send-errors=2"} {
		if !strings.Contains(line, want) {
			t.Fatalf("health line %q missing %q", line, want)
		}
	}
}

func TestTransportStatsNilIsNoOp(t *testing.T) {
	var s *TransportStats
	// All recording methods and Snapshot must be safe on nil.
	s.QueueDrop(0)
	s.Redial(0)
	s.WriteError(0)
	s.ObserveQueueDepth(0, 10)
	s.InboxOverflow()
	s.SendError()
	snap := s.Snapshot()
	if snap.TotalQueueDropped != 0 || snap.SendErrors != 0 {
		t.Fatalf("nil stats produced counts: %+v", snap)
	}
}
