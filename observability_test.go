package icc

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"icc/internal/obs"
)

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"unknown mode", []Option{WithMode(Mode(42))}},
		{"negative delta bound", []Option{WithDeltaBound(-time.Second)}},
		{"negative epsilon", []Option{WithEpsilon(-time.Second)}},
		{"negative max batch", []Option{WithMaxBatch(-1)}},
		{"negative fanout", []Option{WithGossipFanout(-2)}},
		{"negative stall after", []Option{WithStallAfter(-time.Second)}},
		{"behavior party too high", []Option{WithBehavior(4, SilentLeader)}},
		{"behavior party negative", []Option{WithBehavior(-1, SilentLeader)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewLocalCluster(4, tc.opts...); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
	// Zero values select defaults rather than erroring.
	if _, err := NewLocalCluster(4, WithMaxBatch(0), WithGossipFanout(0), WithStallAfter(0)); err != nil {
		t.Fatalf("zero-valued options rejected: %v", err)
	}
}

func TestWithMaxBatchBoundsBlocks(t *testing.T) {
	c, err := NewLocalCluster(4, WithDeltaBound(20*time.Millisecond), WithMaxBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	for i := uint64(1); i <= 3; i++ {
		if _, err := c.Client(0).Submit(context.Background(), Command{Client: 1, Seq: i, Op: OpSet, Key: fmt.Sprintf("k%d", i), Value: []byte("v")}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// With one command per block, draining three commands takes at least
	// three non-empty blocks; convergence on k3 proves batching still works.
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := c.KV(0).Get("k3"); ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("commands never committed with MaxBatch=1")
}

func TestStartStopIdempotentEitherOrder(t *testing.T) {
	// Stop before Start: the cluster refuses to start, and every further
	// call stays a no-op.
	c, err := NewLocalCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	c.Stop()
	c.Start() // must not launch anything after Stop
	c.Stop()  // second Stop is a no-op
	if got := c.CommittedBlocks(0); got != 0 {
		t.Fatalf("stopped-before-start cluster committed %d blocks", got)
	}

	// Start twice, Stop twice: no panics, no double-close.
	c2, err := NewLocalCluster(2, WithDeltaBound(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c2.Start()
	c2.Start()
	c2.Stop()
	c2.Stop()
}

func TestWaitForCommitsCtx(t *testing.T) {
	c, err := NewLocalCluster(4, WithDeltaBound(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.WaitForCommitsCtx(ctx, 2); err != nil {
		t.Fatalf("cluster made no progress: %v", err)
	}
	if got := c.CommittedBlocks(0); got < 2 {
		t.Fatalf("party 0 committed %d blocks, want >= 2", got)
	}

	// An already-cancelled context returns promptly with its error.
	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := c.WaitForCommitsCtx(cancelled, 1_000_000); err != context.Canceled {
		t.Fatalf("cancelled wait returned %v, want context.Canceled", err)
	}
}

func TestClusterMetricsAndTrace(t *testing.T) {
	c, err := NewLocalCluster(4, WithDeltaBound(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if !c.WaitForCommits(2, 60*time.Second) {
		t.Fatal("cluster made no progress")
	}

	snap := c.Metrics()
	if snap.Get("icc_blocks_committed_total") < 8 { // ≥2 blocks × 4 parties
		t.Fatalf("commit counter too low: %v (full: %s)", snap.Get("icc_blocks_committed_total"), snap)
	}
	if snap.Get("icc_rounds_entered_total") == 0 || snap.Get("icc_runtime_messages_received_total") == 0 {
		t.Fatalf("round/runtime metrics missing: %s", snap)
	}
	if snap.Get("icc_commit_latency_seconds_count") == 0 {
		t.Fatalf("commit latency histogram empty: %s", snap)
	}

	events := c.Trace()
	if len(events) == 0 {
		t.Fatal("trace ring empty after commits")
	}
	kinds := map[string]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	for _, k := range []string{obs.KindRoundEntered, obs.KindCommitted} {
		if !kinds[k] {
			t.Fatalf("trace missing %q events (kinds: %v)", k, kinds)
		}
	}
}

// TestLiveClusterScrape is the end-to-end acceptance check: a running
// 4-party cluster serves Prometheus /metrics and a healthy /healthz over
// real HTTP.
func TestLiveClusterScrape(t *testing.T) {
	c, err := NewLocalCluster(4,
		WithDeltaBound(20*time.Millisecond),
		WithMetricsAddr("127.0.0.1:0"),
		WithStallAfter(10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	addr := c.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty after Start with WithMetricsAddr")
	}
	if !c.WaitForCommits(2, 60*time.Second) {
		t.Fatal("cluster made no progress")
	}
	client := &http.Client{Timeout: 5 * time.Second}

	res, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE icc_blocks_committed_total counter",
		"# TYPE icc_commit_latency_seconds histogram",
		"icc_commit_latency_seconds_bucket{le=\"+Inf\"}",
		"# TYPE icc_round_duration_seconds histogram",
		"# TYPE icc_transport_send_errors_total counter",
		"# TYPE icc_transport_inbox_overflow_total counter",
		"icc_rounds_entered_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	res, err = client.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h obs.Health
	err = json.NewDecoder(res.Body).Decode(&h)
	res.Body.Close()
	if err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if res.StatusCode != http.StatusOK || h.Stalled {
		t.Fatalf("/healthz unhealthy: status %d payload %+v", res.StatusCode, h)
	}
	if h.Commits == 0 {
		t.Fatalf("/healthz reports zero commits after progress: %+v", h)
	}

	res, err = client.Get("http://" + addr + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || len(traceBody) == 0 {
		t.Fatalf("/trace status %d, %d bytes", res.StatusCode, len(traceBody))
	}
	var first TraceEvent
	if err := json.Unmarshal([]byte(strings.SplitN(string(traceBody), "\n", 2)[0]), &first); err != nil {
		t.Fatalf("/trace first line not JSON: %v", err)
	}

	// After Stop the server is down and MetricsAddr reports "".
	c.Stop()
	if got := c.MetricsAddr(); got != "" {
		t.Fatalf("MetricsAddr after Stop = %q, want \"\"", got)
	}
	if _, err := client.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("metrics server still reachable after Stop")
	}
}
