package experiments

import (
	"fmt"
	"time"

	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/hash"
	"icc/internal/harness"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

// CertScheme measures the certificate-scheme ablation (experiment E14):
// for n ∈ {16, 31, 64, 100} under the full ICC1 overlay (ShareBundle
// batching with the adaptive window, relay-side certificate
// aggregation, single-output beacon relay), the commits/s, per-party
// bytes per round, and wire size of one notarization certificate under
//
//   - multisig: the default scheme — a certificate carries one ed25519
//     signature per quorum member, so cert bytes grow linearly in n;
//   - bls:      BLS12-381 aggregation — a certificate is a signer
//     bitmap plus one 96-byte G1 point, so cert bytes stay flat (the
//     bitmap adds one byte per 8 parties).
//
// The headline claim: under BLS the certificate column goes flat —
// a signer bitmap plus one 96-byte G1 point — while multisig's
// multiplies with the quorum (~44× more cert bytes at n=100). The
// per-party totals tell a subtler, honest story: BLS signature shares
// are 96-byte G1 points against ed25519's 64 bytes, and once relay
// aggregation caps certificate traffic the share flood dominates
// steady-state gossip — so BLS trades 1.5× pricier shares for ~44×
// cheaper certificates. The flat cert curve is what matters wherever
// certificates outlive the round: checkpoint and catch-up artifacts,
// durable block storage, and finality proofs handed to clients all
// carry one certificate with no surrounding share flood.
//
// Runs use pre-verified admission (the honest-only sweep policy): BLS
// signing is real hash-to-curve work on every share, and relays combine
// by G1 addition, but no per-block pairings run — one pairing costs ~1s
// on the dependency-free big.Int stack, which would turn a 100-party
// sweep into hours without changing any byte counts. The pairing path
// is covered by the aggsig/checkpoint suites and the micro-benchmarks.
func CertScheme(scale Scale) *Table {
	t := &Table{
		ID:    "E14",
		Title: "certificate schemes: bytes/party and commits/s, multisig vs BLS (ICC1 overlay)",
		Columns: []string{"n", "scheme", "commits/s", "KiB/party/round", "cert bytes",
			"×bytes vs n=16", "×n vs 16"},
		Notes: []string{
			"cert bytes = wire size of one notarization certificate (tag + signer set + proof)",
			"BLS cert bytes stay ~flat in n (bitmap + one G1 point); multisig grows with the quorum",
			"BLS shares are 96B G1 points vs ed25519's 64B, so share-flood-dominated per-party totals favor multisig; cert-dominated artifacts (checkpoints, catch-up, client proofs) favor BLS",
			"×bytes vs n=16 below ×n vs 16 ⇒ per-party cost grows sublinearly in n (paper §1.1)",
		},
	}
	blocks := scale.scaleInt(6)
	sizes := []int{16, 31, 64, 100}
	schemes := []aggsig.SchemeID{aggsig.SchemeMultisig, aggsig.SchemeBLS}
	base := make(map[aggsig.SchemeID]float64)
	for _, n := range sizes {
		for _, scheme := range schemes {
			c, err := harness.New(harness.Options{
				N:                   n,
				Seed:                int64(14000 + n),
				Delay:               simnet.Fixed{D: 10 * time.Millisecond},
				DeltaBound:          50 * time.Millisecond,
				Mode:                harness.ICC1,
				SimBeacon:           true,
				Verify:              pool.VerifyPreVerified,
				PruneDepth:          simPruneDepth,
				CertScheme:          scheme,
				GossipBatchWindow:   2 * time.Millisecond,
				GossipAdaptiveBatch: true,
				GossipAggregate:     true,
				BeaconOutputs:       true,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: %v", err))
			}
			c.Start()
			c.RunUntilCommitted(blocks, time.Hour)
			s := c.Rec.Summarize()
			rounds := float64(s.CommittedBlocks)
			if rounds == 0 {
				rounds = 1
			}
			elapsed := c.Net.Now().Seconds()
			if elapsed == 0 {
				elapsed = 1
			}
			perParty := float64(s.TotalBytes) / float64(n) / rounds
			if n == sizes[0] {
				base[scheme] = perParty
			}
			certBytes := sampleCertSize(c)
			commitRate := float64(s.CommittedBlocks) / elapsed
			t.AddRow(fmt.Sprintf("%d", n), scheme.String(),
				fmt.Sprintf("%.1f", commitRate),
				fmt.Sprintf("%.1f", perParty/1024),
				fmt.Sprintf("%d", certBytes),
				fmt.Sprintf("%.2f", perParty/base[scheme]),
				fmt.Sprintf("%.2f", float64(n)/float64(sizes[0])))
			t.SetMetric(fmt.Sprintf("sim_bytes_per_party_round_n%d_%s", n, scheme), perParty)
			t.SetMetric(fmt.Sprintf("sim_commits_per_s_n%d_%s", n, scheme), commitRate)
			t.SetMetric(fmt.Sprintf("cert_bytes_n%d_%s", n, scheme), float64(certBytes))
		}
	}
	last := sizes[len(sizes)-1]
	for _, scheme := range schemes {
		if b := t.Metrics[fmt.Sprintf("sim_bytes_per_party_round_n%d_%s", last, scheme)]; base[scheme] > 0 {
			t.SetMetric(fmt.Sprintf("bytes_growth_%s", scheme), b/base[scheme])
		}
		first := t.Metrics[fmt.Sprintf("cert_bytes_n%d_%s", sizes[0], scheme)]
		if lastCert := t.Metrics[fmt.Sprintf("cert_bytes_n%d_%s", last, scheme)]; first > 0 {
			t.SetMetric(fmt.Sprintf("cert_growth_%s", scheme), lastCert/first)
		}
	}
	t.SetMetric("bytes_growth_linear_ref", float64(last)/float64(sizes[0]))
	return t
}

// sampleCertSize builds one quorum notarization certificate from the
// cluster's own key material and returns its wire size — the real
// artifact the pool admits and the relays forward, not a formula.
func sampleCertSize(c *harness.Cluster) int {
	q := c.Pub.Notary.Quorum()
	msg := types.SigningBytes(1, 0, hash.Digest{})
	shares := make([]*aggsig.Share, q)
	for i := 0; i < q; i++ {
		shares[i] = c.Privs[i].Notary.Sign(types.DomainNotarization, msg)
	}
	cert, err := c.Pub.Notary.CombineVerified(shares)
	if err != nil {
		panic(fmt.Sprintf("experiments: sample certificate: %v", err))
	}
	return len(cert.Encode())
}
