package ec

import (
	"fmt"
	"io"
	"math/big"
)

// Scalar is an element of Z_N, the scalar field of the group.
// Scalars are immutable once created.
type Scalar struct {
	v *big.Int // always reduced to [0, N)
}

// NewScalar returns the scalar v mod N.
func NewScalar(v *big.Int) *Scalar {
	r := new(big.Int).Mod(v, N)
	return &Scalar{v: r}
}

// ScalarFromUint64 returns the scalar for a small integer.
func ScalarFromUint64(v uint64) *Scalar {
	return &Scalar{v: new(big.Int).SetUint64(v)}
}

// ZeroScalar returns 0.
func ZeroScalar() *Scalar { return &Scalar{v: new(big.Int)} }

// OneScalar returns 1.
func OneScalar() *Scalar { return &Scalar{v: big.NewInt(1)} }

// RandomScalar returns a uniformly random element of Z_N.
func RandomScalar(rng io.Reader) (*Scalar, error) {
	if rng == nil {
		rng = randReader
	}
	for {
		buf := make([]byte, ScalarLen)
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, fmt.Errorf("ec: sampling scalar: %w", err)
		}
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(N) < 0 {
			return &Scalar{v: v}, nil
		}
		// Rejection sampling keeps the distribution exactly uniform;
		// the retry probability is < 2^-128 for secp256k1.
	}
}

// ScalarFromBytesWide reduces a byte string mod N. Useful for deriving
// scalars from hashes (slight bias is acceptable for test-only derivation;
// protocol-critical sampling uses RandomScalar).
func ScalarFromBytesWide(b []byte) *Scalar {
	return NewScalar(new(big.Int).SetBytes(b))
}

// IsZero reports whether s == 0.
func (s *Scalar) IsZero() bool { return s.v.Sign() == 0 }

// Equal reports whether two scalars are equal.
func (s *Scalar) Equal(t *Scalar) bool { return s.v.Cmp(t.v) == 0 }

// Add returns s + t mod N.
func (s *Scalar) Add(t *Scalar) *Scalar {
	r := new(big.Int).Add(s.v, t.v)
	r.Mod(r, N)
	return &Scalar{v: r}
}

// Sub returns s - t mod N.
func (s *Scalar) Sub(t *Scalar) *Scalar {
	r := new(big.Int).Sub(s.v, t.v)
	r.Mod(r, N)
	return &Scalar{v: r}
}

// Mul returns s * t mod N.
func (s *Scalar) Mul(t *Scalar) *Scalar {
	r := new(big.Int).Mul(s.v, t.v)
	r.Mod(r, N)
	return &Scalar{v: r}
}

// Neg returns -s mod N.
func (s *Scalar) Neg() *Scalar {
	r := new(big.Int).Neg(s.v)
	r.Mod(r, N)
	return &Scalar{v: r}
}

// Inv returns s^-1 mod N. Panics if s is zero (programmer error: the
// callers divide only by pairwise-distinct evaluation points).
func (s *Scalar) Inv() *Scalar {
	if s.IsZero() {
		panic("ec: inverse of zero scalar")
	}
	r := new(big.Int).ModInverse(s.v, N)
	return &Scalar{v: r}
}

// Encode returns the 32-byte big-endian encoding.
func (s *Scalar) Encode() []byte {
	out := make([]byte, ScalarLen)
	s.v.FillBytes(out)
	return out
}

// DecodeScalar parses a 32-byte big-endian scalar; values >= N are
// rejected so that encodings are canonical.
func DecodeScalar(b []byte) (*Scalar, error) {
	if len(b) != ScalarLen {
		return nil, fmt.Errorf("%w: length %d", ErrInvalidScalar, len(b))
	}
	v := new(big.Int).SetBytes(b)
	if v.Cmp(N) >= 0 {
		return nil, fmt.Errorf("%w: value >= group order", ErrInvalidScalar)
	}
	return &Scalar{v: v}, nil
}

// Big returns a copy of the underlying integer.
func (s *Scalar) Big() *big.Int { return new(big.Int).Set(s.v) }

// String returns a short debug form.
func (s *Scalar) String() string { return s.v.Text(16) }
