package core

import (
	"crypto/rand"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/crypto/keys"
	"icc/internal/metrics"
	"icc/internal/simnet"
	"icc/internal/types"
)

// harness bundles a simulated cluster of ICC0 engines.
type harness struct {
	pub     *keys.Public
	privs   []keys.Private
	net     *simnet.Network
	engines []*Engine
	rec     *metrics.Recorder
	// committed[p] is the ordered sequence of block hashes party p output.
	committed [][]*types.Block
}

type harnessOptions struct {
	n          int
	seed       int64
	delay      simnet.DelayModel
	deltaBound time.Duration
	epsilon    time.Duration
	simBeacon  bool
	payload    PayloadSource
	adaptive   bool
}

func newHarness(t testing.TB, opts harnessOptions) *harness {
	t.Helper()
	if opts.delay == nil {
		opts.delay = simnet.Fixed{D: 10 * time.Millisecond}
	}
	if opts.deltaBound == 0 {
		opts.deltaBound = 100 * time.Millisecond
	}
	pub, privs, err := keys.Deal(rand.Reader, opts.n)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		pub:       pub,
		privs:     privs,
		rec:       metrics.NewRecorder(opts.n),
		committed: make([][]*types.Block, opts.n),
	}
	h.net = simnet.New(simnet.Options{Seed: opts.seed, Delay: opts.delay, Recorder: h.rec})
	for i := 0; i < opts.n; i++ {
		i := i
		cfg := Config{
			Self:       types.PartyID(i),
			Keys:       pub,
			Priv:       privs[i],
			DeltaBound: opts.deltaBound,
			Epsilon:    opts.epsilon,
			Payload:    opts.payload,
			Adaptive:   opts.adaptive,
			Hooks: Hooks{
				OnCommit: func(b *types.Block, now time.Duration) {
					h.committed[i] = append(h.committed[i], b)
					h.rec.Commit(b.Round, len(b.Payload), now)
				},
				OnPropose: func(k types.Round, now time.Duration) {
					h.rec.Propose(k, now)
				},
				OnEnterRound: func(k types.Round, now time.Duration) {
					h.rec.EnterRound(k, now)
				},
				OnFinishRound: func(k types.Round, now time.Duration) {
					h.rec.FinishRound(k, now)
				},
			},
		}
		if opts.simBeacon {
			cfg.Beacon = beacon.NewSimulated(opts.n, types.PartyID(i), pub.GenesisSeed)
		}
		eng := NewEngine(cfg)
		h.engines = append(h.engines, eng)
		h.net.AddNode(eng, true)
	}
	return h
}

// checkSafety verifies the atomic-broadcast safety property: every
// party's committed sequence is a prefix of every longer one, block by
// block, and rounds are strictly increasing along each sequence.
func (h *harness) checkSafety(t testing.TB) {
	t.Helper()
	var longest []*types.Block
	for _, seq := range h.committed {
		if len(seq) > len(longest) {
			longest = seq
		}
	}
	for p, seq := range h.committed {
		for i, b := range seq {
			if b.Hash() != longest[i].Hash() {
				t.Fatalf("safety violation: party %d position %d diverges", p, i)
			}
			if i > 0 && b.Round <= seq[i-1].Round {
				t.Fatalf("party %d: rounds not increasing at position %d", p, i)
			}
		}
	}
}

func TestFourPartiesCommit(t *testing.T) {
	h := newHarness(t, harnessOptions{n: 4, seed: 1})
	h.net.Start()
	ok := h.net.RunUntil(func() bool {
		for _, seq := range h.committed {
			if len(seq) < 5 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		for p, seq := range h.committed {
			t.Logf("party %d committed %d blocks, round %d", p, len(seq), h.engines[p].CurrentRound())
		}
		t.Fatal("parties did not commit 5 blocks within 30s of simulated time")
	}
	h.checkSafety(t)
}

func TestCommittedBlocksFormChain(t *testing.T) {
	h := newHarness(t, harnessOptions{n: 4, seed: 2})
	h.net.Start()
	if !h.net.RunUntil(func() bool { return len(h.committed[0]) >= 4 }, 30*time.Second) {
		t.Fatal("no progress")
	}
	seq := h.committed[0]
	for i := 1; i < len(seq); i++ {
		if seq[i].ParentHash != seq[i-1].Hash() {
			t.Fatalf("committed block %d does not extend block %d", i, i-1)
		}
	}
	if seq[0].ParentHash != h.engines[0].Pool().RootHash() {
		t.Fatal("first committed block does not extend the root")
	}
}
