package experiments

import (
	"crypto/rand"
	"fmt"
	"runtime"
	"sync"
	"time"

	"icc/internal/beacon"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/pool"
	rt "icc/internal/runtime"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
)

// VerifyPipeline measures the parallel verification pipeline (E8):
// raw signature-verification throughput of the worker pool at one vs
// GOMAXPROCS workers (plus the verified-digest cache replay), and
// end-to-end commit throughput of a live 4-party runtime cluster with
// inline engine-loop verification vs the pipelined admission path.
// Unlike the simulation experiments this one runs on wall-clock time:
// the pipeline's whole point is overlapping real crypto work with the
// engine, which virtual time cannot exhibit. Speedups scale with
// physical cores; on a single-core host expect parity, not gains.
func VerifyPipeline(scale Scale) *Table {
	procs := runtime.GOMAXPROCS(0)
	t := &Table{
		ID:      "E8",
		Title:   "parallel verification pipeline: worker scaling, digest cache, live commit throughput",
		Columns: []string{"benchmark", "configuration", "value"},
		Notes: []string{
			fmt.Sprintf("wall-clock measurement on GOMAXPROCS=%d; worker scaling needs physical cores to show", procs),
		},
	}

	pub, privs, err := keys.Deal(rand.Reader, 7)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	// Pre-sign a batch of distinct notarization shares: the dominant
	// artifact class on the wire (n−t per round per party).
	count := scale.scaleInt(3000)
	shares := make([]types.Message, count)
	for i := range shares {
		bh := hash.SumUint64(hash.DomainBlock, uint64(i))
		signer := types.PartyID(i % 7)
		msg := types.SigningBytes(types.Round(i+1), 0, bh)
		s := privs[signer].Notary.Sign(types.DomainNotarization, msg)
		shares[i] = &types.NotarizationShare{Round: types.Round(i + 1), Proposer: 0,
			BlockHash: bh, Signer: signer, Sig: s.Signature}
	}

	rate := func(workers, cacheSize int, replay bool) float64 {
		p := verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{
			Workers: workers, QueueSize: 256, CacheSize: cacheSize,
		})
		defer p.Close()
		feed := func() time.Duration {
			start := time.Now()
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < count; {
					if _, ok := <-p.Out(); ok {
						i++
					}
				}
			}()
			for _, m := range shares {
				p.Submit(transport.Envelope{From: 1, Msg: m})
			}
			wg.Wait()
			return time.Since(start)
		}
		elapsed := feed()
		if replay {
			elapsed = feed() // second pass: every digest is cached
		}
		return float64(count) / elapsed.Seconds()
	}

	t.AddRow("verify throughput", "1 worker", fmt.Sprintf("%.0f artifacts/s", rate(1, -1, false)))
	t.AddRow("verify throughput", fmt.Sprintf("%d workers", procs), fmt.Sprintf("%.0f artifacts/s", rate(procs, -1, false)))
	t.AddRow("verify throughput", "cache replay", fmt.Sprintf("%.0f artifacts/s", rate(procs, 2*count, true)))

	// Live cluster: 4 parties over the in-process hub for a fixed
	// wall-clock window, inline verification vs pipelined admission.
	window := time.Duration(float64(4*time.Second) * clampScale(scale))
	inline := commitsInWindow(false, window)
	piped := commitsInWindow(true, window)
	t.AddRow("live commits", fmt.Sprintf("inline verify, %v window", window), fmt.Sprintf("%.1f blocks/s", inline))
	t.AddRow("live commits", fmt.Sprintf("pipelined (%d workers), %v window", procs, window), fmt.Sprintf("%.1f blocks/s", piped))
	return t
}

func clampScale(s Scale) float64 {
	if s <= 0 || s >= 1 {
		return 1
	}
	return float64(s)
}

// commitsInWindow runs a live 4-party cluster for the window and
// returns the committed-blocks rate of the slowest party.
func commitsInWindow(pipelined bool, window time.Duration) float64 {
	const n = 4
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	hub := transport.NewInproc(n)
	clk := clock.NewWall()
	var mu sync.Mutex
	committed := make([]int, n)
	runners := make([]*rt.Runner, n)
	for i := 0; i < n; i++ {
		i := i
		pid := types.PartyID(i)
		policy := pool.VerifyFull
		if pipelined {
			policy = pool.VerifyPreVerified
		}
		eng := core.NewEngine(core.Config{
			Self:       pid,
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     beacon.NewSimulated(n, pid, pub.GenesisSeed),
			DeltaBound: 20 * time.Millisecond,
			Pool:       pool.Options{Policy: policy},
			Hooks: core.Hooks{
				OnCommit: func(*types.Block, time.Duration) {
					mu.Lock()
					committed[i]++
					mu.Unlock()
				},
			},
		})
		r := rt.NewRunner(eng, hub.Endpoint(pid), clk, n)
		if pipelined {
			r.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{}))
		}
		runners[i] = r
	}
	for _, r := range runners {
		r.Start()
	}
	time.Sleep(window)
	for _, r := range runners {
		r.Stop()
	}
	hub.Close()
	mu.Lock()
	defer mu.Unlock()
	minC := committed[0]
	for _, c := range committed[1:] {
		if c < minC {
			minC = c
		}
	}
	return float64(minC) / window.Seconds()
}
