package gossip

import (
	"crypto/rand"
	"testing"
	"time"

	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/crypto/multisig"
	"icc/internal/engine"
	"icc/internal/types"
)

func TestConfigValidate(t *testing.T) {
	pub4, _, err := keys.Deal(rand.Reader, 4)
	if err != nil {
		t.Fatal(err)
	}
	good := Config{Self: 0, N: 7, Fanout: 3, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Self: 0, N: 0, Fanout: 2},                       // empty cluster
		{Self: 7, N: 7, Fanout: 3},                       // self out of range
		{Self: -1, N: 7, Fanout: 3},                      // self negative
		{Self: 0, N: 7, Fanout: 1},                       // fanout below floor
		{Self: 0, N: 7, Fanout: 7},                       // fanout above n-1
		{Self: 0, N: 7, Fanout: 3, ShareBatchWindow: -1}, // negative window
		{Self: 0, N: 7, Fanout: 3, MaxBatchShares: -1},   // negative batch cap
		{Self: 0, N: 7, Fanout: 3, Aggregate: true},      // aggregation without keys
		{Self: 0, N: 7, Fanout: 3, Keys: pub4},           // keys for the wrong n
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
		if _, err := New(cfg, &sink{}); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
	// The tiny-cluster floor: n=2 and n=3 only admit fanout n−1.
	if err := (Config{Self: 0, N: 2, Fanout: 1}).Validate(); err != nil {
		t.Errorf("n=2 fanout=1 rejected: %v", err)
	}
	if err := (Config{Self: 0, N: 3, Fanout: 2}).Validate(); err != nil {
		t.Errorf("n=3 fanout=2 rejected: %v", err)
	}
}

// bfsEccentricity returns the max BFS distance from src, or -1 if the
// graph is disconnected from src.
func bfsEccentricity(adj [][]types.PartyID, src int) int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	max := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range adj[cur] {
			if dist[p] < 0 {
				dist[p] = dist[cur] + 1
				if dist[p] > max {
					max = dist[p]
				}
				queue = append(queue, int(p))
			}
		}
	}
	for _, d := range dist {
		if d < 0 {
			return -1
		}
	}
	return max
}

func TestTopologyAt100(t *testing.T) {
	const n = 100
	for _, fanout := range []int{4, 6, 10} {
		for seed := int64(0); seed < 8; seed++ {
			adj := topo(t, n, fanout, seed)
			// Symmetry and degree floor.
			for i := 0; i < n; i++ {
				if len(adj[i]) < fanout {
					t.Fatalf("fanout=%d seed=%d: party %d has degree %d", fanout, seed, i, len(adj[i]))
				}
				for _, p := range adj[i] {
					sym := false
					for _, q := range adj[p] {
						if int(q) == i {
							sym = true
							break
						}
					}
					if !sym {
						t.Fatalf("fanout=%d seed=%d: edge %d->%d not symmetric", fanout, seed, i, p)
					}
				}
			}
			// Connectivity and diameter: a ring-plus-chords overlay at
			// n=100 must behave like a small-world graph, not a bare ring
			// (whose diameter would be 50). The bound is deliberately
			// loose; observed diameters are ≤ 6.
			ecc := bfsEccentricity(adj, 0)
			if ecc < 0 {
				t.Fatalf("fanout=%d seed=%d: topology disconnected", fanout, seed)
			}
			if ecc > 12 {
				t.Fatalf("fanout=%d seed=%d: diameter %d exceeds small-world bound", fanout, seed, ecc)
			}
		}
	}
}

// mustNew builds a gossip engine or fails the test.
func mustNew(t *testing.T, cfg Config, inner engine.Engine) *Engine {
	t.Helper()
	g, err := New(cfg, inner)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShareBatchingCoalesces(t *testing.T) {
	inner := &sink{id: 0}
	g := mustNew(t, Config{Self: 0, N: 7, Fanout: 3, Seed: 1, ShareBatchWindow: 2 * time.Millisecond}, inner)
	src := g.Peers()[0]

	h := hash.Digest{1}
	var shares []types.Message
	for i := 0; i < 3; i++ {
		shares = append(shares, &types.NotarizationShare{
			Round: 5, Proposer: 2, BlockHash: h, Signer: types.PartyID(i), Sig: []byte{byte(i)},
		})
	}
	shares = append(shares, &types.BeaconShare{Round: 6, Signer: 1, Share: []byte{9}})

	// Within the window: shares are delivered to the inner engine but no
	// relay frames leave.
	var outs []engine.Output
	for _, m := range shares {
		outs = append(outs, g.HandleMessage(src, m, 0)...)
	}
	if len(outs) != 0 {
		t.Fatalf("shares relayed before the window closed: %d frames", len(outs))
	}
	if len(inner.received) != len(shares) {
		t.Fatalf("inner received %d of %d shares", len(inner.received), len(shares))
	}

	// The flush deadline is visible to the runtime.
	if wake, ok := g.NextWake(0); !ok || wake != 2*time.Millisecond {
		t.Fatalf("NextWake = %v/%v, want flush deadline 2ms", wake, ok)
	}

	// Window closes: exactly one ShareBundle per peer except the source,
	// with all four shares grouped (3 notar under one statement + beacon).
	outs = g.Tick(2 * time.Millisecond)
	if len(outs) != len(g.Peers())-1 {
		t.Fatalf("%d frames after flush, want %d", len(outs), len(g.Peers())-1)
	}
	for _, o := range outs {
		if o.To == src {
			t.Fatal("batch relayed back to its only source")
		}
		b, ok := o.Msg.(*types.ShareBundle)
		if !ok {
			t.Fatalf("flushed %T, want *types.ShareBundle", o.Msg)
		}
		if b.Shares() != 4 || len(b.Notar) != 1 || len(b.Notar[0].Signers) != 3 || len(b.Beacon) != 1 {
			t.Fatalf("bundle shape wrong: %d shares, %d notar groups", b.Shares(), len(b.Notar))
		}
	}

	// A receiving wrapper explodes the bundle, delivers each share, and
	// recognises one it already held.
	inner2 := &sink{id: 1}
	g2 := mustNew(t, Config{Self: 1, N: 7, Fanout: 3, Seed: 1, ShareBatchWindow: 2 * time.Millisecond}, inner2)
	g2.HandleMessage(0, shares[0], 0) // pre-seed a duplicate
	g2.HandleMessage(0, outs[0].Msg, 0)
	if len(inner2.received) != len(shares) {
		t.Fatalf("bundle receiver delivered %d shares, want %d (dedup across framings)", len(inner2.received), len(shares))
	}
}

func TestShareBatchFlushesAtCap(t *testing.T) {
	inner := &sink{id: 0}
	g := mustNew(t, Config{Self: 0, N: 7, Fanout: 3, Seed: 1,
		ShareBatchWindow: time.Second, MaxBatchShares: 2}, inner)
	src := g.Peers()[0]
	h := hash.Digest{2}
	if outs := g.HandleMessage(src, &types.NotarizationShare{Round: 1, Proposer: 0, BlockHash: h, Signer: 1, Sig: []byte{1}}, 0); len(outs) != 0 {
		t.Fatal("first share flushed early")
	}
	outs := g.HandleMessage(src, &types.NotarizationShare{Round: 1, Proposer: 0, BlockHash: h, Signer: 2, Sig: []byte{2}}, 0)
	if len(outs) != len(g.Peers())-1 {
		t.Fatalf("cap flush produced %d frames, want %d", len(outs), len(g.Peers())-1)
	}
	if _, ok := outs[0].Msg.(*types.ShareBundle); !ok {
		t.Fatalf("cap flush sent %T", outs[0].Msg)
	}
}

func TestSingleShareFlushSkipsBundleFraming(t *testing.T) {
	inner := &sink{id: 0}
	g := mustNew(t, Config{Self: 0, N: 7, Fanout: 3, Seed: 1, ShareBatchWindow: time.Millisecond}, inner)
	src := g.Peers()[0]
	s := &types.BeaconShare{Round: 3, Signer: 2, Share: []byte{7}}
	g.HandleMessage(src, s, 0)
	outs := g.Tick(time.Millisecond)
	if len(outs) != len(g.Peers())-1 {
		t.Fatalf("%d frames, want %d", len(outs), len(g.Peers())-1)
	}
	if _, ok := outs[0].Msg.(*types.BeaconShare); !ok {
		t.Fatalf("lone share framed as %T, want bare *types.BeaconShare", outs[0].Msg)
	}
}

// aggFixture deals keys and signs shares for one statement.
type aggFixture struct {
	pub   *keys.Public
	privs []keys.Private
	h     hash.Digest
}

func newAggFixture(t *testing.T, n int) *aggFixture {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	return &aggFixture{pub: pub, privs: privs, h: hash.Digest{0xaa}}
}

func (f *aggFixture) nshare(signer types.PartyID) *types.NotarizationShare {
	msg := types.SigningBytes(1, 0, f.h)
	return &types.NotarizationShare{Round: 1, Proposer: 0, BlockHash: f.h, Signer: signer,
		Sig: f.privs[signer].Notary.Sign(types.DomainNotarization, msg).Signature}
}

func (f *aggFixture) fshare(signer types.PartyID) *types.FinalizationShare {
	msg := types.SigningBytes(1, 0, f.h)
	return &types.FinalizationShare{Round: 1, Proposer: 0, BlockHash: f.h, Signer: signer,
		Sig: f.privs[signer].Final.Sign(types.DomainFinalization, msg).Signature}
}

// notarization combines the fixture's shares into a full certificate.
func (f *aggFixture) notarization(t *testing.T, signers ...types.PartyID) *types.Notarization {
	t.Helper()
	shares := make([]*multisig.Share, 0, len(signers))
	for _, s := range signers {
		shares = append(shares, &multisig.Share{Signer: int(s), Signature: f.nshare(s).Sig})
	}
	agg, err := f.pub.Notary.CombineVerified(shares)
	if err != nil {
		t.Fatal(err)
	}
	return &types.Notarization{Round: 1, Proposer: 0, BlockHash: f.h, Agg: agg.Encode()}
}

func TestEagerRelayAggregation(t *testing.T) {
	f := newAggFixture(t, 4) // threshold 3
	inner := &sink{id: 0}
	g := mustNew(t, Config{Self: 0, N: 4, Fanout: 2, Seed: 1, Aggregate: true, Keys: f.pub}, inner)
	src := g.Peers()[0]

	g.HandleMessage(src, f.nshare(1), 0)
	g.HandleMessage(src, f.nshare(2), 0)
	outs := g.HandleMessage(src, f.nshare(3), 0)

	// The threshold-crossing share triggers certificate creation: the
	// cert goes to every peer (including the share's source) and reaches
	// the inner engine; the share itself is not relayed.
	var certs, shares int
	for _, o := range outs {
		switch o.Msg.(type) {
		case *types.Notarization:
			certs++
		case *types.NotarizationShare:
			shares++
		}
	}
	if certs != len(g.Peers()) || shares != 0 {
		t.Fatalf("threshold crossing: %d cert frames (want %d), %d share relays (want 0)", certs, len(g.Peers()), shares)
	}
	var delivered *types.Notarization
	for _, m := range inner.received {
		if nz, ok := m.(*types.Notarization); ok {
			delivered = nz
		}
	}
	if delivered == nil {
		t.Fatal("relay-built certificate not delivered to the inner engine")
	}
	agg, err := multisig.DecodeAggregate(delivered.Agg)
	if err != nil {
		t.Fatalf("certificate aggregate: %v", err)
	}
	if err := f.pub.Notary.Verify(types.DomainNotarization, types.SigningBytes(1, 0, f.h), agg); err != nil {
		t.Fatalf("relay-built certificate does not verify: %v", err)
	}

	// A late share for the certified statement is fully suppressed:
	// no relay, no delivery.
	got := len(inner.received)
	if outs := g.HandleMessage(src, f.nshare(0), 0); len(outs) != 0 {
		t.Fatalf("late share relayed after certification: %d frames", len(outs))
	}
	if len(inner.received) != got {
		t.Fatal("late share delivered after certification")
	}
}

func TestAggregationSurvivesForgedShares(t *testing.T) {
	f := newAggFixture(t, 4)
	inner := &sink{id: 0}
	// No TrustShares: the relay must verify while combining, so forged
	// shares cannot poison the certificate.
	g := mustNew(t, Config{Self: 0, N: 4, Fanout: 2, Seed: 1, Aggregate: true, Keys: f.pub}, inner)
	src := g.Peers()[0]

	forged := f.nshare(3)
	forged.Sig = make([]byte, len(forged.Sig)) // zeroed signature
	g.HandleMessage(src, f.nshare(1), 0)
	g.HandleMessage(src, f.nshare(2), 0)
	outs := g.HandleMessage(src, forged, 0)
	for _, o := range outs {
		if _, ok := o.Msg.(*types.Notarization); ok {
			t.Fatal("certificate built from a forged share")
		}
	}
	// The third honest share still completes the certificate.
	outs = g.HandleMessage(src, f.nshare(0), 0)
	certs := 0
	for _, o := range outs {
		if _, ok := o.Msg.(*types.Notarization); ok {
			certs++
		}
	}
	if certs != len(g.Peers()) {
		t.Fatalf("honest threshold did not certify: %d cert frames", certs)
	}
}

func TestFinalizationAggregation(t *testing.T) {
	f := newAggFixture(t, 4)
	inner := &sink{id: 0}
	g := mustNew(t, Config{Self: 0, N: 4, Fanout: 2, Seed: 1, Aggregate: true, TrustShares: true, Keys: f.pub}, inner)
	src := g.Peers()[0]
	for _, signer := range []types.PartyID{1, 2, 3} {
		g.HandleMessage(src, f.fshare(signer), 0)
	}
	found := false
	for _, m := range inner.received {
		if fz, ok := m.(*types.Finalization); ok {
			found = true
			agg, err := multisig.DecodeAggregate(fz.Agg)
			if err != nil {
				t.Fatalf("aggregate: %v", err)
			}
			if err := f.pub.Final.Verify(types.DomainFinalization, types.SigningBytes(1, 0, f.h), agg); err != nil {
				t.Fatalf("finalization certificate does not verify: %v", err)
			}
		}
	}
	if !found {
		t.Fatal("no finalization certificate delivered")
	}
}

func TestCertificateTransitStopsShareRelay(t *testing.T) {
	f := newAggFixture(t, 4)
	inner := &sink{id: 0}
	g := mustNew(t, Config{Self: 0, N: 4, Fanout: 2, Seed: 1, Aggregate: true, TrustShares: true, Keys: f.pub}, inner)
	src := g.Peers()[0]

	// A complete certificate transits before any share arrives.
	g.HandleMessage(src, f.notarization(t, 0, 1, 2), 0)
	delivered := len(inner.received)
	// Shares for the already-certified statement are neither relayed nor
	// delivered.
	if outs := g.HandleMessage(src, f.nshare(3), 0); len(outs) != 0 {
		t.Fatalf("share relayed after certificate transit: %d frames", len(outs))
	}
	if len(inner.received) != delivered {
		t.Fatal("share delivered after certificate transit")
	}
}

func TestBeaconRelayCutoffUnderTrust(t *testing.T) {
	inner := &sink{id: 0}
	g := mustNew(t, Config{Self: 0, N: 4, Fanout: 2, Seed: 1, TrustShares: true}, inner)
	src := g.Peers()[0]
	// n=4 → t=1 → quorum t+1 = 2: first two shares relay, the third is
	// delivered but not relayed.
	relays := func(outs []engine.Output) int {
		c := 0
		for _, o := range outs {
			if _, ok := o.Msg.(*types.BeaconShare); ok {
				c++
			}
		}
		return c
	}
	s := func(signer types.PartyID) *types.BeaconShare {
		return &types.BeaconShare{Round: 9, Signer: signer, Share: []byte{byte(signer)}}
	}
	if relays(g.HandleMessage(src, s(1), 0)) == 0 {
		t.Fatal("first beacon share not relayed")
	}
	if relays(g.HandleMessage(src, s(2), 0)) == 0 {
		t.Fatal("second beacon share not relayed")
	}
	if relays(g.HandleMessage(src, s(3), 0)) != 0 {
		t.Fatal("beacon share relayed past the t+1 quorum")
	}
	if len(inner.received) != 3 {
		t.Fatalf("inner received %d beacon shares, want all 3", len(inner.received))
	}
	// Our own share is never suppressed, even with the quota spent.
	g2inner := &sink{id: 0, initOut: []engine.Output{engine.Broadcast(s(0))}}
	g2 := mustNew(t, Config{Self: 0, N: 4, Fanout: 2, Seed: 1, TrustShares: true}, g2inner)
	for _, signer := range []types.PartyID{1, 2, 3} {
		g2.HandleMessage(g2.Peers()[0], s(signer), 0)
	}
	if relays(g2.Init(0)) == 0 {
		t.Fatal("own beacon share suppressed by the relay cut-off")
	}
}
