// Package bls implements the BLS12-381 pairing-friendly curve from
// scratch on math/big — base field, quadratic/sextic/duodecic extension
// tower, the G1 and G2 groups, the Tate pairing, and BLS signatures with
// Shamir-threshold signing on top.
//
// This is the signature scheme the paper actually names for the beacon
// (§2.3 approach (iii), BLS [6] with secret sharing [34]): unique
// signatures, t+1-of-n reconstruction by Lagrange interpolation in the
// exponent, and pairing-based verification of both shares and combined
// signatures. The package favours auditability over speed: arithmetic is
// plain big.Int, the Miller loop is the textbook denominator-carrying
// Tate loop, and the final exponentiation is one generic power of
// (p¹²−1)/r — every step checkable against the definitions. A production
// deployment would swap in an optimised pairing; every consumer-visible
// property (bilinearity, uniqueness, threshold reconstruction) is
// identical.
package bls

import (
	"math/big"
)

// Base-field and curve constants for BLS12-381.
var (
	// P is the 381-bit base-field prime.
	P, _ = new(big.Int).SetString("1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab", 16)
	// R is the (255-bit prime) order of G1 and G2.
	R, _ = new(big.Int).SetString("73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001", 16)
	// g1CofactorH clears the G1 cofactor when hashing to the curve.
	g1CofactorH, _ = new(big.Int).SetString("396c8c005555e1568c00aaab0000aaab", 16)

	bigOne  = big.NewInt(1)
	curveB4 = big.NewInt(4) // G1: y² = x³ + 4
)

// fpAdd etc. implement base-field arithmetic; values are always reduced
// to [0, P).
func fpAdd(a, b *big.Int) *big.Int {
	c := new(big.Int).Add(a, b)
	if c.Cmp(P) >= 0 {
		c.Sub(c, P)
	}
	return c
}

func fpSub(a, b *big.Int) *big.Int {
	c := new(big.Int).Sub(a, b)
	if c.Sign() < 0 {
		c.Add(c, P)
	}
	return c
}

func fpMul(a, b *big.Int) *big.Int {
	c := new(big.Int).Mul(a, b)
	return c.Mod(c, P)
}

func fpNeg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(P, a)
}

func fpInv(a *big.Int) *big.Int {
	return new(big.Int).ModInverse(a, P)
}

// fpSqrt computes a square root mod P (P ≡ 3 mod 4), returning nil if a
// is a non-residue.
var fpSqrtExp = new(big.Int).Rsh(new(big.Int).Add(P, bigOne), 2)

func fpSqrt(a *big.Int) *big.Int {
	y := new(big.Int).Exp(a, fpSqrtExp, P)
	if fpMul(y, y).Cmp(new(big.Int).Mod(a, P)) != 0 {
		return nil
	}
	return y
}

// fp2 is Fp[u]/(u²+1): a0 + a1·u.
type fp2 struct {
	a0, a1 *big.Int
}

func fp2Zero() fp2 { return fp2{new(big.Int), new(big.Int)} }
func fp2One() fp2  { return fp2{big.NewInt(1), new(big.Int)} }

// fp2FromInts builds an element from small integers (tests, ξ).
func fp2FromInts(a0, a1 int64) fp2 {
	x0 := big.NewInt(a0)
	x0.Mod(x0, P)
	x1 := big.NewInt(a1)
	x1.Mod(x1, P)
	return fp2{x0, x1}
}

func (x fp2) isZero() bool { return x.a0.Sign() == 0 && x.a1.Sign() == 0 }

func (x fp2) equal(y fp2) bool { return x.a0.Cmp(y.a0) == 0 && x.a1.Cmp(y.a1) == 0 }

func (x fp2) add(y fp2) fp2 { return fp2{fpAdd(x.a0, y.a0), fpAdd(x.a1, y.a1)} }

func (x fp2) sub(y fp2) fp2 { return fp2{fpSub(x.a0, y.a0), fpSub(x.a1, y.a1)} }

func (x fp2) neg() fp2 { return fp2{fpNeg(x.a0), fpNeg(x.a1)} }

// mul: (a0 + a1·u)(b0 + b1·u) = (a0b0 − a1b1) + (a0b1 + a1b0)·u.
func (x fp2) mul(y fp2) fp2 {
	t0 := fpMul(x.a0, y.a0)
	t1 := fpMul(x.a1, y.a1)
	t2 := fpMul(fpAdd(x.a0, x.a1), fpAdd(y.a0, y.a1))
	re := fpSub(t0, t1)
	im := fpSub(fpSub(t2, t0), t1)
	return fp2{re, im}
}

func (x fp2) square() fp2 { return x.mul(x) }

func (x fp2) mulScalar(k *big.Int) fp2 {
	return fp2{fpMul(x.a0, k), fpMul(x.a1, k)}
}

// inv: 1/(a0 + a1·u) = (a0 − a1·u)/(a0² + a1²).
func (x fp2) inv() fp2 {
	norm := fpAdd(fpMul(x.a0, x.a0), fpMul(x.a1, x.a1))
	ni := fpInv(norm)
	return fp2{fpMul(x.a0, ni), fpMul(fpNeg(x.a1), ni)}
}

// conj returns a0 − a1·u.
func (x fp2) conj() fp2 { return fp2{new(big.Int).Set(x.a0), fpNeg(x.a1)} }

// xi is the Fp6 non-residue ξ = 1 + u.
func xi() fp2 { return fp2FromInts(1, 1) }

// mulXi multiplies by ξ = 1+u: (a0+a1·u)(1+u) = (a0−a1) + (a0+a1)·u.
func (x fp2) mulXi() fp2 {
	return fp2{fpSub(x.a0, x.a1), fpAdd(x.a0, x.a1)}
}
