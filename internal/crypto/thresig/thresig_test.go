package thresig

import (
	"crypto/rand"
	"testing"

	"icc/internal/crypto/ec"
)

func deal(t testing.TB, threshold, n int) (*PublicInfo, []SecretShare) {
	t.Helper()
	pub, secrets, err := Deal(rand.Reader, threshold, n)
	if err != nil {
		t.Fatal(err)
	}
	return pub, secrets
}

func signAll(t testing.TB, secrets []SecretShare, msg []byte) []*SigShare {
	t.Helper()
	shares := make([]*SigShare, len(secrets))
	for i, sk := range secrets {
		s, err := Sign(rand.Reader, sk, msg)
		if err != nil {
			t.Fatal(err)
		}
		shares[i] = s
	}
	return shares
}

func TestSignVerifyCombine(t *testing.T) {
	pub, secrets := deal(t, 3, 7)
	msg := []byte("beacon round 1")
	shares := signAll(t, secrets, msg)
	for _, s := range shares {
		if err := pub.VerifyShare(msg, s); err != nil {
			t.Fatalf("share %d rejected: %v", s.Index, err)
		}
	}
	sig, err := pub.Combine(msg, shares[:3])
	if err != nil {
		t.Fatal(err)
	}
	// Combined signature must equal sk·H2C(m); check via uniqueness below
	// and via the global key relation using a full-degree recombination.
	if sig.Point.IsInfinity() {
		t.Fatal("combined signature is identity")
	}
}

func TestUniquenessAcrossSubsets(t *testing.T) {
	pub, secrets := deal(t, 4, 9)
	msg := []byte("round 42")
	shares := signAll(t, secrets, msg)
	sig1, err := pub.Combine(msg, shares[0:4])
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := pub.Combine(msg, shares[5:9])
	if err != nil {
		t.Fatal(err)
	}
	sig3, err := pub.Combine(msg, []*SigShare{shares[8], shares[1], shares[6], shares[3]})
	if err != nil {
		t.Fatal(err)
	}
	if !sig1.Point.Equal(sig2.Point) || !sig1.Point.Equal(sig3.Point) {
		t.Fatal("signature differs across share subsets — uniqueness violated")
	}
	if sig1.Digest() != sig2.Digest() {
		t.Fatal("digests differ")
	}
}

func TestDistinctMessagesDistinctSignatures(t *testing.T) {
	pub, secrets := deal(t, 2, 4)
	s1, err := pub.Combine([]byte("m1"), signAll(t, secrets, []byte("m1")))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pub.Combine([]byte("m2"), signAll(t, secrets, []byte("m2")))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Point.Equal(s2.Point) {
		t.Fatal("same signature for different messages")
	}
}

func TestVerifyShareRejectsForgery(t *testing.T) {
	pub, secrets := deal(t, 2, 4)
	msg := []byte("target")
	// A share computed with the wrong key (another party's) but claiming
	// index 0 must be rejected.
	forged, err := Sign(rand.Reader, SecretShare{Index: 0, Key: secrets[1].Key}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.VerifyShare(msg, forged); err == nil {
		t.Fatal("forged share accepted")
	}
	// A share for a different message must be rejected for this message.
	other, err := Sign(rand.Reader, secrets[0], []byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.VerifyShare(msg, other); err == nil {
		t.Fatal("cross-message share accepted")
	}
	// Out-of-range index.
	bad := &SigShare{Index: 99, Point: ec.Generator(), Proof: other.Proof}
	if err := pub.VerifyShare(msg, bad); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestCombineSkipsInvalidAndDuplicateShares(t *testing.T) {
	pub, secrets := deal(t, 3, 6)
	msg := []byte("m")
	shares := signAll(t, secrets, msg)
	// Corrupt one share, duplicate another, include a nil: Combine must
	// still succeed using the remaining valid distinct shares.
	corrupted := &SigShare{Index: shares[0].Index, Point: ec.Generator(), Proof: shares[0].Proof}
	input := []*SigShare{corrupted, nil, shares[1], shares[1], shares[2], shares[3]}
	sig, err := pub.Combine(msg, input)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pub.Combine(msg, shares[3:6])
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Point.Equal(want.Point) {
		t.Fatal("combination with junk input produced a different signature")
	}
}

func TestCombineFailsBelowThreshold(t *testing.T) {
	pub, secrets := deal(t, 4, 6)
	msg := []byte("m")
	shares := signAll(t, secrets, msg)
	if _, err := pub.Combine(msg, shares[:3]); err == nil {
		t.Fatal("combined below threshold")
	}
}

func TestShareEncodeDecode(t *testing.T) {
	pub, secrets := deal(t, 2, 3)
	msg := []byte("wire")
	s, err := Sign(rand.Reader, secrets[1], msg)
	if err != nil {
		t.Fatal(err)
	}
	enc := s.Encode()
	if len(enc) != SigShareLen {
		t.Fatalf("encoded length %d, want %d", len(enc), SigShareLen)
	}
	dec, err := DecodeSigShare(1, enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.VerifyShare(msg, dec); err != nil {
		t.Fatalf("decoded share rejected: %v", err)
	}
	if _, err := DecodeSigShare(1, enc[:4]); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func TestSignatureEncodeDecode(t *testing.T) {
	pub, secrets := deal(t, 2, 3)
	msg := []byte("wire")
	sig, err := pub.Combine(msg, signAll(t, secrets, msg))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSignature(sig.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Point.Equal(sig.Point) {
		t.Fatal("signature round-trip mismatch")
	}
}

func BenchmarkSignShare(b *testing.B) {
	_, secrets, err := Deal(rand.Reader, 5, 13)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("beacon")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sign(rand.Reader, secrets[0], msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyShare(b *testing.B) {
	pub, secrets, err := Deal(rand.Reader, 5, 13)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("beacon")
	s, _ := Sign(rand.Reader, secrets[0], msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.VerifyShare(msg, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine13of5(b *testing.B) {
	pub, secrets, err := Deal(rand.Reader, 5, 13)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("beacon")
	shares := make([]*SigShare, 5)
	for i := range shares {
		shares[i], _ = Sign(rand.Reader, secrets[i], msg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Combine(msg, shares); err != nil {
			b.Fatal(err)
		}
	}
}
