// Package icc is a from-scratch Go implementation of the Internet
// Computer Consensus (ICC) family of atomic-broadcast protocols
// (Camenisch, Drijvers, Hanke, Pignolet, Shoup, Williams — PODC 2022):
// ICC0, ICC1 (gossip dissemination), and ICC2 (erasure-coded reliable
// broadcast), together with every substrate they depend on — threshold
// signatures and a random beacon, an artifact pool and block tree, a
// gossip overlay, Reed–Solomon coding with Merkle-committed fragments, a
// deterministic network simulator, and real in-process/TCP runtimes.
//
// This package is the high-level facade. Three entry points:
//
//   - NewLocalCluster: an n-party replicated state machine running in
//     one process on real time, with a key-value store on top — the
//     quickest way to see consensus commit client commands.
//   - NewSim: a deterministic discrete-event simulation of a cluster
//     (virtual time, seeded delays, optional Byzantine parties) — the
//     engine behind the benchmark suite and most tests.
//   - internal/... packages expose every layer individually for
//     advanced use; see DESIGN.md for the map.
package icc

import (
	"context"
	"crypto/rand"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"icc/internal/adversary"
	"icc/internal/backfill"
	"icc/internal/beacon"
	"icc/internal/checkpoint"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/keys"
	"icc/internal/engine"
	"icc/internal/gateway"
	"icc/internal/gossip"
	"icc/internal/harness"
	"icc/internal/metrics"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/rbc"
	"icc/internal/runtime"
	"icc/internal/statemachine"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
	"icc/internal/wal"
)

// Mode selects the protocol variant.
type Mode int

// Protocol variants.
const (
	ICC0 Mode = iota // blocks broadcast directly (paper §3)
	ICC1             // blocks disseminated via the gossip sub-layer
	ICC2             // blocks disseminated via erasure-coded reliable broadcast
)

// Behavior configures a party's (mis)behaviour in a LocalCluster.
type Behavior int

// Behaviours for fault-injection runs.
const (
	Honest Behavior = iota
	CrashFromBirth
	SilentLeader
	EquivocatingLeader
)

// Command is a replicated-state-machine command. (Client, Seq) must be
// unique per command; replicas apply each identity exactly once, in
// per-client Seq order.
type Command = statemachine.Command

// Operation codes for Command.Op.
const (
	OpSet    = statemachine.OpSet
	OpDelete = statemachine.OpDelete
	OpAppend = statemachine.OpAppend
)

// KV is the replicated key-value state machine each party maintains.
type KV = statemachine.KV

// Client is the typed ingress API of one replica: Submit returns a
// finality Receipt (never an ack at admission), Read serves
// read-your-writes reads gated by the Receipt's commit-index token.
type Client = gateway.Gateway

// Receipt is a submitted command's completion future; it resolves at
// finalization with the commit-index token.
type Receipt = gateway.Receipt

// Ack is a resolved Receipt: the commit-index token plus the observed
// submit-to-finalize latency.
type Ack = gateway.Ack

// ReadResult is a read served from finalized local state.
type ReadResult = gateway.ReadResult

// Typed ingress errors (compare with errors.Is).
var (
	// ErrBacklogFull: the replica's admission backlog is at capacity —
	// back off and retry; nothing was enqueued.
	ErrBacklogFull = gateway.ErrBacklogFull
	// ErrNotRunning: the cluster is not serving (before Start / after
	// Stop / crashed party).
	ErrNotRunning = gateway.ErrNotRunning
	// ErrDuplicate: an identical (client, seq) command is pending or
	// already finalized.
	ErrDuplicate = gateway.ErrDuplicate
	// ErrTooLarge: the command cannot fit in any block payload.
	ErrTooLarge = gateway.ErrTooLarge
)

// CommitEvent reports one block committed by one party.
type CommitEvent struct {
	Party   int
	Round   uint64
	Payload []byte
}

// Options configures a LocalCluster.
type Options struct {
	// Mode selects ICC0 (default), ICC1, or ICC2.
	Mode Mode
	// DeltaBound is Δbnd, the partial-synchrony delay bound driving the
	// Δprop/Δntry delay functions (default 100 ms — generous for
	// localhost; lower it for faster rounds).
	DeltaBound time.Duration
	// Epsilon is the ε rate governor of paper eq. (2) (default 0).
	Epsilon time.Duration
	// Behaviors assigns Byzantine roles to parties (default all honest).
	Behaviors map[int]Behavior
	// GossipFanout bounds the ICC1 overlay degree (default ≈ 2·log₂ n).
	GossipFanout int
	// GossipSeed seeds the ICC1 overlay's chord permutation (default 42).
	// Clusters only connect to themselves, so the seed matters solely
	// for reproducing a specific topology across runs.
	GossipSeed int64
	// MaxBatch bounds commands per block (default 1024).
	MaxBatch int
	// MetricsAddr, when non-empty, serves the observability endpoints
	// (/metrics, /healthz, /trace, /debug/pprof) on this address while
	// the cluster runs. Use ":0" for an ephemeral port and MetricsAddr()
	// for the bound address.
	MetricsAddr string
	// TraceCap bounds the protocol event ring (default obs.DefaultTraceCap).
	TraceCap int
	// StallAfter is the /healthz stall threshold: the cluster reports
	// unhealthy when no party has committed for this long (default 30 s).
	StallAfter time.Duration
	// VerifyWorkers sizes each party's parallel verification pipeline:
	// 0 (default) uses GOMAXPROCS workers, a negative value disables the
	// pipeline entirely (the engine verifies signatures inline on its
	// event loop — the pre-pipeline behaviour).
	VerifyWorkers int
	// VerifyCacheSize bounds each party's verified-digest cache
	// (default 8192 artifacts; negative disables caching). Re-gossiped
	// and resync'd artifacts whose digests are cached skip signature
	// re-verification.
	VerifyCacheSize int
	// BackfillWorkers sizes each party's async catch-up signer: beacon
	// shares a laggard needs that miss the own-share cache are signed on
	// these worker goroutines instead of the engine loop. 0 (default)
	// uses one worker; a negative value disables the async path (the
	// engine signs inline in handleStatus — the pre-refactor behaviour).
	BackfillWorkers int
	// ShareCacheSize bounds each party's beacon own-share cache
	// (default beacon.DefaultShareCacheSize = 1024 shares; negative
	// disables caching, forcing every catch-up share onto the backfill
	// workers or, with those disabled too, back inline).
	ShareCacheSize int
	// ResyncWindow is the verify pipeline's behind-shedding window: when
	// a party's engine round lags the verified peer frontier by more
	// than this many rounds, live artifacts beyond frontier-window are
	// shed at admission and re-learned via catch-up. 0 (default) uses
	// verify.DefaultBehindWindow (64); negative disables shedding.
	ResyncWindow int
	// WALDir, when non-empty, makes every party durable: each gets a
	// crash-consistent write-ahead log and checkpoint store under
	// WALDir/party-<i>/, replayed by NewLocalCluster so a restarted
	// cluster (same directory) resumes from its persisted state.
	WALDir string
	// CheckpointInterval, when positive, makes parties certify a signed
	// state checkpoint every so many finalized rounds (and enables the
	// checkpoint-transfer path for peers behind the prune horizon). Only
	// meaningful together with WALDir.
	CheckpointInterval uint64
	// PruneDepth bounds pool/beacon retention behind the finalized
	// frontier. 0 keeps the historical facade behaviour (no pruning)
	// unless CheckpointInterval is set, in which case it defaults to
	// core.DefaultPruneDepth; negative values are invalid.
	PruneDepth uint64
	// GatewayBacklog bounds each replica's admitted-but-unfinalized
	// command backlog; Client.Submit returns ErrBacklogFull at the
	// bound (0 = gateway.DefaultMaxBacklog; negative = unbounded).
	GatewayBacklog int
	// CertScheme names the aggregate-signature scheme for the cluster's
	// notarization/finalization/checkpoint certificates: "multisig"
	// (default — ed25519 multi-signatures, certificates grow ~66 B per
	// signer) or "bls" (BLS12-381 aggregates, constant-size certificates;
	// the from-scratch pairing is slow, so suit it to demonstrations and
	// small clusters). See DESIGN.md §15.
	CertScheme string
}

// Option mutates Options.
type Option func(*Options)

// WithMode selects the protocol variant.
func WithMode(m Mode) Option { return func(o *Options) { o.Mode = m } }

// WithDeltaBound sets Δbnd.
func WithDeltaBound(d time.Duration) Option { return func(o *Options) { o.DeltaBound = d } }

// WithEpsilon sets the ε governor.
func WithEpsilon(d time.Duration) Option { return func(o *Options) { o.Epsilon = d } }

// WithBehavior assigns a Byzantine role to a party.
func WithBehavior(party int, b Behavior) Option {
	return func(o *Options) {
		if o.Behaviors == nil {
			o.Behaviors = make(map[int]Behavior)
		}
		o.Behaviors[party] = b
	}
}

// WithGossipFanout bounds the ICC1 overlay degree.
func WithGossipFanout(f int) Option { return func(o *Options) { o.GossipFanout = f } }

// WithGossipTopology pins the ICC1 overlay shape: fanout bounds each
// party's degree (validated against the cluster size at construction —
// out-of-range values make NewLocalCluster fail rather than silently
// clamp), seed selects the deterministic chord permutation.
func WithGossipTopology(fanout int, seed int64) Option {
	return func(o *Options) {
		o.GossipFanout = fanout
		o.GossipSeed = seed
	}
}

// WithMaxBatch bounds the commands batched into one block proposal.
func WithMaxBatch(n int) Option { return func(o *Options) { o.MaxBatch = n } }

// WithMetricsAddr serves the observability endpoints on addr while the
// cluster runs.
func WithMetricsAddr(addr string) Option { return func(o *Options) { o.MetricsAddr = addr } }

// WithStallAfter sets the /healthz stall threshold.
func WithStallAfter(d time.Duration) Option { return func(o *Options) { o.StallAfter = d } }

// WithVerifyWorkers sizes the per-party verification worker pool
// (0 = GOMAXPROCS; negative = verify inline on the engine loop).
func WithVerifyWorkers(n int) Option { return func(o *Options) { o.VerifyWorkers = n } }

// WithVerifyCacheSize bounds the per-party verified-digest cache
// (0 = default 8192; negative = no cache).
func WithVerifyCacheSize(n int) Option { return func(o *Options) { o.VerifyCacheSize = n } }

// WithBackfillWorkers sizes the per-party async catch-up signer
// (0 = one worker; negative = sign catch-up shares inline on the engine
// loop).
func WithBackfillWorkers(n int) Option { return func(o *Options) { o.BackfillWorkers = n } }

// WithShareCacheSize bounds the per-party beacon own-share cache
// (0 = default 1024; negative = no cache).
func WithShareCacheSize(n int) Option { return func(o *Options) { o.ShareCacheSize = n } }

// WithResyncWindow sets the verify pipeline's behind-shedding window in
// rounds (0 = default verify.DefaultBehindWindow; negative = never shed
// live traffic while behind).
func WithResyncWindow(n int) Option { return func(o *Options) { o.ResyncWindow = n } }

// WithWALDir makes every party durable under dir (one subdirectory per
// party): artifacts are WAL-logged with group-commit fsync before any
// signature leaves the process, and a cluster rebuilt on the same
// directory resumes from its persisted rounds.
func WithWALDir(dir string) Option { return func(o *Options) { o.WALDir = dir } }

// WithCheckpointInterval makes parties certify a signed state checkpoint
// every n finalized rounds (requires WithWALDir).
func WithCheckpointInterval(n uint64) Option {
	return func(o *Options) { o.CheckpointInterval = n }
}

// WithPruneDepth bounds pool/beacon retention behind the finalized
// frontier (0 = no pruning, or core.DefaultPruneDepth when
// checkpointing is enabled).
func WithPruneDepth(n uint64) Option { return func(o *Options) { o.PruneDepth = n } }

// WithGatewayBacklog bounds each replica's admission backlog
// (0 = default 4096; negative = unbounded).
func WithGatewayBacklog(n int) Option { return func(o *Options) { o.GatewayBacklog = n } }

// WithCertScheme selects the certificate aggregate-signature scheme:
// "multisig" (default) or "bls".
func WithCertScheme(scheme string) Option { return func(o *Options) { o.CertScheme = scheme } }

// validate rejects nonsensical option values up front, so misconfigured
// clusters fail loudly at construction instead of hanging at runtime.
func (o Options) validate(n int) error {
	switch o.Mode {
	case ICC0, ICC1, ICC2:
	default:
		return fmt.Errorf("icc: unknown mode %d", o.Mode)
	}
	if o.DeltaBound < 0 {
		return fmt.Errorf("icc: negative DeltaBound %v", o.DeltaBound)
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("icc: negative Epsilon %v", o.Epsilon)
	}
	if o.MaxBatch < 0 {
		return fmt.Errorf("icc: negative MaxBatch %d", o.MaxBatch)
	}
	if o.GossipFanout < 0 {
		return fmt.Errorf("icc: negative GossipFanout %d", o.GossipFanout)
	}
	if o.TraceCap < 0 {
		return fmt.Errorf("icc: negative TraceCap %d", o.TraceCap)
	}
	if o.StallAfter < 0 {
		return fmt.Errorf("icc: negative StallAfter %v", o.StallAfter)
	}
	if o.CheckpointInterval > 0 && o.WALDir == "" {
		return fmt.Errorf("icc: CheckpointInterval requires WALDir")
	}
	if _, err := aggsig.ParseSchemeID(o.CertScheme); err != nil {
		return fmt.Errorf("icc: %w", err)
	}
	for p := range o.Behaviors {
		if p < 0 || p >= n {
			return fmt.Errorf("icc: behavior assigned to party %d, cluster has %d parties", p, n)
		}
	}
	return nil
}

// LocalCluster is an n-party ICC deployment inside one process, running
// on wall-clock time over an in-process transport, with a replicated
// key-value store applied on top of the committed chain. Its live
// behaviour is observable through Metrics(), Trace(), and — with
// WithMetricsAddr — the HTTP endpoints every real node exposes.
type LocalCluster struct {
	n    int
	opts Options
	pub  *keys.Public
	hub  *transport.Inproc
	rnrs []*runtime.Runner

	queues []*statemachine.Queue
	kvs    []*statemachine.KV
	gws    []*gateway.Gateway
	wals   []*wal.Log
	stores []*checkpoint.Store

	reg    *obs.Registry
	tracer *obs.Tracer
	health *obs.HealthTracker
	stats  *metrics.TransportStats
	srv    *obs.Server

	mu           sync.Mutex
	onCommit     func(CommitEvent)
	committed    []int
	commitSignal chan struct{} // closed and replaced on every commit
	started      bool
	stopped      bool
}

// NewLocalCluster deals key material and assembles an n-party cluster.
// Call Start to run it and Stop to shut it down.
func NewLocalCluster(n int, opts ...Option) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("icc: invalid cluster size %d", n)
	}
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	if err := o.validate(n); err != nil {
		return nil, err
	}
	if o.DeltaBound == 0 {
		o.DeltaBound = 100 * time.Millisecond
	}
	if o.StallAfter == 0 {
		o.StallAfter = 30 * time.Second
	}
	scheme, _ := aggsig.ParseSchemeID(o.CertScheme) // validated above
	pub, privs, err := keys.DealScheme(rand.Reader, n, scheme)
	if err != nil {
		return nil, fmt.Errorf("icc: dealing keys: %w", err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(o.TraceCap)
	c := &LocalCluster{
		n:            n,
		opts:         o,
		pub:          pub,
		hub:          transport.NewInproc(n),
		queues:       make([]*statemachine.Queue, n),
		kvs:          make([]*statemachine.KV, n),
		gws:          make([]*gateway.Gateway, n),
		wals:         make([]*wal.Log, n),
		stores:       make([]*checkpoint.Store, n),
		committed:    make([]int, n),
		commitSignal: make(chan struct{}),
		reg:          reg,
		tracer:       tracer,
		health:       obs.NewHealthTracker(),
		stats:        metrics.NewTransportStatsOn(reg, tracer),
	}
	c.hub.SetStats(c.stats)
	clk := clock.NewWall()
	for i := 0; i < n; i++ {
		i := i
		c.queues[i] = statemachine.NewQueue()
		if o.MaxBatch > 0 {
			c.queues[i].MaxBatch = o.MaxBatch
		}
		c.kvs[i] = statemachine.NewKV()
		// Each replica gets its own ingress gateway: admission control
		// over its queue, finality receipts resolved by its commits,
		// token-gated reads from its KV.
		c.gws[i] = gateway.New(c.queues[i], c.kvs[i], gateway.Options{
			Party:      i,
			MaxBacklog: o.GatewayBacklog,
			Registry:   reg,
		})
		behavior := o.Behaviors[i]
		if behavior == CrashFromBirth {
			// A crashed party simply runs no engine — and its gateway is
			// never started, so clients get ErrNotRunning instead of
			// commands silently rotting in a dead queue.
			c.rnrs = append(c.rnrs, nil)
			continue
		}
		// Every party reports into the shared registry/tracer: families
		// register idempotently and counters aggregate cluster-wide.
		ob := obs.NewObserver(obs.ObserverConfig{
			Registry: reg, Tracer: tracer, Party: i, Health: c.health,
		})
		// With the parallel verification pipeline (the default), the
		// engine's pool trusts its input: every signed artifact already
		// passed a pipeline worker before reaching the event loop.
		policy := pool.VerifyPreVerified
		if o.VerifyWorkers < 0 {
			policy = pool.VerifyFull
		}
		// The beacon is built here rather than inside core.Config so the
		// engine loop and the backfill worker share one instance (it is
		// safe for concurrent use); the own-share cache makes catch-up
		// shares for normally-traversed rounds free.
		bcn := beacon.New(pub.Beacon, privs[i].Beacon, types.PartyID(i), pub.GenesisSeed)
		if o.ShareCacheSize != 0 {
			bcn.SetShareCacheSize(o.ShareCacheSize)
		}
		ep := c.hub.Endpoint(types.PartyID(i))
		// Durability: WAL and checkpoint store live under one per-party
		// directory, so a cluster rebuilt on the same WALDir resumes each
		// party from its own persisted frontier.
		pruneDepth := types.Round(o.PruneDepth)
		if pruneDepth == 0 && o.CheckpointInterval > 0 {
			pruneDepth = core.DefaultPruneDepth
		}
		var partyWAL *wal.Log
		var partyStore *checkpoint.Store
		if o.WALDir != "" {
			base := filepath.Join(o.WALDir, fmt.Sprintf("party-%d", i))
			var err error
			partyWAL, err = wal.Open(filepath.Join(base, "wal"), wal.Options{Registry: reg})
			if err != nil {
				return nil, fmt.Errorf("icc: party %d wal: %w", i, err)
			}
			partyStore, err = checkpoint.OpenStore(filepath.Join(base, "checkpoints"), checkpoint.StoreOptions{Registry: reg})
			if err != nil {
				return nil, fmt.Errorf("icc: party %d checkpoint store: %w", i, err)
			}
			c.wals[i] = partyWAL
			c.stores[i] = partyStore
		}
		var bfw *backfill.Worker
		if o.BackfillWorkers >= 0 {
			bfw = backfill.New(bcn, ep, backfill.Options{
				Workers:     o.BackfillWorkers,
				Registry:    reg,
				Checkpoints: partyStore,
			})
		}
		kv := c.kvs[i]
		inner := core.NewEngine(core.Config{
			Self:               types.PartyID(i),
			Keys:               pub,
			Priv:               privs[i],
			Beacon:             bcn,
			Catchup:            asProvider(bfw),
			DeltaBound:         o.DeltaBound,
			Epsilon:            o.Epsilon,
			Payload:            c.queues[i],
			Pool:               pool.Options{Policy: policy},
			PruneDepth:         pruneDepth,
			WAL:                partyWAL,
			Checkpoints:        partyStore,
			CheckpointInterval: types.Round(o.CheckpointInterval),
			StateSnapshot:      kv.Snapshot,
			StateRestore:       kv.Restore,
			Hooks: core.ObservedHooks(ob, core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) { c.commit(i, b) },
			}),
		})
		if partyWAL != nil {
			// Replay the persisted rounds (rebuilding the KV through the
			// OnCommit hook) before the runner starts delivering traffic.
			if _, err := inner.Recover(); err != nil {
				return nil, fmt.Errorf("icc: party %d recover: %w", i, err)
			}
		}
		var eng engine.Engine = inner
		switch behavior {
		case SilentLeader:
			eng = adversary.NewSilentLeader(inner)
		case EquivocatingLeader:
			eng = adversary.NewEquivocator(inner, n, privs[i])
		}
		switch o.Mode {
		case ICC1:
			fanout := o.GossipFanout
			if fanout <= 0 {
				fanout = defaultFanout(n)
			}
			seed := o.GossipSeed
			if seed == 0 {
				seed = 42
			}
			// Scale-out path: coalesce share gossip into ShareBundle frames
			// and let relays forward an aggregated certificate once they
			// hold a quorum of shares. With the verify pipeline in front
			// (the default) every share reaching the overlay has already
			// been signature-checked, so relays may combine without
			// re-verifying (TrustShares). The batch window is adaptive:
			// an isolated share relays immediately, so idle parties pay
			// no flush latency and only bursts batch (DESIGN.md §15).
			g, err := gossip.New(gossip.Config{
				Self:             types.PartyID(i),
				N:                n,
				Fanout:           fanout,
				Seed:             seed,
				ShareBatchWindow: 2 * time.Millisecond,
				AdaptiveBatch:    true,
				Aggregate:        true,
				TrustShares:      o.VerifyWorkers >= 0,
				Keys:             pub,
			}, eng)
			if err != nil {
				return nil, fmt.Errorf("icc: party %d gossip: %w", i, err)
			}
			eng = g
		case ICC2:
			eng = rbc.Wrap(rbc.Config{Self: types.PartyID(i), N: n}, eng)
		}
		r := runtime.NewRunner(eng, ep, clk, n)
		r.SetTransportStats(c.stats)
		r.SetObserver(ob)
		r.SetBackfillWorker(bfw)
		if o.VerifyWorkers >= 0 {
			r.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{
				Workers:      o.VerifyWorkers,
				CacheSize:    o.VerifyCacheSize,
				BehindWindow: o.ResyncWindow,
				Registry:     reg,
			}))
		}
		c.rnrs = append(c.rnrs, r)
	}
	return c, nil
}

// asProvider converts a possibly-nil worker into the engine's provider
// field without smuggling a typed-nil interface (which would defeat the
// engine's nil check and break the synchronous fallback).
func asProvider(w *backfill.Worker) core.CatchupProvider {
	if w == nil {
		return nil
	}
	return w
}

// defaultFanout mirrors the harness default: ≈ 2·log₂(n) + 2.
func defaultFanout(n int) int {
	f := 2
	for v := n; v > 1; v >>= 1 {
		f += 2
	}
	if f > n-1 {
		f = n - 1
	}
	return f
}

// commit applies a committed block to party i's state machine, wakes
// commit waiters, and fires the user callback. The gateway observes the
// commit after the KV apply, so a reader released by the advancing
// commit index always sees the write.
func (c *LocalCluster) commit(i int, b *types.Block) {
	_ = c.kvs[i].Apply(b.Payload)
	c.queues[i].MarkCommitted(b.Payload)
	c.gws[i].ObserveCommit(uint64(b.Round), b.Payload)
	c.mu.Lock()
	c.committed[i]++
	h := c.onCommit
	// Broadcast to WaitForCommitsCtx waiters: close the current signal
	// channel and install a fresh one.
	close(c.commitSignal)
	c.commitSignal = make(chan struct{})
	c.mu.Unlock()
	if h != nil {
		h(CommitEvent{Party: i, Round: uint64(b.Round), Payload: b.Payload})
	}
}

// OnCommit registers a callback fired for every block each party
// commits. Must be called before Start. The callback runs on engine
// goroutines: keep it fast and thread-safe.
func (c *LocalCluster) OnCommit(h func(CommitEvent)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onCommit = h
}

// Start launches all parties (and the observability server, when
// configured). Idempotent; a no-op after Stop.
func (c *LocalCluster) Start() {
	c.mu.Lock()
	if c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	c.started = true
	addr := c.opts.MetricsAddr
	c.mu.Unlock()
	if addr != "" {
		srv, err := obs.Serve(addr, obs.HandlerOptions{
			Registry: c.reg,
			Tracer:   c.tracer,
			Health:   func() obs.Health { return c.health.Health(c.opts.StallAfter) },
			Ingress:  gateway.NewHandler(c.gws, 0),
		})
		if err == nil {
			c.mu.Lock()
			c.srv = srv
			c.mu.Unlock()
		}
	}
	for i, r := range c.rnrs {
		if r != nil {
			c.gws[i].Start()
			r.Start()
		}
	}
}

// Stop shuts the cluster down. Idempotent, and safe to call before
// Start (the cluster then refuses to start).
func (c *LocalCluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	srv := c.srv
	c.srv = nil
	c.mu.Unlock()
	// Gateways stop first: in-flight receipts resolve with
	// ErrNotRunning instead of hanging on a cluster that will never
	// commit again.
	for _, g := range c.gws {
		g.Stop()
	}
	for _, r := range c.rnrs {
		if r != nil {
			r.Stop()
		}
	}
	// Runners are quiesced: flush and close the durability layer so the
	// last admitted artifacts are on disk and the gauges zero out.
	for _, w := range c.wals {
		_ = w.Close()
	}
	for _, s := range c.stores {
		s.Close()
	}
	c.hub.Close()
	_ = srv.Close()
}

// MetricsAddr returns the bound observability address ("" unless the
// cluster was built WithMetricsAddr and is running).
func (c *LocalCluster) MetricsAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srv == nil {
		return ""
	}
	return c.srv.Addr()
}

// Metrics returns a point-in-time snapshot of every metric the cluster's
// parties and transport have recorded — the same families /metrics
// exposes in Prometheus format.
func (c *LocalCluster) Metrics() MetricsSnapshot { return c.reg.Snapshot() }

// Trace returns the retained protocol event history, oldest first: round
// entries, proposals, shares, commits, resyncs, transport faults.
func (c *LocalCluster) Trace() []TraceEvent { return c.tracer.Events() }

// Client returns party p's ingress API: typed-error Submit with a
// finality Receipt, and read-your-writes Read gated by the Receipt's
// commit-index token. The client serves between Start and Stop
// (ErrNotRunning otherwise); a CrashFromBirth party's client never
// serves.
func (c *LocalCluster) Client(party int) *Client { return c.gws[party] }

// KV returns party p's replicated key-value store.
func (c *LocalCluster) KV(party int) *KV { return c.kvs[party] }

// CommittedBlocks returns how many blocks party p has committed.
func (c *LocalCluster) CommittedBlocks(party int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.committed[party]
}

// WaitForCommitsCtx blocks until every live party has committed at
// least min blocks or ctx is done, whichever comes first. It is driven
// by commit notifications (no polling): each commit wakes it exactly
// once to re-check the threshold.
func (c *LocalCluster) WaitForCommitsCtx(ctx context.Context, min int) error {
	for {
		c.mu.Lock()
		done := c.minCommittedLocked() >= min
		signal := c.commitSignal
		c.mu.Unlock()
		if done {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-signal:
		}
	}
}

// WaitForCommits blocks until every live party has committed at least
// min blocks, or the timeout elapses. A thin wrapper over
// WaitForCommitsCtx.
func (c *LocalCluster) WaitForCommits(min int, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.WaitForCommitsCtx(ctx, min) == nil
}

func (c *LocalCluster) minCommittedLocked() int {
	minC := -1
	for i, r := range c.rnrs {
		if r == nil {
			continue // crashed party
		}
		if minC < 0 || c.committed[i] < minC {
			minC = c.committed[i]
		}
	}
	return minC
}

// MetricsSnapshot is the common map view every instrumented component
// exports: metric name (optionally "{label=\"value\"}"-suffixed) to
// value. Histograms appear as name_count and name_sum entries.
type MetricsSnapshot = obs.Snapshot

// TraceEvent is one protocol event from the bounded trace ring.
type TraceEvent = obs.Event

// Sim re-exports the deterministic simulation harness: virtual time,
// seeded delay models, Byzantine behaviours, and byte-accurate metrics.
// See the harness package for the full option surface.
type Sim = harness.Cluster

// SimOptions configures a simulation.
type SimOptions = harness.Options

// NewSim builds a deterministic cluster simulation.
func NewSim(opts SimOptions) (*Sim, error) { return harness.New(opts) }
