package keys

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/bls"
	"icc/internal/crypto/ec"
	"icc/internal/crypto/multisig"
	"icc/internal/crypto/sig"
	"icc/internal/crypto/thresig"
	"icc/internal/types"
)

// The JSON forms below exist so that cmd/icckeygen can write key files
// that cmd/iccnode reads back; all binary values are hex strings. The
// cert_scheme field selects how the notary/final key and secret hex
// strings decode: ed25519 material under "multisig", BLS12-381 material
// under "bls". Files written before the field existed decode as
// multisig (the historical scheme).

type jsonPublic struct {
	N           int      `json:"n"`
	T           int      `json:"t"`
	CertScheme  string   `json:"cert_scheme,omitempty"`
	Auth        []string `json:"auth_keys"`
	Notary      []string `json:"notary_keys"`
	Final       []string `json:"final_keys"`
	BeaconGlob  string   `json:"beacon_global"`
	BeaconShare []string `json:"beacon_share_keys"`
	GenesisSeed string   `json:"genesis_seed"`
}

type jsonPrivate struct {
	Index      int    `json:"index"`
	CertScheme string `json:"cert_scheme,omitempty"`
	Auth       string `json:"auth_sk"`
	Notary     string `json:"notary_sk"`
	Final      string `json:"final_sk"`
	Beacon     string `json:"beacon_sk"`
}

func hexKeys[T ~[]byte](ks []T) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = hex.EncodeToString(k)
	}
	return out
}

func unhexKeys(ss []string) ([]sig.PublicKey, error) {
	out := make([]sig.PublicKey, len(ss))
	for i, s := range ss {
		b, err := hex.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("keys: bad hex at %d: %w", i, err)
		}
		out[i] = sig.PublicKey(b)
	}
	return out, nil
}

// hexScheme serialises one certificate-scheme instance's public keys.
func hexScheme(s aggsig.Scheme) ([]string, error) {
	switch info := s.(type) {
	case *multisig.PublicInfo:
		return hexKeys(info.Keys), nil
	case *aggsig.BLSInfo:
		out := make([]string, len(info.Keys))
		for i, pk := range info.Keys {
			out[i] = hex.EncodeToString(pk.Encode())
		}
		return out, nil
	default:
		return nil, fmt.Errorf("keys: unserialisable certificate scheme %T", s)
	}
}

// unhexScheme parses one instance's public keys under the named scheme.
func unhexScheme(scheme aggsig.SchemeID, n int, ss []string) (aggsig.Scheme, error) {
	switch scheme {
	case aggsig.SchemeMultisig:
		ks, err := unhexKeys(ss)
		if err != nil {
			return nil, err
		}
		return &multisig.PublicInfo{N: n, Threshold: types.NotaryQuorum(n), Keys: ks}, nil
	case aggsig.SchemeBLS:
		ks := make([]*bls.PublicKey, len(ss))
		for i, s := range ss {
			raw, err := hex.DecodeString(s)
			if err != nil {
				return nil, fmt.Errorf("keys: bad hex at %d: %w", i, err)
			}
			if ks[i], err = bls.DecodePublicKey(raw); err != nil {
				return nil, fmt.Errorf("keys: bls key %d: %w", i, err)
			}
		}
		return &aggsig.BLSInfo{N: n, Q: types.NotaryQuorum(n), Keys: ks}, nil
	default:
		return nil, fmt.Errorf("keys: unknown certificate scheme %s", scheme)
	}
}

// MarshalJSON implements json.Marshaler.
func (p *Public) MarshalJSON() ([]byte, error) {
	shares := make([]string, len(p.Beacon.Shares))
	for i, pt := range p.Beacon.Shares {
		shares[i] = hex.EncodeToString(pt.Encode())
	}
	notary, err := hexScheme(p.Notary)
	if err != nil {
		return nil, err
	}
	final, err := hexScheme(p.Final)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jsonPublic{
		N:           p.N,
		T:           p.T,
		CertScheme:  p.CertScheme().String(),
		Auth:        hexKeys(p.Auth),
		Notary:      notary,
		Final:       final,
		BeaconGlob:  hex.EncodeToString(p.Beacon.Global.Encode()),
		BeaconShare: shares,
		GenesisSeed: hex.EncodeToString(p.GenesisSeed),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Public) UnmarshalJSON(b []byte) error {
	var j jsonPublic
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	scheme, err := aggsig.ParseSchemeID(j.CertScheme)
	if err != nil {
		return err
	}
	auth, err := unhexKeys(j.Auth)
	if err != nil {
		return err
	}
	notary, err := unhexScheme(scheme, j.N, j.Notary)
	if err != nil {
		return err
	}
	final, err := unhexScheme(scheme, j.N, j.Final)
	if err != nil {
		return err
	}
	globRaw, err := hex.DecodeString(j.BeaconGlob)
	if err != nil {
		return fmt.Errorf("keys: beacon global: %w", err)
	}
	glob, err := ec.DecodePoint(globRaw)
	if err != nil {
		return fmt.Errorf("keys: beacon global: %w", err)
	}
	shares := make([]*ec.Point, len(j.BeaconShare))
	for i, s := range j.BeaconShare {
		raw, err := hex.DecodeString(s)
		if err != nil {
			return fmt.Errorf("keys: beacon share %d: %w", i, err)
		}
		if shares[i], err = ec.DecodePoint(raw); err != nil {
			return fmt.Errorf("keys: beacon share %d: %w", i, err)
		}
	}
	seed, err := hex.DecodeString(j.GenesisSeed)
	if err != nil {
		return fmt.Errorf("keys: genesis seed: %w", err)
	}
	p.N, p.T = j.N, j.T
	p.Auth = auth
	p.Notary = notary
	p.Final = final
	p.Beacon = &thresig.PublicInfo{N: j.N, Threshold: types.BeaconQuorum(j.N), Global: glob, Shares: shares}
	p.GenesisSeed = seed
	return nil
}

// hexSigner serialises one certificate-scheme signing key, returning the
// scheme it belongs to.
func hexSigner(s aggsig.Signer) (string, aggsig.SchemeID, error) {
	switch sk := s.(type) {
	case multisig.SecretKey:
		return hex.EncodeToString(sk.Key), aggsig.SchemeMultisig, nil
	case aggsig.BLSSecretKey:
		return hex.EncodeToString(sk.Key.Encode()), aggsig.SchemeBLS, nil
	default:
		return "", 0, fmt.Errorf("keys: unserialisable signing key %T", s)
	}
}

// unhexSigner parses one signing key under the named scheme.
func unhexSigner(scheme aggsig.SchemeID, index int, s string) (aggsig.Signer, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("keys: bad hex: %w", err)
	}
	switch scheme {
	case aggsig.SchemeMultisig:
		return multisig.SecretKey{Index: index, Key: sig.PrivateKey(raw)}, nil
	case aggsig.SchemeBLS:
		sk, err := bls.DecodeSecretKey(raw)
		if err != nil {
			return nil, err
		}
		return aggsig.BLSSecretKey{Index: index, Key: sk}, nil
	default:
		return nil, fmt.Errorf("keys: unknown certificate scheme %s", scheme)
	}
}

// MarshalJSON implements json.Marshaler.
func (p *Private) MarshalJSON() ([]byte, error) {
	notary, scheme, err := hexSigner(p.Notary)
	if err != nil {
		return nil, err
	}
	final, _, err := hexSigner(p.Final)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jsonPrivate{
		Index:      int(p.Index),
		CertScheme: scheme.String(),
		Auth:       hex.EncodeToString(p.Auth),
		Notary:     notary,
		Final:      final,
		Beacon:     hex.EncodeToString(p.Beacon.Key.Encode()),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Private) UnmarshalJSON(b []byte) error {
	var j jsonPrivate
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	scheme, err := aggsig.ParseSchemeID(j.CertScheme)
	if err != nil {
		return err
	}
	auth, err := hex.DecodeString(j.Auth)
	if err != nil {
		return fmt.Errorf("keys: auth sk: %w", err)
	}
	notary, err := unhexSigner(scheme, j.Index, j.Notary)
	if err != nil {
		return fmt.Errorf("keys: notary sk: %w", err)
	}
	final, err := unhexSigner(scheme, j.Index, j.Final)
	if err != nil {
		return fmt.Errorf("keys: final sk: %w", err)
	}
	beaconRaw, err := hex.DecodeString(j.Beacon)
	if err != nil {
		return fmt.Errorf("keys: beacon sk: %w", err)
	}
	beacon, err := ec.DecodeScalar(beaconRaw)
	if err != nil {
		return fmt.Errorf("keys: beacon sk: %w", err)
	}
	p.Index = types.PartyID(j.Index)
	p.Auth = sig.PrivateKey(auth)
	p.Notary = notary
	p.Final = final
	p.Beacon = thresig.SecretShare{Index: j.Index, Key: beacon}
	return nil
}
