package core

// Unit tests for the resynchronisation layer (resync.go), driving a
// single engine by hand the way the conformance tests do.

import (
	"crypto/rand"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/crypto/keys"
	"icc/internal/engine"
	"icc/internal/types"
)

// buildResyncEngine assembles an engine with a simulated beacon and a
// short resync interval, plus per-party beacons to mint peers' shares.
func buildResyncEngine(t *testing.T, n int, self types.PartyID, interval time.Duration) (*Engine, *keys.Public, []*beacon.Simulated) {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	beacons := make([]*beacon.Simulated, n)
	for i := 0; i < n; i++ {
		beacons[i] = beacon.NewSimulated(n, types.PartyID(i), pub.GenesisSeed)
	}
	e := NewEngine(Config{
		Self:           self,
		Keys:           pub,
		Priv:           privs[self],
		Beacon:         beacons[self],
		DeltaBound:     100 * time.Millisecond,
		ResyncInterval: interval,
	})
	return e, pub, beacons
}

// statusesIn collects the Status messages inside the outputs' bundles.
func statusesIn(outs []engine.Output) []*types.Status {
	var sts []*types.Status
	for _, o := range outs {
		b, ok := o.Msg.(*types.Bundle)
		if !ok {
			continue
		}
		for _, sub := range b.Messages {
			if st, ok := sub.(*types.Status); ok {
				sts = append(sts, st)
			}
		}
	}
	return sts
}

func TestResyncEmitsStatusWhenStalled(t *testing.T) {
	e, _, _ := buildResyncEngine(t, 4, 0, 500*time.Millisecond)
	outs := e.Init(0)
	if len(statusesIn(outs)) != 0 {
		t.Fatal("status emitted at init")
	}
	// Before the deadline: quiet.
	if sts := statusesIn(e.Tick(400 * time.Millisecond)); len(sts) != 0 {
		t.Fatal("status emitted before the stall deadline")
	}
	// The engine never entered round 1 (no beacon shares arrived): the
	// stall fires, once per peer, and repeats next interval with a fresh
	// sequence number.
	sts := statusesIn(e.Tick(600 * time.Millisecond))
	if len(sts) != 3 {
		t.Fatalf("got %d statuses, want one per peer (3)", len(sts))
	}
	if sts[0].Round != 1 || sts[0].Seq != 1 {
		t.Fatalf("unexpected status %+v", sts[0])
	}
	if sts := statusesIn(e.Tick(700 * time.Millisecond)); len(sts) != 0 {
		t.Fatal("status repeated within one interval")
	}
	sts = statusesIn(e.Tick(1200 * time.Millisecond))
	if len(sts) != 3 || sts[0].Seq != 2 {
		t.Fatalf("second stall round wrong: %d statuses", len(sts))
	}
}

func TestResyncStatusRoundZeroNoUnderflow(t *testing.T) {
	// Round is uint64: a party stalled at round 0 must report
	// Finalized=0, not 2^64−1 — responders skip beacon shares for
	// rounds ≤ Finalized, so the wrapped value made them skip every
	// share the stalled party needed.
	e, _, _ := buildResyncEngine(t, 4, 0, 500*time.Millisecond)
	e.Init(0)
	e.round = 0
	sts := statusesIn(e.Tick(600 * time.Millisecond))
	if len(sts) == 0 {
		t.Fatal("no status emitted at round 0")
	}
	for _, st := range sts {
		if st.Finalized != 0 {
			t.Fatalf("Status.Finalized = %d at round 0, want 0 (uint64 underflow)", st.Finalized)
		}
	}
}

func TestResyncStallBundleCarriesResyncMarker(t *testing.T) {
	// Stall re-broadcasts must ride the receivers' verify-pipeline
	// priority lane, which keys off the bundle's Resync flag.
	e, _, _ := buildResyncEngine(t, 4, 0, 500*time.Millisecond)
	e.Init(0)
	outs := e.Tick(600 * time.Millisecond)
	found := false
	for _, o := range outs {
		if b, ok := o.Msg.(*types.Bundle); ok {
			found = true
			if !b.Resync {
				t.Fatal("stall bundle not Resync-marked")
			}
		}
	}
	if !found {
		t.Fatal("no stall bundle emitted")
	}
}

func TestResyncNextWakeCoversStall(t *testing.T) {
	e, _, _ := buildResyncEngine(t, 4, 0, 500*time.Millisecond)
	e.Init(0)
	// Not in a round (beacon pending) — the paper's engine would sleep
	// forever here; the resync deadline must keep a wake armed.
	at, ok := e.NextWake(100 * time.Millisecond)
	if !ok || at != 500*time.Millisecond {
		t.Fatalf("NextWake = %v, %v; want 500ms resync deadline", at, ok)
	}

	disabled, _, _ := buildResyncEngine(t, 4, 0, -1)
	disabled.Init(0)
	if _, ok := disabled.NextWake(100 * time.Millisecond); ok {
		t.Fatal("resync disabled but a wake is armed outside a round")
	}
}

func TestResyncAnswersLaggardWithBackfill(t *testing.T) {
	// Run a 4-party cluster of engines by hand until they commit some
	// rounds, then have a fresh laggard ask party 0 for a backfill.
	const n = 4
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, n)
	for i := 0; i < n; i++ {
		engines[i] = NewEngine(Config{
			Self:       types.PartyID(i),
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     beacon.NewSimulated(n, types.PartyID(i), pub.GenesisSeed),
			DeltaBound: 10 * time.Millisecond,
		})
	}
	// Synchronous full-mesh delivery until everyone is past round 5.
	var pending []engine.Output
	var senders []types.PartyID
	now := time.Duration(0)
	for i, e := range engines {
		for _, o := range e.Init(now) {
			pending = append(pending, o)
			senders = append(senders, types.PartyID(i))
		}
	}
	for step := 0; step < 400; step++ {
		outs, froms := pending, senders
		pending, senders = nil, nil
		for j, o := range outs {
			for i, e := range engines {
				if types.PartyID(i) == froms[j] {
					continue
				}
				if !o.Broadcast && o.To != types.PartyID(i) {
					continue
				}
				for _, out := range e.HandleMessage(froms[j], o.Msg, now) {
					pending = append(pending, out)
					senders = append(senders, types.PartyID(i))
				}
			}
		}
		now += time.Millisecond
		for i, e := range engines {
			for _, o := range e.Tick(now) {
				pending = append(pending, o)
				senders = append(senders, types.PartyID(i))
			}
		}
		if engines[0].CurrentRound() > 6 && len(pending) == 0 {
			break
		}
	}
	if engines[0].CurrentRound() <= 6 {
		t.Fatalf("cluster did not progress: round %d", engines[0].CurrentRound())
	}

	// A laggard stuck at round 1 asks party 0.
	outs := engines[0].HandleMessage(3, &types.Status{Round: 1, Finalized: 0, Seq: 1}, now)
	var backfill *types.Bundle
	for _, o := range outs {
		if o.Broadcast || o.To != 3 {
			continue
		}
		if b, ok := o.Msg.(*types.Bundle); ok {
			backfill = b
		}
	}
	if backfill == nil {
		t.Fatal("no backfill bundle for a laggard two-plus rounds behind")
	}
	var blocks, notars, beacons int
	for _, m := range backfill.Messages {
		switch m.(type) {
		case *types.BlockMsg:
			blocks++
		case *types.Notarization:
			notars++
		case *types.BeaconShare:
			beacons++
		}
	}
	if blocks < 3 || notars < 3 || beacons < 3 {
		t.Fatalf("thin backfill: %d blocks, %d notarizations, %d beacon shares", blocks, notars, beacons)
	}

	// Rate limit: an immediate repeat is ignored.
	outs = engines[0].HandleMessage(3, &types.Status{Round: 1, Finalized: 0, Seq: 2}, now)
	for _, o := range outs {
		if !o.Broadcast && o.To == 3 {
			if _, ok := o.Msg.(*types.Bundle); ok {
				t.Fatal("backfill repeated within the rate-limit window")
			}
		}
	}

	// A peer only one round behind gets nothing (ordinary traffic heals
	// that gap).
	outs = engines[0].HandleMessage(2, &types.Status{Round: engines[0].CurrentRound() - 1, Seq: 1}, now)
	for _, o := range outs {
		if !o.Broadcast && o.To == 2 {
			if _, ok := o.Msg.(*types.Bundle); ok {
				t.Fatal("backfill sent to a peer the protocol heals by itself")
			}
		}
	}
}
