package beacon

import (
	"crypto/rand"
	"testing"

	"icc/internal/crypto/bls"
	"icc/internal/types"
)

// blsCluster builds BLS-backed beacons sharing one threshold instance.
func blsCluster(t testing.TB, n int) []*BLS {
	t.Helper()
	pub, keys, err := bls.DealThreshold(rand.Reader, types.BeaconQuorum(n), n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*BLS, n)
	for i := 0; i < n; i++ {
		out[i] = NewBLS(pub, keys[i], types.PartyID(i), []byte("genesis"))
	}
	return out
}

func TestBLSBeaconAgreesAcrossParties(t *testing.T) {
	if testing.Short() {
		t.Skip("pairings are slow; skipped with -short")
	}
	bs := blsCluster(t, 4)
	for k := types.Round(1); k <= 2; k++ {
		shares := make([]*types.BeaconShare, len(bs))
		for i, b := range bs {
			s, err := b.ShareForRound(k)
			if err != nil {
				t.Fatal(err)
			}
			shares[i] = s
		}
		var ref [32]byte
		for i, b := range bs {
			for _, s := range shares {
				if _, err := b.AddShare(s); err != nil {
					t.Fatal(err)
				}
			}
			d, ok := b.Reveal(k)
			if !ok {
				t.Fatalf("party %d failed to reveal round %d", i, k)
			}
			if i == 0 {
				ref = d
			} else if d != ref {
				t.Fatalf("party %d disagrees on R_%d", i, k)
			}
		}
	}
	// Permutations agree too.
	p0, _ := bs[0].Permutation(1)
	p1, _ := bs[1].Permutation(1)
	for i := range p0 {
		if p0[i] != p1[i] {
			t.Fatal("permutation mismatch")
		}
	}
}

func TestBLSBeaconRejectsGarbageShares(t *testing.T) {
	bs := blsCluster(t, 4)
	if _, err := bs[0].AddShare(&types.BeaconShare{Round: 1, Signer: 1, Share: []byte{1, 2, 3}}); err == nil {
		t.Fatal("malformed share accepted")
	}
	if _, err := bs[0].AddShare(&types.BeaconShare{Round: 0, Signer: 1, Share: make([]byte, 96)}); err == nil {
		t.Fatal("genesis-round share accepted")
	}
	if _, err := bs[0].AddShare(&types.BeaconShare{Round: 1, Signer: 9, Share: make([]byte, 96)}); err == nil {
		t.Fatal("out-of-range signer accepted")
	}
}

func TestBLSBeaconQuorumEnforced(t *testing.T) {
	if testing.Short() {
		t.Skip("pairings are slow; skipped with -short")
	}
	bs := blsCluster(t, 4) // t=1: quorum 2
	s0, err := bs[0].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs[3].AddShare(s0); err != nil {
		t.Fatal(err)
	}
	if _, ok := bs[3].Reveal(1); ok {
		t.Fatal("revealed with 1 of 2 shares")
	}
	// A wrong-key share must not count toward the quorum.
	bad, err := bs[2].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	bad.Signer = 1
	if _, err := bs[3].AddShare(bad); err != nil {
		t.Fatal(err) // structurally fine
	}
	if _, ok := bs[3].Reveal(1); ok {
		t.Fatal("revealed using a forged share")
	}
	s1, err := bs[1].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs[3].AddShare(s1); err != nil {
		t.Fatal(err)
	}
	// Forged share for signer 1 occupies the slot... the real one is
	// deduplicated away, so supply signer 2's honest share instead.
	s2, err := bs[2].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs[3].AddShare(s2); err != nil {
		t.Fatal(err)
	}
	if _, ok := bs[3].Reveal(1); !ok {
		t.Fatal("failed to reveal with two honest shares present")
	}
}
