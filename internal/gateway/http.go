package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"icc/internal/statemachine"
)

// HTTP status mapping for the client API:
//
//	POST /v1/submit  202 accepted (wait=false) / 200 committed (wait=true)
//	                 400 malformed, 409 duplicate, 413 too large,
//	                 429 backlog full, 503 not running, 504 wait timed out
//	GET  /v1/read    200 (found true/false), 504 token not reached in time
//	GET  /v1/wait    200 committed, 404 unknown identity, 504 timed out
//
// Backpressure is visible to clients as 429 + Retry-After — nothing
// queues behind the bound, nothing blocks the replica.

// DefaultWaitTimeout bounds how long /v1/submit?wait=true, /v1/read,
// and /v1/wait block before returning 504.
const DefaultWaitTimeout = 30 * time.Second

// SubmitRequest is the /v1/submit body.
type SubmitRequest struct {
	Client uint64 `json:"client"`
	Seq    uint64 `json:"seq"`
	Op     string `json:"op"` // "set", "delete", "append"
	Key    string `json:"key"`
	Value  string `json:"value,omitempty"`
	// Wait: block until finality and return the commit index (default
	// true — the honest default: an acknowledgement IS finality).
	Wait *bool `json:"wait,omitempty"`
}

// SubmitResponse reports admission (202) or finality (200).
type SubmitResponse struct {
	Client    uint64 `json:"client"`
	Seq       uint64 `json:"seq"`
	Committed bool   `json:"committed"`
	// CommitIndex is the read-your-writes token, present when committed.
	CommitIndex uint64 `json:"commit_index,omitempty"`
	LatencyMS   float64 `json:"latency_ms,omitempty"`
}

// ReadResponse is the /v1/read reply.
type ReadResponse struct {
	Key         string `json:"key"`
	Found       bool   `json:"found"`
	Value       string `json:"value,omitempty"`
	CommitIndex uint64 `json:"commit_index"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler serves the client API over a set of gateways (one per local
// replica). Requests address a replica with ?party=i (default 0) — the
// in-process facade fronts all parties on one listener, a real node
// passes exactly one gateway.
type Handler struct {
	gws  []*Gateway
	wait time.Duration
	mux  *http.ServeMux
}

// NewHandler builds the /v1/* handler. waitTimeout ≤ 0 selects
// DefaultWaitTimeout.
func NewHandler(gws []*Gateway, waitTimeout time.Duration) *Handler {
	if waitTimeout <= 0 {
		waitTimeout = DefaultWaitTimeout
	}
	h := &Handler{gws: gws, wait: waitTimeout, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/submit", h.submit)
	h.mux.HandleFunc("/v1/read", h.read)
	h.mux.HandleFunc("/v1/wait", h.waitFor)
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// gateway resolves the ?party selector.
func (h *Handler) gateway(w http.ResponseWriter, r *http.Request) *Gateway {
	party := 0
	if s := r.URL.Query().Get("party"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 || v >= len(h.gws) {
			writeErr(w, http.StatusBadRequest, "party out of range")
			return nil
		}
		party = v
	}
	g := h.gws[party]
	if g == nil {
		writeErr(w, http.StatusServiceUnavailable, "party not serving")
	}
	return g
}

func (h *Handler) submit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	g := h.gateway(w, r)
	if g == nil {
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, int64(statemachine.MaxPayloadBytes))).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	var op statemachine.Op
	switch req.Op {
	case "set", "":
		op = statemachine.OpSet
	case "delete":
		op = statemachine.OpDelete
	case "append":
		op = statemachine.OpAppend
	default:
		writeErr(w, http.StatusBadRequest, "unknown op "+strconv.Quote(req.Op))
		return
	}
	receipt, err := g.Submit(r.Context(), statemachine.Command{
		Client: req.Client,
		Seq:    req.Seq,
		Op:     op,
		Key:    req.Key,
		Value:  []byte(req.Value),
	})
	if err != nil {
		writeSubmitErr(w, err)
		return
	}
	if req.Wait != nil && !*req.Wait {
		// Admitted, not acknowledged: 202 says "queued", nothing more.
		// /v1/wait turns the identity into a finality answer later.
		writeJSON(w, http.StatusAccepted, SubmitResponse{Client: receipt.Client, Seq: receipt.Seq})
		return
	}
	h.respondAtFinality(w, r, receipt)
}

// respondAtFinality blocks on a receipt and writes the finality answer.
func (h *Handler) respondAtFinality(w http.ResponseWriter, r *http.Request, receipt *Receipt) {
	ctx, cancel := contextWithin(r, h.wait)
	defer cancel()
	ack, err := receipt.Wait(ctx)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, SubmitResponse{
			Client:      receipt.Client,
			Seq:         receipt.Seq,
			Committed:   true,
			CommitIndex: ack.CommitIndex,
			LatencyMS:   ack.Latency.Seconds() * 1000,
		})
	case errors.Is(err, ErrNotRunning):
		writeErr(w, http.StatusServiceUnavailable, "gateway stopped before finality")
	default:
		writeErr(w, http.StatusGatewayTimeout, "not finalized within wait budget; retry /v1/wait")
	}
}

func (h *Handler) read(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	g := h.gateway(w, r)
	if g == nil {
		return
	}
	q := r.URL.Query()
	key := q.Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing key")
		return
	}
	var token uint64
	if s := q.Get("token"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad token")
			return
		}
		token = v
	}
	ctx, cancel := contextWithin(r, h.wait)
	defer cancel()
	res, err := g.Read(ctx, key, token)
	switch {
	case errors.Is(err, ErrNotRunning):
		writeErr(w, http.StatusServiceUnavailable, ErrNotRunning.Error())
		return
	case err != nil:
		writeErr(w, http.StatusGatewayTimeout, "commit index did not reach token in time")
		return
	}
	writeJSON(w, http.StatusOK, ReadResponse{
		Key:         key,
		Found:       res.Found,
		Value:       string(res.Value),
		CommitIndex: res.Index,
	})
}

func (h *Handler) waitFor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	g := h.gateway(w, r)
	if g == nil {
		return
	}
	q := r.URL.Query()
	client, err1 := strconv.ParseUint(q.Get("client"), 10, 64)
	seq, err2 := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, "need numeric client and seq")
		return
	}
	receipt, index, ok := g.Lookup(client, seq)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown (client, seq) — never submitted here, or evicted after finality")
		return
	}
	if receipt == nil {
		writeJSON(w, http.StatusOK, SubmitResponse{Client: client, Seq: seq, Committed: true, CommitIndex: index})
		return
	}
	h.respondAtFinality(w, r, receipt)
}

// contextWithin derives the wait budget from the request context.
func contextWithin(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), d)
}

func writeSubmitErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBacklogFull):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, ErrBacklogFull.Error())
	case errors.Is(err, ErrDuplicate):
		writeErr(w, http.StatusConflict, ErrDuplicate.Error())
	case errors.Is(err, ErrTooLarge):
		writeErr(w, http.StatusRequestEntityTooLarge, ErrTooLarge.Error())
	case errors.Is(err, ErrNotRunning):
		writeErr(w, http.StatusServiceUnavailable, ErrNotRunning.Error())
	default:
		writeErr(w, http.StatusBadRequest, err.Error())
	}
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
