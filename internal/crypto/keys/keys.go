// Package keys generates and serialises the key material of an ICC
// cluster. Paper §3.1: "Each party will be initialized with some secret
// keys, as well as with the public keys for itself and all other
// parties... set up by a trusted party or a secure distributed key
// generation protocol." This package is that trusted dealer.
//
// Per party the material comprises (paper §3.2):
//   - an S_auth signing key (ordinary signatures, ed25519),
//   - an S_notary key for the (t, n−t, n) notarization certificate,
//   - an S_final key for the (t, n−t, n) finalization certificate,
//   - an S_beacon share of the (t, t+1, n) unique threshold signature.
//
// The certificate instances are dealt under a pluggable
// aggsig.SchemeID — ed25519 multisig by default, BLS12-381 aggregate
// signatures optionally (DESIGN.md §15) — and every layer downstream
// handles them through the aggsig.Scheme interface.
package keys

import (
	"fmt"
	"io"

	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/multisig"
	"icc/internal/crypto/sig"
	"icc/internal/crypto/thresig"
	"icc/internal/types"
)

// Public is the key material every party is provisioned with.
type Public struct {
	N      int
	T      int // tolerated faults, t < n/3
	Auth   []sig.PublicKey
	Notary aggsig.Scheme
	Final  aggsig.Scheme
	Beacon *thresig.PublicInfo
	// GenesisSeed is the fixed initial beacon value R_0, known to all
	// parties (paper §2.3).
	GenesisSeed []byte
}

// CertScheme reports the aggregate-signature scheme the cluster's
// certificates use.
func (p *Public) CertScheme() aggsig.SchemeID { return p.Notary.ID() }

// Private is one party's secret key material.
type Private struct {
	Index  types.PartyID
	Auth   sig.PrivateKey
	Notary aggsig.Signer
	Final  aggsig.Signer
	Beacon thresig.SecretShare
}

// Deal generates the full key material for an n-party cluster under the
// default (multisig) certificate scheme.
func Deal(rng io.Reader, n int) (*Public, []Private, error) {
	return DealScheme(rng, n, aggsig.SchemeMultisig)
}

// DealScheme generates the full key material for an n-party cluster
// with the given certificate scheme for S_notary and S_final.
func DealScheme(rng io.Reader, n int, scheme aggsig.SchemeID) (*Public, []Private, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("keys: invalid party count %d", n)
	}
	t := types.MaxFaults(n)
	pub := &Public{
		N:           n,
		T:           t,
		Auth:        make([]sig.PublicKey, n),
		GenesisSeed: []byte("icc genesis beacon seed"),
	}
	privs := make([]Private, n)
	for i := 0; i < n; i++ {
		privs[i].Index = types.PartyID(i)
		var err error
		if pub.Auth[i], privs[i].Auth, err = sig.GenerateKey(rng); err != nil {
			return nil, nil, fmt.Errorf("keys: auth key %d: %w", i, err)
		}
	}
	if err := dealCertScheme(rng, n, scheme, pub, privs); err != nil {
		return nil, nil, err
	}
	beaconPub, beaconShares, err := thresig.Deal(rng, types.BeaconQuorum(n), n)
	if err != nil {
		return nil, nil, fmt.Errorf("keys: beacon scheme: %w", err)
	}
	pub.Beacon = beaconPub
	for i := 0; i < n; i++ {
		privs[i].Beacon = beaconShares[i]
	}
	return pub, privs, nil
}

// dealCertScheme fills the S_notary and S_final instances.
func dealCertScheme(rng io.Reader, n int, scheme aggsig.SchemeID, pub *Public, privs []Private) error {
	quorum := types.NotaryQuorum(n)
	switch scheme {
	case aggsig.SchemeMultisig:
		notary := &multisig.PublicInfo{N: n, Threshold: quorum, Keys: make([]sig.PublicKey, n)}
		final := &multisig.PublicInfo{N: n, Threshold: quorum, Keys: make([]sig.PublicKey, n)}
		for i := 0; i < n; i++ {
			var notarySk, finalSk sig.PrivateKey
			var err error
			if notary.Keys[i], notarySk, err = sig.GenerateKey(rng); err != nil {
				return fmt.Errorf("keys: notary key %d: %w", i, err)
			}
			privs[i].Notary = multisig.SecretKey{Index: i, Key: notarySk}
			if final.Keys[i], finalSk, err = sig.GenerateKey(rng); err != nil {
				return fmt.Errorf("keys: final key %d: %w", i, err)
			}
			privs[i].Final = multisig.SecretKey{Index: i, Key: finalSk}
		}
		pub.Notary, pub.Final = notary, final
	case aggsig.SchemeBLS:
		notary, notarySks, err := aggsig.DealBLS(rng, quorum, n)
		if err != nil {
			return fmt.Errorf("keys: notary scheme: %w", err)
		}
		final, finalSks, err := aggsig.DealBLS(rng, quorum, n)
		if err != nil {
			return fmt.Errorf("keys: final scheme: %w", err)
		}
		for i := 0; i < n; i++ {
			privs[i].Notary = notarySks[i]
			privs[i].Final = finalSks[i]
		}
		pub.Notary, pub.Final = notary, final
	default:
		return fmt.Errorf("keys: unknown certificate scheme %s", scheme)
	}
	return nil
}
