package metrics

import (
	"strings"
	"testing"

	"icc/internal/obs"
)

func TestTransportStatsCounts(t *testing.T) {
	s := NewTransportStats()
	s.QueueDrop(1)
	s.QueueDrop(1)
	s.QueueDrop(2)
	s.Redial(1)
	s.WriteError(2)
	s.ObserveQueueDepth(1, 5)
	s.ObserveQueueDepth(1, 3) // lower than high-water: ignored
	s.InboxOverflow()
	s.SendError()
	s.SendError()

	snap := s.Detail()
	if snap.TotalQueueDropped != 3 || snap.QueueDropped[1] != 2 || snap.QueueDropped[2] != 1 {
		t.Fatalf("queue drops: %+v", snap.QueueDropped)
	}
	if snap.TotalRedials != 1 || snap.TotalWriteErrors != 1 {
		t.Fatalf("redials=%d write-errors=%d", snap.TotalRedials, snap.TotalWriteErrors)
	}
	if snap.MaxQueueDepth[1] != 5 {
		t.Fatalf("max queue depth %d, want 5", snap.MaxQueueDepth[1])
	}
	if snap.InboxOverflow != 1 || snap.SendErrors != 2 {
		t.Fatalf("overflow=%d send-errors=%d", snap.InboxOverflow, snap.SendErrors)
	}
	line := snap.String()
	for _, want := range []string{"queue-dropped=3", "redials=1", "write-errors=1", "max-queue=5", "inbox-overflow=1", "send-errors=2"} {
		if !strings.Contains(line, want) {
			t.Fatalf("health line %q missing %q", line, want)
		}
	}
}

func TestTransportStatsCommonSnapshot(t *testing.T) {
	s := NewTransportStats()
	s.QueueDrop(7)
	s.QueueDrop(7)
	s.Redial(1)
	s.ObserveQueueDepth(7, 9)
	s.SendError()

	snap := s.Snapshot()
	for key, want := range map[string]float64{
		"queue_dropped":             2,
		`queue_dropped{peer="7"}`:   2,
		"redials":                   1,
		"send_errors":               1,
		"max_queue_depth":           9,
		`max_queue_depth{peer="7"}`: 9,
		"write_errors":              0,
		"inbox_overflow":            0,
	} {
		if got := snap.Get(key); got != want {
			t.Fatalf("snapshot[%s] = %v, want %v (full: %s)", key, got, want, snap)
		}
	}
	if !strings.Contains(snap.String(), "queue_dropped=2") {
		t.Fatalf("snapshot line missing total: %s", snap)
	}
}

func TestTransportStatsOnSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(8)
	s := NewTransportStatsOn(reg, tr)
	s.QueueDrop(3)
	s.WriteError(3)

	regSnap := reg.Snapshot()
	if regSnap.Get(`icc_transport_queue_dropped_total{peer="3"}`) != 1 {
		t.Fatalf("registry missing transport counter: %s", regSnap)
	}
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("expected 2 fault trace events, got %d", len(events))
	}
	for _, e := range events {
		if e.Kind != obs.KindTransportFault {
			t.Fatalf("unexpected event kind %q", e.Kind)
		}
	}
}

func TestTransportStatsNilIsNoOp(t *testing.T) {
	var s *TransportStats
	// All recording methods and both snapshot forms must be safe on nil.
	s.QueueDrop(0)
	s.Redial(0)
	s.WriteError(0)
	s.ObserveQueueDepth(0, 10)
	s.InboxOverflow()
	s.SendError()
	if snap := s.Detail(); snap.TotalQueueDropped != 0 || snap.SendErrors != 0 {
		t.Fatalf("nil stats produced counts: %+v", snap)
	}
	if snap := s.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil stats produced snapshot: %v", snap)
	}
}
