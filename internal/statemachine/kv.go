package statemachine

import (
	"fmt"
	"sort"
	"sync"

	"icc/internal/crypto/hash"
	"icc/internal/types"
)

// KV is a deterministic replicated key-value store. Every replica applies
// the same committed payloads in the same order and reaches the same
// state; StateHash gives a comparable fingerprint.
type KV struct {
	mu      sync.Mutex
	data    map[string][]byte
	applied map[uint64]uint64 // client → highest applied seq
	ops     uint64            // total applied operations
}

// NewKV creates an empty store.
func NewKV() *KV {
	return &KV{
		data:    make(map[string][]byte),
		applied: make(map[uint64]uint64),
	}
}

// Apply executes a committed payload. Commands with (client, seq) at or
// below the client's applied watermark are skipped — exactly-once
// semantics across duplicate proposals.
func (kv *KV) Apply(payload []byte) error {
	cmds, err := DecodePayload(payload)
	if err != nil {
		return err
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	for _, c := range cmds {
		if c.Seq <= kv.applied[c.Client] {
			continue
		}
		kv.applied[c.Client] = c.Seq
		kv.ops++
		switch c.Op {
		case OpSet:
			kv.data[c.Key] = append([]byte(nil), c.Value...)
		case OpDelete:
			delete(kv.data, c.Key)
		case OpAppend:
			kv.data[c.Key] = append(kv.data[c.Key], c.Value...)
		}
	}
	return nil
}

// Get returns the value for a key.
func (kv *KV) Get(key string) ([]byte, bool) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	v, ok := kv.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len returns the number of keys.
func (kv *KV) Len() int {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return len(kv.data)
}

// AppliedSeq returns the highest Seq applied for a client (0 when the
// client has never committed a command here) — the gateway uses it to
// distinguish a resubmission of an already-finalized command from a
// fresh one.
func (kv *KV) AppliedSeq(client uint64) uint64 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.applied[client]
}

// AppliedOps returns the number of operations applied.
func (kv *KV) AppliedOps() uint64 {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.ops
}

// StateHash returns a deterministic fingerprint of the current state.
func (kv *KV) StateHash() hash.Digest {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	chunks := make([][]byte, 0, 2*len(keys))
	for _, k := range keys {
		chunks = append(chunks, []byte(k), kv.data[k])
	}
	return hash.Sum(hash.DomainState, chunks...)
}

// Snapshot serialises the full replica state deterministically — the
// checkpointing building block the paper notes every practical
// replicated state machine needs (§3.1, referencing PBFT's checkpoint
// mechanism): a node that restores a snapshot and replays blocks after
// the checkpoint reaches the same state as one that executed everything,
// and pools can be pruned up to the checkpoint round.
func (kv *KV) Snapshot() []byte {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	clients := make([]uint64, 0, len(kv.applied))
	for c := range kv.applied {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })

	e := types.NewEncoder(64 * (len(keys) + len(clients)))
	e.U64(kv.ops)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.VarBytes([]byte(k))
		e.VarBytes(kv.data[k])
	}
	e.U32(uint32(len(clients)))
	for _, c := range clients {
		e.U64(c)
		e.U64(kv.applied[c])
	}
	return e.Bytes()
}

// Restore replaces this replica's state in place with a snapshot — the
// checkpoint-install path, where the engine holds a live *KV whose
// identity (captured in closures and serving reads) must not change.
// On a decode error the existing state is left untouched.
func (kv *KV) Restore(snapshot []byte) error {
	next, err := RestoreKV(snapshot)
	if err != nil {
		return err
	}
	kv.mu.Lock()
	kv.data = next.data
	kv.applied = next.applied
	kv.ops = next.ops
	kv.mu.Unlock()
	return nil
}

// RestoreKV reconstructs a replica from a snapshot.
func RestoreKV(snapshot []byte) (*KV, error) {
	d := types.NewDecoder(snapshot)
	kv := NewKV()
	kv.ops = d.U64()
	nKeys := int(d.U32())
	if d.Err() != nil {
		return nil, fmt.Errorf("statemachine: corrupt snapshot: %w", d.Err())
	}
	for i := 0; i < nKeys; i++ {
		k := d.VarBytes()
		v := d.VarBytes()
		if d.Err() != nil {
			return nil, fmt.Errorf("statemachine: corrupt snapshot: %w", d.Err())
		}
		kv.data[string(k)] = v
	}
	nClients := int(d.U32())
	if d.Err() != nil {
		return nil, fmt.Errorf("statemachine: corrupt snapshot: %w", d.Err())
	}
	for i := 0; i < nClients; i++ {
		c := d.U64()
		s := d.U64()
		kv.applied[c] = s
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("statemachine: corrupt snapshot: %w", err)
	}
	return kv, nil
}
