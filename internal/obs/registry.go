package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry holds metric families. Registration is idempotent: asking for
// an existing name returns the existing instrument, so independent
// components (one observer per party, a shared transport stats sink) can
// safely register the same families on one registry and aggregate into
// them. A nil *Registry is a valid no-op sink: every constructor returns
// a nil instrument whose methods do nothing.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one named metric family with zero or more labeled children.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram upper bounds (exclusive of +Inf)

	mu       sync.Mutex
	children map[string]interface{} // label-value key → *Counter/*Gauge/*Histogram
}

// childKey encodes label values; the separator cannot occur in UTF-8.
const childKeySep = "\xff"

func (f *family) child(values []string, mk func() interface{}) interface{} {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: family %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := ""
	for i, v := range values {
		if i > 0 {
			key += childKeySep
		}
		key += v
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	f.children[key] = c
	return c
}

// sortedChildren returns (labelValues, child) pairs in stable key order.
func (f *family) sortedChildren() ([][]string, []interface{}) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	values := make([][]string, len(keys))
	children := make([]interface{}, len(keys))
	for i, k := range keys {
		if len(f.labels) == 0 {
			values[i] = nil
		} else {
			values[i] = splitKey(k, len(f.labels))
		}
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	return values, children
}

func splitKey(key string, n int) []string {
	parts := make([]string, 0, n)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == 0xff {
			parts = append(parts, key[start:i])
			start = i + 1
		}
	}
	parts = append(parts, key[start:])
	return parts
}

// getFamily returns (creating if needed) a family, enforcing that a
// name is never re-registered with a different shape.
func (r *Registry) getFamily(name, help string, k kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %s re-registered as %s(%d labels), was %s(%d labels)",
				name, k, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]interface{}),
	}
	r.fams[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindCounter, nil, nil)
	return f.child(nil, func() interface{} { return &Counter{} }).(*Counter)
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.getFamily(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, kindGauge, nil, nil)
	return f.child(nil, func() interface{} { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.getFamily(name, help, kindGauge, labels, nil)}
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// bucket upper bounds (nil selects DefBuckets). Bounds must be sorted
// ascending; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.getFamily(name, help, kindHistogram, nil, buckets)
	return f.child(nil, func() interface{} { return newHistogram(f.buckets) }).(*Histogram)
}

// Snapshot flattens every family into the common map view: scalars as
// name or name{label="v"}, histograms as name_count and name_sum.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, f := range fams {
		values, children := f.sortedChildren()
		for i, c := range children {
			switch m := c.(type) {
			case *Counter:
				snap[labelKey(f.name, f.labels, values[i])] = float64(m.Value())
			case *Gauge:
				snap[labelKey(f.name, f.labels, values[i])] = m.Value()
			case *Histogram:
				count, sum, _ := m.snapshot()
				snap[labelKey(f.name+"_count", f.labels, values[i])] = float64(count)
				snap[labelKey(f.name+"_sum", f.labels, values[i])] = sum
			}
		}
	}
	return snap
}

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	fam *family
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.child(values, func() interface{} { return &Counter{} }).(*Counter)
}

// Each visits every child with its label values.
func (v *CounterVec) Each(f func(labelValues []string, value int64)) {
	if v == nil {
		return
	}
	values, children := v.fam.sortedChildren()
	for i, c := range children {
		f(values[i], c.(*Counter).Value())
	}
}

// Gauge is an instantaneous value. Stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Safe on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetMax raises the gauge to v if v exceeds the current value —
// high-water-mark semantics (queue depths, peak rounds).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct {
	fam *family
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.child(values, func() interface{} { return &Gauge{} }).(*Gauge)
}

// Each visits every child with its label values.
func (v *GaugeVec) Each(f func(labelValues []string, value float64)) {
	if v == nil {
		return
	}
	values, children := v.fam.sortedChildren()
	for i, c := range children {
		f(values[i], c.(*Gauge).Value())
	}
}

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// in-process rounds through multi-second WAN stalls.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
type Histogram struct {
	upper   []float64
	counts  []atomic.Uint64 // per-bucket (non-cumulative); len(upper)+1 with +Inf last
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// snapshot returns (count, sum, cumulative bucket counts aligned with
// upper followed by +Inf).
func (h *Histogram) snapshot() (uint64, float64, []uint64) {
	if h == nil {
		return 0, 0, nil
	}
	cum := make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return h.count.Load(), math.Float64frombits(h.sumBits.Load()), cum
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}
