package rbc

import (
	"bytes"
	"testing"
	"time"

	"icc/internal/engine"
	"icc/internal/erasure"
	"icc/internal/merkle"
	"icc/internal/types"
)

// sink records deliveries and can emit a prepared output on Init.
type sink struct {
	id       types.PartyID
	initOut  []engine.Output
	received []types.Message
}

func (s *sink) ID() types.PartyID                  { return s.id }
func (s *sink) Init(time.Duration) []engine.Output { return s.initOut }
func (s *sink) HandleMessage(_ types.PartyID, m types.Message, _ time.Duration) []engine.Output {
	s.received = append(s.received, m)
	return nil
}
func (s *sink) Tick(time.Duration) []engine.Output           { return nil }
func (s *sink) NextWake(time.Duration) (time.Duration, bool) { return 0, false }
func (s *sink) CurrentRound() types.Round                    { return 1 }

func proposalBundle(self types.PartyID, payload []byte) engine.Output {
	b := &types.Block{Round: 1, Proposer: self, Payload: payload}
	auth := &types.Authenticator{Round: 1, Proposer: self, BlockHash: b.Hash(), Sig: []byte{1}}
	return engine.Broadcast(&types.Bundle{Messages: []types.Message{
		&types.BlockMsg{Block: b}, auth,
	}})
}

func TestDisperseProducesPerPartyFragments(t *testing.T) {
	const n = 7
	inner := &sink{id: 0, initOut: []engine.Output{proposalBundle(0, []byte("block payload"))}}
	r := Wrap(Config{Self: 0, N: n}, inner)
	outs := r.Init(0)

	fragments := 0
	seenIdx := map[uint16]bool{}
	var rest int
	for _, o := range outs {
		switch m := o.Msg.(type) {
		case *types.Fragment:
			fragments++
			if o.Broadcast {
				t.Fatal("initial fragments must be unicast")
			}
			if int(m.Index) != int(o.To) {
				t.Fatalf("fragment %d sent to party %d", m.Index, o.To)
			}
			seenIdx[m.Index] = true
			if m.Echo {
				t.Fatal("initial send marked as echo")
			}
		case *types.Bundle:
			rest++
			for _, sub := range m.Messages {
				if _, isBlock := sub.(*types.BlockMsg); isBlock {
					t.Fatal("full block still broadcast alongside fragments")
				}
			}
		}
	}
	if fragments != n-1 {
		t.Fatalf("%d fragments, want %d", fragments, n-1)
	}
	if rest != 1 {
		t.Fatalf("%d non-fragment bundles, want 1 (authenticator)", rest)
	}
}

// buildFragments creates the n fragments a proposer would send.
func buildFragments(t *testing.T, n int, proposer types.PartyID, payload []byte) []*types.Fragment {
	t.Helper()
	b := &types.Block{Round: 1, Proposer: proposer, Payload: payload}
	enc := types.Marshal(&types.BlockMsg{Block: b})
	k := n - 2*types.MaxFaults(n)
	code, err := erasure.NewCode(k, n)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := code.Encode(enc)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := merkle.New(shards)
	if err != nil {
		t.Fatal(err)
	}
	frags := make([]*types.Fragment, n)
	for i := 0; i < n; i++ {
		proof, err := tree.Proof(i)
		if err != nil {
			t.Fatal(err)
		}
		frags[i] = &types.Fragment{
			Round: 1, Proposer: proposer, Root: tree.Root(),
			BlockLen: uint32(len(enc)), DataShards: uint16(k),
			Index: uint16(i), Sender: proposer, Data: shards[i], Proof: proof,
		}
	}
	return frags
}

func TestReceiverEchoesOwnFragmentAndReconstructs(t *testing.T) {
	const n = 7 // t=2, k=3
	inner := &sink{id: 3}
	r := Wrap(Config{Self: 3, N: n}, inner)
	frags := buildFragments(t, n, 0, []byte("the block"))

	// Receiving our own fragment triggers an echo broadcast.
	outs := r.HandleMessage(0, frags[3], 0)
	echoes := 0
	for _, o := range outs {
		f, ok := o.Msg.(*types.Fragment)
		if !ok {
			continue
		}
		if !o.Broadcast || !f.Echo || f.Index != 3 {
			t.Fatalf("bad echo: %+v", f)
		}
		echoes++
	}
	if echoes != 1 {
		t.Fatalf("%d echoes, want 1", echoes)
	}
	if len(inner.received) != 0 {
		t.Fatal("delivered before k fragments held")
	}
	// Two more fragments (echoed by other parties) reach the threshold.
	e1 := *frags[1]
	e1.Echo, e1.Sender = true, 1
	r.HandleMessage(1, &e1, 0)
	e5 := *frags[5]
	e5.Echo, e5.Sender = true, 5
	r.HandleMessage(5, &e5, 0)
	if len(inner.received) != 1 {
		t.Fatalf("inner received %d messages, want reconstructed block", len(inner.received))
	}
	bm, ok := inner.received[0].(*types.BlockMsg)
	if !ok || !bytes.Equal(bm.Block.Payload, []byte("the block")) {
		t.Fatal("reconstructed block wrong")
	}
	// A late duplicate fragment is ignored after delivery.
	if outs := r.HandleMessage(2, frags[2], 0); len(outs) != 0 {
		t.Fatal("post-delivery fragment produced output")
	}
}

func TestReconstructionWithoutOwnFragment(t *testing.T) {
	// The proposer never sends party 3 its fragment; k echoes from other
	// parties still reconstruct, and party 3 then echoes its own
	// (recomputed) fragment for totality.
	const n = 7
	inner := &sink{id: 3}
	r := Wrap(Config{Self: 3, N: n}, inner)
	frags := buildFragments(t, n, 0, []byte("withheld"))
	var echoed bool
	for _, idx := range []int{0, 1, 2} {
		e := *frags[idx]
		e.Echo, e.Sender = true, types.PartyID(idx)
		outs := r.HandleMessage(types.PartyID(idx), &e, 0)
		for _, o := range outs {
			if f, ok := o.Msg.(*types.Fragment); ok && f.Index == 3 && f.Echo {
				echoed = true
			}
		}
	}
	if len(inner.received) != 1 {
		t.Fatal("no reconstruction from k foreign echoes")
	}
	if !echoed {
		t.Fatal("party did not echo its recomputed fragment")
	}
}

func TestRejectsBadProof(t *testing.T) {
	const n = 7
	inner := &sink{id: 2}
	r := Wrap(Config{Self: 2, N: n}, inner)
	frags := buildFragments(t, n, 0, []byte("x"))
	bad := *frags[2]
	bad.Data = append([]byte{0xff}, bad.Data...)
	if outs := r.HandleMessage(0, &bad, 0); len(outs) != 0 {
		t.Fatal("tampered fragment produced output")
	}
	mismatched := *frags[2]
	mismatched.Index = 4 // proof is for index 2
	if outs := r.HandleMessage(0, &mismatched, 0); len(outs) != 0 {
		t.Fatal("index-swapped fragment accepted")
	}
}

func TestRejectsInconsistentEncoding(t *testing.T) {
	// A corrupt proposer commits to shards of one block but swaps in a
	// shard from another block with a valid proof — i.e. builds the tree
	// over inconsistent shards. Receivers must detect the re-encoding
	// mismatch and deliver nothing.
	const n = 7
	k := n - 2*types.MaxFaults(n)
	b := &types.Block{Round: 1, Proposer: 0, Payload: []byte("real")}
	enc := types.Marshal(&types.BlockMsg{Block: b})
	code, _ := erasure.NewCode(k, n)
	shards, _ := code.Encode(enc)
	// Corrupt one of the shards BEFORE building the tree: proofs verify,
	// encoding is inconsistent.
	shards[1][0] ^= 0xff
	tree, _ := merkle.New(shards)
	inner := &sink{id: 3}
	r := Wrap(Config{Self: 3, N: n}, inner)
	for _, idx := range []int{0, 1, 2} {
		proof, _ := tree.Proof(idx)
		f := &types.Fragment{
			Round: 1, Proposer: 0, Root: tree.Root(),
			BlockLen: uint32(len(enc)), DataShards: uint16(k),
			Index: uint16(idx), Sender: types.PartyID(idx), Echo: true,
			Data: shards[idx], Proof: proof,
		}
		r.HandleMessage(types.PartyID(idx), f, 0)
	}
	if len(inner.received) != 0 {
		t.Fatal("inconsistently encoded block was delivered")
	}
}

func TestNonBlockTrafficPassesThrough(t *testing.T) {
	inner := &sink{id: 1}
	r := Wrap(Config{Self: 1, N: 7}, inner)
	share := &types.BeaconShare{Round: 1, Signer: 0, Share: []byte{1}}
	r.HandleMessage(0, share, 0)
	if len(inner.received) != 1 {
		t.Fatal("non-fragment message not delivered to inner engine")
	}
}

func TestSessionCapEviction(t *testing.T) {
	const n = 7
	inner := &sink{id: 3}
	r := Wrap(Config{Self: 3, N: n, MaxSessions: 2}, inner)
	// Spam three sessions; the first should be evicted.
	for i := 0; i < 3; i++ {
		frags := buildFragments(t, n, 0, []byte{byte(i)})
		r.HandleMessage(0, frags[3], 0)
	}
	if len(r.sessions) != 2 {
		t.Fatalf("%d sessions tracked, cap is 2", len(r.sessions))
	}
}
