package statemachine

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"icc/internal/types"
)

func TestQueueTrySubmitTypedErrors(t *testing.T) {
	q := NewQueue()
	q.MaxPending = 2

	if err := q.TrySubmit(Command{Client: 1, Seq: 1, Op: OpSet, Key: "k"}); err != nil {
		t.Fatalf("fresh submit: %v", err)
	}
	if err := q.TrySubmit(Command{Client: 1, Seq: 1, Op: OpSet, Key: "k"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate = %v, want ErrDuplicate", err)
	}
	// ErrTooLarge wins over ErrBacklogFull: the command could never be
	// proposed no matter how empty the queue is.
	big := Command{Client: 2, Seq: 1, Op: OpSet, Key: "k", Value: make([]byte, MaxPayloadBytes)}
	if err := q.TrySubmit(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized = %v, want ErrTooLarge", err)
	}
	if err := q.TrySubmit(Command{Client: 3, Seq: 1, Op: OpSet, Key: "k"}); err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if err := q.TrySubmit(Command{Client: 4, Seq: 1, Op: OpSet, Key: "k"}); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("over MaxPending = %v, want ErrBacklogFull", err)
	}
	// Draining reopens admission.
	q.MarkCommitted(EncodePayload([]Command{{Client: 1, Seq: 1, Op: OpSet, Key: "k"}}))
	if err := q.TrySubmit(Command{Client: 4, Seq: 1, Op: OpSet, Key: "k"}); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestQueueConcurrentSubmitAndMarkCommitted races admission against the
// commit path the OnCommit hook drives (GetPayload → MarkCommitted),
// the exact interleaving a live replica runs. Run with -race.
func TestQueueConcurrentSubmitAndMarkCommitted(t *testing.T) {
	q := NewQueue()
	const producers, perProducer = 4, 200

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); i <= perProducer; i++ {
				for {
					err := q.TrySubmit(Command{Client: uint64(p + 1), Seq: i, Op: OpSet, Key: "k"})
					if err == nil || errors.Is(err, ErrDuplicate) {
						break
					}
					if !errors.Is(err, ErrBacklogFull) {
						t.Errorf("producer %d: %v", p, err)
						return
					}
				}
			}
		}()
	}
	// Committer drains concurrently.
	stop := make(chan struct{})
	var committerWg sync.WaitGroup
	committed := make(map[ident]struct{})
	committerWg.Add(1)
	go func() {
		defer committerWg.Done()
		for {
			payload := q.GetPayload(0, nil, nil)
			q.MarkCommitted(payload)
			if cmds, err := DecodePayload(payload); err == nil {
				for _, c := range cmds {
					id := ident{c.Client, c.Seq}
					if _, dup := committed[id]; dup {
						t.Errorf("(%d,%d) committed twice", c.Client, c.Seq)
					}
					committed[id] = struct{}{}
				}
			}
			select {
			case <-stop:
				if q.Len() == 0 {
					return
				}
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	committerWg.Wait()
	if len(committed) != producers*perProducer {
		t.Fatalf("committed %d identities, want %d", len(committed), producers*perProducer)
	}
}

// TestPerClientSeqOrderPreserved: GetPayload stops (never skips) at the
// byte bound, so a client's seqs always commit in order even when a
// batch boundary splits them.
func TestPerClientSeqOrderPreserved(t *testing.T) {
	q := NewQueue()
	// Size the bound so roughly half the commands fit per batch.
	cmd := func(seq uint64) Command {
		return Command{Client: 9, Seq: seq, Op: OpAppend, Key: "log", Value: []byte(fmt.Sprintf("%03d.", seq))}
	}
	const total = 20
	q.MaxBytes = payloadHeaderSize + 10*cmd(1).WireSize() + 1
	for i := uint64(1); i <= total; i++ {
		if err := q.TrySubmit(cmd(i)); err != nil {
			t.Fatal(err)
		}
	}
	kv := NewKV()
	var want bytes.Buffer
	next := uint64(1)
	for batches := 0; q.Len() > 0; batches++ {
		if batches > total {
			t.Fatal("queue never drained")
		}
		payload := q.GetPayload(0, nil, nil)
		if len(payload) > q.MaxBytes {
			t.Fatalf("payload %d bytes exceeds MaxBytes %d", len(payload), q.MaxBytes)
		}
		cmds, err := DecodePayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cmds {
			if c.Seq != next {
				t.Fatalf("client 9 committed seq %d before %d — order broken at a batch boundary", c.Seq, next)
			}
			want.WriteString(fmt.Sprintf("%03d.", next))
			next++
		}
		if err := kv.Apply(payload); err != nil {
			t.Fatal(err)
		}
		q.MarkCommitted(payload)
	}
	if v, _ := kv.Get("log"); !bytes.Equal(v, want.Bytes()) {
		t.Fatalf("applied log %q, want %q", v, want.Bytes())
	}
}

// TestChainDedupAfterRequeue: a command that committed, was freed by
// MarkCommitted, and got resubmitted must still be suppressed by the
// chain-context walk — otherwise a client retry would double-apply.
func TestChainDedupAfterRequeue(t *testing.T) {
	q := NewQueue()
	c := Command{Client: 5, Seq: 3, Op: OpSet, Key: "k", Value: []byte("v")}
	if err := q.TrySubmit(c); err != nil {
		t.Fatal(err)
	}
	payload := q.GetPayload(0, nil, nil)
	q.MarkCommitted(payload)
	// Retry after commit: admission accepts (the queue forgot the
	// identity) — proposal must not.
	if err := q.TrySubmit(c); err != nil {
		t.Fatalf("resubmit after commit: %v", err)
	}
	parent := &types.Block{Round: 1, Proposer: 0, Payload: payload}
	if p := q.GetPayload(2, parent, nil); p != nil {
		t.Fatal("committed command re-proposed on top of the chain that contains it")
	}
}

func TestEncodePayloadExactSizing(t *testing.T) {
	cases := [][]Command{
		nil,
		{{Client: 1, Seq: 1, Op: OpSet, Key: "", Value: nil}},
		{{Client: 1, Seq: 1, Op: OpSet, Key: "k", Value: []byte("v")},
			{Client: 2, Seq: 7, Op: OpDelete, Key: "longer-key-here"},
			{Client: 3, Seq: 9, Op: OpAppend, Key: "x", Value: make([]byte, 1000)}},
	}
	for i, cmds := range cases {
		if len(cmds) == 0 {
			continue
		}
		enc := EncodePayload(cmds)
		if got, want := len(enc), EncodedPayloadSize(cmds); got != want {
			t.Fatalf("case %d: encoded %d bytes, EncodedPayloadSize says %d", i, got, want)
		}
		sum := payloadHeaderSize
		for _, c := range cmds {
			sum += c.WireSize()
		}
		if len(enc) != sum {
			t.Fatalf("case %d: encoded %d bytes, WireSize sum says %d", i, len(enc), sum)
		}
	}
}

func TestDecodeRejectsOversizedPayload(t *testing.T) {
	if _, err := DecodePayload(make([]byte, MaxPayloadBytes+1)); err == nil {
		t.Fatal("payload over MaxPayloadBytes accepted")
	}
}
