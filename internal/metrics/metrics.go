// Package metrics collects the measurements the paper's evaluation
// reports: per-party messages and bytes sent, per-round message counts,
// block commit latencies, and block production rate (paper §1 message
// complexity, §5 Table 1).
package metrics

import (
	"sort"
	"sync"
	"time"

	"icc/internal/obs"
	"icc/internal/types"
)

// Recorder accumulates measurements for one protocol run. Safe for
// concurrent use.
type Recorder struct {
	mu sync.Mutex

	n         int
	bytesSent []int64
	msgsSent  []int64

	// roundMsgs counts messages sent by honest parties per round — the
	// paper's "message complexity" (one broadcast by one party counts n).
	roundMsgs map[types.Round]int64

	// proposeTime records when the first proposal for a round was sent;
	// commitTime when the first party finalized the round's block.
	proposeTime map[types.Round]time.Duration
	commitTime  map[types.Round]time.Duration
	// roundEnter records when the first party entered the round.
	roundEnter map[types.Round]time.Duration
	// roundDone records, per party, when it finished the round; used to
	// derive reciprocal throughput.
	roundDone map[types.Round]time.Duration

	committedBlocks int64
	committedBytes  int64
}

// NewRecorder creates a recorder for n parties.
func NewRecorder(n int) *Recorder {
	return &Recorder{
		n:           n,
		bytesSent:   make([]int64, n),
		msgsSent:    make([]int64, n),
		roundMsgs:   make(map[types.Round]int64),
		proposeTime: make(map[types.Round]time.Duration),
		commitTime:  make(map[types.Round]time.Duration),
		roundEnter:  make(map[types.Round]time.Duration),
		roundDone:   make(map[types.Round]time.Duration),
	}
}

// Send records a message of the given encoded size sent by party p to
// `recipients` recipients during `round`.
func (r *Recorder) Send(p types.PartyID, round types.Round, recipients, size int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bytesSent[p] += int64(size) * int64(recipients)
	r.msgsSent[p] += int64(recipients)
	r.roundMsgs[round] += int64(recipients)
}

// Propose records the time the first proposal for a round was broadcast.
func (r *Recorder) Propose(round types.Round, at time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.proposeTime[round]; !ok || at < cur {
		r.proposeTime[round] = at
	}
}

// EnterRound records a party entering a round.
func (r *Recorder) EnterRound(round types.Round, at time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.roundEnter[round]; !ok || at < cur {
		r.roundEnter[round] = at
	}
}

// FinishRound records a party finishing a round (seeing a notarized
// block for it).
func (r *Recorder) FinishRound(round types.Round, at time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.roundDone[round]; !ok || at < cur {
		r.roundDone[round] = at
	}
}

// Commit records a block of the given payload size being committed
// (finalized chain extended) at the given time.
func (r *Recorder) Commit(round types.Round, payloadBytes int, at time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.commitTime[round]; !ok || at < cur {
		r.commitTime[round] = at
		r.committedBlocks++
		r.committedBytes += int64(payloadBytes)
	}
}

// Summary is an aggregate view of a run.
type Summary struct {
	Parties         int
	TotalBytes      int64
	TotalMsgs       int64
	MaxPartyBytes   int64 // the "communication bottleneck" measure of [35]
	MaxPartyMsgs    int64
	CommittedBlocks int64
	CommittedBytes  int64

	// MeanRoundMsgs is the paper's per-round message complexity averaged
	// over rounds; MaxRoundMsgs the worst round.
	MeanRoundMsgs float64
	MaxRoundMsgs  int64

	// MeanLatency is the mean proposal→commit latency (paper: 3δ for
	// ICC0); quantiles over committed rounds.
	MeanLatency time.Duration
	P50Latency  time.Duration
	P99Latency  time.Duration

	// MeanRoundTime is the mean gap between consecutive round
	// completions — the reciprocal throughput (paper: 2δ for ICC0).
	MeanRoundTime time.Duration
}

// Snapshot exports the run's aggregates in the common map view shared
// with the obs registry and TransportStats, so every renderer works on
// simulation results too.
func (r *Recorder) Snapshot() obs.Snapshot { return r.Summarize().Snapshot() }

// Snapshot flattens the summary into the common map view.
func (s Summary) Snapshot() obs.Snapshot {
	return obs.Snapshot{
		"parties":                 float64(s.Parties),
		"total_bytes":             float64(s.TotalBytes),
		"total_msgs":              float64(s.TotalMsgs),
		"max_party_bytes":         float64(s.MaxPartyBytes),
		"max_party_msgs":          float64(s.MaxPartyMsgs),
		"committed_blocks":        float64(s.CommittedBlocks),
		"committed_bytes":         float64(s.CommittedBytes),
		"mean_round_msgs":         s.MeanRoundMsgs,
		"max_round_msgs":          float64(s.MaxRoundMsgs),
		"mean_latency_seconds":    s.MeanLatency.Seconds(),
		"p50_latency_seconds":     s.P50Latency.Seconds(),
		"p99_latency_seconds":     s.P99Latency.Seconds(),
		"mean_round_time_seconds": s.MeanRoundTime.Seconds(),
	}
}

// PartyBytes returns bytes sent by party p.
func (r *Recorder) PartyBytes(p types.PartyID) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytesSent[p]
}

// PartyMsgs returns messages sent by party p.
func (r *Recorder) PartyMsgs(p types.PartyID) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.msgsSent[p]
}

// CommitLatency returns the proposal→commit latency of a round, if both
// endpoints were observed.
func (r *Recorder) CommitLatency(round types.Round) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok1 := r.proposeTime[round]
	c, ok2 := r.commitTime[round]
	if !ok1 || !ok2 || c < p {
		return 0, false
	}
	return c - p, true
}

// RoundMsgs returns the message complexity of one round.
func (r *Recorder) RoundMsgs(round types.Round) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.roundMsgs[round]
}

// Summarize aggregates everything recorded so far.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{Parties: r.n, CommittedBlocks: r.committedBlocks, CommittedBytes: r.committedBytes}
	for p := 0; p < r.n; p++ {
		s.TotalBytes += r.bytesSent[p]
		s.TotalMsgs += r.msgsSent[p]
		if r.bytesSent[p] > s.MaxPartyBytes {
			s.MaxPartyBytes = r.bytesSent[p]
		}
		if r.msgsSent[p] > s.MaxPartyMsgs {
			s.MaxPartyMsgs = r.msgsSent[p]
		}
	}
	if len(r.roundMsgs) > 0 {
		var total int64
		for _, c := range r.roundMsgs {
			total += c
			if c > s.MaxRoundMsgs {
				s.MaxRoundMsgs = c
			}
		}
		s.MeanRoundMsgs = float64(total) / float64(len(r.roundMsgs))
	}
	// Latencies.
	lats := make([]time.Duration, 0, len(r.commitTime))
	for round, c := range r.commitTime {
		if p, ok := r.proposeTime[round]; ok && c >= p {
			lats = append(lats, c-p)
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var total time.Duration
		for _, l := range lats {
			total += l
		}
		s.MeanLatency = total / time.Duration(len(lats))
		s.P50Latency = lats[len(lats)/2]
		s.P99Latency = lats[len(lats)*99/100]
	}
	// Reciprocal throughput: mean gap between consecutive round finishes.
	if len(r.roundDone) >= 2 {
		rounds := make([]types.Round, 0, len(r.roundDone))
		for k := range r.roundDone {
			rounds = append(rounds, k)
		}
		sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
		first := r.roundDone[rounds[0]]
		last := r.roundDone[rounds[len(rounds)-1]]
		if last > first {
			s.MeanRoundTime = (last - first) / time.Duration(len(rounds)-1)
		}
	}
	return s
}
