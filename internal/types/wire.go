package types

import (
	"encoding/binary"
	"errors"
	"fmt"

	"icc/internal/crypto/hash"
)

// Encoder builds a length-framed binary encoding. All integers are
// big-endian; byte strings are u32-length-prefixed.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// Bytes32 appends a fixed 32-byte value.
func (e *Encoder) Bytes32(d hash.Digest) { e.buf = append(e.buf, d[:]...) }

// VarBytes appends a u32 length prefix followed by the bytes.
func (e *Encoder) VarBytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// ErrTruncated is returned when a decoder runs out of input.
var ErrTruncated = errors.New("types: truncated encoding")

// ErrTrailingBytes is returned when input remains after a full decode.
var ErrTrailingBytes = errors.New("types: trailing bytes after message")

// maxVarBytes bounds a single variable-length field (16 MiB) so that a
// malicious length prefix cannot trigger a huge allocation.
const maxVarBytes = 16 << 20

// Decoder consumes a binary encoding produced by Encoder. Errors latch:
// after the first failure every method returns zero values and Err()
// reports the failure, so call sites can decode a whole struct and check
// once.
type Decoder struct {
	b   []byte
	err error
}

// NewDecoder wraps the input bytes.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.b) }

// Finish returns an error if decoding failed or input remains.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(d.b))
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = ErrTruncated
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bytes32 reads a fixed 32-byte value.
func (d *Decoder) Bytes32() hash.Digest {
	var out hash.Digest
	b := d.take(hash.Size)
	if b != nil {
		copy(out[:], b)
	}
	return out
}

// VarBytes reads a u32-length-prefixed byte string. The returned slice is
// a copy, safe to retain.
func (d *Decoder) VarBytes() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > maxVarBytes {
		d.err = fmt.Errorf("types: var-bytes length %d exceeds limit", n)
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
