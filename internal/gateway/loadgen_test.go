package gateway

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// autoCommitter finalizes a gateway set's pending commands on a short
// period, standing in for consensus.
func autoCommitter(t *testing.T, parties []*harness, period time.Duration) {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		round := uint64(0)
		for {
			select {
			case <-stop:
				return
			case <-time.After(period):
				round++
				leader := parties[int(round)%len(parties)]
				payload := leader.q.GetPayload(0, nil, nil)
				for _, p := range parties {
					p.kv.Apply(payload)
					p.q.MarkCommitted(payload)
					p.gw.ObserveCommit(round, payload)
				}
			}
		}
	}()
	t.Cleanup(func() { close(stop); wg.Wait() })
}

func TestRunLoadOpenLoopOffersExactCount(t *testing.T) {
	parties := []*harness{newHarness(t, Options{Party: 0}), newHarness(t, Options{Party: 1})}
	autoCommitter(t, parties, time.Millisecond)

	rep, err := RunLoad(context.Background(), []*Gateway{parties[0].gw, parties[1].gw}, LoadOptions{
		Rate:     400,
		Duration: 250 * time.Millisecond,
		Clients:  4,
		Keys:     64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Open loop: the offered count is rate×duration regardless of how the
	// cluster performed — anything not admitted shows up as a rejection.
	const want = 100 // 400/s × 0.25s
	if rep.Submitted+rep.Rejected != want {
		t.Fatalf("submitted %d + rejected %d != offered %d", rep.Submitted, rep.Rejected, want)
	}
	if rep.Rejected != 0 {
		t.Fatalf("unbounded-backlog run rejected %d commands", rep.Rejected)
	}
	if rep.Acked != rep.Submitted || rep.Timedout != 0 {
		t.Fatalf("acked %d / timedout %d of %d submitted — committer should ack all",
			rep.Acked, rep.Timedout, rep.Submitted)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible percentiles: p50=%v p99=%v", rep.P50, rep.P99)
	}
}

func TestRunLoadCountsBackpressureAsRejections(t *testing.T) {
	// One slot and no committer: the first submission takes the slot,
	// every later tick is an open-loop loss, never a queue or a block.
	p := newHarness(t, Options{MaxBacklog: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan struct{})
	var rep *LoadReport
	var err error
	go func() {
		defer close(done)
		rep, err = RunLoad(ctx, []*Gateway{p.gw}, LoadOptions{
			Rate:     200,
			Duration: 100 * time.Millisecond,
			Clients:  2,
		})
	}()
	// The stuck command needs a finalization for RunLoad to drain; give it
	// one after the window.
	time.Sleep(150 * time.Millisecond)
	p.commit(1)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 1 {
		t.Fatalf("submitted %d with a one-slot backlog, want 1", rep.Submitted)
	}
	if rep.Rejected != 19 { // 200/s × 0.1s = 20 offered, 1 admitted
		t.Fatalf("rejected %d, want 19", rep.Rejected)
	}
	if rep.MaxBacklog < 1 {
		t.Fatalf("MaxBacklog %d never observed the full backlog", rep.MaxBacklog)
	}
}

func TestRunLoadValidation(t *testing.T) {
	p := newHarness(t, Options{})
	if _, err := RunLoad(context.Background(), []*Gateway{p.gw}, LoadOptions{}); err == nil {
		t.Fatal("zero Rate/Duration accepted")
	}
	if _, err := RunLoad(context.Background(), nil, LoadOptions{Rate: 1, Duration: time.Millisecond}); err == nil {
		t.Fatal("empty gateway set accepted")
	}
	// Skew in (0, 1] is outside rand.NewZipf's domain; it used to fall
	// back to uniform keys silently.
	for _, skew := range []float64{0.5, 1.0, -0.3} {
		_, err := RunLoad(context.Background(), []*Gateway{p.gw}, LoadOptions{
			Rate: 1, Duration: time.Millisecond, Skew: skew,
		})
		if !errors.Is(err, ErrInvalidSkew) {
			t.Fatalf("skew %v: got %v, want ErrInvalidSkew", skew, err)
		}
	}
}

func TestRunLoadSeedUsedVerbatim(t *testing.T) {
	// Seed 0 must be a distinct stream, not a silent alias of seed 1:
	// two otherwise identical runs on separate clusters must leave
	// different replicated states.
	stateFor := func(seed int64) string {
		parties := []*harness{newHarness(t, Options{Party: 0})}
		autoCommitter(t, parties, time.Millisecond)
		rep, err := RunLoad(context.Background(), []*Gateway{parties[0].gw}, LoadOptions{
			Rate: 400, Duration: 50 * time.Millisecond, Keys: 1 << 16, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Submitted == 0 {
			t.Fatal("no commands submitted")
		}
		h := parties[0].kv.StateHash()
		return string(h[:])
	}
	if stateFor(0) == stateFor(1) {
		t.Fatal("seed 0 produced the same command stream as seed 1 (still remapped?)")
	}
}
