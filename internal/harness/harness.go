// Package harness assembles simulated ICC clusters — key material,
// engines (honest or Byzantine), dissemination mode, delay model,
// metrics — and provides the invariant checks every experiment and
// integration test relies on. It is the shared chassis of the benchmark
// suite (DESIGN.md §3) and of cmd/iccsim.
package harness

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"icc/internal/adversary"
	"icc/internal/beacon"
	"icc/internal/core"
	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/keys"
	"icc/internal/engine"
	"icc/internal/metrics"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

// Behavior selects how a party acts.
type Behavior int

// Supported behaviours.
const (
	Honest       Behavior = iota + 1
	Crash                 // silent from birth
	SilentLeader          // honest except never proposes
	LazyVoter             // honest except never contributes shares
	Equivocator           // proposes conflicting blocks to different halves
)

// Mode selects the dissemination variant.
type Mode int

// Protocol variants (paper §1).
const (
	ICC0 Mode = iota // direct broadcast of blocks
	ICC1             // gossip sub-layer dissemination
	ICC2             // erasure-coded reliable broadcast dissemination
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ICC0:
		return "ICC0"
	case ICC1:
		return "ICC1"
	case ICC2:
		return "ICC2"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a cluster.
type Options struct {
	N          int
	Seed       int64
	Delay      simnet.DelayModel
	DeltaBound time.Duration
	Epsilon    time.Duration

	// CertScheme selects the aggregate-signature scheme the cluster's
	// notarization/finalization/checkpoint certificates use. Zero value
	// is the ed25519 multisig default; aggsig.SchemeBLS deals BLS12-381
	// keys instead (constant-size certificates, see DESIGN.md §15).
	CertScheme aggsig.SchemeID

	// SimBeacon swaps the threshold-cryptography beacon for the fast
	// hash-chain simulation (same message pattern; see beacon.Simulated).
	SimBeacon bool
	// Verify selects the pool admission policy. The zero value is
	// pool.VerifyFull; large honest-only sweeps use pool.VerifySharesOnly
	// to admit locally combined aggregates without re-checking n−t
	// signatures (the former SkipAggVerify knob).
	Verify pool.VerifyPolicy

	Payload    core.PayloadSource
	MaxPayload int

	// Behaviors assigns non-honest roles; unlisted parties are honest.
	Behaviors map[types.PartyID]Behavior

	Mode Mode
	// GossipFanout bounds each party's gossip neighbourhood (ICC1).
	GossipFanout int
	// GossipBatchWindow coalesces share gossip into ShareBundle frames
	// flushed after this delay (ICC1 only; 0 keeps per-share relaying).
	GossipBatchWindow time.Duration
	// GossipAggregate lets ICC1 relays forward one aggregated
	// certificate instead of n−t individual shares once they hold a
	// quorum for a statement. Under pool.VerifySharesOnly the relays
	// combine without re-checking signatures (the sweep already trusts
	// locally combined aggregates); under pool.VerifyFull they verify
	// while combining.
	GossipAggregate bool
	// GossipAdaptiveBatch makes the batch window load-adaptive: isolated
	// shares relay immediately, bursts batch (requires GossipBatchWindow).
	GossipAdaptiveBatch bool
	// BeaconOutputs lets ICC1 relays gossip one recovered, verifiable
	// beacon output per round instead of t+1 shares. Requires a beacon
	// backend with third-party-verifiable outputs (SimBeacon here).
	BeaconOutputs bool

	Adaptive   bool
	PruneDepth types.Round

	// CrashRecoveries schedules engine-level crash/recovery outages:
	// the party goes dark during [Down, Up) and must rejoin via
	// protocol-level catch-up. Applied outside the dissemination
	// wrapper, so the gossip/RBC layer goes dark with the engine.
	// Unlike the Crash behaviour, these parties count as honest and the
	// liveness helpers wait for them to commit.
	CrashRecoveries map[types.PartyID]CrashWindow

	// WrapEngine, if set, is applied to each party's outermost engine —
	// an escape hatch for custom experiment instrumentation.
	WrapEngine func(p types.PartyID, e engine.Engine) engine.Engine
}

// CrashWindow is one scheduled outage in protocol time.
type CrashWindow struct {
	Down, Up time.Duration
}

// Cluster is a ready-to-run simulated deployment.
type Cluster struct {
	Opts    Options
	Pub     *keys.Public
	Privs   []keys.Private
	Net     *simnet.Network
	Rec     *metrics.Recorder
	Engines []*core.Engine // inner ICC engines, indexed by party

	// beacons holds each party's beacon source when the harness created
	// one explicitly (SimBeacon), so the dissemination wrapper can share
	// the exact object for beacon-output relaying.
	beacons []beacon.Source

	mu          sync.Mutex
	committed   [][]*types.Block
	committedAt [][]time.Duration
}

// New builds a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.N < 1 {
		return nil, fmt.Errorf("harness: invalid cluster size %d", opts.N)
	}
	if opts.Delay == nil {
		opts.Delay = simnet.Fixed{D: 10 * time.Millisecond}
	}
	if opts.DeltaBound == 0 {
		opts.DeltaBound = 100 * time.Millisecond
	}
	scheme := opts.CertScheme
	if scheme == 0 {
		scheme = aggsig.SchemeMultisig
	}
	pub, privs, err := keys.DealScheme(rand.Reader, opts.N, scheme)
	if err != nil {
		return nil, fmt.Errorf("harness: dealing keys: %w", err)
	}
	c := &Cluster{
		Opts:        opts,
		Pub:         pub,
		Privs:       privs,
		Rec:         metrics.NewRecorder(opts.N),
		beacons:     make([]beacon.Source, opts.N),
		committed:   make([][]*types.Block, opts.N),
		committedAt: make([][]time.Duration, opts.N),
	}
	c.Net = simnet.New(simnet.Options{Seed: opts.Seed, Delay: opts.Delay, Recorder: c.Rec})

	for i := 0; i < opts.N; i++ {
		pid := types.PartyID(i)
		behavior := Honest
		if b, ok := opts.Behaviors[pid]; ok {
			behavior = b
		}
		if behavior == Crash {
			c.Engines = append(c.Engines, nil)
			c.Net.AddNode(adversary.NewSilent(pid), false)
			continue
		}
		inner := core.NewEngine(c.engineConfig(pid))
		c.Engines = append(c.Engines, inner)
		var eng engine.Engine = inner
		switch behavior {
		case SilentLeader:
			eng = adversary.NewSilentLeader(inner)
		case LazyVoter:
			eng = adversary.NewLazyVoter(inner)
		case Equivocator:
			eng = adversary.NewEquivocator(inner, opts.N, privs[i].Auth)
		}
		eng, err = c.wrapDissemination(pid, eng)
		if err != nil {
			return nil, fmt.Errorf("harness: party %d: %w", pid, err)
		}
		if w, ok := opts.CrashRecoveries[pid]; ok {
			eng = adversary.NewCrashRecover(eng, w.Down, w.Up)
		}
		if opts.WrapEngine != nil {
			eng = opts.WrapEngine(pid, eng)
		}
		c.Net.AddNode(eng, behavior == Honest)
	}
	return c, nil
}

// engineConfig builds one party's core config with metric hooks wired.
func (c *Cluster) engineConfig(pid types.PartyID) core.Config {
	cfg := core.Config{
		Self:       pid,
		Keys:       c.Pub,
		Priv:       c.Privs[pid],
		DeltaBound: c.Opts.DeltaBound,
		Epsilon:    c.Opts.Epsilon,
		Payload:    c.Opts.Payload,
		MaxPayload: c.Opts.MaxPayload,
		Adaptive:   c.Opts.Adaptive,
		PruneDepth: c.Opts.PruneDepth,
		Pool:       pool.Options{Policy: c.Opts.Verify},
		// No CatchupProvider: under the discrete-event simnet the engine
		// signs catch-up beacon shares synchronously inside handleStatus.
		// An async backfill worker would inject wall-clock goroutine
		// scheduling into an otherwise deterministic simulation; the
		// inline path keeps every run replayable. The async service is
		// exercised by the runtime tests and the catchup experiment.
		Hooks: core.Hooks{
			OnCommit: func(b *types.Block, now time.Duration) {
				c.mu.Lock()
				c.committed[pid] = append(c.committed[pid], b)
				c.committedAt[pid] = append(c.committedAt[pid], now)
				c.mu.Unlock()
				c.Rec.Commit(b.Round, len(b.Payload), now)
			},
			OnPropose:     func(k types.Round, now time.Duration) { c.Rec.Propose(k, now) },
			OnEnterRound:  func(k types.Round, now time.Duration) { c.Rec.EnterRound(k, now) },
			OnFinishRound: func(k types.Round, now time.Duration) { c.Rec.FinishRound(k, now) },
		},
	}
	if c.Opts.SimBeacon {
		cfg.Beacon = beacon.NewSimulated(c.Opts.N, pid, c.Pub.GenesisSeed)
		c.beacons[pid] = cfg.Beacon
	}
	return cfg
}

// Start initialises all engines.
func (c *Cluster) Start() { c.Net.Start() }

// Snapshot exports the run's recorded metrics in the common map view
// shared with the obs registry and the transport counters.
func (c *Cluster) Snapshot() obs.Snapshot { return c.Rec.Snapshot() }

// Committed returns a snapshot of party p's committed block sequence.
func (c *Cluster) Committed(p types.PartyID) []*types.Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*types.Block, len(c.committed[p]))
	copy(out, c.committed[p])
	return out
}

// CommittedAt returns a snapshot of the commit times parallel to
// Committed(p): blocks sharing a timestamp were output by one
// finalization batch (Fig. 2).
func (c *Cluster) CommittedAt(p types.PartyID) []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.committedAt[p]))
	copy(out, c.committedAt[p])
	return out
}

// MinCommitted returns the shortest committed-sequence length among the
// given parties.
func (c *Cluster) MinCommitted(parties []types.PartyID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	minLen := -1
	for _, p := range parties {
		l := len(c.committed[p])
		if minLen < 0 || l < minLen {
			minLen = l
		}
	}
	return minLen
}

// HonestParties lists the parties with Honest behaviour.
func (c *Cluster) HonestParties() []types.PartyID {
	var out []types.PartyID
	for i := 0; i < c.Opts.N; i++ {
		if b, ok := c.Opts.Behaviors[types.PartyID(i)]; !ok || b == Honest {
			out = append(out, types.PartyID(i))
		}
	}
	return out
}

// RunUntilCommitted runs the simulation until every honest party has
// committed at least minBlocks blocks, or simulated time passes limit.
func (c *Cluster) RunUntilCommitted(minBlocks int, limit time.Duration) bool {
	honest := c.HonestParties()
	return c.Net.RunUntil(func() bool {
		return c.MinCommitted(honest) >= minBlocks
	}, limit)
}

// CheckSafety verifies the atomic-broadcast safety property over all
// parties' outputs: any two committed sequences are prefix-comparable,
// each forms a chain, and rounds strictly increase.
func (c *Cluster) CheckSafety() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var longest []*types.Block
	for _, seq := range c.committed {
		if len(seq) > len(longest) {
			longest = seq
		}
	}
	for p, seq := range c.committed {
		for i, b := range seq {
			if b.Hash() != longest[i].Hash() {
				return fmt.Errorf("safety violation: party %d diverges at position %d", p, i)
			}
			if i > 0 {
				if b.ParentHash != seq[i-1].Hash() {
					return fmt.Errorf("party %d: block %d does not extend block %d", p, i, i-1)
				}
				if b.Round <= seq[i-1].Round {
					return fmt.Errorf("party %d: non-increasing rounds at position %d", p, i)
				}
			}
		}
	}
	return nil
}
