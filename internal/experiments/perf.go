package experiments

import (
	"fmt"
	"sync"
	"time"

	"icc/internal/baseline"
	"icc/internal/harness"
	"icc/internal/metrics"
	"icc/internal/pool"
	"icc/internal/simnet"
	"icc/internal/types"
)

// runVariant runs one ICC cluster to a target block count and summarises.
func runVariant(mode harness.Mode, n int, delta, bound, epsilon time.Duration, seed int64, blocks int) metrics.Summary {
	c, err := harness.New(harness.Options{
		N:          n,
		Seed:       seed,
		Delay:      simnet.Fixed{D: delta},
		DeltaBound: bound,
		Epsilon:    epsilon,
		Mode:       mode,
		SimBeacon:  true,
		Verify:     pool.VerifySharesOnly,
		PruneDepth: simPruneDepth,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	c.Start()
	c.RunUntilCommitted(blocks, 10*time.Minute)
	return c.Rec.Summarize()
}

// LatencyThroughput reproduces the §1 performance claims (experiment
// E2): reciprocal throughput 2δ and latency 3δ for ICC0/ICC1, 3δ and 4δ
// for ICC2, across a sweep of network delays δ.
func LatencyThroughput(scale Scale) *Table {
	t := &Table{
		ID:    "E2",
		Title: "reciprocal throughput and latency vs network delay δ (paper: ICC0/1 = 2δ & 3δ, ICC2 = 3δ & 4δ)",
		Columns: []string{"δ", "variant", "round time", "×δ", "latency", "×δ",
			"paper round", "paper latency"},
		Notes: []string{"ICC1 latency includes gossip-hop overhead; the paper's 2δ/3δ claim assumes direct broadcast timing"},
	}
	blocks := scale.scaleInt(200)
	deltas := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond,
		25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	for _, delta := range deltas {
		for _, mode := range []harness.Mode{harness.ICC0, harness.ICC1, harness.ICC2} {
			paperRound, paperLatency := "2δ", "3δ"
			if mode == harness.ICC2 {
				paperRound, paperLatency = "3δ", "4δ"
			}
			s := runVariant(mode, 7, delta, 10*delta, 0, 7000+int64(delta), blocks)
			t.AddRow(
				delta.String(), mode.String(),
				s.MeanRoundTime.Round(time.Millisecond/10).String(),
				fmt.Sprintf("%.1f", float64(s.MeanRoundTime)/float64(delta)),
				s.MeanLatency.Round(time.Millisecond/10).String(),
				fmt.Sprintf("%.1f", float64(s.MeanLatency)/float64(delta)),
				paperRound, paperLatency,
			)
		}
	}
	return t
}

// Responsiveness reproduces the optimistic-responsiveness comparison
// (experiment E6): with δ fixed at 10 ms, ICC0's round time must track
// δ while the Tendermint baseline's height time grows with Δbnd ([8] is
// not optimistically responsive; §1.1).
func Responsiveness(scale Scale) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "optimistic responsiveness: round time vs Δbnd at fixed δ = 10 ms",
		Columns: []string{"Δbnd", "ICC0 round time", "Tendermint height time"},
		Notes:   []string{"paper: ICC runs at network speed with an honest leader; Tendermint rounds take O(Δbnd)"},
	}
	const delta = 10 * time.Millisecond
	const n = 7
	blocks := scale.scaleInt(100)
	for _, bound := range []time.Duration{50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 500 * time.Millisecond, 1000 * time.Millisecond} {
		icc := runVariant(harness.ICC0, n, delta, bound, 0, 6000+int64(bound), blocks)
		tm := runTendermint(n, delta, bound, blocks)
		t.AddRow(bound.String(),
			icc.MeanRoundTime.Round(time.Millisecond/10).String(),
			tm.Round(time.Millisecond/10).String())
	}
	return t
}

// runTendermint measures the mean height time of the Tendermint
// baseline.
func runTendermint(n int, delta, bound time.Duration, heights int) time.Duration {
	nw := simnet.New(simnet.Options{Seed: 11, Delay: simnet.Fixed{D: delta}})
	var mu sync.Mutex
	var commitTimes []time.Duration
	minCommits := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(commitTimes)
	}
	for i := 0; i < n; i++ {
		tm := baseline.NewTendermint(baseline.TendermintConfig{
			Self: types.PartyID(i), N: n, DeltaBound: bound,
			OnCommit: func(h uint64, _ []byte, now time.Duration) {
				if i == 0 {
					mu.Lock()
					commitTimes = append(commitTimes, now)
					mu.Unlock()
				}
			},
		})
		nw.AddNode(tm, true)
	}
	nw.Start()
	nw.RunUntil(func() bool { return minCommits() >= heights }, time.Hour)
	mu.Lock()
	defer mu.Unlock()
	if len(commitTimes) < 2 {
		return 0
	}
	return (commitTimes[len(commitTimes)-1] - commitTimes[0]) / time.Duration(len(commitTimes)-1)
}

// Baselines reproduces the §1.1 comparison rows (experiment E8):
// latency and reciprocal throughput for ICC0/ICC1/ICC2, chained
// HotStuff, and Tendermint at the same δ and n.
func Baselines(scale Scale) *Table {
	const delta = 20 * time.Millisecond
	const bound = 200 * time.Millisecond
	const n = 7
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("protocol comparison at n=%d, δ=%v, Δbnd=%v", n, delta, bound),
		Columns: []string{"protocol", "round/height time", "latency", "paper claim"},
	}
	blocks := scale.scaleInt(150)
	for _, mode := range []harness.Mode{harness.ICC0, harness.ICC1, harness.ICC2} {
		claim := "2δ throughput, 3δ latency"
		if mode == harness.ICC2 {
			claim = "3δ throughput, 4δ latency"
		}
		s := runVariant(mode, n, delta, bound, 0, 8000+int64(mode), blocks)
		t.AddRow(mode.String(),
			s.MeanRoundTime.Round(time.Millisecond/10).String(),
			s.MeanLatency.Round(time.Millisecond/10).String(), claim)
	}
	// HotStuff: measure commit cadence and latency from view timing.
	hsRound, hsLatency := runHotStuffTimed(n, delta, bound, blocks)
	t.AddRow("HotStuff (chained)", hsRound.Round(time.Millisecond/10).String(),
		hsLatency.Round(time.Millisecond/10).String(), "2δ throughput, 6δ latency")
	tmRound := runTendermint(n, delta, bound, blocks)
	t.AddRow("Tendermint-like", tmRound.Round(time.Millisecond/10).String(),
		"≈ round time", "Θ(Δbnd) rounds, not responsive")
	return t
}

// runHotStuffTimed measures the HotStuff baseline's commit cadence and
// proposal→commit latency (views start at ≈ (v−1)·2δ in the steady
// state with fixed delays).
func runHotStuffTimed(n int, delta, bound time.Duration, views int) (roundTime, latency time.Duration) {
	nw := simnet.New(simnet.Options{Seed: 12, Delay: simnet.Fixed{D: delta}})
	var mu sync.Mutex
	commitAt := map[uint64]time.Duration{}
	for i := 0; i < n; i++ {
		h := baseline.NewHotStuff(baseline.HotStuffConfig{
			Self: types.PartyID(i), N: n, DeltaBound: bound,
			OnCommit: func(v uint64, _ []byte, now time.Duration) {
				mu.Lock()
				if _, ok := commitAt[v]; !ok {
					commitAt[v] = now
				}
				mu.Unlock()
			},
		})
		nw.AddNode(h, true)
	}
	nw.Start()
	nw.RunUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(commitAt) >= views
	}, time.Hour)
	mu.Lock()
	defer mu.Unlock()
	var lo, hi uint64
	var loT, hiT time.Duration
	var latSum time.Duration
	var latN int
	for v, c := range commitAt {
		if lo == 0 || v < lo {
			lo, loT = v, c
		}
		if v > hi {
			hi, hiT = v, c
		}
		if v >= 3 {
			proposed := time.Duration(v-1) * 2 * delta
			latSum += c - proposed
			latN++
		}
	}
	if hi > lo {
		roundTime = (hiT - loT) / time.Duration(hi-lo)
	}
	if latN > 0 {
		latency = latSum / time.Duration(latN)
	}
	return roundTime, latency
}
