package backfill

import (
	"sync"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/core"
	"icc/internal/obs"
	"icc/internal/transport"
	"icc/internal/types"
)

// gatedSigner wraps a signer so tests can hold requests in flight.
type gatedSigner struct {
	inner   ShareSigner
	started chan struct{} // one receive per ShareForRound entry
	gate    chan struct{} // each ShareForRound waits for one token
}

func newGatedSigner(inner ShareSigner) *gatedSigner {
	return &gatedSigner{inner: inner, started: make(chan struct{}, 64), gate: make(chan struct{})}
}

func (g *gatedSigner) ShareForRound(k types.Round) (*types.BeaconShare, error) {
	g.started <- struct{}{}
	<-g.gate
	return g.inner.ShareForRound(k)
}

// simBeacon returns a simulated beacon that can sign rounds 1..rounds.
func simBeacon(t *testing.T, rounds int) *beacon.Simulated {
	t.Helper()
	s := beacon.NewSimulated(4, 0, []byte("genesis"))
	for k := 1; k <= rounds; k++ {
		for p := types.PartyID(0); p < 4; p++ {
			sh, err := beacon.NewSimulated(4, p, []byte("genesis")).ShareForRound(1)
			if err != nil {
				t.Fatal(err)
			}
			sh.Round = types.Round(k)
			if _, err := s.AddShare(sh); err != nil {
				t.Fatal(err)
			}
		}
		if _, ok := s.Reveal(types.Round(k)); !ok {
			t.Fatalf("reveal round %d failed", k)
		}
	}
	return s
}

func recvBundle(t *testing.T, ep transport.Endpoint) *types.Bundle {
	t.Helper()
	select {
	case env := <-ep.Inbox():
		b, ok := env.Msg.(*types.Bundle)
		if !ok {
			t.Fatalf("received %T, want *types.Bundle", env.Msg)
		}
		return b
	case <-time.After(5 * time.Second):
		t.Fatal("no bundle delivered")
		return nil
	}
}

func TestWorkerSignsAndDelivers(t *testing.T) {
	hub := transport.NewInproc(2)
	reg := obs.NewRegistry()
	w := New(simBeacon(t, 5), hub.Endpoint(0), Options{Registry: reg})
	defer w.Close()

	if !w.EnqueueBackfill(core.BackfillRequest{Peer: 1, Rounds: []types.Round{1, 2, 3}}) {
		t.Fatal("enqueue refused")
	}
	b := recvBundle(t, hub.Endpoint(1))
	if len(b.Messages) != 3 {
		t.Fatalf("bundle carries %d messages, want 3", len(b.Messages))
	}
	for i, m := range b.Messages {
		sh, ok := m.(*types.BeaconShare)
		if !ok {
			t.Fatalf("message %d is %T, want *types.BeaconShare", i, m)
		}
		if sh.Round != types.Round(i+1) || sh.Signer != 0 {
			t.Fatalf("message %d: round %d signer %d", i, sh.Round, sh.Signer)
		}
	}
}

func TestWorkerSkipsUnsignableRounds(t *testing.T) {
	hub := transport.NewInproc(2)
	s := simBeacon(t, 5)
	s.Prune(3) // rounds 1,2 now ErrPruned
	w := New(s, hub.Endpoint(0), Options{})
	defer w.Close()

	// Rounds 1,2 pruned; round 99 unsignable (R_98 unknown); 3,4 fine.
	if !w.EnqueueBackfill(core.BackfillRequest{Peer: 1, Rounds: []types.Round{1, 2, 3, 4, 99}}) {
		t.Fatal("enqueue refused")
	}
	b := recvBundle(t, hub.Endpoint(1))
	if len(b.Messages) != 2 {
		t.Fatalf("bundle carries %d messages, want 2 (pruned/unsignable skipped)", len(b.Messages))
	}
}

func TestWorkerDedupesPerPeer(t *testing.T) {
	hub := transport.NewInproc(2)
	g := newGatedSigner(simBeacon(t, 5))
	w := New(g, hub.Endpoint(0), Options{})
	defer w.Close()

	if !w.EnqueueBackfill(core.BackfillRequest{Peer: 1, Rounds: []types.Round{1}}) {
		t.Fatal("first enqueue refused")
	}
	<-g.started // the request is now in flight inside ShareForRound
	if w.EnqueueBackfill(core.BackfillRequest{Peer: 1, Rounds: []types.Round{2}}) {
		t.Fatal("duplicate in-flight request accepted")
	}
	g.gate <- struct{}{} // release the signer
	recvBundle(t, hub.Endpoint(1))
	// After completion the peer may ask again.
	deadline := time.Now().Add(5 * time.Second)
	for !w.EnqueueBackfill(core.BackfillRequest{Peer: 1, Rounds: []types.Round{2}}) {
		if time.Now().After(deadline) {
			t.Fatal("post-completion request still refused")
		}
		time.Sleep(time.Millisecond)
	}
	g.gate <- struct{}{}
	recvBundle(t, hub.Endpoint(1))
}

func TestWorkerDropsWhenQueueFull(t *testing.T) {
	hub := transport.NewInproc(8)
	g := newGatedSigner(simBeacon(t, 5))
	w := New(g, hub.Endpoint(0), Options{Workers: 1, QueueSize: 1})
	defer func() {
		close(g.gate) // unblock everything for Close
		w.Close()
	}()

	// First request occupies the single worker…
	if !w.EnqueueBackfill(core.BackfillRequest{Peer: 1, Rounds: []types.Round{1}}) {
		t.Fatal("first enqueue refused")
	}
	<-g.started
	// …second fills the queue…
	if !w.EnqueueBackfill(core.BackfillRequest{Peer: 2, Rounds: []types.Round{1}}) {
		t.Fatal("second enqueue refused")
	}
	// …third (distinct peer, so not the dedupe path) must drop.
	if w.EnqueueBackfill(core.BackfillRequest{Peer: 3, Rounds: []types.Round{1}}) {
		t.Fatal("enqueue accepted beyond queue capacity")
	}
}

func TestWorkerCloseRefusesAndUnblocks(t *testing.T) {
	hub := transport.NewInproc(2)
	w := New(simBeacon(t, 5), hub.Endpoint(0), Options{Workers: 2})
	w.Close()
	w.Close() // idempotent
	if w.EnqueueBackfill(core.BackfillRequest{Peer: 1, Rounds: []types.Round{1}}) {
		t.Fatal("enqueue accepted after Close")
	}
}

func TestWorkerConcurrentEnqueue(t *testing.T) {
	hub := transport.NewInproc(8)
	w := New(simBeacon(t, 8), hub.Endpoint(0), Options{Workers: 2})
	defer w.Close()

	var wg sync.WaitGroup
	for p := types.PartyID(1); p < 8; p++ {
		wg.Add(1)
		go func(p types.PartyID) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				w.EnqueueBackfill(core.BackfillRequest{Peer: p, Rounds: []types.Round{1, 2, 3}})
			}
		}(p)
	}
	wg.Wait()
	// Every peer got at least one bundle (the first enqueue per peer
	// cannot have been refused: queue 64 ≫ 7 peers).
	for p := types.PartyID(1); p < 8; p++ {
		recvBundle(t, hub.Endpoint(p))
	}
}
