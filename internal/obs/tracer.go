package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event kinds recorded by the protocol tracer.
const (
	KindRoundEntered   = "round_entered"
	KindProposed       = "proposed"
	KindNotarShare     = "notarization_share"
	KindFinalShare     = "finalization_share"
	KindRoundNotarized = "round_notarized"
	KindCommitted      = "committed"
	KindResync         = "resync"
	KindBackfill       = "backfill"
	KindTransportFault = "transport_fault"
	KindCheckpoint     = "checkpoint"
	KindResyncLost     = "resync_lost"
	KindRankDisq       = "rank_disqualified"
	// KindSimDeliver and KindSimTick are the simulator's scheduler-level
	// events (one per engine-visible message delivery / timer tick): the
	// deterministic execution record campaign replay compares against.
	KindSimDeliver = "sim_deliver"
	KindSimTick    = "sim_tick"
)

// Event is one traced protocol occurrence.
type Event struct {
	// Wall is the wall-clock time the event was recorded. Deterministic
	// tracers (campaign replay) leave it zero — virtual time is the
	// authoritative clock there.
	Wall time.Time `json:"wall"`
	// VT is the virtual (protocol) time of the event, when the recording
	// layer runs on simulated time.
	VT time.Duration `json:"vt,omitempty"`
	// Party is the recording party (-1 when unknown/not applicable).
	Party int `json:"party"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Round is the protocol round, when the event has one.
	Round uint64 `json:"round,omitempty"`
	// Detail carries kind-specific context (fault class, peer, timing).
	Detail string `json:"detail,omitempty"`
}

// Header is the first line of a JSONL trace dump: the event accounting
// that tells a consumer whether the retained window is the whole story.
// Dropped > 0 means the ring overwrote events — the trace is truncated
// and NOT replayable (campaign replay refuses it loudly).
type Header struct {
	TraceHeader bool              `json:"trace_header"`
	Total       uint64            `json:"total"`
	Retained    int               `json:"retained"`
	Dropped     uint64            `json:"dropped"`
	Cap         int               `json:"cap"`
	Meta        map[string]string `json:"meta,omitempty"`
}

// Tracer is a bounded ring buffer of protocol events. When full, the
// oldest events are overwritten — recent history is what debugging a
// live stall needs, and the bound keeps a long-running node's memory
// flat. A nil *Tracer is a valid no-op sink. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int    // write cursor
	wrap    bool   // buffer has wrapped at least once
	total   uint64 // events ever recorded, including overwritten ones
	noStamp bool   // deterministic mode: leave Wall zero
}

// DefaultTraceCap is the ring capacity used when callers pass 0.
const DefaultTraceCap = 4096

// NewTracer creates a tracer holding up to capacity events (0 selects
// DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// DisableWallStamp switches the tracer to deterministic mode: Record no
// longer stamps Wall on events that lack one, so two identical runs
// produce byte-identical traces (campaign replay depends on this; the
// virtual-time field VT carries the authoritative clock instead).
func (t *Tracer) DisableWallStamp() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.noStamp = true
	t.mu.Unlock()
}

// Record appends one event, stamping Wall if unset (unless the tracer
// is in deterministic mode). Safe on nil.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if e.Wall.IsZero() && !t.noStamp {
		e.Wall = time.Now()
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.wrap = true
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrap {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Total returns how many events were ever recorded (including those the
// ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many recorded events the ring has overwritten —
// the gap between Total and what Events still returns. A non-zero value
// means a JSONL dump is truncated history.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.buf))
}

// header assembles the accounting line under the tracer's lock.
func (t *Tracer) header(meta map[string]string) Header {
	if t == nil {
		return Header{TraceHeader: true, Meta: meta}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Header{
		TraceHeader: true,
		Total:       t.total,
		Retained:    len(t.buf),
		Dropped:     t.total - uint64(len(t.buf)),
		Cap:         cap(t.buf),
		Meta:        meta,
	}
}

// WriteJSONL dumps the trace as JSON lines: one Header line first (so
// consumers can detect ring truncation — dropped events used to vanish
// silently, breaking replay fidelity), then the retained events oldest
// first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return t.WriteJSONLMeta(w, nil)
}

// WriteJSONLMeta is WriteJSONL with caller metadata embedded in the
// header line — the campaign driver stores the run configuration there
// so a trace file is a self-contained replay artifact.
func (t *Tracer) WriteJSONLMeta(w io.Writer, meta map[string]string) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.header(meta)); err != nil {
		return err
	}
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a dump produced by WriteJSONL: the header line, then
// every retained event. It fails if the first line is not a trace
// header — a dump without accounting cannot be trusted as complete.
func ReadJSONL(r io.Reader) (Header, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return Header{}, nil, fmt.Errorf("obs: empty trace: %w", sc.Err())
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || !h.TraceHeader {
		return Header{}, nil, fmt.Errorf("obs: trace does not start with a header line")
	}
	var events []Event
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return h, events, fmt.Errorf("obs: trace line %d: %w", len(events)+2, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return h, events, err
	}
	return h, events, nil
}
