package bls

import (
	"crypto/rand"
	"testing"
)

func TestSignVerify(t *testing.T) {
	sk, pk, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("beacon round 1")
	sig := sk.Sign(msg)
	if err := pk.Verify(msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := pk.Verify([]byte("other"), sig); err == nil {
		t.Fatal("wrong message verified")
	}
	_, pk2, _ := GenerateKey(rand.Reader)
	if err := pk2.Verify(msg, sig); err == nil {
		t.Fatal("wrong key verified")
	}
	if err := pk.Verify(msg, &Signature{s: G1Infinity()}); err == nil {
		t.Fatal("identity signature verified")
	}
	if err := pk.Verify(msg, nil); err == nil {
		t.Fatal("nil signature verified")
	}
}

func TestSignaturesUnique(t *testing.T) {
	sk, _, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("determinism")
	if !sk.Sign(msg).Equal(sk.Sign(msg)) {
		t.Fatal("BLS signature not deterministic/unique")
	}
}

func TestThresholdDealCombineVerify(t *testing.T) {
	const n, th = 5, 3
	pub, keys, err := DealThreshold(rand.Reader, th, n)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("threshold message")
	shares := make([]*SigShare, n)
	for i, k := range keys {
		shares[i] = k.SignShare(msg)
		if err := pub.VerifyShare(msg, shares[i]); err != nil {
			t.Fatalf("share %d rejected: %v", i, err)
		}
	}
	sig1, err := pub.Combine(msg, shares[:th])
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.VerifyCombined(msg, sig1); err != nil {
		t.Fatalf("combined signature rejected by pairing check: %v", err)
	}
	// Uniqueness across subsets.
	sig2, err := pub.Combine(msg, shares[2:])
	if err != nil {
		t.Fatal(err)
	}
	if !sig1.Equal(sig2) {
		t.Fatal("threshold signature differs across share subsets")
	}
}

func TestThresholdRejectsBadShares(t *testing.T) {
	const n, th = 4, 2
	pub, keys, err := DealThreshold(rand.Reader, th, n)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	// Share signed with the wrong key claiming another index.
	forged := keys[1].SignShare(msg)
	forged.Index = 0
	if err := pub.VerifyShare(msg, forged); err == nil {
		t.Fatal("forged share accepted")
	}
	// Combine skips junk and still succeeds with enough honest shares.
	good0 := keys[0].SignShare(msg)
	good2 := keys[2].SignShare(msg)
	sig, err := pub.Combine(msg, []*SigShare{nil, forged, good0, good0, good2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.VerifyCombined(msg, sig); err != nil {
		t.Fatal(err)
	}
	// Below threshold fails.
	if _, err := pub.Combine(msg, []*SigShare{good0}); err == nil {
		t.Fatal("combined below threshold")
	}
}

func TestDealThresholdValidation(t *testing.T) {
	if _, _, err := DealThreshold(rand.Reader, 0, 3); err == nil {
		t.Fatal("threshold 0 accepted")
	}
	if _, _, err := DealThreshold(rand.Reader, 4, 3); err == nil {
		t.Fatal("threshold > n accepted")
	}
}

func BenchmarkBLSSign(b *testing.B) {
	sk, _, _ := GenerateKey(rand.Reader)
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Sign(msg)
	}
}

func BenchmarkBLSVerify(b *testing.B) {
	sk, pk, _ := GenerateKey(rand.Reader)
	msg := []byte("bench")
	sig := sk.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pk.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
