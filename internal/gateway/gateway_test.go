package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"icc/internal/obs"
	"icc/internal/statemachine"
)

// harness is a gateway over a real queue+KV, driven by hand: commit(r)
// plays the role of the consensus OnCommit hook — drain the queue into
// a payload, apply it, mark it committed, then ObserveCommit. That is
// exactly the ordering the facade and iccnode use.
type harness struct {
	q  *statemachine.Queue
	kv *statemachine.KV
	gw *Gateway
}

func newHarness(t *testing.T, o Options) *harness {
	t.Helper()
	h := &harness{q: statemachine.NewQueue(), kv: statemachine.NewKV()}
	h.gw = New(h.q, h.kv, o)
	h.gw.Start()
	t.Cleanup(h.gw.Stop)
	return h
}

// commit finalizes everything currently pending as round r.
func (h *harness) commit(r uint64) {
	payload := h.q.GetPayload(0, nil, nil)
	h.kv.Apply(payload)
	h.q.MarkCommitted(payload)
	h.gw.ObserveCommit(r, payload)
}

func cmd(client, seq uint64, key string) statemachine.Command {
	return statemachine.Command{Client: client, Seq: seq, Op: statemachine.OpSet, Key: key, Value: []byte("v")}
}

func TestAckOnlyAtFinality(t *testing.T) {
	h := newHarness(t, Options{})
	ctx := context.Background()

	r, err := h.gw.Submit(ctx, cmd(1, 1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	// Admission must NOT resolve the receipt.
	select {
	case <-r.Done():
		t.Fatal("receipt resolved at admission — ack precedes finality")
	case <-time.After(20 * time.Millisecond):
	}

	// A finalized round that does not carry the command advances the
	// commit index but leaves the receipt pending.
	h.gw.ObserveCommit(1, nil)
	select {
	case <-r.Done():
		t.Fatal("receipt resolved by an unrelated finalized round")
	case <-time.After(20 * time.Millisecond):
	}
	if got := h.gw.AppliedIndex(); got != 1 {
		t.Fatalf("AppliedIndex = %d after empty round 1, want 1", got)
	}

	// Finalizing the round that carries the command resolves it with that
	// round as the commit index.
	h.commit(2)
	ack, err := r.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ack.CommitIndex != 2 {
		t.Fatalf("CommitIndex = %d, want 2", ack.CommitIndex)
	}
	if v, ok := h.kv.Get("a"); !ok || string(v) != "v" {
		t.Fatalf("acked write not in finalized state: %q %v", v, ok)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	h := newHarness(t, Options{MaxBacklog: 2})
	ctx := context.Background()
	for i := uint64(1); i <= 2; i++ {
		if _, err := h.gw.Submit(ctx, cmd(1, i, "k")); err != nil {
			t.Fatalf("submit %d within backlog: %v", i, err)
		}
	}
	if _, err := h.gw.Submit(ctx, cmd(1, 3, "k")); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("over-backlog submit = %v, want ErrBacklogFull", err)
	}
	if got := h.gw.Backlog(); got != 2 {
		t.Fatalf("Backlog = %d, want 2", got)
	}
	// Draining the backlog reopens admission.
	h.commit(1)
	if _, err := h.gw.Submit(ctx, cmd(1, 3, "k")); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

func TestSubmitTypedErrors(t *testing.T) {
	h := newHarness(t, Options{})
	ctx := context.Background()

	if _, err := h.gw.Submit(ctx, cmd(7, 1, "dup")); err != nil {
		t.Fatal(err)
	}
	// Pending duplicate.
	if _, err := h.gw.Submit(ctx, cmd(7, 1, "dup")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("pending duplicate = %v, want ErrDuplicate", err)
	}
	h.commit(1)
	// Finalized duplicate — caught via the resolved ring / applied seq.
	if _, err := h.gw.Submit(ctx, cmd(7, 1, "dup")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("finalized duplicate = %v, want ErrDuplicate", err)
	}
	// Oversized command can never fit a payload.
	big := statemachine.Command{Client: 8, Seq: 1, Op: statemachine.OpSet, Key: "big",
		Value: make([]byte, statemachine.MaxPayloadBytes)}
	if _, err := h.gw.Submit(ctx, big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized submit = %v, want ErrTooLarge", err)
	}
	// Cancelled context fails before touching the queue.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := h.gw.Submit(cancelled, cmd(9, 1, "x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit = %v, want context.Canceled", err)
	}
}

func TestNotRunningBeforeStartAndAfterStop(t *testing.T) {
	q, kv := statemachine.NewQueue(), statemachine.NewKV()
	gw := New(q, kv, Options{})
	ctx := context.Background()

	if _, err := gw.Submit(ctx, cmd(1, 1, "a")); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("submit before Start = %v, want ErrNotRunning", err)
	}
	if _, err := gw.Read(ctx, "a", 0); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("read before Start = %v, want ErrNotRunning", err)
	}

	gw.Start()
	r, err := gw.Submit(ctx, cmd(1, 1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	gw.Stop()
	// Stop resolves in-flight receipts with ErrNotRunning instead of
	// leaving their waiters hanging.
	if _, err := r.Wait(ctx); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("in-flight receipt after Stop = %v, want ErrNotRunning", err)
	}
	if _, err := gw.Submit(ctx, cmd(1, 2, "a")); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("submit after Stop = %v, want ErrNotRunning", err)
	}
	gw.Start() // Start after Stop stays off
	if _, err := gw.Submit(ctx, cmd(1, 3, "a")); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("submit after Stop+Start = %v, want ErrNotRunning", err)
	}
}

func TestReadWaitsForToken(t *testing.T) {
	h := newHarness(t, Options{})
	ctx := context.Background()

	// Token 0 reads immediately.
	if res, err := h.gw.Read(ctx, "a", 0); err != nil || res.Found {
		t.Fatalf("zero-token read = %+v, %v", res, err)
	}

	// A read with a future token blocks until the index reaches it.
	readDone := make(chan ReadResult, 1)
	go func() {
		res, err := h.gw.Read(ctx, "a", 3)
		if err != nil {
			t.Errorf("gated read: %v", err)
		}
		readDone <- res
	}()
	select {
	case <-readDone:
		t.Fatal("read with token 3 returned before the index reached 3")
	case <-time.After(20 * time.Millisecond):
	}

	if _, err := h.gw.Submit(ctx, cmd(1, 1, "a")); err != nil {
		t.Fatal(err)
	}
	h.gw.ObserveCommit(2, nil) // index 2 < 3: still gated
	select {
	case <-readDone:
		t.Fatal("read released at index 2 with token 3")
	case <-time.After(20 * time.Millisecond):
	}
	h.commit(3) // applies the write, then releases the reader
	select {
	case res := <-readDone:
		if !res.Found || string(res.Value) != "v" || res.Index != 3 {
			t.Fatalf("released read = %+v, want found v at index 3", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read never released after index reached the token")
	}

	// Context expiry unblocks a read whose token never arrives.
	short, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, err := h.gw.Read(short, "a", 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired gated read = %v, want DeadlineExceeded", err)
	}
}

func TestLookup(t *testing.T) {
	h := newHarness(t, Options{})
	ctx := context.Background()

	if _, _, ok := h.gw.Lookup(5, 1); ok {
		t.Fatal("Lookup found an unknown identity")
	}
	r, err := h.gw.Submit(ctx, cmd(5, 1, "k"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _, ok := h.gw.Lookup(5, 1); !ok || got != r {
		t.Fatal("Lookup did not return the pending receipt")
	}
	h.commit(4)
	if r2, idx, ok := h.gw.Lookup(5, 1); !ok || r2 != nil || idx != 4 {
		t.Fatalf("Lookup after finality = (%v, %d, %v), want (nil, 4, true)", r2, idx, ok)
	}
}

func TestConcurrentSubmitAndCommit(t *testing.T) {
	reg := obs.NewRegistry()
	h := newHarness(t, Options{Registry: reg})
	ctx := context.Background()

	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	receipts := make(chan *Receipt, clients*perClient)
	for c := 1; c <= clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := uint64(1); s <= perClient; s++ {
				r, err := h.gw.Submit(ctx, cmd(uint64(c), s, fmt.Sprintf("c%d", c)))
				if err != nil {
					t.Errorf("client %d seq %d: %v", c, s, err)
					return
				}
				receipts <- r
			}
		}()
	}
	// Committer races the submitters.
	stop := make(chan struct{})
	var committerWg sync.WaitGroup
	committerWg.Add(1)
	go func() {
		defer committerWg.Done()
		round := uint64(0)
		for {
			select {
			case <-stop:
				round++
				h.commit(round) // final sweep
				return
			default:
				round++
				h.commit(round)
			}
		}
	}()
	wg.Wait()
	close(stop)
	committerWg.Wait()
	close(receipts)

	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	n := 0
	for r := range receipts {
		if _, err := r.Wait(waitCtx); err != nil {
			t.Fatalf("receipt (%d,%d): %v", r.Client, r.Seq, err)
		}
		n++
	}
	if n != clients*perClient {
		t.Fatalf("resolved %d receipts, want %d", n, clients*perClient)
	}
	snap := reg.Snapshot()
	if got := snap.Get("icc_gateway_acked_total"); got != float64(n) {
		t.Fatalf("icc_gateway_acked_total = %v, want %d", got, n)
	}
	if snap.Get("icc_gateway_commit_latency_seconds_count") != float64(n) {
		t.Fatal("ack latency histogram count mismatch")
	}
}

func TestResolvedRingEviction(t *testing.T) {
	h := newHarness(t, Options{})
	// Fill well past resolvedCap through direct ObserveCommit payloads.
	for i := 0; i < 3; i++ {
		cmds := make([]statemachine.Command, resolvedCap/2)
		for j := range cmds {
			cmds[j] = cmd(uint64(100+i), uint64(j+1), "k")
		}
		payload := statemachine.EncodePayload(cmds)
		h.kv.Apply(payload)
		h.gw.ObserveCommit(uint64(i+1), payload)
	}
	h.gw.mu.Lock()
	size, order := len(h.gw.resolved), len(h.gw.order)
	h.gw.mu.Unlock()
	if size > resolvedCap || order > resolvedCap {
		t.Fatalf("resolved ring grew unbounded: map=%d order=%d cap=%d", size, order, resolvedCap)
	}
}
