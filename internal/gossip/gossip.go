// Package gossip implements the peer-to-peer gossip sub-layer that
// Protocol ICC1 is designed to integrate with (paper §1, [17]). Each
// party talks only to a bounded set of neighbours; artifacts spread by
// flooding with deduplication, and large artifacts (blocks) use a lazy
// advert → request → deliver pull so that the proposer's egress is
// bounded by its fanout rather than by n — the leader-bottleneck relief
// the paper attributes to the gossip layer.
//
// The wrapper turns an ICC engine's logical broadcasts into gossip
// traffic and reassembles incoming gossip into ordinary message
// deliveries for the engine, so the consensus logic is unchanged
// (the paper: "the logic of the protocol can be easily understood
// independent of this sub-layer").
//
// Two scale-out mechanisms, both off by default, keep per-party traffic
// sublinear as the cluster grows (§1.1 argues per-party communication
// need not grow with n once signatures aggregate):
//
//   - Share batching (ShareBatchWindow > 0): instead of relaying each
//     signature share as its own frame, a relay coalesces the shares it
//     receives within the window into one ShareBundle per neighbour,
//     amortising the per-statement header across every signature.
//
//   - Eager relay-side aggregation (Aggregate): a relay that has seen a
//     threshold of notarization or finalization shares for one statement
//     combines them into the certificate itself and gossips that, then
//     stops relaying (and delivering) further shares for the statement —
//     downstream parties receive one O(threshold) certificate instead of
//     n separate shares.
package gossip

import (
	"fmt"
	"math/rand"
	"time"

	"icc/internal/beacon"
	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/engine"
	"icc/internal/types"
)

// Config tunes one party's gossip wrapper. Construct engines with New,
// which validates the configuration instead of silently repairing it.
type Config struct {
	Self types.PartyID
	N    int
	// Fanout bounds the neighbourhood size. The topology is a ring plus
	// seeded random chords, so the honest overlay stays connected. New
	// rejects values outside [2, N−1] (for N ≤ 3: exactly N−1).
	Fanout int
	// Seed makes the topology deterministic across parties. All parties
	// of a cluster must agree on it, so it is an explicit field rather
	// than a hidden default.
	Seed int64
	// EagerThreshold is the encoded-size boundary between eager push
	// (small artifacts: shares, notarizations) and lazy advert/pull
	// (blocks). Default 1024 bytes.
	EagerThreshold int
	// RequestRetry is how long a lazy fetch waits for the requested
	// artifact before asking the next advertiser. One request is in
	// flight per ref at a time — without this, a burst of adverts for a
	// popular artifact (every neighbour advertises a new certificate
	// within one delay bound) triggers one full download per advertiser.
	// Default 150ms.
	RequestRetry time.Duration
	// MaxStore caps the artifact store (FIFO eviction). Default 65536.
	MaxStore int

	// ShareBatchWindow enables share batching: signature shares queue for
	// up to this long and leave as one ShareBundle per neighbour. Zero
	// disables batching (every share relays as its own frame).
	ShareBatchWindow time.Duration
	// AdaptiveBatch makes the batch window load-adaptive: a share that
	// arrives with the queue empty and no other share seen within the
	// last window relays immediately — an idle or lightly-loaded party
	// pays no batching latency and arms no flush timer — while shares
	// arriving in bursts batch as usual. Requires ShareBatchWindow > 0.
	AdaptiveBatch bool
	// MaxBatchShares flushes a pending batch early once it holds this
	// many shares, bounding latency and frame size under load. Default
	// max(64, 2·N): at least one statement's full quorum of shares must
	// fit in a batch, or a mid-round early flush relays the shares an
	// instant before the aggregation cut-off would have suppressed them.
	MaxBatchShares int

	// Aggregate enables eager relay-side aggregation of notarization and
	// finalization shares. Requires Keys.
	Aggregate bool
	// TrustShares asserts that every share reaching this wrapper has
	// already been signature-verified (a verification pipeline fronts the
	// gossip layer, or the deployment is an honest-only simulation).
	// Aggregation then combines without re-verifying, and beacon-share
	// relaying for a round stops once a reconstruction quorum (t+1) has
	// been forwarded. Never set this for raw network input: a forged
	// share would poison aggregates and the beacon cut-off.
	TrustShares bool
	// Keys is the cluster's public key material, needed by Aggregate for
	// thresholds and share verification.
	Keys *keys.Public

	// Outputs, when non-nil, enables beacon-output relaying: the first
	// party to recover a round's beacon gossips the single verifiable
	// output (types.BeaconOutput) and every relay forwards that one
	// message while suppressing the round's remaining share flood.
	// Received outputs are verified against the beacon's global key
	// before installation unless TrustShares is set. Only beacon
	// backends with third-party-verifiable outputs implement the
	// capability (see beacon.OutputSource); the engine's beacon source
	// and this field must be the same object.
	Outputs beacon.OutputSource
}

// withDefaults fills the zero-value knobs.
func (cfg Config) withDefaults() Config {
	if cfg.EagerThreshold == 0 {
		cfg.EagerThreshold = 1024
	}
	if cfg.MaxStore == 0 {
		cfg.MaxStore = 65536
	}
	if cfg.MaxBatchShares == 0 {
		cfg.MaxBatchShares = 64
		if 2*cfg.N > cfg.MaxBatchShares {
			cfg.MaxBatchShares = 2 * cfg.N
		}
	}
	if cfg.RequestRetry == 0 {
		cfg.RequestRetry = 150 * time.Millisecond
	}
	return cfg
}

// Validate checks the configuration. Fanout bounds are enforced, not
// clamped: a fanout the operator chose that cannot take effect is a
// deployment mistake worth surfacing.
func (cfg Config) Validate() error {
	if cfg.N < 1 {
		return fmt.Errorf("gossip: cluster size %d, need at least 1", cfg.N)
	}
	if cfg.Self < 0 || int(cfg.Self) >= cfg.N {
		return fmt.Errorf("gossip: self %d outside [0, %d)", cfg.Self, cfg.N)
	}
	lo := 2
	if cfg.N-1 < lo {
		lo = cfg.N - 1
	}
	if cfg.Fanout < lo || cfg.Fanout > cfg.N-1 {
		return fmt.Errorf("gossip: fanout %d outside [%d, %d] for %d parties", cfg.Fanout, lo, cfg.N-1, cfg.N)
	}
	if cfg.ShareBatchWindow < 0 {
		return fmt.Errorf("gossip: negative share batch window %v", cfg.ShareBatchWindow)
	}
	if cfg.RequestRetry < 0 {
		return fmt.Errorf("gossip: negative request retry %v", cfg.RequestRetry)
	}
	if cfg.MaxBatchShares < 0 {
		return fmt.Errorf("gossip: negative max batch shares %d", cfg.MaxBatchShares)
	}
	if cfg.AdaptiveBatch && cfg.ShareBatchWindow <= 0 {
		return fmt.Errorf("gossip: AdaptiveBatch requires ShareBatchWindow > 0")
	}
	if cfg.Aggregate && cfg.Keys == nil {
		return fmt.Errorf("gossip: Aggregate requires Keys")
	}
	if cfg.Keys != nil && cfg.Keys.N != cfg.N {
		return fmt.Errorf("gossip: Keys are for %d parties, config says %d", cfg.Keys.N, cfg.N)
	}
	return nil
}

// Topology builds the validated deterministic overlay: every party's
// neighbour list in a ring-plus-random-chords graph. Symmetric:
// j ∈ peers(i) iff i ∈ peers(j).
func (cfg Config) Topology() ([][]types.PartyID, error) {
	if err := cfg.withDefaults().Validate(); err != nil {
		return nil, err
	}
	return buildTopology(cfg.N, cfg.Fanout, cfg.Seed), nil
}

func buildTopology(n, fanout int, seed int64) [][]types.PartyID {
	adj := make([]map[types.PartyID]struct{}, n)
	for i := range adj {
		adj[i] = make(map[types.PartyID]struct{})
	}
	link := func(a, b int) {
		if a == b {
			return
		}
		adj[a][types.PartyID(b)] = struct{}{}
		adj[b][types.PartyID(a)] = struct{}{}
	}
	// Ring for guaranteed connectivity.
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	// Random chords until everyone reaches the fanout (or the graph is
	// complete).
	rng := rand.New(rand.NewSource(seed ^ 0x6f55a9))
	for i := 0; i < n; i++ {
		guard := 0
		for len(adj[i]) < fanout && guard < 10*n {
			link(i, rng.Intn(n))
			guard++
		}
	}
	out := make([][]types.PartyID, n)
	for i := range adj {
		peers := make([]types.PartyID, 0, len(adj[i]))
		for p := 0; p < n; p++ {
			if _, ok := adj[i][types.PartyID(p)]; ok {
				peers = append(peers, types.PartyID(p))
			}
		}
		out[i] = peers
	}
	return out
}

// pendingShare is one share awaiting a batch flush, with the peer it
// arrived from (excluded from its relay), or −1 for our own shares.
type pendingShare struct {
	msg  types.Message
	skip types.PartyID
}

// fetchState is one outstanding advert-driven fetch: the peers already
// asked, advertisers held in reserve, and the deadline after which the
// next reserve peer is asked (robustness against a non-answering or
// corrupt advertiser, without downloading one copy per advertiser).
type fetchState struct {
	asked   map[types.PartyID]struct{}
	reserve []types.PartyID
	retryAt time.Duration
}

// aggKey identifies one signing statement: the (round, proposer, block)
// triple under either the notarization or the finalization scheme.
type aggKey struct {
	final     bool
	round     types.Round
	proposer  types.PartyID
	blockHash hash.Digest
}

// aggEntry accumulates observed shares for a statement until a
// certificate exists (done), after which further shares are dead weight.
type aggEntry struct {
	sigs map[types.PartyID][]byte
	done bool
}

// aggRetainRounds bounds how long aggregation and beacon-relay state for
// old rounds is kept before Tick garbage-collects it.
const aggRetainRounds = 64

// Engine is the gossip wrapper.
type Engine struct {
	cfg   Config
	inner engine.Engine
	peers []types.PartyID

	seen  map[types.Ref]struct{}
	store map[types.Ref]types.Message
	order []types.Ref // FIFO for eviction
	// fetch tracks outstanding advert-driven downloads, one request in
	// flight per ref with further advertisers held in reserve.
	fetch map[types.Ref]*fetchState

	// Share batching state: queued shares, the deadline set when the
	// first one arrived, and (for AdaptiveBatch) when the last share was
	// seen — the idle detector.
	pending     []pendingShare
	flushAt     time.Duration
	lastShareAt time.Duration

	// Aggregation state per statement, and the count of beacon shares
	// relayed per round (for the TrustShares t+1 cut-off).
	agg         map[aggKey]*aggEntry
	beaconRelay map[types.Round]int
	// outputDone marks rounds whose beacon output has been gossiped or
	// installed: their share flood stops here.
	outputDone map[types.Round]struct{}

	out []engine.Output
}

// New builds the ICC1 dissemination wrapper around an engine, validating
// the configuration.
func New(cfg Config, inner engine.Engine) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:         cfg,
		inner:       inner,
		peers:       buildTopology(cfg.N, cfg.Fanout, cfg.Seed)[cfg.Self],
		seen:        make(map[types.Ref]struct{}),
		store:       make(map[types.Ref]types.Message),
		fetch:       make(map[types.Ref]*fetchState),
		agg:         make(map[aggKey]*aggEntry),
		beaconRelay: make(map[types.Round]int),
		outputDone:  make(map[types.Round]struct{}),
		// Start idle: under AdaptiveBatch the very first share relays
		// immediately instead of waiting out a full window.
		lastShareAt: -cfg.ShareBatchWindow,
	}, nil
}

// Wrap builds the wrapper, silently clamping an out-of-range fanout.
//
// Deprecated: use New, which reports configuration mistakes instead of
// papering over them.
func Wrap(cfg Config, inner engine.Engine) *Engine {
	if cfg.Fanout < 2 {
		cfg.Fanout = 2
	}
	if cfg.Fanout > cfg.N-1 {
		cfg.Fanout = cfg.N - 1
	}
	g, err := New(cfg, inner)
	if err != nil {
		// The clamp above removed every fanout-range failure; anything
		// left is a programming error at the call site.
		panic(err)
	}
	return g
}

// Peers returns this party's neighbour list.
func (g *Engine) Peers() []types.PartyID { return g.peers }

// ID implements engine.Engine.
func (g *Engine) ID() types.PartyID { return g.inner.ID() }

// CurrentRound implements engine.Engine.
func (g *Engine) CurrentRound() types.Round { return g.inner.CurrentRound() }

// NextWake implements engine.Engine: the inner engine's deadline, or the
// pending batch's flush deadline if that comes first.
func (g *Engine) NextWake(now time.Duration) (time.Duration, bool) {
	t, ok := g.inner.NextWake(now)
	if len(g.pending) > 0 {
		f := g.flushAt
		if f <= now {
			f = now + 1
		}
		if !ok || f < t {
			t, ok = f, true
		}
	}
	for _, f := range g.fetch {
		if len(f.reserve) == 0 {
			continue
		}
		r := f.retryAt
		if r <= now {
			r = now + 1
		}
		if !ok || r < t {
			t, ok = r, true
		}
	}
	return t, ok
}

// Init implements engine.Engine.
func (g *Engine) Init(now time.Duration) []engine.Output {
	g.disseminate(g.inner.Init(now), -1, now)
	g.maybeFlush(now)
	return g.drain()
}

// Tick implements engine.Engine.
func (g *Engine) Tick(now time.Duration) []engine.Output {
	g.disseminate(g.inner.Tick(now), -1, now)
	g.maybeFlush(now)
	g.retryFetches(now)
	g.gcRounds()
	return g.drain()
}

// HandleMessage implements engine.Engine: gossip control traffic is
// consumed here; artifacts are deduplicated, delivered to the inner
// engine, and relayed onward.
func (g *Engine) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	switch v := m.(type) {
	case *types.Advert:
		g.handleAdvert(from, v, now)
	case *types.Request:
		g.handleRequest(from, v)
	default:
		g.handleArtifact(from, m, now)
	}
	g.maybeFlush(now)
	return g.drain()
}

func (g *Engine) drain() []engine.Output {
	out := g.out
	g.out = nil
	return out
}

func (g *Engine) send(to types.PartyID, m types.Message) {
	g.out = append(g.out, engine.Unicast(to, m))
}

// disseminate converts the inner engine's outputs into gossip traffic.
// skip is a peer to exclude (the artifact's source), or -1.
func (g *Engine) disseminate(outs []engine.Output, skip types.PartyID, now time.Duration) {
	for _, o := range outs {
		if !o.Broadcast {
			// Unicasts (resync bundles, Byzantine wrappers) pass through
			// unchanged.
			g.out = append(g.out, o)
			continue
		}
		// Bundles are split so each artifact gossips under its own ref
		// (a bundle's block should go lazy while its signatures go
		// eager).
		if b, ok := o.Msg.(*types.Bundle); ok {
			for _, sub := range b.Messages {
				g.gossipArtifact(sub, skip, now)
			}
			continue
		}
		g.gossipArtifact(o.Msg, skip, now)
	}
}

// shareDisposition is routeShare's verdict on one artifact.
type shareDisposition int

const (
	// shareNone: not a signature share — take the generic relay path.
	shareNone shareDisposition = iota
	// shareRelay: a share, but batching is off — generic eager relay.
	shareRelay
	// shareBatched: queued into the pending ShareBundle; no frame now.
	shareBatched
	// shareCertified: the statement already has a certificate (created
	// here or observed in transit) — relaying or delivering more shares
	// for it is pure waste.
	shareCertified
	// shareDeliverOnly: don't relay, but still deliver to the inner
	// engine (a beacon share past the relay quota: the flood stops here,
	// yet the local beacon still wants every share it can get).
	shareDeliverOnly
)

// routeShare classifies an artifact and runs the share-path side effects:
// aggregation bookkeeping, the beacon relay cut-off, and batch queueing.
// skip is the source peer, or −1 for our own artifacts (which are never
// suppressed — only relayed traffic is).
func (g *Engine) routeShare(m types.Message, skip types.PartyID, now time.Duration) shareDisposition {
	switch v := m.(type) {
	case *types.NotarizationShare:
		if g.observeShare(false, v.Round, v.Proposer, v.BlockHash, v.Signer, v.Sig, now) && skip >= 0 {
			return shareCertified
		}
	case *types.FinalizationShare:
		if g.observeShare(true, v.Round, v.Proposer, v.BlockHash, v.Signer, v.Sig, now) && skip >= 0 {
			return shareCertified
		}
	case *types.BeaconShare:
		// Once the round's beacon output is known (recovered here or
		// received as a BeaconOutput), the one relayed output supersedes
		// the whole share flood. The output was verified before the mark
		// was set, so this cut-off is safe even for unverified input.
		if skip >= 0 && g.cfg.Outputs != nil {
			if _, done := g.outputDone[v.Round]; done {
				return shareDeliverOnly
			}
		}
		// Under TrustShares, t+1 relayed shares already let every party
		// reconstruct the round's beacon; the rest of the O(n) flood adds
		// nothing. Without it an adversary could spend the quota with
		// garbage shares, so the cut-off stays off for unverified input.
		if skip >= 0 && g.cfg.TrustShares {
			if g.beaconRelay[v.Round] >= types.BeaconQuorum(g.cfg.N) {
				return shareDeliverOnly
			}
			g.beaconRelay[v.Round]++
		}
	default:
		return shareNone
	}
	if g.cfg.ShareBatchWindow <= 0 {
		return shareRelay
	}
	// Adaptive mode: an isolated share on an otherwise idle party goes
	// out immediately — batching only kicks in when shares actually
	// arrive close together, so light load pays no window latency.
	if g.cfg.AdaptiveBatch && len(g.pending) == 0 && now >= g.lastShareAt+g.cfg.ShareBatchWindow {
		g.lastShareAt = now
		return shareRelay
	}
	g.lastShareAt = now
	if len(g.pending) == 0 {
		g.flushAt = now + g.cfg.ShareBatchWindow
	}
	g.pending = append(g.pending, pendingShare{msg: m, skip: skip})
	if len(g.pending) >= g.cfg.MaxBatchShares {
		g.flushShares()
	}
	return shareBatched
}

// observeShare feeds one notarization/finalization share into the
// aggregation state and reports whether the statement is already
// certified. Crossing the threshold combines the shares into the
// certificate, gossips it, and delivers it to the inner engine.
func (g *Engine) observeShare(final bool, k types.Round, prop types.PartyID, h hash.Digest, signer types.PartyID, sg []byte, now time.Duration) bool {
	if !g.cfg.Aggregate {
		return false
	}
	key := aggKey{final: final, round: k, proposer: prop, blockHash: h}
	e := g.agg[key]
	if e == nil {
		e = &aggEntry{sigs: make(map[types.PartyID][]byte)}
		g.agg[key] = e
	}
	if e.done {
		return true
	}
	if _, dup := e.sigs[signer]; !dup {
		e.sigs[signer] = sg
	}
	info, domain := g.cfg.Keys.Notary, types.DomainNotarization
	if final {
		info, domain = g.cfg.Keys.Final, types.DomainFinalization
	}
	if len(e.sigs) < info.Quorum() {
		return false
	}
	shares := make([]*aggsig.Share, 0, len(e.sigs))
	for s, sgn := range e.sigs {
		shares = append(shares, &aggsig.Share{Signer: int(s), Signature: sgn})
	}
	var agg aggsig.Certificate
	var err error
	if g.cfg.TrustShares {
		agg, err = info.CombineVerified(shares)
	} else {
		agg, err = info.Combine(domain, types.SigningBytes(k, prop, h), shares)
	}
	if err != nil {
		// Forged shares in the mix (only possible without TrustShares,
		// where Combine verifies and skips them). Keep accumulating: the
		// honest threshold is still reachable.
		return false
	}
	e.done = true
	e.sigs = nil
	var cert types.Message
	if final {
		cert = &types.Finalization{Round: k, Proposer: prop, BlockHash: h, Agg: agg.Encode()}
	} else {
		cert = &types.Notarization{Round: k, Proposer: prop, BlockHash: h, Agg: agg.Encode()}
	}
	// The certificate is our own new artifact: gossip it everywhere and
	// let the inner engine admit it (which may finish the round).
	g.gossipArtifact(cert, -1, now)
	g.disseminate(g.inner.HandleMessage(g.cfg.Self, cert, now), -1, now)
	return true
}

// noteCertificate marks a statement done when its certificate transits,
// so shares arriving after the certificate stop propagating.
func (g *Engine) noteCertificate(m types.Message) {
	if !g.cfg.Aggregate {
		return
	}
	var key aggKey
	switch v := m.(type) {
	case *types.Notarization:
		key = aggKey{round: v.Round, proposer: v.Proposer, blockHash: v.BlockHash}
	case *types.Finalization:
		key = aggKey{final: true, round: v.Round, proposer: v.Proposer, blockHash: v.BlockHash}
	default:
		return
	}
	e := g.agg[key]
	if e == nil {
		e = &aggEntry{}
		g.agg[key] = e
	}
	e.done = true
	e.sigs = nil
}

// gossipArtifact spreads one artifact we now hold.
func (g *Engine) gossipArtifact(m types.Message, skip types.PartyID, now time.Duration) {
	ref := types.RefOf(m)
	if _, dup := g.seen[ref]; dup {
		return
	}
	g.seen[ref] = struct{}{}
	g.put(ref, m)
	g.noteCertificate(m)
	switch g.routeShare(m, skip, now) {
	case shareBatched, shareCertified, shareDeliverOnly:
		return
	}
	g.relayRaw(m, ref, skip)
}

// relayRaw sends the artifact (eager) or its advert (lazy) to every peer
// except skip.
func (g *Engine) relayRaw(m types.Message, ref types.Ref, skip types.PartyID) {
	if len(types.Marshal(m)) <= g.cfg.EagerThreshold {
		for _, p := range g.peers {
			if p != skip {
				g.send(p, m)
			}
		}
		return
	}
	adv := &types.Advert{Refs: []types.Ref{ref}}
	for _, p := range g.peers {
		if p != skip {
			g.send(p, adv)
		}
	}
}

// put stores an artifact for serving, with FIFO eviction.
func (g *Engine) put(ref types.Ref, m types.Message) {
	if _, ok := g.store[ref]; ok {
		return
	}
	g.store[ref] = m
	g.order = append(g.order, ref)
	for len(g.order) > g.cfg.MaxStore {
		old := g.order[0]
		g.order = g.order[1:]
		delete(g.store, old)
	}
}

func (g *Engine) handleAdvert(from types.PartyID, adv *types.Advert, now time.Duration) {
	var want []types.Ref
	for _, ref := range adv.Refs {
		if _, have := g.store[ref]; have {
			continue
		}
		f := g.fetch[ref]
		if f == nil {
			f = &fetchState{asked: make(map[types.PartyID]struct{})}
			g.fetch[ref] = f
		}
		if _, dup := f.asked[from]; dup {
			continue
		}
		if len(f.asked) > 0 && now < f.retryAt {
			// A request is already in flight: hold this advertiser in
			// reserve instead of downloading a copy per advertiser.
			if !containsParty(f.reserve, from) {
				f.reserve = append(f.reserve, from)
			}
			continue
		}
		f.asked[from] = struct{}{}
		f.retryAt = now + g.cfg.RequestRetry
		want = append(want, ref)
	}
	if len(want) > 0 {
		g.send(from, &types.Request{Refs: want})
	}
}

// retryFetches re-requests stalled fetches from the next advertiser in
// reserve once the in-flight request's retry deadline passes.
func (g *Engine) retryFetches(now time.Duration) {
	for ref, f := range g.fetch {
		if len(f.reserve) == 0 || now < f.retryAt {
			continue
		}
		next := types.PartyID(-1)
		for len(f.reserve) > 0 {
			p := f.reserve[0]
			f.reserve = f.reserve[1:]
			if _, dup := f.asked[p]; !dup {
				next = p
				break
			}
		}
		if next < 0 {
			continue
		}
		f.asked[next] = struct{}{}
		f.retryAt = now + g.cfg.RequestRetry
		g.send(next, &types.Request{Refs: []types.Ref{ref}})
	}
}

func containsParty(list []types.PartyID, p types.PartyID) bool {
	for _, q := range list {
		if q == p {
			return true
		}
	}
	return false
}

func (g *Engine) handleRequest(from types.PartyID, req *types.Request) {
	for _, ref := range req.Refs {
		if m, ok := g.store[ref]; ok {
			g.send(from, m)
		}
	}
}

// handleArtifact processes a received artifact: dedup, relay to peers,
// deliver to the inner engine.
func (g *Engine) handleArtifact(from types.PartyID, m types.Message, now time.Duration) {
	if b, ok := m.(*types.ShareBundle); ok {
		// The bundle is transport framing, not an artifact: dedup and
		// relay operate on the individual shares it carries, so the same
		// share arriving in two differently-grouped bundles is still
		// suppressed.
		for _, sub := range b.Expand() {
			g.handleArtifact(from, sub, now)
		}
		return
	}
	if o, ok := m.(*types.BeaconOutput); ok {
		g.handleBeaconOutput(from, o, now)
		return
	}
	ref := types.RefOf(m)
	if _, dup := g.seen[ref]; dup {
		return
	}
	g.seen[ref] = struct{}{}
	g.put(ref, m)
	delete(g.fetch, ref)
	g.noteCertificate(m)
	// Relay onward before delivering (delivery may produce more output).
	switch g.routeShare(m, from, now) {
	case shareCertified:
		// The certificate supersedes the share for the relay AND for the
		// inner engine: it was delivered the moment it was created or
		// first transited, so this share would only burn a pool
		// verification.
		return
	case shareNone, shareRelay:
		g.relayRaw(m, ref, from)
	case shareBatched, shareDeliverOnly:
		// Queued for the bundle flush, or relay-capped: delivery proceeds.
	}
	// The inner engine's reactions are new artifacts of our own: gossip
	// them to all peers (including the artifact's source).
	g.disseminate(g.inner.HandleMessage(from, m, now), -1, now)
	// A delivered beacon share may have completed the round's quorum:
	// if the beacon is now recoverable, gossip the one verifiable output
	// so downstream relays stop flooding the remaining shares.
	if bs, ok := m.(*types.BeaconShare); ok {
		g.maybeEmitOutput(bs.Round, now)
	}
}

// handleBeaconOutput processes a received recovered beacon value: verify
// against the global key (unless shares are trusted), install it into
// the local beacon source, relay it onward, and stop relaying the
// round's shares. It is consumed here, not delivered to the inner
// engine — installation IS the delivery.
func (g *Engine) handleBeaconOutput(from types.PartyID, o *types.BeaconOutput, now time.Duration) {
	src := g.cfg.Outputs
	if src == nil {
		// Capability off (or beacon backend not output-verifiable): an
		// unverifiable blob from the network is dropped, and the round's
		// shares keep flowing as usual.
		return
	}
	ref := types.RefOf(o)
	if _, dup := g.seen[ref]; dup {
		return
	}
	if _, done := g.outputDone[o.Round]; done || src.Have(o.Round) {
		// Known round: nothing to install or relay (our own output
		// already made the rounds), but remember the dedup ref.
		g.seen[ref] = struct{}{}
		g.outputDone[o.Round] = struct{}{}
		return
	}
	if !g.cfg.TrustShares {
		if err := src.VerifyOutput(o.Round, o.Output); err != nil {
			// Forged — or ahead of us: verification needs R_{k−1}, which
			// we may not have yet. Not marking it seen lets a later copy
			// succeed once we catch up.
			return
		}
	}
	if err := src.InstallOutput(o.Round, o.Output); err != nil {
		return
	}
	g.seen[ref] = struct{}{}
	g.outputDone[o.Round] = struct{}{}
	g.put(ref, o)
	g.relayRaw(o, ref, from)
	// The beacon for this round just became known without any share
	// crossing the engine: poke it so a waiting round can proceed now
	// rather than at its next timer.
	g.disseminate(g.inner.Tick(now), -1, now)
}

// maybeEmitOutput gossips round k's recovered beacon output once, if the
// backend supports verifiable outputs and the round is recoverable.
func (g *Engine) maybeEmitOutput(k types.Round, now time.Duration) {
	src := g.cfg.Outputs
	if src == nil {
		return
	}
	if _, done := g.outputDone[k]; done {
		return
	}
	if _, ok := src.Reveal(k); !ok {
		return
	}
	out, ok := src.EncodeOutput(k)
	if !ok {
		return
	}
	g.outputDone[k] = struct{}{}
	g.gossipArtifact(&types.BeaconOutput{Round: k, Output: out}, -1, now)
}

// maybeFlush sends the pending ShareBundle batch once its window closed.
func (g *Engine) maybeFlush(now time.Duration) {
	if len(g.pending) > 0 && now >= g.flushAt {
		g.flushShares()
	}
}

// flushShares turns the pending shares into one ShareBundle per
// neighbour, excluding from each bundle the shares that neighbour sent
// us. Shares whose statement gained a certificate while they waited in
// the batch are dropped — downstream parties get (or already got) the
// certificate, so relaying the shares now would be pure dead weight. A
// batch that collapses to a single share for some peer goes out as the
// bare share — bundle framing would only add bytes.
func (g *Engine) flushShares() {
	pending := g.pending[:0]
	for _, ps := range g.pending {
		if !g.certified(ps.msg) {
			pending = append(pending, ps)
		}
	}
	g.pending = nil
	for _, p := range g.peers {
		b := &types.ShareBundle{}
		for _, ps := range pending {
			if ps.skip == p {
				continue
			}
			appendToBundle(b, ps.msg)
		}
		switch b.Shares() {
		case 0:
		case 1:
			g.send(p, b.Expand()[0])
		default:
			g.send(p, b)
		}
	}
}

// certified reports whether a queued share's statement already holds a
// certificate (combined here or observed in transit).
func (g *Engine) certified(m types.Message) bool {
	if !g.cfg.Aggregate {
		return false
	}
	var key aggKey
	switch v := m.(type) {
	case *types.NotarizationShare:
		key = aggKey{round: v.Round, proposer: v.Proposer, blockHash: v.BlockHash}
	case *types.FinalizationShare:
		key = aggKey{final: true, round: v.Round, proposer: v.Proposer, blockHash: v.BlockHash}
	default:
		return false
	}
	e := g.agg[key]
	return e != nil && e.done
}

// appendToBundle files one share into the bundle, grouping notarization
// and finalization shares by their statement.
func appendToBundle(b *types.ShareBundle, m types.Message) {
	switch v := m.(type) {
	case *types.NotarizationShare:
		b.Notar = addToGroups(b.Notar, v.Round, v.Proposer, v.BlockHash, v.Signer, v.Sig)
	case *types.FinalizationShare:
		b.Final = addToGroups(b.Final, v.Round, v.Proposer, v.BlockHash, v.Signer, v.Sig)
	case *types.BeaconShare:
		b.Beacon = append(b.Beacon, v)
	}
}

func addToGroups(groups []types.ShareGroup, k types.Round, prop types.PartyID, h hash.Digest, signer types.PartyID, sg []byte) []types.ShareGroup {
	for i := range groups {
		g := &groups[i]
		if g.Round == k && g.Proposer == prop && g.BlockHash == h {
			g.Signers = append(g.Signers, signer)
			g.Sigs = append(g.Sigs, sg)
			return groups
		}
	}
	return append(groups, types.ShareGroup{
		Round: k, Proposer: prop, BlockHash: h,
		Signers: []types.PartyID{signer}, Sigs: [][]byte{sg},
	})
}

// gcRounds drops aggregation and beacon-relay state for rounds far
// behind the inner engine's progress.
func (g *Engine) gcRounds() {
	cur := g.inner.CurrentRound()
	if cur <= aggRetainRounds {
		return
	}
	cut := cur - aggRetainRounds
	for k := range g.agg {
		if k.round < cut {
			delete(g.agg, k)
		}
	}
	for k := range g.beaconRelay {
		if k < cut {
			delete(g.beaconRelay, k)
		}
	}
	for k := range g.outputDone {
		if k < cut {
			delete(g.outputDone, k)
		}
	}
}

var _ engine.Engine = (*Engine)(nil)
