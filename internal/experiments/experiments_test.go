package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// The experiment functions run at a small Scale here: the tests verify
// that every experiment produces well-formed output and that the
// headline shapes hold; the full-scale numbers live in EXPERIMENTS.md.

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func parseDur(t *testing.T, s string) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return d
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "a note")
	out := tab.String()
	for _, want := range []string{"EX", "demo", "a", "bb", "1", "2", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestScale(t *testing.T) {
	if Scale(0.1).scaleInt(100) != 10 {
		t.Fatal("scale 0.1 of 100")
	}
	if Scale(0.001).scaleInt(100) != 1 {
		t.Fatal("floor of 1")
	}
	if Scale(1).scaleInt(100) != 100 || Scale(0).scaleInt(100) != 100 {
		t.Fatal("identity cases")
	}
}

func TestLatencyThroughputShape(t *testing.T) {
	tab := LatencyThroughput(0.15)
	if len(tab.Rows) != 15 { // 5 deltas × 3 variants
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		delta := parseDur(t, row[0])
		roundX := parseFloat(t, row[3])
		latencyX := parseFloat(t, row[5])
		variant := row[1]
		switch variant {
		case "ICC0":
			if roundX < 1.5 || roundX > 3 {
				t.Errorf("δ=%v ICC0 round time ×%.1fδ, want ≈2", delta, roundX)
			}
			if latencyX < 2 || latencyX > 4.5 {
				t.Errorf("δ=%v ICC0 latency ×%.1fδ, want ≈3", delta, latencyX)
			}
		case "ICC2":
			if roundX < 2.3 || roundX > 4.5 {
				t.Errorf("δ=%v ICC2 round time ×%.1fδ, want ≈3", delta, roundX)
			}
			if latencyX < 3 || latencyX > 6 {
				t.Errorf("δ=%v ICC2 latency ×%.1fδ, want ≈4", delta, latencyX)
			}
		}
	}
}

func TestMessageComplexityShape(t *testing.T) {
	tab := MessageComplexity(0.1)
	// msgs/n² must stay bounded as n grows (O(n²) signature).
	var ratios []float64
	for _, row := range tab.Rows {
		ratios = append(ratios, parseFloat(t, row[2]))
	}
	for i := 1; i < len(ratios); i++ {
		if ratios[i] > ratios[0]*3 {
			t.Fatalf("msgs/n² grows: %v", ratios)
		}
	}
}

func TestRoundComplexityShape(t *testing.T) {
	tab := RoundComplexity(0.05)
	if len(tab.Rows) == 0 {
		t.Fatal("no gap rows")
	}
	// Gap 0 (immediate finalization) must dominate.
	if tab.Rows[0][0] != "0" {
		t.Fatalf("first gap is %s, want 0", tab.Rows[0][0])
	}
	frac := parseFloat(t, tab.Rows[0][2])
	if frac < 0.5 {
		t.Fatalf("gap-0 fraction %.2f, expected majority", frac)
	}
}

func TestRobustnessShape(t *testing.T) {
	tab := Robustness(0.1)
	if len(tab.Rows) < 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Throughput decreases with corruption but never reaches zero.
	base := parseFloat(t, tab.Rows[0][2])
	last := parseFloat(t, tab.Rows[len(tab.Rows)-1][2])
	if last <= 0 {
		t.Fatal("throughput hit zero under corruption — not robust")
	}
	if last > base {
		t.Fatal("corruption increased throughput?")
	}
}

func TestResponsivenessShape(t *testing.T) {
	tab := Responsiveness(0.2)
	// ICC round time must stay flat as Δbnd grows; Tendermint must grow.
	first := parseDur(t, tab.Rows[0][1])
	last := parseDur(t, tab.Rows[len(tab.Rows)-1][1])
	if last > 3*first {
		t.Fatalf("ICC round time grew with Δbnd: %v -> %v", first, last)
	}
	tmFirst := parseDur(t, tab.Rows[0][2])
	tmLast := parseDur(t, tab.Rows[len(tab.Rows)-1][2])
	if tmLast < 3*tmFirst {
		t.Fatalf("Tendermint round time did not grow with Δbnd: %v -> %v", tmFirst, tmLast)
	}
}

func TestDisseminationShape(t *testing.T) {
	tab := Dissemination(0.25)
	// At the largest size, ICC0's max-party egress per S must exceed
	// ICC2's by a factor ≈ n/(n/(n−2t)) — i.e. the leader bottleneck.
	var icc0Max, icc2Max, icc2Mean float64
	for _, row := range tab.Rows {
		if row[0] != "1MiB" {
			continue
		}
		switch row[1] {
		case "ICC0":
			icc0Max = parseFloat(t, row[4])
		case "ICC2":
			icc2Max = parseFloat(t, row[4])
			icc2Mean = parseFloat(t, row[5])
		}
	}
	if icc0Max == 0 || icc2Max == 0 {
		t.Fatal("missing rows")
	}
	if icc0Max < 2*icc2Max {
		t.Fatalf("ICC2 did not relieve the leader bottleneck: ICC0 max %.1f·S vs ICC2 max %.1f·S", icc0Max, icc2Max)
	}
	// ICC2 per-party ≈ n/(n−2t) = 13/5 = 2.6 × S.
	if icc2Mean < 1.5 || icc2Mean > 5 {
		t.Fatalf("ICC2 mean per-party %.1f·S, want ≈2.6·S", icc2Mean)
	}
}

func TestBaselinesShape(t *testing.T) {
	tab := Baselines(0.15)
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	icc0Lat := parseDur(t, tab.Rows[0][2])
	hsLat := parseDur(t, tab.Rows[3][2])
	if hsLat < icc0Lat*3/2 {
		t.Fatalf("HotStuff latency %v not ≈2x ICC0's %v", hsLat, icc0Lat)
	}
}

func TestAblationShape(t *testing.T) {
	tab := AblationDelays(0.25)
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// ε=0 produces more blocks than ε=500ms.
	b0 := parseFloat(t, tab.Rows[0][1])
	b500 := parseFloat(t, tab.Rows[2][1])
	if b0 <= b500 {
		t.Fatalf("ε governor did not slow the protocol: %.1f vs %.1f blocks/s", b0, b500)
	}
	// Adaptive beats static on tail latency under mis-configured Δbnd.
	static := parseDur(t, tab.Rows[3][4])
	adaptive := parseDur(t, tab.Rows[4][4])
	if adaptive >= static {
		t.Fatalf("adaptive Δbnd p99 latency %v did not beat static %v", adaptive, static)
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 is slow; run without -short")
	}
	tab := Table1(0.05) // 15-second windows
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Within each subnet: load adds traffic; failures cut the block rate.
	for base := 0; base < 6; base += 3 {
		noLoad := parseFloat(t, tab.Rows[base][4])
		withLoad := parseFloat(t, tab.Rows[base+1][4])
		if withLoad <= noLoad {
			t.Errorf("rows %d: load did not add traffic (%.2f vs %.2f Mb/s)", base, withLoad, noLoad)
		}
		healthyRate := parseFloat(t, tab.Rows[base+1][2])
		failRate := parseFloat(t, tab.Rows[base+2][2])
		if failRate >= healthyRate {
			t.Errorf("rows %d: failures did not slow block rate (%.2f vs %.2f)", base, failRate, healthyRate)
		}
	}
}

func TestWeakAdaptiveAdversaryShape(t *testing.T) {
	tab := WeakAdaptiveAdversary(0.25)
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	iccBase := parseFloat(t, tab.Rows[0][2])
	iccK1 := parseFloat(t, tab.Rows[2][2])
	iccK2 := parseFloat(t, tab.Rows[3][2])
	hsMuted := parseFloat(t, tab.Rows[5][2])
	// κ=1 hurts ICC but keeps it live.
	if iccK1 <= 0 {
		t.Fatal("ICC stalled under κ=1 — robustness lost")
	}
	if iccK1 >= iccBase {
		t.Fatal("κ=1 adversary had no effect on ICC")
	}
	// κ=2 ("weak adaptive") leaves ICC at (near) full speed.
	if iccK2 < iccBase*0.8 {
		t.Fatalf("κ=2 should not hurt ICC: %.1f vs base %.1f", iccK2, iccBase)
	}
	// HotStuff with a public schedule collapses.
	if hsMuted > 0.2*parseFloat(t, tab.Rows[1][2]) {
		t.Fatalf("muted HotStuff still committing: %.1f", hsMuted)
	}
}

func TestPBFTFragilityShape(t *testing.T) {
	tab := PBFTFragility(0.25)
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	iccSlow := parseFloat(t, tab.Rows[2][3])
	pbftSlow := parseFloat(t, tab.Rows[5][3])
	// ICC with one slow party keeps most throughput (expected for n=7:
	// 6/7 rounds at 2δ, 1/7 at 2Δbnd+2δ ⇒ ≈58%); PBFT collapses.
	if iccSlow < 50 {
		t.Fatalf("ICC slow-leader throughput only %.0f%%", iccSlow)
	}
	if pbftSlow > 40 {
		t.Fatalf("PBFT slow-leader attack ineffective: %.0f%%", pbftSlow)
	}
	if iccSlow < 2*pbftSlow {
		t.Fatalf("robustness gap too small: ICC %.0f%% vs PBFT %.0f%%", iccSlow, pbftSlow)
	}
}
