package metrics

import (
	"fmt"
	"strconv"

	"icc/internal/obs"
	"icc/internal/types"
)

// TransportStats tracks transport-layer health: per-peer send-queue
// evictions, redial attempts, write failures and high-water queue
// depths, plus endpoint-wide inbox-overflow discards and runner-observed
// send errors. The counters live on an obs.Registry (a private one by
// default, or a shared node-wide registry via NewTransportStatsOn, in
// which case they appear in the node's Prometheus exposition as the
// icc_transport_* families). Faults are additionally traced onto an
// optional obs.Tracer. A nil *TransportStats is a valid no-op sink, so
// transport and runtime code records unconditionally.
type TransportStats struct {
	queueDropped  *obs.CounterVec
	redials       *obs.CounterVec
	writeErrors   *obs.CounterVec
	maxQueueDepth *obs.GaugeVec
	inboxOverflow *obs.Counter
	sendErrors    *obs.Counter
	tracer        *obs.Tracer
}

// NewTransportStats creates a counter set on a private registry.
func NewTransportStats() *TransportStats {
	return NewTransportStatsOn(obs.NewRegistry(), nil)
}

// NewTransportStatsOn registers the transport families on a shared
// registry and (optionally) traces faults onto tr. Registration is
// idempotent, so several endpoints may share one registry and aggregate.
func NewTransportStatsOn(reg *obs.Registry, tr *obs.Tracer) *TransportStats {
	return &TransportStats{
		queueDropped:  reg.CounterVec("icc_transport_queue_dropped_total", "Frames evicted from a peer's send queue on overflow.", "peer"),
		redials:       reg.CounterVec("icc_transport_redials_total", "Dial attempts per peer (the first dial counts too).", "peer"),
		writeErrors:   reg.CounterVec("icc_transport_write_errors_total", "Failed frame writes per peer.", "peer"),
		maxQueueDepth: reg.GaugeVec("icc_transport_max_queue_depth", "High-water send-queue depth per peer.", "peer"),
		inboxOverflow: reg.Counter("icc_transport_inbox_overflow_total", "Received messages discarded because the inbox was full."),
		sendErrors:    reg.Counter("icc_transport_send_errors_total", "Transport send failures observed by the runner."),
		tracer:        tr,
	}
}

func peerLabel(p types.PartyID) string { return strconv.Itoa(int(p)) }

// fault traces one transport fault event.
func (s *TransportStats) fault(detail string) {
	s.tracer.Record(obs.Event{Party: -1, Kind: obs.KindTransportFault, Detail: detail})
}

// QueueDrop records a frame evicted from peer p's send queue (overflow
// under the drop-oldest policy).
func (s *TransportStats) QueueDrop(p types.PartyID) {
	if s == nil {
		return
	}
	s.queueDropped.With(peerLabel(p)).Inc()
	s.fault("queue_drop peer=" + peerLabel(p))
}

// Redial records a dial attempt to peer p (the first dial counts too).
func (s *TransportStats) Redial(p types.PartyID) {
	if s == nil {
		return
	}
	s.redials.With(peerLabel(p)).Inc()
}

// WriteError records a failed frame write to peer p.
func (s *TransportStats) WriteError(p types.PartyID) {
	if s == nil {
		return
	}
	s.writeErrors.With(peerLabel(p)).Inc()
	s.fault("write_error peer=" + peerLabel(p))
}

// ObserveQueueDepth records the current depth of peer p's send queue;
// the per-peer high-water mark is retained.
func (s *TransportStats) ObserveQueueDepth(p types.PartyID, depth int) {
	if s == nil {
		return
	}
	s.maxQueueDepth.With(peerLabel(p)).SetMax(float64(depth))
}

// InboxOverflow records a received message discarded because the
// endpoint's inbox was full.
func (s *TransportStats) InboxOverflow() {
	if s == nil {
		return
	}
	s.inboxOverflow.Inc()
	s.fault("inbox_overflow")
}

// SendError records a transport send failure observed by the runner.
func (s *TransportStats) SendError() {
	if s == nil {
		return
	}
	s.sendErrors.Inc()
	s.fault("send_error")
}

// Snapshot exports the common map view (the same shape Registry and
// Recorder export): aggregate totals under short keys plus per-peer
// series. Safe on a nil receiver (empty snapshot).
func (s *TransportStats) Snapshot() obs.Snapshot {
	snap := obs.Snapshot{}
	if s == nil {
		return snap
	}
	d := s.Detail()
	snap["queue_dropped"] = float64(d.TotalQueueDropped)
	snap["redials"] = float64(d.TotalRedials)
	snap["write_errors"] = float64(d.TotalWriteErrors)
	snap["inbox_overflow"] = float64(d.InboxOverflow)
	snap["send_errors"] = float64(d.SendErrors)
	var maxDepth int64
	for p, v := range d.QueueDropped {
		snap[fmt.Sprintf("queue_dropped{peer=%q}", peerLabel(p))] = float64(v)
	}
	for p, v := range d.Redials {
		snap[fmt.Sprintf("redials{peer=%q}", peerLabel(p))] = float64(v)
	}
	for p, v := range d.WriteErrors {
		snap[fmt.Sprintf("write_errors{peer=%q}", peerLabel(p))] = float64(v)
	}
	for p, v := range d.MaxQueueDepth {
		snap[fmt.Sprintf("max_queue_depth{peer=%q}", peerLabel(p))] = float64(v)
		if v > maxDepth {
			maxDepth = v
		}
	}
	snap["max_queue_depth"] = float64(maxDepth)
	return snap
}

// TransportSnapshot is a structured point-in-time copy of the counters.
type TransportSnapshot struct {
	QueueDropped  map[types.PartyID]int64
	Redials       map[types.PartyID]int64
	WriteErrors   map[types.PartyID]int64
	MaxQueueDepth map[types.PartyID]int64

	TotalQueueDropped int64
	TotalRedials      int64
	TotalWriteErrors  int64
	InboxOverflow     int64
	SendErrors        int64
}

// Detail copies the counters into the structured per-peer form. Safe on
// a nil receiver (empty snapshot).
func (s *TransportStats) Detail() TransportSnapshot {
	snap := TransportSnapshot{
		QueueDropped:  map[types.PartyID]int64{},
		Redials:       map[types.PartyID]int64{},
		WriteErrors:   map[types.PartyID]int64{},
		MaxQueueDepth: map[types.PartyID]int64{},
	}
	if s == nil {
		return snap
	}
	peerID := func(label string) types.PartyID {
		n, _ := strconv.Atoi(label)
		return types.PartyID(n)
	}
	s.queueDropped.Each(func(lvs []string, v int64) {
		snap.QueueDropped[peerID(lvs[0])] = v
		snap.TotalQueueDropped += v
	})
	s.redials.Each(func(lvs []string, v int64) {
		snap.Redials[peerID(lvs[0])] = v
		snap.TotalRedials += v
	})
	s.writeErrors.Each(func(lvs []string, v int64) {
		snap.WriteErrors[peerID(lvs[0])] = v
		snap.TotalWriteErrors += v
	})
	s.maxQueueDepth.Each(func(lvs []string, v float64) {
		snap.MaxQueueDepth[peerID(lvs[0])] = int64(v)
	})
	snap.InboxOverflow = s.inboxOverflow.Value()
	snap.SendErrors = s.sendErrors.Value()
	return snap
}

// String renders the snapshot as one health line.
func (snap TransportSnapshot) String() string {
	var maxDepth int64
	for _, d := range snap.MaxQueueDepth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	return fmt.Sprintf("queue-dropped=%d redials=%d write-errors=%d max-queue=%d inbox-overflow=%d send-errors=%d",
		snap.TotalQueueDropped, snap.TotalRedials, snap.TotalWriteErrors,
		maxDepth, snap.InboxOverflow, snap.SendErrors)
}
