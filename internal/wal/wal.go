// Package wal implements the write-ahead log of the durability layer:
// an append-only, length-prefixed, CRC-checksummed segment log for the
// artifacts a party must not forget across a crash — pool artifacts it
// admitted, beacon shares it signed or received, and finalization
// aggregates.
//
// The central invariant the engine builds on top is sync-before-send:
// every artifact is appended at admission time but buffered in memory,
// and the engine calls Flush (group-commit: one write + one fsync for
// the whole batch) before any output leaves the process. A signature
// another party may have seen is therefore always on disk; shares that
// were lost in a crash were never sent, so a restarted party cannot be
// tricked into contradicting its pre-crash self.
//
// Crash anatomy, and why replay is safe:
//
//   - A record is framed as u32 length | u32 CRC-32 (IEEE) | payload.
//     A crash mid-write leaves a torn tail: a short frame or a CRC
//     mismatch. Open scans every segment, truncates the file at the
//     first bad frame, and deletes any later segments — replay then
//     sees exactly the durable prefix of the append order.
//   - Replay feeds each record back through the engine's ordinary
//     ingest path with output emission and share creation suppressed,
//     so recovery is idempotent: replaying twice (or replaying records
//     that also arrived from peers) only re-admits duplicates, which
//     every pool and beacon admission path already tolerates.
//
// A Log degrades instead of failing: if a write or fsync errors (disk
// full, injected fault), it stops persisting, counts the failure, and
// lets the node keep running memory-only — durability is a feature of
// this reproduction, not a safety precondition of the protocol.
//
// All methods are nil-safe no-ops on a nil *Log, so the engine wires
// the WAL unconditionally and configurations without one cost nothing.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"icc/internal/obs"
	"icc/internal/types"
)

// FaultHook injects I/O failures for chaos testing. It is consulted
// before each physical operation with op ∈ {"write", "sync"}; a non-nil
// return is treated exactly like the real syscall failing.
type FaultHook func(op string) error

// DefaultSegmentBytes is the rotation threshold for segment files.
const DefaultSegmentBytes = 4 << 20

// Options tunes a Log. The zero value selects defaults.
type Options struct {
	// SegmentBytes rotates to a fresh segment file once the current one
	// exceeds this size (0 → DefaultSegmentBytes). Rotation bounds how
	// much Prune can reclaim at once: only whole closed segments whose
	// every record is below the prune watermark are deleted.
	SegmentBytes int64
	// Registry receives the icc_wal_* instruments (nil → none).
	Registry *obs.Registry
	// Fault, when non-nil, is consulted before each write and sync.
	Fault FaultHook
}

// frameHeader is u32 payload length followed by u32 CRC-32 (IEEE).
const frameHeader = 8

// maxRecordBytes bounds a single record so a corrupt length prefix in a
// torn tail cannot trigger a huge allocation during Open. It matches
// the wire codec's own per-field cap.
const maxRecordBytes = 16 << 20

// segment is one on-disk log file plus the replay-derived facts Prune
// needs: the highest round any of its records mentions.
type segment struct {
	seq      uint64
	path     string
	size     int64
	maxRound types.Round
	records  int
}

// Log is a crash-consistent append-only message log. Create with Open;
// safe for concurrent use, though the engine drives it from one loop.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segs     []segment // closed segments, ascending seq
	cur      segment   // segment open for append
	f        *os.File
	pending  [][]byte // marshaled payloads awaiting group commit
	pendMax  types.Round
	degraded bool
	closed   bool

	appends     *obs.Counter
	appendBytes *obs.Counter
	syncs       *obs.Counter
	syncErrors  *obs.Counter
	replayed    *obs.Counter
	truncBytes  *obs.Counter
	segments    *obs.Gauge
	pendingG    *obs.Gauge
}

// Open creates or re-opens the log in dir, validating every segment and
// truncating the torn tail left by a crash: the file is cut at the
// first short or checksum-failing frame and any later segments are
// deleted, leaving exactly the durable prefix of the append order.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	l := &Log{dir: dir, opts: opts}
	if reg := opts.Registry; reg != nil {
		l.appends = reg.Counter("icc_wal_appends_total", "Records appended to the write-ahead log.")
		l.appendBytes = reg.Counter("icc_wal_append_bytes_total", "Payload bytes appended to the write-ahead log.")
		l.syncs = reg.Counter("icc_wal_syncs_total", "Group-commit flushes (write+fsync batches) of the write-ahead log.")
		l.syncErrors = reg.Counter("icc_wal_sync_errors_total", "Failed WAL writes or fsyncs; each one degrades the log to memory-only.")
		l.replayed = reg.Counter("icc_wal_replayed_records_total", "Records replayed from the write-ahead log at recovery.")
		l.truncBytes = reg.Counter("icc_wal_truncated_bytes_total", "Torn-tail bytes truncated from the write-ahead log on open.")
		l.segments = reg.Gauge("icc_wal_segments", "Segment files currently comprising the write-ahead log.")
		l.pendingG = reg.Gauge("icc_wal_pending_bytes", "Appended bytes buffered in memory awaiting the next group commit.")
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", seq))
}

// scan discovers, validates, and truncates the on-disk segments, then
// opens the tail segment for append.
func (l *Log) scan() error {
	names, err := filepath.Glob(filepath.Join(l.dir, "wal-*.seg"))
	if err != nil {
		return fmt.Errorf("wal: scan dir: %w", err)
	}
	sort.Strings(names)
	var segs []segment
	for _, path := range names {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(path), "wal-%d.seg", &seq); err != nil {
			continue // foreign file; leave it alone
		}
		segs = append(segs, segment{seq: seq, path: path})
	}
	for i := range segs {
		good, maxRound, records, torn, err := validateSegment(segs[i].path)
		if err != nil {
			return err
		}
		segs[i].size = good
		segs[i].maxRound = maxRound
		segs[i].records = records
		if torn > 0 {
			if err := os.Truncate(segs[i].path, good); err != nil {
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			l.truncBytes.Add(torn)
			// Everything after a torn segment is not a durable prefix of
			// the append order; drop it.
			for _, later := range segs[i+1:] {
				if fi, statErr := os.Stat(later.path); statErr == nil {
					l.truncBytes.Add(fi.Size())
				}
				if err := os.Remove(later.path); err != nil {
					return fmt.Errorf("wal: remove post-tear segment: %w", err)
				}
			}
			segs = segs[:i+1]
			break
		}
	}
	if len(segs) == 0 {
		segs = []segment{{seq: 1, path: segmentPath(l.dir, 1)}}
	}
	tail := segs[len(segs)-1]
	f, err := os.OpenFile(tail.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open tail segment: %w", err)
	}
	l.f = f
	l.cur = tail
	l.segs = segs[:len(segs)-1]
	l.segments.Set(float64(len(l.segs)) + 1)
	return nil
}

// validateSegment walks a segment's frames and returns the byte offset
// of the last good frame boundary, the highest round mentioned, the
// record count, and how many torn bytes follow the good prefix.
func validateSegment(path string) (good int64, maxRound types.Round, records int, torn int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	off := 0
	for {
		if len(data)-off < frameHeader {
			break
		}
		n := binary.BigEndian.Uint32(data[off:])
		sum := binary.BigEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || len(data)-off-frameHeader < int(n) {
			break
		}
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		if m, derr := types.Unmarshal(payload); derr == nil {
			if r := roundOf(m); r > maxRound {
				maxRound = r
			}
		}
		records++
		off += frameHeader + int(n)
	}
	return int64(off), maxRound, records, int64(len(data) - off), nil
}

// roundOf extracts the protocol round a message belongs to, for
// segment retention decisions. Unknown kinds map to round 0 and pin
// their segment until it also holds nothing newer — conservative, never
// wrong.
func roundOf(m types.Message) types.Round {
	switch v := m.(type) {
	case *types.BlockMsg:
		if v.Block != nil {
			return v.Block.Round
		}
	case *types.Authenticator:
		return v.Round
	case *types.NotarizationShare:
		return v.Round
	case *types.Notarization:
		return v.Round
	case *types.FinalizationShare:
		return v.Round
	case *types.Finalization:
		return v.Round
	case *types.BeaconShare:
		return v.Round
	case *types.CheckpointShare:
		return v.Round
	}
	return 0
}

// Append buffers one record for the next group commit. It never blocks
// and never touches the disk; durability happens at Flush. No-op when
// the log is nil, closed, or degraded.
func (l *Log) Append(m types.Message) {
	if l == nil || m == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.degraded {
		return
	}
	payload := types.Marshal(m)
	l.pending = append(l.pending, payload)
	l.pendingG.Add(float64(len(payload)))
	if r := roundOf(m); r > l.pendMax {
		l.pendMax = r
	}
}

// Flush group-commits every pending record: one buffered write of all
// frames followed by one fsync, then segment rotation if the tail grew
// past SegmentBytes. On any failure the log degrades to memory-only
// (the node keeps running; icc_wal_sync_errors_total counts the event).
// Returns false if the log is degraded (now or before).
func (l *Log) Flush() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.degraded {
		return !l.degraded
	}
	if len(l.pending) == 0 {
		return true
	}
	var buf []byte
	var payloadBytes int64
	for _, payload := range l.pending {
		var hdr [frameHeader]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		payloadBytes += int64(len(payload))
	}
	count := len(l.pending)
	l.pending = l.pending[:0]
	l.pendingG.Set(0)
	if l.pendMax > l.cur.maxRound {
		l.cur.maxRound = l.pendMax
	}
	l.pendMax = 0
	if err := l.faultOr("write", func() error {
		_, werr := l.f.Write(buf)
		return werr
	}); err != nil {
		l.degrade()
		return false
	}
	if err := l.faultOr("sync", l.f.Sync); err != nil {
		l.degrade()
		return false
	}
	l.cur.size += int64(len(buf))
	l.cur.records += count
	l.appends.Add(int64(count))
	l.appendBytes.Add(payloadBytes)
	l.syncs.Inc()
	if l.cur.size >= l.opts.SegmentBytes {
		l.rotate()
	}
	return true
}

func (l *Log) faultOr(op string, real func() error) error {
	if l.opts.Fault != nil {
		if err := l.opts.Fault(op); err != nil {
			return err
		}
	}
	return real()
}

// degrade flips the log to memory-only mode. Caller holds l.mu.
func (l *Log) degrade() {
	l.degraded = true
	l.syncErrors.Inc()
	l.pending = nil
	l.pendingG.Set(0)
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
}

// rotate closes the current segment and starts the next. Caller holds
// l.mu; the current segment is already synced.
func (l *Log) rotate() {
	f, err := os.OpenFile(segmentPath(l.dir, l.cur.seq+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.degrade()
		return
	}
	_ = l.f.Close()
	l.segs = append(l.segs, l.cur)
	l.f = f
	l.cur = segment{seq: l.cur.seq + 1, path: segmentPath(l.dir, l.cur.seq+1)}
	l.segments.Set(float64(len(l.segs)) + 1)
}

// Replay streams every durable record, in append order, through fn.
// Call it once, after Open and before the first Append, feeding the
// engine's recovery ingest. Records that fail to decode (a kind from a
// future version, say) are skipped, not fatal.
func (l *Log) Replay(fn func(types.Message)) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	files := make([]string, 0, len(l.segs)+1)
	for _, s := range l.segs {
		files = append(files, s.path)
	}
	files = append(files, l.cur.path)
	l.mu.Unlock()
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // fresh tail segment, never written
			}
			return fmt.Errorf("wal: replay read: %w", err)
		}
		off := 0
		for len(data)-off >= frameHeader {
			n := binary.BigEndian.Uint32(data[off:])
			if n > maxRecordBytes || len(data)-off-frameHeader < int(n) {
				break // scan already truncated; defensive
			}
			payload := data[off+frameHeader : off+frameHeader+int(n)]
			off += frameHeader + int(n)
			m, derr := types.Unmarshal(payload)
			if derr != nil {
				continue
			}
			l.replayed.Inc()
			fn(m)
		}
	}
	return nil
}

// Prune deletes closed segments every record of which is below the
// given round — called after a checkpoint makes the covered history
// redundant. The open tail segment is never deleted.
func (l *Log) Prune(before types.Round) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := l.segs[:0]
	for _, s := range l.segs {
		if s.maxRound < before {
			_ = os.Remove(s.path)
			continue
		}
		keep = append(keep, s)
	}
	l.segs = keep
	l.segments.Set(float64(len(l.segs)) + 1)
}

// Degraded reports whether the log has stopped persisting after an I/O
// failure.
func (l *Log) Degraded() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// PendingRecords reports records appended but not yet group-committed
// (for tests asserting the group-commit batching).
func (l *Log) PendingRecords() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// SegmentCount reports the number of on-disk segment files.
func (l *Log) SegmentCount() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs) + 1
}

// Crash simulates kill−9 for tests: the file descriptor is abandoned
// without flushing, so records appended since the last Flush are lost
// exactly as they would be in a real crash. The Log is unusable after.
func (l *Log) Crash() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.pending = nil
	if l.f != nil {
		_ = l.f.Close() // Close without Sync: the OS may or may not have the bytes
		l.f = nil
	}
}

// Close flushes pending records and closes the log. Gauges are zeroed
// (the PR 5 convention: a closed component reports no standing state).
// Safe to call more than once.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.f != nil {
		err = l.f.Close()
		l.f = nil
	}
	l.segments.Set(0)
	l.pendingG.Set(0)
	return err
}
