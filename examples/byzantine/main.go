// Byzantine: drive an ICC cluster through hostile conditions in the
// deterministic simulator — an equivocating proposer, a silent leader,
// a crashed party (t = 3 of n = 10 corrupt, one short of the n/3 bound),
// plus a window of full network asynchrony — and verify the paper's
// guarantees: safety never breaks (P2), every round still adds a block
// (P1), and the corrupt leaders merely slow their own rounds down
// ("robust consensus", paper §1).
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"
	"time"

	"icc"
	"icc/internal/harness"
	"icc/internal/simnet"
	"icc/internal/types"
)

func main() {
	sim, err := icc.NewSim(icc.SimOptions{
		N:    10,
		Seed: 2026,
		// δ jitters around 15 ms; one 2-second asynchrony window.
		Delay: &simnet.AsyncWindows{
			Inner:   simnet.Uniform{Min: 5 * time.Millisecond, Max: 25 * time.Millisecond},
			Windows: []simnet.Window{{From: 3 * time.Second, To: 5 * time.Second}},
			Extra:   300 * time.Millisecond,
		},
		DeltaBound: 50 * time.Millisecond,
		Behaviors: map[types.PartyID]harness.Behavior{
			1: harness.Equivocator,  // proposes conflicting blocks to each half
			4: harness.SilentLeader, // never proposes at all
			7: harness.Crash,        // dead from the start
		},
		SimBeacon: true,
	})
	if err != nil {
		log.Fatalf("building simulation: %v", err)
	}

	fmt.Println("running 10 parties for 20 simulated seconds:")
	fmt.Println("  party 1 equivocates, party 4 never proposes, party 7 is crashed")
	fmt.Println("  network fully asynchronous from t=3s to t=5s")
	sim.Start()
	sim.Net.Run(20 * time.Second)

	if err := sim.CheckSafety(); err != nil {
		log.Fatalf("SAFETY VIOLATION: %v", err)
	}
	s := sim.Rec.Summarize()
	fmt.Printf("\ncommitted blocks:   %d (%.1f blocks/s)\n", s.CommittedBlocks, float64(s.CommittedBlocks)/20)
	fmt.Printf("commit latency:     p50 %v, p99 %v\n", s.P50Latency.Round(time.Millisecond), s.P99Latency.Round(time.Millisecond))
	fmt.Println("safety:             OK — all honest parties committed one consistent chain")

	// Forensics: whose blocks made it into the chain?
	perProposer := map[types.PartyID]int{}
	for _, b := range sim.Committed(0) {
		perProposer[b.Proposer]++
	}
	fmt.Println("\ncommitted blocks by proposer:")
	for p := 0; p < 10; p++ {
		pid := types.PartyID(p)
		note := ""
		switch pid {
		case 1:
			note = "  (equivocator — honest parties disqualified its double proposals)"
		case 4:
			note = "  (silent leader — never proposed)"
		case 7:
			note = "  (crashed)"
		}
		fmt.Printf("  party %d: %3d blocks%s\n", p, perProposer[pid], note)
	}
	if perProposer[4]+perProposer[7] > 0 {
		log.Fatal("a silent/crashed party's block was committed?!")
	}
	fmt.Println("\nliveness held: rounds led by corrupt parties fell through to honest proposers")
}
