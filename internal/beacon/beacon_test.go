package beacon

import (
	"crypto/rand"
	"testing"
	"testing/quick"

	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/types"
)

// cluster builds one Beacon per party sharing the same key material.
func cluster(t testing.TB, n int) []*Beacon {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	bs := make([]*Beacon, n)
	for i := 0; i < n; i++ {
		bs[i] = New(pub.Beacon, privs[i].Beacon, types.PartyID(i), pub.GenesisSeed)
	}
	return bs
}

// advance pushes every party's share for round k to every other party and
// reveals R_k everywhere.
func advance(t testing.TB, bs []*Beacon, k types.Round) {
	t.Helper()
	shares := make([]*types.BeaconShare, len(bs))
	for i, b := range bs {
		s, err := b.ShareForRound(k)
		if err != nil {
			t.Fatalf("party %d share for round %d: %v", i, k, err)
		}
		shares[i] = s
	}
	for _, b := range bs {
		for _, s := range shares {
			if _, err := b.AddShare(s); err != nil {
				t.Fatal(err)
			}
		}
		if _, ok := b.Reveal(k); !ok {
			t.Fatalf("reveal round %d failed", k)
		}
	}
}

func TestBeaconAgreesAcrossParties(t *testing.T) {
	bs := cluster(t, 4)
	for k := types.Round(1); k <= 5; k++ {
		advance(t, bs, k)
		d0, _ := bs[0].Digest(k)
		for i, b := range bs {
			d, ok := b.Digest(k)
			if !ok || d != d0 {
				t.Fatalf("party %d disagrees on R_%d", i, k)
			}
		}
	}
}

func TestRevealNeedsQuorum(t *testing.T) {
	bs := cluster(t, 7) // t=2, quorum=3
	s0, err := bs[0].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := bs[1].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	b := bs[6]
	if _, err := b.AddShare(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddShare(s1); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Reveal(1); ok {
		t.Fatal("revealed with only 2 of 3 required shares")
	}
	s2, err := bs[2].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddShare(s2); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Reveal(1); !ok {
		t.Fatal("failed to reveal with exactly t+1 shares")
	}
}

func TestRevealSurvivesCorruptShares(t *testing.T) {
	bs := cluster(t, 4) // t=1, quorum=2
	b := bs[3]
	// A garbage share from a corrupt party must not block revelation.
	garbage := &types.BeaconShare{Round: 1, Signer: 0, Share: make([]byte, 50)}
	if _, err := b.AddShare(garbage); err == nil {
		t.Fatal("malformed share accepted")
	}
	// A well-formed share signed with the wrong key is caught at Combine.
	wrongKey, err := bs[1].ShareForRound(1)
	if err != nil {
		t.Fatal(err)
	}
	wrongKey.Signer = 0 // claim to be party 0
	if _, err := b.AddShare(wrongKey); err != nil {
		t.Fatal(err) // structurally fine, accepted...
	}
	s1, _ := bs[1].ShareForRound(1)
	s2, _ := bs[2].ShareForRound(1)
	if _, err := b.AddShare(s1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddShare(s2); err != nil {
		t.Fatal(err)
	}
	d, ok := b.Reveal(1)
	if !ok {
		t.Fatal("reveal failed despite 2 honest shares")
	}
	// ...but the revealed value matches an all-honest computation.
	advance(t, bs[:3], 1)
	want, _ := bs[0].Digest(1)
	if d != want {
		t.Fatal("corrupt share changed the beacon value")
	}
}

func TestShareRequiresPreviousValue(t *testing.T) {
	bs := cluster(t, 4)
	if _, err := bs[0].ShareForRound(2); err == nil {
		t.Fatal("signed round-2 share without R_1")
	}
	advance(t, bs, 1)
	if _, err := bs[0].ShareForRound(2); err != nil {
		t.Fatalf("cannot sign round-2 share after R_1: %v", err)
	}
}

func TestLateVerification(t *testing.T) {
	// A lagging party receives round-2 shares before it can verify them
	// (it lacks R_1); once it reveals R_1 the round-2 shares work.
	bs := cluster(t, 4)
	lag := bs[3]
	advance(t, bs[:3], 1)
	var round2 []*types.BeaconShare
	for _, b := range bs[:3] {
		s, err := b.ShareForRound(2)
		if err != nil {
			t.Fatal(err)
		}
		round2 = append(round2, s)
	}
	for _, s := range round2 {
		if _, err := lag.AddShare(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := lag.Reveal(2); ok {
		t.Fatal("revealed R_2 without R_1")
	}
	// Now deliver round-1 shares.
	for _, b := range bs[:3] {
		s, err := b.ShareForRound(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lag.AddShare(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := lag.Reveal(1); !ok {
		t.Fatal("reveal R_1 failed")
	}
	d2, ok := lag.Reveal(2)
	if !ok {
		t.Fatal("reveal R_2 failed after catching up")
	}
	advance(t, bs[:3], 2)
	want, ok := bs[0].Digest(2)
	if !ok {
		t.Fatal("reference party has no R_2")
	}
	if d2 != want {
		t.Fatal("lagging party derived different R_2")
	}
}

func TestPermutationConsistency(t *testing.T) {
	bs := cluster(t, 7)
	advance(t, bs, 1)
	p0, ok := bs[0].Permutation(1)
	if !ok {
		t.Fatal("no permutation")
	}
	for i, b := range bs {
		p, ok := b.Permutation(1)
		if !ok {
			t.Fatalf("party %d has no permutation", i)
		}
		for r := range p {
			if p[r] != p0[r] {
				t.Fatalf("party %d permutation differs at rank %d", i, r)
			}
		}
	}
	leader, ok := bs[0].Leader(1)
	if !ok || leader != p0[0] {
		t.Fatal("leader mismatch")
	}
	r, ok := bs[0].RankOf(1, leader)
	if !ok || r != 0 {
		t.Fatal("leader rank != 0")
	}
}

func TestPermutationFromDigestIsBijective(t *testing.T) {
	f := func(seed [32]byte, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		p := PermutationFromDigest(hash.Digest(seed), n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationsVaryAcrossRounds(t *testing.T) {
	bs := cluster(t, 13)
	same := 0
	const rounds = 10
	for k := types.Round(1); k <= rounds; k++ {
		advance(t, bs, k)
	}
	for k := types.Round(1); k < rounds; k++ {
		a, _ := bs[0].Permutation(k)
		b, _ := bs[0].Permutation(k + 1)
		identical := true
		for i := range a {
			if a[i] != b[i] {
				identical = false
				break
			}
		}
		if identical {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d consecutive rounds had identical permutations of 13 parties", same)
	}
}

func TestLeaderDistributionRoughlyUniform(t *testing.T) {
	// Over many independent digests, each of n parties should lead
	// roughly 1/n of the time.
	const n, trials = 5, 5000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		d := hash.SumUint64(hash.DomainRanking, uint64(i))
		p := PermutationFromDigest(d, n)
		counts[p[0]]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*7/10 || c > want*13/10 {
			t.Fatalf("party %d led %d times, expected ≈%d", i, c, want)
		}
	}
}

func TestAddShareValidation(t *testing.T) {
	bs := cluster(t, 4)
	if _, err := bs[0].AddShare(&types.BeaconShare{Round: 1, Signer: 99, Share: nil}); err == nil {
		t.Fatal("out-of-range signer accepted")
	}
	if _, err := bs[0].AddShare(&types.BeaconShare{Round: 0, Signer: 1, Share: nil}); err == nil {
		t.Fatal("genesis-round share accepted")
	}
}

func TestPrune(t *testing.T) {
	bs := cluster(t, 4)
	for k := types.Round(1); k <= 3; k++ {
		advance(t, bs, k)
	}
	bs[0].Prune(3)
	if bs[0].ShareCount(1) != 0 || bs[0].ShareCount(2) != 0 {
		t.Fatal("prune left old shares")
	}
	// Digests survive pruning: chain integrity.
	if _, ok := bs[0].Digest(3); !ok {
		t.Fatal("prune removed digest")
	}
	if _, err := bs[0].ShareForRound(4); err != nil {
		t.Fatalf("cannot continue after prune: %v", err)
	}
}
