package statemachine

import (
	"sync"

	"icc/internal/crypto/hash"
	"icc/internal/types"
)

// Queue is a thread-safe pending-command queue implementing the
// consensus engine's PayloadSource. GetPayload batches pending commands,
// skipping any command already present in the chain being extended
// (within DedupDepth ancestor blocks).
type Queue struct {
	mu      sync.Mutex
	pending []Command
	// inFlight tracks identities currently pending, to reject duplicate
	// submissions.
	inFlight map[ident]struct{}

	// MaxBatch bounds commands per payload (default 1024).
	MaxBatch int
	// MaxBytes bounds the encoded payload size (default 4 MiB).
	MaxBytes int
	// DedupDepth bounds how many ancestor blocks are consulted for
	// duplicate suppression (default 64).
	DedupDepth int
}

// NewQueue creates a Queue with default limits.
func NewQueue() *Queue {
	return &Queue{
		inFlight:   make(map[ident]struct{}),
		MaxBatch:   1024,
		MaxBytes:   4 << 20,
		DedupDepth: 64,
	}
}

// Submit enqueues a command. Returns false if an identical (client, seq)
// command is already pending.
func (q *Queue) Submit(c Command) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	id := ident{c.Client, c.Seq}
	if _, dup := q.inFlight[id]; dup {
		return false
	}
	q.inFlight[id] = struct{}{}
	q.pending = append(q.pending, c)
	return true
}

// Len returns the number of pending commands.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// MarkCommitted removes the commands of a committed payload from the
// queue (they no longer need proposing).
func (q *Queue) MarkCommitted(payload []byte) {
	cmds, err := DecodePayload(payload)
	if err != nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	drop := make(map[ident]struct{}, len(cmds))
	for _, c := range cmds {
		drop[ident{c.Client, c.Seq}] = struct{}{}
	}
	kept := q.pending[:0]
	for _, c := range q.pending {
		id := ident{c.Client, c.Seq}
		if _, gone := drop[id]; gone {
			delete(q.inFlight, id)
			continue
		}
		kept = append(kept, c)
	}
	q.pending = kept
}

// GetPayload implements core.PayloadSource.
func (q *Queue) GetPayload(_ types.Round, parent *types.Block, lookup func(hash.Digest) *types.Block) []byte {
	inChain := q.chainIdents(parent, lookup)
	q.mu.Lock()
	defer q.mu.Unlock()
	var batch []Command
	bytes := 4
	for _, c := range q.pending {
		if len(batch) >= q.MaxBatch || bytes > q.MaxBytes {
			break
		}
		if _, dup := inChain[ident{c.Client, c.Seq}]; dup {
			continue
		}
		batch = append(batch, c)
		bytes += 17 + 8 + len(c.Key) + len(c.Value)
	}
	if len(batch) == 0 {
		return nil
	}
	return EncodePayload(batch)
}

// chainIdents collects the command identities of up to DedupDepth
// ancestors ending at parent.
func (q *Queue) chainIdents(parent *types.Block, lookup func(hash.Digest) *types.Block) map[ident]struct{} {
	out := make(map[ident]struct{})
	cur := parent
	for depth := 0; cur != nil && !cur.IsRoot() && depth < q.DedupDepth; depth++ {
		if cmds, err := DecodePayload(cur.Payload); err == nil {
			for _, c := range cmds {
				out[ident{c.Client, c.Seq}] = struct{}{}
			}
		}
		if lookup == nil {
			break
		}
		cur = lookup(cur.ParentHash)
	}
	return out
}
