package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"icc/internal/crypto/hash"
	"icc/internal/obs"
	"icc/internal/types"
)

func share(k types.Round, p types.PartyID) *types.BeaconShare {
	return &types.BeaconShare{Round: k, Signer: p, Share: []byte{byte(k), byte(p), 3, 4}}
}

func nshare(k types.Round) *types.NotarizationShare {
	return &types.NotarizationShare{Round: k, Proposer: 1, BlockHash: hash.SumUint64(hash.DomainBlock, uint64(k)), Signer: 0, Sig: []byte{9, 9}}
}

func replayAll(t *testing.T, l *Log) []types.Message {
	t.Helper()
	var got []types.Message
	if err := l.Replay(func(m types.Message) { got = append(got, m) }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := []types.Message{share(1, 0), nshare(1), share(2, 1), &types.Finalization{Round: 1, Proposer: 2, Agg: []byte{1}}}
	for _, m := range want {
		l.Append(m)
	}
	if !l.Flush() {
		t.Fatal("flush failed")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(types.Marshal(got[i])) != string(types.Marshal(want[i])) {
			t.Fatalf("record %d mismatch: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Append(share(1, 0))
	l.Append(share(2, 0))
	l.Flush()
	l.Close()

	// Simulate a crash mid-append: garbage after the last good frame.
	path := segmentPath(dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open raw: %v", err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 42, 0xde, 0xad}); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	f.Close()

	reg2 := obs.NewRegistry()
	l2, err := Open(dir, Options{Registry: reg2})
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); len(got) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(got))
	}
	// The torn bytes must be physically gone so appends continue cleanly.
	l2.Append(share(3, 0))
	if !l2.Flush() {
		t.Fatal("flush after truncation failed")
	}
	l2.Close()
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer l3.Close()
	if got := replayAll(t, l3); len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
}

func TestCorruptMiddleDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1}) // rotate after every flush
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for k := types.Round(1); k <= 3; k++ {
		l.Append(share(k, 0))
		l.Flush()
	}
	if l.SegmentCount() < 3 {
		t.Fatalf("expected ≥3 segments, got %d", l.SegmentCount())
	}
	l.Close()

	// Corrupt the first segment's checksum byte.
	path := segmentPath(dir, 1)
	data, _ := os.ReadFile(path)
	data[5] ^= 0xff
	os.WriteFile(path, data, 0o644)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); len(got) != 0 {
		t.Fatalf("corrupt first record should leave no durable prefix, replayed %d", len(got))
	}
}

func TestGroupCommitBatching(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append(share(types.Round(i+1), 0))
	}
	if n := l.PendingRecords(); n != 10 {
		t.Fatalf("pending = %d, want 10", n)
	}
	snap := reg.Snapshot()
	if snap["icc_wal_syncs_total"] != 0 {
		t.Fatal("no sync should have happened before Flush")
	}
	l.Flush()
	snap = reg.Snapshot()
	if got := snap["icc_wal_syncs_total"]; got != 1 {
		t.Fatalf("ten appends should group-commit in 1 sync, got %v", got)
	}
	if got := snap["icc_wal_appends_total"]; got != 10 {
		t.Fatalf("appends counter = %v, want 10", got)
	}
}

func TestCrashLosesOnlyUnflushed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Append(share(1, 0))
	l.Flush()
	l.Append(share(2, 0)) // never flushed: must be lost
	l.Crash()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want exactly the flushed one", len(got))
	}
	if got[0].(*types.BeaconShare).Round != 1 {
		t.Fatalf("wrong surviving record: %v", got[0])
	}
}

func TestPruneRemovesWholeColdSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for k := types.Round(1); k <= 5; k++ {
		l.Append(share(k, 0))
		l.Flush() // each flush rotates (SegmentBytes: 1)
	}
	before := l.SegmentCount()
	if before < 5 {
		t.Fatalf("expected ≥5 segments, got %d", before)
	}
	l.Prune(4) // segments holding only rounds <4 go
	after := l.SegmentCount()
	if after >= before {
		t.Fatalf("prune removed nothing: %d → %d", before, after)
	}
	got := replayAll(t, l)
	for _, m := range got {
		if r := m.(*types.BeaconShare).Round; r < 4 {
			// Records below the watermark may survive only if they share a
			// segment with newer ones; with per-flush rotation they must not.
			t.Fatalf("round-%d record survived Prune(4)", r)
		}
	}
}

func TestFaultDegradesToMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	boom := errors.New("injected")
	fail := false
	l, err := Open(dir, Options{
		Registry: reg,
		Fault: func(op string) error {
			if fail && op == "sync" {
				return boom
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Append(share(1, 0))
	if !l.Flush() {
		t.Fatal("healthy flush failed")
	}
	fail = true
	l.Append(share(2, 0))
	if l.Flush() {
		t.Fatal("flush should report failure under injected fsync fault")
	}
	if !l.Degraded() {
		t.Fatal("log should be degraded after sync failure")
	}
	// Degraded mode: appends and flushes become no-ops, never panics.
	l.Append(share(3, 0))
	if l.Flush() {
		t.Fatal("degraded flush must keep reporting failure")
	}
	if got := reg.Snapshot()["icc_wal_sync_errors_total"]; got != 1 {
		t.Fatalf("sync_errors = %v, want 1", got)
	}
	l.Close()

	// The pre-fault record is durable; the batch whose fsync failed may
	// or may not have reached the disk (the bytes were written before the
	// sync failed — exactly the real-world ambiguity). What must NOT
	// survive is anything appended after the log degraded.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) == 0 {
		t.Fatal("pre-fault record lost")
	}
	for _, m := range got {
		if m.(*types.BeaconShare).Round == 3 {
			t.Fatal("record appended after degrade must not be durable")
		}
	}
}

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Append(share(1, 0))
	if !l.Flush() {
		t.Fatal("nil flush should succeed")
	}
	l.Prune(10)
	l.Crash()
	if err := l.Close(); err != nil {
		t.Fatalf("nil close: %v", err)
	}
	if err := l.Replay(func(types.Message) { t.Fatal("nil replay fed a record") }); err != nil {
		t.Fatalf("nil replay: %v", err)
	}
	if l.Degraded() || l.PendingRecords() != 0 || l.SegmentCount() != 0 {
		t.Fatal("nil accessors should be zero")
	}
}

func TestCloseZeroesGauges(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.Append(share(1, 0))
	l.Close()
	snap := reg.Snapshot()
	if v := snap["icc_wal_segments"]; v != 0 {
		t.Fatalf("icc_wal_segments = %v after Close, want 0", v)
	}
	if v := snap["icc_wal_pending_bytes"]; v != 0 {
		t.Fatalf("icc_wal_pending_bytes = %v after Close, want 0", v)
	}
}

// FuzzWALReplay feeds arbitrary bytes to Open as a segment file: however
// mangled the tail is (crash mid-append, disk garbage), Open must
// truncate to a valid prefix without panicking, Replay must only yield
// records that decode, and the log must accept new appends afterwards.
func FuzzWALReplay(f *testing.F) {
	good := func() []byte {
		dir := f.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			f.Fatal(err)
		}
		l.Append(share(1, 0))
		l.Append(nshare(2))
		l.Flush()
		l.Close()
		data, _ := os.ReadFile(segmentPath(dir, 1))
		return data
	}()
	f.Add(good)
	f.Add(good[:len(good)-3]) // torn mid-frame
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open on fuzzed segment: %v", err)
		}
		n := 0
		if err := l.Replay(func(m types.Message) {
			if m == nil {
				t.Fatal("replay yielded nil message")
			}
			n++
		}); err != nil {
			t.Fatalf("replay: %v", err)
		}
		// The log must remain writable after recovery.
		l.Append(share(9, 1))
		if !l.Flush() {
			t.Fatal("flush after fuzzed recovery failed")
		}
		l.Close()
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second open: %v", err)
		}
		defer l2.Close()
		n2 := 0
		if err := l2.Replay(func(types.Message) { n2++ }); err != nil {
			t.Fatalf("second replay: %v", err)
		}
		if n2 != n+1 {
			t.Fatalf("second replay saw %d records, want %d", n2, n+1)
		}
	})
}
