package baseline

import (
	"sync"
	"testing"
	"time"

	"icc/internal/engine"
	"icc/internal/metrics"
	"icc/internal/simnet"
	"icc/internal/types"
)

// commitLog records commits across a cluster.
type commitLog struct {
	mu   sync.Mutex
	seqs [][]uint64 // per party: committed view/height numbers
	at   []time.Duration
}

func newCommitLog(n int) *commitLog { return &commitLog{seqs: make([][]uint64, n)} }

func (l *commitLog) record(p int) func(uint64, []byte, time.Duration) {
	return func(v uint64, _ []byte, now time.Duration) {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.seqs[p] = append(l.seqs[p], v)
		l.at = append(l.at, now)
	}
}

func (l *commitLog) min() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := -1
	for _, s := range l.seqs {
		if m < 0 || len(s) < m {
			m = len(s)
		}
	}
	return m
}

func (l *commitLog) checkConsistent(t *testing.T) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	var longest []uint64
	for _, s := range l.seqs {
		if len(s) > len(longest) {
			longest = s
		}
	}
	for p, s := range l.seqs {
		for i, v := range s {
			if v != longest[i] {
				t.Fatalf("party %d commit %d is %d, others saw %d", p, i, v, longest[i])
			}
		}
	}
}

func runHotStuff(t *testing.T, n int, delta time.Duration, minCommits int) (*commitLog, *metrics.Recorder) {
	t.Helper()
	rec := metrics.NewRecorder(n)
	nw := simnet.New(simnet.Options{Seed: 1, Delay: simnet.Fixed{D: delta}, Recorder: rec})
	log := newCommitLog(n)
	for i := 0; i < n; i++ {
		h := NewHotStuff(HotStuffConfig{
			Self: types.PartyID(i), N: n,
			DeltaBound: 100 * time.Millisecond,
			OnCommit:   log.record(i),
		})
		nw.AddNode(h, true)
	}
	nw.Start()
	if !nw.RunUntil(func() bool { return log.min() >= minCommits }, 5*time.Minute) {
		t.Fatalf("hotstuff made no progress: min commits %d", log.min())
	}
	return log, rec
}

func TestHotStuffCommits(t *testing.T) {
	log, _ := runHotStuff(t, 4, 10*time.Millisecond, 10)
	log.checkConsistent(t)
}

func TestHotStuffThroughputIs2Delta(t *testing.T) {
	const delta = 10 * time.Millisecond
	log, _ := runHotStuff(t, 4, delta, 30)
	log.mu.Lock()
	defer log.mu.Unlock()
	// Gap between consecutive commits at one party ≈ 2δ.
	seq := log.seqs[0]
	if len(seq) < 10 {
		t.Fatal("too few commits")
	}
	// Views must be consecutive in the steady state (pipelined commits).
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1]+1 {
			t.Fatalf("non-consecutive committed views %d -> %d", seq[i-1], seq[i])
		}
	}
}

func TestTendermintCommits(t *testing.T) {
	const n = 4
	rec := metrics.NewRecorder(n)
	nw := simnet.New(simnet.Options{Seed: 2, Delay: simnet.Fixed{D: 10 * time.Millisecond}, Recorder: rec})
	log := newCommitLog(n)
	for i := 0; i < n; i++ {
		tm := NewTendermint(TendermintConfig{
			Self: types.PartyID(i), N: n,
			DeltaBound: 100 * time.Millisecond,
			OnCommit:   log.record(i),
		})
		nw.AddNode(tm, true)
	}
	nw.Start()
	if !nw.RunUntil(func() bool { return log.min() >= 10 }, 5*time.Minute) {
		t.Fatalf("tendermint made no progress: min commits %d", log.min())
	}
	log.checkConsistent(t)
}

// TestTendermintNotResponsive: with δ = 1 ms and Δbnd = 200 ms, the
// height rate must be dominated by Δbnd (timeoutCommit), unlike ICC.
func TestTendermintNotResponsive(t *testing.T) {
	const n = 4
	const delta = time.Millisecond
	const bound = 200 * time.Millisecond
	nw := simnet.New(simnet.Options{Seed: 3, Delay: simnet.Fixed{D: delta}})
	log := newCommitLog(n)
	for i := 0; i < n; i++ {
		tm := NewTendermint(TendermintConfig{
			Self: types.PartyID(i), N: n,
			DeltaBound: bound,
			OnCommit:   log.record(i),
		})
		nw.AddNode(tm, true)
	}
	nw.Start()
	deadline := 5 * time.Second
	nw.Run(deadline)
	got := log.min()
	// Height duration ≈ 3δ + Δbnd ≈ 203 ms ⇒ ~24 heights in 5 s.
	// Were it responsive (≈3δ), we would see >1000.
	if got > 40 {
		t.Fatalf("tendermint committed %d heights in %v — looks responsive, should be Δbnd-bound", got, deadline)
	}
	if got < 10 {
		t.Fatalf("tendermint only committed %d heights — liveness problem", got)
	}
}

// TestHotStuffLatencyVsICC confirms the structural latency gap the paper
// describes: HotStuff's proposal→commit distance is three chained views
// (≈6δ), double ICC0's 3δ.
func TestHotStuffLatencyVsICC(t *testing.T) {
	const delta = 10 * time.Millisecond
	const n = 4
	nw := simnet.New(simnet.Options{Seed: 4, Delay: simnet.Fixed{D: delta}})
	log := newCommitLog(n)
	var mu sync.Mutex
	proposeAt := map[uint64]time.Duration{}
	commitAt := map[uint64]time.Duration{}
	for i := 0; i < n; i++ {
		i := i
		h := NewHotStuff(HotStuffConfig{
			Self: types.PartyID(i), N: n,
			DeltaBound: 100 * time.Millisecond,
			OnCommit: func(v uint64, p []byte, now time.Duration) {
				mu.Lock()
				if _, ok := commitAt[v]; !ok {
					commitAt[v] = now
				}
				mu.Unlock()
				log.record(i)(v, p, now)
			},
		})
		// Track proposal times via payloads? Simpler: view v is proposed
		// roughly at viewStart; with Fixed delay and round-robin leaders,
		// view v starts at (v−1)·2δ.
		nw.AddNode(h, true)
	}
	nw.Start()
	if !nw.RunUntil(func() bool { return log.min() >= 20 }, time.Minute) {
		t.Fatal("no progress")
	}
	mu.Lock()
	defer mu.Unlock()
	// Steady state: view v proposed at ≈ (v−1)·2δ; committed at
	// commitAt[v]. Expect latency ≈ 6δ (3 views of 2δ).
	var total time.Duration
	var count int
	for v, c := range commitAt {
		if v < 3 || v > 20 {
			continue
		}
		proposed := time.Duration(v-1) * 2 * delta
		proposeAt[v] = proposed
		total += c - proposed
		count++
	}
	if count == 0 {
		t.Fatal("no samples")
	}
	mean := total / time.Duration(count)
	if mean < 4*delta || mean > 9*delta {
		t.Fatalf("hotstuff latency %v, want ≈ 6δ = %v", mean, 6*delta)
	}
	t.Logf("hotstuff commit latency ≈ %v (6δ = %v)", mean, 6*delta)
}

// TestHotStuffSurvivesCrashedLeader uses n = 7: chained HotStuff's
// three-chain commit rule needs a streak of four consecutive live-leader
// views, so with strict round-robin rotation and n = 4 a single
// permanently crashed party stalls commits forever (views keep advancing
// but the chain always breaks at the dead leader's view). With n = 7 the
// streaks of six live views between hits commit normally. ICC has no
// such fragility — any notarized block can be finalized regardless of
// leader history — which is exactly the robustness contrast of paper §1
// ("Robust consensus", [15]); benchmark E5 quantifies it.
func TestHotStuffSurvivesCrashedLeader(t *testing.T) {
	const n = 7
	nw := simnet.New(simnet.Options{Seed: 5, Delay: simnet.Fixed{D: 10 * time.Millisecond}})
	log := newCommitLog(n)
	for i := 0; i < n; i++ {
		h := NewHotStuff(HotStuffConfig{
			Self: types.PartyID(i), N: n,
			DeltaBound: 50 * time.Millisecond,
			OnCommit:   log.record(i),
		})
		nw.AddNode(h, true)
	}
	nw.Crash(2) // crashes before Init: a permanently silent leader
	nw.Start()
	if !nw.RunUntil(func() bool {
		log.mu.Lock()
		defer log.mu.Unlock()
		for p, s := range log.seqs {
			if p == 2 {
				continue
			}
			if len(s) < 8 {
				return false
			}
		}
		return true
	}, 5*time.Minute) {
		t.Fatal("hotstuff stalled with one crashed party")
	}
	log.checkConsistent(t)
}

var _ engine.Engine = (*HotStuff)(nil)
