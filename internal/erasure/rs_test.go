package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeReconstructAllShards(t *testing.T) {
	c, err := NewCode(5, 13)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog")
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 13 {
		t.Fatalf("got %d shards", len(shards))
	}
	m := make(map[int][]byte, len(shards))
	for i, s := range shards {
		m[i] = s
	}
	got, err := c.Reconstruct(m, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
}

func TestReconstructFromAnyKSubset(t *testing.T) {
	const k, n = 4, 10
	c, err := NewCode(k, n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1000)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(n)
		m := make(map[int][]byte, k)
		for _, i := range perm[:k] {
			m[i] = shards[i]
		}
		got, err := c.Reconstruct(m, len(data))
		if err != nil {
			t.Fatalf("subset %v: %v", perm[:k], err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("subset %v: wrong data", perm[:k])
		}
	}
}

func TestReconstructParityOnly(t *testing.T) {
	const k, n = 3, 9
	c, _ := NewCode(k, n)
	data := []byte("parity only reconstruction")
	shards, _ := c.Encode(data)
	m := map[int][]byte{6: shards[6], 7: shards[7], 8: shards[8]}
	got, err := c.Reconstruct(m, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("parity-only reconstruction failed")
	}
}

func TestReconstructFailsBelowK(t *testing.T) {
	c, _ := NewCode(3, 6)
	data := []byte("short")
	shards, _ := c.Encode(data)
	m := map[int][]byte{0: shards[0], 4: shards[4]}
	if _, err := c.Reconstruct(m, len(data)); err == nil {
		t.Fatal("reconstructed from k-1 shards")
	}
}

func TestSystematic(t *testing.T) {
	const k, n = 4, 8
	c, _ := NewCode(k, n)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	shards, _ := c.Encode(data)
	size := c.ShardSize(len(data))
	for i := 0; i < k; i++ {
		if !bytes.Equal(shards[i], data[i*size:(i+1)*size]) {
			t.Fatalf("shard %d is not the raw data chunk (non-systematic)", i)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	c1, _ := NewCode(5, 13)
	c2, _ := NewCode(5, 13)
	data := []byte("determinism matters for merkle roots")
	s1, _ := c1.Encode(data)
	s2, _ := c2.Encode(data)
	for i := range s1 {
		if !bytes.Equal(s1[i], s2[i]) {
			t.Fatalf("shard %d differs across identical codes", i)
		}
	}
}

func TestParamValidation(t *testing.T) {
	cases := []struct{ k, n int }{{0, 5}, {5, 4}, {3, 256}, {-1, 3}}
	for _, c := range cases {
		if _, err := NewCode(c.k, c.n); err == nil {
			t.Errorf("NewCode(%d, %d) accepted", c.k, c.n)
		}
	}
	if _, err := NewCode(1, 1); err != nil {
		t.Errorf("NewCode(1,1) rejected: %v", err)
	}
	if _, err := NewCode(255, 255); err != nil {
		t.Errorf("NewCode(255,255) rejected: %v", err)
	}
}

func TestEmptyAndTinyPayloads(t *testing.T) {
	c, _ := NewCode(4, 7)
	for _, data := range [][]byte{nil, {}, {42}, []byte("ab")} {
		shards, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		m := map[int][]byte{1: shards[1], 3: shards[3], 5: shards[5], 6: shards[6]}
		got, err := c.Reconstruct(m, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) && len(data) > 0 {
			t.Fatalf("payload %q: round-trip mismatch", data)
		}
	}
}

func TestShardSizeRejection(t *testing.T) {
	c, _ := NewCode(2, 4)
	data := []byte("0123456789")
	shards, _ := c.Encode(data)
	m := map[int][]byte{0: shards[0], 1: shards[1][:2]}
	if _, err := c.Reconstruct(m, len(data)); err == nil {
		t.Fatal("inconsistent shard size accepted")
	}
}

func TestGFFieldAxioms(t *testing.T) {
	tablesOnce.Do(initTables)
	f := func(a, b, c byte) bool {
		// distributivity: a*(b^c) == a*b ^ a*c
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			return false
		}
		// associativity and commutativity
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			return false
		}
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		// inverses
		if a != 0 && gfMul(a, gfInv(a)) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte, kRaw, extraRaw uint8) bool {
		k := int(kRaw%20) + 1
		n := k + int(extraRaw%20)
		if n > 255 {
			n = 255
		}
		c, err := NewCode(k, n)
		if err != nil {
			return false
		}
		shards, err := c.Encode(data)
		if err != nil {
			return false
		}
		// Take the last k shards.
		m := make(map[int][]byte, k)
		for i := n - k; i < n; i++ {
			m[i] = shards[i]
		}
		got, err := c.Reconstruct(m, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode1MB_13Shards(b *testing.B) {
	c, _ := NewCode(5, 13)
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct1MB_13Shards(b *testing.B) {
	c, _ := NewCode(5, 13)
	data := make([]byte, 1<<20)
	shards, _ := c.Encode(data)
	m := map[int][]byte{8: shards[8], 9: shards[9], 10: shards[10], 11: shards[11], 12: shards[12]}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reconstruct(m, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}
