package gossip

// Live-stack test: the gossip wrapper with share batching and eager
// relay-side aggregation enabled, over real TCP sockets and concurrent
// runner event loops. Run under -race this exercises bundle coalescing,
// flush-deadline timers, and aggregation admission across genuinely
// parallel parties, which the single-threaded unit tests above cannot.

import (
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/runtime"
	"icc/internal/transport"
	"icc/internal/types"
)

func TestLiveTCPClusterWithBatchingAndAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("live TCP cluster in -short mode")
	}
	const n = 7
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make(map[types.PartyID]string, n)
	for i := 0; i < n; i++ {
		addrs[types.PartyID(i)] = "127.0.0.1:0"
	}
	tcps := make([]*transport.TCP, n)
	for i := 0; i < n; i++ {
		ep, err := transport.NewTCPWithOptions(types.PartyID(i), addrs,
			transport.TCPOptions{RedialMax: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = ep
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				tcps[i].SetPeerAddr(types.PartyID(j), tcps[j].Addr())
			}
		}
	}

	var mu sync.Mutex
	chains := make([][]hash.Digest, n)
	clk := clock.NewWall()
	runners := make([]*runtime.Runner, n)
	for i := 0; i < n; i++ {
		i := i
		pid := types.PartyID(i)
		inner := core.NewEngine(core.Config{
			Self:       pid,
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     beacon.NewSimulated(n, pid, pub.GenesisSeed),
			DeltaBound: 50 * time.Millisecond,
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					mu.Lock()
					chains[i] = append(chains[i], b.Hash())
					mu.Unlock()
				},
			},
		})
		// Raw TCP input: shares are NOT pre-verified, so TrustShares stays
		// off and aggregation verifies while combining.
		g, err := New(Config{
			Self: pid, N: n, Fanout: 3, Seed: 99,
			ShareBatchWindow: 2 * time.Millisecond,
			Aggregate:        true,
			Keys:             pub,
		}, inner)
		if err != nil {
			t.Fatal(err)
		}
		runners[i] = runtime.NewRunner(g, tcps[i], clk, n)
	}
	for _, r := range runners {
		r.Start()
	}
	t.Cleanup(func() {
		for i := range runners {
			runners[i].Stop()
			_ = tcps[i].Close()
		}
	})

	// Every node must commit a handful of blocks with identical prefixes.
	const want = 4
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		done := true
		for i := 0; i < n; i++ {
			if len(chains[i]) < want {
				done = false
				break
			}
		}
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			for i := 0; i < n; i++ {
				t.Logf("node %d: %d commits", i, len(chains[i]))
			}
			mu.Unlock()
			t.Fatalf("cluster did not reach %d commits", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			k := len(chains[i])
			if len(chains[j]) < k {
				k = len(chains[j])
			}
			for x := 0; x < k; x++ {
				if chains[i][x] != chains[j][x] {
					t.Fatalf("SAFETY VIOLATION: nodes %d and %d disagree at height %d", i, j, x)
				}
			}
		}
	}
}
