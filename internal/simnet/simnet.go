// Package simnet is a deterministic discrete-event network simulator for
// consensus engines. It is the substrate on which every experiment of
// DESIGN.md §3 runs: virtual time advances from event to event, so tens
// of thousands of protocol rounds with realistic WAN delays execute in
// seconds of real time, and runs are exactly reproducible from a seed.
package simnet

import (
	"container/heap"
	"math/rand"
	"time"

	"icc/internal/engine"
	"icc/internal/metrics"
	"icc/internal/types"
)

// event is one scheduled action.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// node hosts one engine inside the simulator.
type node struct {
	eng         engine.Engine
	honest      bool
	wakeSeq     uint64 // invalidates stale scheduled ticks
	crashed     bool
	partitioned bool
	// queued holds deliveries that arrived while partitioned; they drain
	// on Heal (the paper's "every message ... will eventually be
	// delivered" assumption, §1).
	queued []func()
}

// TraceEvent is one observable step of a simulation: a message delivery
// into an engine or a timer tick firing. The stream of TraceEvents is a
// pure function of (seed, topology, delay model, engine code), so two
// runs with identical configuration produce identical streams — the
// property the adversary campaign's failure-replay machinery checks
// byte-for-byte.
type TraceEvent struct {
	At    time.Duration // virtual time of the step
	Step  uint64        // 1-based ordinal among traced steps
	Kind  string        // "deliver" or "tick"
	Party types.PartyID // acting (receiving/ticking) party
	From  types.PartyID // sender, for deliveries
	Msg   types.Kind    // message kind, for deliveries
	Size  int           // marshalled message size, for deliveries
}

// Options configures a Network.
type Options struct {
	Seed     int64
	Delay    DelayModel
	Recorder *metrics.Recorder // optional
	// Trace, if non-nil, observes every delivery and tick as it executes
	// (after crash/partition gating, immediately before the engine call).
	Trace func(TraceEvent)
}

// Network is a simulated network of consensus engines.
type Network struct {
	rng   *rand.Rand
	delay DelayModel
	rec   *metrics.Recorder
	trace func(TraceEvent)
	steps uint64

	queue eventQueue
	seq   uint64
	now   time.Duration

	nodes []*node
}

// New creates an empty simulated network.
func New(opts Options) *Network {
	if opts.Delay == nil {
		opts.Delay = Fixed{D: 10 * time.Millisecond}
	}
	return &Network{
		rng:   rand.New(rand.NewSource(opts.Seed)),
		delay: opts.Delay,
		rec:   opts.Recorder,
		trace: opts.Trace,
	}
}

// AddNode registers an engine. honest controls whether its sends count
// toward the honest-party message-complexity metric (paper §1 counts
// messages sent by honest parties). Nodes must be added in PartyID order
// starting from 0.
func (nw *Network) AddNode(eng engine.Engine, honest bool) {
	if int(eng.ID()) != len(nw.nodes) {
		panic("simnet: nodes must be added in PartyID order")
	}
	nw.nodes = append(nw.nodes, &node{eng: eng, honest: honest})
}

// Now returns the current simulated time.
func (nw *Network) Now() time.Duration { return nw.now }

// schedule queues fn at time at (clamped to now).
func (nw *Network) schedule(at time.Duration, fn func()) {
	if at < nw.now {
		at = nw.now
	}
	nw.seq++
	heap.Push(&nw.queue, &event{at: at, seq: nw.seq, fn: fn})
}

// Start initialises every engine. Call once before Run/Step.
func (nw *Network) Start() {
	for _, nd := range nw.nodes {
		outs := nd.eng.Init(nw.now)
		nw.dispatch(nd, outs)
		nw.rearm(nd)
	}
}

// Crash marks a node as crashed: it stops receiving and ticking. Used by
// fault-injection experiments (Table 1 scenario 3).
func (nw *Network) Crash(p types.PartyID) {
	nw.nodes[p].crashed = true
	nw.nodes[p].wakeSeq++
}

// Restore brings a crashed node back (it will resume on its next tick or
// message).
func (nw *Network) Restore(p types.PartyID) {
	nd := nw.nodes[p]
	nd.crashed = false
	nw.rearm(nd)
}

// Partition cuts a node off: messages addressed to it queue instead of
// being delivered, and its timers stop. Unlike Crash, nothing is lost —
// the partial-synchrony model's eventual delivery (§1) resumes on Heal.
// (The node's own sends are unaffected; a fully isolated node simply has
// nothing new to say.)
func (nw *Network) Partition(p types.PartyID) {
	nd := nw.nodes[p]
	nd.partitioned = true
	nd.wakeSeq++
}

// Heal reconnects a partitioned node and delivers everything that queued
// while it was away, in arrival order.
func (nw *Network) Heal(p types.PartyID) {
	nd := nw.nodes[p]
	if !nd.partitioned {
		return
	}
	nd.partitioned = false
	backlog := nd.queued
	nd.queued = nil
	for _, fn := range backlog {
		fn()
	}
	nw.rearm(nd)
}

// dispatch transmits the outputs of a node.
func (nw *Network) dispatch(nd *node, outs []engine.Output) {
	for _, out := range outs {
		raw := types.Marshal(out.Msg)
		size := len(raw)
		round := nd.eng.CurrentRound()
		if out.Broadcast {
			recipients := 0
			for _, other := range nw.nodes {
				if other == nd {
					continue
				}
				recipients++
				nw.deliver(nd, other, out.Msg, size)
			}
			if nw.rec != nil && nd.honest {
				nw.rec.Send(nd.eng.ID(), round, recipients, size)
			}
		} else {
			if int(out.To) < 0 || int(out.To) >= len(nw.nodes) || out.To == nd.eng.ID() {
				continue
			}
			nw.deliver(nd, nw.nodes[out.To], out.Msg, size)
			if nw.rec != nil && nd.honest {
				nw.rec.Send(nd.eng.ID(), round, 1, size)
			}
		}
	}
}

// deliver schedules one message for delivery.
func (nw *Network) deliver(from, to *node, msg types.Message, size int) {
	if aware, ok := nw.delay.(nowAware); ok {
		aware.SetNow(nw.now)
	}
	d, deliverIt := nw.delay.Sample(nw.rng, from.eng.ID(), to.eng.ID(), size)
	if !deliverIt {
		return
	}
	sender := from.eng.ID()
	var apply func()
	apply = func() {
		if to.crashed {
			return
		}
		if to.partitioned {
			to.queued = append(to.queued, apply)
			return
		}
		if nw.trace != nil {
			nw.steps++
			nw.trace(TraceEvent{
				At: nw.now, Step: nw.steps, Kind: "deliver",
				Party: to.eng.ID(), From: sender, Msg: msg.Kind(), Size: size,
			})
		}
		outs := to.eng.HandleMessage(sender, msg, nw.now)
		nw.dispatch(to, outs)
		nw.rearm(to)
	}
	nw.schedule(nw.now+d, apply)
}

// rearm schedules the node's next timer tick per NextWake.
func (nw *Network) rearm(nd *node) {
	if nd.crashed || nd.partitioned {
		return
	}
	at, ok := nd.eng.NextWake(nw.now)
	if !ok {
		return
	}
	nd.wakeSeq++
	mySeq := nd.wakeSeq
	nw.schedule(at, func() {
		if nd.crashed || nd.partitioned || nd.wakeSeq != mySeq {
			return
		}
		if nw.trace != nil {
			nw.steps++
			nw.trace(TraceEvent{At: nw.now, Step: nw.steps, Kind: "tick", Party: nd.eng.ID()})
		}
		outs := nd.eng.Tick(nw.now)
		nw.dispatch(nd, outs)
		nw.rearm(nd)
	})
}

// Step executes the next event. It returns false when no events remain.
func (nw *Network) Step() bool {
	if nw.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&nw.queue).(*event)
	nw.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue drains or simulated time exceeds
// `until`. It returns the final simulated time.
func (nw *Network) Run(until time.Duration) time.Duration {
	for nw.queue.Len() > 0 && nw.queue[0].at <= until {
		nw.Step()
	}
	if nw.now < until {
		nw.now = until
	}
	return nw.now
}

// RunUntil executes events until pred returns true or simulated time
// exceeds `limit`. It reports whether pred was satisfied.
func (nw *Network) RunUntil(pred func() bool, limit time.Duration) bool {
	for !pred() {
		if nw.queue.Len() == 0 || nw.queue[0].at > limit {
			return false
		}
		nw.Step()
	}
	return true
}
