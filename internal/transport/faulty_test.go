package transport

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"icc/internal/types"
)

// faultyPair wraps party 0's endpoint of a 3-party inproc hub.
func faultyPair(t *testing.T, plan FaultPlan) (*Faulty, Endpoint, Endpoint, *Inproc) {
	t.Helper()
	hub := NewInproc(3)
	f := NewFaulty(hub.Endpoint(0), 0, plan)
	t.Cleanup(func() {
		_ = f.Close()
		hub.Close()
	})
	return f, hub.Endpoint(1), hub.Endpoint(2), hub
}

func TestFaultyDropRateOne(t *testing.T) {
	f, b, _, _ := faultyPair(t, FaultPlan{Seed: 1, DropRate: 1})
	for i := 0; i < 20; i++ {
		if err := f.Send(1, &types.Advert{}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case env := <-b.Inbox():
		t.Fatalf("drop-everything plan delivered %#v", env)
	case <-time.After(100 * time.Millisecond):
	}
	if s := f.Stats(); s.Dropped != 20 {
		t.Fatalf("dropped = %d, want 20", s.Dropped)
	}
}

func TestFaultyDuplicates(t *testing.T) {
	f, b, _, _ := faultyPair(t, FaultPlan{Seed: 1, DupRate: 1})
	if err := f.Send(1, &types.BeaconShare{Round: 9, Signer: 0, Share: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		env := recvOne(t, b, time.Second)
		if got := env.Msg.(*types.BeaconShare); got.Round != 9 {
			t.Fatalf("copy %d: wrong message %#v", i, env.Msg)
		}
	}
	if s := f.Stats(); s.Duplicated != 1 {
		t.Fatalf("duplicated = %d, want 1", s.Duplicated)
	}
}

// delaySeed finds a seed whose first delay draw (DelayRate=1, no
// drop/dup draws) exceeds min, replicating Faulty.roll's rng sequence.
func delaySeed(maxDelay, min time.Duration) int64 {
	for seed := int64(1); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_ = rng.Float64() // the delay-rate roll
		if time.Duration(1+rng.Int63n(int64(maxDelay))) >= min {
			return seed
		}
	}
	panic("no seed found")
}

func TestFaultyDelayReordersBehindLaterTraffic(t *testing.T) {
	const maxDelay = 500 * time.Millisecond
	seed := delaySeed(maxDelay, 150*time.Millisecond)
	var offset atomic.Int64 // manual clock for the FaultsUntil window
	f, b, _, _ := faultyPair(t, FaultPlan{
		Seed:      seed,
		DelayRate: 1,
		MaxDelay:  maxDelay,
		// Faults apply only "before" 1ms; we steer with the manual clock.
		FaultsUntil: time.Millisecond,
	})
	f.now = func() time.Duration { return time.Duration(offset.Load()) }

	// First message: inside the fault window, gets delayed ≥150ms.
	if err := f.Send(1, &types.BeaconShare{Round: 1, Signer: 0, Share: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	// Second message: after the fault window, transmitted immediately.
	offset.Store(int64(2 * time.Millisecond))
	if err := f.Send(1, &types.BeaconShare{Round: 2, Signer: 0, Share: []byte{2}}); err != nil {
		t.Fatal(err)
	}

	first := recvOne(t, b, 2*time.Second)
	second := recvOne(t, b, 2*time.Second)
	if first.Msg.(*types.BeaconShare).Round != 2 || second.Msg.(*types.BeaconShare).Round != 1 {
		t.Fatalf("no reordering: got rounds %d then %d, want 2 then 1",
			first.Msg.(*types.BeaconShare).Round, second.Msg.(*types.BeaconShare).Round)
	}
	if s := f.Stats(); s.Delayed != 1 {
		t.Fatalf("delayed = %d, want 1", s.Delayed)
	}
}

func TestFaultyPartitionIsBidirectionalAndTimed(t *testing.T) {
	var offset atomic.Int64
	f, b, c, _ := faultyPair(t, FaultPlan{
		Partitions: []PartitionWindow{{
			From: 0, To: 50 * time.Millisecond,
			A: []types.PartyID{0}, B: []types.PartyID{1},
		}},
	})
	f.now = func() time.Duration { return time.Duration(offset.Load()) }

	// Inside the window: 0→1 is cut, 0→2 is not.
	if err := f.Send(1, &types.Advert{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Send(2, &types.Advert{}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, c, time.Second)
	select {
	case <-b.Inbox():
		t.Fatal("message crossed the partition")
	case <-time.After(100 * time.Millisecond):
	}

	// Receive side: traffic from the cut peer is black-holed even
	// though the remote endpoint is unwrapped.
	if err := b.Send(0, &types.BeaconShare{Round: 5, Signer: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-f.Inbox():
		t.Fatalf("inbound message crossed the partition: %#v", env)
	case <-time.After(100 * time.Millisecond):
	}
	if s := f.Stats(); s.Cut != 2 {
		t.Fatalf("cut = %d, want 2 (one per direction)", s.Cut)
	}

	// After the window: both directions flow again.
	offset.Store(int64(60 * time.Millisecond))
	if err := f.Send(1, &types.BeaconShare{Round: 7, Signer: 0}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b, time.Second); env.Msg.(*types.BeaconShare).Round != 7 {
		t.Fatal("wrong post-heal message")
	}
	if err := b.Send(0, &types.BeaconShare{Round: 8, Signer: 1}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, f, time.Second); env.Msg.(*types.BeaconShare).Round != 8 {
		t.Fatal("wrong post-heal inbound message")
	}
}

func TestFaultyDeterministicGivenSeed(t *testing.T) {
	run := func() []types.Round {
		hub := NewInproc(2)
		defer hub.Close()
		f := NewFaulty(hub.Endpoint(0), 0, FaultPlan{Seed: 42, DropRate: 0.5})
		defer f.Close()
		for i := 1; i <= 40; i++ {
			if err := f.Send(1, &types.BeaconShare{Round: types.Round(i), Signer: 0}); err != nil {
				t.Fatal(err)
			}
		}
		var got []types.Round
		inbox := hub.Endpoint(1).Inbox()
		for {
			select {
			case env := <-inbox:
				got = append(got, env.Msg.(*types.BeaconShare).Round)
			case <-time.After(100 * time.Millisecond):
				return got
			}
		}
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("drop rate 0.5 delivered %d of 40", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic fault schedule: %d vs %d deliveries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedules diverge at %d: round %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFaultyCloseIsIdempotentAndStopsDelayedSends(t *testing.T) {
	hub := NewInproc(2)
	defer hub.Close()
	f := NewFaulty(hub.Endpoint(0), 0, FaultPlan{Seed: delaySeed(time.Second, 500*time.Millisecond), DelayRate: 1, MaxDelay: time.Second})
	if err := f.Send(1, &types.Advert{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// The delayed send must have been cancelled by Close, and the
	// filtered inbox must be closed.
	select {
	case env := <-hub.Endpoint(1).Inbox():
		t.Fatalf("delayed send escaped Close: %#v", env)
	case <-time.After(100 * time.Millisecond):
	}
	if _, ok := <-f.Inbox(); ok {
		t.Fatal("filtered inbox not closed")
	}
}
