// Package obs is the unified observability substrate: a dependency-free
// metrics registry (counters, gauges, histograms — all with lock-free
// atomic fast paths — plus labeled families), a bounded ring-buffer
// protocol event tracer with JSONL export, and an HTTP exposition layer
// (Prometheus text format, a stall-detecting health probe, trace dumps,
// and net/http/pprof).
//
// Every layer of the live path records here: the core engine via
// per-phase Hooks (see core.ObservedHooks), the runtime event loop, and
// the transport (metrics.TransportStats registers its counters on an
// obs.Registry). The simulation Recorder, TransportStats, and the
// registry all export the same Snapshot map view, so benchmarks, nodes,
// and tests render health with one code path.
//
// The package deliberately imports nothing outside the standard library
// so that any layer — including the deepest protocol code — can depend
// on it without cycles.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the common point-in-time view every instrumented component
// exports: metric name (optionally with a {label="value"} suffix) to
// value. metrics.TransportStats, metrics.Recorder, and Registry all
// produce one, so a single rendering path serves iccbench, iccnode, and
// tests.
type Snapshot map[string]float64

// Keys returns the snapshot's keys in sorted order.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Get returns the value for a key (0 if absent) — convenient in tests.
func (s Snapshot) Get(key string) float64 { return s[key] }

// String renders the snapshot as one sorted "key=value" health line.
func (s Snapshot) String() string {
	var b strings.Builder
	for i, k := range s.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(formatValue(s[k]))
	}
	return b.String()
}

// Merge copies every entry of other into s, prefixing keys.
func (s Snapshot) Merge(prefix string, other Snapshot) {
	for k, v := range other {
		s[prefix+k] = v
	}
}

// formatValue renders a float the way Prometheus text format expects:
// integers without a decimal point, everything else in shortest form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelKey renders one name{label="value",...} snapshot key.
func labelKey(name string, labels, values []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l, values[i])
	}
	b.WriteByte('}')
	return b.String()
}
