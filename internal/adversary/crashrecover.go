package adversary

import (
	"time"

	"icc/internal/engine"
	"icc/internal/types"
)

// CrashRecover wraps an engine so the party crashes at Down and comes
// back at Up: in between it emits nothing and loses every message and
// tick (its protocol state is frozen where the crash left it, as a
// process restarted from a crash-time snapshot would be). On recovery
// it rejoins mid-protocol and must catch up through the ordinary
// message flow — later rounds' bundles carry the notarizations it
// missed, and under ICC1 the gossip pull path backfills artifacts — the
// crash/recovery leg of the paper's robustness scenario (Table 1
// scenario 3).
//
// Unlike simnet.Network.Crash/Restore, which act at the network layer
// of the simulator only, CrashRecover is an engine wrapper and runs
// unchanged under the simulator, the in-process runtime, and TCP.
type CrashRecover struct {
	Inner engine.Engine
	// Down and Up bound the outage [Down, Up) in protocol time.
	Down, Up time.Duration
}

// NewCrashRecover wraps inner with a crash at down and recovery at up.
func NewCrashRecover(inner engine.Engine, down, up time.Duration) *CrashRecover {
	return &CrashRecover{Inner: inner, Down: down, Up: up}
}

// crashed reports whether the party is dark at the given time.
func (c *CrashRecover) crashed(now time.Duration) bool {
	return now >= c.Down && now < c.Up
}

// ID implements engine.Engine.
func (c *CrashRecover) ID() types.PartyID { return c.Inner.ID() }

// Init implements engine.Engine.
func (c *CrashRecover) Init(now time.Duration) []engine.Output {
	if c.crashed(now) {
		return nil
	}
	return c.Inner.Init(now)
}

// HandleMessage implements engine.Engine; messages during the outage
// are lost, not queued.
func (c *CrashRecover) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	if c.crashed(now) {
		return nil
	}
	return c.Inner.HandleMessage(from, m, now)
}

// Tick implements engine.Engine.
func (c *CrashRecover) Tick(now time.Duration) []engine.Output {
	if c.crashed(now) {
		return nil
	}
	return c.Inner.Tick(now)
}

// NextWake implements engine.Engine. While down, the party asks to be
// woken at recovery time so its timers re-fire and it starts catching
// up even before any message reaches it.
func (c *CrashRecover) NextWake(now time.Duration) (time.Duration, bool) {
	if c.crashed(now) {
		return c.Up, true
	}
	return c.Inner.NextWake(now)
}

// CurrentRound implements engine.Engine.
func (c *CrashRecover) CurrentRound() types.Round { return c.Inner.CurrentRound() }

var _ engine.Engine = (*CrashRecover)(nil)
