package verify

import (
	"sort"

	"icc/internal/crypto/hash"
	"icc/internal/types"
)

// processResync verifies a resync-marked catch-up bundle chain-aware.
//
// A catch-up batch for a g-round gap carries ~g notarizations (plus the
// occasional finalization) whose naive cost is g aggregate
// verifications — the dominant term in the laggard-ingest livelock.
// But the batch is not g independent claims: the blocks hash-link each
// round to its parent, and the paper's safety argument (§3) says a
// verified finalization commits its entire prefix, while a verified
// notarization at round k implies at least one honest party held the
// round-(k−1) parent notarized (validity requires a notarized parent).
// So one signature check at the head of a hash-linked chain vouches
// for the *statements* of every aggregate along it.
//
// The algorithm processes aggregates from the highest round down.
// Each one whose block hash was already reached by a verified head's
// parent-digest walk is admitted without touching the verifier
// (icc_verify_chain_admitted_total); each one that was not becomes a
// new head and is verified in full. On a healthy batch that is one
// finalization check plus one boundary-notarization check; on a batch
// with broken linkage (missing blocks, forged hashes) every unlinked
// aggregate falls back to individual verification, so a Byzantine
// responder gains nothing beyond the pre-existing cost model.
//
// What chain admission asserts is the aggregate's statement ("this
// block is notarized/finalized in the committed prefix"), not that the
// aggregate's signature bytes are well-formed — a malicious responder
// could splice garbage Agg bytes onto a truly-committed round. That is
// safe for the laggard (the statement is true, and collision
// resistance of H pins the chain), and self-limiting for the cluster:
// any party re-gossiped such bytes verifies them in full and rejects.
// DESIGN.md §11 carries the full argument.
func (p *Pipeline) processResync(from types.PartyID, b *types.Bundle) (types.Message, bool) {
	// Index the batch: blocks by their computed hash (a hash per block,
	// cheap), aggregates as (round, blockHash, message) triples.
	blocks := make(map[hash.Digest]*types.Block)
	type aggRef struct {
		round types.Round
		bh    hash.Digest
		final bool
		msg   types.Message
	}
	var aggs []aggRef
	for _, sub := range b.Messages {
		switch v := sub.(type) {
		case *types.BlockMsg:
			if v.Block != nil {
				blocks[v.Block.Hash()] = v.Block
			}
		case *types.Notarization:
			aggs = append(aggs, aggRef{v.Round, v.BlockHash, false, sub})
		case *types.Finalization:
			aggs = append(aggs, aggRef{v.Round, v.BlockHash, true, sub})
		}
	}

	// Highest round first; at equal round a finalization makes the
	// stronger head, so verify it rather than the notarization.
	sort.SliceStable(aggs, func(i, j int) bool {
		if aggs[i].round != aggs[j].round {
			return aggs[i].round > aggs[j].round
		}
		return aggs[i].final && !aggs[j].final
	})

	// committed holds block hashes reachable from a verified aggregate
	// by walking parent digests through the blocks in this batch.
	committed := make(map[hash.Digest]struct{})
	walk := func(bh hash.Digest) {
		for {
			if _, ok := committed[bh]; ok {
				return
			}
			committed[bh] = struct{}{}
			blk, ok := blocks[bh]
			if !ok || blk.ParentHash.IsZero() {
				return
			}
			bh = blk.ParentHash
		}
	}

	verdict := make(map[types.Message]bool, len(aggs))
	for _, a := range aggs {
		if _, ok := committed[a.bh]; ok {
			verdict[a.msg] = true
			p.chainAdmit.Inc()
			p.cacheInsert(a.msg)
			p.markStatement(a.msg)
			continue
		}
		if err := p.checkCached(a.msg); err != nil {
			p.reject(from, err)
			verdict[a.msg] = false
			continue
		}
		verdict[a.msg] = true
		p.markStatement(a.msg)
		p.noteFrontier(a.round)
		walk(a.bh)
	}

	// Second pass in original bundle order: apply verdicts, admit
	// authenticators of committed blocks by linkage, and verify
	// everything else as usual.
	kept := make([]types.Message, 0, len(b.Messages))
	for _, sub := range b.Messages {
		switch v := sub.(type) {
		case *types.Notarization, *types.Finalization:
			if verdict[sub] {
				kept = append(kept, sub)
			}
		case *types.Authenticator:
			if _, ok := committed[v.BlockHash]; ok {
				p.chainAdmit.Inc()
				p.cacheInsert(sub)
				kept = append(kept, sub)
				continue
			}
			if s, ok := p.process(from, sub); ok {
				kept = append(kept, s)
			}
		default:
			if s, ok := p.process(from, sub); ok {
				kept = append(kept, s)
			}
		}
	}
	if len(kept) == 0 {
		return nil, false
	}
	return &types.Bundle{Messages: kept, Resync: true}, true
}
