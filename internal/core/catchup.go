package core

import (
	"time"

	"icc/internal/beacon"
	"icc/internal/crypto/hash"
	"icc/internal/pool"
	"icc/internal/types"
)

// BackfillRequest names the beacon-share work a catch-up response could
// not answer from the own-share cache: sign this party's shares for the
// listed rounds and unicast them to Peer.
type BackfillRequest struct {
	Peer   types.PartyID
	Rounds []types.Round
}

// CatchupProvider completes catch-up bundles outside the engine clauses.
// EnqueueBackfill must never block: it returns false when the request is
// dropped (queue full, duplicate in flight, provider shut down), in
// which case the laggard simply re-asks at its next Status interval.
// The production implementation is internal/backfill's worker pool; the
// simnet/harness path leaves it nil and the engine signs synchronously,
// keeping single-threaded simulations deterministic.
type CatchupProvider interface {
	EnqueueBackfill(req BackfillRequest) bool
}

// Catchup answers lagging peers' Status messages with batches of
// notarized rounds. It owns the per-peer rate limiter and the split
// between the cheap inline response (pool artifacts + cached beacon
// shares) and the expensive deferred part (threshold signing of uncached
// shares), so the engine loop never performs EC scalar multiplication on
// behalf of a laggard when a provider is wired.
type Catchup struct {
	beacon   beacon.Source
	interval time.Duration
	batch    int
	provider CatchupProvider
	hook     func(peer types.PartyID, inline, deferred int, now time.Duration)

	// repliedAt rate-limits responses per requesting peer: a Byzantine
	// party repeating Status must not turn us into a bandwidth amplifier.
	repliedAt map[types.PartyID]time.Duration
}

// newCatchup wires the component from an engine config (already
// defaulted).
func newCatchup(cfg Config) *Catchup {
	return &Catchup{
		beacon:    cfg.Beacon,
		interval:  cfg.ResyncInterval,
		batch:     cfg.ResyncBatch,
		provider:  cfg.Catchup,
		hook:      cfg.Hooks.OnBackfill,
		repliedAt: make(map[types.PartyID]time.Duration),
	}
}

// allowReply charges the per-peer rate limiter for a reply outside
// Respond's own accounting (the checkpoint-serving path). It returns
// false when the peer already used its reply slot this interval.
func (c *Catchup) allowReply(from types.PartyID, now time.Duration) bool {
	if c.interval <= 0 {
		return false
	}
	if last, ok := c.repliedAt[from]; ok && now < last+c.interval {
		return false
	}
	c.repliedAt[from] = now
	return true
}

// Respond builds the inline portion of a catch-up response for a peer
// whose Status reports round st.Round while we are at `round`, reading
// artifacts from p and deferring uncached beacon-share signing to the
// provider. It returns nil when no reply is due (resync disabled, peer
// close enough, rate-limited, or nothing to send).
func (c *Catchup) Respond(p *pool.Pool, from types.PartyID, st *types.Status, round types.Round, lastFinal hash.Digest, now time.Duration) *types.Bundle {
	if c.interval <= 0 {
		return nil
	}
	// Peers at most one round behind are healed by ordinary traffic and
	// by the stall bundle itself; only answer real gaps.
	if st.Round+1 >= round {
		return nil
	}
	if last, ok := c.repliedAt[from]; ok && now < last+c.interval {
		return nil
	}

	end := round
	if limit := st.Round + types.Round(c.batch); end > limit {
		end = limit
	}
	var msgs []types.Message
	var deferred []types.Round
	inlineShares := 0
	for k := st.Round; k <= end; k++ {
		// Our own beacon share for k lets the laggard accumulate the
		// t+1 distinct shares it needs to re-enter the round (every
		// responding peer contributes one). Rounds the laggard has
		// already finalized need no share: it traversed their beacons.
		if k > st.Finalized {
			if sh, ok := c.beacon.CachedShareForRound(k); ok {
				msgs = append(msgs, sh)
				inlineShares++
			} else if c.provider != nil {
				deferred = append(deferred, k)
			} else if sh, err := c.beacon.ShareForRound(k); err == nil {
				// Synchronous fallback: deterministic single-threaded
				// paths (simnet, harness) sign inline as before.
				msgs = append(msgs, sh)
				inlineShares++
			}
		}
		if k == end {
			break // shares only for the boundary round
		}
		h, ok := p.NotarizedInRound(k)
		if !ok {
			continue // pruned or unknown; the laggard will re-ask
		}
		if b := p.Block(h); b != nil {
			msgs = append(msgs, &types.BlockMsg{Block: b})
		}
		// The authenticator makes the block admissible (IsValid requires
		// IsAuthentic); without it the notarization is inert.
		if a := p.Authenticator(h); a != nil {
			msgs = append(msgs, a)
		}
		if nz := p.Notarization(h); nz != nil {
			msgs = append(msgs, nz)
		}
	}
	if lastFinal != (hash.Digest{}) {
		if f := p.Finalization(lastFinal); f != nil {
			msgs = append(msgs, f)
		}
	}
	if len(deferred) > 0 {
		// Dropped requests are not retried inline — the engine must not
		// sign — and not re-deferred either: the laggard's next Status
		// re-derives the still-missing rounds.
		if !c.provider.EnqueueBackfill(BackfillRequest{Peer: from, Rounds: deferred}) {
			deferred = nil
		}
	}
	if c.hook != nil {
		c.hook(from, inlineShares, len(deferred), now)
	}
	// Charge the rate limiter only when the peer actually gets
	// something — a bundle now or a backfill unicast shortly. A peer
	// whose gap is fully pruned from our pool must not burn its one
	// reply per interval on an empty answer; some other responder may
	// still hold those rounds, and our turn should stay open for when
	// we can contribute.
	if len(msgs) == 0 && len(deferred) == 0 {
		return nil
	}
	c.repliedAt[from] = now
	if len(msgs) == 0 {
		return nil
	}
	// Resync marks the bundle for the laggard's verify-pipeline
	// priority lane and its chain-aware batch verification.
	return &types.Bundle{Messages: msgs, Resync: true}
}
