package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"icc/internal/types"
)

// TCP is a transport over TCP connections with length-prefixed frames.
// Each node listens on its own address and lazily dials its peers;
// connections self-identify with a one-frame handshake carrying the
// sender's party ID. Failed connections are redialled with backoff on
// the next send.
//
// Frames: u32 payload length, then the payload (a types.Marshal
// encoding). The handshake frame carries the 8-byte party ID.
type TCP struct {
	self  types.PartyID
	addrs map[types.PartyID]string

	lis   net.Listener
	inbox chan Envelope

	mu      sync.Mutex
	conns   map[types.PartyID]net.Conn
	inbound []net.Conn
	closed  bool

	wg sync.WaitGroup
}

// maxFrame bounds a received frame (64 MiB).
const maxFrame = 64 << 20

// NewTCP starts a TCP endpoint: it listens on addrs[self] immediately
// and dials peers on demand.
func NewTCP(self types.PartyID, addrs map[types.PartyID]string) (*TCP, error) {
	lis, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[self], err)
	}
	t := &TCP{
		self:  self,
		addrs: addrs,
		lis:   lis,
		inbox: make(chan Envelope, inboxSize),
		conns: make(map[types.PartyID]net.Conn),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the actual listen address (useful with ":0").
func (t *TCP) Addr() string { return t.lis.Addr().String() }

// Inbox implements Endpoint.
func (t *TCP) Inbox() <-chan Envelope { return t.inbox }

// Send implements Endpoint.
func (t *TCP) Send(to types.PartyID, m types.Message) error {
	conn, err := t.conn(to)
	if err != nil {
		return err
	}
	raw := types.Marshal(m)
	if err := writeFrame(conn, raw); err != nil {
		t.dropConn(to, conn)
		return fmt.Errorf("transport: send to %d: %w", to, err)
	}
	return nil
}

// Close implements Endpoint.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns)+len(t.inbound))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	conns = append(conns, t.inbound...)
	t.conns = map[types.PartyID]net.Conn{}
	t.inbound = nil
	t.mu.Unlock()

	err := t.lis.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	close(t.inbox)
	return err
}

// conn returns (or establishes) the outgoing connection to a peer.
func (t *TCP) conn(to types.PartyID) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[to]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.addrs[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no address for party %d", to)
	}
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d: %w", to, err)
	}
	// Handshake: identify ourselves.
	var hello [8]byte
	binary.BigEndian.PutUint64(hello[:], uint64(int64(t.self)))
	if err := writeFrame(c, hello[:]); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("transport: handshake with %d: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[to]; ok {
		_ = c.Close()
		return existing, nil
	}
	t.conns[to] = c
	return c, nil
}

func (t *TCP) dropConn(to types.PartyID, c net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conns[to] == c {
		delete(t.conns, to)
	}
	_ = c.Close()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.lis.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		t.inbound = append(t.inbound, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop consumes frames from an inbound connection.
func (t *TCP) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	hello, err := readFrame(c)
	if err != nil || len(hello) != 8 {
		return
	}
	from := types.PartyID(int64(binary.BigEndian.Uint64(hello)))
	for {
		raw, err := readFrame(c)
		if err != nil {
			return
		}
		m, err := types.Unmarshal(raw)
		if err != nil {
			continue // corrupt frame from a possibly-corrupt peer
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.inbox <- Envelope{From: from, Msg: m}:
		default:
			// Drop on overload; see the inproc transport's rationale.
		}
	}
}

func writeFrame(w io.Writer, payload []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

var _ Endpoint = (*TCP)(nil)
