package metrics

import (
	"fmt"
	"sync"

	"icc/internal/types"
)

// TransportStats tracks transport-layer health: per-peer send-queue
// evictions, redial attempts, write failures and high-water queue
// depths, plus endpoint-wide inbox-overflow discards and runner-observed
// send errors. A nil *TransportStats is a valid no-op sink, so transport
// and runtime code records unconditionally.
type TransportStats struct {
	mu sync.Mutex

	queueDropped  map[types.PartyID]int64
	redials       map[types.PartyID]int64
	writeErrors   map[types.PartyID]int64
	maxQueueDepth map[types.PartyID]int64

	inboxOverflow int64
	sendErrors    int64
}

// NewTransportStats creates an empty counter set.
func NewTransportStats() *TransportStats {
	return &TransportStats{
		queueDropped:  make(map[types.PartyID]int64),
		redials:       make(map[types.PartyID]int64),
		writeErrors:   make(map[types.PartyID]int64),
		maxQueueDepth: make(map[types.PartyID]int64),
	}
}

// QueueDrop records a frame evicted from peer p's send queue (overflow
// under the drop-oldest policy).
func (s *TransportStats) QueueDrop(p types.PartyID) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.queueDropped[p]++
	s.mu.Unlock()
}

// Redial records a dial attempt to peer p (the first dial counts too).
func (s *TransportStats) Redial(p types.PartyID) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.redials[p]++
	s.mu.Unlock()
}

// WriteError records a failed frame write to peer p.
func (s *TransportStats) WriteError(p types.PartyID) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.writeErrors[p]++
	s.mu.Unlock()
}

// ObserveQueueDepth records the current depth of peer p's send queue;
// the per-peer high-water mark is retained.
func (s *TransportStats) ObserveQueueDepth(p types.PartyID, depth int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if int64(depth) > s.maxQueueDepth[p] {
		s.maxQueueDepth[p] = int64(depth)
	}
	s.mu.Unlock()
}

// InboxOverflow records a received message discarded because the
// endpoint's inbox was full.
func (s *TransportStats) InboxOverflow() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.inboxOverflow++
	s.mu.Unlock()
}

// SendError records a transport send failure observed by the runner.
func (s *TransportStats) SendError() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sendErrors++
	s.mu.Unlock()
}

// TransportSnapshot is a point-in-time copy of the counters.
type TransportSnapshot struct {
	QueueDropped  map[types.PartyID]int64
	Redials       map[types.PartyID]int64
	WriteErrors   map[types.PartyID]int64
	MaxQueueDepth map[types.PartyID]int64

	TotalQueueDropped int64
	TotalRedials      int64
	TotalWriteErrors  int64
	InboxOverflow     int64
	SendErrors        int64
}

// Snapshot copies the counters. Safe on a nil receiver (empty snapshot).
func (s *TransportStats) Snapshot() TransportSnapshot {
	snap := TransportSnapshot{
		QueueDropped:  map[types.PartyID]int64{},
		Redials:       map[types.PartyID]int64{},
		WriteErrors:   map[types.PartyID]int64{},
		MaxQueueDepth: map[types.PartyID]int64{},
	}
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for p, v := range s.queueDropped {
		snap.QueueDropped[p] = v
		snap.TotalQueueDropped += v
	}
	for p, v := range s.redials {
		snap.Redials[p] = v
		snap.TotalRedials += v
	}
	for p, v := range s.writeErrors {
		snap.WriteErrors[p] = v
		snap.TotalWriteErrors += v
	}
	for p, v := range s.maxQueueDepth {
		snap.MaxQueueDepth[p] = v
	}
	snap.InboxOverflow = s.inboxOverflow
	snap.SendErrors = s.sendErrors
	return snap
}

// String renders the snapshot as one health line.
func (snap TransportSnapshot) String() string {
	var maxDepth int64
	for _, d := range snap.MaxQueueDepth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	return fmt.Sprintf("queue-dropped=%d redials=%d write-errors=%d max-queue=%d inbox-overflow=%d send-errors=%d",
		snap.TotalQueueDropped, snap.TotalRedials, snap.TotalWriteErrors,
		maxDepth, snap.InboxOverflow, snap.SendErrors)
}
