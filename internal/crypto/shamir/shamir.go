// Package shamir implements Shamir secret sharing over the scalar field of
// the ec group, plus Lagrange interpolation both in the field and "in the
// exponent" (on group elements). It is the basis of the threshold
// signature scheme S_beacon used by the ICC random beacon (paper §2.3,
// approach (iii), citing [34]).
//
// Shares use evaluation points x = index+1 so that the secret is the
// polynomial evaluated at 0 and no share index collides with it.
package shamir

import (
	"errors"
	"fmt"
	"io"

	"icc/internal/crypto/ec"
)

// Share is one party's share of a secret: the polynomial evaluated at
// point Index+1.
type Share struct {
	Index int // party index in [0, n)
	Value *ec.Scalar
}

// ErrNotEnoughShares is returned when fewer than threshold shares are
// supplied to Recover.
var ErrNotEnoughShares = errors.New("shamir: not enough shares")

// ErrDuplicateShare is returned when two shares carry the same index.
var ErrDuplicateShare = errors.New("shamir: duplicate share index")

// Deal splits secret into n shares such that any `threshold` of them
// recover the secret and fewer reveal nothing. threshold = degree+1.
// For the ICC beacon scheme S_beacon (a (t, t+1, n) scheme), threshold
// is t+1.
func Deal(rng io.Reader, secret *ec.Scalar, threshold, n int) ([]Share, error) {
	if threshold < 1 || threshold > n {
		return nil, fmt.Errorf("shamir: invalid threshold %d for n=%d", threshold, n)
	}
	// coeffs[0] = secret; higher coefficients random.
	coeffs := make([]*ec.Scalar, threshold)
	coeffs[0] = secret
	for i := 1; i < threshold; i++ {
		c, err := ec.RandomScalar(rng)
		if err != nil {
			return nil, fmt.Errorf("shamir: sampling coefficient: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for idx := 0; idx < n; idx++ {
		x := ec.ScalarFromUint64(uint64(idx + 1))
		shares[idx] = Share{Index: idx, Value: eval(coeffs, x)}
	}
	return shares, nil
}

// eval evaluates the polynomial with the given coefficients at x using
// Horner's rule.
func eval(coeffs []*ec.Scalar, x *ec.Scalar) *ec.Scalar {
	acc := ec.ZeroScalar()
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(coeffs[i])
	}
	return acc
}

// lagrangeCoefficients returns the coefficients λ_i such that
// f(0) = Σ λ_i · f(x_i) for the distinct evaluation points x_i = idx+1.
func lagrangeCoefficients(indices []int) ([]*ec.Scalar, error) {
	seen := make(map[int]struct{}, len(indices))
	xs := make([]*ec.Scalar, len(indices))
	for i, idx := range indices {
		if _, dup := seen[idx]; dup {
			return nil, fmt.Errorf("%w: index %d", ErrDuplicateShare, idx)
		}
		seen[idx] = struct{}{}
		xs[i] = ec.ScalarFromUint64(uint64(idx + 1))
	}
	coeffs := make([]*ec.Scalar, len(indices))
	for i := range indices {
		num := ec.OneScalar()
		den := ec.OneScalar()
		for j := range indices {
			if j == i {
				continue
			}
			// num *= (0 - x_j) ; den *= (x_i - x_j)
			num = num.Mul(xs[j].Neg())
			den = den.Mul(xs[i].Sub(xs[j]))
		}
		coeffs[i] = num.Mul(den.Inv())
	}
	return coeffs, nil
}

// Recover reconstructs the secret from at least `threshold` shares.
// Extra shares beyond threshold are ignored (the first threshold are
// used), which keeps recovery deterministic for a given share order.
func Recover(threshold int, shares []Share) (*ec.Scalar, error) {
	if len(shares) < threshold {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(shares), threshold)
	}
	use := shares[:threshold]
	indices := make([]int, threshold)
	for i, s := range use {
		indices[i] = s.Index
	}
	lam, err := lagrangeCoefficients(indices)
	if err != nil {
		return nil, err
	}
	acc := ec.ZeroScalar()
	for i, s := range use {
		acc = acc.Add(lam[i].Mul(s.Value))
	}
	return acc, nil
}

// PointShare is a share whose value is a group element x_i·B for a common
// base B — the form signature shares take in the threshold VRF.
type PointShare struct {
	Index int
	Value *ec.Point
}

// RecoverPoint performs Lagrange interpolation in the exponent:
// given point shares f(x_i)·B it reconstructs f(0)·B.
func RecoverPoint(threshold int, shares []PointShare) (*ec.Point, error) {
	if len(shares) < threshold {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(shares), threshold)
	}
	use := shares[:threshold]
	indices := make([]int, threshold)
	for i, s := range use {
		indices[i] = s.Index
	}
	lam, err := lagrangeCoefficients(indices)
	if err != nil {
		return nil, err
	}
	acc := ec.Infinity()
	for i, s := range use {
		acc = acc.Add(s.Value.Mul(lam[i]))
	}
	return acc, nil
}

// PublicShares derives the per-party public keys g^{f(x_i)} and the global
// public key g^{f(0)} from a dealt share set. Used by the trusted dealer
// to provision verification material.
func PublicShares(shares []Share) []*ec.Point {
	pub := make([]*ec.Point, len(shares))
	for i, s := range shares {
		pub[i] = ec.BaseMul(s.Value)
	}
	return pub
}
