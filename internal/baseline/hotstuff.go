// Package baseline implements simplified comparator protocols for the
// evaluation: a chained-HotStuff engine [36] and a Tendermint-like
// engine [8], both running on the same simulator and engine interface as
// the ICC engines. They reproduce the structural properties §1.1 of the
// paper compares against — HotStuff's 2δ reciprocal throughput but 6δ
// commit latency, and Tendermint's Θ(Δbnd) round time (no optimistic
// responsiveness) — under honest and crash-fault conditions.
//
// Scope note (see DESIGN.md §5): these are benchmark comparators, not
// full reimplementations. They model the happy path plus crash faults
// and timeouts; votes carry placeholder signatures sized like real ones
// so traffic measurements are meaningful, but no cryptographic
// verification is performed.
package baseline

import (
	"time"

	"icc/internal/crypto/hash"
	"icc/internal/engine"
	"icc/internal/types"
)

// Opaque tags for HotStuff messages.
const (
	tagHSProposal uint8 = 1
	tagHSVote     uint8 = 2
	tagHSNewView  uint8 = 3
)

const fakeSigLen = 64

// hsBlock is a HotStuff block.
type hsBlock struct {
	view    uint64
	parent  hash.Digest
	justify uint64 // view of the QC this block carries (justify.block = parent)
	payload []byte
}

func (b *hsBlock) hash() hash.Digest {
	e := types.NewEncoder(64 + len(b.payload))
	e.U64(b.view)
	e.Bytes32(b.parent)
	e.U64(b.justify)
	e.VarBytes(b.payload)
	return hash.Sum("baseline/hotstuff-block", e.Bytes())
}

// HotStuffConfig assembles a chained-HotStuff engine.
type HotStuffConfig struct {
	Self       types.PartyID
	N          int
	DeltaBound time.Duration // pacemaker timeout base
	Payload    func(view uint64) []byte
	OnCommit   func(view uint64, payload []byte, now time.Duration)
}

// HotStuff is a chained-HotStuff engine (three-chain commit rule,
// round-robin leaders, view-timeout pacemaker).
type HotStuff struct {
	cfg HotStuffConfig

	view      uint64
	viewStart time.Duration
	blocks    map[hash.Digest]*hsBlock
	qcView    map[hash.Digest]uint64 // blocks that have a QC, by view of the QC
	qcByView  map[uint64]hash.Digest
	highQC    uint64      // view of the highest known QC
	highBlock hash.Digest // block certified by highQC
	votes     map[hash.Digest]map[types.PartyID]struct{}
	committed uint64 // highest committed view
	proposedV map[uint64]bool

	out []engine.Output
}

// NewHotStuff builds the engine. A genesis block with view 0 and a
// genesis QC is implicit.
func NewHotStuff(cfg HotStuffConfig) *HotStuff {
	if cfg.DeltaBound == 0 {
		cfg.DeltaBound = 100 * time.Millisecond
	}
	if cfg.Payload == nil {
		cfg.Payload = func(uint64) []byte { return nil }
	}
	genesis := &hsBlock{view: 0}
	gh := genesis.hash()
	h := &HotStuff{
		cfg:       cfg,
		view:      1,
		blocks:    map[hash.Digest]*hsBlock{gh: genesis},
		qcView:    map[hash.Digest]uint64{gh: 0},
		qcByView:  map[uint64]hash.Digest{0: gh},
		highQC:    0,
		highBlock: gh,
		votes:     make(map[hash.Digest]map[types.PartyID]struct{}),
		proposedV: make(map[uint64]bool),
	}
	return h
}

// leader returns the round-robin leader of a view.
func (h *HotStuff) leader(v uint64) types.PartyID {
	return types.PartyID(v % uint64(h.cfg.N))
}

func (h *HotStuff) quorum() int { return types.NotaryQuorum(h.cfg.N) }

// ID implements engine.Engine.
func (h *HotStuff) ID() types.PartyID { return h.cfg.Self }

// CurrentRound implements engine.Engine.
func (h *HotStuff) CurrentRound() types.Round { return types.Round(h.view) }

// CommittedView returns the highest committed view.
func (h *HotStuff) CommittedView() uint64 { return h.committed }

// Init implements engine.Engine.
func (h *HotStuff) Init(now time.Duration) []engine.Output {
	h.viewStart = now
	h.tryPropose(now)
	return h.drain()
}

// Tick implements engine.Engine: the pacemaker. On view timeout, move to
// the next view and hand the new leader our highQC.
func (h *HotStuff) Tick(now time.Duration) []engine.Output {
	h.tryPropose(now)
	if now >= h.viewStart+h.timeout() {
		h.advanceView(h.view+1, now)
		h.sendNewView()
		h.tryPropose(now)
	}
	return h.drain()
}

// NextWake implements engine.Engine.
func (h *HotStuff) NextWake(now time.Duration) (time.Duration, bool) {
	next := h.viewStart + h.timeout()
	// A leader recovering from a timeout proposes on the half-timeout
	// boundary; make sure we wake for it.
	if h.leader(h.view) == h.cfg.Self && !h.proposedV[h.view] {
		if half := h.viewStart + h.timeout()/2; half < next && half > now {
			next = half
		}
	}
	return next, true
}

func (h *HotStuff) timeout() time.Duration { return 4 * h.cfg.DeltaBound }

func (h *HotStuff) drain() []engine.Output {
	out := h.out
	h.out = nil
	return out
}

func (h *HotStuff) advanceView(v uint64, now time.Duration) {
	if v <= h.view {
		return
	}
	h.view = v
	h.viewStart = now
}

// tryPropose proposes if we lead the current view and hold a QC from the
// previous view (or timed-out views collapse onto highQC).
func (h *HotStuff) tryPropose(now time.Duration) {
	if h.leader(h.view) != h.cfg.Self || h.proposedV[h.view] {
		return
	}
	// Chained HotStuff: the leader proposes once it holds a QC it can
	// justify with. The happy path wants QC of view−1; after timeouts any
	// highQC works.
	if h.highQC != h.view-1 && now < h.viewStart+h.timeout()/2 {
		return
	}
	h.proposedV[h.view] = true
	b := &hsBlock{
		view:    h.view,
		parent:  h.highBlock,
		justify: h.highQC,
		payload: h.cfg.Payload(h.view),
	}
	bh := b.hash()
	h.blocks[bh] = b
	h.out = append(h.out, engine.Broadcast(encodeHSProposal(b)))
	// Self-processing: leaders vote for their own proposals.
	h.onProposal(b, now)
}

// HandleMessage implements engine.Engine.
func (h *HotStuff) HandleMessage(from types.PartyID, m types.Message, now time.Duration) []engine.Output {
	o, ok := m.(*types.Opaque)
	if !ok {
		return nil
	}
	switch o.Tag {
	case tagHSProposal:
		if b := decodeHSProposal(o.Data); b != nil {
			bh := b.hash()
			if _, dup := h.blocks[bh]; !dup {
				h.blocks[bh] = b
				h.onProposal(b, now)
			}
		}
	case tagHSVote:
		view, bh, okv := decodeHSVote(o.Data)
		if okv {
			h.onVote(from, view, bh, now)
		}
	case tagHSNewView:
		view, bh, okv := decodeHSVote(o.Data) // same shape
		if okv {
			if v, exists := h.qcView[bh]; exists && v > h.highQC {
				h.highQC, h.highBlock = v, bh
			}
			_ = view
		}
	}
	h.tryPropose(now)
	return h.drain()
}

// onProposal applies a proposal: update highQC from the justify, vote,
// advance the view, and run the commit rule.
func (h *HotStuff) onProposal(b *hsBlock, now time.Duration) {
	bh := b.hash()
	// The justify certifies the parent.
	if b.justify >= h.qcView[b.parent] {
		h.qcView[b.parent] = b.justify
		h.qcByView[b.justify] = b.parent
		if b.justify > h.highQC {
			h.highQC, h.highBlock = b.justify, b.parent
		}
	}
	h.commitRule(b, now)
	if b.view < h.view {
		return // stale proposal: no vote
	}
	// Vote to the next leader and move on.
	vote := encodeHSVote(tagHSVote, b.view, bh)
	next := h.leader(b.view + 1)
	if next == h.cfg.Self {
		h.onVote(h.cfg.Self, b.view, bh, now)
	} else {
		h.out = append(h.out, engine.Unicast(next, vote))
	}
	h.advanceView(b.view+1, now)
}

// onVote collects votes as the leader of view+1 and forms a QC.
func (h *HotStuff) onVote(from types.PartyID, view uint64, bh hash.Digest, now time.Duration) {
	if h.leader(view+1) != h.cfg.Self {
		return
	}
	set := h.votes[bh]
	if set == nil {
		set = make(map[types.PartyID]struct{})
		h.votes[bh] = set
	}
	set[from] = struct{}{}
	if len(set) < h.quorum() {
		return
	}
	if v, ok := h.qcView[bh]; !ok || view > v {
		h.qcView[bh] = view
		h.qcByView[view] = bh
		if view > h.highQC {
			h.highQC, h.highBlock = view, bh
		}
	}
}

// commitRule implements the three-chain rule: a proposal carrying
// justify QC(b2) commits b0 when b2 ← b1 ← b0 have consecutive views.
func (h *HotStuff) commitRule(b *hsBlock, now time.Duration) {
	b2, ok := h.blocks[b.parent]
	if !ok || b.justify != b2.view {
		return
	}
	b1, ok := h.blocks[b2.parent]
	if !ok || b2.justify != b1.view || b2.view != b1.view+1 {
		return
	}
	b0, ok := h.blocks[b1.parent]
	if !ok || b1.justify != b0.view || b1.view != b0.view+1 {
		return
	}
	if b0.view <= h.committed {
		return
	}
	// Commit b0 and its uncommitted ancestors, oldest first.
	var chain []*hsBlock
	cur := b0
	for cur != nil && cur.view > h.committed {
		chain = append(chain, cur)
		cur = h.blocks[cur.parent]
	}
	for i := len(chain) - 1; i >= 0; i-- {
		if h.cfg.OnCommit != nil {
			h.cfg.OnCommit(chain[i].view, chain[i].payload, now)
		}
	}
	h.committed = b0.view
}

// sendNewView reports our highQC to the new leader after a timeout.
func (h *HotStuff) sendNewView() {
	msg := encodeHSVote(tagHSNewView, h.highQC, h.highBlock)
	ldr := h.leader(h.view)
	if ldr != h.cfg.Self {
		h.out = append(h.out, engine.Unicast(ldr, msg))
	}
}

// Wire encodings. Votes carry a placeholder signature of realistic size.

func encodeHSProposal(b *hsBlock) *types.Opaque {
	e := types.NewEncoder(128 + len(b.payload))
	e.U64(b.view)
	e.Bytes32(b.parent)
	e.U64(b.justify)
	e.VarBytes(b.payload)
	// justify QC: quorum of placeholder signatures.
	e.VarBytes(make([]byte, fakeSigLen))
	return &types.Opaque{Tag: tagHSProposal, Data: e.Bytes()}
}

func decodeHSProposal(data []byte) *hsBlock {
	d := types.NewDecoder(data)
	b := &hsBlock{}
	b.view = d.U64()
	b.parent = d.Bytes32()
	b.justify = d.U64()
	b.payload = d.VarBytes()
	d.VarBytes() // placeholder QC
	if d.Err() != nil {
		return nil
	}
	return b
}

func encodeHSVote(tag uint8, view uint64, bh hash.Digest) *types.Opaque {
	e := types.NewEncoder(128)
	e.U64(view)
	e.Bytes32(bh)
	e.VarBytes(make([]byte, fakeSigLen))
	return &types.Opaque{Tag: tag, Data: e.Bytes()}
}

func decodeHSVote(data []byte) (uint64, hash.Digest, bool) {
	d := types.NewDecoder(data)
	view := d.U64()
	bh := d.Bytes32()
	d.VarBytes()
	return view, bh, d.Err() == nil
}

var _ engine.Engine = (*HotStuff)(nil)
