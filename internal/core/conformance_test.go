package core

// Conformance tests: each clause of the Tree-Building Subprotocol
// (Fig. 1) and the Finalization Subprotocol (Fig. 2) exercised in
// isolation against a single engine fed hand-crafted, properly signed
// artifacts.

import (
	"crypto/rand"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/crypto/keys"
	"icc/internal/crypto/sig"
	"icc/internal/engine"
	"icc/internal/types"
)

// choreography fabricates valid artifacts on behalf of any party and
// drives one engine under test.
type choreography struct {
	t     *testing.T
	n     int
	pub   *keys.Public
	privs []keys.Private
	// A reference beacon per party to mint genuine beacon shares.
	beacons []*beacon.Beacon
	eng     *Engine
	outs    []engine.Output
	// perm[rank] = party for round 1.
	perm []types.PartyID
}

func newChoreography(t *testing.T, n int, underTestRank int, deltaBound time.Duration) *choreography {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	c := &choreography{t: t, n: n, pub: pub, privs: privs}
	for i := 0; i < n; i++ {
		c.beacons = append(c.beacons, beacon.New(pub.Beacon, privs[i].Beacon, types.PartyID(i), pub.GenesisSeed))
	}
	// Reveal round 1 on a reference beacon to learn the permutation.
	ref := c.beacons[0]
	for i := 0; i < n; i++ {
		s, err := c.beacons[i].ShareForRound(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.AddShare(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := ref.Reveal(1); !ok {
		t.Fatal("reveal failed")
	}
	perm, _ := ref.Permutation(1)
	c.perm = perm

	// Build the engine for the party of the requested rank.
	self := perm[underTestRank]
	c.eng = NewEngine(Config{
		Self:       self,
		Keys:       pub,
		Priv:       privs[self],
		DeltaBound: deltaBound,
	})
	return c
}

// start runs Init and feeds the engine every round-1 beacon share so it
// enters round 1 at time 0.
func (c *choreography) start() {
	c.outs = append(c.outs, c.eng.Init(0)...)
	for i := 0; i < c.n; i++ {
		pid := types.PartyID(i)
		if pid == c.eng.ID() {
			continue
		}
		s, err := c.beacons[i].ShareForRound(1)
		if err != nil {
			c.t.Fatal(err)
		}
		c.outs = append(c.outs, c.eng.HandleMessage(pid, s, 0)...)
	}
}

// deliver feeds a message at a given time.
func (c *choreography) deliver(from types.PartyID, m types.Message, now time.Duration) {
	c.outs = append(c.outs, c.eng.HandleMessage(from, m, now)...)
}

// tick advances time.
func (c *choreography) tick(now time.Duration) {
	c.outs = append(c.outs, c.eng.Tick(now)...)
}

// block crafts a signed round-1 block bundle by the party of the given
// rank.
func (c *choreography) block(rank int, payload string) (*types.Block, *types.Bundle) {
	proposer := c.perm[rank]
	b := &types.Block{Round: 1, Proposer: proposer, ParentHash: c.eng.Pool().RootHash(), Payload: []byte(payload)}
	auth := &types.Authenticator{
		Round: 1, Proposer: proposer, BlockHash: b.Hash(),
		Sig: sig.Sign(c.privs[proposer].Auth, types.DomainAuthenticator,
			types.SigningBytes(1, proposer, b.Hash())),
	}
	return b, &types.Bundle{Messages: []types.Message{&types.BlockMsg{Block: b}, auth}}
}

// nshare crafts a notarization share by `signer` on block b.
func (c *choreography) nshare(b *types.Block, signer types.PartyID) *types.NotarizationShare {
	msg := types.SigningBytes(b.Round, b.Proposer, b.Hash())
	return &types.NotarizationShare{
		Round: b.Round, Proposer: b.Proposer, BlockHash: b.Hash(), Signer: signer,
		Sig: c.privs[signer].Notary.Sign(types.DomainNotarization, msg).Signature,
	}
}

// fshare crafts a finalization share.
func (c *choreography) fshare(b *types.Block, signer types.PartyID) *types.FinalizationShare {
	msg := types.SigningBytes(b.Round, b.Proposer, b.Hash())
	return &types.FinalizationShare{
		Round: b.Round, Proposer: b.Proposer, BlockHash: b.Hash(), Signer: signer,
		Sig: c.privs[signer].Final.Sign(types.DomainFinalization, msg).Signature,
	}
}

// sharesOf extracts the engine's own notarization shares from outputs.
func (c *choreography) sharesOf() []*types.NotarizationShare {
	var out []*types.NotarizationShare
	for _, o := range c.outs {
		if s, ok := o.Msg.(*types.NotarizationShare); ok && s.Signer == c.eng.ID() {
			out = append(out, s)
		}
	}
	return out
}

// TestClauseBLeaderProposesImmediately: Δprop(0) = 0, so the rank-0
// engine proposes the moment it enters the round, extending the root.
func TestClauseBLeaderProposesImmediately(t *testing.T) {
	c := newChoreography(t, 4, 0, 100*time.Millisecond)
	c.start()
	var proposals []*types.Block
	for _, o := range c.outs {
		if bun, ok := o.Msg.(*types.Bundle); ok {
			if bm, ok := bun.Messages[0].(*types.BlockMsg); ok && bm.Block.Proposer == c.eng.ID() {
				proposals = append(proposals, bm.Block)
			}
		}
	}
	if len(proposals) != 1 {
		t.Fatalf("leader emitted %d proposals at t=0, want 1", len(proposals))
	}
	if proposals[0].ParentHash != c.eng.Pool().RootHash() {
		t.Fatal("round-1 proposal does not extend root")
	}
	// Beacon pipelining: a round-2 beacon share must also have gone out.
	foundShare := false
	for _, o := range c.outs {
		if s, ok := o.Msg.(*types.BeaconShare); ok && s.Round == 2 {
			foundShare = true
		}
	}
	if !foundShare {
		t.Fatal("no round-2 beacon share broadcast on entering round 1 (pipelining)")
	}
}

// TestClauseBRankedProposerWaits: a rank-1 engine must not propose
// before Δprop(1) = 2·Δbnd, and must propose at/after it.
func TestClauseBRankedProposerWaits(t *testing.T) {
	const bound = 100 * time.Millisecond
	c := newChoreography(t, 4, 1, bound)
	c.start()
	countProposals := func() int {
		count := 0
		for _, o := range c.outs {
			if bun, ok := o.Msg.(*types.Bundle); ok {
				if bm, ok := bun.Messages[0].(*types.BlockMsg); ok && bm.Block.Proposer == c.eng.ID() {
					count++
				}
			}
		}
		return count
	}
	c.tick(2*bound - time.Millisecond)
	if countProposals() != 0 {
		t.Fatal("rank-1 party proposed before Δprop(1)")
	}
	c.tick(2 * bound)
	if countProposals() != 1 {
		t.Fatal("rank-1 party did not propose at Δprop(1)")
	}
}

// TestClauseCNotarizesLeaderBlockImmediately: Δntry(0) = 0 (ε = 0), so a
// valid rank-0 block gets a notarization share as soon as it arrives.
func TestClauseCNotarizesLeaderBlockImmediately(t *testing.T) {
	c := newChoreography(t, 4, 1, 100*time.Millisecond)
	c.start()
	b0, bundle := c.block(0, "leader block")
	c.deliver(b0.Proposer, bundle, 10*time.Millisecond)
	shares := c.sharesOf()
	if len(shares) != 1 || shares[0].BlockHash != b0.Hash() {
		t.Fatalf("leader block not notarization-shared on arrival (%d shares)", len(shares))
	}
}

// TestClauseCDelaysHigherRanks: a rank-2 block arriving early must wait
// until Δntry(2); and once a lower-rank valid block exists, the
// higher-rank one is never shared (priority rule [r] \ D).
func TestClauseCDelaysHigherRanks(t *testing.T) {
	const bound = 50 * time.Millisecond
	c := newChoreography(t, 4, 0, bound)
	// NOTE: rank-0 engine under test would propose its own block; use a
	// variant where the engine is rank 3 so ranks 1,2 are foreign.
	c = newChoreography(t, 4, 3, bound)
	c.start()
	b2, bundle2 := c.block(2, "rank2")
	c.deliver(b2.Proposer, bundle2, 5*time.Millisecond)
	if len(c.sharesOf()) != 0 {
		t.Fatal("rank-2 block shared before Δntry(2)")
	}
	// At Δntry(2) = 4·Δbnd it is shared (no better block around).
	c.tick(4 * bound)
	shares := c.sharesOf()
	if len(shares) != 1 || shares[0].BlockHash != b2.Hash() {
		t.Fatal("rank-2 block not shared at Δntry(2)")
	}
	// Now a rank-1 block arrives late: it is lower-ranked and not
	// disqualified, so it too gets shared (it is better than rank 2 and
	// its own Δntry already passed).
	b1, bundle1 := c.block(1, "rank1")
	c.deliver(b1.Proposer, bundle1, 4*bound+time.Millisecond)
	shares = c.sharesOf()
	if len(shares) != 2 {
		t.Fatalf("late rank-1 block handling: %d shares", len(shares))
	}
}

// TestClauseCPriorityBlocksHigherRank: when the rank-1 block is already
// present (valid, not disqualified), a rank-2 block must never be
// shared even after its Δntry.
func TestClauseCPriorityBlocksHigherRank(t *testing.T) {
	const bound = 50 * time.Millisecond
	c := newChoreography(t, 4, 3, bound)
	c.start()
	b1, bundle1 := c.block(1, "rank1")
	b2, bundle2 := c.block(2, "rank2")
	c.deliver(b1.Proposer, bundle1, time.Millisecond)
	c.deliver(b2.Proposer, bundle2, 2*time.Millisecond)
	c.tick(10 * bound) // far past every Δntry
	for _, s := range c.sharesOf() {
		if s.BlockHash == b2.Hash() {
			t.Fatal("rank-2 block shared despite a valid rank-1 block (priority violated)")
		}
	}
	shares := c.sharesOf()
	if len(shares) != 1 || shares[0].BlockHash != b1.Hash() {
		t.Fatal("rank-1 block not shared")
	}
}

// TestClauseCEquivocationDisqualifies: two distinct blocks of the same
// rank ⇒ the first is shared, the second is echoed but NOT shared, and
// afterwards even a third block of that rank is ignored.
func TestClauseCEquivocationDisqualifies(t *testing.T) {
	const bound = 50 * time.Millisecond
	c := newChoreography(t, 4, 3, bound)
	c.start()
	b1a, bundleA := c.block(1, "first")
	b1b, bundleB := c.block(1, "second")
	c.deliver(b1a.Proposer, bundleA, time.Millisecond)
	c.tick(2 * bound) // Δntry(1)
	c.deliver(b1b.Proposer, bundleB, 2*bound+time.Millisecond)
	shares := c.sharesOf()
	if len(shares) != 1 || shares[0].BlockHash != b1a.Hash() {
		t.Fatalf("equivocation: %d shares", len(shares))
	}
	// The second block must have been echoed (so others can also
	// disqualify the rank).
	echoed := false
	for _, o := range c.outs {
		if bun, ok := o.Msg.(*types.Bundle); ok {
			if bm, ok := bun.Messages[0].(*types.BlockMsg); ok && bm.Block.Hash() == b1b.Hash() {
				echoed = true
			}
		}
	}
	if !echoed {
		t.Fatal("second equivocating block not echoed")
	}
	// After disqualification, the rank is dead: a rank-2 block can now
	// be shared (the disqualified rank no longer blocks it).
	b2, bundle2 := c.block(2, "rank2 after disqualification")
	c.deliver(b2.Proposer, bundle2, 4*bound+time.Millisecond)
	found := false
	for _, s := range c.sharesOf() {
		if s.BlockHash == b2.Hash() {
			found = true
		}
	}
	if !found {
		t.Fatal("rank-2 block blocked by a disqualified rank")
	}
}

// TestClauseAFinishAndFinalizationShare: a full set of n−t notarization
// shares for the only block in N ⇒ the engine combines and broadcasts a
// notarization AND a finalization share, then moves to round 2.
func TestClauseAFinishAndFinalizationShare(t *testing.T) {
	c := newChoreography(t, 4, 1, 100*time.Millisecond)
	c.start()
	b0, bundle := c.block(0, "leader block")
	c.deliver(b0.Proposer, bundle, time.Millisecond) // engine shares it (N = {b0})
	// Two more shares (engine's own + 2 = 3 = n−t).
	c.deliver(c.perm[0], c.nshare(b0, c.perm[0]), 2*time.Millisecond)
	c.deliver(c.perm[2], c.nshare(b0, c.perm[2]), 3*time.Millisecond)

	var sawNotarization, sawFinalShare bool
	for _, o := range c.outs {
		switch m := o.Msg.(type) {
		case *types.Notarization:
			if m.BlockHash == b0.Hash() {
				sawNotarization = true
			}
		case *types.FinalizationShare:
			if m.BlockHash == b0.Hash() && m.Signer == c.eng.ID() {
				sawFinalShare = true
			}
		}
	}
	if !sawNotarization {
		t.Fatal("no notarization broadcast on finishing the round")
	}
	if !sawFinalShare {
		t.Fatal("no finalization share despite N ⊆ {B}")
	}
	if c.eng.CurrentRound() != 2 {
		t.Fatalf("engine in round %d after finishing round 1", c.eng.CurrentRound())
	}
}

// TestClauseANoFinalizationShareWhenMixed: if the engine shared two
// different blocks (N ⊄ {B}), finishing the round must NOT produce a
// finalization share.
func TestClauseANoFinalizationShareWhenMixed(t *testing.T) {
	const bound = 50 * time.Millisecond
	c := newChoreography(t, 4, 3, bound)
	c.start()
	// Rank-2 block arrives alone and gets shared at Δntry(2)...
	b2, bundle2 := c.block(2, "rank2")
	c.deliver(b2.Proposer, bundle2, time.Millisecond)
	c.tick(4 * bound)
	// ...then the rank-1 block shows up and gets shared too (mixed N).
	b1, bundle1 := c.block(1, "rank1")
	c.deliver(b1.Proposer, bundle1, 4*bound+time.Millisecond)
	if len(c.sharesOf()) != 2 {
		t.Fatalf("setup failed: %d shares", len(c.sharesOf()))
	}
	// Now b1 reaches quorum.
	c.deliver(c.perm[0], c.nshare(b1, c.perm[0]), 4*bound+2*time.Millisecond)
	c.deliver(c.perm[1], c.nshare(b1, c.perm[1]), 4*bound+3*time.Millisecond)
	for _, o := range c.outs {
		if fs, ok := o.Msg.(*types.FinalizationShare); ok && fs.Signer == c.eng.ID() {
			t.Fatal("finalization share sent despite N ⊄ {B}")
		}
	}
	if c.eng.CurrentRound() != 2 {
		t.Fatal("round did not finish")
	}
}

// TestFinalizationSubprotocolOutputsChain: Fig. 2 — a full set of
// finalization shares makes the engine broadcast a finalization and
// commit the chain.
func TestFinalizationSubprotocolOutputsChain(t *testing.T) {
	committed := []*types.Block{}
	c := newChoreography(t, 4, 1, 100*time.Millisecond)
	c.eng.cfg.Hooks.OnCommit = func(b *types.Block, _ time.Duration) {
		committed = append(committed, b)
	}
	c.start()
	b0, bundle := c.block(0, "to finalize")
	c.deliver(b0.Proposer, bundle, time.Millisecond)
	c.deliver(c.perm[0], c.nshare(b0, c.perm[0]), 2*time.Millisecond)
	c.deliver(c.perm[2], c.nshare(b0, c.perm[2]), 3*time.Millisecond)
	// The engine produced its own finalization share; two more complete
	// the quorum.
	c.deliver(c.perm[0], c.fshare(b0, c.perm[0]), 4*time.Millisecond)
	c.deliver(c.perm[2], c.fshare(b0, c.perm[2]), 5*time.Millisecond)

	if len(committed) != 1 || committed[0].Hash() != b0.Hash() {
		t.Fatalf("committed %d blocks", len(committed))
	}
	var sawFinalization bool
	for _, o := range c.outs {
		if f, ok := o.Msg.(*types.Finalization); ok && f.BlockHash == b0.Hash() {
			sawFinalization = true
		}
	}
	if !sawFinalization {
		t.Fatal("no finalization broadcast")
	}
	if c.eng.FinalizedRound() != 1 {
		t.Fatalf("kmax = %d", c.eng.FinalizedRound())
	}
	// Duplicate shares change nothing.
	before := len(committed)
	c.deliver(c.perm[0], c.fshare(b0, c.perm[0]), 6*time.Millisecond)
	if len(committed) != before {
		t.Fatal("double commit")
	}
}

// TestIgnoresForgedArtifacts: artifacts signed with the wrong keys are
// dropped at the pool and never influence the engine.
func TestIgnoresForgedArtifacts(t *testing.T) {
	c := newChoreography(t, 4, 1, 100*time.Millisecond)
	c.start()
	b0, _ := c.block(0, "real block")
	// Authenticator signed by the wrong party.
	forged := &types.Authenticator{
		Round: 1, Proposer: b0.Proposer, BlockHash: b0.Hash(),
		Sig: sig.Sign(c.privs[c.perm[3]].Auth, types.DomainAuthenticator,
			types.SigningBytes(1, b0.Proposer, b0.Hash())),
	}
	c.deliver(c.perm[3], &types.Bundle{Messages: []types.Message{&types.BlockMsg{Block: b0}, forged}}, time.Millisecond)
	c.tick(time.Second) // the engine will propose and share its OWN block
	for _, s := range c.sharesOf() {
		if s.BlockHash == b0.Hash() {
			t.Fatal("engine shared a block with a forged authenticator")
		}
	}
	// Forged notarization share: wrong signer key.
	realBundle := &types.Bundle{Messages: []types.Message{&types.BlockMsg{Block: b0}}}
	_ = realBundle
	bad := c.nshare(b0, c.perm[0])
	bad.Signer = c.perm[2] // claims to be someone else
	c.deliver(c.perm[2], bad, 2*time.Millisecond)
	if c.eng.Pool().NotarShareCount(b0.Hash()) != 0 {
		t.Fatal("forged notarization share admitted")
	}
}
