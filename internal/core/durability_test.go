package core

// Durability tests: crash recovery from the WAL, certified checkpoints
// pruning the log, restart from checkpoint + WAL suffix, prune-boundary
// semantics, behind-prune-horizon detection, and the checkpoint-transfer
// rejoin path — all on the deterministic simnet cluster.

import (
	"bytes"
	"crypto/rand"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/checkpoint"
	"icc/internal/crypto/keys"
	"icc/internal/simnet"
	"icc/internal/types"
	"icc/internal/wal"
)

// chainState is a minimal deterministic replicated state for snapshot
// tests: the concatenation of committed block hashes. Every honest
// party commits the same chain, so every party's state bytes agree.
type chainState struct {
	data []byte
}

func (s *chainState) apply(b *types.Block) {
	d := b.Hash()
	s.data = append(s.data, d[:]...)
}

func (s *chainState) snapshot() []byte { return append([]byte(nil), s.data...) }

func (s *chainState) restore(b []byte) error {
	s.data = append([]byte(nil), b...)
	return nil
}

// durableHarness is a simnet cluster where every party runs with a WAL
// (and optionally a checkpoint store) under a per-test temp directory.
type durableHarness struct {
	pub    *keys.Public
	privs  []keys.Private
	net    *simnet.Network
	eng    []*Engine
	wals   []*wal.Log
	stores []*checkpoint.Store
	states []*chainState
	dirs   []string
	// committed[p] is party p's committed chain; stateAt[p][k] the state
	// snapshot immediately after applying the round-k block.
	committed [][]*types.Block
	stateAt   []map[types.Round][]byte

	opts durableOptions
}

type durableOptions struct {
	n          int
	seed       int64
	interval   types.Round // CheckpointInterval (0 = no checkpoints)
	pruneDepth types.Round
	resync     time.Duration
	segBytes   int64 // WAL segment size (0 = default, i.e. one segment)
	fault      map[int]wal.FaultHook
	// realBeacon selects the production BLS beacon, whose digests chain:
	// a laggard cannot verify rounds past its prune horizon, which is
	// exactly the stuck state the resync-lost and checkpoint-transfer
	// paths exist for. The simulated beacon derives digests from shares
	// alone, so simulated laggards can always jump-commit back in.
	realBeacon bool
}

func newDurableHarness(t testing.TB, opts durableOptions) *durableHarness {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, opts.n)
	if err != nil {
		t.Fatal(err)
	}
	h := &durableHarness{
		pub:       pub,
		privs:     privs,
		opts:      opts,
		committed: make([][]*types.Block, opts.n),
		stateAt:   make([]map[types.Round][]byte, opts.n),
	}
	h.net = simnet.New(simnet.Options{Seed: opts.seed, Delay: simnet.Fixed{D: 10 * time.Millisecond}})
	base := t.TempDir()
	for i := 0; i < opts.n; i++ {
		h.dirs = append(h.dirs, filepath.Join(base, "party", string(rune('0'+i))))
		h.stateAt[i] = make(map[types.Round][]byte)
		h.states = append(h.states, &chainState{})
		eng, w, s := h.buildEngine(t, i)
		h.eng = append(h.eng, eng)
		h.wals = append(h.wals, w)
		h.stores = append(h.stores, s)
		h.net.AddNode(eng, true)
	}
	t.Cleanup(func() {
		for _, w := range h.wals {
			_ = w.Close()
		}
		for _, s := range h.stores {
			s.Close()
		}
	})
	return h
}

// buildEngine constructs party i's engine over its durable directories.
// Calling it again after a crash models a process restart: fresh
// in-memory state, same disk.
func (h *durableHarness) buildEngine(t testing.TB, i int) (*Engine, *wal.Log, *checkpoint.Store) {
	t.Helper()
	w, err := wal.Open(filepath.Join(h.dirs[i], "wal"), wal.Options{
		SegmentBytes: h.opts.segBytes,
		Fault:        h.opts.fault[i],
	})
	if err != nil {
		t.Fatal(err)
	}
	var store *checkpoint.Store
	if h.opts.interval > 0 {
		store, err = checkpoint.OpenStore(filepath.Join(h.dirs[i], "checkpoints"), checkpoint.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := h.states[i]
	var src beacon.Source
	if !h.opts.realBeacon {
		src = beacon.NewSimulated(h.opts.n, types.PartyID(i), h.pub.GenesisSeed)
	}
	eng := NewEngine(Config{
		Self:               types.PartyID(i),
		Keys:               h.pub,
		Priv:               h.privs[i],
		Beacon:             src,
		DeltaBound:         100 * time.Millisecond,
		ResyncInterval:     h.opts.resync,
		PruneDepth:         h.opts.pruneDepth,
		WAL:                w,
		Checkpoints:        store,
		CheckpointInterval: h.opts.interval,
		StateSnapshot:      st.snapshot,
		StateRestore:       st.restore,
		Hooks: Hooks{
			OnCommit: func(b *types.Block, now time.Duration) {
				st.apply(b)
				h.committed[i] = append(h.committed[i], b)
				h.stateAt[i][b.Round] = st.snapshot()
			},
		},
	})
	return eng, w, store
}

// runUntilFinalized drives the network until pred parties have
// finalized at least k rounds.
func (h *durableHarness) runUntilFinalized(t testing.TB, k types.Round, parties ...int) {
	t.Helper()
	ok := h.net.RunUntil(func() bool {
		for _, p := range parties {
			if h.eng[p].FinalizedRound() < k {
				return false
			}
		}
		return true
	}, 10*time.Minute)
	if !ok {
		for _, p := range parties {
			t.Logf("party %d: round %d finalized %d", p, h.eng[p].CurrentRound(), h.eng[p].FinalizedRound())
		}
		t.Fatalf("parties %v did not finalize round %d in simulated time", parties, k)
	}
}

// recoverParty models kill -9 + restart for party i: the WAL loses its
// unsynced tail (Crash closes without a final flush), then a fresh
// engine over the same directory replays. The recovered engine is NOT
// re-attached to the network; tests inspect it directly.
func (h *durableHarness) recoverParty(t testing.TB, i int) *Engine {
	t.Helper()
	h.wals[i].Crash()
	if h.stores[i] != nil {
		h.stores[i].Close()
	}
	// Reset in-memory state the way a dead process does, keeping the
	// recorded history for assertions.
	h.states[i] = &chainState{}
	h.committed[i] = nil
	h.stateAt[i] = make(map[types.Round][]byte)
	eng, w, s := h.buildEngine(t, i)
	h.wals[i], h.stores[i] = w, s
	if _, err := eng.Recover(); err != nil {
		t.Fatalf("recover party %d: %v", i, err)
	}
	return eng
}

// TestRecoverFromWALResumesFrontier: a party killed mid-run replays its
// WAL into a fresh engine and lands back on the same finalized chain —
// the recovered commits are a prefix of the live history with identical
// state bytes, and the engine is ready to run (not replaying, no queued
// output).
func TestRecoverFromWALResumesFrontier(t *testing.T) {
	h := newDurableHarness(t, durableOptions{n: 4, seed: 11})
	h.net.Start()
	h.runUntilFinalized(t, 8, 0, 1, 2, 3)
	h.net.Crash(0)

	liveChain := append([]*types.Block(nil), h.committed[0]...)
	liveState := make(map[types.Round][]byte, len(h.stateAt[0]))
	for k, v := range h.stateAt[0] {
		liveState[k] = v
	}
	liveFinal := h.eng[0].FinalizedRound()
	liveRound := h.eng[0].CurrentRound()

	rec := h.recoverParty(t, 0)
	if rec.Replaying() {
		t.Fatal("engine still marked replaying after Recover")
	}
	if got := rec.FinalizedRound(); got > liveFinal || got == 0 {
		t.Fatalf("recovered frontier %d, live was %d", got, liveFinal)
	}
	if rec.CurrentRound() > liveRound {
		t.Fatalf("recovered round %d ahead of live round %d", rec.CurrentRound(), liveRound)
	}
	// The unsynced tail may be lost, never rewritten: replayed commits
	// must be a prefix of what the live process committed.
	if len(h.committed[0]) == 0 || len(h.committed[0]) > len(liveChain) {
		t.Fatalf("replayed %d commits, live had %d", len(h.committed[0]), len(liveChain))
	}
	for i, b := range h.committed[0] {
		if b.Hash() != liveChain[i].Hash() {
			t.Fatalf("replayed commit %d diverges from live history", i)
		}
	}
	k := rec.FinalizedRound()
	if want, ok := liveState[k]; ok {
		if got := h.states[0].snapshot(); !bytes.Equal(got, want) {
			t.Fatalf("recovered state at round %d does not match live state", k)
		}
	}
	// Replay must not have queued any output for resending.
	if outs := rec.Tick(0); len(outs) != 0 {
		for _, o := range outs {
			t.Logf("leaked output: %T", o.Msg)
		}
		t.Fatal("recovered engine resent artifacts on first tick")
	}
}

// TestCheckpointCertifiedAndPrunesWAL: with CheckpointInterval set, the
// cluster certifies boundary checkpoints (t+1 shares, verifiable from
// public keys alone) and prunes WAL segments below them.
func TestCheckpointCertifiedAndPrunesWAL(t *testing.T) {
	h := newDurableHarness(t, durableOptions{
		n: 4, seed: 12,
		interval:   4,
		pruneDepth: 8,
		resync:     500 * time.Millisecond,
		segBytes:   1 << 10, // rotate often enough that pruning has closed segments to delete
	})
	h.net.Start()
	h.runUntilFinalized(t, 24, 0, 1, 2, 3)
	for i := 0; i < 4; i++ {
		cp, err := h.stores[i].Latest()
		if err != nil || cp == nil {
			t.Fatalf("party %d: no certified checkpoint: %v", i, err)
		}
		if cp.Round < 8 || cp.Round%4 != 0 {
			t.Fatalf("party %d: unexpected checkpoint round %d", i, cp.Round)
		}
		if err := checkpoint.Verify(h.pub, cp); err != nil {
			t.Fatalf("party %d: stored checkpoint does not verify: %v", i, err)
		}
		// The certified state is the state every party had at the boundary.
		if want, ok := h.stateAt[i][cp.Round]; ok {
			if checkpoint.StateDigest(want) != cp.StateHash {
				t.Fatalf("party %d: checkpoint state hash does not match executed state at round %d", i, cp.Round)
			}
		}
	}
	// The WAL must have been truncated below the certified boundaries:
	// with the frontier at 24 and the newest checkpoint at or past 20,
	// the segments holding the first boundary's history (rounds ≤ 4) are
	// redundant and must be gone from every party's log.
	for i := 0; i < 4; i++ {
		stale := 0
		_ = h.wals[i].Replay(func(m types.Message) {
			if bm, ok := m.(*types.BlockMsg); ok && bm.Block != nil && bm.Block.Round <= 4 {
				stale++
			}
		})
		if stale > 0 {
			t.Fatalf("party %d: %d block records at or below round 4 survive despite checkpoint at %d",
				i, stale, h.stores[i].LatestRound())
		}
	}
}

// TestRecoverFromCheckpointAndWALSuffix: after checkpoints have pruned
// the log, a restart rebuilds from the newest certified checkpoint plus
// the WAL records above it, and the restored state matches what the
// live process had executed at the recovered frontier.
func TestRecoverFromCheckpointAndWALSuffix(t *testing.T) {
	h := newDurableHarness(t, durableOptions{
		n: 4, seed: 13,
		interval:   4,
		pruneDepth: 8,
		resync:     500 * time.Millisecond,
		segBytes:   4 << 10,
	})
	h.net.Start()
	h.runUntilFinalized(t, 16, 0, 1, 2, 3)
	h.net.Crash(2)

	liveState := make(map[types.Round][]byte, len(h.stateAt[2]))
	for k, v := range h.stateAt[2] {
		liveState[k] = v
	}
	ckptRound := h.stores[2].LatestRound()
	if ckptRound == 0 {
		t.Fatal("no checkpoint on disk before the crash")
	}

	rec := h.recoverParty(t, 2)
	if got := rec.FinalizedRound(); got < ckptRound {
		t.Fatalf("recovered frontier %d below the stored checkpoint %d", got, ckptRound)
	}
	k := rec.FinalizedRound()
	want, ok := liveState[k]
	if !ok {
		t.Fatalf("recovered frontier %d was never a live commit", k)
	}
	if got := h.states[2].snapshot(); !bytes.Equal(got, want) {
		t.Fatalf("state restored from checkpoint+WAL differs from live execution at round %d", k)
	}
	// Replayed commits only cover rounds above the checkpoint; below it
	// the state came from the snapshot.
	for _, b := range h.committed[2] {
		if b.Round <= ckptRound {
			t.Fatalf("replay re-committed round %d at or below the checkpoint %d", b.Round, ckptRound)
		}
	}
}

// TestPruneBoundaryExact locks the retention cut: with PruneDepth d and
// frontier kmax, rounds strictly below kmax−d are gone from the pool
// and the beacon refuses their shares, while every round at or above
// the cut is still served. An off-by-one here either leaks memory or
// strands laggards one round early.
func TestPruneBoundaryExact(t *testing.T) {
	const d = 8
	h := newDurableHarness(t, durableOptions{n: 4, seed: 14, pruneDepth: d})
	h.net.Start()
	h.runUntilFinalized(t, 20, 0, 1, 2, 3)
	for i := 0; i < 4; i++ {
		e := h.eng[i]
		cut := e.FinalizedRound() - d
		for k := types.Round(1); k < cut; k++ {
			if blocks := e.Pool().BlocksInRound(k); len(blocks) != 0 {
				t.Fatalf("party %d: round %d (< cut %d) still holds %d blocks", i, k, cut, len(blocks))
			}
		}
		// The cut itself and everything the engine committed after it
		// must remain servable for artifact catch-up.
		for k := cut; k <= e.FinalizedRound(); k++ {
			if len(e.Pool().BlocksInRound(k)) == 0 {
				t.Fatalf("party %d: round %d (>= cut %d) was pruned", i, k, cut)
			}
		}
		// Beacon watermark aligns with the pool cut: shares below it are
		// refused, at it they are signable.
		if _, err := e.cfg.Beacon.ShareForRound(cut - 1); !errors.Is(err, beacon.ErrPruned) {
			t.Fatalf("party %d: share below the cut gave %v, want ErrPruned", i, err)
		}
		if _, err := e.cfg.Beacon.ShareForRound(cut); err != nil {
			t.Fatalf("party %d: share at the cut refused: %v", i, err)
		}
	}
}

// TestResyncLostDetection: a partitioned party that falls more than
// PruneDepth behind a cluster with no checkpoint path flags itself lost
// (typed error + hook) instead of polling Status forever.
func TestResyncLostDetection(t *testing.T) {
	const d = 8
	var lostGap types.Round
	h := newDurableHarness(t, durableOptions{
		n: 4, seed: 15,
		pruneDepth: d,
		resync:     300 * time.Millisecond,
		realBeacon: true,
	})
	lostFired := 0
	base := h.eng[3].cfg.Hooks
	h.eng[3].cfg.Hooks.OnResyncLost = func(gap types.Round, now time.Duration) {
		lostFired++
		lostGap = gap
		if base.OnResyncLost != nil {
			base.OnResyncLost(gap, now)
		}
	}
	h.net.Start()
	h.runUntilFinalized(t, 2, 3)
	// Crash (messages lost), not Partition (messages queued): eventual
	// delivery would hand the healed node the complete backlog and it
	// would replay history the ordinary way. A crashed node misses the
	// traffic for good — the hole only resync could fill, except the
	// peers have pruned it.
	h.net.Crash(3)
	h.runUntilFinalized(t, h.eng[3].CurrentRound()+2*d, 0, 1, 2)
	h.net.Restore(3)
	ok := h.net.RunUntil(func() bool { return h.eng[3].ResyncLost() != nil }, 2*time.Minute)
	if !ok {
		t.Fatalf("laggard at round %d never flagged resync-lost (frontier %d)",
			h.eng[3].CurrentRound(), h.eng[0].FinalizedRound())
	}
	var lostErr *ResyncLostError
	if !errors.As(h.eng[3].ResyncLost(), &lostErr) {
		t.Fatalf("ResyncLost returned %T, want *ResyncLostError", h.eng[3].ResyncLost())
	}
	if lostErr.PruneDepth != d || lostErr.Frontier <= lostErr.Round+d {
		t.Fatalf("implausible lost error: %v", lostErr)
	}
	if lostFired != 1 {
		t.Fatalf("OnResyncLost fired %d times, want exactly once", lostFired)
	}
	if lostGap <= d {
		t.Fatalf("reported gap %d not beyond the prune horizon %d", lostGap, d)
	}
}

// TestCheckpointTransferRejoin is the tentpole acceptance path: a party
// partitioned until the cluster's frontier is beyond its prune horizon
// rejoins via a verified checkpoint transfer — installing a peer's
// certified state and committing live rounds again, with state bytes
// identical to the responders'.
func TestCheckpointTransferRejoin(t *testing.T) {
	const d = 8
	h := newDurableHarness(t, durableOptions{
		n: 4, seed: 16,
		interval:   4,
		pruneDepth: d,
		resync:     300 * time.Millisecond,
		segBytes:   4 << 10,
		realBeacon: true,
	})
	installed := 0
	h.eng[3].cfg.Hooks.OnCheckpointInstalled = func(k types.Round, now time.Duration) { installed++ }
	h.net.Start()
	h.runUntilFinalized(t, 2, 3)
	// Crash, not Partition: see TestResyncLostDetection.
	h.net.Crash(3)
	stuckAt := h.eng[3].CurrentRound()
	h.runUntilFinalized(t, stuckAt+3*d, 0, 1, 2)
	h.net.Restore(3)

	rejoinTarget := h.eng[0].FinalizedRound()
	ok := h.net.RunUntil(func() bool { return h.eng[3].FinalizedRound() >= rejoinTarget }, 5*time.Minute)
	if !ok {
		t.Fatalf("laggard stuck at round %d / finalized %d (cluster frontier %d)",
			h.eng[3].CurrentRound(), h.eng[3].FinalizedRound(), h.eng[0].FinalizedRound())
	}
	if installed == 0 {
		t.Fatal("laggard caught up without installing a checkpoint — transfer path untested")
	}
	if err := h.eng[3].ResyncLost(); err != nil {
		t.Fatalf("rejoined party still flagged lost: %v", err)
	}
	// Post-install commits must produce the same state bytes as the
	// responders at every shared round.
	compared := 0
	for k, st := range h.stateAt[3] {
		if want, ok := h.stateAt[0][k]; ok {
			if !bytes.Equal(st, want) {
				t.Fatalf("state divergence at round %d after checkpoint rejoin", k)
			}
			compared++
		}
	}
	if compared == 0 {
		t.Fatal("no common committed rounds to compare after rejoin")
	}
}

// TestWALFaultDegradesNodeNotCluster: fsync failures flip one party's
// WAL to degraded (memory-only) without stopping it from participating;
// the cluster keeps finalizing.
func TestWALFaultDegradesNodeNotCluster(t *testing.T) {
	calls := 0
	h := newDurableHarness(t, durableOptions{
		n: 4, seed: 17,
		fault: map[int]wal.FaultHook{
			1: func(op string) error {
				if op == "sync" {
					calls++
					if calls > 3 {
						return errors.New("injected: disk gone")
					}
				}
				return nil
			},
		},
	})
	h.net.Start()
	h.runUntilFinalized(t, 10, 0, 1, 2, 3)
	if !h.wals[1].Degraded() {
		t.Fatal("injected sync failures did not degrade the WAL")
	}
	if h.wals[0].Degraded() {
		t.Fatal("healthy party's WAL degraded")
	}
}
