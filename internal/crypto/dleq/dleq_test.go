package dleq

import (
	"crypto/rand"
	"testing"

	"icc/internal/crypto/ec"
)

func setup(t *testing.T) (x *ec.Scalar, base2, pub1, pub2 *ec.Point) {
	t.Helper()
	x, err := ec.RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	base2 = ec.HashToPoint([]byte("message to sign"))
	pub1 = ec.BaseMul(x)
	pub2 = base2.Mul(x)
	return x, base2, pub1, pub2
}

func TestProveVerify(t *testing.T) {
	x, base2, pub1, pub2 := setup(t)
	ctx := []byte("round 7 beacon share")
	p, err := Prove(rand.Reader, x, base2, pub1, pub2, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, base2, pub1, pub2, ctx); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

func TestVerifyRejectsWrongExponent(t *testing.T) {
	x, base2, pub1, _ := setup(t)
	// pub2 computed with a different exponent.
	y, _ := ec.RandomScalar(rand.Reader)
	badPub2 := base2.Mul(y)
	p, err := Prove(rand.Reader, x, base2, pub1, badPub2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, base2, pub1, badPub2, nil); err == nil {
		t.Fatal("proof over mismatched exponents verified")
	}
}

func TestVerifyRejectsWrongContext(t *testing.T) {
	x, base2, pub1, pub2 := setup(t)
	p, err := Prove(rand.Reader, x, base2, pub1, pub2, []byte("ctx-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, base2, pub1, pub2, []byte("ctx-b")); err == nil {
		t.Fatal("proof verified under a different context")
	}
}

func TestVerifyRejectsTamperedProof(t *testing.T) {
	x, base2, pub1, pub2 := setup(t)
	p, err := Prove(rand.Reader, x, base2, pub1, pub2, nil)
	if err != nil {
		t.Fatal(err)
	}
	tampered := &Proof{C: p.C, Z: p.Z.Add(ec.OneScalar())}
	if err := Verify(tampered, base2, pub1, pub2, nil); err == nil {
		t.Fatal("tampered proof verified")
	}
	if err := Verify(&Proof{}, base2, pub1, pub2, nil); err == nil {
		t.Fatal("empty proof verified")
	}
	if err := Verify(nil, base2, pub1, pub2, nil); err == nil {
		t.Fatal("nil proof verified")
	}
}

func TestVerifyRejectsSwappedBases(t *testing.T) {
	x, base2, pub1, pub2 := setup(t)
	p, err := Prove(rand.Reader, x, base2, pub1, pub2, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := ec.HashToPoint([]byte("different base"))
	if err := Verify(p, other, pub1, pub2, nil); err == nil {
		t.Fatal("proof verified under a different second base")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	x, base2, pub1, pub2 := setup(t)
	p, err := Prove(rand.Reader, x, base2, pub1, pub2, []byte("ctx"))
	if err != nil {
		t.Fatal(err)
	}
	enc := p.Encode()
	if len(enc) != ProofLen {
		t.Fatalf("encoded length %d, want %d", len(enc), ProofLen)
	}
	q, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(q, base2, pub1, pub2, []byte("ctx")); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
	if _, err := Decode(enc[:10]); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func BenchmarkProve(b *testing.B) {
	x, _ := ec.RandomScalar(rand.Reader)
	base2 := ec.HashToPoint([]byte("m"))
	pub1, pub2 := ec.BaseMul(x), base2.Mul(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Prove(rand.Reader, x, base2, pub1, pub2, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	x, _ := ec.RandomScalar(rand.Reader)
	base2 := ec.HashToPoint([]byte("m"))
	pub1, pub2 := ec.BaseMul(x), base2.Mul(x)
	p, _ := Prove(rand.Reader, x, base2, pub1, pub2, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(p, base2, pub1, pub2, nil); err != nil {
			b.Fatal(err)
		}
	}
}
