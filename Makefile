GO ?= go

.PHONY: build test verify verify2 race vet bench bench-scale

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verify: the invariant every PR must keep green.
verify: build vet test

vet:
	$(GO) vet ./...

# Race-test the concurrency-heavy layers (real goroutines + sockets).
race:
	$(GO) test -race ./internal/obs/... ./internal/transport/... ./internal/runtime/... ./internal/simnet/... ./internal/gossip/... ./internal/pool/... ./internal/verify/... ./internal/backfill/... ./internal/beacon/... ./internal/wal/... ./internal/checkpoint/... ./internal/gateway/... ./internal/statemachine/...

# Regenerate the evaluation tables and record a machine-readable
# BENCH_<timestamp>.json snapshot in the repo root.
bench:
	$(GO) run ./cmd/iccbench -json

# The scale-out chart alone (E13): commits/s and bytes/party for
# n ∈ {16, 31, 64, 100}, with the relay-aggregation A/B in the json.
bench-scale:
	$(GO) run ./cmd/iccbench -exp scaleout -json

# Tier-2 verify: static analysis plus race detection on the layers where
# goroutines, channels, and sockets actually interleave.
verify2: vet race
