// Package thresig implements the unique (t, t+1, n)-threshold signature
// scheme S_beacon required by the ICC random beacon (paper §2.3, approach
// (iii)). A signature on message m is the group element sk·H2C(m), where
// sk is Shamir-shared among the n parties: signature shares are
// sk_i·H2C(m) with a DLEQ proof of correctness, and any threshold of
// valid shares combine — via Lagrange interpolation in the exponent — to
// the unique signature point.
//
// Uniqueness is the property the beacon needs: whichever subset of
// parties contributes shares, the combined signature (and hence the
// beacon value derived by hashing it) is identical, and it is
// unpredictable until at least one honest party has released a share.
package thresig

import (
	"errors"
	"fmt"
	"io"

	"icc/internal/crypto"
	"icc/internal/crypto/dleq"
	"icc/internal/crypto/ec"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/shamir"
)

// PublicInfo is the public key material for one scheme instance: the
// global public key and the per-party share public keys, as provisioned
// by the trusted dealer (paper §3.1).
type PublicInfo struct {
	N         int
	Threshold int
	Global    *ec.Point   // sk·G
	Shares    []*ec.Point // sk_i·G, indexed by party
}

// SecretShare is one party's signing key share.
type SecretShare struct {
	Index int
	Key   *ec.Scalar
}

// SigShare is a signature share together with its proof of correctness.
type SigShare struct {
	Index int
	Point *ec.Point // sk_i · H2C(m)
	Proof *dleq.Proof
}

// Signature is a combined (unique) threshold signature.
type Signature struct {
	Point *ec.Point // sk · H2C(m)
}

// Errors returned by the package. ErrBadShare wraps the repository-wide
// crypto.ErrBadShare sentinel for cross-scheme classification.
var (
	ErrBadIndex        = errors.New("thresig: share index out of range")
	ErrBadShare        = fmt.Errorf("thresig: %w", crypto.ErrBadShare)
	ErrNotEnoughShares = errors.New("thresig: not enough valid shares")
)

// Deal generates a fresh scheme instance with the given threshold.
// For the ICC beacon, threshold = t+1 so that t corrupt parties can never
// compute the next beacon value alone, while any t+1 parties can.
func Deal(rng io.Reader, threshold, n int) (*PublicInfo, []SecretShare, error) {
	sk, err := ec.RandomScalar(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("thresig: sampling master key: %w", err)
	}
	shares, err := shamir.Deal(rng, sk, threshold, n)
	if err != nil {
		return nil, nil, fmt.Errorf("thresig: dealing: %w", err)
	}
	pub := &PublicInfo{
		N:         n,
		Threshold: threshold,
		Global:    ec.BaseMul(sk),
		Shares:    shamir.PublicShares(shares),
	}
	secrets := make([]SecretShare, n)
	for i, s := range shares {
		secrets[i] = SecretShare{Index: s.Index, Key: s.Value}
	}
	return pub, secrets, nil
}

// messagePoint maps a message into the group.
func messagePoint(msg []byte) *ec.Point {
	d := hash.Sum(hash.DomainBeacon, msg)
	return ec.HashToPoint(d[:])
}

// Sign produces this party's signature share on msg.
func Sign(rng io.Reader, sk SecretShare, msg []byte) (*SigShare, error) {
	h := messagePoint(msg)
	pt := h.Mul(sk.Key)
	proof, err := dleq.Prove(rng, sk.Key, h, ec.BaseMul(sk.Key), pt, msg)
	if err != nil {
		return nil, fmt.Errorf("thresig: proving share: %w", err)
	}
	return &SigShare{Index: sk.Index, Point: pt, Proof: proof}, nil
}

// VerifyShare checks that a signature share was correctly computed with
// the registered key share of its claimed party.
func (p *PublicInfo) VerifyShare(msg []byte, s *SigShare) error {
	if s == nil || s.Index < 0 || s.Index >= p.N {
		return ErrBadIndex
	}
	if s.Point == nil || !s.Point.IsOnCurve() {
		return fmt.Errorf("%w: point off curve", ErrBadShare)
	}
	h := messagePoint(msg)
	if err := dleq.Verify(s.Proof, h, p.Shares[s.Index], s.Point, msg); err != nil {
		return fmt.Errorf("%w: %v", ErrBadShare, err)
	}
	return nil
}

// Combine verifies the given shares and combines any threshold of valid
// ones into the unique signature. Invalid or duplicate shares are skipped
// rather than failing the combination, matching the protocol's tolerance
// of corrupt contributions.
func (p *PublicInfo) Combine(msg []byte, shares []*SigShare) (*Signature, error) {
	valid := make([]shamir.PointShare, 0, p.Threshold)
	seen := make(map[int]struct{}, len(shares))
	for _, s := range shares {
		if len(valid) == p.Threshold {
			break
		}
		if s == nil {
			continue
		}
		if _, dup := seen[s.Index]; dup {
			continue
		}
		if err := p.VerifyShare(msg, s); err != nil {
			continue
		}
		seen[s.Index] = struct{}{}
		valid = append(valid, shamir.PointShare{Index: s.Index, Value: s.Point})
	}
	if len(valid) < p.Threshold {
		return nil, fmt.Errorf("%w: %d valid of %d needed", ErrNotEnoughShares, len(valid), p.Threshold)
	}
	pt, err := shamir.RecoverPoint(p.Threshold, valid)
	if err != nil {
		return nil, fmt.Errorf("thresig: combining: %w", err)
	}
	return &Signature{Point: pt}, nil
}

// Digest hashes the unique signature into a 32-byte value — the beacon
// output R_k for the round (modelled as a random oracle, paper §2.3).
func (s *Signature) Digest() hash.Digest {
	return hash.Sum(hash.DomainBeacon, s.Point.Encode())
}

// Encode serialises the signature point.
func (s *Signature) Encode() []byte { return s.Point.Encode() }

// DecodeSignature parses an encoded signature.
func DecodeSignature(b []byte) (*Signature, error) {
	pt, err := ec.DecodePoint(b)
	if err != nil {
		return nil, fmt.Errorf("thresig: decoding signature: %w", err)
	}
	return &Signature{Point: pt}, nil
}

// SigShareLen is the wire size of an encoded share (point + proof).
const SigShareLen = ec.PointLen + dleq.ProofLen

// Encode serialises a share as point || proof (the index travels in the
// enclosing protocol message).
func (s *SigShare) Encode() []byte {
	out := make([]byte, 0, SigShareLen)
	out = append(out, s.Point.Encode()...)
	out = append(out, s.Proof.Encode()...)
	return out
}

// DecodeSigShare parses an encoded share for the given party index.
func DecodeSigShare(index int, b []byte) (*SigShare, error) {
	if len(b) != SigShareLen {
		return nil, fmt.Errorf("%w: length %d", ErrBadShare, len(b))
	}
	pt, err := ec.DecodePoint(b[:ec.PointLen])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadShare, err)
	}
	proof, err := dleq.Decode(b[ec.PointLen:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadShare, err)
	}
	return &SigShare{Index: index, Point: pt, Proof: proof}, nil
}
