// Package core implements the ICC family of atomic-broadcast engines:
// ICC0 (paper §3, Figures 1 and 2), and — via dissemination wrappers in
// the gossip and rbc packages — the ICC1 and ICC2 variants.
//
// The engine is an event-driven transliteration of the paper's blocking
// pseudocode: every "wait for" clause of the Tree-Building Subprotocol
// (Fig. 1) and the Finalization Subprotocol (Fig. 2) becomes a condition
// re-evaluated whenever the pool changes or a timer fires.
package core

import (
	"time"

	"icc/internal/beacon"
	"icc/internal/checkpoint"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/pool"
	"icc/internal/types"
	"icc/internal/wal"
)

// DefaultPruneDepth is the standard pool/beacon retention horizon: how
// many rounds of artifacts behind the finalized watermark a node keeps
// for serving laggards. Every deployment entry point (iccnode, iccsim,
// the experiment harness) shares this value unless explicitly tuned.
//
// Retention and checkpointing interlock: a laggard whose gap exceeds
// PruneDepth can no longer be healed by artifact resync (its peers have
// pruned the rounds it needs) and must instead install a certified
// checkpoint. CheckpointInterval should therefore be comfortably below
// PruneDepth, so that by the time artifacts for a round are pruned, a
// checkpoint at or above that round already exists.
const DefaultPruneDepth types.Round = 128

// PayloadSource provides block payloads. getPayload(B_p) of Fig. 1: the
// implementation may inspect the parent and, through lookup, the whole
// chain it extends (e.g. to avoid duplicating commands, paper §3.3).
type PayloadSource interface {
	GetPayload(round types.Round, parent *types.Block, lookup func(hash.Digest) *types.Block) []byte
}

// EmptyPayload proposes empty payloads (useful for protocol-only tests
// and the "without load" scenario of Table 1).
type EmptyPayload struct{}

// GetPayload implements PayloadSource.
func (EmptyPayload) GetPayload(types.Round, *types.Block, func(hash.Digest) *types.Block) []byte {
	return nil
}

// SizedPayload proposes deterministic filler payloads of a fixed size,
// modelling batches of user commands of a given volume.
type SizedPayload struct {
	Size int
}

// GetPayload implements PayloadSource.
func (s SizedPayload) GetPayload(round types.Round, _ *types.Block, _ func(hash.Digest) *types.Block) []byte {
	p := make([]byte, s.Size)
	seed := hash.SumUint64(hash.DomainPayload, uint64(round))
	for i := range p {
		p[i] = seed[i%len(seed)]
	}
	return p
}

// Hooks are optional instrumentation callbacks; any field may be nil.
type Hooks struct {
	// OnEnterRound fires when the party computes the round's beacon and
	// starts the round in earnest.
	OnEnterRound func(k types.Round, now time.Duration)
	// OnBeaconRecovered fires immediately before OnEnterRound with how
	// long the party waited for round k's beacon to become computable
	// (from finishing round k−1, or from Init for round 1).
	OnBeaconRecovered func(k types.Round, waited, now time.Duration)
	// OnPropose fires when the party broadcasts its own block proposal.
	OnPropose func(k types.Round, now time.Duration)
	// OnNotarizationShare fires when the party issues a notarization
	// share for a round-k block.
	OnNotarizationShare func(k types.Round, now time.Duration)
	// OnFinalizationShare fires when the party issues a finalization
	// share for a round-k block.
	OnFinalizationShare func(k types.Round, now time.Duration)
	// OnFinishRound fires when the party sees a notarized block for its
	// current round and moves on.
	OnFinishRound func(k types.Round, now time.Duration)
	// OnRankDisqualified fires when clause (c) of Fig. 1 disqualifies a
	// proposer rank: this party saw two distinct valid round-k blocks of
	// the same rank, proving the proposer equivocated. The adversary
	// campaign uses it to assert Byzantine leaders are actually detected.
	OnRankDisqualified func(k types.Round, rank types.Rank, now time.Duration)
	// OnCommit fires for every block the Finalization Subprotocol
	// outputs, in chain order.
	OnCommit func(b *types.Block, now time.Duration)
	// OnResync fires when the stall detector re-broadcasts the party's
	// protocol frontier (resync.go).
	OnResync func(k types.Round, now time.Duration)
	// OnBackfill fires when the party answers a lagging peer's Status
	// with a catch-up batch (catchup.go): inline is the number of beacon
	// shares served from the own-share cache (or signed synchronously
	// with no provider wired), deferred the number of share rounds
	// enqueued to the async CatchupProvider.
	OnBackfill func(peer types.PartyID, inline, deferred int, now time.Duration)
	// OnRejectedMessage fires when an inbound artifact fails admission —
	// a bad signature, share, or aggregate, or a structural mismatch
	// against the pool. reason is one of the internal/crypto Reason*
	// labels; it feeds the icc_verify_rejects_total counter. Duplicate
	// deliveries are not rejects and do not fire this hook.
	OnRejectedMessage func(from types.PartyID, reason string)
	// OnCheckpoint fires when the party assembles a certified checkpoint
	// for round k (its own share plus t more matching ones) and persists
	// it to the local store.
	OnCheckpoint func(k types.Round, now time.Duration)
	// OnCheckpointInstalled fires when the party installs a certified
	// checkpoint received from a peer, jumping its frontier to round k.
	OnCheckpointInstalled func(k types.Round, now time.Duration)
	// OnCheckpointServed fires when the party answers a behind-horizon
	// peer's Status with its latest certified checkpoint (round k).
	OnCheckpointServed func(peer types.PartyID, k types.Round, now time.Duration)
	// OnResyncLost fires once when the party detects that its gap to the
	// cluster's finalization frontier exceeds PruneDepth with no
	// checkpoint path configured: peers have pruned the artifacts it
	// needs, so resync polling can never succeed.
	OnResyncLost func(gap types.Round, now time.Duration)
}

// Config assembles an engine.
type Config struct {
	Self types.PartyID
	Keys *keys.Public
	Priv keys.Private

	// Beacon is the random-beacon source. If nil, a production
	// threshold-signature beacon is constructed from the key material.
	Beacon beacon.Source

	// DProp and DNtry are the Δprop and Δntry delay functions of Fig. 1.
	// If nil, the recommended functions of eq. (2) are used with
	// DeltaBound and Epsilon.
	DProp, DNtry types.DelayFunc

	// DeltaBound is Δbnd, the assumed network-delay bound of the partial
	// synchrony assumption; Epsilon is the ε governor of eq. (2). Used
	// only when DProp/DNtry are nil.
	DeltaBound time.Duration
	Epsilon    time.Duration

	// Adaptive enables the adaptive delay variant discussed in §1: when
	// consecutive rounds pass without any finalization, the engine
	// doubles its working Δbnd (up to AdaptiveMax doublings), and resets
	// it after a finalized round. Safety is unaffected — the delay
	// functions only influence liveness.
	Adaptive     bool
	AdaptiveMax  int
	adaptiveBase time.Duration

	// Payload builds block payloads; defaults to EmptyPayload.
	Payload PayloadSource

	// MaxPayload rejects oversized incoming block payloads (0 = no
	// limit); an application-specific validity condition (§3.4).
	MaxPayload int

	Hooks Hooks

	// Pool tunes the artifact pool.
	Pool pool.Options

	// PruneDepth, if positive, prunes pool and beacon state more than
	// this many rounds behind the finalized watermark.
	PruneDepth types.Round

	// ResyncInterval bounds how long the engine tolerates a stalled
	// round before re-broadcasting its protocol frontier (a Status plus
	// the current round's artifacts) to every peer. The paper's protocol
	// is quiescent — nothing is ever retransmitted — which is safe under
	// the eventual-delivery assumption of §1 but deadlocks when the
	// network genuinely loses messages (a TCP partition, a crashed and
	// recovered process). 0 selects the default of 8×Δbnd; a negative
	// value disables resynchronisation entirely (the paper's pure
	// protocol).
	ResyncInterval time.Duration

	// ResyncBatch caps how many rounds of notarized blocks a single
	// catch-up response carries to a lagging peer (default 128). The
	// lagging party repeats its Status as long as it stays behind, so a
	// deep gap is closed batch by batch.
	ResyncBatch int

	// Catchup, if non-nil, signs catch-up beacon shares missing from the
	// own-share cache off the engine loop (internal/backfill provides
	// the production worker). Nil keeps signing synchronous inside
	// handleStatus — the deterministic choice for simnet and harness.
	Catchup CatchupProvider

	// ShareCacheSize bounds the beacon own-share cache when the default
	// beacon is constructed here (Beacon == nil): 0 selects
	// beacon.DefaultShareCacheSize, negative disables caching. Callers
	// passing their own Beacon configure the cache on it directly.
	ShareCacheSize int

	// WAL, if non-nil, receives every artifact the engine admits or
	// creates, and is flushed (group-commit fsync) before any output
	// leaves the engine — the sync-before-send invariant that makes a
	// crash-restart unable to equivocate. Nil disables persistence (the
	// simnet/experiment default).
	WAL *wal.Log

	// CheckpointInterval, if positive, makes the engine propose a signed
	// checkpoint at every finalized round divisible by it. Keep it well
	// below PruneDepth (see DefaultPruneDepth) so laggards always find a
	// checkpoint newer than the artifact prune horizon.
	CheckpointInterval types.Round

	// Checkpoints, if non-nil, persists certified checkpoints and serves
	// the latest one to peers stuck behind the prune horizon.
	Checkpoints *checkpoint.Store

	// StateSnapshot captures the replicated state immediately after a
	// commit, for inclusion in checkpoints. Nil checkpoints an empty
	// state (protocol-only deployments).
	StateSnapshot func() []byte

	// StateRestore replaces the replicated state with a checkpoint
	// snapshot when installing a certified checkpoint from a peer. Nil
	// skips restoration.
	StateRestore func(state []byte) error
}

// withDefaults fills in derived fields.
func (c Config) withDefaults() Config {
	if c.DeltaBound == 0 {
		c.DeltaBound = 100 * time.Millisecond
	}
	if c.DProp == nil || c.DNtry == nil {
		dprop, dntry := types.StandardDelays(c.DeltaBound, c.Epsilon)
		if c.DProp == nil {
			c.DProp = dprop
		}
		if c.DNtry == nil {
			c.DNtry = dntry
		}
	}
	if c.Payload == nil {
		c.Payload = EmptyPayload{}
	}
	if c.Beacon == nil {
		b := beacon.New(c.Keys.Beacon, c.Priv.Beacon, c.Self, c.Keys.GenesisSeed)
		if c.ShareCacheSize != 0 {
			b.SetShareCacheSize(c.ShareCacheSize)
		}
		c.Beacon = b
	}
	if c.AdaptiveMax == 0 {
		c.AdaptiveMax = 6
	}
	if c.ResyncInterval == 0 {
		c.ResyncInterval = 8 * c.DeltaBound
	}
	if c.ResyncInterval < 0 {
		c.ResyncInterval = 0 // normalised: 0 = disabled from here on
	}
	if c.ResyncBatch == 0 {
		c.ResyncBatch = 128
	}
	c.adaptiveBase = c.DeltaBound
	return c
}
