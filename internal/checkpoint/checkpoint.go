// Package checkpoint implements signed finalized-state checkpoints: a
// compact, self-authenticating commitment to one finalized block and
// the replicated-state snapshot after executing it, certified by t+1
// S_final signatures over a dedicated domain.
//
// Why t+1 is enough (the safety argument, cf. the Celestia ADR pattern
// of making a checkpoint a verifiable commitment rather than a trusted
// blob): at most t parties are corrupt, so any t+1 matching signatures
// include at least one honest party — and an honest party only signs
// the commitment (k, H(B_k), H(state_k), R_k) after itself finalizing
// B_k and executing the chain up to it. A verifier therefore learns,
// from the certificate alone, that B_k is on THE finalized chain (the
// protocol finalizes at most one block per round) and that state_k is
// the canonical state after it. Nothing about the checkpoint weakens
// consensus: it is a read-out of finality, not a source of it.
//
// The beacon digest H(R_k) rides along so a party that restores from
// the checkpoint can immediately verify and sign round-(k+1) beacon
// shares: the beacon chain signs (k+1, H(R_k)), so one trusted link
// re-attaches the restored party to the whole future of the chain.
package checkpoint

import (
	"errors"
	"fmt"

	"icc/internal/crypto/aggsig"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/types"
)

// domainSnapshot fingerprints state snapshots. Distinct from the state
// machine's own DomainState chunks so the two hash inputs can never be
// confused.
const domainSnapshot hash.Domain = "icc/checkpoint/state"

// StateDigest returns the canonical fingerprint of a state snapshot as
// committed to by checkpoint signatures.
func StateDigest(state []byte) hash.Digest {
	return hash.Sum(domainSnapshot, state)
}

// Checkpoint is one certified finalized-state checkpoint.
type Checkpoint struct {
	// Round, BlockHash, StateHash, BeaconDigest are the signed
	// commitment (see types.CheckpointSigningBytes).
	Round        types.Round
	BlockHash    hash.Digest
	StateHash    hash.Digest
	BeaconDigest hash.Digest

	// Block is the boundary block itself, and Notarization its n−t
	// aggregate — installed into the receiver's pool as the new chain
	// root so resync traffic above the checkpoint validates normally.
	Block        *types.Block
	Notarization *types.Notarization
	// Finalization is the aggregate for the boundary round when the
	// checkpointing party held one (the boundary block may have been
	// committed indirectly, via a later round's finalization).
	Finalization *types.Finalization

	// State is the statemachine snapshot after applying Block.
	State []byte

	// Agg is the encoded aggsig.Certificate of ≥ t+1 CheckpointShare
	// signatures over CheckpointSigningBytes under DomainCheckpoint.
	Agg []byte
}

// SigningBytes returns the byte string the certificate signs.
func (c *Checkpoint) SigningBytes() []byte {
	return types.CheckpointSigningBytes(c.Round, c.BlockHash, c.StateHash, c.BeaconDigest)
}

// ErrInvalid reports a checkpoint that failed verification.
var ErrInvalid = errors.New("checkpoint: invalid")

// PublicInfo derives the (t, t+1, n) verification material for
// checkpoint certificates from the cluster's key material: the S_final
// keys at the t+1 quorum, used under DomainCheckpoint. Works for any
// certificate scheme via aggsig.Scheme.WithQuorum.
func PublicInfo(pub *keys.Public) aggsig.Scheme {
	return pub.Final.WithQuorum(types.CheckpointQuorum(pub.N))
}

// Verify checks everything a receiver must not take on trust:
//
//   - the certificate: ≥ t+1 distinct valid S_final signatures over the
//     commitment under DomainCheckpoint;
//   - the block binds to the commitment: H(Block) == BlockHash and the
//     rounds agree;
//   - the state binds to the commitment: StateDigest(State) == StateHash;
//   - the notarization is a valid n−t aggregate for the block (the
//     pool's validity root after installation);
//   - the finalization, when present, is a valid n−t aggregate.
//
// The beacon digest needs no separate check: it is inside the signed
// commitment, so the certificate vouches for it.
func Verify(pub *keys.Public, c *Checkpoint) error {
	if c == nil || c.Block == nil {
		return fmt.Errorf("%w: missing block", ErrInvalid)
	}
	if c.Round == 0 {
		return fmt.Errorf("%w: genesis round", ErrInvalid)
	}
	if c.Block.Round != c.Round {
		return fmt.Errorf("%w: block round %d vs checkpoint round %d", ErrInvalid, c.Block.Round, c.Round)
	}
	if c.Block.Hash() != c.BlockHash {
		return fmt.Errorf("%w: block hash mismatch", ErrInvalid)
	}
	if StateDigest(c.State) != c.StateHash {
		return fmt.Errorf("%w: state hash mismatch", ErrInvalid)
	}
	ckptScheme := PublicInfo(pub)
	agg, err := ckptScheme.Decode(c.Agg)
	if err != nil {
		return fmt.Errorf("%w: certificate: %v", ErrInvalid, err)
	}
	if err := ckptScheme.Verify(types.DomainCheckpoint, c.SigningBytes(), agg); err != nil {
		return fmt.Errorf("%w: certificate: %v", ErrInvalid, err)
	}
	nz := c.Notarization
	if nz == nil {
		return fmt.Errorf("%w: missing notarization", ErrInvalid)
	}
	if nz.Round != c.Round || nz.BlockHash != c.BlockHash || nz.Proposer != c.Block.Proposer {
		return fmt.Errorf("%w: notarization binds a different block", ErrInvalid)
	}
	nzAgg, err := pub.Notary.Decode(nz.Agg)
	if err != nil {
		return fmt.Errorf("%w: notarization: %v", ErrInvalid, err)
	}
	msg := types.SigningBytes(nz.Round, nz.Proposer, nz.BlockHash)
	if err := pub.Notary.Verify(types.DomainNotarization, msg, nzAgg); err != nil {
		return fmt.Errorf("%w: notarization: %v", ErrInvalid, err)
	}
	if fz := c.Finalization; fz != nil {
		if fz.Round != c.Round || fz.BlockHash != c.BlockHash || fz.Proposer != c.Block.Proposer {
			return fmt.Errorf("%w: finalization binds a different block", ErrInvalid)
		}
		fzAgg, err := pub.Final.Decode(fz.Agg)
		if err != nil {
			return fmt.Errorf("%w: finalization: %v", ErrInvalid, err)
		}
		if err := pub.Final.Verify(types.DomainFinalization, msg, fzAgg); err != nil {
			return fmt.Errorf("%w: finalization: %v", ErrInvalid, err)
		}
	}
	return nil
}

// Encode serialises the checkpoint for the wire (types.CheckpointMsg
// blobs) and for disk (Store files).
func (c *Checkpoint) Encode() []byte {
	e := types.NewEncoder(256 + len(c.State))
	e.U64(uint64(c.Round))
	e.Bytes32(c.BlockHash)
	e.Bytes32(c.StateHash)
	e.Bytes32(c.BeaconDigest)
	e.VarBytes(types.Marshal(&types.BlockMsg{Block: c.Block}))
	e.VarBytes(types.Marshal(c.Notarization))
	if c.Finalization != nil {
		e.U8(1)
		e.VarBytes(types.Marshal(c.Finalization))
	} else {
		e.U8(0)
	}
	e.VarBytes(c.State)
	e.VarBytes(c.Agg)
	return e.Bytes()
}

// Decode parses an Encode output. It performs structural validation
// only; call Verify before trusting any field.
func Decode(b []byte) (*Checkpoint, error) {
	d := types.NewDecoder(b)
	c := &Checkpoint{}
	c.Round = types.Round(d.U64())
	c.BlockHash = d.Bytes32()
	c.StateHash = d.Bytes32()
	c.BeaconDigest = d.Bytes32()
	blockRaw := d.VarBytes()
	nzRaw := d.VarBytes()
	hasFz := d.U8()
	var fzRaw []byte
	if hasFz == 1 {
		fzRaw = d.VarBytes()
	}
	c.State = d.VarBytes()
	c.Agg = d.VarBytes()
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	bm, err := types.Unmarshal(blockRaw)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode block: %w", err)
	}
	blockMsg, ok := bm.(*types.BlockMsg)
	if !ok || blockMsg.Block == nil {
		return nil, fmt.Errorf("checkpoint: embedded message is %s, want block", bm.Kind())
	}
	c.Block = blockMsg.Block
	nm, err := types.Unmarshal(nzRaw)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode notarization: %w", err)
	}
	if c.Notarization, ok = nm.(*types.Notarization); !ok {
		return nil, fmt.Errorf("checkpoint: embedded message is %s, want notarization", nm.Kind())
	}
	if fzRaw != nil {
		fm, err := types.Unmarshal(fzRaw)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decode finalization: %w", err)
		}
		if c.Finalization, ok = fm.(*types.Finalization); !ok {
			return nil, fmt.Errorf("checkpoint: embedded message is %s, want finalization", fm.Kind())
		}
	}
	return c, nil
}
