package runtime

// Verification-pipeline integration suite: runner event loops with the
// parallel verifier interposed between transport and engine, the
// engine's pool running pool.VerifyPreVerified. Covers the happy path
// (a pipelined cluster commits and stays chain-consistent) and the
// adversarial one (a Byzantine party flooding forged shares burns
// pipeline workers, not the engine, and liveness holds).

import (
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"icc/internal/beacon"
	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/hash"
	"icc/internal/crypto/keys"
	"icc/internal/obs"
	"icc/internal/pool"
	"icc/internal/transport"
	"icc/internal/types"
	"icc/internal/verify"
)

// pipelineCluster is an n-party cluster over the in-process hub, each
// live party running engine + runner + verification pipeline.
type pipelineCluster struct {
	pub   *keys.Public
	privs []keys.Private
	hub   *transport.Inproc
	reg   *obs.Registry

	mu     sync.Mutex
	chains [][]hash.Digest
}

// startPipelineCluster boots parties 0..live-1 with pipelined runners;
// parties live..n-1 get no runner (their endpoints are free for the
// test to drive directly).
func startPipelineCluster(t *testing.T, n, live int) *pipelineCluster {
	t.Helper()
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		t.Fatal(err)
	}
	c := &pipelineCluster{
		pub:    pub,
		privs:  privs,
		hub:    transport.NewInproc(n),
		reg:    obs.NewRegistry(),
		chains: make([][]hash.Digest, n),
	}
	clk := clock.NewWall()
	var runners []*Runner
	for i := 0; i < live; i++ {
		i := i
		pid := types.PartyID(i)
		eng := core.NewEngine(core.Config{
			Self:       pid,
			Keys:       pub,
			Priv:       privs[i],
			Beacon:     beacon.NewSimulated(n, pid, pub.GenesisSeed),
			DeltaBound: 50 * time.Millisecond,
			Pool:       pool.Options{Policy: pool.VerifyPreVerified},
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					c.mu.Lock()
					c.chains[i] = append(c.chains[i], b.Hash())
					c.mu.Unlock()
				},
			},
		})
		r := NewRunner(eng, c.hub.Endpoint(pid), clk, n)
		r.SetVerifyPipeline(verify.New(pool.NewVerifier(pub, pool.VerifyFull), verify.Options{
			Workers:  2,
			Registry: c.reg,
		}))
		r.Start()
		runners = append(runners, r)
	}
	t.Cleanup(func() {
		for _, r := range runners {
			r.Stop()
		}
		c.hub.Close()
	})
	return c
}

func (c *pipelineCluster) committed(i int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.chains[i])
}

func (c *pipelineCluster) waitCommits(t *testing.T, parties []int, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, i := range parties {
			if c.committed(i) < want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, i := range parties {
		t.Logf("party %d committed %d blocks", i, c.committed(i))
	}
	t.Fatalf("no %d commits everywhere within %v", want, timeout)
}

// checkPrefixConsistent asserts the live parties' committed chains are
// prefixes of one another (safety).
func (c *pipelineCluster) checkPrefixConsistent(t *testing.T, parties []int) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for a := 0; a < len(parties); a++ {
		for b := a + 1; b < len(parties); b++ {
			x, y := c.chains[parties[a]], c.chains[parties[b]]
			n := len(x)
			if len(y) < n {
				n = len(y)
			}
			for k := 0; k < n; k++ {
				if x[k] != y[k] {
					t.Fatalf("chains of %d and %d diverge at height %d", parties[a], parties[b], k)
				}
			}
		}
	}
}

// TestPipelinedClusterCommits runs a fully honest cluster where every
// inbound artifact crosses the parallel verifier before the engine.
func TestPipelinedClusterCommits(t *testing.T) {
	c := startPipelineCluster(t, 4, 4)
	all := []int{0, 1, 2, 3}
	c.waitCommits(t, all, 5, 30*time.Second)
	c.checkPrefixConsistent(t, all)
	snap := c.reg.Snapshot()
	if snap["icc_verify_verified_total"] == 0 {
		t.Fatal("pipeline verified nothing — artifacts bypassed it?")
	}
}

// TestByzantineFloodLiveness gives party 3 no engine at all: it floods
// the three honest parties with forged notarization shares as fast as
// it can. n=4 tolerates t=1 faults and NotaryQuorum(4)=3, so the honest
// parties must keep committing; the forgeries must all die in the
// pipeline (reject counters), never reaching the PreVerified pools.
func TestByzantineFloodLiveness(t *testing.T) {
	c := startPipelineCluster(t, 4, 3)
	honest := []int{0, 1, 2}

	flooder := c.hub.Endpoint(types.PartyID(3))
	stopFlood := make(chan struct{})
	var floodWg sync.WaitGroup
	floodWg.Add(1)
	go func() {
		defer floodWg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stopFlood:
				return
			default:
			}
			forged := &types.NotarizationShare{
				Round:     types.Round(i%50 + 1),
				Proposer:  types.PartyID(i % 4),
				BlockHash: hash.SumUint64(hash.DomainBlock, i),
				Signer:    3,
				Sig:       make([]byte, 64),
			}
			for _, p := range honest {
				_ = flooder.Send(types.PartyID(p), forged)
			}
			// Pace the flood (~2k forgeries/s). An unthrottled producer
			// on a small CI host starves the honest goroutines outright,
			// testing the Go scheduler rather than the pipeline.
			time.Sleep(500 * time.Microsecond)
		}
	}()
	defer func() {
		close(stopFlood)
		floodWg.Wait()
	}()

	c.waitCommits(t, honest, 5, 30*time.Second)
	c.checkPrefixConsistent(t, honest)
	snap := c.reg.Snapshot()
	rejects := snap[`icc_verify_rejects_total{reason="bad_share"}`]
	if rejects == 0 {
		t.Fatal("flood produced no pipeline rejects")
	}
	t.Logf("honest parties committed under a flood of %v rejected forgeries", rejects)
}
