package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestHandler(healthy bool) http.Handler {
	reg := NewRegistry()
	reg.Counter("icc_blocks_committed_total", "Blocks committed.").Add(9)
	tr := NewTracer(8)
	tr.Record(Event{Party: 0, Kind: KindCommitted, Round: 3})
	return NewHandler(HandlerOptions{
		Registry: reg,
		Tracer:   tr,
		Health: func() Health {
			return Health{Stalled: !healthy, Commits: 9, LastCommitAgeSeconds: 0.5, StallAfterSeconds: 30}
		},
	})
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	res, body := get(t, newTestHandler(true), "/metrics")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "icc_blocks_committed_total 9") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	res, body := get(t, newTestHandler(true), "/healthz")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthy probe returned %d", res.StatusCode)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz not JSON: %v (%s)", err, body)
	}
	if h.Stalled || h.Commits != 9 {
		t.Fatalf("health payload: %+v", h)
	}

	res, body = get(t, newTestHandler(false), "/healthz")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled probe returned %d, want 503", res.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil || !h.Stalled {
		t.Fatalf("stalled payload: %+v err=%v", h, err)
	}
}

func TestHandlerTrace(t *testing.T) {
	res, body := get(t, newTestHandler(true), "/trace")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want header + 1 event: %s", len(lines), body)
	}
	var hd Header
	if err := json.Unmarshal([]byte(lines[0]), &hd); err != nil || !hd.TraceHeader {
		t.Fatalf("first trace line is not a header: %v (%s)", err, lines[0])
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("trace line not JSON: %v (%s)", err, lines[1])
	}
	if e.Kind != KindCommitted || e.Round != 3 {
		t.Fatalf("trace event: %+v", e)
	}
}

func TestHandlerPprof(t *testing.T) {
	res, body := get(t, newTestHandler(true), "/debug/pprof/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof index returned %d", res.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%s", body)
	}
}

func TestHandlerNilBackends(t *testing.T) {
	h := NewHandler(HandlerOptions{}) // nil registry, tracer, health
	for _, path := range []string{"/metrics", "/trace", "/healthz"} {
		res, _ := get(t, h, path)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("%s with nil backends returned %d", path, res.StatusCode)
		}
	}
}

func TestServeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("icc_up", "").Inc()
	srv, err := Serve("127.0.0.1:0", HandlerOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &http.Client{Timeout: 2 * time.Second}
	res, err := client.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "icc_up 1") {
		t.Fatalf("served metrics missing counter:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatal("nil server close errored")
	}
}
