package core

// Robustness ("fuzz-style") tests: the engine and the wire codec must
// survive arbitrary adversarial input — random bytes, bit-flipped
// encodings of valid artifacts, and structurally valid but semantically
// absurd messages — without panicking and without admitting anything
// unverified into the pool.

import (
	"math/rand"
	"testing"
	"time"

	"icc/internal/types"
)

func TestUnmarshalNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(256)
		buf := make([]byte, n)
		rng.Read(buf)
		// Must not panic; errors are fine and expected.
		m, err := types.Unmarshal(buf)
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	}
}

func TestUnmarshalNeverPanicsOnMutatedArtifacts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	corpus := [][]byte{
		types.Marshal(&types.BlockMsg{Block: &types.Block{Round: 3, Proposer: 1, Payload: []byte("payload")}}),
		types.Marshal(&types.Notarization{Round: 2, Proposer: 0, Agg: make([]byte, 150)}),
		types.Marshal(&types.BeaconShare{Round: 9, Signer: 2, Share: make([]byte, 97)}),
	}
	for i := 0; i < 20000; i++ {
		base := corpus[rng.Intn(len(corpus))]
		buf := append([]byte(nil), base...)
		// Random mutations: bit flips, truncation, extension.
		switch rng.Intn(3) {
		case 0:
			for j := 0; j < 1+rng.Intn(4); j++ {
				buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
			}
		case 1:
			buf = buf[:rng.Intn(len(buf))]
		case 2:
			extra := make([]byte, rng.Intn(16))
			rng.Read(extra)
			buf = append(buf, extra...)
		}
		_, _ = types.Unmarshal(buf)
	}
}

// TestEngineSurvivesGarbageStorm feeds an engine thousands of hostile
// messages: random valid-shaped artifacts with bogus signatures, absurd
// rounds, self-referential blocks. The engine must neither panic nor
// leak anything into the validity ladder, and must still run consensus
// correctly afterwards.
func TestEngineSurvivesGarbageStorm(t *testing.T) {
	c := newChoreography(t, 4, 1, 50*time.Millisecond)
	c.start()
	rng := rand.New(rand.NewSource(3))
	junkSig := func() []byte {
		b := make([]byte, 64)
		rng.Read(b)
		return b
	}
	var junkHash [32]byte
	for i := 0; i < 2000; i++ {
		rng.Read(junkHash[:])
		from := types.PartyID(rng.Intn(4))
		var m types.Message
		switch rng.Intn(8) {
		case 0:
			m = &types.BlockMsg{Block: &types.Block{
				Round:      types.Round(rng.Intn(10)),
				Proposer:   types.PartyID(rng.Intn(8) - 2),
				ParentHash: junkHash,
				Payload:    []byte("junk"),
			}}
		case 1:
			m = &types.Authenticator{Round: types.Round(rng.Intn(10)),
				Proposer: types.PartyID(rng.Intn(8) - 2), BlockHash: junkHash, Sig: junkSig()}
		case 2:
			m = &types.NotarizationShare{Round: types.Round(rng.Intn(10)),
				Proposer: 0, BlockHash: junkHash, Signer: types.PartyID(rng.Intn(8) - 2), Sig: junkSig()}
		case 3:
			m = &types.Notarization{Round: types.Round(rng.Intn(10)),
				Proposer: 0, BlockHash: junkHash, Agg: junkSig()}
		case 4:
			m = &types.FinalizationShare{Round: types.Round(rng.Intn(10)),
				Proposer: 0, BlockHash: junkHash, Signer: types.PartyID(rng.Intn(4)), Sig: junkSig()}
		case 5:
			m = &types.Finalization{Round: 1, Proposer: 0, BlockHash: junkHash, Agg: junkSig()}
		case 6:
			m = &types.BeaconShare{Round: types.Round(rng.Intn(10)),
				Signer: types.PartyID(rng.Intn(8) - 2), Share: junkSig()}
		case 7:
			m = &types.Bundle{Messages: []types.Message{
				&types.BeaconShare{Round: 99, Signer: -1, Share: nil},
				&types.Bundle{Messages: []types.Message{&types.Advert{}}},
			}}
		}
		c.deliver(from, m, time.Duration(i)*time.Microsecond)
	}
	// Nothing invalid admitted.
	for _, h := range c.eng.Pool().BlocksInRound(1) {
		if c.eng.Pool().IsValid(h) {
			b := c.eng.Pool().Block(h)
			if b.Proposer != c.eng.ID() { // own proposal may exist
				t.Fatalf("garbage block became valid: proposer %d", b.Proposer)
			}
		}
	}
	// The engine still works: run a legitimate round to completion.
	b0, bundle := c.block(0, "real block after the storm")
	c.deliver(b0.Proposer, bundle, 3*time.Second)
	c.deliver(c.perm[0], c.nshare(b0, c.perm[0]), 3*time.Second+time.Millisecond)
	c.deliver(c.perm[2], c.nshare(b0, c.perm[2]), 3*time.Second+2*time.Millisecond)
	if c.eng.CurrentRound() != 2 {
		t.Fatalf("engine stuck in round %d after garbage storm", c.eng.CurrentRound())
	}
}

// TestEngineIgnoresWrongRoundShares: notarization shares referencing
// future/past rounds for present blocks must not help quorums.
func TestEngineIgnoresCrossRoundShares(t *testing.T) {
	c := newChoreography(t, 4, 1, 50*time.Millisecond)
	c.start()
	b0, bundle := c.block(0, "target")
	c.deliver(b0.Proposer, bundle, time.Millisecond)
	// Craft shares that sign round 2 for this round-1 block: the pool
	// verifies the signature over the claimed tuple, so the share is
	// cryptographically fine, but it must not count toward the round-1
	// quorum path (the finish-round scan matches BlocksInRound(1) whose
	// signing bytes use round 1 — combining would fail).
	msg := types.SigningBytes(2, b0.Proposer, b0.Hash())
	for _, signer := range []types.PartyID{c.perm[0], c.perm[2]} {
		s := &types.NotarizationShare{
			Round: 2, Proposer: b0.Proposer, BlockHash: b0.Hash(), Signer: signer,
			Sig: c.privs[signer].Notary.Sign(types.DomainNotarization, msg).Signature,
		}
		c.deliver(signer, s, 2*time.Millisecond)
	}
	if c.eng.CurrentRound() != 1 {
		t.Fatalf("cross-round shares finished round 1 (engine at round %d)", c.eng.CurrentRound())
	}
}
