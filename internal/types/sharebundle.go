package types

import (
	"fmt"

	"icc/internal/crypto/hash"
)

// ShareBundle coalesces the small per-round signature shares a gossip
// relay holds into one framed message. At n=100 a round produces ~100
// beacon shares and up to ~100 notarization plus ~100 finalization
// shares, each ~124 bytes on the wire with its own statement header —
// but nearly all of them repeat the same (round, proposer, blockHash)
// statement. Grouping shares by statement amortises the 48-byte header
// across every signature for that statement, so an extra share costs
// header-free ~76 bytes instead of a full message, and the transport
// pays one frame instead of dozens.
//
// The bundle is a pure transport container: receivers explode it back
// into individual NotarizationShare/FinalizationShare/BeaconShare
// messages, which re-enter pools through the ordinary admission paths
// with their original signatures. Deduplication in the gossip layer
// keys on the individual shares, so the same share arriving in two
// differently-grouped bundles is still recognised.
type ShareBundle struct {
	Notar  []ShareGroup
	Final  []ShareGroup
	Beacon []*BeaconShare
}

// ShareGroup is every held signature share for one statement
// (round, proposer, blockHash). Signers and Sigs are parallel slices.
type ShareGroup struct {
	Round     Round
	Proposer  PartyID
	BlockHash hash.Digest
	Signers   []PartyID
	Sigs      [][]byte
}

// Kind implements Message.
func (*ShareBundle) Kind() Kind { return KindShareBundle }

var _ Message = (*ShareBundle)(nil)

// shareGroupHeaderSize is the per-statement cost of a group: round u64,
// proposer u64, blockHash 32, signer count u16.
const shareGroupHeaderSize = 8 + 8 + 32 + 2

// WireSize returns the exact encoded size of the group inside a
// ShareBundle body.
func (g *ShareGroup) WireSize() int {
	size := shareGroupHeaderSize
	for _, s := range g.Sigs {
		size += 8 + 4 + len(s) // signer u64 + sig var-bytes
	}
	return size
}

// WireSize returns the exact number of bytes Marshal produces for the
// bundle, kind prefix included. Relays use it to decide when a pending
// batch justifies a frame; the encode tests pin it byte-exact against
// len(Marshal(b)).
func (b *ShareBundle) WireSize() int {
	size := 1 + 2 + 2 + 2 // kind prefix + three u16 counts
	for i := range b.Notar {
		size += b.Notar[i].WireSize()
	}
	for i := range b.Final {
		size += b.Final[i].WireSize()
	}
	for _, s := range b.Beacon {
		size += 8 + 8 + 4 + len(s.Share) // round u64 + signer u64 + share var-bytes
	}
	return size
}

// Shares returns the bundle's total share count across all sections.
func (b *ShareBundle) Shares() int {
	n := len(b.Beacon)
	for i := range b.Notar {
		n += len(b.Notar[i].Signers)
	}
	for i := range b.Final {
		n += len(b.Final[i].Signers)
	}
	return n
}

func encodeShareGroups(e *Encoder, groups []ShareGroup) {
	e.U16(uint16(len(groups)))
	for i := range groups {
		g := &groups[i]
		e.U64(uint64(g.Round))
		e.U64(uint64(int64(g.Proposer)))
		e.Bytes32(g.BlockHash)
		e.U16(uint16(len(g.Signers)))
		for j, signer := range g.Signers {
			e.U64(uint64(int64(signer)))
			e.VarBytes(g.Sigs[j])
		}
	}
}

func (b *ShareBundle) encodeBody(e *Encoder) {
	encodeShareGroups(e, b.Notar)
	encodeShareGroups(e, b.Final)
	e.U16(uint16(len(b.Beacon)))
	for _, s := range b.Beacon {
		e.U64(uint64(s.Round))
		e.U64(uint64(int64(s.Signer)))
		e.VarBytes(s.Share)
	}
}

func decodeShareGroups(d *Decoder) ([]ShareGroup, error) {
	count := int(d.U16())
	if d.Err() != nil {
		return nil, d.Err()
	}
	groups := make([]ShareGroup, 0, count)
	for i := 0; i < count; i++ {
		var g ShareGroup
		g.Round = Round(d.U64())
		g.Proposer = PartyID(int64(d.U64()))
		g.BlockHash = d.Bytes32()
		signers := int(d.U16())
		if d.Err() != nil {
			return nil, d.Err()
		}
		g.Signers = make([]PartyID, 0, signers)
		g.Sigs = make([][]byte, 0, signers)
		for j := 0; j < signers; j++ {
			g.Signers = append(g.Signers, PartyID(int64(d.U64())))
			g.Sigs = append(g.Sigs, d.VarBytes())
			if d.Err() != nil {
				return nil, d.Err()
			}
		}
		groups = append(groups, g)
	}
	return groups, nil
}

func decodeShareBundle(d *Decoder) (*ShareBundle, error) {
	b := &ShareBundle{}
	var err error
	if b.Notar, err = decodeShareGroups(d); err != nil {
		return nil, fmt.Errorf("share bundle notarization groups: %w", err)
	}
	if b.Final, err = decodeShareGroups(d); err != nil {
		return nil, fmt.Errorf("share bundle finalization groups: %w", err)
	}
	count := int(d.U16())
	if d.Err() != nil {
		return nil, d.Err()
	}
	b.Beacon = make([]*BeaconShare, 0, count)
	for i := 0; i < count; i++ {
		s := &BeaconShare{}
		s.Round = Round(d.U64())
		s.Signer = PartyID(int64(d.U64()))
		s.Share = d.VarBytes()
		if d.Err() != nil {
			return nil, d.Err()
		}
		b.Beacon = append(b.Beacon, s)
	}
	return b, nil
}

// Expand explodes the bundle back into the individual share messages it
// carries, in encoding order: notarization groups, finalization groups,
// beacon shares.
func (b *ShareBundle) Expand() []Message {
	out := make([]Message, 0, b.Shares())
	for i := range b.Notar {
		g := &b.Notar[i]
		for j, signer := range g.Signers {
			out = append(out, &NotarizationShare{
				Round: g.Round, Proposer: g.Proposer, BlockHash: g.BlockHash,
				Signer: signer, Sig: g.Sigs[j],
			})
		}
	}
	for i := range b.Final {
		g := &b.Final[i]
		for j, signer := range g.Signers {
			out = append(out, &FinalizationShare{
				Round: g.Round, Proposer: g.Proposer, BlockHash: g.BlockHash,
				Signer: signer, Sig: g.Sigs[j],
			})
		}
	}
	for _, s := range b.Beacon {
		out = append(out, s)
	}
	return out
}
