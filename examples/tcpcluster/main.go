// Tcpcluster: a multi-node ICC deployment over real TCP sockets — the
// same node stack cmd/iccnode runs as separate processes, here hosted in
// one binary on localhost loopback for a self-contained demonstration.
// Each node has its own TCP listener, key material, command queue, and
// state machine; all traffic crosses the network stack with
// length-prefixed frames.
//
//	go run ./examples/tcpcluster
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"sync"
	"time"

	"icc/internal/clock"
	"icc/internal/core"
	"icc/internal/crypto/keys"
	"icc/internal/runtime"
	"icc/internal/statemachine"
	"icc/internal/transport"
	"icc/internal/types"
)

const n = 4

func main() {
	pub, privs, err := keys.Deal(rand.Reader, n)
	if err != nil {
		log.Fatalf("dealing keys: %v", err)
	}

	// Fixed loopback ports for the demo cluster.
	addrs := make(map[types.PartyID]string, n)
	for i := 0; i < n; i++ {
		addrs[types.PartyID(i)] = fmt.Sprintf("127.0.0.1:%d", 9500+i)
	}

	var (
		mu        sync.Mutex
		committed = make([]int, n)
	)
	clk := clock.NewWall()
	queues := make([]*statemachine.Queue, n)
	kvs := make([]*statemachine.KV, n)
	runners := make([]*runtime.Runner, n)
	endpoints := make([]*transport.TCP, n)

	for i := 0; i < n; i++ {
		i := i
		ep, err := transport.NewTCP(types.PartyID(i), addrs)
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		endpoints[i] = ep
		queues[i] = statemachine.NewQueue()
		kvs[i] = statemachine.NewKV()
		eng := core.NewEngine(core.Config{
			Self:       types.PartyID(i),
			Keys:       pub,
			Priv:       privs[i],
			DeltaBound: 50 * time.Millisecond,
			Payload:    queues[i],
			Hooks: core.Hooks{
				OnCommit: func(b *types.Block, _ time.Duration) {
					_ = kvs[i].Apply(b.Payload)
					queues[i].MarkCommitted(b.Payload)
					mu.Lock()
					committed[i]++
					mu.Unlock()
				},
			},
		})
		runners[i] = runtime.NewRunner(eng, ep, clk, n)
	}
	for i, r := range runners {
		r.Start()
		fmt.Printf("node %d listening on %s\n", i, endpoints[i].Addr())
	}
	defer func() {
		for i, r := range runners {
			r.Stop()
			_ = endpoints[i].Close()
		}
	}()

	fmt.Println("\nsubmitting one command per node...")
	for i := 0; i < n; i++ {
		err := queues[i].TrySubmit(statemachine.Command{
			Client: uint64(i + 1),
			Seq:    1,
			Op:     statemachine.OpSet,
			Key:    fmt.Sprintf("from-node-%d", i),
			Value:  []byte("over real TCP"),
		})
		if err != nil {
			log.Fatalf("node %d admission: %v", i, err)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		allApplied := true
		for i := 0; i < n; i++ {
			if kvs[i].AppliedOps() < n {
				allApplied = false
				break
			}
		}
		if allApplied {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	fmt.Println("\nfinal replica states:")
	ref := kvs[0].StateHash()
	for i := 0; i < n; i++ {
		mu.Lock()
		blocks := committed[i]
		mu.Unlock()
		fmt.Printf("  node %d: %d blocks committed, %d keys, state %s (match=%v)\n",
			i, blocks, kvs[i].Len(), kvs[i].StateHash().Short(), kvs[i].StateHash() == ref)
	}
	if kvs[n-1].StateHash() != ref {
		log.Fatal("states diverged")
	}
	fmt.Println("\n4 TCP nodes reached identical states — BFT state machine replication over sockets")
}
