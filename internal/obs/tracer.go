package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds recorded by the protocol tracer.
const (
	KindRoundEntered   = "round_entered"
	KindProposed       = "proposed"
	KindNotarShare     = "notarization_share"
	KindFinalShare     = "finalization_share"
	KindRoundNotarized = "round_notarized"
	KindCommitted      = "committed"
	KindResync         = "resync"
	KindBackfill       = "backfill"
	KindTransportFault = "transport_fault"
	KindCheckpoint     = "checkpoint"
	KindResyncLost     = "resync_lost"
)

// Event is one traced protocol occurrence.
type Event struct {
	// Wall is the wall-clock time the event was recorded.
	Wall time.Time `json:"wall"`
	// Party is the recording party (-1 when unknown/not applicable).
	Party int `json:"party"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Round is the protocol round, when the event has one.
	Round uint64 `json:"round,omitempty"`
	// Detail carries kind-specific context (fault class, peer, timing).
	Detail string `json:"detail,omitempty"`
}

// Tracer is a bounded ring buffer of protocol events. When full, the
// oldest events are overwritten — recent history is what debugging a
// live stall needs, and the bound keeps a long-running node's memory
// flat. A nil *Tracer is a valid no-op sink. Safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // write cursor
	wrap  bool   // buffer has wrapped at least once
	total uint64 // events ever recorded, including overwritten ones
}

// DefaultTraceCap is the ring capacity used when callers pass 0.
const DefaultTraceCap = 4096

// NewTracer creates a tracer holding up to capacity events (0 selects
// DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends one event, stamping Wall if unset. Safe on nil.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	if e.Wall.IsZero() {
		e.Wall = time.Now()
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.wrap = true
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrap {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Total returns how many events were ever recorded (including those the
// ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteJSONL dumps the retained events as one JSON object per line,
// oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
