package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"icc/internal/obs"
	"icc/internal/types"
)

// DefaultRetain is the number of certified checkpoints a Store keeps on
// disk. Older files are garbage-collected at Save; the newest one is
// what peers and the local restart path actually use, the rest are
// operator headroom.
const DefaultRetain = 2

// StoreOptions tunes a Store.
type StoreOptions struct {
	// Retain bounds the number of checkpoint files kept (0 → DefaultRetain).
	Retain int
	// Registry receives the icc_checkpoint_store_* instruments (nil → none).
	Registry *obs.Registry
}

// Store persists certified checkpoints with atomic-rename durability:
// a checkpoint is written to a temp file, fsynced, and renamed into
// place, so a crash mid-save leaves either the old set or the new one,
// never a torn file. Only call Save with checkpoints that carry a valid
// certificate — the Store trusts its caller (Verify runs on every load
// and on every checkpoint received from a peer, so even a corrupted
// store cannot poison anyone).
//
// All methods are safe for concurrent use (the engine saves while the
// backfill worker serves LatestEncoded) and nil-safe on a nil *Store.
type Store struct {
	dir    string
	retain int

	mu        sync.Mutex
	latest    *Checkpoint // cache, invalidated on Save
	latestRaw []byte

	saves    *obs.Counter
	latestG  *obs.Gauge
	sizeLast *obs.Gauge
}

// OpenStore creates or re-opens a checkpoint directory.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	retain := opts.Retain
	if retain <= 0 {
		retain = DefaultRetain
	}
	s := &Store{dir: dir, retain: retain}
	if reg := opts.Registry; reg != nil {
		s.saves = reg.Counter("icc_checkpoint_saves_total", "Certified checkpoints persisted to the local store.")
		s.latestG = reg.Gauge("icc_checkpoint_latest_round", "Round of the newest certified checkpoint in the local store.")
		s.sizeLast = reg.Gauge("icc_checkpoint_latest_bytes", "Encoded size of the newest certified checkpoint.")
	}
	if round, ok := s.newestOnDisk(); ok {
		s.latestG.SetMax(float64(round))
	}
	return s, nil
}

func (s *Store) path(round types.Round) string {
	return filepath.Join(s.dir, fmt.Sprintf("checkpoint-%012d.ckpt", round))
}

// files returns the checkpoint rounds present on disk, ascending.
func (s *Store) files() []types.Round {
	names, err := filepath.Glob(filepath.Join(s.dir, "checkpoint-*.ckpt"))
	if err != nil {
		return nil
	}
	rounds := make([]types.Round, 0, len(names))
	for _, name := range names {
		var r uint64
		if _, err := fmt.Sscanf(filepath.Base(name), "checkpoint-%d.ckpt", &r); err == nil {
			rounds = append(rounds, types.Round(r))
		}
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	return rounds
}

func (s *Store) newestOnDisk() (types.Round, bool) {
	rounds := s.files()
	if len(rounds) == 0 {
		return 0, false
	}
	return rounds[len(rounds)-1], true
}

// Save persists a certified checkpoint atomically and prunes old files
// beyond the retention bound. Saving a round at or below the newest on
// disk is a no-op (replay and peer races make that unexceptional).
func (s *Store) Save(c *Checkpoint) error {
	if s == nil || c == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if newest, ok := s.newestOnDisk(); ok && c.Round <= newest {
		return nil
	}
	raw := c.Encode()
	tmp, err := os.CreateTemp(s.dir, "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmpName, s.path(c.Round)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	s.latest = c
	s.latestRaw = raw
	s.saves.Inc()
	s.latestG.Set(float64(c.Round))
	s.sizeLast.Set(float64(len(raw)))
	rounds := s.files()
	for len(rounds) > s.retain {
		os.Remove(s.path(rounds[0]))
		rounds = rounds[1:]
	}
	return nil
}

// Latest loads the newest stored checkpoint, or (nil, nil) when the
// store is empty. The result is structurally decoded but NOT verified;
// callers that cannot trust the disk must run Verify.
func (s *Store) Latest() (*Checkpoint, error) {
	if s == nil {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, _, err := s.latestLocked()
	return c, err
}

// LatestEncoded returns the newest checkpoint's wire encoding and
// round, for serving to lagging peers without re-encoding per request.
// ok is false when the store is empty.
func (s *Store) LatestEncoded() (raw []byte, round types.Round, ok bool) {
	if s == nil {
		return nil, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, raw, err := s.latestLocked()
	if err != nil || c == nil {
		return nil, 0, false
	}
	return raw, c.Round, true
}

func (s *Store) latestLocked() (*Checkpoint, []byte, error) {
	newest, ok := s.newestOnDisk()
	if !ok {
		return nil, nil, nil
	}
	if s.latest != nil && s.latest.Round == newest {
		return s.latest, s.latestRaw, nil
	}
	raw, err := os.ReadFile(s.path(newest))
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	c, err := Decode(raw)
	if err != nil {
		return nil, nil, err
	}
	s.latest = c
	s.latestRaw = raw
	return c, raw, nil
}

// LatestRound reports the newest stored round (0 when empty).
func (s *Store) LatestRound() types.Round {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, _ := s.newestOnDisk()
	return r
}

// Close zeroes the store's gauges (PR 5 convention). The store holds no
// file descriptors between calls, so there is nothing else to release.
func (s *Store) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latestG.Set(0)
	s.sizeLast.Set(0)
}
