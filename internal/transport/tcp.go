package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"icc/internal/metrics"
	"icc/internal/types"
)

// TCP is a transport over TCP connections with length-prefixed frames.
// Each node listens on its own address; connections self-identify with a
// one-frame handshake carrying the sender's party ID, and handshakes
// naming a party outside the cluster are rejected.
//
// Send is a non-blocking enqueue: every peer has a bounded send queue
// drained by a dedicated writer goroutine, so a dead, unreachable, or
// slow peer can never stall the caller (the runner's consensus event
// loop in particular). The writer dials in the background and, on dial
// or write failure, redials under exponential backoff with jitter;
// writes carry a deadline so a stuck connection is detected and torn
// down. When a queue overflows, the oldest frame is evicted — stale
// consensus messages are exactly the ones worth losing, and the
// protocol's echo/catch-up paths retransmit what still matters. Queue
// evictions, redials, write failures, and inbox-overflow discards are
// counted in an optional metrics.TransportStats.
//
// Frames: u32 payload length, then the payload (a types.Marshal
// encoding). The handshake frame carries the 8-byte party ID.
type TCP struct {
	self types.PartyID
	opts TCPOptions

	lis   net.Listener
	inbox chan Envelope
	stats *metrics.TransportStats

	mu      sync.Mutex
	addrs   map[types.PartyID]string
	peers   map[types.PartyID]*tcpPeer
	inbound map[net.Conn]struct{}
	closed  bool

	done chan struct{} // closed on Close; unblocks writers and backoff sleeps
	wg   sync.WaitGroup
}

// TCPOptions tunes a TCP endpoint. Zero values select the defaults.
type TCPOptions struct {
	// SendQueue is the per-peer send-queue capacity (default 1024).
	SendQueue int
	// DialTimeout bounds one dial attempt (default 3s).
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s).
	WriteTimeout time.Duration
	// RedialMin/RedialMax bound the exponential redial backoff
	// (defaults 50ms and 5s). Jitter in [1x, 2x) is added to each wait.
	RedialMin time.Duration
	RedialMax time.Duration
	// Stats, if non-nil, receives transport-health counters.
	Stats *metrics.TransportStats
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.SendQueue <= 0 {
		o.SendQueue = 1024
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.RedialMin <= 0 {
		o.RedialMin = 50 * time.Millisecond
	}
	if o.RedialMax <= 0 {
		o.RedialMax = 5 * time.Second
	}
	return o
}

// tcpPeer is the send side of one peer link: a bounded frame queue and
// the connection currently owned by its writer goroutine.
type tcpPeer struct {
	id    types.PartyID
	queue chan []byte

	mu   sync.Mutex
	conn net.Conn // writer-owned; Close() also closes it to unblock writes
}

func (p *tcpPeer) setConn(c net.Conn) {
	p.mu.Lock()
	p.conn = c
	p.mu.Unlock()
}

func (p *tcpPeer) closeConn() {
	p.mu.Lock()
	if p.conn != nil {
		_ = p.conn.Close()
	}
	p.mu.Unlock()
}

// maxFrame bounds a frame in either direction (64 MiB).
const maxFrame = 64 << 20

// NewTCP starts a TCP endpoint with default options: it listens on
// addrs[self] immediately and dials peers in the background as traffic
// for them is enqueued.
func NewTCP(self types.PartyID, addrs map[types.PartyID]string) (*TCP, error) {
	return NewTCPWithOptions(self, addrs, TCPOptions{})
}

// NewTCPWithOptions starts a TCP endpoint with explicit options.
func NewTCPWithOptions(self types.PartyID, addrs map[types.PartyID]string, opts TCPOptions) (*TCP, error) {
	opts = opts.withDefaults()
	lis, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[self], err)
	}
	addrCopy := make(map[types.PartyID]string, len(addrs))
	for p, a := range addrs {
		addrCopy[p] = a
	}
	t := &TCP{
		self:    self,
		opts:    opts,
		lis:     lis,
		inbox:   make(chan Envelope, inboxSize),
		stats:   opts.Stats,
		addrs:   addrCopy,
		peers:   make(map[types.PartyID]*tcpPeer),
		inbound: make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the actual listen address (useful with ":0").
func (t *TCP) Addr() string { return t.lis.Addr().String() }

// SetPeerAddr updates (or adds) a peer's dial address — needed when a
// cluster is assembled from ephemeral ":0" listeners whose real ports
// are only known after creation. Existing connections are unaffected;
// the next redial uses the new address.
func (t *TCP) SetPeerAddr(p types.PartyID, addr string) {
	t.mu.Lock()
	t.addrs[p] = addr
	t.mu.Unlock()
}

// Inbox implements Endpoint.
func (t *TCP) Inbox() <-chan Envelope { return t.inbox }

// Send implements Endpoint. It never blocks: the frame is enqueued on
// the peer's send queue (evicting the oldest frame on overflow) and
// written by the peer's writer goroutine. An error means the message
// was not accepted at all: unknown destination, oversized frame, or
// closed endpoint.
func (t *TCP) Send(to types.PartyID, m types.Message) error {
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	raw := types.Marshal(m)
	if len(raw) > maxFrame {
		return fmt.Errorf("transport: %d-byte message to %d exceeds the %d-byte frame limit", len(raw), to, maxFrame)
	}
	for {
		select {
		case p.queue <- raw:
			t.stats.ObserveQueueDepth(to, len(p.queue))
			return nil
		default:
		}
		// Queue full: evict the oldest frame and retry, so the queue
		// always holds the freshest traffic for this peer.
		select {
		case <-p.queue:
			t.stats.QueueDrop(to)
		default:
		}
	}
}

// Close implements Endpoint.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	peers := make([]*tcpPeer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	close(t.done)
	err := t.lis.Close()
	for _, p := range peers {
		p.closeConn() // unblock any in-flight write immediately
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
	close(t.inbox)
	return err
}

// peer returns (or creates, spawning its writer) the send side for a
// destination.
func (t *TCP) peer(to types.PartyID) (*tcpPeer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if p, ok := t.peers[to]; ok {
		return p, nil
	}
	if _, ok := t.addrs[to]; !ok {
		return nil, fmt.Errorf("transport: no address for party %d", to)
	}
	p := &tcpPeer{id: to, queue: make(chan []byte, t.opts.SendQueue)}
	t.peers[to] = p
	t.wg.Add(1)
	go t.writeLoop(p)
	return p, nil
}

// writeLoop drains one peer's send queue, dialling and redialling in the
// background. A frame that fails to write is retried on a fresh
// connection; while the peer stays unreachable, the queue's drop-oldest
// policy bounds memory and keeps the backlog fresh.
func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.wg.Done()
	defer p.closeConn()
	var conn net.Conn
	backoff := t.opts.RedialMin
	// Jitter stream: seeded per link so concurrent writers never share
	// rng state; determinism is not needed for backoff spacing.
	rng := rand.New(rand.NewSource(int64(t.self)<<32 ^ int64(p.id)<<8 ^ time.Now().UnixNano()))
	for {
		var raw []byte
		select {
		case <-t.done:
			return
		case raw = <-p.queue:
		}
		for {
			if conn == nil {
				c, err := t.dial(p.id)
				if err != nil {
					// Exponential backoff with jitter in [backoff, 2*backoff).
					wait := backoff + time.Duration(rng.Int63n(int64(backoff)))
					if !t.pause(wait) {
						return
					}
					backoff *= 2
					if backoff > t.opts.RedialMax {
						backoff = t.opts.RedialMax
					}
					continue
				}
				conn = c
				p.setConn(c)
				backoff = t.opts.RedialMin
			}
			_ = conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
			if err := writeFrame(conn, raw); err != nil {
				t.stats.WriteError(p.id)
				_ = conn.Close()
				conn = nil
				p.setConn(nil)
				select {
				case <-t.done:
					return
				default:
				}
				continue // retry this frame on a fresh connection
			}
			break
		}
	}
}

// pause sleeps for d unless the endpoint closes first.
func (t *TCP) pause(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-t.done:
		return false
	case <-timer.C:
		return true
	}
}

// dial establishes and handshakes one outgoing connection.
func (t *TCP) dial(to types.PartyID) (net.Conn, error) {
	t.mu.Lock()
	addr, ok := t.addrs[to]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("transport: no address for party %d", to)
	}
	t.stats.Redial(to)
	c, err := net.DialTimeout("tcp", addr, t.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d: %w", to, err)
	}
	// Handshake: identify ourselves.
	var hello [8]byte
	binary.BigEndian.PutUint64(hello[:], uint64(int64(t.self)))
	_ = c.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
	if err := writeFrame(c, hello[:]); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("transport: handshake with %d: %w", to, err)
	}
	return c, nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.lis.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		t.inbound[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// knownParty reports whether a handshake identity belongs to the
// cluster (and is not our own ID).
func (t *TCP) knownParty(p types.PartyID) bool {
	if p == t.self {
		return false
	}
	t.mu.Lock()
	_, ok := t.addrs[p]
	t.mu.Unlock()
	return ok
}

// removeInbound prunes a finished inbound connection so dead
// connections do not accumulate across peer restarts.
func (t *TCP) removeInbound(c net.Conn) {
	t.mu.Lock()
	delete(t.inbound, c)
	t.mu.Unlock()
}

// readLoop consumes frames from an inbound connection.
func (t *TCP) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer t.removeInbound(c)
	defer c.Close()
	hello, err := readFrame(c)
	if err != nil || len(hello) != 8 {
		return
	}
	from := types.PartyID(int64(binary.BigEndian.Uint64(hello)))
	if !t.knownParty(from) {
		return // unknown or self-claiming party: reject the connection
	}
	for {
		raw, err := readFrame(c)
		if err != nil {
			return
		}
		m, err := types.Unmarshal(raw)
		if err != nil {
			continue // corrupt frame from a possibly-corrupt peer
		}
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		select {
		case t.inbox <- Envelope{From: from, Msg: m}:
		default:
			// Drop on overload; see the inproc transport's rationale.
			t.stats.InboxOverflow()
		}
	}
}

func writeFrame(w io.Writer, payload []byte) error {
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

var _ Endpoint = (*TCP)(nil)
