package aggsig

import (
	"bytes"
	"crypto/rand"
	"errors"
	"sync"
	"testing"

	"icc/internal/crypto"
	"icc/internal/crypto/hash"
)

const testDomain = hash.Domain("test/notarization")

func dealTest(t testing.TB, quorum, n int) (*BLSInfo, []BLSSecretKey) {
	t.Helper()
	info, sks, err := DealBLS(rand.Reader, quorum, n)
	if err != nil {
		t.Fatal(err)
	}
	return info, sks
}

func signAll(sks []BLSSecretKey, msg []byte) []*Share {
	shares := make([]*Share, len(sks))
	for i, k := range sks {
		shares[i] = k.Sign(testDomain, msg)
	}
	return shares
}

func TestBLSSignCombineVerify(t *testing.T) {
	info, sks := dealTest(t, 3, 4)
	msg := []byte("notarize block X")
	shares := signAll(sks, msg)
	cert, err := info.Combine(testDomain, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cert.SignerIDs()); got != 3 {
		t.Fatalf("certificate carries %d signers, want 3", got)
	}
	if err := info.Verify(testDomain, msg, cert); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	if err := info.Verify(testDomain, []byte("other message"), cert); err == nil {
		t.Fatal("certificate verified for a different message")
	}
	if !errors.Is(info.Verify(testDomain, []byte("other"), cert), crypto.ErrBadAggregate) {
		t.Fatal("verification failure does not wrap crypto.ErrBadAggregate")
	}
}

func TestBLSCombineVerifiedMatchesCombine(t *testing.T) {
	info, sks := dealTest(t, 3, 4)
	msg := []byte("m")
	shares := signAll(sks, msg)
	a, err := info.Combine(testDomain, msg, shares)
	if err != nil {
		t.Fatal(err)
	}
	b, err := info.CombineVerified(shares)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("Combine and CombineVerified disagree on honest input")
	}
}

func TestBLSCombineEvictsForgedShare(t *testing.T) {
	info, sks := dealTest(t, 3, 5)
	msg := []byte("m")
	good := signAll(sks, msg)
	forged := sks[0].Sign(testDomain, []byte("a different message"))
	input := []*Share{forged, good[1], good[2], good[3]}
	cert, err := info.Combine(testDomain, msg, input)
	if err == nil {
		// Quorum still reachable without the forged share only if ≥3
		// honest shares were supplied — here exactly 3 are, so the
		// fallback must have evicted signer 0.
		for _, s := range cert.SignerIDs() {
			if s == 0 {
				t.Fatal("forged share survived into the certificate")
			}
		}
		if err := info.Verify(testDomain, msg, cert); err != nil {
			t.Fatalf("repaired certificate rejected: %v", err)
		}
		return
	}
	t.Fatalf("combine failed despite a reachable honest quorum: %v", err)
}

func TestBLSVerifyShare(t *testing.T) {
	info, sks := dealTest(t, 2, 3)
	msg := []byte("m")
	s := sks[1].Sign(testDomain, msg)
	if err := info.VerifyShare(testDomain, msg, s); err != nil {
		t.Fatalf("valid share rejected: %v", err)
	}
	s.Signer = 2 // claim someone else's identity
	if err := info.VerifyShare(testDomain, msg, s); err == nil {
		t.Fatal("share with stolen identity accepted")
	}
	if err := info.VerifyShare(testDomain, msg, nil); err == nil {
		t.Fatal("nil share accepted")
	}
	if err := info.VerifyShare(hash.Domain("test/other"), msg, sks[0].Sign(testDomain, msg)); err == nil {
		t.Fatal("cross-domain share accepted")
	}
}

func TestBLSEncodeDecodeRoundTrip(t *testing.T) {
	info, sks := dealTest(t, 3, 4)
	msg := []byte("wire")
	cert, err := info.CombineVerified(signAll(sks, msg))
	if err != nil {
		t.Fatal(err)
	}
	enc := cert.Encode()
	dec, err := info.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("round trip not byte-identical")
	}
	if err := info.Verify(testDomain, msg, dec); err != nil {
		t.Fatalf("decoded certificate rejected: %v", err)
	}
}

func TestBLSDecodeRejectsMalformed(t *testing.T) {
	info, sks := dealTest(t, 3, 4)
	cert, err := info.CombineVerified(signAll(sks, []byte("m")))
	if err != nil {
		t.Fatal(err)
	}
	enc := cert.Encode()
	cases := map[string][]byte{
		"empty":            nil,
		"tag only":         {byte(SchemeBLS)},
		"truncated point":  enc[:len(enc)-1],
		"trailing byte":    append(append([]byte{}, enc...), 0),
		"oversized bitmap": append([]byte{byte(SchemeBLS), 0xff, 0xff}, enc[3:]...),
		"padding bits set": paddingTamper(enc),
		"point off curve":  pointTamper(enc),
		"multisig tag":     append([]byte{byte(SchemeMultisig)}, enc[1:]...),
		"unregistered tag": append([]byte{0x7f}, enc[1:]...),
	}
	for name, b := range cases {
		_, err := info.Decode(b)
		if err == nil {
			t.Fatalf("%s: malformed certificate accepted", name)
		}
		if !errors.Is(err, crypto.ErrBadAggregate) {
			t.Fatalf("%s: error %v does not wrap crypto.ErrBadAggregate", name, err)
		}
	}
}

// paddingTamper sets a bitmap bit beyond nbits.
func paddingTamper(enc []byte) []byte {
	out := append([]byte{}, enc...)
	nbits := int(out[1])<<8 | int(out[2])
	if nbits%8 == 0 {
		// No padding bits in this width; shrink nbits by one so the last
		// set bit lands in padding.
		nbits--
		out[1], out[2] = byte(nbits>>8), byte(nbits)
	}
	bitmapStart := 3
	out[bitmapStart+(nbits+7)/8-1] |= 1 << 7
	return out
}

// pointTamper corrupts the aggregate point coordinates.
func pointTamper(enc []byte) []byte {
	out := append([]byte{}, enc...)
	out[len(out)-1] ^= 0x01
	return out
}

func TestBLSCrossSchemeVerifyRejected(t *testing.T) {
	info, sks := dealTest(t, 2, 3)
	cert, err := info.CombineVerified(signAll(sks, []byte("m")))
	if err != nil {
		t.Fatal(err)
	}
	// A certificate handed to a scheme it was not produced by must fail
	// with the typed sentinel, never panic — including typed nils.
	if err := info.Verify(testDomain, []byte("m"), fakeCert{}); !errors.Is(err, crypto.ErrBadAggregate) {
		t.Fatalf("foreign certificate: %v", err)
	}
	if err := info.Verify(testDomain, []byte("m"), (*BLSCertificate)(nil)); !errors.Is(err, crypto.ErrBadAggregate) {
		t.Fatalf("typed-nil certificate: %v", err)
	}
	if err := info.Verify(testDomain, []byte("m"), nil); !errors.Is(err, crypto.ErrBadAggregate) {
		t.Fatalf("nil certificate: %v", err)
	}
	_ = cert
}

type fakeCert struct{}

func (fakeCert) Scheme() SchemeID { return SchemeID(99) }
func (fakeCert) SignerIDs() []int { return nil }
func (fakeCert) Encode() []byte   { return []byte{99} }

// TestBLSConcurrentCombineVerify exercises concurrent relay-side use of
// one shared BLSInfo — the shape the gossip layer and the pool produce
// under -race: many goroutines combining overlapping share sets and
// verifying the results simultaneously.
func TestBLSConcurrentCombineVerify(t *testing.T) {
	info, sks := dealTest(t, 3, 4)
	msg := []byte("race")
	shares := signAll(sks, msg)
	ref, err := info.CombineVerified(shares)
	if err != nil {
		t.Fatal(err)
	}
	refEnc := ref.Encode()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				subset := shares[w%2:] // overlapping share windows
				cert, err := info.CombineVerified(subset)
				if err != nil {
					errs <- err
					return
				}
				dec, err := info.Decode(cert.Encode())
				if err != nil {
					errs <- err
					return
				}
				if len(dec.SignerIDs()) < info.Quorum() {
					errs <- errors.New("undersized certificate")
					return
				}
				_ = refEnc
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// FuzzCertDecode round-trips arbitrary bytes through both schemes'
// decoders: no input may panic, and anything that decodes must re-encode
// to a frame the same decoder accepts with identical signer sets.
func FuzzCertDecode(f *testing.F) {
	info, sks := dealTest(f, 2, 3)
	cert, err := info.CombineVerified(signAll(sks, []byte("seed")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cert.Encode())
	f.Add([]byte{byte(SchemeMultisig), 0, 1})
	f.Add([]byte{byte(SchemeBLS), 0, 3, 0x07})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		if dec, err := info.Decode(b); err == nil {
			enc := dec.Encode()
			dec2, err := info.Decode(enc)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			a, bIDs := dec.SignerIDs(), dec2.SignerIDs()
			if len(a) != len(bIDs) {
				t.Fatal("signer set changed across round trip")
			}
			for i := range a {
				if a[i] != bIDs[i] {
					t.Fatal("signer set changed across round trip")
				}
			}
		}
	})
}

// Scheme-comparison micro-benchmarks, mirroring the multisig package's
// Combine13/Verify13 shapes (quorum 9 of n=13): `make bench` runs both
// so the BLS-vs-multisig sign/combine/verify costs land side by side.

func BenchmarkBLSSign13(b *testing.B) {
	_, sks := dealTest(b, 9, 13)
	msg := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sks[i%len(sks)].Sign(testDomain, msg)
	}
}

func BenchmarkBLSCombine13(b *testing.B) {
	info, sks := dealTest(b, 9, 13)
	msg := []byte("bench")
	shares := signAll(sks, msg)[:9]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := info.CombineVerified(shares); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBLSVerifyAggregate13(b *testing.B) {
	info, sks := dealTest(b, 9, 13)
	msg := []byte("bench")
	cert, err := info.CombineVerified(signAll(sks, msg))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := info.Verify(testDomain, msg, cert); err != nil {
			b.Fatal(err)
		}
	}
}
