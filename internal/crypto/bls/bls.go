package bls

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// BLS signatures (Boneh–Lynn–Shacham [6], as named by paper §2.3):
// secret key sk ∈ Z_r, public key PK = sk·G2, signature σ = sk·H(m) ∈ G1,
// verification e(σ, G2) == e(H(m), PK). Signatures are unique — the
// property the ICC random beacon requires.

// Errors returned by the package.
var (
	ErrInvalidSignature = errors.New("bls: invalid signature")
	ErrNotEnoughShares  = errors.New("bls: not enough valid shares")
)

// SecretKey is a BLS signing key.
type SecretKey struct {
	k *big.Int
}

// PublicKey is a BLS verification key.
type PublicKey struct {
	p *G2Point
}

// Signature is a (unique) BLS signature.
type Signature struct {
	s *G1Point
}

// GenerateKey samples a fresh key pair.
func GenerateKey(rng io.Reader) (*SecretKey, *PublicKey, error) {
	if rng == nil {
		rng = rand.Reader
	}
	k, err := randScalar(rng)
	if err != nil {
		return nil, nil, err
	}
	return &SecretKey{k: k}, &PublicKey{p: G2Generator().Mul(k)}, nil
}

func randScalar(rng io.Reader) (*big.Int, error) {
	for {
		buf := make([]byte, 32)
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, fmt.Errorf("bls: sampling scalar: %w", err)
		}
		k := new(big.Int).SetBytes(buf)
		if k.Cmp(R) < 0 && k.Sign() != 0 {
			return k, nil
		}
	}
}

// Sign produces σ = sk·H(m).
func (sk *SecretKey) Sign(msg []byte) *Signature {
	return &Signature{s: HashToG1(msg).Mul(sk.k)}
}

// Verify checks e(σ, G2) == e(H(m), PK).
func (pk *PublicKey) Verify(msg []byte, sig *Signature) error {
	if sig == nil || sig.s == nil || sig.s.IsInfinity() || !sig.s.IsOnCurve() {
		return ErrInvalidSignature
	}
	if !PairingCheck(sig.s, G2Generator(), HashToG1(msg), pk.p) {
		return ErrInvalidSignature
	}
	return nil
}

// Point returns the signature's G1 point (for uniqueness checks and
// beacon derivation).
func (s *Signature) Point() *G1Point { return s.s }

// Point returns the public key's G2 point (for aggregate-public-key
// accumulation).
func (pk *PublicKey) Point() *G2Point { return pk.p }

// PublicKeyFromPoint wraps a G2 point as a verification key.
func PublicKeyFromPoint(p *G2Point) *PublicKey { return &PublicKey{p: p} }

// SecretKeyLen is the encoded secret-scalar length.
const SecretKeyLen = 32

// Encode serialises the secret scalar (32 bytes, big-endian).
func (sk *SecretKey) Encode() []byte {
	out := make([]byte, SecretKeyLen)
	sk.k.FillBytes(out)
	return out
}

// DecodeSecretKey parses a secret scalar encoded by Encode.
func DecodeSecretKey(b []byte) (*SecretKey, error) {
	if len(b) != SecretKeyLen {
		return nil, fmt.Errorf("bls: bad secret key length %d", len(b))
	}
	k := new(big.Int).SetBytes(b)
	if k.Sign() == 0 || k.Cmp(R) >= 0 {
		return nil, errors.New("bls: secret scalar out of range")
	}
	return &SecretKey{k: k}, nil
}

// Encode serialises the verification key (uncompressed G2).
func (pk *PublicKey) Encode() []byte { return pk.p.Encode() }

// DecodePublicKey parses a verification key encoded by Encode.
func DecodePublicKey(b []byte) (*PublicKey, error) {
	p, err := DecodeG2(b)
	if err != nil {
		return nil, err
	}
	if p.IsInfinity() {
		return nil, errors.New("bls: public key is the identity")
	}
	return &PublicKey{p: p}, nil
}

// Equal reports signature equality (meaningful because BLS signatures
// are unique).
func (s *Signature) Equal(t *Signature) bool { return s.s.Equal(t.s) }

// --- Threshold BLS (paper §2.3 approach (iii)) ---

// ThresholdPublic is the verification material of a Shamir-shared BLS
// instance.
type ThresholdPublic struct {
	N         int
	Threshold int
	Global    *PublicKey
	Shares    []*PublicKey // per-party share public keys sk_i·G2
}

// ThresholdShareKey is one party's signing share.
type ThresholdShareKey struct {
	Index int
	Key   *SecretKey
}

// SigShare is one party's signature share.
type SigShare struct {
	Index int
	Sig   *Signature
}

// DealThreshold Shamir-shares a fresh master key with the given
// threshold (t+1 for the ICC beacon).
func DealThreshold(rng io.Reader, threshold, n int) (*ThresholdPublic, []ThresholdShareKey, error) {
	if threshold < 1 || threshold > n {
		return nil, nil, fmt.Errorf("bls: invalid threshold %d of %d", threshold, n)
	}
	if rng == nil {
		rng = rand.Reader
	}
	coeffs := make([]*big.Int, threshold)
	for i := range coeffs {
		c, err := randScalar(rng)
		if err != nil {
			return nil, nil, err
		}
		coeffs[i] = c
	}
	pub := &ThresholdPublic{
		N:         n,
		Threshold: threshold,
		Global:    &PublicKey{p: G2Generator().Mul(coeffs[0])},
		Shares:    make([]*PublicKey, n),
	}
	keys := make([]ThresholdShareKey, n)
	for i := 0; i < n; i++ {
		x := big.NewInt(int64(i + 1))
		// Horner evaluation mod R.
		acc := new(big.Int)
		for j := threshold - 1; j >= 0; j-- {
			acc.Mul(acc, x)
			acc.Add(acc, coeffs[j])
			acc.Mod(acc, R)
		}
		sk := &SecretKey{k: new(big.Int).Set(acc)}
		keys[i] = ThresholdShareKey{Index: i, Key: sk}
		pub.Shares[i] = &PublicKey{p: G2Generator().Mul(acc)}
	}
	return pub, keys, nil
}

// SignShare produces party i's share σ_i = sk_i·H(m).
func (k ThresholdShareKey) SignShare(msg []byte) *SigShare {
	return &SigShare{Index: k.Index, Sig: k.Key.Sign(msg)}
}

// VerifyShare checks a share against its registered share public key
// (a real pairing check — the property the paper gets from BLS and that
// the DLEQ-based thresig package emulates).
func (tp *ThresholdPublic) VerifyShare(msg []byte, s *SigShare) error {
	if s == nil || s.Index < 0 || s.Index >= tp.N {
		return ErrInvalidSignature
	}
	return tp.Shares[s.Index].Verify(msg, s.Sig)
}

// Combine verifies shares and Lagrange-interpolates any Threshold of
// them into the unique master signature. Invalid and duplicate shares
// are skipped.
func (tp *ThresholdPublic) Combine(msg []byte, shares []*SigShare) (*Signature, error) {
	valid := make([]*SigShare, 0, tp.Threshold)
	seen := make(map[int]struct{}, len(shares))
	for _, s := range shares {
		if len(valid) == tp.Threshold {
			break
		}
		if s == nil {
			continue
		}
		if _, dup := seen[s.Index]; dup {
			continue
		}
		if err := tp.VerifyShare(msg, s); err != nil {
			continue
		}
		seen[s.Index] = struct{}{}
		valid = append(valid, s)
	}
	if len(valid) < tp.Threshold {
		return nil, fmt.Errorf("%w: %d of %d", ErrNotEnoughShares, len(valid), tp.Threshold)
	}
	// Lagrange interpolation at 0 in the exponent.
	acc := G1Infinity()
	for i, si := range valid {
		num := big.NewInt(1)
		den := big.NewInt(1)
		xi := big.NewInt(int64(si.Index + 1))
		for j, sj := range valid {
			if i == j {
				continue
			}
			xj := big.NewInt(int64(sj.Index + 1))
			num.Mul(num, new(big.Int).Neg(xj))
			num.Mod(num, R)
			d := new(big.Int).Sub(xi, xj)
			den.Mul(den, d)
			den.Mod(den, R)
		}
		lam := new(big.Int).Mul(num, new(big.Int).ModInverse(den, R))
		lam.Mod(lam, R)
		acc = acc.Add(si.Sig.s.Mul(lam))
	}
	return &Signature{s: acc}, nil
}

// VerifyCombined checks a combined signature against the global public
// key — third-party verifiable, unlike the DLEQ-based scheme where only
// shares carry proofs.
func (tp *ThresholdPublic) VerifyCombined(msg []byte, sig *Signature) error {
	return tp.Global.Verify(msg, sig)
}

// SignatureFromPoint wraps a G1 point as a Signature (used when shares
// travel on the wire as bare points and are verified at combination).
func SignatureFromPoint(p *G1Point) *Signature { return &Signature{s: p} }
