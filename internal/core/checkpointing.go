package core

import (
	"time"

	"icc/internal/checkpoint"
	"icc/internal/crypto"
	"icc/internal/crypto/aggsig"
	"icc/internal/engine"
	"icc/internal/types"
)

// Checkpointing clauses. At every finalized round divisible by
// CheckpointInterval, each party signs the commitment
// (k, H(B_k), H(state_k), H(R_k)) under DomainCheckpoint and broadcasts
// the share. Once t+1 matching shares accumulate — ours plus t others —
// the certificate is combined, the full checkpoint (boundary block,
// notarization, state snapshot, certificate) is persisted to the local
// store, and the WAL is truncated below the boundary: everything older
// is reconstructible from the checkpoint alone.
//
// The certified blob is what peers stuck behind the prune horizon
// install (handleCheckpointMsg): verification needs nothing but the
// cluster's public keys, so the transfer is safe against a Byzantine
// server. See internal/checkpoint for the t+1 safety argument.

// pendingCheckpoint tracks share collection for one boundary round.
type pendingCheckpoint struct {
	// commit is our own share — the only commitment we aggregate toward.
	// A Byzantine peer's share with a different state hash is simply a
	// mismatch, never a fork: honest parties all execute the same chain
	// and therefore commit to the same bytes.
	commit *types.CheckpointShare
	state  []byte
	block  *types.Block
	shares map[types.PartyID]*aggsig.Share
	done   bool
}

// maybeCheckpoint runs inside the commit loop, immediately after b's
// OnCommit, so a StateSnapshot taken here is exactly the state after
// executing b — the bytes the commitment hashes.
func (e *Engine) maybeCheckpoint(b *types.Block, now time.Duration) {
	ival := e.cfg.CheckpointInterval
	if ival <= 0 || b.Round == 0 || b.Round%ival != 0 {
		return
	}
	if e.ckpts[b.Round] != nil || e.cfg.Checkpoints.LatestRound() >= b.Round {
		return
	}
	digest, ok := e.cfg.Beacon.Digest(b.Round)
	if !ok {
		// Jump-committed past the boundary without ever computing its
		// beacon (catch-up). Peers that traversed the round will
		// checkpoint it; we simply skip this boundary.
		return
	}
	var state []byte
	if e.cfg.StateSnapshot != nil {
		state = e.cfg.StateSnapshot()
	}
	h := b.Hash()
	stateHash := checkpoint.StateDigest(state)
	msg := types.CheckpointSigningBytes(b.Round, h, stateHash, digest)
	share := e.cfg.Priv.Final.Sign(types.DomainCheckpoint, msg)
	cs := &types.CheckpointShare{
		Round: b.Round, BlockHash: h, StateHash: stateHash,
		BeaconDigest: digest, Signer: e.cfg.Self, Sig: share.Signature,
	}
	p := &pendingCheckpoint{
		commit: cs,
		state:  state,
		block:  b,
		shares: map[types.PartyID]*aggsig.Share{e.cfg.Self: share},
	}
	e.ckpts[b.Round] = p
	e.gcPendingCheckpoints(b.Round)
	e.logArtifact(cs)
	if !e.replaying {
		e.emit(cs)
	}
	// n small enough that t+1 == 1: we alone certify.
	e.tryAssembleCheckpoint(b.Round, now)
}

// gcPendingCheckpoints bounds the pending map: once the boundary at
// round k exists, collections more than two intervals old can never
// complete usefully.
func (e *Engine) gcPendingCheckpoints(k types.Round) {
	horizon := 2 * e.cfg.CheckpointInterval
	for r := range e.ckpts {
		if r+horizon < k {
			delete(e.ckpts, r)
		}
	}
}

// handleCheckpointShare accumulates a peer's checkpoint share toward our
// own pending commitment for that round.
func (e *Engine) handleCheckpointShare(from types.PartyID, cs *types.CheckpointShare, now time.Duration) {
	if cs.Signer < 0 || int(cs.Signer) >= e.cfg.Keys.N {
		e.reject(from, crypto.Mismatch)
		return
	}
	p := e.ckpts[cs.Round]
	if p == nil || p.done {
		// No local commitment (we have not committed the boundary yet, or
		// already certified it). Shares are cheap to re-request — peers
		// re-broadcast nothing, but our own commit will arrive and the
		// cluster needs only t+1 of n collectors to succeed.
		return
	}
	if cs.BlockHash != p.commit.BlockHash || cs.StateHash != p.commit.StateHash || cs.BeaconDigest != p.commit.BeaconDigest {
		// An honest party can never disagree with us here (same chain,
		// same deterministic execution) — this share is forged or its
		// sender's state machine diverged; either way it is inadmissible.
		e.reject(from, crypto.Mismatch)
		return
	}
	if _, dup := p.shares[cs.Signer]; dup {
		return
	}
	sh := &aggsig.Share{Signer: int(cs.Signer), Signature: cs.Sig}
	msg := types.CheckpointSigningBytes(p.commit.Round, p.commit.BlockHash, p.commit.StateHash, p.commit.BeaconDigest)
	if err := e.ckptPub.VerifyShare(types.DomainCheckpoint, msg, sh); err != nil {
		e.reject(from, err)
		return
	}
	p.shares[cs.Signer] = sh
	e.logArtifact(cs)
	e.tryAssembleCheckpoint(cs.Round, now)
}

// tryAssembleCheckpoint combines a full share set into a certificate and
// persists the checkpoint.
func (e *Engine) tryAssembleCheckpoint(k types.Round, now time.Duration) {
	p := e.ckpts[k]
	if p == nil || p.done || len(p.shares) < types.CheckpointQuorum(e.cfg.Keys.N) {
		return
	}
	nz := e.pool.Notarization(p.commit.BlockHash)
	if nz == nil {
		return // pruned already? cannot happen while the boundary is this fresh
	}
	shares := make([]*aggsig.Share, 0, len(p.shares))
	for pid := 0; pid < e.cfg.Keys.N; pid++ {
		if s, ok := p.shares[types.PartyID(pid)]; ok {
			shares = append(shares, s)
		}
	}
	msg := types.CheckpointSigningBytes(p.commit.Round, p.commit.BlockHash, p.commit.StateHash, p.commit.BeaconDigest)
	agg, err := e.ckptPub.Combine(types.DomainCheckpoint, msg, shares)
	if err != nil {
		return
	}
	cp := &checkpoint.Checkpoint{
		Round:        k,
		BlockHash:    p.commit.BlockHash,
		StateHash:    p.commit.StateHash,
		BeaconDigest: p.commit.BeaconDigest,
		Block:        p.block,
		Notarization: nz,
		Finalization: e.pool.Finalization(p.commit.BlockHash),
		State:        p.state,
		Agg:          agg.Encode(),
	}
	p.done = true
	if err := e.cfg.Checkpoints.Save(cp); err != nil {
		return // disk trouble: keep the WAL intact, retry at the next boundary
	}
	// Everything below the boundary is now reconstructible from the
	// checkpoint; drop the cold WAL segments.
	e.cfg.WAL.Prune(k)
	if !e.replaying && e.cfg.Hooks.OnCheckpoint != nil {
		e.cfg.Hooks.OnCheckpoint(k, now)
	}
}

// handleCheckpointMsg installs a certified checkpoint received from a
// peer — the restore path for a party stuck behind the prune horizon.
func (e *Engine) handleCheckpointMsg(from types.PartyID, cm *types.CheckpointMsg, now time.Duration) {
	cp, err := checkpoint.Decode(cm.Blob)
	if err != nil {
		e.reject(from, err)
		return
	}
	if cp.Round <= e.kmax {
		return // stale or duplicate transfer; nothing to do
	}
	if err := checkpoint.Verify(e.cfg.Keys, cp); err != nil {
		e.reject(from, err)
		return
	}
	e.installCheckpoint(cp, now)
}

// installCheckpoint jumps the engine's frontier to a verified
// checkpoint: restore the application state, seed the beacon digest
// chain and the pool's new chain root, advance the round, and persist
// the checkpoint locally so we can serve it onward and restart from it.
func (e *Engine) installCheckpoint(cp *checkpoint.Checkpoint, now time.Duration) bool {
	if cp.Round <= e.kmax {
		return false
	}
	if e.cfg.StateRestore != nil {
		if err := e.cfg.StateRestore(cp.State); err != nil {
			return false
		}
	}
	e.cfg.Beacon.InstallDigest(cp.Round, cp.BeaconDigest)
	e.pool.InstallCheckpoint(cp.Block, cp.Notarization, cp.Finalization)
	e.kmax = cp.Round
	e.lastFinalHash = cp.BlockHash
	if cp.Round > e.finalSeen {
		e.finalSeen = cp.Round
	}
	if cp.Round >= e.round {
		e.round = cp.Round + 1
		e.resetRoundState()
	}
	for k := range e.pending {
		if k <= cp.Round {
			delete(e.pending, k)
		}
	}
	e.lost = false
	e.waitSince = now
	e.touchResync(now)
	e.maybePrune()
	if !e.replaying {
		// Persisting locally lets our own restart begin at this frontier
		// and lets us serve the checkpoint onward; the WAL history below
		// it is superseded.
		_ = e.cfg.Checkpoints.Save(cp)
		e.cfg.WAL.Prune(cp.Round)
		e.broadcastBeaconShare(cp.Round + 1)
		if e.cfg.Hooks.OnCheckpointInstalled != nil {
			e.cfg.Hooks.OnCheckpointInstalled(cp.Round, now)
		}
	}
	return true
}

// CheckpointRequest names a checkpoint transfer a catch-up response
// deferred to a provider: serve the latest certified checkpoint (at
// least past MinRound) to Peer.
type CheckpointRequest struct {
	Peer     types.PartyID
	MinRound types.Round
}

// CheckpointProvider is optionally implemented by a CatchupProvider
// (internal/backfill's worker does) to ship checkpoint blobs off the
// engine loop. EnqueueCheckpoint must never block; false means dropped,
// and the laggard's next Status re-asks.
type CheckpointProvider interface {
	EnqueueCheckpoint(req CheckpointRequest) bool
}

// maybeServeCheckpoint answers a Status from a peer so far behind that
// artifact catch-up can no longer help it: its gap starts below our
// prune horizon, so the rounds it needs are gone from our pool, and only
// a checkpoint install can move it. Returns true when the Status was
// fully handled here.
func (e *Engine) maybeServeCheckpoint(from types.PartyID, st *types.Status, now time.Duration) bool {
	if e.cfg.Checkpoints == nil || e.cfg.PruneDepth <= 0 || e.kmax <= e.cfg.PruneDepth {
		return false
	}
	cut := e.kmax - e.cfg.PruneDepth
	if st.Round > cut {
		return false // ordinary artifact catch-up still works
	}
	latest := e.cfg.Checkpoints.LatestRound()
	if latest == 0 || latest <= st.Finalized {
		return false // nothing newer than what the peer already has
	}
	if !e.catchup.allowReply(from, now) {
		return true // rate-limited; swallow the Status either way
	}
	if prov, ok := e.cfg.Catchup.(CheckpointProvider); ok && prov != nil {
		if prov.EnqueueCheckpoint(CheckpointRequest{Peer: from, MinRound: st.Round}) {
			if e.cfg.Hooks.OnCheckpointServed != nil {
				e.cfg.Hooks.OnCheckpointServed(from, latest, now)
			}
			return true
		}
		return true // dropped: the peer re-asks next interval
	}
	// Synchronous fallback: deterministic single-threaded paths (simnet,
	// harness) serve inline.
	raw, round, ok := e.cfg.Checkpoints.LatestEncoded()
	if !ok {
		return false
	}
	bundle := &types.Bundle{Messages: []types.Message{&types.CheckpointMsg{Blob: raw}}, Resync: true}
	e.out = append(e.out, engine.Unicast(from, bundle))
	if e.cfg.Hooks.OnCheckpointServed != nil {
		e.cfg.Hooks.OnCheckpointServed(from, round, now)
	}
	return true
}
